// Regression tests for net::Client per-call deadlines: a server that
// accepts but never answers must surface DeadlineExceeded in bounded time
// instead of blocking forever, and an expired call must tear down the
// connection (the framing state is unknowable mid-call).
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "service/session_service.h"

namespace qlearn {
namespace net {
namespace {

using common::StatusCode;

/// A listening socket that accepts connections but never reads or writes:
/// the most honest model of a hung server.
class SilentServer {
 public:
  SilentServer() { Init(); }
  ~SilentServer() {
    if (accepted_fd_ >= 0) ::close(accepted_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  /// Accepts the pending connection (so the client's send succeeds) and
  /// then ignores it.
  void AcceptOne() { accepted_fd_ = ::accept(listen_fd_, nullptr, nullptr); }

 private:
  void Init() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listen_fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
  }

  int listen_fd_ = -1;
  int accepted_fd_ = -1;
  uint16_t port_ = 0;
};

TEST(NetClientDeadlineTest, CallAgainstSilentServerTimesOut) {
  SilentServer server;
  auto connected =
      Client::Connect("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                      /*deadline_millis=*/200);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();
  server.AcceptOne();

  const auto start = std::chrono::steady_clock::now();
  auto response = client.CallRaw("{\"op\":\"counters\"}");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  // Bounded: well past the 200ms budget yet nowhere near "forever".
  EXPECT_GE(elapsed, 150);
  EXPECT_LT(elapsed, 5000);

  // The expired call abandoned a response mid-stream, so the connection is
  // gone; the next call fails fast rather than desyncing the framing.
  auto after = client.CallRaw("{\"op\":\"counters\"}");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NetClientDeadlineTest, DeadlineSettableAfterConnect) {
  SilentServer server;
  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();
  server.AcceptOne();
  EXPECT_EQ(client.deadline_millis(), 0);
  client.set_deadline_millis(100);
  EXPECT_EQ(client.deadline_millis(), 100);
  auto response = client.CallRaw("{\"op\":\"counters\"}");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(NetClientDeadlineTest, DeadlineDoesNotFireAgainstAResponsiveServer) {
  // A real server well inside the budget: deadline-armed calls behave
  // exactly like the blocking ones.
  service::SessionService service;
  ServerOptions options;
  options.workers = 0;
  Server real(&service, options);
  ASSERT_TRUE(real.Start().ok());
  auto connected = Client::Connect("127.0.0.1", real.port(),
                                   kDefaultMaxFrameBytes,
                                   /*deadline_millis=*/5000);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();
  auto id = client.Open("twig", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto counters = client.Counters();
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters.value().first.opens, 1u);
  ASSERT_TRUE(client.Close(id.value()).ok());
}

TEST(NetClientDeadlineTest, ConnectToUnroutableAddressTimesOut) {
  // 203.0.113.1 (TEST-NET-3) is reserved for documentation and never
  // routed: SYNs disappear, so only the deadline can end the connect.
  const auto start = std::chrono::steady_clock::now();
  auto connected = Client::Connect("203.0.113.1", 9, kDefaultMaxFrameBytes,
                                   /*deadline_millis=*/200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (connected.ok()) {
    GTEST_SKIP() << "environment routes TEST-NET-3; cannot exercise "
                    "connect timeout here";
  }
  // Sandboxed environments may refuse the route outright (Internal);
  // otherwise the SYN blackholes and the deadline fires.
  if (connected.status().code() == StatusCode::kDeadlineExceeded) {
    EXPECT_GE(elapsed, 150);
  }
  EXPECT_LT(elapsed, 5000);
}

}  // namespace
}  // namespace net
}  // namespace qlearn
