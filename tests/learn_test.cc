// Tests for twig learning: positive-only generalization (soundness and
// convergence), consistency checking with negatives, schema-aware filter
// pruning, the interactive protocol, and approximate learning.
#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "learn/approximate.h"
#include "learn/consistency.h"
#include "learn/interactive.h"
#include "learn/schema_aware.h"
#include "learn/twig_learner.h"
#include "twig/twig_containment.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace learn {
namespace {

using twig::TwigQuery;
using xml::NodeId;
using xml::XmlTree;

class LearnFixture : public ::testing::Test {
 protected:
  XmlTree Doc(const std::string& text) {
    auto t = xml::ParseXml(text, &interner_);
    EXPECT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    return t.ok() ? std::move(t).value() : XmlTree();
  }

  TwigQuery Q(const std::string& text) {
    auto q = twig::ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text;
    return q.ok() ? std::move(q).value() : TwigQuery();
  }

  /// First node of `doc` with the given label (must exist).
  NodeId FindNode(const XmlTree& doc, const std::string& label,
                  int occurrence = 0) {
    int seen = 0;
    for (NodeId n : doc.PreOrder()) {
      if (interner_.Name(doc.label(n)) == label) {
        if (seen == occurrence) return n;
        ++seen;
      }
    }
    ADD_FAILURE() << "no node labeled " << label;
    return 0;
  }

  common::Interner interner_;
};

TEST_F(LearnFixture, ExampleToQuerySelectsTheExample) {
  const XmlTree doc = Doc("<a><b><c/></b><d/></a>");
  const NodeId c = FindNode(doc, "c");
  const TwigQuery q = ExampleToQuery(TreeExample{&doc, c});
  EXPECT_EQ(q.Size(), doc.NumNodes());
  EXPECT_TRUE(twig::Selects(q, doc, c));
  EXPECT_TRUE(q.IsAnchored());
}

TEST_F(LearnFixture, SingleExampleLearnsTheDocument) {
  const XmlTree doc = Doc("<a><b/></a>");
  auto learned = LearnTwig({TreeExample{&doc, FindNode(doc, "b")}});
  ASSERT_TRUE(learned.ok());
  EXPECT_TRUE(twig::Selects(learned.value(), doc, FindNode(doc, "b")));
}

TEST_F(LearnFixture, EqualDepthMismatchYieldsWildcard) {
  const XmlTree d1 = Doc("<r><x><n/></x></r>");
  const XmlTree d2 = Doc("<r><y><n/></y></r>");
  auto learned = LearnTwig({TreeExample{&d1, FindNode(d1, "n")},
                            TreeExample{&d2, FindNode(d2, "n")}});
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned.value().ToString(interner_), "/r/*/n");
}

TEST_F(LearnFixture, DepthMismatchYieldsDescendant) {
  const XmlTree d1 = Doc("<r><m><x><n/></x></m></r>");
  const XmlTree d2 = Doc("<r><m><n/></m></r>");
  auto learned = LearnTwig({TreeExample{&d1, FindNode(d1, "n")},
                            TreeExample{&d2, FindNode(d2, "n")}});
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned.value().ToString(interner_), "/r/m//n");
}

TEST_F(LearnFixture, CommonFiltersAreKept) {
  const XmlTree d1 = Doc("<r><p><age/><name/></p><p><name/></p></r>");
  const XmlTree d2 = Doc("<r><p><age/><name/><extra/></p></r>");
  // Select the name under the p that has an age, in both documents.
  const NodeId n1 = FindNode(d1, "name", 0);
  const NodeId n2 = FindNode(d2, "name", 0);
  auto learned = LearnTwig({TreeExample{&d1, n1}, TreeExample{&d2, n2}});
  ASSERT_TRUE(learned.ok());
  // The [age] filter distinguishes the two p's in d1.
  const auto selected = twig::Evaluate(learned.value(), d1);
  EXPECT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], n1);
  EXPECT_TRUE(twig::Selects(learned.value(), d2, n2));
}

TEST_F(LearnFixture, LearnerIsSoundOnRandomCorpora) {
  // Whatever the examples, the learned query must select every one of them.
  common::Rng rng(77);
  const char* labels[] = {"a", "b", "c"};
  for (int iter = 0; iter < 40; ++iter) {
    // Random documents sharing the root label.
    std::vector<XmlTree> docs(3);
    std::vector<TreeExample> examples;
    for (auto& doc : docs) {
      doc.AddRoot(interner_.Intern("root"));
      std::vector<NodeId> pool{doc.root()};
      const int grow = 3 + static_cast<int>(rng.Uniform(10));
      for (int i = 0; i < grow; ++i) {
        const NodeId parent = pool[rng.Index(pool.size())];
        pool.push_back(
            doc.AddChild(parent, interner_.Intern(labels[rng.Index(3)])));
      }
    }
    // Use nodes with a common label as examples (fall back to root's child).
    for (auto& doc : docs) {
      std::vector<NodeId> as;
      for (NodeId n : doc.PreOrder()) {
        if (interner_.Name(doc.label(n)) == "a") as.push_back(n);
      }
      if (as.empty()) break;
      examples.push_back(TreeExample{&doc, as[rng.Index(as.size())]});
    }
    if (examples.size() != docs.size()) continue;
    auto learned = LearnTwig(examples);
    if (!learned.ok()) continue;  // no anchored generalization: acceptable
    for (const TreeExample& e : examples) {
      EXPECT_TRUE(twig::Selects(learned.value(), *e.doc, e.node))
          << learned.value().ToString(interner_);
    }
    EXPECT_TRUE(learned.value().IsAnchored());
  }
}

TEST_F(LearnFixture, ConvergesToGoalOnCharacteristicExamples) {
  // Goal: //person[age]/name over person-registry documents.
  const TwigQuery goal = Q("/site/people/person[age]/name");
  const XmlTree d1 = Doc(
      "<site><people>"
      "<person><age/><name/></person>"
      "<person><name/></person>"
      "</people></site>");
  const XmlTree d2 = Doc(
      "<site><people>"
      "<person><age/><name/><phone/></person>"
      "</people></site>");
  const NodeId n1 = FindNode(d1, "name", 0);
  const NodeId n2 = FindNode(d2, "name", 0);
  ASSERT_TRUE(twig::Selects(goal, d1, n1));
  ASSERT_TRUE(twig::Selects(goal, d2, n2));
  auto learned = LearnTwig({TreeExample{&d1, n1}, TreeExample{&d2, n2}});
  ASSERT_TRUE(learned.ok());
  EXPECT_TRUE(twig::EquivalentExact(learned.value(), goal, &interner_))
      << learned.value().ToString(interner_);
}

TEST_F(LearnFixture, GeneralizePairFailsOutsideAnchoredClass) {
  // Different selection labels at different depths admit no anchored
  // generalization.
  const XmlTree d1 = Doc("<r><a/></r>");
  const XmlTree d2 = Doc("<r><m><b/></m></r>");
  auto learned = LearnTwig({TreeExample{&d1, FindNode(d1, "a")},
                            TreeExample{&d2, FindNode(d2, "b")}});
  EXPECT_FALSE(learned.ok());
}

TEST_F(LearnFixture, ConsistencyConsistentCase) {
  const XmlTree d = Doc(
      "<r><p><a/><n/></p><p><n/></p></r>");
  // Positive: the n with an a-sibling; negative: the other n.
  const NodeId pos = FindNode(d, "n", 0);
  const NodeId neg = FindNode(d, "n", 1);
  const auto report =
      CheckTwigConsistency({TreeExample{&d, pos}}, {TreeExample{&d, neg}});
  ASSERT_EQ(report.verdict, Consistency::kConsistent);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(twig::Selects(*report.witness, d, pos));
  EXPECT_FALSE(twig::Selects(*report.witness, d, neg));
}

TEST_F(LearnFixture, ConsistencyInconsistentCase) {
  // Positive and negative are indistinguishable (same node context).
  const XmlTree d = Doc("<r><n/><n/></r>");
  const auto report = CheckTwigConsistency({TreeExample{&d, FindNode(d, "n", 0)}},
                                           {TreeExample{&d, FindNode(d, "n", 1)}});
  EXPECT_EQ(report.verdict, Consistency::kInconsistent);
}

TEST_F(LearnFixture, ConsistencyMultiplePositives) {
  const XmlTree d = Doc(
      "<r><p><a/><n/></p><p><a/><n/></p><p><n/></p></r>");
  const NodeId p0 = FindNode(d, "n", 0);
  const NodeId p1 = FindNode(d, "n", 1);
  const NodeId neg = FindNode(d, "n", 2);
  const auto report = CheckTwigConsistency(
      {TreeExample{&d, p0}, TreeExample{&d, p1}}, {TreeExample{&d, neg}});
  ASSERT_EQ(report.verdict, Consistency::kConsistent);
  EXPECT_TRUE(twig::Selects(*report.witness, d, p0));
  EXPECT_TRUE(twig::Selects(*report.witness, d, p1));
  EXPECT_FALSE(twig::Selects(*report.witness, d, neg));
}

TEST_F(LearnFixture, ConsistencyEmptyPositives) {
  const XmlTree d = Doc("<r><n/></r>");
  const auto report =
      CheckTwigConsistency({}, {TreeExample{&d, FindNode(d, "n")}});
  EXPECT_EQ(report.verdict, Consistency::kConsistent);
}

TEST_F(LearnFixture, ConsistencyFastPathAndEnumerationAgree) {
  // The PTIME canonical certificate and the exhaustive enumeration must
  // reach the same verdict on both a consistent and an inconsistent sample.
  const XmlTree d = Doc("<r><p><a/><n/></p><p><n/></p></r>");
  const std::vector<TreeExample> pos = {{&d, FindNode(d, "n", 0)}};
  const std::vector<TreeExample> neg = {{&d, FindNode(d, "n", 1)}};
  ConsistencyOptions with_fast;
  ConsistencyOptions without_fast;
  without_fast.canonical_fast_path = false;
  EXPECT_EQ(CheckTwigConsistency(pos, neg, with_fast).verdict,
            CheckTwigConsistency(pos, neg, without_fast).verdict);

  const XmlTree twin = Doc("<r><n/><n/></r>");
  const std::vector<TreeExample> tp = {{&twin, FindNode(twin, "n", 0)}};
  const std::vector<TreeExample> tn = {{&twin, FindNode(twin, "n", 1)}};
  EXPECT_EQ(CheckTwigConsistency(tp, tn, with_fast).verdict,
            CheckTwigConsistency(tp, tn, without_fast).verdict);
}

TEST_F(LearnFixture, ConsistencyDfsBudgetReportsUnknown) {
  // Two long same-label chains have exponentially many alignments; with a
  // starved DFS budget (and no fast path) the checker must answer kUnknown
  // rather than silently claiming inconsistency.
  std::string text;
  for (int i = 0; i < 12; ++i) text += "<a>";
  text += "<m/>";
  for (int i = 0; i < 12; ++i) text += "</a>";
  const XmlTree d1 = Doc(text);
  const XmlTree d2 = Doc(text);
  ConsistencyOptions options;
  options.canonical_fast_path = false;
  options.max_dfs_steps = 2;
  options.max_candidates = 1;
  const auto report = CheckTwigConsistency(
      {TreeExample{&d1, FindNode(d1, "a", 5)},
       TreeExample{&d2, FindNode(d2, "a", 7)}},
      {TreeExample{&d1, FindNode(d1, "a", 0)}}, options);
  EXPECT_EQ(report.verdict, Consistency::kUnknown);
}

TEST_F(LearnFixture, SchemaAwarePruningRemovesImpliedFilters) {
  // Schema: every person has a name; age is optional.
  schema::Ms ms(interner_.Intern("site"));
  auto S = [&](const char* s) { return interner_.Intern(s); };
  ms.SetMultiplicity(S("site"), S("people"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(S("people"), S("person"), schema::Multiplicity::kStar);
  ms.SetMultiplicity(S("person"), S("name"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(S("person"), S("age"), schema::Multiplicity::kOpt);

  const TwigQuery overspecialized = Q("/site/people/person[name][age]");
  const TwigQuery pruned = PruneImpliedFilters(overspecialized, ms);
  // [name] is implied by the schema, [age] is not.
  EXPECT_EQ(pruned.ToString(interner_), "/site/people/person[age]");
}

TEST_F(LearnFixture, SchemaAwarePruningKeepsSemanticsOnValidDocs) {
  schema::Ms ms(interner_.Intern("r"));
  auto S = [&](const char* s) { return interner_.Intern(s); };
  ms.SetMultiplicity(S("r"), S("p"), schema::Multiplicity::kPlus);
  ms.SetMultiplicity(S("p"), S("n"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(S("p"), S("x"), schema::Multiplicity::kOpt);

  const TwigQuery q = Q("/r/p[n][x]");
  const TwigQuery pruned = PruneImpliedFilters(q, ms);
  EXPECT_LT(pruned.Size(), q.Size());
  // On valid documents the two queries agree.
  for (const char* text :
       {"<r><p><n/></p></r>", "<r><p><n/><x/></p><p><n/></p></r>"}) {
    const XmlTree doc = Doc(text);
    ASSERT_TRUE(ms.Validates(doc));
    EXPECT_EQ(twig::Evaluate(q, doc), twig::Evaluate(pruned, doc)) << text;
  }
}

TEST_F(LearnFixture, LearnTwigWithSchemaReportsSizes) {
  schema::Ms ms(interner_.Intern("site"));
  auto S = [&](const char* s) { return interner_.Intern(s); };
  ms.SetMultiplicity(S("site"), S("people"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(S("people"), S("person"), schema::Multiplicity::kStar);
  ms.SetMultiplicity(S("person"), S("name"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(S("person"), S("age"), schema::Multiplicity::kOpt);

  const XmlTree d1 = Doc(
      "<site><people><person><name/><age/></person>"
      "<person><name/></person></people></site>");
  const XmlTree d2 = Doc(
      "<site><people><person><name/><age/></person></people></site>");
  const NodeId a1 = FindNode(d1, "age");
  const NodeId a2 = FindNode(d2, "age");
  auto result = LearnTwigWithSchema(
      {TreeExample{&d1, a1}, TreeExample{&d2, a2}}, ms);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().size_after, result.value().size_before);
  EXPECT_TRUE(twig::Selects(result.value().after, d1, a1));
}

TEST_F(LearnFixture, InteractiveSessionRecoversGoal) {
  const XmlTree doc = Doc(
      "<site><people>"
      "<person><age/><name/></person>"
      "<person><name/></person>"
      "<person><age/><name/></person>"
      "</people></site>");
  GoalTwigOracle oracle(Q("/site/people/person[age]/name"));
  const NodeId seed = FindNode(doc, "name", 0);
  ASSERT_TRUE(oracle.IsPositive(doc, seed));

  InteractiveTwigOptions options;
  auto result = RunInteractiveTwigSession(doc, seed, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
  // The learned query agrees with the goal on the document.
  const TwigQuery goal = Q("/site/people/person[age]/name");
  EXPECT_EQ(twig::Evaluate(result.value().query, doc),
            twig::Evaluate(goal, doc));
  // Uninformative nodes were inferred, not asked: far fewer questions than
  // nodes.
  EXPECT_LT(result.value().questions, doc.NumNodes() - 1);
  EXPECT_GT(result.value().forced_positive + result.value().forced_negative,
            0u);
}

TEST_F(LearnFixture, InteractiveRandomStrategyAlsoTerminates) {
  const XmlTree doc = Doc(
      "<r><p><a/><n/></p><p><n/></p><p><a/><n/></p></r>");
  GoalTwigOracle oracle(Q("/r/p[a]/n"));
  InteractiveTwigOptions options;
  options.strategy = TwigStrategy::kRandom;
  options.seed = 3;
  auto result =
      RunInteractiveTwigSession(doc, FindNode(doc, "n", 0), &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
}

TEST_F(LearnFixture, InteractiveRejectsNegativeSeed) {
  const XmlTree doc = Doc("<r><n/></r>");
  GoalTwigOracle oracle(Q("/r/missing"));
  EXPECT_FALSE(
      RunInteractiveTwigSession(doc, FindNode(doc, "n"), &oracle, {}).ok());
}

TEST_F(LearnFixture, ApproximateConsistentWhenPossible) {
  const XmlTree d = Doc("<r><p><a/><n/></p><p><n/></p></r>");
  auto result = LearnTwigApproximate({TreeExample{&d, FindNode(d, "n", 0)}},
                                     {TreeExample{&d, FindNode(d, "n", 1)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().false_positives, 0u);
  EXPECT_EQ(result.value().false_negatives, 0u);
}

TEST_F(LearnFixture, ApproximateMinimizesErrorWhenInconsistent) {
  // Two identical n's labeled oppositely: any query errs at least once.
  const XmlTree d = Doc("<r><n/><n/></r>");
  auto result = LearnTwigApproximate({TreeExample{&d, FindNode(d, "n", 0)}},
                                     {TreeExample{&d, FindNode(d, "n", 1)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().false_positives + result.value().false_negatives,
            1u);
}

TEST_F(LearnFixture, ApproximateToleratesOutlierPositive) {
  // Two clean positives under p[a], one outlier elsewhere; the best
  // hypothesis sacrifices the outlier rather than over-generalize into the
  // negatives.
  const XmlTree d = Doc(
      "<r><p><a/><n/></p><p><a/><n/></p><q><n/></q>"
      "<p><n/></p></r>");
  const NodeId clean1 = FindNode(d, "n", 0);
  const NodeId clean2 = FindNode(d, "n", 1);
  const NodeId outlier = FindNode(d, "n", 2);
  const NodeId neg = FindNode(d, "n", 3);
  auto result = LearnTwigApproximate(
      {TreeExample{&d, clean1}, TreeExample{&d, clean2},
       TreeExample{&d, outlier}},
      {TreeExample{&d, neg}});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().false_positives + result.value().false_negatives,
            1u);
}

}  // namespace
}  // namespace learn
}  // namespace qlearn
