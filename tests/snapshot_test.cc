// Session hibernation tests: a LearningSession serialized mid-run and
// restored into a freshly constructed session over the same inputs must
// produce the exact remaining question/answer sequence — same questions in
// the same order (including RNG-driven choices), same final hypothesis,
// same stats. Plus the quiescence preconditions and malformed-image
// rejection paths.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "glearn/interactive_path.h"
#include "graph/geo_generator.h"
#include "learn/interactive.h"
#include "relational/generator.h"
#include "relational/relation.h"
#include "rlearn/chain_learner.h"
#include "rlearn/interactive_chain.h"
#include "rlearn/interactive_join.h"
#include "session/session.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace session {
namespace {

// ---------------------------------------------------------------------------
// Join scenario.

class JoinSnapshotFixture : public ::testing::Test {
 protected:
  JoinSnapshotFixture() {
    relational::JoinInstanceOptions opts;
    opts.seed = 5;
    opts.left_rows = 20;
    opts.right_rows = 20;
    opts.left_arity = 3;
    opts.right_arity = 3;
    opts.domain_size = 4;
    instance_ = relational::GenerateJoinInstance(opts, 2);
    auto u = rlearn::PairUniverse::AllCompatible(instance_.left.schema(),
                                                 instance_.right.schema());
    EXPECT_TRUE(u.ok());
    universe_ = std::move(u).value();
    for (size_t i = 0; i < universe_.size(); ++i) {
      for (const relational::AttributePair& g : instance_.goal) {
        if (universe_.pairs()[i] == g) goal_ |= (1ULL << i);
      }
    }
  }

  bool OracleAnswer(const rlearn::PairExample& pair) const {
    return rlearn::MaskSatisfied(
        goal_, universe_.AgreeMask(instance_.left.row(pair.left_row),
                                   instance_.right.row(pair.right_row)));
  }

  LearningSession<rlearn::JoinEngine> MakeSession(
      rlearn::JoinStrategy strategy) const {
    rlearn::InteractiveJoinOptions options;
    options.strategy = strategy;
    SessionOptions session_options;
    session_options.seed = 123;
    return LearningSession<rlearn::JoinEngine>(
        rlearn::JoinEngine(&universe_, &instance_.left, &instance_.right,
                           options),
        session_options);
  }

  /// Drives `session` to completion, appending each (question, answer) to
  /// `transcript`; returns the final hypothesis.
  rlearn::PairMask Drive(
      LearningSession<rlearn::JoinEngine>* session,
      std::vector<std::pair<rlearn::PairExample, bool>>* transcript) const {
    while (auto q = session->NextQuestion()) {
      const bool answer = OracleAnswer(*q);
      transcript->push_back({*q, answer});
      session->Answer(answer);
    }
    return session->Finish();
  }

  relational::JoinInstance instance_;
  rlearn::PairUniverse universe_;
  rlearn::PairMask goal_ = 0;
};

TEST_F(JoinSnapshotFixture, MidRunRestoreReplaysRemainingSequence) {
  // kRandom makes the remaining sequence depend on the RNG stream, so this
  // also proves the xoshiro lanes round-trip; kSplitHalf and kLattice cover
  // the scored selection paths over the restored store.
  for (rlearn::JoinStrategy strategy :
       {rlearn::JoinStrategy::kRandom, rlearn::JoinStrategy::kSplitHalf,
        rlearn::JoinStrategy::kLattice}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    // Reference: one uninterrupted session.
    auto reference = MakeSession(strategy);
    std::vector<std::pair<rlearn::PairExample, bool>> want;
    const rlearn::PairMask want_learned = Drive(&reference, &want);
    ASSERT_GT(want.size(), 4u) << "fixture too easy to split mid-run";

    // Hibernating session: answer the first 3 questions, then snapshot.
    auto original = MakeSession(strategy);
    std::vector<std::pair<rlearn::PairExample, bool>> head;
    for (int i = 0; i < 3; ++i) {
      auto q = original.NextQuestion();
      ASSERT_TRUE(q.has_value());
      const bool answer = OracleAnswer(*q);
      head.push_back({*q, answer});
      original.Answer(answer);
    }
    std::string image;
    ASSERT_TRUE(original.SerializeSnapshot(&image).ok());

    // Restore into a freshly constructed session and drive it to the end.
    auto restored = MakeSession(strategy);
    ASSERT_TRUE(restored.RestoreSnapshot(image).ok());
    std::vector<std::pair<rlearn::PairExample, bool>> tail;
    const rlearn::PairMask learned = Drive(&restored, &tail);

    ASSERT_EQ(head.size() + tail.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      const auto& got = i < head.size() ? head[i] : tail[i - head.size()];
      EXPECT_EQ(got.first.left_row, want[i].first.left_row) << "question " << i;
      EXPECT_EQ(got.first.right_row, want[i].first.right_row)
          << "question " << i;
      EXPECT_EQ(got.second, want[i].second) << "answer " << i;
    }
    EXPECT_EQ(learned, want_learned);
    EXPECT_EQ(restored.stats().questions, reference.stats().questions);
    EXPECT_EQ(restored.stats().forced_positive,
              reference.stats().forced_positive);
    EXPECT_EQ(restored.stats().forced_negative,
              reference.stats().forced_negative);
    EXPECT_EQ(restored.stats().conflicts, reference.stats().conflicts);
  }
}

TEST_F(JoinSnapshotFixture, SnapshotRequiresQuiescence) {
  auto session = MakeSession(rlearn::JoinStrategy::kSplitHalf);
  auto q = session.NextQuestion();
  ASSERT_TRUE(q.has_value());
  std::string image;
  // Pending question: the in-flight item is not serializable.
  EXPECT_EQ(session.SerializeSnapshot(&image).code(),
            common::StatusCode::kFailedPrecondition);
  session.Answer(OracleAnswer(*q));
  EXPECT_TRUE(session.SerializeSnapshot(&image).ok());
  session.Finish();
  // Finished: nothing left to resume.
  EXPECT_EQ(session.SerializeSnapshot(&image).code(),
            common::StatusCode::kFailedPrecondition);
}

TEST_F(JoinSnapshotFixture, RestoreRejectsMalformedImages) {
  auto session = MakeSession(rlearn::JoinStrategy::kSplitHalf);
  std::string image;
  ASSERT_TRUE(session.SerializeSnapshot(&image).ok());

  {
    // Foreign magic.
    std::string bad = image;
    bad[0] = 'X';
    auto fresh = MakeSession(rlearn::JoinStrategy::kSplitHalf);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Unsupported version.
    std::string bad = image;
    bad[4] = static_cast<char>(0x7f);
    auto fresh = MakeSession(rlearn::JoinStrategy::kSplitHalf);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Truncation anywhere in the image.
    for (size_t len : {size_t{0}, size_t{7}, size_t{40}, image.size() - 1}) {
      auto fresh = MakeSession(rlearn::JoinStrategy::kSplitHalf);
      EXPECT_EQ(fresh.RestoreSnapshot(std::string_view(image.data(), len))
                    .code(),
                common::StatusCode::kInvalidArgument)
          << "prefix length " << len;
    }
  }
  {
    // Trailing garbage.
    std::string bad = image + "!";
    auto fresh = MakeSession(rlearn::JoinStrategy::kSplitHalf);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Strategy mismatch: the image records the engine configuration.
    auto fresh = MakeSession(rlearn::JoinStrategy::kRandom);
    EXPECT_EQ(fresh.RestoreSnapshot(image).code(),
              common::StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Chain scenario.

class ChainSnapshotFixture : public ::testing::Test {
 protected:
  ChainSnapshotFixture() {
    relational::ChainInstanceOptions options;
    options.seed = 1303;
    instance_ = relational::GenerateChainInstance(options);
    auto chain = rlearn::JoinChain::Create(instance_.pointers);
    EXPECT_TRUE(chain.ok());
    chain_ = std::move(chain).value();
    goal_ = rlearn::NamePairChainGoal(*chain_, "fk", "key");
  }

  bool OracleAnswer(const rlearn::ChainExample& example) const {
    return rlearn::ChainSatisfied(*chain_, goal_, example);
  }

  LearningSession<rlearn::ChainEngine> MakeSession() const {
    rlearn::InteractiveChainOptions options;
    options.strategy = rlearn::ChainStrategy::kSplitHalf;
    SessionOptions session_options;
    session_options.seed = 77;
    return LearningSession<rlearn::ChainEngine>(
        rlearn::ChainEngine(&*chain_, options), session_options);
  }

  relational::ChainInstance instance_;
  std::optional<rlearn::JoinChain> chain_;
  rlearn::ChainMask goal_;
};

TEST_F(ChainSnapshotFixture, MidRunRestoreReplaysRemainingSequence) {
  auto reference = MakeSession();
  std::vector<std::pair<rlearn::ChainExample, bool>> want;
  while (auto q = reference.NextQuestion()) {
    const bool answer = OracleAnswer(*q);
    want.push_back({*q, answer});
    reference.Answer(answer);
  }
  const rlearn::ChainMask want_learned = reference.Finish();
  ASSERT_GT(want.size(), 4u) << "fixture too easy to split mid-run";

  // Snapshot after every prefix length, not just one: the engine image
  // covers the version space, accumulated negatives, frontier, and store
  // in every mid-run shape this fixture reaches.
  for (size_t split = 1; split + 1 < want.size(); ++split) {
    SCOPED_TRACE(split);
    auto original = MakeSession();
    for (size_t i = 0; i < split; ++i) {
      auto q = original.NextQuestion();
      ASSERT_TRUE(q.has_value());
      ASSERT_EQ(q->rows, want[i].first.rows) << "diverged before snapshot";
      original.Answer(OracleAnswer(*q));
    }
    std::string image;
    ASSERT_TRUE(original.SerializeSnapshot(&image).ok());

    auto restored = MakeSession();
    ASSERT_TRUE(restored.RestoreSnapshot(image).ok());
    size_t i = split;
    while (auto q = restored.NextQuestion()) {
      ASSERT_LT(i, want.size());
      EXPECT_EQ(q->rows, want[i].first.rows) << "question " << i;
      const bool answer = OracleAnswer(*q);
      EXPECT_EQ(answer, want[i].second) << "answer " << i;
      restored.Answer(answer);
      ++i;
    }
    EXPECT_EQ(i, want.size());
    EXPECT_EQ(restored.Finish(), want_learned);
    EXPECT_EQ(restored.stats().questions, reference.stats().questions);
    EXPECT_EQ(restored.stats().forced_positive,
              reference.stats().forced_positive);
    EXPECT_EQ(restored.stats().forced_negative,
              reference.stats().forced_negative);
  }
}

// ---------------------------------------------------------------------------
// Twig scenario.

class TwigSnapshotFixture : public ::testing::Test {
 protected:
  TwigSnapshotFixture() {
    // A people directory with enough structural variety that both
    // strategies ask several questions before converging.
    auto doc = xml::ParseXml(
        "<site><people>"
        "<person><name/><age/><phone/></person>"
        "<person><name/></person>"
        "<person><name/><age/></person>"
        "<person><name/><homepage/></person>"
        "<person><age/><phone/></person>"
        "<person><name/><age/><homepage/></person>"
        "</people></site>",
        &interner_);
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner_);
    EXPECT_TRUE(goal.ok());
    goal_ = std::move(goal).value();
    seed_ = xml::kInvalidNode;
    for (xml::NodeId v = 0; v < doc_.NumNodes(); ++v) {
      if (twig::Selects(goal_, doc_, v)) {
        seed_ = v;
        break;
      }
    }
    EXPECT_NE(seed_, xml::kInvalidNode);
  }

  bool OracleAnswer(xml::NodeId node) const {
    return twig::Selects(goal_, doc_, node);
  }

  LearningSession<learn::TwigEngine> MakeSession(
      learn::TwigStrategy strategy) const {
    learn::InteractiveTwigOptions options;
    options.strategy = strategy;
    SessionOptions session_options;
    session_options.seed = 41;
    return LearningSession<learn::TwigEngine>(
        learn::TwigEngine(&doc_, seed_, options), session_options);
  }

  common::Interner interner_;
  xml::XmlTree doc_;
  twig::TwigQuery goal_;
  xml::NodeId seed_ = xml::kInvalidNode;
};

TEST_F(TwigSnapshotFixture, MidRunRestoreReplaysRemainingSequence) {
  // kRandom exercises the RNG lanes through the round trip; kGreedyImpact
  // the scored selection over the restored consistency state.
  for (learn::TwigStrategy strategy :
       {learn::TwigStrategy::kRandom, learn::TwigStrategy::kGreedyImpact}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    auto reference = MakeSession(strategy);
    std::vector<std::pair<xml::NodeId, bool>> want;
    while (auto q = reference.NextQuestion()) {
      const bool answer = OracleAnswer(*q);
      want.push_back({*q, answer});
      reference.Answer(answer);
    }
    const twig::TwigQuery want_learned = reference.Finish();
    ASSERT_GT(want.size(), 2u) << "fixture too easy to split mid-run";

    for (size_t split = 1; split < want.size(); ++split) {
      SCOPED_TRACE(split);
      auto original = MakeSession(strategy);
      for (size_t i = 0; i < split; ++i) {
        auto q = original.NextQuestion();
        ASSERT_TRUE(q.has_value());
        ASSERT_EQ(*q, want[i].first) << "diverged before snapshot";
        original.Answer(OracleAnswer(*q));
      }
      std::string image;
      ASSERT_TRUE(original.SerializeSnapshot(&image).ok());

      auto restored = MakeSession(strategy);
      ASSERT_TRUE(restored.RestoreSnapshot(image).ok());
      size_t i = split;
      while (auto q = restored.NextQuestion()) {
        ASSERT_LT(i, want.size());
        EXPECT_EQ(*q, want[i].first) << "question " << i;
        const bool answer = OracleAnswer(*q);
        EXPECT_EQ(answer, want[i].second) << "answer " << i;
        restored.Answer(answer);
        ++i;
      }
      EXPECT_EQ(i, want.size());
      EXPECT_EQ(restored.Finish().ToString(interner_),
                want_learned.ToString(interner_));
      EXPECT_EQ(restored.stats().questions, reference.stats().questions);
      EXPECT_EQ(restored.stats().forced_positive,
                reference.stats().forced_positive);
      EXPECT_EQ(restored.stats().forced_negative,
                reference.stats().forced_negative);
    }
  }
}

TEST_F(TwigSnapshotFixture, RestoreRejectsMalformedImages) {
  auto session = MakeSession(learn::TwigStrategy::kGreedyImpact);
  std::string image;
  ASSERT_TRUE(session.SerializeSnapshot(&image).ok());

  {
    // Foreign magic.
    std::string bad = image;
    bad[0] = 'X';
    auto fresh = MakeSession(learn::TwigStrategy::kGreedyImpact);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Unsupported version.
    std::string bad = image;
    bad[4] = static_cast<char>(0x7f);
    auto fresh = MakeSession(learn::TwigStrategy::kGreedyImpact);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Truncation anywhere in the image.
    for (size_t len : {size_t{0}, size_t{7}, size_t{40}, image.size() - 1}) {
      auto fresh = MakeSession(learn::TwigStrategy::kGreedyImpact);
      EXPECT_EQ(
          fresh.RestoreSnapshot(std::string_view(image.data(), len)).code(),
          common::StatusCode::kInvalidArgument)
          << "prefix length " << len;
    }
  }
  {
    // Trailing garbage.
    std::string bad = image + "!";
    auto fresh = MakeSession(learn::TwigStrategy::kGreedyImpact);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Strategy mismatch: the image records the engine configuration.
    auto fresh = MakeSession(learn::TwigStrategy::kRandom);
    EXPECT_EQ(fresh.RestoreSnapshot(image).code(),
              common::StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Path scenario.

class PathSnapshotFixture : public ::testing::Test {
 protected:
  PathSnapshotFixture() {
    graph::GeoOptions geo;
    geo.grid_width = 4;
    geo.grid_height = 3;
    g_ = graph::GenerateGeoGraph(geo, &interner_);
    auto regex = automata::ParseRegex("highway+", &interner_);
    EXPECT_TRUE(regex.ok());
    goal_ = graph::PathQuery{regex.value(), std::nullopt};
    oracle_ = std::make_unique<glearn::GoalPathOracle>(goal_, g_);
    for (graph::EdgeId e = 0; e < g_.NumEdges(); ++e) {
      if (interner_.Name(g_.edge(e).label) == "highway") {
        seed_.start = g_.edge(e).src;
        seed_.edges = {e};
        break;
      }
    }
    EXPECT_FALSE(seed_.edges.empty());
  }

  bool OracleAnswer(const glearn::PathEngine::Question& question) const {
    return oracle_->IsPositive(*question.path);
  }

  LearningSession<glearn::PathEngine> MakeSession(
      glearn::PathStrategy strategy) const {
    glearn::InteractivePathOptions options;
    options.strategy = strategy;
    options.max_path_edges = 3;
    options.max_candidates = 800;
    SessionOptions session_options;
    session_options.seed = 19;
    return LearningSession<glearn::PathEngine>(
        glearn::PathEngine(&g_, seed_, options), session_options);
  }

  common::Interner interner_;
  graph::Graph g_;
  graph::PathQuery goal_;
  std::unique_ptr<glearn::GoalPathOracle> oracle_;
  graph::Path seed_;
};

TEST_F(PathSnapshotFixture, MidRunRestoreReplaysRemainingSequence) {
  // kRandom exercises the RNG lanes; kFrontier the generalization-cost
  // ordering over the restored candidate pool.
  for (glearn::PathStrategy strategy :
       {glearn::PathStrategy::kRandom, glearn::PathStrategy::kFrontier}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    auto reference = MakeSession(strategy);
    std::vector<std::pair<std::vector<common::SymbolId>, bool>> want;
    while (auto q = reference.NextQuestion()) {
      const bool answer = OracleAnswer(*q);
      want.push_back({*q->word, answer});
      reference.Answer(answer);
    }
    const glearn::ConcatPattern want_learned = reference.Finish();
    ASSERT_GT(want.size(), 4u) << "fixture too easy to split mid-run";

    for (size_t split = 1; split + 1 < want.size(); ++split) {
      SCOPED_TRACE(split);
      auto original = MakeSession(strategy);
      for (size_t i = 0; i < split; ++i) {
        auto q = original.NextQuestion();
        ASSERT_TRUE(q.has_value());
        ASSERT_EQ(*q->word, want[i].first) << "diverged before snapshot";
        original.Answer(OracleAnswer(*q));
      }
      std::string image;
      ASSERT_TRUE(original.SerializeSnapshot(&image).ok());

      auto restored = MakeSession(strategy);
      ASSERT_TRUE(restored.RestoreSnapshot(image).ok());
      size_t i = split;
      while (auto q = restored.NextQuestion()) {
        ASSERT_LT(i, want.size());
        EXPECT_EQ(*q->word, want[i].first) << "question " << i;
        const bool answer = OracleAnswer(*q);
        EXPECT_EQ(answer, want[i].second) << "answer " << i;
        restored.Answer(answer);
        ++i;
      }
      EXPECT_EQ(i, want.size());
      EXPECT_EQ(restored.Finish().ToString(interner_),
                want_learned.ToString(interner_));
      EXPECT_EQ(restored.stats().questions, reference.stats().questions);
      EXPECT_EQ(restored.stats().forced_positive,
                reference.stats().forced_positive);
      EXPECT_EQ(restored.stats().forced_negative,
                reference.stats().forced_negative);
    }
  }
}

TEST_F(PathSnapshotFixture, RestoreRejectsMalformedImages) {
  auto session = MakeSession(glearn::PathStrategy::kFrontier);
  std::string image;
  ASSERT_TRUE(session.SerializeSnapshot(&image).ok());

  {
    // Foreign magic.
    std::string bad = image;
    bad[0] = 'X';
    auto fresh = MakeSession(glearn::PathStrategy::kFrontier);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Unsupported version.
    std::string bad = image;
    bad[4] = static_cast<char>(0x7f);
    auto fresh = MakeSession(glearn::PathStrategy::kFrontier);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Truncation anywhere in the image.
    for (size_t len : {size_t{0}, size_t{7}, size_t{40}, image.size() - 1}) {
      auto fresh = MakeSession(glearn::PathStrategy::kFrontier);
      EXPECT_EQ(
          fresh.RestoreSnapshot(std::string_view(image.data(), len)).code(),
          common::StatusCode::kInvalidArgument)
          << "prefix length " << len;
    }
  }
  {
    // Trailing garbage.
    std::string bad = image + "!";
    auto fresh = MakeSession(glearn::PathStrategy::kFrontier);
    EXPECT_EQ(fresh.RestoreSnapshot(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    // Strategy mismatch: the image records the engine configuration.
    auto fresh = MakeSession(glearn::PathStrategy::kRandom);
    EXPECT_EQ(fresh.RestoreSnapshot(image).code(),
              common::StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace session
}  // namespace qlearn
