// Unit tests for the structure-of-arrays candidate store
// (session/candidate_store.h): the 64×64 bit-block transpose against a
// naive per-bit reference, the word-at-a-time sweep kernels against
// per-candidate loops, dense-axis compaction and the id↔dense remap, the
// row facility, and the versioned snapshot image (round-trips, header
// mismatches, truncation).
#include "session/candidate_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "session/snapshot.h"

namespace qlearn {
namespace session {
namespace {

TEST(TransposeTest, MatchesNaivePerBitTranspose) {
  // The canonical Hacker's Delight 7-3 loop assumes MSB-first element
  // numbering; under this codebase's LSB-first convention the unadapted
  // form computes the anti-diagonal transpose (i,j) → (63-j,63-i). This
  // test pins the convention: bit j of a[i] must land at bit i of a[j].
  common::Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    uint64_t a[64];
    for (uint64_t& w : a) w = rng.Next();
    uint64_t expected[64] = {};
    for (int i = 0; i < 64; ++i) {
      for (int j = 0; j < 64; ++j) {
        if (a[i] & (1ULL << j)) expected[j] |= 1ULL << i;
      }
    }
    Transpose64x64(a);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(a[i], expected[i]) << "trial " << trial << " row " << i;
    }
  }
}

TEST(TransposeTest, InvolutionAndIdentity) {
  common::Rng rng(7);
  uint64_t a[64], original[64];
  for (int i = 0; i < 64; ++i) original[i] = a[i] = rng.Next();
  Transpose64x64(a);
  Transpose64x64(a);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], original[i]);

  uint64_t identity[64];
  for (int i = 0; i < 64; ++i) identity[i] = 1ULL << i;
  Transpose64x64(identity);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(identity[i], 1ULL << i);
}

TEST(ForEachSetBitTest, VisitsAscendingAcrossWords) {
  const uint64_t words[3] = {(1ULL << 0) | (1ULL << 63), 0, (1ULL << 5)};
  std::vector<size_t> seen;
  ForEachSetBit(words, 3, [&](size_t d) { seen.push_back(d); });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 63, 128 + 5}));

  seen.clear();
  ForEachSetBit(words, 1, [&](size_t d) { seen.push_back(d); });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 63}));
}

/// A store over `n` candidates and `planes` planes with pseudorandom plane
/// bits (density ~1/2), mirrored into a candidate-major reference.
struct RandomStore {
  CandidateStore store;
  std::vector<std::vector<bool>> bits;  // bits[p][id]

  RandomStore(size_t planes, size_t n, uint64_t seed) {
    common::Rng rng(seed);
    store.Reset(planes, n);
    bits.assign(planes, std::vector<bool>(n, false));
    for (size_t p = 0; p < planes; ++p) {
      for (size_t id = 0; id < n; ++id) {
        if (rng.Next() & 1) {
          store.SetPlaneBit(p, id);
          bits[p][id] = true;
        }
      }
    }
  }
};

TEST(CandidateStoreTest, AndPlanesMatchesPerCandidateLoop) {
  const size_t kPlanes = 7, kN = 130;
  RandomStore rs(kPlanes, kN, 11);
  const uint64_t mask = 0b1011001;

  std::vector<uint64_t> acc;
  rs.store.CopyOpen(&acc);
  rs.store.AndPlanes(0, mask, acc.data());

  for (size_t id = 0; id < kN; ++id) {
    bool expect = true;  // open ∧ AND of the masked planes
    for (size_t p = 0; p < kPlanes; ++p) {
      if ((mask >> p) & 1) expect = expect && rs.bits[p][id];
    }
    const bool got = (acc[id / 64] >> (id % 64)) & 1;
    ASSERT_EQ(got, expect) << "candidate " << id;
  }
  // Empty mask: AND over nothing leaves acc unchanged.
  std::vector<uint64_t> all_open;
  rs.store.CopyOpen(&all_open);
  rs.store.AndPlanes(0, 0, all_open.data());
  for (size_t w = 0; w < all_open.size(); ++w) {
    EXPECT_EQ(all_open[w], rs.store.open_words()[w]);
  }
}

TEST(CandidateStoreTest, AndNotOrPlanesMatchesPerCandidateLoop) {
  const size_t kPlanes = 9, kN = 100;
  RandomStore rs(kPlanes, kN, 13);
  const uint64_t mask = 0b101010101;

  std::vector<uint64_t> acc;
  rs.store.CopyOpen(&acc);
  rs.store.AndNotOrPlanes(0, mask, acc.data());

  for (size_t id = 0; id < kN; ++id) {
    bool any = false;  // survives iff it agrees on none of the masked planes
    for (size_t p = 0; p < kPlanes; ++p) {
      if (((mask >> p) & 1) && rs.bits[p][id]) any = true;
    }
    const bool got = (acc[id / 64] >> (id % 64)) & 1;
    ASSERT_EQ(got, !any) << "candidate " << id;
  }
}

TEST(CandidateStoreTest, PlanePopcountsMatchesPerCandidateLoop) {
  // 70 planes exercises all 7 ripple-carry slices (counts up to 64+).
  const size_t kPlanes = 70, kN = 200;
  RandomStore rs(kPlanes, kN, 17);
  // Mask covering planes [base, base+64) with base 3.
  const size_t base = 3;
  const uint64_t mask = ~0ULL >> 7;  // 57 planes

  std::vector<uint8_t> counts;
  rs.store.PlanePopcounts(base, mask, &counts);
  ASSERT_GE(counts.size(), kN);

  for (size_t id = 0; id < kN; ++id) {
    unsigned expect = 0;
    for (size_t b = 0; b < 64; ++b) {
      if (((mask >> b) & 1) && rs.bits[base + b][id]) ++expect;
    }
    ASSERT_EQ(counts[id], expect) << "candidate " << id;
  }
}

TEST(CandidateStoreTest, OpenActiveLifecycle) {
  CandidateStore store;
  store.Reset(2, 10);
  EXPECT_EQ(store.open_count(), 10u);
  EXPECT_TRUE(store.IsOpen(4));
  EXPECT_TRUE(store.IsActive(4));

  store.OnAsked(4);  // leaves the active set only
  EXPECT_FALSE(store.IsOpen(4));
  EXPECT_TRUE(store.IsActive(4));
  EXPECT_EQ(store.open_count(), 9u);

  store.OnSettled(4);
  EXPECT_FALSE(store.IsActive(4));
  store.OnSettled(4);  // idempotent
  EXPECT_EQ(store.open_count(), 9u);

  store.OnSettled(7);  // settle without asking (forced label)
  EXPECT_FALSE(store.IsOpen(7));
  EXPECT_FALSE(store.IsActive(7));
  EXPECT_EQ(store.open_count(), 8u);
}

TEST(CandidateStoreTest, CompactRemapsDenseAxisAndPlanes) {
  const size_t kPlanes = 3, kN = 150;
  RandomStore rs(kPlanes, kN, 19);
  // Settle every third candidate.
  for (size_t id = 0; id < kN; id += 3) rs.store.OnSettled(id);
  const size_t open_before = rs.store.open_count();

  rs.store.Compact();

  EXPECT_EQ(rs.store.dense_size(), open_before);
  EXPECT_EQ(rs.store.open_count(), open_before);
  size_t prev_id = 0;
  for (size_t d = 0; d < rs.store.dense_size(); ++d) {
    const size_t id = rs.store.IdOf(d);
    if (d > 0) {
      EXPECT_GT(id, prev_id);  // ascending-id order preserved
    }
    prev_id = id;
    EXPECT_NE(id % 3, 0u);
    EXPECT_EQ(rs.store.DenseOf(id), d);
    EXPECT_TRUE(rs.store.IsOpen(id));
    for (size_t p = 0; p < kPlanes; ++p) {
      EXPECT_EQ(rs.store.PlaneBitForTest(p, id), rs.bits[p][id] ? true : false)
          << "plane " << p << " id " << id;
    }
  }
  for (size_t id = 0; id < kN; id += 3) {
    EXPECT_EQ(rs.store.DenseOf(id), CandidateStore::kNoDense);
    EXPECT_FALSE(rs.store.IsOpen(id));
    // Settling a compacted-away candidate stays a harmless no-op.
    rs.store.OnSettled(id);
  }
}

TEST(CandidateStoreTest, MaybeCompactPolicy) {
  CandidateStore store;
  store.Reset(1, 300);
  // Below the half-settled threshold: no compaction.
  for (size_t id = 0; id < 100; ++id) store.OnSettled(id);
  EXPECT_FALSE(store.MaybeCompact());
  EXPECT_EQ(store.dense_size(), 300u);
  // Cross it.
  for (size_t id = 100; id < 160; ++id) store.OnSettled(id);
  EXPECT_TRUE(store.MaybeCompact());
  EXPECT_EQ(store.dense_size(), 140u);

  // A store with rows pins the dense axis and never compacts.
  CandidateStore pinned;
  pinned.Reset(4, 300);
  pinned.ConfigureRows(4);
  for (size_t id = 0; id < 299; ++id) pinned.OnSettled(id);
  EXPECT_FALSE(pinned.MaybeCompact());
  EXPECT_EQ(pinned.dense_size(), 300u);

  // Tiny stores are not worth remapping.
  CandidateStore tiny;
  tiny.Reset(1, 20);
  for (size_t id = 0; id < 19; ++id) tiny.OnSettled(id);
  EXPECT_FALSE(tiny.MaybeCompact());
}

TEST(CandidateStoreTest, RowsLifecycleAndKernels) {
  CandidateStore store;
  store.Reset(130, 5);
  store.ConfigureRows(130);
  EXPECT_TRUE(store.has_rows());
  EXPECT_EQ(store.row_words(), 3u);
  EXPECT_FALSE(store.RowFresh(2));

  uint64_t* row = store.BeginRow(2);
  row[0] = (1ULL << 3) | (1ULL << 40);
  row[2] = 1ULL << 1;  // node 129
  EXPECT_TRUE(store.RowFresh(2));
  EXPECT_TRUE(store.RowPresent(2));

  store.MarkRowAbsent(3);
  EXPECT_TRUE(store.RowFresh(3));
  EXPECT_FALSE(store.RowPresent(3));

  std::vector<uint64_t> other(store.row_words(), 0);
  other[0] = 1ULL << 40;
  other[2] = 1ULL << 1;
  EXPECT_EQ(store.PopcountRowAnd(2, other.data()), 2u);
  EXPECT_TRUE(store.RowIntersects(2, other.data()));
  other[0] = 0;
  other[2] = 0;
  EXPECT_FALSE(store.RowIntersects(2, other.data()));

  store.InvalidateRows();  // O(1) epoch bump stales everything
  EXPECT_FALSE(store.RowFresh(2));
  EXPECT_FALSE(store.RowFresh(3));
}

TEST(CandidateStoreTest, TransposeActiveRowsToPlanesMatchesRows) {
  const size_t kNodes = 130, kN = 70;
  CandidateStore store;
  store.Reset(kNodes, kN);
  store.ConfigureRows(kNodes);
  common::Rng rng(23);
  std::vector<std::vector<bool>> selected(kN, std::vector<bool>(kNodes));
  for (size_t id = 0; id < kN; ++id) {
    uint64_t* row = store.BeginRow(id);
    for (size_t u = 0; u < kNodes; ++u) {
      if (rng.Next() & 1) {
        row[u / 64] |= 1ULL << (u % 64);
        selected[id][u] = true;
      }
    }
  }
  // Deactivate a few candidates; their bits must not reach the planes.
  store.OnSettled(10);
  store.OnSettled(64);

  store.TransposeActiveRowsToPlanes();

  for (size_t u = 0; u < kNodes; ++u) {
    for (size_t id = 0; id < kN; ++id) {
      const bool expect = store.IsActive(id) && selected[id][u];
      ASSERT_EQ(store.PlaneBitForTest(u, id), expect)
          << "plane " << u << " candidate " << id;
    }
  }
}

TEST(CandidateStoreSnapshotTest, RoundTripPreservesState) {
  const size_t kPlanes = 5, kN = 90;
  RandomStore rs(kPlanes, kN, 29);
  rs.store.OnAsked(1);
  for (size_t id = 0; id < kN; id += 2) rs.store.OnSettled(id);
  rs.store.MaybeCompact();

  SnapshotWriter writer;
  rs.store.SerializeSnapshot(&writer);
  const std::string image = writer.bytes();

  CandidateStore restored;
  restored.Reset(kPlanes, kN);
  SnapshotReader reader(image);
  ASSERT_TRUE(restored.RestoreSnapshot(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(restored.dense_size(), rs.store.dense_size());
  EXPECT_EQ(restored.open_count(), rs.store.open_count());
  for (size_t id = 0; id < kN; ++id) {
    EXPECT_EQ(restored.DenseOf(id), rs.store.DenseOf(id));
    EXPECT_EQ(restored.IsOpen(id), rs.store.IsOpen(id));
    EXPECT_EQ(restored.IsActive(id), rs.store.IsActive(id));
    if (rs.store.DenseOf(id) == CandidateStore::kNoDense) continue;
    for (size_t p = 0; p < kPlanes; ++p) {
      EXPECT_EQ(restored.PlaneBitForTest(p, id),
                rs.store.PlaneBitForTest(p, id));
    }
  }
  for (size_t d = 0; d < restored.dense_size(); ++d) {
    EXPECT_EQ(restored.IdOf(d), rs.store.IdOf(d));
  }
}

TEST(CandidateStoreSnapshotTest, RoundTripFreshAndConvergedStores) {
  // Fresh store: nothing settled yet.
  {
    CandidateStore store;
    store.Reset(3, 40);
    SnapshotWriter writer;
    store.SerializeSnapshot(&writer);
    CandidateStore restored;
    restored.Reset(3, 40);
    SnapshotReader reader(writer.bytes());
    ASSERT_TRUE(restored.RestoreSnapshot(&reader).ok());
    EXPECT_EQ(restored.open_count(), 40u);
  }
  // Converged store: everything settled and compacted to nothing.
  {
    CandidateStore store;
    store.Reset(3, 200);
    for (size_t id = 0; id < 200; ++id) store.OnSettled(id);
    store.Compact();
    EXPECT_EQ(store.dense_size(), 0u);
    SnapshotWriter writer;
    store.SerializeSnapshot(&writer);
    CandidateStore restored;
    restored.Reset(3, 200);
    SnapshotReader reader(writer.bytes());
    ASSERT_TRUE(restored.RestoreSnapshot(&reader).ok());
    EXPECT_EQ(restored.dense_size(), 0u);
    EXPECT_EQ(restored.open_count(), 0u);
    EXPECT_EQ(restored.DenseOf(123), CandidateStore::kNoDense);
  }
}

TEST(CandidateStoreSnapshotTest, RejectsMismatchedGeometry) {
  CandidateStore store;
  store.Reset(4, 50);
  SnapshotWriter writer;
  store.SerializeSnapshot(&writer);
  const std::string image = writer.bytes();

  {
    // Wrong plane count.
    CandidateStore other;
    other.Reset(5, 50);
    SnapshotReader reader(image);
    const common::Status s = other.RestoreSnapshot(&reader);
    EXPECT_EQ(s.code(), common::StatusCode::kInvalidArgument);
  }
  {
    // Wrong capacity.
    CandidateStore other;
    other.Reset(4, 51);
    SnapshotReader reader(image);
    const common::Status s = other.RestoreSnapshot(&reader);
    EXPECT_EQ(s.code(), common::StatusCode::kInvalidArgument);
  }
  {
    // Wrong row geometry.
    CandidateStore other;
    other.Reset(4, 50);
    other.ConfigureRows(4);
    SnapshotReader reader(image);
    const common::Status s = other.RestoreSnapshot(&reader);
    EXPECT_EQ(s.code(), common::StatusCode::kInvalidArgument);
  }
  {
    // Foreign magic.
    std::string bad = image;
    bad[0] = 'X';
    CandidateStore other;
    other.Reset(4, 50);
    SnapshotReader reader(bad);
    const common::Status s = other.RestoreSnapshot(&reader);
    EXPECT_EQ(s.code(), common::StatusCode::kInvalidArgument);
  }
  {
    // Unsupported version.
    std::string bad = image;
    bad[4] = static_cast<char>(0x7f);
    CandidateStore other;
    other.Reset(4, 50);
    SnapshotReader reader(bad);
    const common::Status s = other.RestoreSnapshot(&reader);
    EXPECT_EQ(s.code(), common::StatusCode::kInvalidArgument);
  }
}

TEST(CandidateStoreSnapshotTest, RejectsTruncationAtEveryPrefix) {
  CandidateStore store;
  store.Reset(2, 70);
  store.SetPlaneBit(0, 3);
  store.OnSettled(5);
  SnapshotWriter writer;
  store.SerializeSnapshot(&writer);
  const std::string image = writer.bytes();

  for (size_t len = 0; len < image.size(); ++len) {
    CandidateStore restored;
    restored.Reset(2, 70);
    SnapshotReader reader(std::string_view(image.data(), len));
    const common::Status s = restored.RestoreSnapshot(&reader);
    ASSERT_FALSE(s.ok()) << "prefix length " << len;
    ASSERT_EQ(s.code(), common::StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace session
}  // namespace qlearn
