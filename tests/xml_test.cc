// Unit tests for the XML substrate: tree arena, parser, serializer, and the
// XMark-style / random generators.
#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "xml/random_tree.h"
#include "xml/xmark.h"
#include "xml/xml_parser.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace xml {
namespace {

using common::Interner;

TEST(XmlTreeTest, BuildAndNavigate) {
  Interner in;
  XmlTree t;
  const NodeId root = t.AddRoot(in.Intern("site"));
  const NodeId people = t.AddChild(root, in.Intern("people"));
  const NodeId person = t.AddChild(people, in.Intern("person"));
  const NodeId name = t.AddChild(person, in.Intern("name"));

  EXPECT_EQ(t.NumNodes(), 4u);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.parent(name), person);
  EXPECT_EQ(t.parent(root), kInvalidNode);
  EXPECT_EQ(t.depth(root), 0u);
  EXPECT_EQ(t.depth(name), 3u);
  EXPECT_EQ(t.children(people).size(), 1u);
  EXPECT_EQ(t.Height(), 4u);
}

TEST(XmlTreeTest, AncestorRelation) {
  Interner in;
  XmlTree t;
  const NodeId r = t.AddRoot(in.Intern("a"));
  const NodeId b = t.AddChild(r, in.Intern("b"));
  const NodeId c = t.AddChild(b, in.Intern("c"));
  const NodeId d = t.AddChild(r, in.Intern("d"));
  EXPECT_TRUE(t.IsProperAncestor(r, c));
  EXPECT_TRUE(t.IsProperAncestor(b, c));
  EXPECT_FALSE(t.IsProperAncestor(c, c));
  EXPECT_FALSE(t.IsProperAncestor(c, b));
  EXPECT_FALSE(t.IsProperAncestor(d, c));
}

TEST(XmlTreeTest, PreOrderVisitsAll) {
  Interner in;
  XmlTree t;
  const NodeId r = t.AddRoot(in.Intern("a"));
  t.AddChild(r, in.Intern("b"));
  const NodeId c = t.AddChild(r, in.Intern("c"));
  t.AddChild(c, in.Intern("d"));
  const auto order = t.PreOrder();
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], r);
  // Parents always precede children.
  std::set<NodeId> seen;
  for (NodeId n : order) {
    if (n != r) {
      EXPECT_TRUE(seen.count(t.parent(n))) << n;
    }
    seen.insert(n);
  }
}

TEST(XmlTreeTest, DescendantsExcludeSelf) {
  Interner in;
  XmlTree t;
  const NodeId r = t.AddRoot(in.Intern("a"));
  const NodeId b = t.AddChild(r, in.Intern("b"));
  t.AddChild(b, in.Intern("c"));
  EXPECT_EQ(t.Descendants(r).size(), 2u);
  EXPECT_EQ(t.Descendants(b).size(), 1u);
}

TEST(XmlTreeTest, ChildLabelBagSorted) {
  Interner in;
  XmlTree t;
  const NodeId r = t.AddRoot(in.Intern("a"));
  t.AddChild(r, in.Intern("z"));
  t.AddChild(r, in.Intern("b"));
  t.AddChild(r, in.Intern("z"));
  const auto bag = t.ChildLabelBag(r);
  ASSERT_EQ(bag.size(), 3u);
  EXPECT_LE(bag[0], bag[1]);
  EXPECT_LE(bag[1], bag[2]);
}

TEST(XmlTreeTest, GraftSubtreeCopiesDeeply) {
  Interner in;
  XmlTree src;
  const NodeId sr = src.AddRoot(in.Intern("x"));
  const NodeId sy = src.AddChild(sr, in.Intern("y"));
  src.AddChild(sy, in.Intern("z"));

  XmlTree dst;
  const NodeId dr = dst.AddRoot(in.Intern("root"));
  const NodeId copied = dst.GraftSubtree(dr, src, sy);
  EXPECT_EQ(dst.NumNodes(), 3u);
  EXPECT_EQ(dst.label(copied), in.Intern("y"));
  EXPECT_EQ(dst.children(copied).size(), 1u);
}

TEST(XmlParserTest, ParsesNestedElements) {
  Interner in;
  auto t = ParseXml("<a><b><c/></b><b/></a>", &in);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().NumNodes(), 4u);
  EXPECT_EQ(in.Name(t.value().label(0)), "a");
}

TEST(XmlParserTest, AttributesBecomeChildren) {
  Interner in;
  auto t = ParseXml("<a id=\"1\" class='x'/>", &in);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().NumNodes(), 3u);
  EXPECT_EQ(in.Name(t.value().label(t.value().children(0)[0])), "@id");
}

TEST(XmlParserTest, AttributesCanBeDropped) {
  Interner in;
  XmlParseOptions opts;
  opts.keep_attributes = false;
  auto t = ParseXml("<a id=\"1\"/>", &in, opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().NumNodes(), 1u);
}

TEST(XmlParserTest, TextHandling) {
  Interner in;
  auto without = ParseXml("<a>hello</a>", &in);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without.value().NumNodes(), 1u);

  XmlParseOptions opts;
  opts.keep_text = true;
  auto with = ParseXml("<a>hello</a>", &in, opts);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with.value().NumNodes(), 2u);
}

TEST(XmlParserTest, SkipsCommentsAndPis) {
  Interner in;
  auto t = ParseXml("<?xml version=\"1.0\"?><!-- c --><a><!-- x --><b/></a>",
                    &in);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().NumNodes(), 2u);
}

TEST(XmlParserTest, RejectsMalformedInput) {
  Interner in;
  EXPECT_FALSE(ParseXml("<a><b></a>", &in).ok());     // mismatched close
  EXPECT_FALSE(ParseXml("<a>", &in).ok());            // unclosed
  EXPECT_FALSE(ParseXml("</a>", &in).ok());           // close without open
  EXPECT_FALSE(ParseXml("<a/><b/>", &in).ok());       // two roots
  EXPECT_FALSE(ParseXml("", &in).ok());               // empty
  EXPECT_FALSE(ParseXml("text<a/>", &in).ok());       // stray text
  EXPECT_FALSE(ParseXml("<a attr=oops/>", &in).ok()); // unquoted attribute
}

TEST(XmlParserTest, RoundTripWithSerializer) {
  Interner in;
  auto t = ParseXml("<a><b><c/><c/></b><d/></a>", &in);
  ASSERT_TRUE(t.ok());
  const std::string xml = t.value().ToXml(in);
  auto t2 = ParseXml(xml, &in);
  ASSERT_TRUE(t2.ok()) << xml;
  EXPECT_EQ(t2.value().NumNodes(), t.value().NumNodes());
}

TEST(XMarkTest, DeterministicForSeed) {
  Interner in1;
  Interner in2;
  XMarkOptions opts;
  opts.seed = 99;
  const XmlTree a = GenerateXMark(opts, &in1);
  const XmlTree b = GenerateXMark(opts, &in2);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
}

TEST(XMarkTest, HasExpectedStructure) {
  Interner in;
  XMarkOptions opts;
  const XmlTree t = GenerateXMark(opts, &in);
  EXPECT_EQ(in.Name(t.label(t.root())), "site");
  // The six continents and top-level sections exist.
  std::set<std::string> top;
  for (NodeId c : t.children(t.root())) top.insert(in.Name(t.label(c)));
  EXPECT_TRUE(top.count("regions"));
  EXPECT_TRUE(top.count("people"));
  EXPECT_TRUE(top.count("open_auctions"));
  EXPECT_TRUE(top.count("closed_auctions"));
  EXPECT_TRUE(top.count("categories"));
  // Every person has a name and an emailaddress.
  int persons = 0;
  for (NodeId n : t.PreOrder()) {
    if (in.Name(t.label(n)) != "person") continue;
    ++persons;
    std::set<std::string> kids;
    for (NodeId c : t.children(n)) kids.insert(in.Name(t.label(c)));
    EXPECT_TRUE(kids.count("name"));
    EXPECT_TRUE(kids.count("emailaddress"));
  }
  EXPECT_EQ(persons, opts.num_people);
}

TEST(XMarkTest, ScalesWithOptions) {
  Interner in;
  XMarkOptions small;
  small.num_people = 5;
  small.num_open_auctions = 2;
  small.num_closed_auctions = 2;
  XMarkOptions big = small;
  big.num_people = 50;
  EXPECT_LT(GenerateXMark(small, &in).NumNodes(),
            GenerateXMark(big, &in).NumNodes());
}

TEST(RandomTreeTest, RespectsDepthBound) {
  Interner in;
  common::Rng rng(3);
  RandomTreeOptions opts;
  opts.max_depth = 3;
  for (int i = 0; i < 20; ++i) {
    const XmlTree t = GenerateRandomTree(opts, &rng, &in);
    EXPECT_LE(t.Height(), 4u);  // root + 3 levels
  }
}

TEST(RandomTreeTest, UsesDeclaredAlphabet) {
  Interner in;
  common::Rng rng(4);
  RandomTreeOptions opts;
  opts.alphabet_size = 2;
  const XmlTree t = GenerateRandomTree(opts, &rng, &in);
  for (NodeId n : t.PreOrder()) {
    const std::string& name = in.Name(t.label(n));
    EXPECT_TRUE(name == "root" || name == "l0" || name == "l1") << name;
  }
}

}  // namespace
}  // namespace xml
}  // namespace qlearn
