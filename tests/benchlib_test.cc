// Tests for the benchmark library: XPathMark-style query set composition,
// statistics helpers, goal-query pool, and the convergence harness.
#include <gtest/gtest.h>

#include <set>

#include "benchlib/experiment_util.h"
#include "benchlib/xpathmark.h"
#include "schema/inference.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"

namespace qlearn {
namespace benchlib {
namespace {

TEST(XPathMarkTest, TwentyQueriesWithFifteenPercentTwigs) {
  const auto& queries = XPathMarkQueries();
  EXPECT_EQ(queries.size(), 20u);
  int twigs = 0;
  std::set<std::string> ids;
  for (const auto& q : queries) {
    EXPECT_TRUE(ids.insert(q.id).second) << "duplicate id " << q.id;
    EXPECT_FALSE(q.xpath.empty());
    if (q.in_twig_fragment) {
      ++twigs;
      EXPECT_TRUE(q.exclusion_reason.empty());
    } else {
      EXPECT_FALSE(q.exclusion_reason.empty()) << q.id;
    }
  }
  EXPECT_EQ(twigs, 3);  // 3/20 = 15%, the paper's reported fraction
}

TEST(XPathMarkTest, TwigQueriesParseAndMatchXMark) {
  common::Interner interner;
  xml::XMarkOptions opts;
  opts.seed = 3;
  opts.num_closed_auctions = 20;
  const xml::XmlTree doc = xml::GenerateXMark(opts, &interner);
  for (const auto& q : XPathMarkQueries()) {
    if (!q.in_twig_fragment) continue;
    auto parsed = twig::ParseTwig(q.xpath, &interner);
    ASSERT_TRUE(parsed.ok()) << q.id << ": " << parsed.status().ToString();
    // Each in-fragment query selects something on a large document.
    EXPECT_FALSE(twig::Evaluate(parsed.value(), doc).empty()) << q.id;
  }
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_DOUBLE_EQ(Mean({2, 4}), 3);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0);
  EXPECT_DOUBLE_EQ(StdDev({2, 4}), 1);
}

TEST(GoalQueriesTest, AllParseAndAreAnchored) {
  common::Interner interner;
  for (const std::string& text : XMarkGoalQueries()) {
    auto q = twig::ParseTwig(text, &interner);
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_TRUE(q.value().IsAnchored()) << text;
  }
}

TEST(ConvergenceTest, SimpleGoalConvergesWithFewExamples) {
  common::Interner interner;
  std::vector<xml::XmlTree> docs;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    xml::XMarkOptions opts;
    opts.seed = 100 + seed;
    opts.num_people = 12;
    docs.push_back(xml::GenerateXMark(opts, &interner));
  }
  std::vector<const xml::XmlTree*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  auto goal = twig::ParseTwig("/site/people/person[phone]/name", &interner);
  ASSERT_TRUE(goal.ok());
  const int n = ExamplesUntilConvergence(goal.value(), ptrs, &interner);
  ASSERT_GT(n, 0);
  EXPECT_LE(n, 6);
}

TEST(ConvergenceTest, InformativeOrderNeverSlower) {
  common::Interner interner;
  std::vector<xml::XmlTree> docs;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    xml::XMarkOptions opts;
    opts.seed = 300 + seed;
    opts.num_people = 10;
    docs.push_back(xml::GenerateXMark(opts, &interner));
  }
  std::vector<const xml::XmlTree*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  auto goal = twig::ParseTwig("/site/people/person/name", &interner);
  ASSERT_TRUE(goal.ok());
  const int arbitrary = ExamplesUntilConvergence(
      goal.value(), ptrs, &interner, 16, ConvergenceCriterion::kAnswers,
      ExampleOrder::kRoundRobin);
  const int informative = ExamplesUntilConvergence(
      goal.value(), ptrs, &interner, 16, ConvergenceCriterion::kAnswers,
      ExampleOrder::kCounterexample);
  ASSERT_GT(informative, 0);
  ASSERT_GT(arbitrary, 0);
  // A counterexample-driven user never needs more examples than one who
  // feeds lookalike matches in document order.
  EXPECT_LE(informative, arbitrary);
}

TEST(ConvergenceTest, SchemaAwareVariantConverges) {
  common::Interner interner;
  std::vector<xml::XmlTree> docs;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    xml::XMarkOptions opts;
    opts.seed = 400 + seed;
    opts.num_people = 10;
    docs.push_back(xml::GenerateXMark(opts, &interner));
  }
  std::vector<const xml::XmlTree*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  auto ms = schema::InferMs(ptrs);
  ASSERT_TRUE(ms.ok());
  auto goal = twig::ParseTwig("/site/people/person[phone]/name", &interner);
  ASSERT_TRUE(goal.ok());
  const int n = ExamplesUntilConvergenceWithSchema(
      goal.value(), ptrs, ms.value(), &interner, 16,
      ExampleOrder::kCounterexample);
  EXPECT_GT(n, 0);
  EXPECT_LE(n, 10);
}

TEST(ConvergenceTest, ReportsFailureWhenNoMatches) {
  common::Interner interner;
  xml::XMarkOptions opts;
  const xml::XmlTree doc = xml::GenerateXMark(opts, &interner);
  auto goal = twig::ParseTwig("/site/nonexistent_label_xyz", &interner);
  ASSERT_TRUE(goal.ok());
  EXPECT_EQ(ExamplesUntilConvergence(goal.value(), {&doc}, &interner), -1);
}

}  // namespace
}  // namespace benchlib
}  // namespace qlearn
