// Tests for join learning: the PTIME equi-join consistency check and version
// space, the NP semijoin solver (exact vs greedy, cross-validated against
// brute force), and the interactive protocol with uninformative-pair
// propagation.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.h"
#include "relational/generator.h"
#include "rlearn/equijoin_learner.h"
#include "rlearn/interactive_join.h"
#include "rlearn/join_hypothesis.h"
#include "rlearn/semijoin_learner.h"

namespace qlearn {
namespace rlearn {
namespace {

using relational::Attribute;
using relational::AttributePair;
using relational::JoinInstance;
using relational::JoinInstanceOptions;
using relational::Relation;
using relational::RelationSchema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Value I(int64_t v) { return Value(v); }

/// Two small int relations with controllable values.
class RlearnFixture : public ::testing::Test {
 protected:
  RlearnFixture()
      : left_(RelationSchema("R", {Attribute{"a0", ValueType::kInt},
                                   Attribute{"a1", ValueType::kInt}})),
        right_(RelationSchema("S", {Attribute{"b0", ValueType::kInt},
                                    Attribute{"b1", ValueType::kInt}})) {}

  PairUniverse Universe() {
    auto u = PairUniverse::AllCompatible(left_.schema(), right_.schema());
    EXPECT_TRUE(u.ok());
    return std::move(u).value();
  }

  Relation left_;
  Relation right_;
};

TEST_F(RlearnFixture, UniverseBasics) {
  const PairUniverse u = Universe();
  EXPECT_EQ(u.size(), 4u);  // 2x2 int pairs
  EXPECT_EQ(u.FullMask(), 0xFULL);
  left_.InsertUnchecked({I(1), I(2)});
  right_.InsertUnchecked({I(1), I(9)});
  // Agreements: a0=b0 only.
  const PairMask agree = u.AgreeMask(left_.row(0), right_.row(0));
  EXPECT_EQ(std::popcount(agree), 1);
  EXPECT_EQ(u.Decode(agree)[0], (AttributePair{0, 0}));
}

TEST_F(RlearnFixture, UniverseCapAt64) {
  std::vector<Attribute> many;
  for (int i = 0; i < 9; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    many.push_back(Attribute{name, ValueType::kInt});
  }
  RelationSchema wide("W", many);
  EXPECT_FALSE(PairUniverse::AllCompatible(wide, wide).ok());  // 81 > 64
}

TEST_F(RlearnFixture, EquiJoinConsistencyPositiveOnly) {
  left_.InsertUnchecked({I(1), I(2)});
  right_.InsertUnchecked({I(1), I(2)});
  right_.InsertUnchecked({I(1), I(7)});
  const PairUniverse u = Universe();
  // Two positives: (0,0) agrees on a0=b0, a1=b1; (0,1) only on a0=b0.
  const auto res = CheckEquiJoinConsistency(
      u, left_, right_, {PairExample{0, 0}, PairExample{0, 1}}, {});
  ASSERT_TRUE(res.consistent);
  EXPECT_EQ(u.Decode(res.most_specific),
            (std::vector<AttributePair>{{0, 0}}));
}

TEST_F(RlearnFixture, EquiJoinConsistencyDetectsConflict) {
  left_.InsertUnchecked({I(1), I(2)});
  right_.InsertUnchecked({I(1), I(2)});
  const PairUniverse u = Universe();
  // The same pair labeled positive and negative is inconsistent.
  const auto res = CheckEquiJoinConsistency(
      u, left_, right_, {PairExample{0, 0}}, {PairExample{0, 0}});
  EXPECT_FALSE(res.consistent);
}

TEST_F(RlearnFixture, EquiJoinEmptyIntersectionInconsistent) {
  left_.InsertUnchecked({I(1), I(2)});
  right_.InsertUnchecked({I(1), I(9)});   // agrees only on a0=b0
  right_.InsertUnchecked({I(8), I(2)});   // agrees only on a1=b1
  const PairUniverse u = Universe();
  const auto res = CheckEquiJoinConsistency(
      u, left_, right_, {PairExample{0, 0}, PairExample{0, 1}}, {});
  EXPECT_FALSE(res.consistent);
}

TEST_F(RlearnFixture, VersionSpaceClassification) {
  left_.InsertUnchecked({I(1), I(2)});   // r0
  left_.InsertUnchecked({I(1), I(5)});   // r1
  right_.InsertUnchecked({I(1), I(2)});  // s0
  right_.InsertUnchecked({I(1), I(5)});  // s1
  right_.InsertUnchecked({I(7), I(7)});  // s2
  const PairUniverse u = Universe();
  EquiJoinVersionSpace vs(&u, &left_, &right_);
  vs.AddPositive(PairExample{0, 0});  // agrees on a0=b0, a1=b1
  // (r1, s1) also agrees on both: forced positive.
  EXPECT_EQ(vs.Classify(PairExample{1, 1}),
            EquiJoinVersionSpace::PairStatus::kForcedPositive);
  // (r0, s2) agrees on nothing: forced negative.
  EXPECT_EQ(vs.Classify(PairExample{0, 2}),
            EquiJoinVersionSpace::PairStatus::kForcedNegative);
  // (r0, s1) agrees on a0=b0 only: informative (θ could be {a0=b0} or both).
  EXPECT_EQ(vs.Classify(PairExample{0, 1}),
            EquiJoinVersionSpace::PairStatus::kInformative);
}

TEST_F(RlearnFixture, SemijoinConsistentSimple) {
  left_.InsertUnchecked({I(1), I(2)});   // positive: matches s0 on a0=b0
  left_.InsertUnchecked({I(9), I(9)});   // negative: matches nothing
  right_.InsertUnchecked({I(1), I(7)});
  const PairUniverse u = Universe();
  const auto res = CheckSemijoinConsistency(u, left_, right_,
                                            {RowExample{0}}, {RowExample{1}});
  ASSERT_TRUE(res.consistent);
  EXPECT_NE(res.witness, 0u);
}

TEST_F(RlearnFixture, SemijoinInconsistentWhenNegativeMatchesEverything) {
  left_.InsertUnchecked({I(1), I(1)});
  left_.InsertUnchecked({I(1), I(1)});   // identical rows, opposite labels
  right_.InsertUnchecked({I(1), I(1)});
  const PairUniverse u = Universe();
  const auto res = CheckSemijoinConsistency(u, left_, right_,
                                            {RowExample{0}}, {RowExample{1}});
  EXPECT_FALSE(res.consistent);
}

TEST_F(RlearnFixture, SemijoinPositiveWithoutWitness) {
  left_.InsertUnchecked({I(5), I(5)});
  right_.InsertUnchecked({I(1), I(2)});
  const PairUniverse u = Universe();
  const auto res =
      CheckSemijoinConsistency(u, left_, right_, {RowExample{0}}, {});
  EXPECT_FALSE(res.consistent);
}

TEST_F(RlearnFixture, SemijoinNeedsWitnessCoordination) {
  // Positive rows each match S on different single pairs; the hypothesis
  // must fit within some witness per positive simultaneously.
  left_.InsertUnchecked({I(1), I(9)});   // matches s0 only via a0=b0
  left_.InsertUnchecked({I(9), I(2)});   // matches s1 only via a1=b1
  right_.InsertUnchecked({I(1), I(8)});  // s0
  right_.InsertUnchecked({I(8), I(2)});  // s1
  const PairUniverse u = Universe();
  const auto res = CheckSemijoinConsistency(
      u, left_, right_, {RowExample{0}, RowExample{1}}, {});
  // No single non-empty θ fits both witnesses ({a0=b0} vs {a1=b1}).
  EXPECT_FALSE(res.consistent);
}

// Brute-force cross-check on random instances: the exact solver agrees with
// enumerating all non-empty hypotheses; the greedy solver is sound.
class SemijoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(SemijoinProperty, ExactMatchesBruteForce) {
  common::Rng rng(GetParam() * 104729 + 7);
  JoinInstanceOptions opts;
  opts.seed = rng.Fork();
  opts.left_rows = 6;
  opts.right_rows = 5;
  opts.left_arity = 3;
  opts.right_arity = 2;
  opts.domain_size = 3;
  const JoinInstance inst = relational::GenerateJoinInstance(opts, 2);
  auto u = PairUniverse::AllCompatible(inst.left.schema(),
                                       inst.right.schema());
  ASSERT_TRUE(u.ok());
  const PairUniverse& universe = u.value();

  // Random labels over left rows.
  std::vector<RowExample> positives;
  std::vector<RowExample> negatives;
  for (size_t i = 0; i < inst.left.size(); ++i) {
    if (rng.Bernoulli(0.4)) {
      positives.push_back(RowExample{i});
    } else if (rng.Bernoulli(0.5)) {
      negatives.push_back(RowExample{i});
    }
  }

  // Brute force over all non-empty hypotheses.
  auto selects = [&](PairMask theta, size_t row) {
    for (size_t s = 0; s < inst.right.size(); ++s) {
      if (MaskSatisfied(theta, universe.AgreeMask(inst.left.row(row),
                                                  inst.right.row(s)))) {
        return true;
      }
    }
    return false;
  };
  bool brute = false;
  for (PairMask theta = 1; theta <= universe.FullMask() && !brute; ++theta) {
    bool ok = true;
    for (const RowExample& p : positives) ok = ok && selects(theta, p.left_row);
    for (const RowExample& n : negatives) ok = ok && !selects(theta, n.left_row);
    brute = ok;
  }

  const auto exact = CheckSemijoinConsistency(universe, inst.left, inst.right,
                                              positives, negatives);
  EXPECT_EQ(exact.consistent, brute);
  if (exact.consistent) {
    // Verify the witness.
    for (const RowExample& p : positives) {
      EXPECT_TRUE(selects(exact.witness, p.left_row));
    }
    for (const RowExample& n : negatives) {
      EXPECT_FALSE(selects(exact.witness, n.left_row));
    }
  }

  const auto greedy = GreedySemijoinConsistency(
      universe, inst.left, inst.right, positives, negatives);
  if (greedy.consistent) {
    EXPECT_TRUE(brute);  // greedy is sound
    for (const RowExample& p : positives) {
      EXPECT_TRUE(selects(greedy.witness, p.left_row));
    }
    for (const RowExample& n : negatives) {
      EXPECT_FALSE(selects(greedy.witness, n.left_row));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemijoinProperty, ::testing::Range(0, 40));

TEST_F(RlearnFixture, InteractiveSessionIdentifiesGoalOnInstance) {
  JoinInstanceOptions opts;
  opts.seed = 5;
  opts.left_rows = 20;
  opts.right_rows = 20;
  opts.left_arity = 3;
  opts.right_arity = 3;
  opts.domain_size = 4;
  const JoinInstance inst = relational::GenerateJoinInstance(opts, 2);
  auto u = PairUniverse::AllCompatible(inst.left.schema(),
                                       inst.right.schema());
  ASSERT_TRUE(u.ok());
  const PairUniverse& universe = u.value();

  PairMask goal = 0;
  for (size_t i = 0; i < universe.size(); ++i) {
    for (const AttributePair& g : inst.goal) {
      if (universe.pairs()[i] == g) goal |= (1ULL << i);
    }
  }
  GoalJoinOracle oracle(&universe, goal);

  InteractiveJoinOptions options;
  options.strategy = JoinStrategy::kSplitHalf;
  auto result = RunInteractiveJoinSession(universe, inst.left, inst.right,
                                          &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
  // The learned hypothesis labels every candidate pair exactly like the
  // goal (instance-equivalence).
  for (size_t i = 0; i < inst.left.size(); ++i) {
    for (size_t j = 0; j < inst.right.size(); ++j) {
      const PairMask agree =
          universe.AgreeMask(inst.left.row(i), inst.right.row(j));
      EXPECT_EQ(MaskSatisfied(result.value().learned, agree),
                MaskSatisfied(goal, agree));
    }
  }
  // Far fewer questions than candidate pairs.
  EXPECT_LT(result.value().questions, result.value().candidate_pairs / 4);
  EXPECT_EQ(result.value().questions + result.value().forced_positive +
                result.value().forced_negative,
            result.value().candidate_pairs);
}

TEST_F(RlearnFixture, InteractiveStrategiesAllTerminate) {
  JoinInstanceOptions opts;
  opts.seed = 9;
  opts.left_rows = 10;
  opts.right_rows = 10;
  const JoinInstance inst = relational::GenerateJoinInstance(opts, 1);
  auto u = PairUniverse::AllCompatible(inst.left.schema(),
                                       inst.right.schema());
  ASSERT_TRUE(u.ok());
  PairMask goal = 0;
  for (size_t i = 0; i < u.value().size(); ++i) {
    if (u.value().pairs()[i] == inst.goal[0]) goal |= (1ULL << i);
  }
  GoalJoinOracle oracle(&u.value(), goal);
  for (JoinStrategy strategy : {JoinStrategy::kRandom, JoinStrategy::kSplitHalf,
                                JoinStrategy::kLattice}) {
    InteractiveJoinOptions options;
    options.strategy = strategy;
    auto result = RunInteractiveJoinSession(u.value(), inst.left, inst.right,
                                            &oracle, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().conflicts, 0u);
    EXPECT_EQ(result.value().questions + result.value().forced_positive +
                  result.value().forced_negative,
              result.value().candidate_pairs);
  }
}

TEST_F(RlearnFixture, InteractiveRejectsEmptyUniverse) {
  auto u = PairUniverse::Create({});
  ASSERT_TRUE(u.ok());
  GoalJoinOracle oracle(&u.value(), 0);
  EXPECT_FALSE(
      RunInteractiveJoinSession(u.value(), left_, right_, &oracle, {}).ok());
}

}  // namespace
}  // namespace rlearn
}  // namespace qlearn
