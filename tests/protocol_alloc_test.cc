// Allocation budget of the serving hot path, measured with the counting
// operator-new hooks (common/alloc_probe.h; this binary links
// alloc_probe_hooks.cc). The flattened request path — arena JSON parse,
// string_view session lookup, append-mode response writers into a recycled
// buffer — must handle a steady-state request in a small fixed number of
// heap allocations (the learner's answer itself may allocate a few
// vectors; the protocol layer proper contributes none). The heap reference
// path (HandleFrame) is measured alongside as a sanity anchor: the arena
// path must allocate strictly less.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "common/alloc_probe.h"
#include "net/protocol.h"
#include "service/json.h"
#include "service/session_service.h"

namespace qlearn {
namespace net {
namespace {

/// Allocations across one HandleFrameInto call with a warm arena/buffer.
uint64_t CountArenaFrame(service::SessionService* service,
                         const std::string& request,
                         service::json::Arena* arena, std::string* out) {
  arena->Reset();
  out->clear();
  const uint64_t before = common::AllocProbeNewCount();
  HandleFrameInto(service, request, arena, out);
  return common::AllocProbeNewCount() - before;
}

/// Extracts the session id from an {"ok":{"id":"..."}} open response.
std::string OpenSession(service::SessionService* service,
                        const std::string& scenario) {
  const std::string response = HandleFrame(
      service, "{\"op\":\"open\",\"scenario\":\"" + scenario +
                   "\",\"seed\":7}");
  const std::string marker = "\"id\":\"";
  const size_t begin = response.find(marker);
  EXPECT_NE(begin, std::string::npos) << response;
  const size_t start = begin + marker.size();
  const size_t end = response.find('"', start);
  return response.substr(start, end - start);
}

class ProtocolAllocTest : public ::testing::Test {
 protected:
  service::SessionService service_;
  service::json::Arena arena_;
  std::string out_;
};

TEST_F(ProtocolAllocTest, SteadyStateAskStaysWithinFixedBudget) {
  // Fresh session per round so the learner never converges mid-measurement;
  // one warmup ask/tell per session puts its lazy state in place, then one
  // measured ask. The arena, response buffer, and service maps are shared
  // across rounds, so the protocol layer itself is at steady state.
  constexpr int kRounds = 16;
  constexpr uint64_t kAskBudget = 16;  // small fixed constant per request
  uint64_t worst_ask = 0;
  uint64_t worst_heap_ask = 0;
  for (int round = 0; round < kRounds; ++round) {
    // "join" has 400 candidate pairs, so three k=1 asks per session never
    // exhaust it.
    const std::string id = OpenSession(&service_, "join");
    const std::string ask =
        "{\"op\":\"ask\",\"id\":\"" + id + "\",\"k\":1}";
    const std::string tell =
        "{\"op\":\"tell\",\"id\":\"" + id + "\",\"labels\":[true]}";
    // Warmup round: first ask on a session builds learner state.
    CountArenaFrame(&service_, ask, &arena_, &out_);
    ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
    CountArenaFrame(&service_, tell, &arena_, &out_);
    ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
    // Measured round, arena path.
    const uint64_t ask_allocs =
        CountArenaFrame(&service_, ask, &arena_, &out_);
    ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
    worst_ask = std::max(worst_ask, ask_allocs);
    // Answer the served question (default budget allows one pending), then
    // run the same request through the heap reference path for comparison.
    CountArenaFrame(&service_, tell, &arena_, &out_);
    ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
    const uint64_t heap_before = common::AllocProbeNewCount();
    const std::string heap_response = HandleFrame(&service_, ask);
    worst_heap_ask =
        std::max(worst_heap_ask, common::AllocProbeNewCount() - heap_before);
    ASSERT_EQ(heap_response.rfind("{\"ok\"", 0), 0u) << heap_response;
    HandleFrame(&service_, "{\"op\":\"close\",\"id\":\"" + id + "\"}");
  }
  EXPECT_LE(worst_ask, kAskBudget)
      << "steady-state ask allocated " << worst_ask
      << " times (budget " << kAskBudget << ")";
  EXPECT_LT(worst_ask, worst_heap_ask)
      << "arena path (" << worst_ask
      << " allocs) should beat the heap path (" << worst_heap_ask << ")";
}

TEST_F(ProtocolAllocTest, SteadyStateTellAndStatusAreNearZero) {
  const std::string id = OpenSession(&service_, "join");
  const std::string ask = "{\"op\":\"ask\",\"id\":\"" + id + "\",\"k\":1}";
  const std::string tell =
      "{\"op\":\"tell\",\"id\":\"" + id + "\",\"labels\":[true]}";
  const std::string status = "{\"op\":\"status\",\"id\":\"" + id + "\"}";
  // Warm everything: one full round plus a status probe.
  CountArenaFrame(&service_, ask, &arena_, &out_);
  ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
  CountArenaFrame(&service_, tell, &arena_, &out_);
  ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
  CountArenaFrame(&service_, status, &arena_, &out_);

  // Tell's only allocation is the labels vector handed to the session
  // interface (plus whatever the learner's update does); status should be
  // allocation-free outside the first capacity growth.
  CountArenaFrame(&service_, ask, &arena_, &out_);
  ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
  const uint64_t tell_allocs =
      CountArenaFrame(&service_, tell, &arena_, &out_);
  ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
  EXPECT_LE(tell_allocs, 12u) << "steady-state tell allocated "
                              << tell_allocs << " times";

  const uint64_t status_allocs =
      CountArenaFrame(&service_, status, &arena_, &out_);
  ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
  EXPECT_LE(status_allocs, 4u)
      << "steady-state status allocated " << status_allocs << " times";
}

TEST_F(ProtocolAllocTest, CountersOpIsAllocationFreeAtSteadyState) {
  const std::string counters = "{\"op\":\"counters\"}";
  CountArenaFrame(&service_, counters, &arena_, &out_);
  const uint64_t allocs =
      CountArenaFrame(&service_, counters, &arena_, &out_);
  ASSERT_EQ(out_.rfind("{\"ok\"", 0), 0u) << out_;
  EXPECT_LE(allocs, 2u)
      << "steady-state counters allocated " << allocs << " times";
}

TEST_F(ProtocolAllocTest, ProbeCountersActuallyTick) {
  // Sanity check on the hooks themselves, so a silent link change that
  // drops the counting TU fails loudly instead of making every budget
  // trivially pass at zero.
  const uint64_t before = common::AllocProbeNewCount();
  std::string* leaked_then_freed = new std::string(1024, 'x');
  const uint64_t after_new = common::AllocProbeNewCount();
  EXPECT_GT(after_new, before);
  const uint64_t deletes_before = common::AllocProbeDeleteCount();
  delete leaked_then_freed;
  EXPECT_GT(common::AllocProbeDeleteCount(), deletes_before);
}

}  // namespace
}  // namespace net
}  // namespace qlearn
