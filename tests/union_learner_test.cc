// Tests for unions of twig queries: the PTIME consistency test (the paper's
// "trivial" case), the semantic preorder it relies on, and the greedy union
// learner's soundness/merging behaviour on disjunctive concepts.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/interner.h"
#include "learn/union_learner.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace learn {
namespace {

using twig::TwigQuery;
using xml::NodeId;
using xml::XmlTree;

class UnionFixture : public ::testing::Test {
 protected:
  XmlTree Doc(const std::string& text) {
    auto t = xml::ParseXml(text, &interner_);
    EXPECT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    return t.ok() ? std::move(t).value() : XmlTree();
  }

  TwigQuery Q(const std::string& text) {
    auto q = twig::ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text;
    return q.ok() ? std::move(q).value() : TwigQuery();
  }

  NodeId FindNode(const XmlTree& doc, const std::string& label,
                  int occurrence = 0) {
    int seen = 0;
    for (NodeId n : doc.PreOrder()) {
      if (interner_.Name(doc.label(n)) == label) {
        if (seen == occurrence) return n;
        ++seen;
      }
    }
    ADD_FAILURE() << "no node labeled " << label;
    return 0;
  }

  common::Interner interner_;
};

// --- TwigUnion semantics ---

TEST_F(UnionFixture, UnionEvaluatesToUnionOfAnswerSets) {
  const XmlTree doc = Doc("<r><a><x/></a><b><x/></b><c><x/></c></r>");
  TwigUnion u;
  u.AddDisjunct(Q("/r/a/x"));
  u.AddDisjunct(Q("/r/b/x"));
  const std::vector<NodeId> answers = u.Evaluate(doc);
  EXPECT_EQ(answers.size(), 2u);
  EXPECT_TRUE(u.Selects(doc, FindNode(doc, "x", 0)));
  EXPECT_TRUE(u.Selects(doc, FindNode(doc, "x", 1)));
  EXPECT_FALSE(u.Selects(doc, FindNode(doc, "x", 2)));
}

TEST_F(UnionFixture, OverlappingDisjunctsDeduplicate) {
  const XmlTree doc = Doc("<r><a><x/></a></r>");
  TwigUnion u;
  u.AddDisjunct(Q("/r/a/x"));
  u.AddDisjunct(Q("//x"));
  EXPECT_EQ(u.Evaluate(doc).size(), 1u);
}

TEST_F(UnionFixture, EmptyUnionSelectsNothing) {
  const XmlTree doc = Doc("<r><a/></r>");
  TwigUnion u;
  EXPECT_TRUE(u.Evaluate(doc).empty());
  EXPECT_FALSE(u.Selects(doc, doc.root()));
  EXPECT_EQ(u.TotalSize(), 0u);
}

TEST_F(UnionFixture, TotalSizeSumsDisjuncts) {
  TwigUnion u;
  u.AddDisjunct(Q("/r/a"));      // size 2
  u.AddDisjunct(Q("/r/b[c]"));   // size 3
  EXPECT_EQ(u.TotalSize(), 5u);
}

TEST_F(UnionFixture, ToStringJoinsWithPipe) {
  TwigUnion u;
  u.AddDisjunct(Q("/r/a"));
  u.AddDisjunct(Q("/r/b"));
  EXPECT_EQ(u.ToString(interner_), "/r/a | /r/b");
}

// --- Consistency: the paper's "trivial" PTIME case ---

TEST_F(UnionFixture, ConsistentWhenNegativesAreSeparable) {
  const XmlTree doc = Doc("<r><a><x/></a><b><x/></b></r>");
  // positive: the x under a; negative: the x under b. The twig /r/a/x
  // separates them, so the examples must be consistent.
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "x", 0)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "x", 1)}};
  EXPECT_TRUE(CheckUnionConsistency(pos, neg).consistent);
}

TEST_F(UnionFixture, InconsistentWhenNegativeDominatesPositive) {
  // The second 'a' has strictly more structure than the first: every twig
  // selecting the bare 'a' also selects the rich one, so labeling the rich
  // one negative is hopeless — even for unions.
  const XmlTree doc = Doc("<r><a/><a><b/></a></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "a", 0)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "a", 1)}};
  const UnionConsistencyReport report = CheckUnionConsistency(pos, neg);
  EXPECT_FALSE(report.consistent);
  EXPECT_EQ(report.blocking_positive, 0u);
  EXPECT_EQ(report.blocking_negative, 0u);
}

TEST_F(UnionFixture, ConsistentInTheOppositeDirection) {
  // Labeling the RICH node positive and the bare one negative is fine:
  // /r/a[b] separates them.
  const XmlTree doc = Doc("<r><a/><a><b/></a></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "a", 1)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "a", 0)}};
  EXPECT_TRUE(CheckUnionConsistency(pos, neg).consistent);
}

TEST_F(UnionFixture, IdenticalSiblingSubtreesAreInseparable) {
  const XmlTree doc = Doc("<r><a><b/></a><a><b/></a></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "a", 0)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "a", 1)}};
  EXPECT_FALSE(CheckUnionConsistency(pos, neg).consistent);
}

TEST_F(UnionFixture, CrossDocumentConsistency) {
  const XmlTree d1 = Doc("<r><a><p/></a></r>");
  const XmlTree d2 = Doc("<r><a><q/></a></r>");
  const std::vector<TreeExample> pos = {{&d1, FindNode(d1, "a")}};
  const std::vector<TreeExample> neg = {{&d2, FindNode(d2, "a")}};
  // /r/a[p] selects the d1 'a' but not the d2 'a'.
  EXPECT_TRUE(CheckUnionConsistency(pos, neg).consistent);
}

TEST_F(UnionFixture, NoNegativesIsAlwaysConsistent) {
  const XmlTree doc = Doc("<r><a/></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "a")}};
  EXPECT_TRUE(CheckUnionConsistency(pos, {}).consistent);
}

// --- The greedy union learner ---

TEST_F(UnionFixture, LearnsDisjunctiveConceptSingleTwigCannotExpress) {
  // Concept: x-children of a OR x-children of b — not expressible by one
  // anchored twig without also selecting the x under c.
  const XmlTree doc = Doc(
      "<r><a><x/></a><b><x/></b><c><x/></c></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "x", 0)},
                                        {&doc, FindNode(doc, "x", 1)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "x", 2)}};
  auto result = LearnTwigUnion(pos, neg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TwigUnion& u = result.value().query;
  EXPECT_EQ(u.NumDisjuncts(), 2u);
  EXPECT_TRUE(u.Selects(doc, pos[0].node));
  EXPECT_TRUE(u.Selects(doc, pos[1].node));
  EXPECT_FALSE(u.Selects(doc, neg[0].node));
  EXPECT_GE(result.value().merges_blocked, 1u);
}

TEST_F(UnionFixture, MergesCompatiblePositivesIntoOneDisjunct) {
  const XmlTree doc = Doc("<r><a><x/></a><a><x/></a><b><y/></b></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "x", 0)},
                                        {&doc, FindNode(doc, "x", 1)}};
  auto result = LearnTwigUnion(pos, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().query.NumDisjuncts(), 1u);
  EXPECT_EQ(result.value().merges, 1u);
}

TEST_F(UnionFixture, SoundnessSelectsAllPositivesNoNegatives) {
  const XmlTree doc = Doc(
      "<lib><book><title/><price/></book><book><title/></book>"
      "<mag><title/><price/></mag><news><title/></news></lib>");
  // Positives: titles of books and magazines; negative: the news title.
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "title", 0)},
                                        {&doc, FindNode(doc, "title", 1)},
                                        {&doc, FindNode(doc, "title", 2)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "title", 3)}};
  auto result = LearnTwigUnion(pos, neg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const TreeExample& p : pos) {
    EXPECT_TRUE(result.value().query.Selects(*p.doc, p.node));
  }
  for (const TreeExample& n : neg) {
    EXPECT_FALSE(result.value().query.Selects(*n.doc, n.node));
  }
}

TEST_F(UnionFixture, FailsOnInconsistentExamples) {
  const XmlTree doc = Doc("<r><a/><a><b/></a></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "a", 0)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "a", 1)}};
  auto result = LearnTwigUnion(pos, neg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST_F(UnionFixture, FailsWhenBudgetTooTight) {
  // Three pairwise-unmergeable positives (each merge would cover the
  // negative x under d) with a budget of 2 disjuncts.
  const XmlTree doc = Doc(
      "<r><a><x/></a><b><x/></b><c><x/></c><d><x/></d></r>");
  const std::vector<TreeExample> pos = {{&doc, FindNode(doc, "x", 0)},
                                        {&doc, FindNode(doc, "x", 1)},
                                        {&doc, FindNode(doc, "x", 2)}};
  const std::vector<TreeExample> neg = {{&doc, FindNode(doc, "x", 3)}};
  UnionLearnerOptions options;
  options.max_disjuncts = 2;
  auto result = LearnTwigUnion(pos, neg, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kResourceExhausted);
}

TEST_F(UnionFixture, RequiresPositiveExamples) {
  auto result = LearnTwigUnion({}, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(UnionFixture, SingletonPositiveYieldsOneDisjunct) {
  const XmlTree doc = Doc("<r><a><x/></a></r>");
  auto result = LearnTwigUnion({{&doc, FindNode(doc, "x")}}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().query.NumDisjuncts(), 1u);
  EXPECT_TRUE(result.value().query.Selects(doc, FindNode(doc, "x")));
}

// --- Property sweep: soundness holds across document shapes ---

struct UnionPropertyCase {
  const char* name;
  const char* doc;
  const char* pos_label;
  std::vector<int> pos_occurrences;
  const char* neg_label;
  std::vector<int> neg_occurrences;
};

class UnionPropertyTest
    : public UnionFixture,
      public ::testing::WithParamInterface<UnionPropertyCase> {};

TEST_P(UnionPropertyTest, LearnedUnionIsConsistentWithExamples) {
  const UnionPropertyCase& c = GetParam();
  const XmlTree doc = Doc(c.doc);
  std::vector<TreeExample> pos;
  std::vector<TreeExample> neg;
  for (int occ : c.pos_occurrences) {
    pos.push_back({&doc, FindNode(doc, c.pos_label, occ)});
  }
  for (int occ : c.neg_occurrences) {
    neg.push_back({&doc, FindNode(doc, c.neg_label, occ)});
  }
  auto result = LearnTwigUnion(pos, neg);
  if (!CheckUnionConsistency(pos, neg).consistent) {
    EXPECT_FALSE(result.ok());
    return;
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const TreeExample& p : pos) {
    EXPECT_TRUE(result.value().query.Selects(*p.doc, p.node)) << c.name;
  }
  for (const TreeExample& n : neg) {
    EXPECT_FALSE(result.value().query.Selects(*n.doc, n.node)) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnionPropertyTest,
    ::testing::Values(
        UnionPropertyCase{"two_contexts",
                          "<r><a><x/></a><b><x/></b><c><x/></c></r>",
                          "x", {0, 1}, "x", {2}},
        UnionPropertyCase{"depth_split",
                          "<r><a><x/><y><x/></y></a></r>",
                          "x", {0}, "x", {1}},
        UnionPropertyCase{"all_positive",
                          "<r><a><x/></a><a><x/></a><a><x/></a></r>",
                          "x", {0, 1, 2}, "x", {}},
        UnionPropertyCase{"filter_separated",
                          "<r><i><k/><x/></i><i><x/></i></r>",
                          "x", {0}, "x", {1}},
        UnionPropertyCase{"deep_negatives",
                          "<r><p><q><x/></q></p><s><x/></s><t><x/></t></r>",
                          "x", {0, 1}, "x", {2}}),
    [](const ::testing::TestParamInfo<UnionPropertyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace learn
}  // namespace qlearn
