// Tests for twig containment/equivalence in the presence of a
// disjunction-free multiplicity schema: vacuous cases, schema-induced
// containments invisible to schema-less reasoning, counterexample
// correctness, multiplicity-driven sibling merging, and the tie-in with
// filter implication (the paper's schema-aware pruning).
#include <gtest/gtest.h>

#include <string>

#include "common/interner.h"
#include "schema/depgraph.h"
#include "schema/schema_containment.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"

namespace qlearn {
namespace schema {
namespace {

class SchemaContainmentFixture : public ::testing::Test {
 protected:
  common::SymbolId S(const std::string& name) {
    return interner_.Intern(name);
  }

  twig::TwigQuery Q(const std::string& text) {
    auto q = twig::ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text;
    return q.ok() ? std::move(q).value() : twig::TwigQuery();
  }

  /// people -> person+; person -> name, phone?; name/phone leaves.
  Ms PeopleSchema() {
    Ms ms(S("people"));
    ms.SetMultiplicity(S("people"), S("person"), Multiplicity::kPlus);
    ms.SetMultiplicity(S("person"), S("name"), Multiplicity::kOne);
    ms.SetMultiplicity(S("person"), S("phone"), Multiplicity::kOpt);
    ms.AddLeafLabel(S("name"));
    ms.AddLeafLabel(S("phone"));
    return ms;
  }

  common::Interner interner_;
};

TEST_F(SchemaContainmentFixture, SchemaImpliedFilterGivesEquivalence) {
  // Under the schema every person has a name, so /people/person[name] and
  // /people/person select the same nodes in every valid document — although
  // they are NOT logically equivalent over all trees.
  const Ms ms = PeopleSchema();
  const twig::TwigQuery with = Q("/people/person[name]");
  const twig::TwigQuery without = Q("/people/person");
  EXPECT_EQ(CheckEquivalenceUnderSchema(with, without, ms),
            SchemaContainment::kContained);
  // Schema-less containment: with ⊆ without but not conversely.
  EXPECT_EQ(CheckContainmentUnderSchema(without, with, ms).verdict,
            SchemaContainment::kContained);
}

TEST_F(SchemaContainmentFixture, OptionalFilterBreaksEquivalence) {
  // phone is optional: /people/person[phone] is strictly narrower, and the
  // counterexample is a valid document with a phone-less person.
  const Ms ms = PeopleSchema();
  const twig::TwigQuery narrow = Q("/people/person[phone]");
  const twig::TwigQuery wide = Q("/people/person");
  EXPECT_EQ(CheckContainmentUnderSchema(narrow, wide, ms).verdict,
            SchemaContainment::kContained);
  const SchemaContainmentReport report =
      CheckContainmentUnderSchema(wide, narrow, ms);
  ASSERT_EQ(report.verdict, SchemaContainment::kNotContained);
  ASSERT_TRUE(report.counterexample.has_value());
  // The witness document is schema-valid, selected by `wide`, not `narrow`.
  EXPECT_TRUE(ms.Validates(*report.counterexample));
  EXPECT_TRUE(twig::Selects(wide, *report.counterexample, report.witness));
  EXPECT_FALSE(twig::Selects(narrow, *report.counterexample,
                             report.witness));
}

TEST_F(SchemaContainmentFixture, CounterexampleRespectsRequiredChildren) {
  // Any person materialized in a counterexample must carry its mandatory
  // name child (the closure step).
  const Ms ms = PeopleSchema();
  const SchemaContainmentReport report = CheckContainmentUnderSchema(
      Q("/people/person"), Q("/people/person[phone]"), ms);
  ASSERT_EQ(report.verdict, SchemaContainment::kNotContained);
  const xml::XmlTree& doc = *report.counterexample;
  for (xml::NodeId n : doc.PreOrder()) {
    if (doc.label(n) != S("person")) continue;
    bool has_name = false;
    for (xml::NodeId c : doc.children(n)) {
      if (doc.label(c) == S("name")) has_name = true;
    }
    EXPECT_TRUE(has_name);
  }
}

TEST_F(SchemaContainmentFixture, UnsatisfiableSchemaGivesVacuousContainment) {
  Ms ms(S("r"));
  // r requires an x child and x requires an r child: no finite document.
  ms.SetMultiplicity(S("r"), S("x"), Multiplicity::kOne);
  ms.SetMultiplicity(S("x"), S("r"), Multiplicity::kOne);
  EXPECT_EQ(CheckContainmentUnderSchema(Q("/r/x"), Q("/r//y"), ms).verdict,
            SchemaContainment::kContained);
}

TEST_F(SchemaContainmentFixture, DescendantQueryContainsChildUnderChain) {
  Ms ms(S("a"));
  ms.SetMultiplicity(S("a"), S("b"), Multiplicity::kOne);
  ms.SetMultiplicity(S("b"), S("c"), Multiplicity::kOpt);
  ms.AddLeafLabel(S("c"));
  // /a/b/c vs //c: every c sits at the same place in valid documents.
  EXPECT_EQ(CheckEquivalenceUnderSchema(Q("/a/b/c"), Q("//c"), ms),
            SchemaContainment::kContained);
}

TEST_F(SchemaContainmentFixture, WildcardTypedOverSchemaLabels) {
  const Ms ms = PeopleSchema();
  // /people/*/name ≡ /people/person/name: the wildcard can only be person.
  EXPECT_EQ(CheckEquivalenceUnderSchema(Q("/people/*/name"),
                                        Q("/people/person/name"), ms),
            SchemaContainment::kContained);
}

TEST_F(SchemaContainmentFixture, MultiplicityOneMergesSiblingFilters) {
  // person has EXACTLY one name; a query with two name filters is still
  // satisfiable (both filters map to the same child) and equivalent to one
  // filter — the sibling-merge repair in action.
  Ms ms(S("people"));
  ms.SetMultiplicity(S("people"), S("person"), Multiplicity::kPlus);
  ms.SetMultiplicity(S("person"), S("name"), Multiplicity::kOne);
  ms.AddLeafLabel(S("name"));
  const twig::TwigQuery twice = Q("/people/person[name][name]");
  const twig::TwigQuery once = Q("/people/person[name]");
  EXPECT_EQ(CheckEquivalenceUnderSchema(twice, once, ms),
            SchemaContainment::kContained);
}

TEST_F(SchemaContainmentFixture, NotContainedAcrossBranches) {
  // library -> book* , cd*; both may carry a title.
  Ms ms(S("library"));
  ms.SetMultiplicity(S("library"), S("book"), Multiplicity::kStar);
  ms.SetMultiplicity(S("library"), S("cd"), Multiplicity::kStar);
  ms.SetMultiplicity(S("book"), S("title"), Multiplicity::kOne);
  ms.SetMultiplicity(S("cd"), S("title"), Multiplicity::kOne);
  ms.AddLeafLabel(S("title"));
  const SchemaContainmentReport report = CheckContainmentUnderSchema(
      Q("//title"), Q("/library/book/title"), ms);
  ASSERT_EQ(report.verdict, SchemaContainment::kNotContained);
  // The counterexample must be a cd title.
  EXPECT_TRUE(ms.Validates(*report.counterexample));
  EXPECT_EQ(report.counterexample->label(
                report.counterexample->parent(report.witness)),
            S("cd"));
}

TEST_F(SchemaContainmentFixture, AgreesWithFilterImplicationOnPrunedQueries) {
  // The E3 scenario, settled: pruning a schema-implied filter preserves
  // equivalence under the schema; pruning a non-implied one does not.
  const Ms ms = PeopleSchema();
  const twig::TwigQuery pruned = Q("/people/person/name");

  const twig::TwigQuery name_filtered = Q("/people/person[name]/name");
  EXPECT_EQ(CheckEquivalenceUnderSchema(name_filtered, pruned, ms),
            SchemaContainment::kContained);

  const twig::TwigQuery phone_filtered = Q("/people/person[phone]/name");
  EXPECT_EQ(CheckEquivalenceUnderSchema(phone_filtered, pruned, ms),
            SchemaContainment::kNotContained);
}

TEST_F(SchemaContainmentFixture, TightCapReportsUnknown) {
  const Ms ms = PeopleSchema();
  SchemaContainmentOptions options;
  options.max_instantiations = 0;  // the search may explore nothing
  const SchemaContainmentReport report = CheckContainmentUnderSchema(
      Q("//person//name"), Q("/people/person/name"), ms, options);
  // An exhausted budget must never be reported as kContained.
  EXPECT_EQ(report.verdict, SchemaContainment::kUnknown);
}

TEST_F(SchemaContainmentFixture, SufficientCapIsExact) {
  // The query pair from the cap test has exactly one schema typing, so a
  // budget of one instantiation already decides it exactly.
  const Ms ms = PeopleSchema();
  SchemaContainmentOptions options;
  options.max_instantiations = 1;
  EXPECT_EQ(CheckContainmentUnderSchema(Q("//person//name"),
                                        Q("/people/person/name"), ms,
                                        options)
                .verdict,
            SchemaContainment::kContained);
}

}  // namespace
}  // namespace schema
}  // namespace qlearn
