// Tests for the relational engine: values, schemas, relations, operators,
// and instance generators.
#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/generator.h"
#include "relational/operators.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace qlearn {
namespace relational {
namespace {

Value I(int64_t v) { return Value(v); }
Value S(const char* v) { return Value(std::string(v)); }

TEST(ValueTest, Types) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(I(3).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(S("x").type(), ValueType::kString);
}

TEST(ValueTest, SqlEqualityAndNulls) {
  EXPECT_TRUE(I(3).EqualsSql(I(3)));
  EXPECT_FALSE(I(3).EqualsSql(I(4)));
  EXPECT_FALSE(I(3).EqualsSql(S("3")));
  EXPECT_FALSE(Value().EqualsSql(Value()));  // NULL != NULL
  EXPECT_FALSE(Value().EqualsSql(I(0)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(I(42).ToString(), "42");
  EXPECT_EQ(S("hi").ToString(), "'hi'");
}

TEST(RelationTest, SchemaLookup) {
  RelationSchema schema("r", {Attribute{"x", ValueType::kInt},
                              Attribute{"y", ValueType::kString}});
  EXPECT_EQ(schema.arity(), 2u);
  EXPECT_EQ(schema.AttributeIndex("y"), 1u);
  EXPECT_FALSE(schema.AttributeIndex("z").has_value());
  EXPECT_EQ(schema.ToString(), "r(x:int, y:string)");
}

TEST(RelationTest, InsertChecksArityAndTypes) {
  Relation r(RelationSchema("r", {Attribute{"x", ValueType::kInt}}));
  EXPECT_TRUE(r.Insert({I(1)}).ok());
  EXPECT_FALSE(r.Insert({I(1), I(2)}).ok());
  EXPECT_FALSE(r.Insert({S("nope")}).ok());
  EXPECT_TRUE(r.Insert({Value()}).ok());  // NULL fits any type
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, IndexSkipsNulls) {
  Relation r(RelationSchema("r", {Attribute{"x", ValueType::kInt}}));
  ASSERT_TRUE(r.Insert({I(7)}).ok());
  ASSERT_TRUE(r.Insert({Value()}).ok());
  ASSERT_TRUE(r.Insert({I(7)}).ok());
  EXPECT_EQ(r.IndexOn(0).size(), 2u);
}

class JoinFixture : public ::testing::Test {
 protected:
  JoinFixture() {
    r_ = Relation(RelationSchema("r", {Attribute{"id", ValueType::kInt},
                                       Attribute{"v", ValueType::kString}}));
    s_ = Relation(RelationSchema("s", {Attribute{"id", ValueType::kInt},
                                       Attribute{"w", ValueType::kString}}));
    r_.InsertUnchecked({I(1), S("a")});
    r_.InsertUnchecked({I(2), S("b")});
    r_.InsertUnchecked({I(3), S("c")});
    s_.InsertUnchecked({I(2), S("x")});
    s_.InsertUnchecked({I(3), S("y")});
    s_.InsertUnchecked({I(3), S("z")});
    s_.InsertUnchecked({I(9), S("q")});
  }
  Relation r_;
  Relation s_;
};

TEST_F(JoinFixture, EquiJoinMatchesPairs) {
  auto out = EquiJoin(r_, s_, {AttributePair{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3u);  // 2-x, 3-y, 3-z
  EXPECT_EQ(out.value().schema().arity(), 4u);
}

TEST_F(JoinFixture, EquiJoinRejectsBadPredicates) {
  EXPECT_FALSE(EquiJoin(r_, s_, {}).ok());
  EXPECT_FALSE(EquiJoin(r_, s_, {AttributePair{0, 1}}).ok());  // int vs str
  EXPECT_FALSE(EquiJoin(r_, s_, {AttributePair{5, 0}}).ok());  // range
}

TEST_F(JoinFixture, NaturalJoinSharesColumns) {
  auto out = NaturalJoin(r_, s_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3u);
  // id, v, w (shared id projected once).
  EXPECT_EQ(out.value().schema().arity(), 3u);
  EXPECT_EQ(out.value().schema().attributes()[2].name, "w");
}

TEST_F(JoinFixture, NaturalJoinNeedsSharedAttributes) {
  Relation t(RelationSchema("t", {Attribute{"other", ValueType::kInt}}));
  EXPECT_FALSE(NaturalJoin(r_, t).ok());
}

TEST_F(JoinFixture, SemijoinKeepsLeftRowsOnce) {
  auto out = Semijoin(r_, s_, {AttributePair{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);  // rows 2 and 3, each once
  EXPECT_EQ(out.value().schema().arity(), 2u);
}

TEST_F(JoinFixture, NullsNeverJoin) {
  r_.InsertUnchecked({Value(), S("n")});
  s_.InsertUnchecked({Value(), S("n")});
  auto out = EquiJoin(r_, s_, {AttributePair{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3u);  // unchanged
}

TEST_F(JoinFixture, ProjectAndSelect) {
  auto proj = Project(r_, {1});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value().schema().arity(), 1u);
  EXPECT_EQ(proj.value().row(0)[0].AsString(), "a");
  EXPECT_FALSE(Project(r_, {4}).ok());

  const Relation sel = SelectWhere(
      r_, [](const Tuple& t) { return t[0].AsInt() >= 2; });
  EXPECT_EQ(sel.size(), 2u);
}

TEST_F(JoinFixture, AgreeSetComputesAgreements) {
  const auto universe = CompatiblePairs(r_.schema(), s_.schema());
  EXPECT_EQ(universe.size(), 2u);  // id-id (int) and v-w (string)
  const auto agree = AgreeSet(r_.row(1), s_.row(0), universe);
  ASSERT_EQ(agree.size(), 1u);
  EXPECT_EQ(agree[0].left, 0u);
}

TEST(DatabaseTest, AddAndFind) {
  Database db;
  EXPECT_TRUE(
      db.AddRelation(
            Relation(RelationSchema("r", {Attribute{"x", ValueType::kInt}})))
          .ok());
  EXPECT_FALSE(
      db.AddRelation(
            Relation(RelationSchema("r", {Attribute{"x", ValueType::kInt}})))
          .ok());
  EXPECT_NE(db.Find("r"), nullptr);
  EXPECT_EQ(db.Find("missing"), nullptr);
  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"r"});
}

TEST(GeneratorTest, InstanceRespectsOptions) {
  JoinInstanceOptions opts;
  opts.left_rows = 30;
  opts.right_rows = 20;
  opts.left_arity = 3;
  opts.right_arity = 5;
  const JoinInstance inst = GenerateJoinInstance(opts, 2);
  EXPECT_EQ(inst.left.size(), 30u);
  EXPECT_EQ(inst.right.size(), 20u);
  EXPECT_EQ(inst.left.schema().arity(), 3u);
  EXPECT_EQ(inst.right.schema().arity(), 5u);
  EXPECT_EQ(inst.goal.size(), 2u);
}

TEST(GeneratorTest, DeterministicBySeed) {
  JoinInstanceOptions opts;
  const JoinInstance a = GenerateJoinInstance(opts, 2);
  const JoinInstance b = GenerateJoinInstance(opts, 2);
  ASSERT_EQ(a.left.size(), b.left.size());
  for (size_t i = 0; i < a.left.size(); ++i) {
    EXPECT_EQ(a.left.row(i), b.left.row(i));
  }
  EXPECT_EQ(a.goal, b.goal);
}

TEST(GeneratorTest, PlantedMatchesExist) {
  JoinInstanceOptions opts;
  opts.planted_match_fraction = 0.5;
  const JoinInstance inst = GenerateJoinInstance(opts, 2);
  size_t matches = 0;
  for (const Tuple& r : inst.left.rows()) {
    for (const Tuple& s : inst.right.rows()) {
      if (PairsSatisfied(r, s, inst.goal)) ++matches;
    }
  }
  EXPECT_GT(matches, 0u);
}

TEST(GeneratorTest, TinyCompanyJoins) {
  Database db = TinyCompanyDatabase();
  const Relation* emp = db.Find("employees");
  const Relation* dept = db.Find("departments");
  ASSERT_NE(emp, nullptr);
  ASSERT_NE(dept, nullptr);
  auto joined = NaturalJoin(*emp, *dept);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().size(), emp->size());  // every emp has a dept
}

}  // namespace
}  // namespace relational
}  // namespace qlearn
