// Park/rehydrate conformance and fault injection for session hibernation.
//
// The conformance half replays every golden transcript through a
// SessionService while parking the session at EVERY question boundary
// (right after open and after each answered batch): each subsequent call
// transparently rehydrates it from the snapshot store, so a clean replay
// proves the full session state — remaining question/answer sequence,
// final hypothesis, stats, wire bytes — survives arbitrarily many
// hibernation round trips for all four scenario kinds.
//
// The fault-injection half corrupts the stored image every way a disk can
// (truncated, bit-flipped, wrong magic, wrong version, deleted) and pins
// the failure semantics: structured DataLoss/InvalidArgument statuses with
// byte offsets, a retryable parked entry, a Close that always releases the
// handle, and the hibernate_errors counter. The fake-clock tests pin the
// wall-budget arithmetic across a park (the parked interval counts toward
// the allowance exactly once).
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "service/session_service.h"
#include "service/snapshot_store.h"
#include "service/wire.h"
#include "transcript_harness.h"

namespace qlearn {
namespace {

using common::Result;
using common::Status;
using common::StatusCode;
using service::OpenOptions;
using service::ServiceOptions;
using service::SessionService;
using service::wire::QuestionPayload;
using service::wire::Serialize;
using service::wire::TranscriptEvent;
using testing::ConformanceCases;
using testing::GoldenPath;
using testing::ReadFileToString;
using testing::TranscriptCase;

std::chrono::steady_clock::time_point BaseTime() {
  return std::chrono::steady_clock::time_point{} + std::chrono::hours(1);
}

/// Fake clock handle: tests advance it, the service reads it.
struct FakeClock {
  std::chrono::steady_clock::time_point now = BaseTime();
  std::function<std::chrono::steady_clock::time_point()> AsFn() {
    return [this] { return now; };
  }
  void Advance(double seconds) {
    now += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
  }
};

// ---------------------------------------------------------------------------
// Conformance: park at every question boundary, replay must be identical.

/// ReplayTranscript with a Park() injected at every question boundary: the
/// session hibernates after open and after every answered batch, and every
/// Ask/Close that follows rehydrates it. Mismatch strings mirror the
/// harness's.
std::vector<std::string> ReplayWithParkAtEveryBoundary(
    SessionService* service, const std::vector<TranscriptEvent>& events) {
  std::vector<std::string> mismatches;
  if (events.empty() || events[0].kind != TranscriptEvent::Kind::kOpen) {
    mismatches.push_back("transcript must start with an open event");
    return mismatches;
  }
  OpenOptions options;
  options.seed = events[0].seed;
  options.budget.max_questions = events[0].max_questions;
  auto opened = service->Open(events[0].scenario, options);
  if (!opened.ok()) {
    mismatches.push_back("Open failed: " + opened.status().ToString());
    return mismatches;
  }
  const std::string id = opened.value();

  auto park = [&](const std::string& where) {
    const Status parked = service->Park(id);
    if (!parked.ok()) {
      mismatches.push_back(where + ": Park failed: " + parked.ToString());
    }
  };
  park("after open");

  bool closed = false;
  for (size_t i = 1; i < events.size() && mismatches.empty(); ++i) {
    const TranscriptEvent& event = events[i];
    const std::string where = "event #" + std::to_string(i);
    switch (event.kind) {
      case TranscriptEvent::Kind::kOpen:
        mismatches.push_back("transcript has a second open event");
        break;
      case TranscriptEvent::Kind::kAsk: {
        auto served = service->Ask(id, event.requested);
        if (!served.ok()) {
          mismatches.push_back(where + ": Ask failed: " +
                               served.status().ToString());
          break;
        }
        if (served.value().size() != event.questions.size()) {
          mismatches.push_back(
              where + ": served " + std::to_string(served.value().size()) +
              " question(s), transcript has " +
              std::to_string(event.questions.size()));
          break;
        }
        for (size_t j = 0; j < served.value().size(); ++j) {
          const std::string got = Serialize(served.value()[j]);
          const std::string want = Serialize(event.questions[j]);
          if (got != want) {
            mismatches.push_back(where + " question " + std::to_string(j) +
                                 ": got " + got + ", want " + want);
          }
        }
        break;
      }
      case TranscriptEvent::Kind::kTell: {
        const Status status = service->Tell(id, event.labels);
        if (!status.ok()) {
          mismatches.push_back(where + ": Tell failed: " + status.ToString());
          break;
        }
        // The batch is answered — a question boundary. Hibernate here; the
        // next Ask (or Close) rehydrates.
        park(where);
        break;
      }
      case TranscriptEvent::Kind::kClose: {
        auto result = service->Close(id);
        if (!result.ok()) {
          mismatches.push_back(where + ": Close failed: " +
                               result.status().ToString());
          break;
        }
        closed = true;
        const std::string got_hypothesis =
            Serialize(result.value().hypothesis);
        const std::string want_hypothesis = Serialize(event.hypothesis);
        if (got_hypothesis != want_hypothesis) {
          mismatches.push_back(where + " hypothesis: got " + got_hypothesis +
                               ", want " + want_hypothesis);
        }
        const std::string got_stats = Serialize(result.value().stats);
        const std::string want_stats = Serialize(event.stats);
        if (got_stats != want_stats) {
          mismatches.push_back(where + " stats: got " + got_stats +
                               ", want " + want_stats);
        }
        break;
      }
    }
  }
  if (!closed) (void)service->Close(id);
  return mismatches;
}

TEST(HibernationConformance, GoldensReplayIdenticallyThroughParkCycles) {
  for (const TranscriptCase& c : ConformanceCases()) {
    SCOPED_TRACE(c.name);
    auto content = ReadFileToString(GoldenPath(c.name));
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    auto events = service::wire::ParseTranscript(content.value());
    ASSERT_TRUE(events.ok()) << events.status().ToString();

    SessionService service;
    const std::vector<std::string> mismatches =
        ReplayWithParkAtEveryBoundary(&service, events.value());
    for (const std::string& mismatch : mismatches) {
      ADD_FAILURE() << c.name << ": " << mismatch;
    }
    // Every boundary parked and every park rehydrated: one park after open
    // plus one per answered batch, and nothing left in the store.
    const service::ServiceCounters counters = service.Counters();
    EXPECT_GE(counters.hibernates, 2u) << c.name;
    EXPECT_EQ(counters.hibernates, counters.rehydrates) << c.name;
    EXPECT_EQ(counters.hibernate_errors, 0u) << c.name;
  }
}

TEST(HibernationConformance, StatusAndOracleRehydrateParkedSessions) {
  SessionService service;
  auto id = service.Open("join", {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Park(id.value()).ok());
  EXPECT_EQ(service.ParkedCount(), 1u);
  EXPECT_EQ(service.ResidentCount(), 0u);
  EXPECT_EQ(service.OpenCount(), 1u);

  // Status on a parked session rehydrates it transparently.
  auto status = service.Status(id.value());
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(service.ParkedCount(), 0u);
  EXPECT_EQ(service.ResidentCount(), 1u);

  // Park again, then OracleLabels must fail for lack of pending questions —
  // but only after a successful rehydrate (the error is FailedPrecondition,
  // not DataLoss).
  ASSERT_TRUE(service.Park(id.value()).ok());
  auto labels = service.OracleLabels(id.value());
  EXPECT_EQ(labels.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.ParkedCount(), 0u);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(HibernationConformance, ParkRequiresQuiescence) {
  SessionService service;
  auto id = service.Open("twig", {});
  ASSERT_TRUE(id.ok());
  auto batch = service.Ask(id.value(), 1);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch.value().empty());
  const Status parked = service.Park(id.value());
  EXPECT_EQ(parked.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(parked.message().find("unanswered"), std::string::npos)
      << parked.message();
  // Answer, then parking succeeds; parking twice is a no-op.
  ASSERT_TRUE(service.Tell(id.value(), {true}).ok());
  EXPECT_TRUE(service.Park(id.value()).ok());
  EXPECT_TRUE(service.Park(id.value()).ok());
  EXPECT_EQ(service.Counters().hibernates, 1u);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(HibernationConformance, ParkIdleSessionsSweepsOnlyIdleQuiescent) {
  FakeClock clock;
  ServiceOptions options;
  options.hibernate_after_seconds = 5;
  options.clock = clock.AsFn();
  SessionService service(options);

  auto idle = service.Open("join", {});
  auto busy = service.Open("chain", {});
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(busy.ok());
  // `busy` has an unanswered batch; `idle` is quiescent.
  ASSERT_TRUE(service.Ask(busy.value(), 1).ok());

  clock.Advance(2);
  EXPECT_EQ(service.ParkIdleSessions(), 0u);  // not idle long enough
  clock.Advance(4);
  EXPECT_EQ(service.ParkIdleSessions(), 1u);  // only the quiescent one
  EXPECT_EQ(service.ParkedCount(), 1u);
  EXPECT_EQ(service.ResidentCount(), 1u);

  // Rehydration restores service as if nothing happened.
  auto batch = service.Ask(idle.value(), 1);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(batch.value().empty());
  EXPECT_TRUE(service.Close(busy.value()).ok());
  EXPECT_TRUE(service.Close(idle.value()).ok());
}

// ---------------------------------------------------------------------------
// Wall-clock budget across a park (the latent under/over-counting hole).

TEST(HibernationWallClock, ParkedIntervalCountsTowardWallBudget) {
  FakeClock clock;
  ServiceOptions options;
  options.clock = clock.AsFn();
  SessionService service(options);

  OpenOptions open_options;
  open_options.budget.max_wall_seconds = 10;
  auto id = service.Open("join", open_options);
  ASSERT_TRUE(id.ok());

  // Consume 2s awake, then sleep 20s parked: 22s > 10s allowance, so the
  // rehydrate-then-Ask must refuse with ResourceExhausted.
  clock.Advance(2);
  ASSERT_TRUE(service.Park(id.value()).ok());
  clock.Advance(20);
  auto refused = service.Ask(id.value(), 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
      << refused.status().ToString();
  // The refusal happened after a successful rehydrate, not instead of one.
  EXPECT_EQ(service.Counters().rehydrates, 1u);
  EXPECT_EQ(service.Counters().hibernate_errors, 0u);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(HibernationWallClock, ParkedIntervalIsNotDoubleCounted) {
  FakeClock clock;
  ServiceOptions options;
  options.clock = clock.AsFn();
  SessionService service(options);

  OpenOptions open_options;
  open_options.budget.max_wall_seconds = 10;
  auto id = service.Open("join", open_options);
  ASSERT_TRUE(id.ok());

  // 2s awake + 3s parked = 5s consumed: well inside the 10s allowance, so
  // the session must keep serving after rehydrate (over-counting — e.g.
  // adding the parked interval on top of a still-ticking opened_at — would
  // refuse here once the pre-park elapsed plus double-counted park crossed
  // 10s).
  clock.Advance(2);
  ASSERT_TRUE(service.Park(id.value()).ok());
  clock.Advance(3);
  auto batch = service.Ask(id.value(), 1);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(service.Tell(id.value(), service.OracleLabels(id.value())
                                            .value())
                  .ok());

  // 5s consumed so far; 4 more (9s total) still serves, 2 more (11s) not —
  // the budget keeps ticking from the reconstructed open time, exactly
  // once.
  clock.Advance(4);
  auto second = service.Ask(id.value(), 1);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(service.Tell(id.value(), service.OracleLabels(id.value())
                                           .value())
                  .ok());
  clock.Advance(2);
  auto third = service.Ask(id.value(), 1);
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted)
      << third.status().ToString();
  EXPECT_TRUE(service.Close(id.value()).ok());
}

// ---------------------------------------------------------------------------
// Fault injection: every way an image can rot, as structured statuses.

/// Opens a join session, advances it one answered batch, parks it, and
/// returns its handle. The store is shared with the test so images can be
/// corrupted in place.
std::string OpenAndPark(SessionService* service) {
  auto id = service->Open("join", {});
  EXPECT_TRUE(id.ok());
  auto batch = service->Ask(id.value(), 4);
  EXPECT_TRUE(batch.ok());
  auto labels = service->OracleLabels(id.value());
  EXPECT_TRUE(labels.ok());
  EXPECT_TRUE(service->Tell(id.value(), labels.value()).ok());
  EXPECT_TRUE(service->Park(id.value()).ok());
  return id.value();
}

/// Replaces the trailing FNV checksum so a deliberately malformed body
/// still passes the integrity check (exercising the parse errors behind
/// it).
std::string WithFixedChecksum(std::string body) {
  const uint64_t checksum = service::Fnv1a64(body);
  for (size_t i = 0; i < 8; ++i) {
    body.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  return body;
}

struct FaultFixture {
  std::shared_ptr<service::InMemorySnapshotStore> store;
  std::unique_ptr<SessionService> service;
  std::string id;
  std::string image;  // the pristine stored image

  FaultFixture() {
    store = std::make_shared<service::InMemorySnapshotStore>();
    ServiceOptions options;
    options.snapshot_store = store;
    service = std::make_unique<SessionService>(options);
    id = OpenAndPark(service.get());
    auto stored = store->Get(id);
    EXPECT_TRUE(stored.ok());
    image = stored.value();
  }
};

TEST(HibernationFaults, DeletedImageIsDataLossAndHandleStillCloses) {
  FaultFixture f;
  ASSERT_TRUE(f.store->Delete(f.id).ok());

  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss)
      << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("missing"), std::string::npos);
  EXPECT_EQ(f.service->Counters().hibernate_errors, 1u);

  // The handle is not dropped: Close releases it, reporting the loss.
  auto closed = f.service->Close(f.id);
  EXPECT_EQ(closed.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(f.service->OpenCount(), 0u);
  EXPECT_EQ(f.service->Status(f.id).status().code(), StatusCode::kNotFound);
}

TEST(HibernationFaults, TruncatedBelowChecksumIsDataLoss) {
  FaultFixture f;
  ASSERT_TRUE(f.store->Put(f.id, f.image.substr(0, 5)).ok());
  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(refused.status().message().find("5 byte(s)"), std::string::npos)
      << refused.status().message();
}

TEST(HibernationFaults, TruncatedImageFailsChecksumWithByteRange) {
  FaultFixture f;
  ASSERT_TRUE(f.store->Put(f.id, f.image.substr(0, f.image.size() - 9)).ok());
  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(refused.status().message().find("checksum over bytes [0, "),
            std::string::npos)
      << refused.status().message();
}

TEST(HibernationFaults, TruncatedBodyWithValidChecksumReportsByteOffset) {
  FaultFixture f;
  // Rebuild a checksum-valid image whose body stops mid-field: the
  // integrity check passes, the structured parse reports where it ran out.
  const std::string body = f.image.substr(0, f.image.size() - 8);
  ASSERT_TRUE(
      f.store->Put(f.id, WithFixedChecksum(body.substr(0, 20))).ok());
  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("truncated at byte"),
            std::string::npos)
      << refused.status().message();
}

TEST(HibernationFaults, BitFlipAnywhereIsChecksumDataLoss) {
  FaultFixture f;
  std::string flipped = f.image;
  flipped[flipped.size() / 2] ^= 0x10;
  ASSERT_TRUE(f.store->Put(f.id, flipped).ok());
  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(refused.status().message().find("stored 0x"), std::string::npos)
      << refused.status().message();
}

TEST(HibernationFaults, WrongMagicIsInvalidArgumentAtByteZero) {
  FaultFixture f;
  std::string body = f.image.substr(0, f.image.size() - 8);
  body[0] = 'X';
  ASSERT_TRUE(f.store->Put(f.id, WithFixedChecksum(body)).ok());
  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("not a hibernation image"),
            std::string::npos)
      << refused.status().message();
  EXPECT_NE(refused.status().message().find("at byte 0"), std::string::npos);
}

TEST(HibernationFaults, WrongVersionIsInvalidArgumentAtByteFour) {
  FaultFixture f;
  std::string body = f.image.substr(0, f.image.size() - 8);
  body[4] = 0x7f;
  ASSERT_TRUE(f.store->Put(f.id, WithFixedChecksum(body)).ok());
  auto refused = f.service->Ask(f.id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      refused.status().message().find("unsupported hibernation image version"),
      std::string::npos)
      << refused.status().message();
  EXPECT_NE(refused.status().message().find("at byte 4"), std::string::npos);
}

TEST(HibernationFaults, FailedRehydrateIsRetryable) {
  FaultFixture f;
  std::string flipped = f.image;
  flipped[flipped.size() / 3] ^= 0x01;
  ASSERT_TRUE(f.store->Put(f.id, flipped).ok());
  EXPECT_EQ(f.service->Ask(f.id, 1).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(f.service->ParkedCount(), 1u);  // still parked, not dropped

  // Restore the pristine image: the same handle serves again.
  ASSERT_TRUE(f.store->Put(f.id, f.image).ok());
  auto batch = f.service->Ask(f.id, 1);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(batch.value().empty());
  EXPECT_EQ(f.service->Counters().hibernate_errors, 1u);
  EXPECT_TRUE(f.service->Close(f.id).ok());
}

TEST(HibernationFaults, EveryFaultPathIncrementsHibernateErrors) {
  FaultFixture f;
  uint64_t expected = 0;
  for (int round = 0; round < 3; ++round) {
    std::string bad = f.image;
    bad[8 + static_cast<size_t>(round)] ^= 0x40;
    ASSERT_TRUE(f.store->Put(f.id, bad).ok());
    EXPECT_FALSE(f.service->Ask(f.id, 1).ok());
    ++expected;
    EXPECT_EQ(f.service->Counters().hibernate_errors, expected);
  }
  ASSERT_TRUE(f.store->Put(f.id, f.image).ok());
  EXPECT_TRUE(f.service->Close(f.id).ok());
}

// ---------------------------------------------------------------------------
// File-backed snapshot store.

TEST(FileSnapshotStore, ParkRehydrateRoundTripsThroughDisk) {
  const std::string dir =
      ::testing::TempDir() + "qlearn_hibernation_store";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ASSERT_TRUE(std::filesystem::create_directories(dir, ec) || !ec);

  auto store = std::make_shared<service::FileSnapshotStore>(dir);
  ServiceOptions options;
  options.snapshot_store = store;
  SessionService service(options);

  const std::string id = OpenAndPark(&service);
  EXPECT_TRUE(std::filesystem::exists(store->PathFor(id)));
  EXPECT_EQ(store->Count(), 1u);

  // Rehydrate from disk and finish; the image is consumed.
  auto batch = service.Ask(id, 1);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(std::filesystem::exists(store->PathFor(id)));
  EXPECT_TRUE(service.Close(id).ok());
}

TEST(FileSnapshotStore, OnDiskCorruptionSurfacesAsDataLoss) {
  const std::string dir =
      ::testing::TempDir() + "qlearn_hibernation_corrupt";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ASSERT_TRUE(std::filesystem::create_directories(dir, ec) || !ec);

  auto store = std::make_shared<service::FileSnapshotStore>(dir);
  ServiceOptions options;
  options.snapshot_store = store;
  SessionService service(options);

  const std::string id = OpenAndPark(&service);
  // Flip one byte of the image in place on disk.
  auto content = ReadFileToString(store->PathFor(id));
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes[bytes.size() / 2] ^= 0x04;
  ASSERT_TRUE(testing::WriteStringToFile(store->PathFor(id), bytes).ok());

  auto refused = service.Ask(id, 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss)
      << refused.status().ToString();
  auto closed = service.Close(id);
  EXPECT_EQ(closed.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(service.OpenCount(), 0u);
}

TEST(FileSnapshotStore, GetMissingKeyIsNotFoundAndDeleteIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "qlearn_hibernation_empty";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ASSERT_TRUE(std::filesystem::create_directories(dir, ec) || !ec);

  service::FileSnapshotStore store(dir);
  EXPECT_EQ(store.Get("s-1").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.Delete("s-1").ok());
  EXPECT_TRUE(store.Put("s-1", "payload").ok());
  auto got = store.Get("s-1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "payload");
  EXPECT_TRUE(store.Delete("s-1").ok());
  EXPECT_TRUE(store.Delete("s-1").ok());
  EXPECT_EQ(store.Count(), 0u);
}

}  // namespace
}  // namespace qlearn
