// Unit tests for the shared split-half / lattice-probe scorers
// (rlearn/mask_scoring.h) deduplicated out of the join, chain, and crowd
// question-selection loops.
#include "rlearn/mask_scoring.h"

#include <gtest/gtest.h>

namespace qlearn {
namespace rlearn {
namespace {

TEST(MaskScoringTest, SplitHalfPeaksAtHalf) {
  // total = 8: best kept is 4 (score 4), monotone decay to both extremes.
  EXPECT_EQ(SplitHalfScore(8, 4), 4);
  EXPECT_EQ(SplitHalfScore(8, 3), 3);
  EXPECT_EQ(SplitHalfScore(8, 5), 3);
  EXPECT_EQ(SplitHalfScore(8, 0), 0);
  EXPECT_EQ(SplitHalfScore(8, 8), 0);
  // Odd total: the two middle kept-counts straddle the peak.
  EXPECT_EQ(SplitHalfScore(7, 3), 3);
  EXPECT_EQ(SplitHalfScore(7, 4), 2);
  // Degenerate singleton hypothesis set.
  EXPECT_EQ(SplitHalfScore(1, 0), 0);
  EXPECT_EQ(SplitHalfScore(1, 1), -1);
}

TEST(MaskScoringTest, SplitHalfOrderingIsSymmetricAroundHalf) {
  const int total = 12;
  for (int kept = 0; kept <= total / 2; ++kept) {
    EXPECT_EQ(SplitHalfScore(total, kept), SplitHalfScore(total, total - kept));
  }
  for (int kept = 1; kept <= total / 2; ++kept) {
    EXPECT_GT(SplitHalfScore(total, kept), SplitHalfScore(total, kept - 1));
  }
}

TEST(MaskScoringTest, LatticeProbePrefersAlmostFullAgreement) {
  // kept == total-1 is the lattice probe: score `total` strictly dominates
  // every split-half value (which is at most total/2).
  const int total = 10;
  EXPECT_EQ(LatticeProbeScore(total, total - 1), total);
  for (int kept = 0; kept <= total; ++kept) {
    if (kept == total - 1) continue;
    EXPECT_EQ(LatticeProbeScore(total, kept), SplitHalfScore(total, kept));
    EXPECT_LT(LatticeProbeScore(total, kept),
              LatticeProbeScore(total, total - 1));
  }
  // total == 1: kept == 0 is the probe case (drops the only pair).
  EXPECT_EQ(LatticeProbeScore(1, 0), 1);
}

}  // namespace
}  // namespace rlearn
}  // namespace qlearn
