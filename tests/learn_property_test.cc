// Parameterized property sweeps for the learners:
//  * twig learner soundness: the hypothesis always selects every example;
//  * interactive join sessions: every inferred (never-asked) label agrees
//    with the oracle, for every strategy and random hidden goal;
//  * path-pattern generalization: language growth is monotone.
#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "glearn/concat_pattern.h"
#include "learn/twig_learner.h"
#include "relational/generator.h"
#include "rlearn/interactive_join.h"
#include "twig/twig_eval.h"
#include "xml/xmark.h"

namespace qlearn {
namespace {

class LearnerSoundness : public ::testing::TestWithParam<int> {};

TEST_P(LearnerSoundness, TwigLearnerSelectsAllExamples) {
  common::Interner interner;
  common::Rng rng(GetParam() * 7001 + 3);
  xml::XMarkOptions options;
  options.seed = rng.Fork();
  options.num_people = 8;
  options.num_open_auctions = 4;
  options.num_closed_auctions = 3;
  const xml::XmlTree d1 = xml::GenerateXMark(options, &interner);
  options.seed = rng.Fork();
  const xml::XmlTree d2 = xml::GenerateXMark(options, &interner);

  // Pick random same-label nodes from the two documents.
  const std::vector<xml::NodeId> order1 = d1.PreOrder();
  for (int attempt = 0; attempt < 5; ++attempt) {
    const xml::NodeId n1 = order1[rng.Index(order1.size())];
    std::vector<xml::NodeId> same;
    for (xml::NodeId n : d2.PreOrder()) {
      if (d2.label(n) == d1.label(n1)) same.push_back(n);
    }
    if (same.empty()) continue;
    const xml::NodeId n2 = same[rng.Index(same.size())];

    auto learned = learn::LearnTwig(
        {learn::TreeExample{&d1, n1}, learn::TreeExample{&d2, n2}});
    if (!learned.ok()) continue;  // outside the anchored class
    EXPECT_TRUE(twig::Selects(learned.value(), d1, n1))
        << learned.value().ToString(interner);
    EXPECT_TRUE(twig::Selects(learned.value(), d2, n2))
        << learned.value().ToString(interner);
    EXPECT_TRUE(learned.value().IsAnchored());
  }
}

TEST_P(LearnerSoundness, InteractiveJoinForcedLabelsMatchOracle) {
  common::Rng rng(GetParam() * 7919 + 1);
  relational::JoinInstanceOptions options;
  options.seed = rng.Fork();
  options.left_rows = 12;
  options.right_rows = 12;
  options.left_arity = 3;
  options.right_arity = 3;
  options.domain_size = 3;
  const relational::JoinInstance inst =
      relational::GenerateJoinInstance(options, 1 + GetParam() % 3);
  auto universe = rlearn::PairUniverse::AllCompatible(inst.left.schema(),
                                                      inst.right.schema());
  ASSERT_TRUE(universe.ok());
  rlearn::PairMask goal = 0;
  for (size_t i = 0; i < universe.value().size(); ++i) {
    for (const auto& g : inst.goal) {
      if (universe.value().pairs()[i] == g) goal |= (1ULL << i);
    }
  }
  ASSERT_NE(goal, 0u);

  for (rlearn::JoinStrategy strategy :
       {rlearn::JoinStrategy::kRandom, rlearn::JoinStrategy::kSplitHalf,
        rlearn::JoinStrategy::kLattice}) {
    rlearn::GoalJoinOracle oracle(&universe.value(), goal);
    rlearn::InteractiveJoinOptions session;
    session.strategy = strategy;
    session.seed = rng.Fork();
    auto result = rlearn::RunInteractiveJoinSession(
        universe.value(), inst.left, inst.right, &oracle, session);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().conflicts, 0u);
    // Every pair (asked or forced) must end up labeled as the oracle would.
    for (size_t i = 0; i < inst.left.size(); ++i) {
      for (size_t j = 0; j < inst.right.size(); ++j) {
        const rlearn::PairMask agree = universe.value().AgreeMask(
            inst.left.row(i), inst.right.row(j));
        EXPECT_EQ(rlearn::MaskSatisfied(result.value().learned, agree),
                  rlearn::MaskSatisfied(goal, agree));
      }
    }
  }
}

TEST_P(LearnerSoundness, ConcatGeneralizationIsMonotone) {
  common::Interner interner;
  common::Rng rng(GetParam() * 31 + 7);
  const common::SymbolId syms[] = {interner.Intern("x"),
                                   interner.Intern("y")};
  auto random_word = [&]() {
    std::vector<common::SymbolId> w;
    const int len = static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < len; ++i) w.push_back(syms[rng.Index(2)]);
    return w;
  };

  glearn::ConcatPattern pattern =
      glearn::ConcatPattern::FromWord(random_word());
  std::vector<std::vector<common::SymbolId>> accepted_so_far;
  for (int step = 0; step < 6; ++step) {
    const auto word = random_word();
    const glearn::ConcatPattern next = pattern.Generalize(word);
    EXPECT_TRUE(next.Accepts(word));
    // Monotonicity: everything accepted before stays accepted.
    for (const auto& old : accepted_so_far) {
      EXPECT_TRUE(next.Accepts(old));
    }
    accepted_so_far.push_back(word);
    pattern = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerSoundness, ::testing::Range(0, 20));

}  // namespace
}  // namespace qlearn
