// Golden-transcript conformance: the checked-in transcripts under
// tests/golden/ pin the exact question sequences, labels, hypotheses, and
// stats of the five paper-experiment scenarios (E1/E4/E6/E7/E12) as served
// by SessionService. The suite fails when the current build serves
// different bytes — i.e. when a refactor changed paper-faithful behavior.
//
// To re-golden intentionally:   QLEARN_TRANSCRIPT_REGEN=1 ./transcript_harness_test
// CI artifact on mismatch:      QLEARN_TRANSCRIPT_OUT=dir (regenerated
//                               transcripts are written there for diffing)
#include "transcript_harness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "service/session_service.h"
#include "service/wire.h"

namespace qlearn {
namespace testing {
namespace {

using service::SessionService;
using service::wire::ParseTranscript;
using service::wire::SerializeTranscript;
using service::wire::TranscriptEvent;

/// Records the case's transcript through a fresh service.
std::string RecordSerialized(const TranscriptCase& c) {
  SessionService service;
  auto events = RecordTranscript(&service, c);
  EXPECT_TRUE(events.ok()) << c.name << ": " << events.status().ToString();
  if (!events.ok()) return std::string();
  EXPECT_EQ(service.OpenCount(), 0u) << c.name << " leaked its session";
  return SerializeTranscript(events.value());
}

TEST(TranscriptGoldenTest, CasesCoverE1E4E6E7E12AndEveryStrategy) {
  std::vector<std::string> names;
  for (const TranscriptCase& c : ConformanceCases()) names.push_back(c.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{
                "e1_twig", "e4_twig_ambiguity", "e6_join", "e7_path",
                "e12_chain", "s_twig_random", "s_join_random",
                "s_join_lattice", "s_chain_random", "s_path_random",
                "s_path_workload"}));
}

TEST(TranscriptGoldenTest, CurrentBehaviorMatchesGoldenTranscripts) {
  const char* regen = std::getenv("QLEARN_TRANSCRIPT_REGEN");
  const char* out_dir = std::getenv("QLEARN_TRANSCRIPT_OUT");
  for (const TranscriptCase& c : ConformanceCases()) {
    const std::string current = RecordSerialized(c);
    ASSERT_FALSE(current.empty()) << c.name;

    if (regen != nullptr && regen[0] != '\0') {
      ASSERT_TRUE(WriteStringToFile(GoldenPath(c.name), current).ok())
          << c.name;
    }

    auto golden = ReadFileToString(GoldenPath(c.name));
    ASSERT_TRUE(golden.ok())
        << c.name << ": " << golden.status().ToString()
        << " (run with QLEARN_TRANSCRIPT_REGEN=1 to create goldens)";
    const bool matches = golden.value() == current;
    EXPECT_TRUE(matches)
        << c.name << ": current behavior diverged from the golden "
        << "transcript " << GoldenPath(c.name)
        << " — if intentional, re-golden with QLEARN_TRANSCRIPT_REGEN=1";
    if (!matches && out_dir != nullptr && out_dir[0] != '\0') {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      const std::string path = std::string(out_dir) + "/" + c.name + ".jsonl";
      EXPECT_TRUE(WriteStringToFile(path, current).ok()) << path;
    }
  }
}

TEST(TranscriptGoldenTest, GoldenTranscriptsReplayBitIdentical) {
  for (const TranscriptCase& c : ConformanceCases()) {
    auto golden = ReadFileToString(GoldenPath(c.name));
    ASSERT_TRUE(golden.ok()) << c.name << ": " << golden.status().ToString();

    auto events = ParseTranscript(golden.value());
    ASSERT_TRUE(events.ok()) << c.name << ": " << events.status().ToString();
    // The golden file itself is canonical: parsing and re-serializing it
    // reproduces the exact bytes on disk.
    EXPECT_EQ(SerializeTranscript(events.value()), golden.value()) << c.name;

    SessionService service;
    auto mismatches = ReplayTranscript(&service, events.value());
    ASSERT_TRUE(mismatches.ok())
        << c.name << ": " << mismatches.status().ToString();
    for (const std::string& mismatch : mismatches.value()) {
      ADD_FAILURE() << c.name << ": " << mismatch;
    }
    EXPECT_EQ(service.OpenCount(), 0u) << c.name;
  }
}

TEST(TranscriptGoldenTest, FreshRecordingReplaysCleanly) {
  // Record→replay with no golden involved: the harness itself is sound
  // even while goldens are being (re)generated.
  for (const TranscriptCase& c : ConformanceCases()) {
    SessionService record_service;
    auto events = RecordTranscript(&record_service, c);
    ASSERT_TRUE(events.ok()) << c.name << ": " << events.status().ToString();
    ASSERT_GE(events.value().size(), 2u) << c.name;
    EXPECT_EQ(events.value().front().kind, TranscriptEvent::Kind::kOpen);
    EXPECT_EQ(events.value().back().kind, TranscriptEvent::Kind::kClose);

    SessionService replay_service;
    auto mismatches = ReplayTranscript(&replay_service, events.value());
    ASSERT_TRUE(mismatches.ok())
        << c.name << ": " << mismatches.status().ToString();
    for (const std::string& mismatch : mismatches.value()) {
      ADD_FAILURE() << c.name << ": " << mismatch;
    }
  }
}

TEST(TranscriptGoldenTest, TamperedTranscriptIsDetected) {
  // The harness must actually flag divergence, not just rubber-stamp: flip
  // one recorded label and the downstream question stream (or the final
  // hypothesis) must mismatch.
  const TranscriptCase& c = ConformanceCases().front();
  SessionService record_service;
  auto events = RecordTranscript(&record_service, c);
  ASSERT_TRUE(events.ok());
  bool flipped = false;
  for (TranscriptEvent& event : events.value()) {
    if (event.kind == TranscriptEvent::Kind::kTell && !event.labels.empty()) {
      event.labels[0] = !event.labels[0];
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "transcript has no labels to tamper with";

  SessionService replay_service;
  auto mismatches = ReplayTranscript(&replay_service, events.value());
  ASSERT_TRUE(mismatches.ok());
  EXPECT_FALSE(mismatches.value().empty())
      << "tampered transcript replayed without a single mismatch";
}

}  // namespace
}  // namespace testing
}  // namespace qlearn
