// Tests for disjunctive multiplicity expressions: membership semantics,
// parsing/printing, emptiness/requirement analysis, and the containment
// decision procedure cross-validated against brute-force bag enumeration.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "schema/dme.h"

namespace qlearn {
namespace schema {
namespace {

using common::Interner;
using common::SymbolId;

class DmeFixture : public ::testing::Test {
 protected:
  Dme D(const std::string& text) {
    auto d = ParseDme(text, &interner_);
    EXPECT_TRUE(d.ok()) << text << ": " << d.status().ToString();
    return d.ok() ? std::move(d).value() : Dme();
  }

  Bag B(std::initializer_list<std::pair<const char*, int>> items) {
    Bag bag;
    for (const auto& [name, count] : items) {
      if (count > 0) bag[interner_.Intern(name)] = count;
    }
    return bag;
  }

  Interner interner_;
};

TEST_F(DmeFixture, SingletonMultiplicities) {
  const Dme one = D("a");
  EXPECT_TRUE(one.Accepts(B({{"a", 1}})));
  EXPECT_FALSE(one.Accepts(B({})));
  EXPECT_FALSE(one.Accepts(B({{"a", 2}})));

  const Dme opt = D("a?");
  EXPECT_TRUE(opt.Accepts(B({})));
  EXPECT_TRUE(opt.Accepts(B({{"a", 1}})));
  EXPECT_FALSE(opt.Accepts(B({{"a", 2}})));

  const Dme plus = D("a+");
  EXPECT_FALSE(plus.Accepts(B({})));
  EXPECT_TRUE(plus.Accepts(B({{"a", 3}})));

  const Dme star = D("a*");
  EXPECT_TRUE(star.Accepts(B({})));
  EXPECT_TRUE(star.Accepts(B({{"a", 5}})));
}

TEST_F(DmeFixture, ConjunctionOfSingletons) {
  const Dme e = D("a, b?, c*");
  EXPECT_TRUE(e.Accepts(B({{"a", 1}})));
  EXPECT_TRUE(e.Accepts(B({{"a", 1}, {"b", 1}, {"c", 4}})));
  EXPECT_FALSE(e.Accepts(B({{"b", 1}})));           // a missing
  EXPECT_FALSE(e.Accepts(B({{"a", 1}, {"b", 2}}))); // b capped at 1
}

TEST_F(DmeFixture, ForeignSymbolsRejected) {
  const Dme e = D("a?");
  EXPECT_FALSE(e.Accepts(B({{"z", 1}})));
  EXPECT_FALSE(e.Accepts(B({{"a", 1}, {"z", 1}})));
}

TEST_F(DmeFixture, ExclusiveDisjunction) {
  const Dme e = D("(a|b)");
  EXPECT_TRUE(e.Accepts(B({{"a", 1}})));
  EXPECT_TRUE(e.Accepts(B({{"b", 1}})));
  EXPECT_FALSE(e.Accepts(B({})));
  EXPECT_FALSE(e.Accepts(B({{"a", 1}, {"b", 1}})));
  EXPECT_FALSE(e.Accepts(B({{"a", 2}})));
}

TEST_F(DmeFixture, OptionalDisjunction) {
  const Dme e = D("(a|b)?");
  EXPECT_TRUE(e.Accepts(B({})));
  EXPECT_TRUE(e.Accepts(B({{"a", 1}})));
  EXPECT_FALSE(e.Accepts(B({{"a", 1}, {"b", 1}})));
}

TEST_F(DmeFixture, DisjunctionWithPlusAtom) {
  const Dme e = D("(a+|b)");
  EXPECT_TRUE(e.Accepts(B({{"a", 3}})));
  EXPECT_TRUE(e.Accepts(B({{"b", 1}})));
  EXPECT_FALSE(e.Accepts(B({{"b", 2}})));
  EXPECT_FALSE(e.Accepts(B({{"a", 1}, {"b", 1}})));
}

TEST_F(DmeFixture, RepeatableDisjunctionMixes) {
  const Dme e = D("(a|b)+");
  EXPECT_TRUE(e.Accepts(B({{"a", 2}, {"b", 3}})));
  EXPECT_TRUE(e.Accepts(B({{"b", 1}})));
  EXPECT_FALSE(e.Accepts(B({})));
  const Dme star = D("(a|b)*");
  EXPECT_TRUE(star.Accepts(B({})));
  EXPECT_TRUE(star.Accepts(B({{"a", 1}, {"b", 1}})));
}

TEST_F(DmeFixture, OptionalAtomInsideRequiredClause) {
  // (a?|b)^1: an empty a-part satisfies the single required part.
  const Dme e = D("(a?|b)");
  EXPECT_TRUE(e.Accepts(B({})));
  EXPECT_TRUE(e.Accepts(B({{"a", 1}})));
  EXPECT_TRUE(e.Accepts(B({{"b", 1}})));
  EXPECT_FALSE(e.Accepts(B({{"a", 1}, {"b", 1}})));
}

TEST_F(DmeFixture, EmptyExpressionOnlyAcceptsEmptyBag) {
  const Dme e = D("");
  EXPECT_TRUE(e.Accepts(B({})));
  EXPECT_FALSE(e.Accepts(B({{"a", 1}})));
}

TEST_F(DmeFixture, SingleOccurrenceEnforced) {
  EXPECT_FALSE(ParseDme("a, a?", &interner_).ok());
  EXPECT_FALSE(ParseDme("(a|b), a", &interner_).ok());
}

TEST_F(DmeFixture, ParseErrors) {
  EXPECT_FALSE(ParseDme("(a|", &interner_).ok());
  EXPECT_FALSE(ParseDme("a,,b", &interner_).ok());
  EXPECT_FALSE(ParseDme("a b", &interner_).ok());
}

TEST_F(DmeFixture, ToStringRoundTrip) {
  for (const char* text :
       {"a", "a?, b+", "(a|b)?, c*", "(a+|b|c)", "name, phone?"}) {
    const Dme e = D(text);
    const Dme e2 = D(e.ToString(interner_));
    EXPECT_TRUE(e.ContainedIn(e2) && e2.ContainedIn(e))
        << text << " -> " << e.ToString(interner_);
  }
}

TEST_F(DmeFixture, CanContainAndRequires) {
  const Dme e = D("a, b?, (c|d)+");
  EXPECT_TRUE(e.CanContain(interner_.Intern("a")));
  EXPECT_TRUE(e.CanContain(interner_.Intern("c")));
  EXPECT_FALSE(e.CanContain(interner_.Intern("z")));
  EXPECT_TRUE(e.Requires(interner_.Intern("a")));
  EXPECT_FALSE(e.Requires(interner_.Intern("b")));
  EXPECT_FALSE(e.Requires(interner_.Intern("c")));  // d can cover the clause
}

TEST_F(DmeFixture, ContainmentBasics) {
  EXPECT_TRUE(D("a").ContainedIn(D("a?")));
  EXPECT_FALSE(D("a?").ContainedIn(D("a")));
  EXPECT_TRUE(D("a+").ContainedIn(D("a*")));
  EXPECT_TRUE(D("a, b").ContainedIn(D("a?, b*")));
  EXPECT_FALSE(D("a, b").ContainedIn(D("a, c?")));   // b unknown to rhs
  EXPECT_TRUE(D("(a|b)").ContainedIn(D("a?, b?")));
  EXPECT_FALSE(D("a?, b?").ContainedIn(D("(a|b)")));  // {a,b} allowed by lhs
  EXPECT_TRUE(D("(a|b)?").ContainedIn(D("(a|b)*")));
  EXPECT_TRUE(D("").ContainedIn(D("a*")));
  EXPECT_FALSE(D("a").ContainedIn(D("")));
}

// ---------------------------------------------------------------------------
// Property sweep: containment decision agrees with brute-force enumeration of
// all bags with counts <= 3 (count cap 2 is what the algorithm exploits, so
// checking up to 3 exercises the boundary).
// ---------------------------------------------------------------------------

class DmeContainmentProperty : public ::testing::TestWithParam<int> {};

Dme RandomDme(common::Rng* rng, const std::vector<SymbolId>& alphabet) {
  std::vector<SymbolId> pool = alphabet;
  rng->Shuffle(&pool);
  const size_t use = rng->Index(pool.size() + 1);
  std::vector<Clause> clauses;
  size_t i = 0;
  static const Multiplicity kMults[] = {Multiplicity::kOne, Multiplicity::kOpt,
                                        Multiplicity::kPlus,
                                        Multiplicity::kStar};
  while (i < use) {
    Clause clause;
    const size_t width = std::min<size_t>(use - i, 1 + rng->Uniform(3));
    for (size_t k = 0; k < width; ++k) {
      clause.atoms.push_back(Atom{pool[i + k], kMults[rng->Index(4)]});
    }
    clause.mult = kMults[rng->Index(4)];
    clauses.push_back(std::move(clause));
    i += width;
  }
  auto dme = Dme::Create(std::move(clauses));
  EXPECT_TRUE(dme.ok());
  return std::move(dme).value();
}

TEST_P(DmeContainmentProperty, AgreesWithEnumeration) {
  Interner interner;
  common::Rng rng(GetParam() * 7919 + 13);
  std::vector<SymbolId> alphabet;
  for (const char* name : {"a", "b", "c", "d"}) {
    alphabet.push_back(interner.Intern(name));
  }
  const Dme e1 = RandomDme(&rng, alphabet);
  const Dme e2 = RandomDme(&rng, alphabet);

  // Brute-force: enumerate all bags with per-symbol counts 0..3.
  bool contained = true;
  Bag bag;
  std::function<void(size_t)> sweep = [&](size_t idx) {
    if (!contained) return;
    if (idx == alphabet.size()) {
      if (e1.Accepts(bag) && !e2.Accepts(bag)) contained = false;
      return;
    }
    for (int c = 0; c <= 3; ++c) {
      if (c == 0) {
        bag.erase(alphabet[idx]);
      } else {
        bag[alphabet[idx]] = c;
      }
      sweep(idx + 1);
    }
    bag.erase(alphabet[idx]);
  };
  sweep(0);

  EXPECT_EQ(e1.ContainedIn(e2), contained)
      << "E1 = " << e1.ToString(interner) << "\nE2 = " << e2.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmeContainmentProperty,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace schema
}  // namespace qlearn
