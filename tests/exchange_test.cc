// Tests for the cross-model exchange pipelines (Figure 1): publishing
// relational data as XML, shredding XML to relations and graphs, publishing
// graph paths as XML, and the end-to-end learn-then-exchange scenarios.
#include <gtest/gtest.h>

#include <set>

#include "exchange/mapping.h"
#include "relational/generator.h"
#include "relational/operators.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace exchange {
namespace {

using relational::Attribute;
using relational::Relation;
using relational::RelationSchema;
using relational::Value;
using relational::ValueType;

class ExchangeFixture : public ::testing::Test {
 protected:
  xml::XmlTree Doc(const std::string& text) {
    auto t = xml::ParseXml(text, &interner_);
    EXPECT_TRUE(t.ok()) << text;
    return t.ok() ? std::move(t).value() : xml::XmlTree();
  }

  twig::TwigQuery Q(const std::string& text) {
    auto q = twig::ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text;
    return q.ok() ? std::move(q).value() : twig::TwigQuery();
  }

  xml::NodeId FindNode(const xml::XmlTree& doc, const std::string& label,
                       int occurrence = 0) {
    int seen = 0;
    for (xml::NodeId n : doc.PreOrder()) {
      if (interner_.Name(doc.label(n)) == label) {
        if (seen == occurrence) return n;
        ++seen;
      }
    }
    ADD_FAILURE() << "no node labeled " << label;
    return 0;
  }

  common::Interner interner_;
};

TEST_F(ExchangeFixture, PublishFlatRelation) {
  Relation r(RelationSchema("emp", {Attribute{"name", ValueType::kString},
                                    Attribute{"dept", ValueType::kInt}}));
  r.InsertUnchecked({Value(std::string("ada")), Value(int64_t{1})});
  r.InsertUnchecked({Value(std::string("alan")), Value(int64_t{2})});

  PublishOptions opts;
  auto doc = PublishRelationAsXml(r, opts, &interner_);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(interner_.Name(doc.value().label(0)), "export");
  // Two records, each with two attribute elements carrying value leaves.
  const auto& records = doc.value().children(doc.value().root());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(doc.value().children(records[0]).size(), 2u);
  // The published tree selects via twigs: /export/record/name.
  EXPECT_EQ(twig::Evaluate(Q("/export/record/name"), doc.value()).size(), 2u);
}

TEST_F(ExchangeFixture, PublishGroupedRelation) {
  Relation r(RelationSchema("emp", {Attribute{"name", ValueType::kString},
                                    Attribute{"dept", ValueType::kInt}}));
  r.InsertUnchecked({Value(std::string("ada")), Value(int64_t{1})});
  r.InsertUnchecked({Value(std::string("alan")), Value(int64_t{2})});
  r.InsertUnchecked({Value(std::string("grace")), Value(int64_t{1})});

  PublishOptions opts;
  opts.group_by = "dept";
  auto doc = PublishRelationAsXml(r, opts, &interner_);
  ASSERT_TRUE(doc.ok());
  // Two groups (dept 1 and 2); dept 1 holds two records.
  EXPECT_EQ(twig::Evaluate(Q("/export/group"), doc.value()).size(), 2u);
  EXPECT_EQ(twig::Evaluate(Q("/export/group/record"), doc.value()).size(),
            3u);
  EXPECT_FALSE(
      PublishRelationAsXml(r, [] {
        PublishOptions bad;
        bad.group_by = "missing";
        return bad;
      }(), &interner_).ok());
}

TEST_F(ExchangeFixture, ShredToRelationExtractsTuples) {
  const xml::XmlTree doc = Doc(
      "<db><rec><k><k1/></k><v><v1/></v></rec>"
      "<rec><k><k2/></k><v><v2/></v></rec></db>");
  twig::TwigQuery q = Q("/db/rec[k][v]");
  q.AddMarked(3);  // k node
  q.AddMarked(4);  // v node
  ShredOptions opts;
  opts.relation_name = "kv";
  auto rel = ShredXmlToRelation(doc, q, opts, interner_);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().schema().name(), "kv");
  EXPECT_EQ(rel.value().size(), 2u);
  // Values are the first-child labels.
  std::set<std::string> keys;
  for (const auto& row : rel.value().rows()) {
    keys.insert(row[0].AsString());
  }
  EXPECT_EQ(keys, (std::set<std::string>{"k1", "k2"}));
}

TEST_F(ExchangeFixture, ShredToRelationRequiresMarks) {
  const xml::XmlTree doc = Doc("<db><rec/></db>");
  EXPECT_FALSE(ShredXmlToRelation(doc, Q("/db/rec"), {}, interner_).ok());
}

TEST_F(ExchangeFixture, ShredToGraphBuildsTriples) {
  const xml::XmlTree doc = Doc(
      "<site><person><name/><address><city/></address></person>"
      "<person><name/></person></site>");
  auto result = ShredXmlToGraph(doc, Q("//person"), interner_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().selected_roots.size(), 2u);
  // Vertices: 2 persons + name/address/city + name = 6. Edges, one per
  // parent-child pair: person1->{name,address}, address->city,
  // person2->name = 4.
  EXPECT_EQ(result.value().graph.NumVertices(), 6u);
  EXPECT_EQ(result.value().graph.NumEdges(), 4u);
  // Edge labels are the child element labels.
  std::set<std::string> labels;
  for (common::SymbolId s : result.value().graph.EdgeAlphabet()) {
    labels.insert(interner_.Name(s));
  }
  EXPECT_EQ(labels, (std::set<std::string>{"name", "address", "city"}));
}

TEST_F(ExchangeFixture, ShredToGraphSharesOverlappingSubtrees) {
  const xml::XmlTree doc = Doc("<a><b><c/></b></a>");
  // //* selects a, b, c; subtrees overlap but vertices/edges are unique.
  auto result = ShredXmlToGraph(doc, Q("//*"), interner_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().graph.NumVertices(), 3u);
  EXPECT_EQ(result.value().graph.NumEdges(), 2u);
}

TEST_F(ExchangeFixture, GraphPublishEmitsPaths) {
  graph::Graph g;
  const auto a = g.AddVertex("A");
  const auto b = g.AddVertex("B");
  const auto c = g.AddVertex("C");
  const auto highway = interner_.Intern("highway");
  g.AddEdge(a, b, highway, 5);
  g.AddEdge(b, c, highway, 5);

  auto regex = automata::ParseRegex("highway+", &interner_);
  ASSERT_TRUE(regex.ok());
  graph::PathQuery query{regex.value(), std::nullopt};
  auto doc = PublishGraphAsXml(g, query, {}, &interner_);
  ASSERT_TRUE(doc.ok());
  // Pairs: A->B, A->C, B->C.
  EXPECT_EQ(twig::Evaluate(Q("/paths/path"), doc.value()).size(), 3u);
  EXPECT_EQ(twig::Evaluate(Q("/paths/path/from"), doc.value()).size(), 3u);
  // The A->C path has two steps.
  EXPECT_EQ(twig::Evaluate(Q("/paths/path/step"), doc.value()).size(), 4u);
}

TEST_F(ExchangeFixture, Scenario1EndToEnd) {
  relational::Database db = relational::TinyCompanyDatabase();
  const Relation& emp = *db.Find("employees");
  const Relation& dept = *db.Find("departments");
  auto universe = rlearn::PairUniverse::AllCompatible(emp.schema(),
                                                      dept.schema());
  ASSERT_TRUE(universe.ok());
  // Hidden goal: employees.dept_id = departments.dept_id.
  rlearn::PairMask goal = 0;
  for (size_t i = 0; i < universe.value().size(); ++i) {
    const auto& p = universe.value().pairs()[i];
    if (emp.schema().attributes()[p.left].name == "dept_id" &&
        dept.schema().attributes()[p.right].name == "dept_id") {
      goal |= (1ULL << i);
    }
  }
  ASSERT_NE(goal, 0u);
  rlearn::GoalJoinOracle oracle(&universe.value(), goal);

  PublishOptions publish;
  publish.root_label = "staff";
  auto result = RunScenario1Publishing(universe.value(), emp, dept, &oracle,
                                       {}, publish, &interner_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().extracted.size(), emp.size());
  EXPECT_EQ(twig::Evaluate(Q("/staff/record"), result.value().published)
                .size(),
            emp.size());
  EXPECT_LT(result.value().session.questions,
            result.value().session.candidate_pairs);
}

TEST_F(ExchangeFixture, Scenario2EndToEnd) {
  const xml::XmlTree doc = Doc(
      "<site><people>"
      "<person><name><ada/></name><age/></person>"
      "<person><name><bob/></name></person>"
      "<person><name><cyd/></name><age/></person>"
      "</people></site>");
  // Annotate the names of persons with an age.
  const std::vector<xml::NodeId> examples{FindNode(doc, "name", 0),
                                          FindNode(doc, "name", 2)};
  ShredOptions opts;
  opts.relation_name = "adults";
  auto result = RunScenario2Shredding(doc, examples, opts, interner_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The learned query must filter on [age]: only 2 tuples.
  EXPECT_EQ(result.value().shredded.size(), 2u);
  std::set<std::string> values;
  for (const auto& row : result.value().shredded.rows()) {
    values.insert(row[0].AsString());
  }
  EXPECT_EQ(values, (std::set<std::string>{"ada", "cyd"}));
}

TEST_F(ExchangeFixture, Scenario3EndToEnd) {
  const xml::XmlTree doc = Doc(
      "<site><people>"
      "<person><name/><address><city/></address></person>"
      "<person><name/></person>"
      "</people></site>");
  const std::vector<xml::NodeId> examples{FindNode(doc, "person", 0),
                                          FindNode(doc, "person", 1)};
  auto result = RunScenario3Shredding(doc, examples, interner_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().shredded.selected_roots.size(), 2u);
  EXPECT_GT(result.value().shredded.graph.NumEdges(), 0u);
}

TEST_F(ExchangeFixture, Scenario4EndToEnd) {
  graph::Graph g;
  const auto a = g.AddVertex("A");
  const auto b = g.AddVertex("B");
  const auto c = g.AddVertex("C");
  const auto d = g.AddVertex("D");
  const auto highway = interner_.Intern("highway");
  const auto local = interner_.Intern("local");
  g.AddEdge(a, b, highway, 5);
  g.AddEdge(b, c, highway, 5);
  g.AddEdge(a, d, local, 2);

  auto regex = automata::ParseRegex("highway+", &interner_);
  ASSERT_TRUE(regex.ok());
  graph::PathQuery goal{regex.value(), std::nullopt};
  glearn::GoalPathOracle oracle(goal, g);
  graph::Path seed;
  seed.start = a;
  seed.edges = {0};

  auto result =
      RunScenario4Publishing(g, seed, &oracle, {}, {}, &interner_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().session.conflicts, 0u);
  // Published pairs: A->B, A->C, B->C.
  EXPECT_EQ(twig::Evaluate(Q("/paths/path"), result.value().published)
                .size(),
            3u);
}

}  // namespace
}  // namespace exchange
}  // namespace qlearn
