// Unit tests for common: Status/Result, Rng, Interner, strings, tables.
#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace qlearn {
namespace common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(InternerTest, StableIds) {
  Interner in;
  const SymbolId a = in.Intern("alpha");
  const SymbolId b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.Name(a), "alpha");
  EXPECT_EQ(in.Name(b), "beta");
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, LookupWithoutIntern) {
  Interner in;
  in.Intern("x");
  EXPECT_EQ(in.Lookup("x"), 0u);
  EXPECT_EQ(in.Lookup("y"), kNoSymbol);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "/"), "x/y/z");
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace common
}  // namespace qlearn
