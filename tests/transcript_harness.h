// Golden-transcript conformance harness.
//
// A transcript is the full wire record of one service-driven session:
// open, every ask/tell exchange, close (see service/wire.h). The harness
//
//   * records a transcript by driving a scenario through SessionService
//     with its built-in oracle, and
//   * replays a transcript through a fresh SessionService, asserting
//     bit-identical question sequences and final hypotheses/stats.
//
// Golden transcripts for the paper experiments' scenarios (E1 twig, E4
// twig-ambiguity, E6 join, E7 path, E12 chain) and for every non-default
// selection strategy (the "s_*" cases: twig/join/chain/path kRandom, join
// kLattice, path kWorkload) are checked in under tests/golden/. Any
// refactor of the learners, the session layer, or the wire format diffs
// against the paper-faithful behavior instead of re-deriving it: a diff in
// a golden file is a behavior change that must be either fixed or
// consciously re-golden-ed.
//
// Environment knobs (read by transcript_harness_test):
//   QLEARN_TRANSCRIPT_REGEN=1   rewrite the goldens from the current build
//   QLEARN_TRANSCRIPT_OUT=DIR   on mismatch, write the regenerated
//                               transcript to DIR (CI uploads it as an
//                               artifact so diffs are inspectable)
#ifndef QLEARN_TESTS_TRANSCRIPT_HARNESS_H_
#define QLEARN_TESTS_TRANSCRIPT_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/session_service.h"
#include "service/wire.h"

namespace qlearn {
namespace testing {

/// One conformance case: a scenario driven to completion under fixed knobs.
struct TranscriptCase {
  std::string name;      ///< golden file stem, e.g. "e6_join"
  std::string scenario;  ///< ScenarioRegistry key
  uint64_t seed;         ///< session seed (fixed for reproducibility)
  size_t batch;          ///< k passed to every Ask
};

/// The checked-in conformance cases, mirroring experiments E1/E4/E6/E7/E12.
const std::vector<TranscriptCase>& ConformanceCases();

/// Drives `c.scenario` to completion through `service`, answering with the
/// built-in oracle, and returns the recorded transcript.
common::Result<std::vector<service::wire::TranscriptEvent>> RecordTranscript(
    service::SessionService* service, const TranscriptCase& c);

/// Replays `events` through `service`: re-opens the session with the
/// recorded knobs, re-asks with the recorded batch sizes, feeds the
/// recorded labels, and compares every served question and the final
/// hypothesis/stats byte-for-byte. Returns human-readable mismatch
/// descriptions; empty means conformant.
common::Result<std::vector<std::string>> ReplayTranscript(
    service::SessionService* service,
    const std::vector<service::wire::TranscriptEvent>& events);

/// Absolute path of a golden transcript file ("<name>.jsonl" under the
/// checked-in golden directory).
std::string GoldenPath(const std::string& name);

common::Result<std::string> ReadFileToString(const std::string& path);
common::Status WriteStringToFile(const std::string& path,
                                 const std::string& content);

}  // namespace testing
}  // namespace qlearn

#endif  // QLEARN_TESTS_TRANSCRIPT_HARNESS_H_
