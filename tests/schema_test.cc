// Tests for schema-level functionality: DMS validation and containment,
// disjunction-free MS, dependency graphs (query satisfiability and filter
// implication), schema inference, DTDs, and valid-document sampling.
#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "schema/depgraph.h"
#include "schema/dms.h"
#include "schema/dtd.h"
#include "schema/inference.h"
#include "schema/ms.h"
#include "schema/sampling.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace schema {
namespace {

using common::Interner;
using common::SymbolId;

class SchemaFixture : public ::testing::Test {
 protected:
  SymbolId S(const char* name) { return interner_.Intern(name); }

  Dme D(const std::string& text) {
    auto d = ParseDme(text, &interner_);
    EXPECT_TRUE(d.ok()) << text << ": " << d.status().ToString();
    return d.ok() ? std::move(d).value() : Dme();
  }

  xml::XmlTree Doc(const std::string& text) {
    auto t = xml::ParseXml(text, &interner_);
    EXPECT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    return t.ok() ? std::move(t).value() : xml::XmlTree();
  }

  twig::TwigQuery Q(const std::string& text) {
    auto q = twig::ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text;
    return q.ok() ? std::move(q).value() : twig::TwigQuery();
  }

  /// A small "person registry" DMS used by several tests.
  Dms PersonDms() {
    Dms dms(S("people"));
    dms.SetRule(S("people"), D("person*"));
    dms.SetRule(S("person"), D("name, phone?, (homepage|creditcard)?"));
    dms.SetRule(S("name"), D(""));
    dms.SetRule(S("phone"), D(""));
    dms.SetRule(S("homepage"), D(""));
    dms.SetRule(S("creditcard"), D(""));
    return dms;
  }

  Interner interner_;
};

TEST_F(SchemaFixture, DmsValidatesConformingDocument) {
  const Dms dms = PersonDms();
  EXPECT_TRUE(dms.Validates(
      Doc("<people><person><name/><phone/></person>"
          "<person><name/><homepage/></person></people>")));
  EXPECT_TRUE(dms.Validates(Doc("<people/>")));
}

TEST_F(SchemaFixture, DmsRejectsViolations) {
  const Dms dms = PersonDms();
  // Missing required name.
  EXPECT_FALSE(dms.Validates(Doc("<people><person><phone/></person></people>")));
  // Both homepage and creditcard (exclusive).
  EXPECT_FALSE(dms.Validates(
      Doc("<people><person><name/><homepage/><creditcard/></person>"
          "</people>")));
  // Unknown label.
  EXPECT_FALSE(dms.Validates(Doc("<people><alien/></people>")));
  // Wrong root.
  EXPECT_FALSE(dms.Validates(Doc("<person><name/></person>")));
  // Two phones.
  EXPECT_FALSE(dms.Validates(
      Doc("<people><person><name/><phone/><phone/></person></people>")));
}

TEST_F(SchemaFixture, ValidateReportsUsefulErrors) {
  const Dms dms = PersonDms();
  const auto status = dms.Validate(
      Doc("<people><person><phone/></person></people>"), interner_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("person"), std::string::npos);
}

TEST_F(SchemaFixture, ProductiveAndReachable) {
  Dms dms(S("r"));
  dms.SetRule(S("r"), D("a?, b?"));
  dms.SetRule(S("a"), D(""));
  // b requires itself: non-productive.
  dms.SetRule(S("b"), D("b"));
  // c exists but unreachable.
  dms.SetRule(S("c"), D(""));
  const auto productive = dms.ProductiveLabels();
  EXPECT_TRUE(productive.count(S("r")));
  EXPECT_TRUE(productive.count(S("a")));
  EXPECT_FALSE(productive.count(S("b")));
  EXPECT_TRUE(productive.count(S("c")));
  const auto reachable = dms.ReachableLabels();
  EXPECT_TRUE(reachable.count(S("a")));
  EXPECT_FALSE(reachable.count(S("b")));
  EXPECT_FALSE(reachable.count(S("c")));
  EXPECT_TRUE(dms.Satisfiable());
}

TEST_F(SchemaFixture, UnsatisfiableSchema) {
  Dms dms(S("r"));
  dms.SetRule(S("r"), D("x"));
  dms.SetRule(S("x"), D("x"));  // required self-loop
  EXPECT_FALSE(dms.Satisfiable());
  // Vacuously contained in anything.
  EXPECT_TRUE(dms.ContainedIn(PersonDms()));
}

TEST_F(SchemaFixture, DmsContainment) {
  Dms tight(S("people"));
  tight.SetRule(S("people"), D("person+"));
  tight.SetRule(S("person"), D("name, phone?"));
  tight.SetRule(S("name"), D(""));
  tight.SetRule(S("phone"), D(""));
  EXPECT_TRUE(tight.ContainedIn(PersonDms()));
  EXPECT_FALSE(PersonDms().ContainedIn(tight));
}

TEST_F(SchemaFixture, DmsContainmentDetectsContentMismatch) {
  Dms other = PersonDms();
  other.SetRule(S("person"), D("name, phone"));
  EXPECT_FALSE(PersonDms().ContainedIn(other));  // phone? vs phone
  EXPECT_TRUE(other.ContainedIn(PersonDms()));
}

TEST_F(SchemaFixture, DmsContainmentIgnoresUnreachableGarbage) {
  Dms a = PersonDms();
  // Unreachable label with a wild content model.
  a.SetRule(S("junk"), D("name*, phone*"));
  EXPECT_TRUE(a.ContainedIn(PersonDms()));
}

TEST_F(SchemaFixture, MsBasics) {
  Ms ms(S("r"));
  ms.SetMultiplicity(S("r"), S("a"), Multiplicity::kPlus);
  ms.SetMultiplicity(S("r"), S("b"), Multiplicity::kOpt);
  EXPECT_TRUE(ms.Validates(Doc("<r><a/><a/><b/></r>")));
  EXPECT_FALSE(ms.Validates(Doc("<r><b/></r>")));        // a required
  EXPECT_FALSE(ms.Validates(Doc("<r><a/><b/><b/></r>"))); // b at most once
  EXPECT_FALSE(ms.Validates(Doc("<r><a/><z/></r>")));     // z unknown
}

TEST_F(SchemaFixture, MsContainment) {
  Ms tight(S("r"));
  tight.SetMultiplicity(S("r"), S("a"), Multiplicity::kOne);
  Ms loose(S("r"));
  loose.SetMultiplicity(S("r"), S("a"), Multiplicity::kPlus);
  EXPECT_TRUE(tight.ContainedIn(loose));
  EXPECT_FALSE(loose.ContainedIn(tight));
  // Requiredness in the outer schema must be met.
  Ms optional(S("r"));
  optional.SetMultiplicity(S("r"), S("a"), Multiplicity::kOpt);
  EXPECT_FALSE(optional.ContainedIn(tight));
  EXPECT_TRUE(tight.ContainedIn(optional));
}

TEST_F(SchemaFixture, MsToDmsPreservesValidation) {
  Ms ms(S("r"));
  ms.SetMultiplicity(S("r"), S("a"), Multiplicity::kPlus);
  ms.SetMultiplicity(S("r"), S("b"), Multiplicity::kOpt);
  const Dms dms = ms.ToDms();
  for (const char* text :
       {"<r><a/></r>", "<r><a/><a/><b/></r>", "<r><b/></r>", "<r/>",
        "<r><a/><b/><b/></r>"}) {
    const xml::XmlTree doc = Doc(text);
    EXPECT_EQ(ms.Validates(doc), dms.Validates(doc)) << text;
  }
}

TEST_F(SchemaFixture, DependencyGraphEdges) {
  Ms ms(S("r"));
  ms.SetMultiplicity(S("r"), S("a"), Multiplicity::kOne);
  ms.SetMultiplicity(S("a"), S("b"), Multiplicity::kOpt);
  ms.SetMultiplicity(S("b"), S("c"), Multiplicity::kPlus);
  const DependencyGraph g(ms);
  EXPECT_TRUE(g.HasEdge(S("r"), S("a")));
  EXPECT_TRUE(g.HasCertainEdge(S("r"), S("a")));
  EXPECT_TRUE(g.HasEdge(S("a"), S("b")));
  EXPECT_FALSE(g.HasCertainEdge(S("a"), S("b")));
  EXPECT_TRUE(g.Reachable(S("r"), S("c")));
  EXPECT_FALSE(g.CertainReachable(S("r"), S("b")));
  EXPECT_TRUE(g.CertainReachable(S("b"), S("c")));
}

TEST_F(SchemaFixture, QuerySatisfiability) {
  Ms ms(S("site"));
  ms.SetMultiplicity(S("site"), S("people"), Multiplicity::kOne);
  ms.SetMultiplicity(S("people"), S("person"), Multiplicity::kStar);
  ms.SetMultiplicity(S("person"), S("name"), Multiplicity::kOne);
  ms.SetMultiplicity(S("person"), S("phone"), Multiplicity::kOpt);

  EXPECT_TRUE(QuerySatisfiable(ms, Q("/site/people/person/name")));
  EXPECT_TRUE(QuerySatisfiable(ms, Q("//person[phone]/name")));
  EXPECT_TRUE(QuerySatisfiable(ms, Q("//name")));
  EXPECT_TRUE(QuerySatisfiable(ms, Q("/site//phone")));
  // Wrong root.
  EXPECT_FALSE(QuerySatisfiable(ms, Q("/people/person")));
  // name under people directly: not allowed.
  EXPECT_FALSE(QuerySatisfiable(ms, Q("/site/people/name")));
  // Unknown label.
  EXPECT_FALSE(QuerySatisfiable(ms, Q("//alien")));
  // phone has no children.
  EXPECT_FALSE(QuerySatisfiable(ms, Q("//phone/name")));
}

TEST_F(SchemaFixture, QuerySatisfiabilityWithWildcards) {
  Ms ms(S("r"));
  ms.SetMultiplicity(S("r"), S("a"), Multiplicity::kOpt);
  ms.SetMultiplicity(S("a"), S("b"), Multiplicity::kOpt);
  EXPECT_TRUE(QuerySatisfiable(ms, Q("/r/*/b")));
  EXPECT_FALSE(QuerySatisfiable(ms, Q("/r/*/*/b")));
  EXPECT_TRUE(QuerySatisfiable(ms, Q("//*[b]")));
}

TEST_F(SchemaFixture, FilterImplication) {
  Ms ms(S("site"));
  ms.SetMultiplicity(S("site"), S("people"), Multiplicity::kOne);
  ms.SetMultiplicity(S("people"), S("person"), Multiplicity::kStar);
  ms.SetMultiplicity(S("person"), S("name"), Multiplicity::kOne);
  ms.SetMultiplicity(S("person"), S("phone"), Multiplicity::kOpt);
  ms.SetMultiplicity(S("name"), S("first"), Multiplicity::kPlus);

  // person always has a name: the filter [name] at person is implied.
  {
    const twig::TwigQuery q = Q("//person[name]");
    // Filter node is the name child (id 2).
    EXPECT_TRUE(FilterImplied(ms, S("person"), q, 2));
  }
  // [phone] is not implied.
  {
    const twig::TwigQuery q = Q("//person[phone]");
    EXPECT_FALSE(FilterImplied(ms, S("person"), q, 2));
  }
  // Nested certain chain: person[name/first] implied.
  {
    const twig::TwigQuery q = Q("//person[name/first]");
    EXPECT_TRUE(FilterImplied(ms, S("person"), q, 2));
  }
  // Descendant filter [.//first] at person implied via certain path.
  {
    const twig::TwigQuery q = Q("//person[.//first]");
    EXPECT_TRUE(FilterImplied(ms, S("person"), q, 2));
  }
  // Wildcard filter [*] at person implied (some certain child exists).
  {
    const twig::TwigQuery q = Q("//person[*]");
    EXPECT_TRUE(FilterImplied(ms, S("person"), q, 2));
  }
  // [*] at phone not implied (phone is a leaf).
  {
    const twig::TwigQuery q = Q("//phone[*]");
    EXPECT_FALSE(FilterImplied(ms, S("phone"), q, 2));
  }
}

TEST_F(SchemaFixture, InferMsRecoversMultiplicities) {
  const xml::XmlTree d1 = Doc("<r><a/><a/><b/></r>");
  const xml::XmlTree d2 = Doc("<r><a/></r>");
  auto ms = InferMs({&d1, &d2});
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(ms.value().GetMultiplicity(S("r"), S("a")), Multiplicity::kPlus);
  EXPECT_EQ(ms.value().GetMultiplicity(S("r"), S("b")), Multiplicity::kOpt);
  EXPECT_TRUE(ms.value().Validates(d1));
  EXPECT_TRUE(ms.value().Validates(d2));
}

TEST_F(SchemaFixture, InferMsRejectsBadCorpus) {
  EXPECT_FALSE(InferMs({}).ok());
  const xml::XmlTree d1 = Doc("<r/>");
  const xml::XmlTree d2 = Doc("<q/>");
  EXPECT_FALSE(InferMs({&d1, &d2}).ok());
}

TEST_F(SchemaFixture, InferDmsFindsDisjunction) {
  const xml::XmlTree d1 = Doc("<p><n/><home/></p>");
  const xml::XmlTree d2 = Doc("<p><n/><card/></p>");
  const xml::XmlTree d3 = Doc("<p><n/></p>");
  auto dms = InferDms({&d1, &d2, &d3});
  ASSERT_TRUE(dms.ok());
  const Dms& schema = dms.value();
  EXPECT_TRUE(schema.Validates(d1));
  EXPECT_TRUE(schema.Validates(d2));
  EXPECT_TRUE(schema.Validates(d3));
  // home and card must be mutually exclusive in the inferred schema.
  EXPECT_FALSE(schema.Validates(Doc("<p><n/><home/><card/></p>")));
  // n stays required.
  EXPECT_FALSE(schema.Validates(Doc("<p><home/></p>")));
}

TEST_F(SchemaFixture, InferDmsConvergesToGoal) {
  // Sample many documents from a goal schema; inference must recover a
  // schema equivalent to the goal.
  Dms goal(S("person"));
  goal.SetRule(S("person"), D("name, phone?, (homepage|creditcard)?"));
  goal.SetRule(S("name"), D(""));
  goal.SetRule(S("phone"), D(""));
  goal.SetRule(S("homepage"), D(""));
  goal.SetRule(S("creditcard"), D(""));

  common::Rng rng(17);
  std::vector<xml::XmlTree> docs;
  for (int i = 0; i < 60; ++i) {
    auto doc = SampleDocument(goal, &rng);
    ASSERT_TRUE(doc.ok());
    docs.push_back(std::move(doc).value());
  }
  std::vector<const xml::XmlTree*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  auto inferred = InferDms(ptrs);
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(inferred.value().EquivalentTo(goal))
      << "inferred:\n" << inferred.value().ToString(interner_)
      << "goal:\n" << goal.ToString(interner_);
}

TEST_F(SchemaFixture, DtdValidatesOrderedContent) {
  Dtd dtd(S("r"));
  auto set = [&](const char* label, const char* regex) {
    auto r = automata::ParseRegex(regex, &interner_);
    ASSERT_TRUE(r.ok());
    dtd.SetRule(S(label), r.value());
  };
  set("r", "a.b*.c?");
  set("a", "()");
  set("b", "()");
  set("c", "()");
  EXPECT_TRUE(dtd.Validates(Doc("<r><a/><b/><b/><c/></r>")));
  EXPECT_TRUE(dtd.Validates(Doc("<r><a/></r>")));
  EXPECT_FALSE(dtd.Validates(Doc("<r><b/><a/></r>")));  // order matters
  EXPECT_FALSE(dtd.Validates(Doc("<r><a/><c/><c/></r>")));
  EXPECT_FALSE(dtd.Validates(Doc("<x/>")));
}

TEST_F(SchemaFixture, DtdOrderSensitiveVsDmsOrderOblivious) {
  Dtd dtd(S("r"));
  auto r = automata::ParseRegex("a.b", &interner_);
  ASSERT_TRUE(r.ok());
  dtd.SetRule(S("r"), r.value());
  auto eps = automata::ParseRegex("()", &interner_);
  dtd.SetRule(S("a"), eps.value());
  dtd.SetRule(S("b"), eps.value());

  Dms dms(S("r"));
  dms.SetRule(S("r"), D("a, b"));
  dms.SetRule(S("a"), D(""));
  dms.SetRule(S("b"), D(""));

  const xml::XmlTree ordered = Doc("<r><a/><b/></r>");
  const xml::XmlTree swapped = Doc("<r><b/><a/></r>");
  EXPECT_TRUE(dtd.Validates(ordered));
  EXPECT_FALSE(dtd.Validates(swapped));
  EXPECT_TRUE(dms.Validates(ordered));
  EXPECT_TRUE(dms.Validates(swapped));  // DMS ignores order
}

TEST_F(SchemaFixture, SampledDocumentsAreValid) {
  const Dms dms = PersonDms();
  common::Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    auto doc = SampleDocument(dms, &rng);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(dms.Validates(doc.value()))
        << doc.value().ToXml(interner_);
  }
}

TEST_F(SchemaFixture, SampleFailsOnUnsatisfiableSchema) {
  Dms dms(S("r"));
  dms.SetRule(S("r"), D("x"));
  dms.SetRule(S("x"), D("x"));
  common::Rng rng(1);
  EXPECT_FALSE(SampleDocument(dms, &rng).ok());
}

TEST_F(SchemaFixture, SamplerTerminatesOnRecursiveSchemas) {
  // parlist-style recursion with optional self-reference.
  Dms dms(S("list"));
  dms.SetRule(S("list"), D("item+"));
  dms.SetRule(S("item"), D("(text|list)"));
  dms.SetRule(S("text"), D(""));
  common::Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    auto doc = SampleDocument(dms, &rng);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(dms.Validates(doc.value()));
  }
}

TEST_F(SchemaFixture, RandomCanonicalDmsIsSatisfiableAndSampleable) {
  common::Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    RandomDmsOptions opts;
    opts.num_labels = 6;
    Interner local;
    const Dms dms = RandomCanonicalDms(opts, &rng, &local);
    EXPECT_TRUE(dms.Satisfiable());
    auto doc = SampleDocument(dms, &rng);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(dms.Validates(doc.value()));
  }
}

}  // namespace
}  // namespace schema
}  // namespace qlearn
