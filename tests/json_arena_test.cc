// Unit tests for the arena-backed JSON parse mode (json::Arena +
// ParseInto + View): allocation mechanics (alignment, slab growth,
// oversized requests, Reset recycling to a capacity plateau), zero-copy
// string leaves, and View-tree structure for every value type. Parser
// parity with the heap parser over random inputs lives in
// wire_property_test.cc; this file covers the arena itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "service/json.h"

namespace qlearn {
namespace service {
namespace json {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);
  char* a = static_cast<char*>(arena.Allocate(3, 1));
  char* b = static_cast<char*>(arena.Allocate(8, 8));
  char* c = static_cast<char*>(arena.Allocate(16, 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 8, 0u);
  // Writing each block must not clobber the others.
  std::memset(a, 0xaa, 3);
  std::memset(b, 0xbb, 8);
  std::memset(c, 0xcc, 16);
  EXPECT_EQ(static_cast<unsigned char>(a[2]), 0xaa);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xbb);
  EXPECT_EQ(static_cast<unsigned char>(c[15]), 0xcc);
}

TEST(ArenaTest, GrowsBeyondOneSlabAndOversizedRequestsGetOwnSlab) {
  Arena arena(64);
  // Many small blocks force additional slabs.
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(arena.Allocate(16, 8), nullptr);
  }
  const size_t grown = arena.CapacityBytes();
  EXPECT_GE(grown, 100 * 16u);
  // A request bigger than the slab size still succeeds (dedicated slab).
  char* big = static_cast<char*>(arena.Allocate(1000, 8));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 1000);
  EXPECT_GT(arena.CapacityBytes(), grown);
}

TEST(ArenaTest, ResetRecyclesSlabsToACapacityPlateau) {
  Arena arena(256);
  auto churn = [&arena] {
    for (int i = 0; i < 64; ++i) {
      ASSERT_NE(arena.Allocate(24, 8), nullptr);
    }
  };
  churn();
  arena.Reset();
  churn();
  arena.Reset();
  const size_t plateau = arena.CapacityBytes();
  // Steady state: the same workload after Reset allocates no new slabs.
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    churn();
    EXPECT_EQ(arena.CapacityBytes(), plateau) << "round " << round;
  }
}

TEST(ArenaTest, ParseReachesSteadyStateAcrossResets) {
  const std::string document =
      "{\"op\":\"ask\",\"id\":\"session-123\",\"k\":4,"
      "\"nested\":{\"ids\":[1,2,3,4,5],\"ok\":true},"
      "\"text\":\"needs \\\"escaping\\\" here\"}";
  Arena arena;
  for (int i = 0; i < 3; ++i) {
    arena.Reset();
    ASSERT_TRUE(ParseInto(document, &arena).ok());
  }
  const size_t plateau = arena.CapacityBytes();
  for (int i = 0; i < 20; ++i) {
    arena.Reset();
    ASSERT_TRUE(ParseInto(document, &arena).ok());
    EXPECT_EQ(arena.CapacityBytes(), plateau);
  }
}

TEST(ViewTest, EscapeFreeStringsAreViewsIntoTheInput) {
  const std::string document = "{\"key\":\"plain value\"}";
  Arena arena;
  auto parsed = ParseInto(document, &arena);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const View& root = *parsed.value();
  ASSERT_EQ(root.type, Value::Type::kObject);
  ASSERT_EQ(root.member_count, 1u);
  const std::string_view key = root.members[0].key;
  const std::string_view value = root.members[0].value.string_value;
  EXPECT_EQ(key, "key");
  EXPECT_EQ(value, "plain value");
  // Zero-copy: both views point into the original document's buffer.
  const char* begin = document.data();
  const char* end = document.data() + document.size();
  EXPECT_TRUE(key.data() >= begin && key.data() < end);
  EXPECT_TRUE(value.data() >= begin && value.data() < end);
}

TEST(ViewTest, EscapedStringsAreDecodedCopies) {
  const std::string document = "{\"key\":\"line\\nbreak\"}";
  Arena arena;
  auto parsed = ParseInto(document, &arena);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const View& root = *parsed.value();
  const std::string_view value = root.members[0].value.string_value;
  EXPECT_EQ(value, "line\nbreak");
  // The decoded bytes cannot live in the document (it has no raw newline),
  // so the view must point at an arena copy.
  const char* begin = document.data();
  const char* end = document.data() + document.size();
  EXPECT_FALSE(value.data() >= begin && value.data() < end);
}

TEST(ViewTest, AllValueTypesParseIntoTheExpectedShapes) {
  const std::string document =
      "{\"b\":true,\"n\":18446744073709551615,\"s\":\"x\","
      "\"a\":[false,0,\"\",[]],\"o\":{\"inner\":1}}";
  Arena arena;
  auto parsed = ParseInto(document, &arena);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const View& root = *parsed.value();
  ASSERT_EQ(root.type, Value::Type::kObject);
  ASSERT_EQ(root.member_count, 5u);

  EXPECT_EQ(root.members[0].value.type, Value::Type::kBool);
  EXPECT_TRUE(root.members[0].value.bool_value);

  EXPECT_EQ(root.members[1].value.type, Value::Type::kUInt);
  EXPECT_EQ(root.members[1].value.uint_value, UINT64_MAX);

  EXPECT_EQ(root.members[2].value.type, Value::Type::kString);
  EXPECT_EQ(root.members[2].value.string_value, "x");

  const View& array = root.members[3].value;
  ASSERT_EQ(array.type, Value::Type::kArray);
  ASSERT_EQ(array.element_count, 4u);
  EXPECT_EQ(array.elements[0].type, Value::Type::kBool);
  EXPECT_FALSE(array.elements[0].bool_value);
  EXPECT_EQ(array.elements[1].type, Value::Type::kUInt);
  EXPECT_EQ(array.elements[2].type, Value::Type::kString);
  EXPECT_EQ(array.elements[3].type, Value::Type::kArray);
  EXPECT_EQ(array.elements[3].element_count, 0u);

  const View& object = root.members[4].value;
  ASSERT_EQ(object.type, Value::Type::kObject);
  ASSERT_EQ(object.member_count, 1u);
  EXPECT_EQ(object.members[0].key, "inner");
  EXPECT_EQ(object.members[0].value.uint_value, 1u);

  // And the whole tree serializes back to the input bytes.
  std::string serialized;
  AppendView(root, &serialized);
  EXPECT_EQ(serialized, document);
}

TEST(ViewTest, DuplicateKeysAreRejectedWithTheHeapParsersMessage) {
  const std::string document = "{\"a\":1,\"a\":2}";
  Arena arena;
  auto view = ParseInto(document, &arena);
  auto heap = Parse(document);
  ASSERT_FALSE(view.ok());
  ASSERT_FALSE(heap.ok());
  EXPECT_EQ(view.status().ToString(), heap.status().ToString());
}

TEST(ViewTest, ViewModeShapeHelpersMatchHeapBehavior) {
  const std::string document = "{\"kind\":\"twig\",\"count\":7,\"ok\":true}";
  Arena arena;
  auto parsed = ParseInto(document, &arena);
  ASSERT_TRUE(parsed.ok());
  const View& root = *parsed.value();

  uint64_t seen = 0;
  const View* kind = Find(root, "kind", &seen);
  const View* count = Find(root, "count", &seen);
  const View* ok = Find(root, "ok", &seen);
  ASSERT_NE(kind, nullptr);
  ASSERT_NE(count, nullptr);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(Find(root, "missing", &seen), nullptr);

  auto kind_text = ToStringView(kind, "\"kind\"");
  ASSERT_TRUE(kind_text.ok());
  EXPECT_EQ(kind_text.value(), "twig");
  auto count_value = ToUInt(count, "\"count\"");
  ASSERT_TRUE(count_value.ok());
  EXPECT_EQ(count_value.value(), 7u);
  auto ok_value = ToBool(ok, "\"ok\"");
  ASSERT_TRUE(ok_value.ok());
  EXPECT_TRUE(ok_value.value());

  // Every key was looked up, so the strict check passes...
  EXPECT_TRUE(CheckAllKeysKnown(root, seen, "test object").ok());
  // ...and with one lookup missing it names the unknown key.
  uint64_t partial = 0;
  Find(root, "kind", &partial);
  Find(root, "count", &partial);
  const common::Status status =
      CheckAllKeysKnown(root, partial, "test object");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("ok"), std::string::npos);
}

TEST(ViewTest, LookupBeyondTheSeenMaskIsSafeAndStillRejected) {
  // 65 members with the looked-up key at index 64: the seen bitmask only
  // covers 64 members, so marking this hit would shift by >= 64 (UB).
  // Find must skip the bookkeeping and CheckAllKeysKnown must still
  // reject the oversized object.
  std::string document = "{";
  for (int i = 0; i < 64; ++i) {
    document += "\"k" + std::to_string(i) + "\":1,";
  }
  document += "\"op\":\"counters\"}";
  Arena arena;
  auto parsed = ParseInto(document, &arena);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const View& root = *parsed.value();
  ASSERT_EQ(root.member_count, 65u);

  uint64_t seen = 0;
  const View* op = Find(root, "op", &seen);
  ASSERT_NE(op, nullptr);
  auto op_text = ToStringView(op, "\"op\"");
  ASSERT_TRUE(op_text.ok());
  EXPECT_EQ(op_text.value(), "counters");
  EXPECT_EQ(seen, 0u);  // index 64 has no bit to set
  EXPECT_FALSE(CheckAllKeysKnown(root, seen, "test object").ok());
}

TEST(ViewTest, AppendUIntMatchesToString) {
  const uint64_t values[] = {0, 1, 9, 10, 4096, UINT64_MAX};
  for (uint64_t value : values) {
    std::string out;
    AppendUInt(value, &out);
    EXPECT_EQ(out, std::to_string(value));
  }
}

}  // namespace
}  // namespace json
}  // namespace service
}  // namespace qlearn
