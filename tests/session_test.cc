// Tests for the unified interactive learning-session layer: cross-model
// conformance of the incremental LearningSession driver against the legacy
// one-shot Run*Session wrappers (identical question counts under fixed
// seeds), propagation invariants (a forced-label item is never asked),
// batched questioning, the generic Oracle<Item> interface, and the
// string-keyed ScenarioRegistry.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "common/interner.h"
#include "glearn/interactive_path.h"
#include "graph/graph.h"
#include "learn/interactive.h"
#include "relational/generator.h"
#include "relational/relation.h"
#include "rlearn/interactive_chain.h"
#include "rlearn/interactive_join.h"
#include "session/registry.h"
#include "session/session.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace session {
namespace {

using common::Interner;

// ---------------------------------------------------------------------------
// Default centralization: the legacy options structs draw their seeds from
// SessionDefaults (previously the constants 7/11/13 were scattered).

static_assert(learn::InteractiveTwigOptions{}.seed ==
              SessionDefaults::kLegacyTwigSeed);
static_assert(rlearn::InteractiveJoinOptions{}.seed ==
              SessionDefaults::kLegacyJoinSeed);
static_assert(rlearn::InteractiveChainOptions{}.seed ==
              SessionDefaults::kLegacyChainSeed);
static_assert(glearn::InteractivePathOptions{}.seed ==
              SessionDefaults::kLegacyPathSeed);
static_assert(SessionOptions{}.seed == SessionDefaults::kSeed);
static_assert(SessionOptions{}.max_questions ==
              SessionDefaults::kMaxQuestions);

// ---------------------------------------------------------------------------
// Twig scenario fixture.

class TwigSessionFixture : public ::testing::Test {
 protected:
  TwigSessionFixture() {
    auto doc = xml::ParseXml(
        "<site><people>"
        "<person><age/><name/></person>"
        "<person><name/></person>"
        "<person><age/><name/></person>"
        "</people></site>",
        &interner_);
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner_);
    EXPECT_TRUE(goal.ok());
    goal_ = std::move(goal).value();
    for (xml::NodeId v = 0; v < doc_.NumNodes(); ++v) {
      if (twig::Selects(goal_, doc_, v)) {
        seed_ = v;
        break;
      }
    }
    EXPECT_NE(seed_, xml::kInvalidNode);
  }

  Interner interner_;
  xml::XmlTree doc_;
  twig::TwigQuery goal_;
  xml::NodeId seed_ = xml::kInvalidNode;
};

TEST_F(TwigSessionFixture, IncrementalDriverMatchesLegacyWrapper) {
  for (learn::TwigStrategy strategy :
       {learn::TwigStrategy::kGreedyImpact, learn::TwigStrategy::kRandom}) {
    learn::InteractiveTwigOptions options;
    options.strategy = strategy;
    options.seed = 42;

    learn::GoalTwigOracle oracle(goal_);
    auto legacy = learn::RunInteractiveTwigSession(doc_, seed_, &oracle,
                                                   options);
    ASSERT_TRUE(legacy.ok());

    SessionOptions session_options;
    session_options.seed = options.seed;
    session_options.max_questions = options.max_questions;
    LearningSession<learn::TwigEngine> session(
        learn::TwigEngine(&doc_, seed_, options), session_options);
    size_t asked = 0;
    while (auto q = session.NextQuestion()) {
      ++asked;
      session.Answer(twig::Selects(goal_, doc_, *q));
    }
    const twig::TwigQuery query = session.Finish();

    EXPECT_EQ(session.stats().questions, legacy.value().questions);
    EXPECT_EQ(asked, legacy.value().questions);
    EXPECT_EQ(session.stats().forced_positive, legacy.value().forced_positive);
    EXPECT_EQ(session.stats().forced_negative, legacy.value().forced_negative);
    EXPECT_EQ(session.stats().conflicts, legacy.value().conflicts);
    EXPECT_EQ(twig::Evaluate(query, doc_),
              twig::Evaluate(legacy.value().query, doc_));
  }
}

TEST_F(TwigSessionFixture, ForcedNodesAreNeverAsked) {
  learn::InteractiveTwigOptions options;
  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&doc_, seed_, options));
  session.Run([&](xml::NodeId v) { return twig::Selects(goal_, doc_, v); });
  EXPECT_GT(session.stats().forced_positive + session.stats().forced_negative,
            0u);
  for (xml::NodeId v = 0; v < doc_.NumNodes(); ++v) {
    EXPECT_FALSE(session.engine().WasAsked(v) &&
                 session.engine().HasForcedLabel(v))
        << "node " << v << " was forced and still asked";
  }
}

TEST_F(TwigSessionFixture, OracleInterfaceDrivesSession) {
  // The generic session::Oracle<Item> interface, as a server front end
  // would implement it.
  class NodeOracle : public Oracle<xml::NodeId> {
   public:
    NodeOracle(const twig::TwigQuery* goal, const xml::XmlTree* doc)
        : goal_(goal), doc_(doc) {}
    bool IsPositive(const xml::NodeId& node) override {
      return twig::Selects(*goal_, *doc_, node);
    }

   private:
    const twig::TwigQuery* goal_;
    const xml::XmlTree* doc_;
  };

  NodeOracle oracle(&goal_, &doc_);
  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&doc_, seed_, {}));
  const twig::TwigQuery query = session.Run(&oracle);
  EXPECT_EQ(session.stats().conflicts, 0u);
  EXPECT_EQ(twig::Evaluate(query, doc_), twig::Evaluate(goal_, doc_));
}

TEST_F(TwigSessionFixture, HypothesisIsReadableMidSession) {
  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&doc_, seed_, {}));
  // Before any question: the seed's most-specific query selects the seed.
  EXPECT_TRUE(twig::Selects(session.Hypothesis(), doc_, seed_));
  while (auto q = session.NextQuestion()) {
    session.Answer(twig::Selects(goal_, doc_, *q));
    EXPECT_TRUE(twig::Selects(session.Hypothesis(), doc_, seed_));
  }
  session.Finish();
  EXPECT_TRUE(session.Finished());
}

TEST_F(TwigSessionFixture, AbandonedQuestionsCanBeDiscarded) {
  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&doc_, seed_, {}));
  // The user walks away mid-question: the session still finishes cleanly
  // and the abandoned question stays counted.
  auto q = session.NextQuestion();
  ASSERT_TRUE(q.has_value());
  session.DiscardPending();
  EXPECT_TRUE(session.pending().empty());
  // A fresh question can follow a discard; Finish() with one still pending
  // implicitly discards it.
  auto q2 = session.NextQuestion();
  ASSERT_TRUE(q2.has_value());
  session.Finish();
  EXPECT_TRUE(session.Finished());
  EXPECT_EQ(session.stats().questions, 2u);
}

TEST_F(TwigSessionFixture, MaxQuestionsBudgetIsRespected) {
  SessionOptions options;
  options.max_questions = 2;
  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&doc_, seed_, {}), options);
  size_t asked = 0;
  while (auto q = session.NextQuestion()) {
    ++asked;
    session.Answer(twig::Selects(goal_, doc_, *q));
  }
  EXPECT_LE(asked, 2u);
  EXPECT_EQ(session.stats().questions, asked);
}

// ---------------------------------------------------------------------------
// Join scenario fixture.

class JoinSessionFixture : public ::testing::Test {
 protected:
  JoinSessionFixture() {
    relational::JoinInstanceOptions opts;
    opts.seed = 5;
    opts.left_rows = 20;
    opts.right_rows = 20;
    opts.left_arity = 3;
    opts.right_arity = 3;
    opts.domain_size = 4;
    instance_ = relational::GenerateJoinInstance(opts, 2);
    auto u = rlearn::PairUniverse::AllCompatible(instance_.left.schema(),
                                                 instance_.right.schema());
    EXPECT_TRUE(u.ok());
    universe_ = std::move(u).value();
    for (size_t i = 0; i < universe_.size(); ++i) {
      for (const relational::AttributePair& g : instance_.goal) {
        if (universe_.pairs()[i] == g) goal_ |= (1ULL << i);
      }
    }
  }

  bool OracleAnswer(const rlearn::PairExample& pair) const {
    return rlearn::MaskSatisfied(
        goal_, universe_.AgreeMask(instance_.left.row(pair.left_row),
                                   instance_.right.row(pair.right_row)));
  }

  relational::JoinInstance instance_;
  rlearn::PairUniverse universe_;
  rlearn::PairMask goal_ = 0;
};

TEST_F(JoinSessionFixture, IncrementalDriverMatchesLegacyWrapper) {
  for (rlearn::JoinStrategy strategy :
       {rlearn::JoinStrategy::kRandom, rlearn::JoinStrategy::kSplitHalf,
        rlearn::JoinStrategy::kLattice}) {
    rlearn::InteractiveJoinOptions options;
    options.strategy = strategy;
    options.seed = 123;

    rlearn::GoalJoinOracle oracle(&universe_, goal_);
    auto legacy = rlearn::RunInteractiveJoinSession(
        universe_, instance_.left, instance_.right, &oracle, options);
    ASSERT_TRUE(legacy.ok());

    SessionOptions session_options;
    session_options.seed = options.seed;
    LearningSession<rlearn::JoinEngine> session(
        rlearn::JoinEngine(&universe_, &instance_.left, &instance_.right,
                           options),
        session_options);
    const rlearn::PairMask learned = session.Run(
        [&](const rlearn::PairExample& pair) { return OracleAnswer(pair); });

    EXPECT_EQ(session.stats().questions, legacy.value().questions);
    EXPECT_EQ(session.stats().forced_positive, legacy.value().forced_positive);
    EXPECT_EQ(session.stats().forced_negative, legacy.value().forced_negative);
    EXPECT_EQ(session.stats().conflicts, legacy.value().conflicts);
    EXPECT_EQ(learned, legacy.value().learned);
    // Every candidate pair is asked or forced, never both.
    EXPECT_EQ(session.stats().questions + session.stats().forced_positive +
                  session.stats().forced_negative,
              session.engine().candidate_pairs());
  }
}

TEST_F(JoinSessionFixture, ForcedPairsAreNeverAsked) {
  LearningSession<rlearn::JoinEngine> session(
      rlearn::JoinEngine(&universe_, &instance_.left, &instance_.right));
  session.Run(
      [&](const rlearn::PairExample& pair) { return OracleAnswer(pair); });
  for (size_t i = 0; i < instance_.left.size(); ++i) {
    for (size_t j = 0; j < instance_.right.size(); ++j) {
      const rlearn::PairExample pair{i, j};
      EXPECT_FALSE(session.engine().WasAsked(pair) &&
                   session.engine().HasForcedLabel(pair))
          << "pair (" << i << "," << j << ") was forced and still asked";
    }
  }
}

TEST_F(JoinSessionFixture, BatchedQuestionsConverge) {
  LearningSession<rlearn::JoinEngine> session(
      rlearn::JoinEngine(&universe_, &instance_.left, &instance_.right));
  size_t batches = 0;
  for (;;) {
    const auto batch = session.NextQuestions(4);
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 4u);
    EXPECT_EQ(batch.size(), session.pending().size());
    std::vector<bool> labels;
    labels.reserve(batch.size());
    for (const rlearn::PairExample& pair : batch) {
      labels.push_back(OracleAnswer(pair));
    }
    session.AnswerAll(labels);
    ++batches;
  }
  const rlearn::PairMask learned = session.Finish();
  EXPECT_EQ(session.stats().conflicts, 0u);
  EXPECT_GT(batches, 0u);
  // Batched mode still learns an instance-equivalent predicate.
  for (size_t i = 0; i < instance_.left.size(); ++i) {
    for (size_t j = 0; j < instance_.right.size(); ++j) {
      const rlearn::PairMask agree = universe_.AgreeMask(
          instance_.left.row(i), instance_.right.row(j));
      EXPECT_EQ(rlearn::MaskSatisfied(learned, agree),
                rlearn::MaskSatisfied(goal_, agree));
    }
  }
}

// ---------------------------------------------------------------------------
// Chain scenario fixture: a 3-relation FK-style chain r0 -- r1 -- r2 with
// r_i.fk joining r_{i+1}.key (the E12 setup at test scale).

class ChainSessionFixture : public ::testing::Test {
 protected:
  ChainSessionFixture() {
    relational::ChainInstanceOptions options;
    options.seed = 1303;
    instance_ = relational::GenerateChainInstance(options);
    auto chain = rlearn::JoinChain::Create(instance_.pointers);
    EXPECT_TRUE(chain.ok());
    chain_ = std::move(chain).value();
    goal_ = rlearn::NamePairChainGoal(*chain_, "fk", "key");
    for (const rlearn::PairMask mask : goal_) EXPECT_NE(mask, 0u);
  }

  bool OracleAnswer(const rlearn::ChainExample& example) const {
    return rlearn::ChainSatisfied(*chain_, goal_, example);
  }

  relational::ChainInstance instance_;
  std::optional<rlearn::JoinChain> chain_;
  rlearn::ChainMask goal_;
};

TEST_F(ChainSessionFixture, IncrementalDriverMatchesLegacyWrapper) {
  for (rlearn::ChainStrategy strategy :
       {rlearn::ChainStrategy::kRandom, rlearn::ChainStrategy::kSplitHalf}) {
    rlearn::InteractiveChainOptions options;
    options.strategy = strategy;
    options.seed = 77;

    rlearn::GoalChainOracle oracle(goal_);
    auto legacy = rlearn::RunInteractiveChainSession(*chain_, &oracle,
                                                     options);
    ASSERT_TRUE(legacy.ok());

    SessionOptions session_options;
    session_options.seed = options.seed;
    LearningSession<rlearn::ChainEngine> session(
        rlearn::ChainEngine(&*chain_, options), session_options);
    const rlearn::ChainMask learned = session.Run(
        [&](const rlearn::ChainExample& example) {
          return OracleAnswer(example);
        });

    EXPECT_EQ(session.stats().questions, legacy.value().questions);
    EXPECT_EQ(session.stats().forced_positive, legacy.value().forced_positive);
    EXPECT_EQ(session.stats().forced_negative, legacy.value().forced_negative);
    EXPECT_EQ(session.stats().conflicts, legacy.value().conflicts);
    EXPECT_EQ(learned, legacy.value().learned);
    // Every candidate path is asked or forced, never both.
    EXPECT_EQ(session.stats().questions + session.stats().forced_positive +
                  session.stats().forced_negative,
              session.engine().candidate_paths());
  }
}

TEST_F(ChainSessionFixture, ForcedPathsAreNeverAsked) {
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*chain_, {}));
  session.Run([&](const rlearn::ChainExample& example) {
    return OracleAnswer(example);
  });
  EXPECT_GT(session.stats().forced_positive + session.stats().forced_negative,
            0u);
  for (size_t k = 0; k < session.engine().candidate_paths(); ++k) {
    const rlearn::ChainExample& example = session.engine().candidate(k);
    EXPECT_FALSE(session.engine().WasAsked(example) &&
                 session.engine().HasForcedLabel(example))
        << "candidate path " << k << " was forced and still asked";
  }
}

TEST_F(ChainSessionFixture, BatchedQuestionsConverge) {
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*chain_, {}));
  size_t batches = 0;
  for (;;) {
    const auto batch = session.NextQuestions(4);
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 4u);
    std::vector<bool> labels;
    labels.reserve(batch.size());
    for (const rlearn::ChainExample& example : batch) {
      labels.push_back(OracleAnswer(example));
    }
    session.AnswerAll(labels);
    ++batches;
  }
  const rlearn::ChainMask learned = session.Finish();
  EXPECT_EQ(session.stats().conflicts, 0u);
  EXPECT_GT(batches, 0u);
  // Batched mode still learns an instance-equivalent chain predicate.
  for (size_t k = 0; k < session.engine().candidate_paths(); ++k) {
    const rlearn::ChainExample& example = session.engine().candidate(k);
    EXPECT_EQ(rlearn::ChainSatisfied(*chain_, learned, example),
              OracleAnswer(example));
  }
}

TEST_F(ChainSessionFixture, BatchDiscardAllowsFreshQuestions) {
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*chain_, {}));
  const auto batch = session.NextQuestions(3);
  ASSERT_EQ(batch.size(), 3u);
  session.DiscardPending();
  EXPECT_TRUE(session.pending().empty());
  // Discarded questions stay counted and are not re-asked; a fresh
  // question (and a full session) can follow the discard.
  auto question = session.NextQuestion();
  ASSERT_TRUE(question.has_value());
  EXPECT_EQ(session.stats().questions, 4u);
  for (const rlearn::ChainExample& discarded : batch) {
    EXPECT_TRUE(session.engine().WasAsked(discarded));
    EXPECT_NE(discarded.rows, question->rows);
  }
  session.Answer(OracleAnswer(*question));
  while (auto q = session.NextQuestion()) {
    session.Answer(OracleAnswer(*q));
  }
  session.Finish();
  EXPECT_EQ(session.stats().conflicts, 0u);
}

// The shared tiny FK instance (customers -- orders -- products) with known
// goal paths (0,0,0), (1,1,1), (2,2,0); used to provoke a deterministic
// mid-batch conflict: once one FK path is answered positive, the remaining
// FK paths are forced positive, so answering one of them negative
// contradicts the version space.
struct TinyChain {
  TinyChain() : relations(relational::TinyStoreChainRelations()) {
    auto chain_or = rlearn::JoinChain::Create(
        {&relations[0], &relations[1], &relations[2]});
    EXPECT_TRUE(chain_or.ok());
    chain = std::move(chain_or).value();
    goal = rlearn::NaturalChainGoal(*chain);
  }

  bool IsFkPath(const rlearn::ChainExample& example) const {
    return rlearn::ChainSatisfied(*chain, goal, example);
  }

  std::vector<relational::Relation> relations;
  std::optional<rlearn::JoinChain> chain;
  rlearn::ChainMask goal;
};

TEST(ChainSessionConflictTest, MidBatchAbortDropsRemainingLabels) {
  TinyChain tiny;
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*tiny.chain, {}));
  // Grab every informative path in one batch, then answer truthfully
  // except for the last FK path, which we flip to negative. By the time it
  // is observed, an earlier FK positive has forced it positive — the flip
  // contradicts the version space mid-batch and the labels after it must
  // be dropped.
  const auto batch = session.NextQuestions(1000);
  ASSERT_FALSE(batch.empty());
  size_t last_fk = batch.size();
  size_t fk_count = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (tiny.IsFkPath(batch[i])) {
      last_fk = i;
      ++fk_count;
    }
  }
  ASSERT_GE(fk_count, 2u) << "batch must contain at least two FK paths";
  std::vector<bool> labels;
  labels.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    labels.push_back(i == last_fk ? false : tiny.IsFkPath(batch[i]));
  }
  session.AnswerAll(labels);

  EXPECT_EQ(session.stats().conflicts, 1u);
  EXPECT_EQ(session.stats().questions, batch.size());
  // The session is over; the hypothesis is the last consistent θ* and
  // keeps the one-non-empty-mask-per-edge invariant.
  EXPECT_FALSE(session.NextQuestion().has_value());
  const rlearn::ChainMask learned = session.Finish();
  ASSERT_EQ(learned.size(), tiny.chain->num_edges());
  for (const rlearn::PairMask mask : learned) EXPECT_NE(mask, 0u);
}

#ifdef NDEBUG
TEST(ChainSessionClampTest, ShortLabelBatchIsClampedInRelease) {
  // The asserts in AnswerAll/ObserveAll are compiled out in release
  // builds; a mismatched label count must clamp (answer the prefix, drop
  // the rest) instead of indexing out of bounds.
  TinyChain tiny;
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*tiny.chain, {}));
  const auto batch = session.NextQuestions(3);
  ASSERT_EQ(batch.size(), 3u);
  session.AnswerAll({tiny.IsFkPath(batch[0])});
  EXPECT_TRUE(session.pending().empty());
  EXPECT_EQ(session.stats().conflicts, 0u);
  // The clamped session continues to a clean finish.
  while (auto q = session.NextQuestion()) {
    session.Answer(tiny.IsFkPath(*q));
  }
  session.Finish();
  EXPECT_EQ(session.stats().conflicts, 0u);
}
#else
TEST(ChainSessionClampDeathTest, MismatchedLabelCountAssertsInDebug) {
  TinyChain tiny;
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*tiny.chain, {}));
  ASSERT_FALSE(session.NextQuestions(2).empty());
  EXPECT_DEATH(session.AnswerAll({}), "one label per pending item");
}
#endif

// ---------------------------------------------------------------------------
// Path scenario fixture (same network as the glearn tests).

class PathSessionFixture : public ::testing::Test {
 protected:
  PathSessionFixture() {
    local_ = interner_.Intern("local");
    highway_ = interner_.Intern("highway");
    std::vector<graph::VertexId> v;
    for (int i = 0; i < 8; ++i) {
      v.push_back(g_.AddVertex("c" + std::to_string(i)));
    }
    g_.AddEdge(v[0], v[1], highway_, 10);
    g_.AddEdge(v[1], v[2], highway_, 10);
    g_.AddEdge(v[2], v[3], highway_, 10);
    g_.AddEdge(v[0], v[4], local_, 3);
    g_.AddEdge(v[4], v[5], local_, 3);
    g_.AddEdge(v[5], v[3], local_, 3);
    g_.AddEdge(v[1], v[6], local_, 4);
    g_.AddEdge(v[6], v[7], highway_, 9);
  }

  graph::PathQuery Goal(const std::string& regex) {
    auto r = automata::ParseRegex(regex, &interner_);
    EXPECT_TRUE(r.ok());
    return graph::PathQuery{r.value(), std::nullopt};
  }

  Interner interner_;
  common::SymbolId local_ = 0, highway_ = 0;
  graph::Graph g_;
};

TEST_F(PathSessionFixture, IncrementalDriverMatchesLegacyWrapper) {
  const graph::PathQuery goal = Goal("highway+");
  graph::Path seed;
  seed.start = 0;
  seed.edges = {0};

  for (glearn::PathStrategy strategy :
       {glearn::PathStrategy::kRandom, glearn::PathStrategy::kFrontier}) {
    glearn::InteractivePathOptions options;
    options.strategy = strategy;
    options.seed = 17;

    glearn::GoalPathOracle legacy_oracle(goal, g_);
    auto legacy =
        glearn::RunInteractivePathSession(g_, seed, &legacy_oracle, options);
    ASSERT_TRUE(legacy.ok());

    glearn::GoalPathOracle oracle(goal, g_);
    SessionOptions session_options;
    session_options.seed = options.seed;
    LearningSession<glearn::PathEngine> session(
        glearn::PathEngine(&g_, seed, options), session_options);
    const glearn::ConcatPattern learned =
        session.Run([&](const glearn::PathEngine::Question& question) {
          return oracle.IsPositive(*question.path);
        });

    EXPECT_EQ(session.stats().questions, legacy.value().questions);
    EXPECT_EQ(session.stats().forced_positive, legacy.value().forced_positive);
    EXPECT_EQ(session.stats().forced_negative, legacy.value().forced_negative);
    EXPECT_EQ(session.stats().conflicts, legacy.value().conflicts);
    EXPECT_TRUE(learned == legacy.value().hypothesis);
    EXPECT_EQ(session.engine().max_positive_weight(),
              legacy.value().max_positive_weight);
    EXPECT_EQ(session.engine().candidate_paths(),
              legacy.value().candidate_paths);
  }
}

TEST_F(PathSessionFixture, ForcedPathsAreNeverAsked) {
  const graph::PathQuery goal = Goal("highway+");
  glearn::GoalPathOracle oracle(goal, g_);
  graph::Path seed;
  seed.start = 0;
  seed.edges = {0};
  LearningSession<glearn::PathEngine> session(
      glearn::PathEngine(&g_, seed, {}));
  session.Run([&](const glearn::PathEngine::Question& question) {
    return oracle.IsPositive(*question.path);
  });
  for (size_t k = 0; k < session.engine().candidate_paths(); ++k) {
    EXPECT_FALSE(session.engine().WasAsked(k) &&
                 session.engine().HasForcedLabel(k))
        << "candidate path " << k << " was forced and still asked";
  }
}

// ---------------------------------------------------------------------------
// ScenarioRegistry.

TEST(ScenarioRegistryTest, BuiltinScenariosAreRegistered) {
  RegisterBuiltinScenarios();
  RegisterBuiltinScenarios();  // idempotent
  ScenarioRegistry* registry = ScenarioRegistry::Global();
  EXPECT_TRUE(registry->Has("twig"));
  EXPECT_TRUE(registry->Has("twig-ambiguity"));
  EXPECT_TRUE(registry->Has("join"));
  EXPECT_TRUE(registry->Has("chain"));
  EXPECT_TRUE(registry->Has("path"));
  EXPECT_GE(registry->List().size(), 5u);
}

TEST(ScenarioRegistryTest, ChainScenarioLearnsTheForeignKeyGoal) {
  RegisterBuiltinScenarios();
  auto created = ScenarioRegistry::Global()->Create("chain");
  ASSERT_TRUE(created.ok());
  ScenarioSession& session = *created.value();
  while (auto question = session.NextQuestion()) {
    EXPECT_NE(question->find("customers#"), std::string::npos);
    session.Answer(session.OracleLabels()[0]);
  }
  session.Finish();
  EXPECT_EQ(session.stats().conflicts, 0u);
  // The learned chain must pin down both foreign-key hops.
  const std::string hypothesis = session.Hypothesis();
  EXPECT_NE(hypothesis.find("customers.cid=orders.cid"), std::string::npos)
      << hypothesis;
  EXPECT_NE(hypothesis.find("orders.pid=products.pid"), std::string::npos)
      << hypothesis;
}

TEST(ScenarioRegistryTest, UnknownScenarioIsNotFound) {
  // Regression: every registry lookup of an unknown key must come back as
  // a NotFound status naming the key and listing what IS registered —
  // never a crash, and never a bare miss a caller could misread.
  RegisterBuiltinScenarios();
  auto session = ScenarioRegistry::Global()->Create("no-such-scenario");
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), common::StatusCode::kNotFound);
  EXPECT_NE(session.status().message().find("no-such-scenario"),
            std::string::npos);
  EXPECT_NE(session.status().message().find("available:"), std::string::npos)
      << session.status().message();
  EXPECT_NE(session.status().message().find("twig"), std::string::npos);

  auto info = ScenarioRegistry::Global()->Describe("no-such-scenario");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), common::StatusCode::kNotFound);
}

TEST(ScenarioRegistryTest, DescribeReturnsRegisteredInfo) {
  RegisterBuiltinScenarios();
  auto info = ScenarioRegistry::Global()->Describe("chain");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().name, "chain");
  EXPECT_FALSE(info.value().description.empty());
}

TEST(ScenarioRegistryTest, ScenarioSessionsExposeWirePayloadHooks) {
  RegisterBuiltinScenarios();
  for (const ScenarioInfo& info : ScenarioRegistry::Global()->List()) {
    auto created = ScenarioRegistry::Global()->Create(info.name);
    ASSERT_TRUE(created.ok()) << info.name;
    ScenarioSession& session = *created.value();
    EXPECT_FALSE(session.PayloadKind().empty()) << info.name;
    EXPECT_TRUE(session.PendingIds().empty()) << info.name;
    const std::vector<std::string> batch = session.NextQuestions(3);
    ASSERT_FALSE(batch.empty()) << info.name;
    const std::vector<std::vector<uint64_t>> ids = session.PendingIds();
    ASSERT_EQ(ids.size(), batch.size()) << info.name;
    for (const std::vector<uint64_t>& item : ids) {
      EXPECT_FALSE(item.empty()) << info.name;
    }
    session.AnswerAll(session.OracleLabels());
    EXPECT_TRUE(session.PendingIds().empty()) << info.name;
    session.Finish();
  }
}

TEST(ScenarioRegistryTest, DuplicateRegistrationFails) {
  RegisterBuiltinScenarios();
  auto status = ScenarioRegistry::Global()->Register(
      {"twig", "dup"}, [](const SessionOptions&) {
        return common::Result<std::unique_ptr<ScenarioSession>>(
            common::Status::Internal("unused"));
      });
  EXPECT_FALSE(status.ok());
}

TEST(ScenarioRegistryTest, AllBuiltinsRunToCompletionWithBuiltinOracle) {
  RegisterBuiltinScenarios();
  for (const ScenarioInfo& info : ScenarioRegistry::Global()->List()) {
    auto created = ScenarioRegistry::Global()->Create(info.name);
    ASSERT_TRUE(created.ok()) << info.name;
    ScenarioSession& session = *created.value();
    size_t asked = 0;
    while (auto question = session.NextQuestion()) {
      EXPECT_FALSE(question->empty()) << info.name;
      const std::vector<bool> labels = session.OracleLabels();
      ASSERT_EQ(labels.size(), 1u) << info.name;
      session.Answer(labels[0]);
      ++asked;
    }
    session.Finish();
    EXPECT_EQ(session.stats().questions, asked) << info.name;
    EXPECT_EQ(session.stats().conflicts, 0u) << info.name;
    EXPECT_GT(session.stats().forced_positive + session.stats().forced_negative,
              0u)
        << info.name;
    EXPECT_FALSE(session.Hypothesis().empty()) << info.name;
  }
}

TEST(ScenarioRegistryTest, BatchedScenarioSessionConverges) {
  RegisterBuiltinScenarios();
  auto created = ScenarioRegistry::Global()->Create("join");
  ASSERT_TRUE(created.ok());
  ScenarioSession& session = *created.value();
  for (;;) {
    const std::vector<std::string> batch = session.NextQuestions(8);
    if (batch.empty()) break;
    session.AnswerAll(session.OracleLabels());
  }
  session.Finish();
  EXPECT_EQ(session.stats().conflicts, 0u);
  EXPECT_GT(session.stats().questions, 0u);
}

}  // namespace
}  // namespace session
}  // namespace qlearn
