// End-to-end integration: a full round trip across the three data models.
// Relational data is published as XML (scenario 1); a twig is learned on
// the result and used to shred it back (scenario 2); a schema is inferred
// from the published documents and validates them; the XML is shredded to a
// graph whose paths are queried and re-published as XML (scenarios 3+4).
#include <gtest/gtest.h>

#include <set>

#include "exchange/mapping.h"
#include "schema/inference.h"
#include "relational/generator.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace {

TEST(IntegrationTest, FullCrossModelRoundTrip) {
  common::Interner interner;

  // --- Stage 1: relational -> XML (learned join) ---
  relational::Database db = relational::TinyCompanyDatabase();
  const relational::Relation& emp = *db.Find("employees");
  const relational::Relation& dept = *db.Find("departments");
  auto universe =
      rlearn::PairUniverse::AllCompatible(emp.schema(), dept.schema());
  ASSERT_TRUE(universe.ok());
  rlearn::PairMask goal = 0;
  for (size_t i = 0; i < universe.value().size(); ++i) {
    const auto& p = universe.value().pairs()[i];
    if (emp.schema().attributes()[p.left].name == "dept_id" &&
        dept.schema().attributes()[p.right].name == "dept_id") {
      goal |= (1ULL << i);
    }
  }
  rlearn::GoalJoinOracle join_oracle(&universe.value(), goal);
  exchange::PublishOptions publish;
  publish.root_label = "staff";
  publish.record_label = "member";
  auto stage1 = exchange::RunScenario1Publishing(
      universe.value(), emp, dept, &join_oracle, {}, publish, &interner);
  ASSERT_TRUE(stage1.ok()) << stage1.status().ToString();
  const xml::XmlTree& published = stage1.value().published;
  ASSERT_EQ(stage1.value().extracted.size(), emp.size());

  // --- Stage 2: schema inference on the published XML validates it ---
  auto inferred = schema::InferDms({&published});
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(inferred.value().Validates(published));

  // --- Stage 3: XML -> relational (learned twig) recovers the names ---
  auto name_goal = twig::ParseTwig("/staff/member/emp_name", &interner);
  ASSERT_TRUE(name_goal.ok());
  // Annotate every match: the members carry concrete values (names,
  // departments, salaries), so any subset from a single department would
  // legitimately learn a department-specific query (most-specific
  // generalization). Covering all members generalizes every value filter.
  const std::vector<xml::NodeId> annotations =
      twig::Evaluate(name_goal.value(), published);
  ASSERT_GE(annotations.size(), 2u);
  exchange::ShredOptions shred;
  shred.relation_name = "names";
  auto stage3 =
      exchange::RunScenario2Shredding(published, annotations, shred,
                                      interner);
  ASSERT_TRUE(stage3.ok()) << stage3.status().ToString();
  EXPECT_EQ(stage3.value().shredded.size(), emp.size());
  std::set<std::string> names;
  for (const auto& row : stage3.value().shredded.rows()) {
    names.insert(row[0].AsString());
  }
  EXPECT_TRUE(names.count("'ada'"));
  EXPECT_TRUE(names.count("'grace'"));

  // --- Stage 4: XML -> graph; the element hierarchy becomes traversable ---
  auto member_goal = twig::ParseTwig("/staff/member", &interner);
  ASSERT_TRUE(member_goal.ok());
  std::vector<xml::NodeId> member_nodes;
  for (xml::NodeId n : twig::Evaluate(member_goal.value(), published)) {
    member_nodes.push_back(n);
  }
  auto stage4 =
      exchange::RunScenario3Shredding(published, member_nodes, interner);
  ASSERT_TRUE(stage4.ok()) << stage4.status().ToString();
  const graph::Graph& g = stage4.value().shredded.graph;
  EXPECT_EQ(stage4.value().shredded.selected_roots.size(), emp.size());

  // Paths member -emp_name-> value exist for every member vertex.
  auto regex = automata::ParseRegex("emp_name", &interner);
  ASSERT_TRUE(regex.ok());
  graph::PathQueryEvaluator eval({regex.value(), std::nullopt}, g);
  for (graph::VertexId root : stage4.value().shredded.selected_roots) {
    EXPECT_EQ(eval.EvalFrom(root).size(), 1u);
  }

  // --- Stage 5: graph -> XML (publish the emp_name paths) ---
  auto stage5 = exchange::PublishGraphAsXml(
      g, {regex.value(), std::nullopt}, {}, &interner);
  ASSERT_TRUE(stage5.ok());
  auto path_q = twig::ParseTwig("/paths/path", &interner);
  ASSERT_TRUE(path_q.ok());
  EXPECT_EQ(twig::Evaluate(path_q.value(), stage5.value()).size(),
            emp.size());
}

TEST(IntegrationTest, PublishedXmlIsReparseable) {
  common::Interner interner;
  relational::Database db = relational::TinyCompanyDatabase();
  auto doc = exchange::PublishRelationAsXml(*db.Find("projects"), {},
                                            &interner);
  ASSERT_TRUE(doc.ok());
  const std::string xml_text = doc.value().ToXml(interner);
  auto reparsed = xml::ParseXml(xml_text, &interner);
  ASSERT_TRUE(reparsed.ok()) << xml_text;
  EXPECT_EQ(reparsed.value().NumNodes(), doc.value().NumNodes());
}

}  // namespace
}  // namespace qlearn
