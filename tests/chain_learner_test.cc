// Tests for chains of joins: hypothesis semantics, the PTIME consistency
// check (lifting the single-join tractability result), version-space path
// classification, chain materialization, and the interactive protocol with
// uninformative-path propagation.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "relational/relation.h"
#include "rlearn/chain_learner.h"

namespace qlearn {
namespace rlearn {
namespace {

using relational::Attribute;
using relational::Relation;
using relational::RelationSchema;
using relational::Value;
using relational::ValueType;

/// Three tiny relations forming a classic FK chain:
///   customers(cid) -- orders(cid, pid) -- products(pid)
class ChainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    customers_ = Relation(RelationSchema(
        "customers", {{"cid", ValueType::kInt}, {"city", ValueType::kInt}}));
    orders_ = Relation(RelationSchema(
        "orders", {{"cid", ValueType::kInt}, {"pid", ValueType::kInt}}));
    products_ = Relation(RelationSchema(
        "products", {{"pid", ValueType::kInt}, {"cat", ValueType::kInt}}));
    // customers: (1, 10), (2, 20), (3, 10)
    Ins(&customers_, {1, 10});
    Ins(&customers_, {2, 20});
    Ins(&customers_, {3, 10});
    // orders: (1, 7), (2, 8), (3, 7), (9, 9)  — the last is dangling
    Ins(&orders_, {1, 7});
    Ins(&orders_, {2, 8});
    Ins(&orders_, {3, 7});
    Ins(&orders_, {9, 9});
    // products: (7, 100), (8, 200), (9, 100)
    Ins(&products_, {7, 100});
    Ins(&products_, {8, 200});
    Ins(&products_, {9, 100});
  }

  static void Ins(Relation* r, std::vector<int64_t> vals) {
    relational::Tuple t;
    for (int64_t v : vals) t.push_back(Value(v));
    ASSERT_TRUE(r->Insert(std::move(t)).ok());
  }

  JoinChain Chain() {
    auto chain = JoinChain::Create({&customers_, &orders_, &products_});
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    return std::move(chain).value();
  }

  /// Mask selecting exactly the pair (left_attr == right_attr) by name.
  static PairMask MaskFor(const PairUniverse& u, const std::string& left,
                          const std::string& right,
                          const RelationSchema& ls,
                          const RelationSchema& rs) {
    PairMask m = 0;
    for (size_t i = 0; i < u.size(); ++i) {
      const auto& p = u.pairs()[i];
      if (ls.attributes()[p.left].name == left &&
          rs.attributes()[p.right].name == right) {
        m |= (1ULL << i);
      }
    }
    EXPECT_NE(m, 0u) << left << "=" << right;
    return m;
  }

  /// The natural FK goal: customers.cid = orders.cid, orders.pid =
  /// products.pid.
  ChainMask FkGoal(const JoinChain& chain) {
    return {MaskFor(chain.universe(0), "cid", "cid", customers_.schema(),
                    orders_.schema()),
            MaskFor(chain.universe(1), "pid", "pid", orders_.schema(),
                    products_.schema())};
  }

  Relation customers_;
  Relation orders_;
  Relation products_;
};

// --- Construction ---

TEST_F(ChainFixture, CreateRequiresTwoRelations) {
  auto chain = JoinChain::Create({&customers_});
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ChainFixture, CreateBuildsOneUniversePerEdge) {
  const JoinChain chain = Chain();
  EXPECT_EQ(chain.length(), 3u);
  EXPECT_EQ(chain.num_edges(), 2u);
  // All attributes are ints, so every cross pair is compatible: 2x2 each.
  EXPECT_EQ(chain.universe(0).size(), 4u);
  EXPECT_EQ(chain.universe(1).size(), 4u);
}

// --- Semantics ---

TEST_F(ChainFixture, ChainSatisfiedFollowsForeignKeys) {
  const JoinChain chain = Chain();
  const ChainMask goal = FkGoal(chain);
  // (cid=1, order (1,7), product (7,100)) is a real path.
  EXPECT_TRUE(ChainSatisfied(chain, goal, {{0, 0, 0}}));
  // Break the second hop: product (8,200) does not match order (1,7).
  EXPECT_FALSE(ChainSatisfied(chain, goal, {{0, 0, 1}}));
  // Break the first hop: customer 2 did not place order (1,7).
  EXPECT_FALSE(ChainSatisfied(chain, goal, {{1, 0, 0}}));
}

TEST_F(ChainFixture, EvaluateChainMaterializesTheJoin) {
  const JoinChain chain = Chain();
  const std::vector<ChainExample> result = EvaluateChain(chain, FkGoal(chain));
  // FK paths: c1-o(1,7)-p7, c2-o(2,8)-p8, c3-o(3,7)-p7 (order (9,9) dangles).
  ASSERT_EQ(result.size(), 3u);
  std::set<std::vector<size_t>> rows;
  for (const ChainExample& e : result) rows.insert(e.rows);
  EXPECT_TRUE(rows.count({0, 0, 0}));
  EXPECT_TRUE(rows.count({1, 1, 1}));
  EXPECT_TRUE(rows.count({2, 2, 0}));
}

TEST_F(ChainFixture, EvaluateChainHonorsLimit) {
  const JoinChain chain = Chain();
  EXPECT_EQ(EvaluateChain(chain, FkGoal(chain), 2).size(), 2u);
}

// --- Consistency (PTIME, generalizing the single-join result) ---

TEST_F(ChainFixture, ConsistentWithFkExamples) {
  const JoinChain chain = Chain();
  const ChainConsistency c = CheckChainConsistency(
      chain, {{{0, 0, 0}}, {{1, 1, 1}}}, {{{0, 1, 1}}});
  ASSERT_TRUE(c.consistent);
  // θ* on each edge must include the FK pair.
  const ChainMask goal = FkGoal(chain);
  EXPECT_EQ(c.most_specific[0] & goal[0], goal[0]);
  EXPECT_EQ(c.most_specific[1] & goal[1], goal[1]);
}

TEST_F(ChainFixture, InconsistentWhenPositivesShareNothingOnAnEdge) {
  const JoinChain chain = Chain();
  // (0,0,*) agrees on cid=cid at edge 0; (1,0,*) agrees nowhere at edge 0
  // (customer 2 vs order (1,7): 2≠1, 2≠7, 20≠1, 20≠7) — θ*_0 becomes empty.
  const ChainConsistency c =
      CheckChainConsistency(chain, {{{0, 0, 0}}, {{1, 0, 0}}}, {});
  EXPECT_FALSE(c.consistent);
}

TEST_F(ChainFixture, InconsistentWhenNegativeMatchesMostSpecific) {
  const JoinChain chain = Chain();
  // The same path labeled both ways.
  const ChainConsistency c =
      CheckChainConsistency(chain, {{{0, 0, 0}}}, {{{0, 0, 0}}});
  EXPECT_FALSE(c.consistent);
}

TEST_F(ChainFixture, NegativeOnOneEdgeOnlyStillConsistent) {
  const JoinChain chain = Chain();
  // Negative (0,0,1): first hop is the true FK edge, second hop broken.
  // Consistent: hypothesis needs pid=pid on edge 1 which the negative lacks.
  const ChainConsistency c =
      CheckChainConsistency(chain, {{{0, 0, 0}}}, {{{0, 0, 1}}});
  EXPECT_TRUE(c.consistent);
}

// --- Version space classification ---

TEST_F(ChainFixture, ClassifyForcedPositive) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  vs.AddPositive({{0, 0, 0}});
  vs.AddPositive({{1, 1, 1}});
  // After two FK positives θ* = FK pairs only; path (2,2,0) satisfies both
  // hops (c3-o(3,7)-p7), so every hypothesis in the space selects it.
  EXPECT_EQ(vs.Classify({{2, 2, 0}}),
            ChainVersionSpace::PathStatus::kForcedPositive);
}

TEST_F(ChainFixture, ClassifyForcedNegativeOnEmptyEdgeCandidate) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  vs.AddPositive({{0, 0, 0}});
  vs.AddPositive({{1, 1, 1}});
  // Path (1,0,0): customer 2 agrees with order (1,7) on no pair at all, so
  // A_0 = 0 — no hypothesis can select it.
  EXPECT_EQ(vs.Classify({{1, 0, 0}}),
            ChainVersionSpace::PathStatus::kForcedNegative);
}

TEST_F(ChainFixture, ClassifyInformativeBeforeAnyExamples) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  // With no examples every full-agreement subset is alive; a true FK path
  // is forced positive only once θ* shrinks to it... initially the full
  // mask is NOT satisfied by (0,0,0) (cid=pid pairs disagree), and no
  // negative blocks the candidate, so the path is informative.
  EXPECT_EQ(vs.Classify({{0, 0, 0}}),
            ChainVersionSpace::PathStatus::kInformative);
}

TEST_F(ChainFixture, ClassifyForcedNegativeViaRecordedNegative) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  vs.AddPositive({{0, 0, 0}});
  vs.AddNegative({{2, 0, 0}});  // c3 vs order(1,7): agrees cid? 3≠1... none
  // Wait: c3=(3,10) vs o=(1,7): no agreement — the negative is trivially
  // excluded. Use a negative that shares the surviving agreement instead:
  // (0,2,0): c1=(1,10) vs o3=(3,7): 1≠3 & 1≠7 — also empty on edge 0.
  // Both are fine for this test: any path whose maximal candidate is
  // included in a negative's agreement must be forced negative. Path
  // (2,0,0) itself: A_0 = θ*_0 ∩ agree = 0 → forced negative.
  EXPECT_EQ(vs.Classify({{2, 0, 0}}),
            ChainVersionSpace::PathStatus::kForcedNegative);
}

// --- Interactive session ---

TEST_F(ChainFixture, InteractiveSessionLearnsTheFkChain) {
  const JoinChain chain = Chain();
  const ChainMask goal = FkGoal(chain);
  GoalChainOracle oracle(goal);
  for (ChainStrategy strategy :
       {ChainStrategy::kSplitHalf, ChainStrategy::kRandom}) {
    InteractiveChainOptions options;
    options.strategy = strategy;
    auto result = RunInteractiveChainSession(chain, &oracle, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().conflicts, 0u);
    // The learned hypothesis must agree with the goal on every candidate
    // path (answer-equivalence over the instance).
    for (const ChainExample& e :
         EvaluateChain(chain, result.value().learned)) {
      EXPECT_TRUE(ChainSatisfied(chain, goal, e));
    }
    for (const ChainExample& e : EvaluateChain(chain, goal)) {
      EXPECT_TRUE(ChainSatisfied(chain, result.value().learned, e));
    }
    // And it must have asked far fewer questions than there are paths.
    EXPECT_LT(result.value().questions, result.value().candidate_paths);
    EXPECT_EQ(result.value().questions + result.value().forced_positive +
                  result.value().forced_negative,
              result.value().candidate_paths);
  }
}

TEST_F(ChainFixture, InteractiveSessionRejectsNullOracle) {
  const JoinChain chain = Chain();
  EXPECT_FALSE(RunInteractiveChainSession(chain, nullptr).ok());
}

TEST_F(ChainFixture, CandidateCapRespected) {
  const JoinChain chain = Chain();
  GoalChainOracle oracle(FkGoal(chain));
  InteractiveChainOptions options;
  options.max_candidates = 5;
  auto result = RunInteractiveChainSession(chain, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().candidate_paths, 5u);
}

// --- Longer chains ---

TEST_F(ChainFixture, FourRelationChain) {
  // Extend with a categories relation keyed by the product category.
  Relation categories(RelationSchema(
      "categories", {{"cat", ValueType::kInt}, {"tax", ValueType::kInt}}));
  Ins(&categories, {100, 1});
  Ins(&categories, {200, 2});
  auto chain_or = JoinChain::Create(
      {&customers_, &orders_, &products_, &categories});
  ASSERT_TRUE(chain_or.ok());
  const JoinChain& chain = chain_or.value();
  EXPECT_EQ(chain.num_edges(), 3u);

  ChainMask goal = FkGoal(chain);
  goal.push_back(MaskFor(chain.universe(2), "cat", "cat",
                         products_.schema(), categories.schema()));
  const std::vector<ChainExample> paths = EvaluateChain(chain, goal);
  // Every FK path extends uniquely through its category.
  EXPECT_EQ(paths.size(), 3u);

  GoalChainOracle oracle(goal);
  auto result = RunInteractiveChainSession(chain, &oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
  EXPECT_LT(result.value().questions, result.value().candidate_paths / 2);
}

}  // namespace
}  // namespace rlearn
}  // namespace qlearn
