// Tests for chains of joins: hypothesis semantics, the PTIME consistency
// check (lifting the single-join tractability result), version-space path
// classification, chain materialization, and the interactive protocol with
// uninformative-path propagation.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "relational/generator.h"
#include "relational/relation.h"
#include "rlearn/chain_learner.h"
#include "rlearn/interactive_chain.h"
#include "session/session.h"

namespace qlearn {
namespace rlearn {
namespace {

using relational::Attribute;
using relational::Relation;
using relational::RelationSchema;
using relational::Value;
using relational::ValueType;

/// Three tiny relations forming a classic FK chain (the shared
/// relational::TinyStoreChainRelations instance):
///   customers(cid, city): (1,10), (2,20), (3,10)
///   orders(cid, pid):     (1,7), (2,8), (3,7), (9,9) — the last dangles
///   products(pid, cat):   (7,100), (8,200), (9,100)
class ChainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Relation> rels = relational::TinyStoreChainRelations();
    customers_ = std::move(rels[0]);
    orders_ = std::move(rels[1]);
    products_ = std::move(rels[2]);
  }

  static void Ins(Relation* r, std::vector<int64_t> vals) {
    relational::Tuple t;
    for (int64_t v : vals) t.push_back(Value(v));
    ASSERT_TRUE(r->Insert(std::move(t)).ok());
  }

  JoinChain Chain() {
    auto chain = JoinChain::Create({&customers_, &orders_, &products_});
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    return std::move(chain).value();
  }

  /// Mask selecting exactly the pair (left_attr == right_attr) by name.
  static PairMask MaskFor(const PairUniverse& u, const std::string& left,
                          const std::string& right,
                          const RelationSchema& ls,
                          const RelationSchema& rs) {
    PairMask m = 0;
    for (size_t i = 0; i < u.size(); ++i) {
      const auto& p = u.pairs()[i];
      if (ls.attributes()[p.left].name == left &&
          rs.attributes()[p.right].name == right) {
        m |= (1ULL << i);
      }
    }
    EXPECT_NE(m, 0u) << left << "=" << right;
    return m;
  }

  /// The natural FK goal: customers.cid = orders.cid, orders.pid =
  /// products.pid.
  ChainMask FkGoal(const JoinChain& chain) {
    return {MaskFor(chain.universe(0), "cid", "cid", customers_.schema(),
                    orders_.schema()),
            MaskFor(chain.universe(1), "pid", "pid", orders_.schema(),
                    products_.schema())};
  }

  Relation customers_;
  Relation orders_;
  Relation products_;
};

// --- Construction ---

TEST_F(ChainFixture, CreateRequiresTwoRelations) {
  auto chain = JoinChain::Create({&customers_});
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ChainFixture, CreateBuildsOneUniversePerEdge) {
  const JoinChain chain = Chain();
  EXPECT_EQ(chain.length(), 3u);
  EXPECT_EQ(chain.num_edges(), 2u);
  // All attributes are ints, so every cross pair is compatible: 2x2 each.
  EXPECT_EQ(chain.universe(0).size(), 4u);
  EXPECT_EQ(chain.universe(1).size(), 4u);
}

// --- Semantics ---

TEST_F(ChainFixture, ChainSatisfiedFollowsForeignKeys) {
  const JoinChain chain = Chain();
  const ChainMask goal = FkGoal(chain);
  // (cid=1, order (1,7), product (7,100)) is a real path.
  EXPECT_TRUE(ChainSatisfied(chain, goal, {{0, 0, 0}}));
  // Break the second hop: product (8,200) does not match order (1,7).
  EXPECT_FALSE(ChainSatisfied(chain, goal, {{0, 0, 1}}));
  // Break the first hop: customer 2 did not place order (1,7).
  EXPECT_FALSE(ChainSatisfied(chain, goal, {{1, 0, 0}}));
}

TEST_F(ChainFixture, EvaluateChainMaterializesTheJoin) {
  const JoinChain chain = Chain();
  const std::vector<ChainExample> result = EvaluateChain(chain, FkGoal(chain));
  // FK paths: c1-o(1,7)-p7, c2-o(2,8)-p8, c3-o(3,7)-p7 (order (9,9) dangles).
  ASSERT_EQ(result.size(), 3u);
  std::set<std::vector<size_t>> rows;
  for (const ChainExample& e : result) rows.insert(e.rows);
  EXPECT_TRUE(rows.count({0, 0, 0}));
  EXPECT_TRUE(rows.count({1, 1, 1}));
  EXPECT_TRUE(rows.count({2, 2, 0}));
}

TEST_F(ChainFixture, EvaluateChainHonorsLimit) {
  const JoinChain chain = Chain();
  EXPECT_EQ(EvaluateChain(chain, FkGoal(chain), 2).size(), 2u);
}

// --- Consistency (PTIME, generalizing the single-join result) ---

TEST_F(ChainFixture, ConsistentWithFkExamples) {
  const JoinChain chain = Chain();
  const ChainConsistency c = CheckChainConsistency(
      chain, {{{0, 0, 0}}, {{1, 1, 1}}}, {{{0, 1, 1}}});
  ASSERT_TRUE(c.consistent);
  // θ* on each edge must include the FK pair.
  const ChainMask goal = FkGoal(chain);
  EXPECT_EQ(c.most_specific[0] & goal[0], goal[0]);
  EXPECT_EQ(c.most_specific[1] & goal[1], goal[1]);
}

TEST_F(ChainFixture, InconsistentWhenPositivesShareNothingOnAnEdge) {
  const JoinChain chain = Chain();
  // (0,0,*) agrees on cid=cid at edge 0; (1,0,*) agrees nowhere at edge 0
  // (customer 2 vs order (1,7): 2≠1, 2≠7, 20≠1, 20≠7) — θ*_0 becomes empty.
  const ChainConsistency c =
      CheckChainConsistency(chain, {{{0, 0, 0}}, {{1, 0, 0}}}, {});
  EXPECT_FALSE(c.consistent);
}

TEST_F(ChainFixture, InconsistentWhenNegativeMatchesMostSpecific) {
  const JoinChain chain = Chain();
  // The same path labeled both ways.
  const ChainConsistency c =
      CheckChainConsistency(chain, {{{0, 0, 0}}}, {{{0, 0, 0}}});
  EXPECT_FALSE(c.consistent);
}

TEST_F(ChainFixture, NegativeOnOneEdgeOnlyStillConsistent) {
  const JoinChain chain = Chain();
  // Negative (0,0,1): first hop is the true FK edge, second hop broken.
  // Consistent: hypothesis needs pid=pid on edge 1 which the negative lacks.
  const ChainConsistency c =
      CheckChainConsistency(chain, {{{0, 0, 0}}}, {{{0, 0, 1}}});
  EXPECT_TRUE(c.consistent);
}

// --- Version space classification ---

TEST_F(ChainFixture, ClassifyForcedPositive) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  vs.AddPositive({{0, 0, 0}});
  vs.AddPositive({{1, 1, 1}});
  // After two FK positives θ* = FK pairs only; path (2,2,0) satisfies both
  // hops (c3-o(3,7)-p7), so every hypothesis in the space selects it.
  EXPECT_EQ(vs.Classify({{2, 2, 0}}),
            ChainVersionSpace::PathStatus::kForcedPositive);
}

TEST_F(ChainFixture, ClassifyForcedNegativeOnEmptyEdgeCandidate) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  vs.AddPositive({{0, 0, 0}});
  vs.AddPositive({{1, 1, 1}});
  // Path (1,0,0): customer 2 agrees with order (1,7) on no pair at all, so
  // A_0 = 0 — no hypothesis can select it.
  EXPECT_EQ(vs.Classify({{1, 0, 0}}),
            ChainVersionSpace::PathStatus::kForcedNegative);
}

TEST_F(ChainFixture, ClassifyInformativeBeforeAnyExamples) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  // With no examples every full-agreement subset is alive; a true FK path
  // is forced positive only once θ* shrinks to it... initially the full
  // mask is NOT satisfied by (0,0,0) (cid=pid pairs disagree), and no
  // negative blocks the candidate, so the path is informative.
  EXPECT_EQ(vs.Classify({{0, 0, 0}}),
            ChainVersionSpace::PathStatus::kInformative);
}

TEST_F(ChainFixture, ClassifyForcedNegativeViaRecordedNegative) {
  const JoinChain chain = Chain();
  ChainVersionSpace vs(&chain);
  vs.AddPositive({{0, 0, 0}});
  vs.AddNegative({{2, 0, 0}});  // c3 vs order(1,7): agrees cid? 3≠1... none
  // Wait: c3=(3,10) vs o=(1,7): no agreement — the negative is trivially
  // excluded. Use a negative that shares the surviving agreement instead:
  // (0,2,0): c1=(1,10) vs o3=(3,7): 1≠3 & 1≠7 — also empty on edge 0.
  // Both are fine for this test: any path whose maximal candidate is
  // included in a negative's agreement must be forced negative. Path
  // (2,0,0) itself: A_0 = θ*_0 ∩ agree = 0 → forced negative.
  EXPECT_EQ(vs.Classify({{2, 0, 0}}),
            ChainVersionSpace::PathStatus::kForcedNegative);
}

// --- Interactive session ---

TEST_F(ChainFixture, InteractiveSessionLearnsTheFkChain) {
  const JoinChain chain = Chain();
  const ChainMask goal = FkGoal(chain);
  GoalChainOracle oracle(goal);
  for (ChainStrategy strategy :
       {ChainStrategy::kSplitHalf, ChainStrategy::kRandom}) {
    InteractiveChainOptions options;
    options.strategy = strategy;
    auto result = RunInteractiveChainSession(chain, &oracle, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().conflicts, 0u);
    // The learned hypothesis must agree with the goal on every candidate
    // path (answer-equivalence over the instance).
    for (const ChainExample& e :
         EvaluateChain(chain, result.value().learned)) {
      EXPECT_TRUE(ChainSatisfied(chain, goal, e));
    }
    for (const ChainExample& e : EvaluateChain(chain, goal)) {
      EXPECT_TRUE(ChainSatisfied(chain, result.value().learned, e));
    }
    // And it must have asked far fewer questions than there are paths.
    EXPECT_LT(result.value().questions, result.value().candidate_paths);
    EXPECT_EQ(result.value().questions + result.value().forced_positive +
                  result.value().forced_negative,
              result.value().candidate_paths);
  }
}

TEST_F(ChainFixture, InteractiveSessionRejectsNullOracle) {
  const JoinChain chain = Chain();
  EXPECT_FALSE(RunInteractiveChainSession(chain, nullptr).ok());
}

TEST_F(ChainFixture, CandidateCapRespected) {
  const JoinChain chain = Chain();
  GoalChainOracle oracle(FkGoal(chain));
  InteractiveChainOptions options;
  options.max_candidates = 5;
  auto result = RunInteractiveChainSession(chain, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().candidate_paths, 5u);
}

TEST_F(ChainFixture, IntrospectionBeyondCandidateCapReportsNoLabel) {
  const JoinChain chain = Chain();
  InteractiveChainOptions options;
  options.max_candidates = 5;
  ChainEngine engine(&chain, options);
  // The last path of the 3x4x3 product is far past the 5-candidate cap; it
  // was never considered, so it carries no asked/forced state (and must not
  // index past the candidate vectors).
  const ChainExample beyond{{2, 3, 2}};
  EXPECT_FALSE(engine.WasAsked(beyond));
  EXPECT_FALSE(engine.HasForcedLabel(beyond));
  // Malformed paths have no candidate slot either: an out-of-range row
  // must not alias another candidate via mixed-radix wraparound, and a
  // wrong-arity row vector must not be indexed at all.
  const ChainExample out_of_range{{0, 5, 0}};
  EXPECT_FALSE(engine.WasAsked(out_of_range));
  EXPECT_FALSE(engine.HasForcedLabel(out_of_range));
  const ChainExample wrong_arity{{0, 0}};
  EXPECT_FALSE(engine.WasAsked(wrong_arity));
  EXPECT_FALSE(engine.HasForcedLabel(wrong_arity));
}

// --- Bug regressions ---

TEST_F(ChainFixture, EvaluateChainLimitIsOrderPreserving) {
  const JoinChain chain = Chain();
  // The capped result is the row-major prefix of the uncapped one.
  const std::vector<ChainExample> all = EvaluateChain(chain, FkGoal(chain));
  const std::vector<ChainExample> capped =
      EvaluateChain(chain, FkGoal(chain), 2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped[0].rows, all[0].rows);
  EXPECT_EQ(capped[1].rows, all[1].rows);
}

TEST(ChainEvaluate, LimitBoundsWorkOnAllAgreePermissiveChains) {
  // Four relations whose single attribute is constant: every edge mask is
  // satisfied by every path, so a layered (frontier-per-edge) expansion
  // materializes rows^3 partial paths before the final edge can apply the
  // limit. The depth-first expansion must return the capped result without
  // visiting more than a handful of paths.
  constexpr int kRows = 30;
  std::vector<Relation> rels;
  rels.reserve(4);
  for (int i = 0; i < 4; ++i) {
    Relation r(RelationSchema("r" + std::to_string(i),
                              {{"a", ValueType::kInt}}));
    for (int row = 0; row < kRows; ++row) {
      relational::Tuple t;
      t.push_back(Value(static_cast<int64_t>(1)));
      ASSERT_TRUE(r.Insert(std::move(t)).ok());
    }
    rels.push_back(std::move(r));
  }
  auto chain_or =
      JoinChain::Create({&rels[0], &rels[1], &rels[2], &rels[3]});
  ASSERT_TRUE(chain_or.ok());
  const JoinChain& chain = chain_or.value();
  ChainMask all_agree;
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    all_agree.push_back(chain.universe(e).FullMask());
  }
  const std::vector<ChainExample> capped = EvaluateChain(chain, all_agree, 5);
  ASSERT_EQ(capped.size(), 5u);
  // Row-major order: the cap returns the lexicographically first paths.
  EXPECT_EQ(capped[0].rows, (std::vector<size_t>{0, 0, 0, 0}));
  EXPECT_EQ(capped[4].rows, (std::vector<size_t>{0, 0, 0, 4}));
}

TEST_F(ChainFixture, ConflictKeepsLastConsistentHypothesis) {
  // Two positives that share no agreement on edge 0 empty θ*_0 out. The
  // engine must abort and keep reporting the last consistent θ* — the raw
  // post-conflict vector would violate the one-non-empty-mask-per-edge
  // ChainMask invariant.
  const JoinChain chain = Chain();
  ChainEngine engine(&chain, {});
  session::SessionStats stats;
  const ChainExample first{{0, 0, 0}};
  engine.MarkAsked(first);
  engine.Observe(first, true, &stats);
  ASSERT_FALSE(engine.Aborted());
  const ChainMask before_conflict = engine.Current();

  // Customer 2's row agrees with order (1,7) on nothing.
  const ChainExample contradiction{{1, 0, 0}};
  engine.MarkAsked(contradiction);
  engine.Observe(contradiction, true, &stats);
  EXPECT_TRUE(engine.Aborted());
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_EQ(engine.Current(), before_conflict);
  EXPECT_EQ(engine.Finish(&stats), before_conflict);
  ASSERT_EQ(before_conflict.size(), chain.num_edges());
  for (const PairMask mask : before_conflict) EXPECT_NE(mask, 0u);
}

TEST(ChainSplitHalf, ScorerSurvivesAllNegativeSplitScores) {
  // Five relations, universes of size 1/1/1/3. After one positive, θ* is a
  // single pair on the first three edges, so every informative path keeps
  // all of those odd-sized masks and scores -1 per edge: all split scores
  // are below the old `best_primary = -1` sentinel, which silently degraded
  // selection to informative[0]. The fixed scorer must pick the argmax.
  std::vector<Relation> rels;
  rels.reserve(5);
  for (int i = 0; i < 4; ++i) {
    Relation r(RelationSchema("r" + std::to_string(i),
                              {{"a", ValueType::kInt}}));
    relational::Tuple t;
    t.push_back(Value(static_cast<int64_t>(1)));
    ASSERT_TRUE(r.Insert(std::move(t)).ok());
    rels.push_back(std::move(r));
  }
  Relation last(RelationSchema("r4", {{"x", ValueType::kInt},
                                      {"y", ValueType::kInt},
                                      {"z", ValueType::kInt}}));
  for (auto [x, y, z] : {std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
                         {1, 1, 9},
                         {1, 8, 9}}) {
    relational::Tuple t;
    t.push_back(Value(x));
    t.push_back(Value(y));
    t.push_back(Value(z));
    ASSERT_TRUE(last.Insert(std::move(t)).ok());
  }
  rels.push_back(std::move(last));
  auto chain_or = JoinChain::Create(
      {&rels[0], &rels[1], &rels[2], &rels[3], &rels[4]});
  ASSERT_TRUE(chain_or.ok());
  const JoinChain& chain = chain_or.value();
  ASSERT_EQ(chain.num_edges(), 4u);
  ASSERT_EQ(chain.universe(3).size(), 3u);

  ChainEngine engine(&chain, {});  // kSplitHalf
  session::SessionStats stats;
  common::Rng rng(1);
  const ChainExample positive{{0, 0, 0, 0, 0}};  // agrees on all pairs
  engine.MarkAsked(positive);
  engine.Observe(positive, true, &stats);
  engine.OnPositive(positive);
  ASSERT_FALSE(engine.Aborted());
  engine.Propagate(&stats);

  // Remaining informative paths: (...,1) keeps 2 of θ*_3 (split -3) and
  // (...,2) keeps 1 of θ*_3 (split -2, the even split of 3 — the argmax).
  const auto question = engine.SelectQuestion(&rng);
  ASSERT_TRUE(question.has_value());
  EXPECT_EQ(question->rows, (std::vector<size_t>{0, 0, 0, 0, 2}));
}

// --- Longer chains ---

TEST_F(ChainFixture, FourRelationChain) {
  // Extend with a categories relation keyed by the product category.
  Relation categories(RelationSchema(
      "categories", {{"cat", ValueType::kInt}, {"tax", ValueType::kInt}}));
  Ins(&categories, {100, 1});
  Ins(&categories, {200, 2});
  auto chain_or = JoinChain::Create(
      {&customers_, &orders_, &products_, &categories});
  ASSERT_TRUE(chain_or.ok());
  const JoinChain& chain = chain_or.value();
  EXPECT_EQ(chain.num_edges(), 3u);

  ChainMask goal = FkGoal(chain);
  goal.push_back(MaskFor(chain.universe(2), "cat", "cat",
                         products_.schema(), categories.schema()));
  const std::vector<ChainExample> paths = EvaluateChain(chain, goal);
  // Every FK path extends uniquely through its category.
  EXPECT_EQ(paths.size(), 3u);

  GoalChainOracle oracle(goal);
  auto result = RunInteractiveChainSession(chain, &oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
  EXPECT_LT(result.value().questions, result.value().candidate_paths / 2);
}

}  // namespace
}  // namespace rlearn
}  // namespace qlearn
