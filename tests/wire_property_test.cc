// Property sweeps for the service wire format: canonical round-trips
// (Serialize(Parse(s)) == s and Parse(Serialize(p)) == p) over randomly
// generated payloads for all four item types, random transcript events of
// every kind, whole transcripts, and rejection of malformed input.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "service/wire.h"
#include "session/session.h"

namespace qlearn {
namespace service {
namespace wire {
namespace {

/// Random text covering the escaping-sensitive cases: quotes, backslashes,
/// control characters, and plain ASCII.
std::string RandomText(common::Rng* rng) {
  static const char* kAtoms[] = {"a", "Z", "9", " ", "?",  "\"", "\\", "\n",
                                 "\t", "\r", "\b", "\f", "\x01", "/", "{", "}"};
  std::string text;
  const size_t length = rng->Uniform(24);
  for (size_t i = 0; i < length; ++i) {
    text += kAtoms[rng->Index(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  return text;
}

uint64_t RandomId(common::Rng* rng) {
  // Mix small ids (realistic rows/nodes) with full-range 64-bit values.
  return rng->Bernoulli(0.5) ? rng->Uniform(1000) : rng->Next();
}

/// A random payload of one of the four item types, with the item type's id
/// arity: one node for twigs, a row pair for joins, a row path for chains,
/// a candidate index for graph paths.
QuestionPayload RandomQuestion(common::Rng* rng) {
  QuestionPayload payload;
  switch (rng->Index(4)) {
    case 0:
      payload.kind = "twig";
      payload.ids = {RandomId(rng)};
      break;
    case 1:
      payload.kind = "join";
      payload.ids = {RandomId(rng), RandomId(rng)};
      break;
    case 2: {
      payload.kind = "chain";
      const size_t arity = 2 + rng->Uniform(5);
      for (size_t i = 0; i < arity; ++i) payload.ids.push_back(RandomId(rng));
      break;
    }
    default:
      payload.kind = "path";
      payload.ids = {RandomId(rng)};
      break;
  }
  payload.text = RandomText(rng);
  return payload;
}

session::SessionStats RandomStats(common::Rng* rng) {
  session::SessionStats stats;
  stats.questions = rng->Uniform(100000);
  stats.forced_positive = rng->Uniform(100000);
  stats.forced_negative = rng->Uniform(100000);
  stats.conflicts = rng->Uniform(3);
  return stats;
}

TranscriptEvent RandomEvent(common::Rng* rng) {
  TranscriptEvent event;
  switch (rng->Index(4)) {
    case 0:
      event.kind = TranscriptEvent::Kind::kOpen;
      event.scenario = RandomText(rng);
      event.seed = RandomId(rng);
      event.max_questions = RandomId(rng);
      break;
    case 1: {
      event.kind = TranscriptEvent::Kind::kAsk;
      event.requested = rng->Uniform(64) + 1;
      const size_t count = rng->Uniform(5);
      for (size_t i = 0; i < count; ++i) {
        event.questions.push_back(RandomQuestion(rng));
      }
      break;
    }
    case 2: {
      event.kind = TranscriptEvent::Kind::kTell;
      const size_t count = rng->Uniform(6);
      for (size_t i = 0; i < count; ++i) {
        event.labels.push_back(rng->Bernoulli(0.5));
      }
      break;
    }
    default:
      event.kind = TranscriptEvent::Kind::kClose;
      event.hypothesis.kind = RandomText(rng);
      event.hypothesis.text = RandomText(rng);
      event.stats = RandomStats(rng);
      break;
  }
  return event;
}

class WireRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WireRoundTrip, QuestionPayloadsOfAllFourItemTypes) {
  common::Rng rng(GetParam() * 104729 + 11);
  for (int i = 0; i < 50; ++i) {
    const QuestionPayload payload = RandomQuestion(&rng);
    const std::string s = Serialize(payload);
    auto parsed = ParseQuestionPayload(s);
    ASSERT_TRUE(parsed.ok()) << s << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == payload) << s;
    // Canonical form: serializing what was parsed reproduces the bytes.
    EXPECT_EQ(Serialize(parsed.value()), s);
  }
}

TEST_P(WireRoundTrip, HypothesesAndStats) {
  common::Rng rng(GetParam() * 7907 + 5);
  for (int i = 0; i < 50; ++i) {
    HypothesisPayload hypothesis;
    hypothesis.kind = RandomText(&rng);
    hypothesis.text = RandomText(&rng);
    const std::string h = Serialize(hypothesis);
    auto parsed_hypothesis = ParseHypothesisPayload(h);
    ASSERT_TRUE(parsed_hypothesis.ok()) << h;
    EXPECT_TRUE(parsed_hypothesis.value() == hypothesis);
    EXPECT_EQ(Serialize(parsed_hypothesis.value()), h);

    const session::SessionStats stats = RandomStats(&rng);
    const std::string s = Serialize(stats);
    auto parsed_stats = ParseStats(s);
    ASSERT_TRUE(parsed_stats.ok()) << s;
    EXPECT_EQ(Serialize(parsed_stats.value()), s);
  }
}

TEST_P(WireRoundTrip, TranscriptEventsOfEveryKind) {
  common::Rng rng(GetParam() * 6151 + 3);
  for (int i = 0; i < 40; ++i) {
    const TranscriptEvent event = RandomEvent(&rng);
    const std::string s = Serialize(event);
    auto parsed = ParseEvent(s);
    ASSERT_TRUE(parsed.ok()) << s << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == event) << s;
    EXPECT_EQ(Serialize(parsed.value()), s);
  }
}

TEST_P(WireRoundTrip, WholeTranscripts) {
  common::Rng rng(GetParam() * 389 + 1);
  std::vector<TranscriptEvent> events;
  const size_t count = rng.Uniform(12);
  for (size_t i = 0; i < count; ++i) events.push_back(RandomEvent(&rng));
  const std::string s = SerializeTranscript(events);
  auto parsed = ParseTranscript(s);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), events.size());
  EXPECT_EQ(SerializeTranscript(parsed.value()), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range(0, 20));

TEST(WireRejectionTest, MalformedInputIsParseError) {
  const char* kMalformed[] = {
      "",                                          // empty
      "{",                                         // truncated
      "{\"kind\":\"twig\",\"ids\":[1]}",           // missing key
      "{\"kind\":\"twig\",\"ids\":[1],\"text\":\"x\",\"extra\":1}",  // unknown
      "{\"kind\":\"twig\",\"ids\":[-1],\"text\":\"x\"}",   // negative id
      "{\"kind\":\"twig\",\"ids\":[1.5],\"text\":\"x\"}",  // float id
      "{\"kind\":twig,\"ids\":[1],\"text\":\"x\"}",        // bare word
      "{\"kind\":\"twig\",\"ids\":[1],\"text\":\"x\"} junk",  // trailing
      "{\"kind\":\"twig\",\"kind\":\"twig\",\"ids\":[1],\"text\":\"x\"}",
      "{\"kind\":\"twig\",\"ids\":[01],\"text\":\"x\"}",   // leading zero
      "{\"kind\":\"twig\",\"ids\":[99999999999999999999999],\"text\":\"x\"}",
  };
  for (const char* text : kMalformed) {
    auto parsed = ParseQuestionPayload(text);
    EXPECT_FALSE(parsed.ok()) << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), common::StatusCode::kParseError)
          << text;
    }
  }
  EXPECT_FALSE(ParseEvent("{\"event\":\"bogus\"}").ok());
  EXPECT_FALSE(ParseTranscript("{\"event\":\"tell\",\"labels\":[]}\n{").ok());
}

TEST(WireAcceptanceTest, KeyOrderAndWhitespaceAreFlexibleOnParse) {
  // Parsers accept any key order and surrounding whitespace; the canonical
  // writer then normalizes.
  auto parsed = ParseQuestionPayload(
      " { \"text\" : \"is it?\" , \"ids\" : [ 4 ] , \"kind\" : \"twig\" } ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(Serialize(parsed.value()),
            "{\"kind\":\"twig\",\"ids\":[4],\"text\":\"is it?\"}");
}

}  // namespace
}  // namespace wire
}  // namespace service
}  // namespace qlearn
