// Property sweeps for the service wire format: canonical round-trips
// (Serialize(Parse(s)) == s and Parse(Serialize(p)) == p) over randomly
// generated payloads for all four item types, random transcript events of
// every kind, whole transcripts, and rejection of malformed input.
//
// Also pins the arena parser (json::ParseInto) to the heap parser
// (json::Parse): over the same random and mutated inputs both must agree
// on accept/reject, report byte-identical error messages, and — for every
// accepted canonical document — AppendView must reproduce the input bytes.
// The server's hot path runs the arena parser, so any drift between the
// two is a wire-visible bug.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "service/json.h"
#include "service/wire.h"
#include "session/session.h"

namespace qlearn {
namespace service {
namespace wire {
namespace {

/// Random text covering the escaping-sensitive cases: quotes, backslashes,
/// control characters, and plain ASCII.
std::string RandomText(common::Rng* rng) {
  static const char* kAtoms[] = {"a", "Z", "9", " ", "?",  "\"", "\\", "\n",
                                 "\t", "\r", "\b", "\f", "\x01", "/", "{", "}"};
  std::string text;
  const size_t length = rng->Uniform(24);
  for (size_t i = 0; i < length; ++i) {
    text += kAtoms[rng->Index(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  return text;
}

uint64_t RandomId(common::Rng* rng) {
  // Mix small ids (realistic rows/nodes) with full-range 64-bit values.
  return rng->Bernoulli(0.5) ? rng->Uniform(1000) : rng->Next();
}

/// A random payload of one of the four item types, with the item type's id
/// arity: one node for twigs, a row pair for joins, a row path for chains,
/// a candidate index for graph paths.
QuestionPayload RandomQuestion(common::Rng* rng) {
  QuestionPayload payload;
  switch (rng->Index(4)) {
    case 0:
      payload.kind = "twig";
      payload.ids = {RandomId(rng)};
      break;
    case 1:
      payload.kind = "join";
      payload.ids = {RandomId(rng), RandomId(rng)};
      break;
    case 2: {
      payload.kind = "chain";
      const size_t arity = 2 + rng->Uniform(5);
      for (size_t i = 0; i < arity; ++i) payload.ids.push_back(RandomId(rng));
      break;
    }
    default:
      payload.kind = "path";
      payload.ids = {RandomId(rng)};
      break;
  }
  payload.text = RandomText(rng);
  return payload;
}

session::SessionStats RandomStats(common::Rng* rng) {
  session::SessionStats stats;
  stats.questions = rng->Uniform(100000);
  stats.forced_positive = rng->Uniform(100000);
  stats.forced_negative = rng->Uniform(100000);
  stats.conflicts = rng->Uniform(3);
  return stats;
}

TranscriptEvent RandomEvent(common::Rng* rng) {
  TranscriptEvent event;
  switch (rng->Index(4)) {
    case 0:
      event.kind = TranscriptEvent::Kind::kOpen;
      event.scenario = RandomText(rng);
      event.seed = RandomId(rng);
      event.max_questions = RandomId(rng);
      break;
    case 1: {
      event.kind = TranscriptEvent::Kind::kAsk;
      event.requested = rng->Uniform(64) + 1;
      const size_t count = rng->Uniform(5);
      for (size_t i = 0; i < count; ++i) {
        event.questions.push_back(RandomQuestion(rng));
      }
      break;
    }
    case 2: {
      event.kind = TranscriptEvent::Kind::kTell;
      const size_t count = rng->Uniform(6);
      for (size_t i = 0; i < count; ++i) {
        event.labels.push_back(rng->Bernoulli(0.5));
      }
      break;
    }
    default:
      event.kind = TranscriptEvent::Kind::kClose;
      event.hypothesis.kind = RandomText(rng);
      event.hypothesis.text = RandomText(rng);
      event.stats = RandomStats(rng);
      break;
  }
  return event;
}

class WireRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WireRoundTrip, QuestionPayloadsOfAllFourItemTypes) {
  common::Rng rng(GetParam() * 104729 + 11);
  for (int i = 0; i < 50; ++i) {
    const QuestionPayload payload = RandomQuestion(&rng);
    const std::string s = Serialize(payload);
    auto parsed = ParseQuestionPayload(s);
    ASSERT_TRUE(parsed.ok()) << s << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == payload) << s;
    // Canonical form: serializing what was parsed reproduces the bytes.
    EXPECT_EQ(Serialize(parsed.value()), s);
  }
}

TEST_P(WireRoundTrip, HypothesesAndStats) {
  common::Rng rng(GetParam() * 7907 + 5);
  for (int i = 0; i < 50; ++i) {
    HypothesisPayload hypothesis;
    hypothesis.kind = RandomText(&rng);
    hypothesis.text = RandomText(&rng);
    const std::string h = Serialize(hypothesis);
    auto parsed_hypothesis = ParseHypothesisPayload(h);
    ASSERT_TRUE(parsed_hypothesis.ok()) << h;
    EXPECT_TRUE(parsed_hypothesis.value() == hypothesis);
    EXPECT_EQ(Serialize(parsed_hypothesis.value()), h);

    const session::SessionStats stats = RandomStats(&rng);
    const std::string s = Serialize(stats);
    auto parsed_stats = ParseStats(s);
    ASSERT_TRUE(parsed_stats.ok()) << s;
    EXPECT_EQ(Serialize(parsed_stats.value()), s);
  }
}

TEST_P(WireRoundTrip, TranscriptEventsOfEveryKind) {
  common::Rng rng(GetParam() * 6151 + 3);
  for (int i = 0; i < 40; ++i) {
    const TranscriptEvent event = RandomEvent(&rng);
    const std::string s = Serialize(event);
    auto parsed = ParseEvent(s);
    ASSERT_TRUE(parsed.ok()) << s << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == event) << s;
    EXPECT_EQ(Serialize(parsed.value()), s);
  }
}

TEST_P(WireRoundTrip, WholeTranscripts) {
  common::Rng rng(GetParam() * 389 + 1);
  std::vector<TranscriptEvent> events;
  const size_t count = rng.Uniform(12);
  for (size_t i = 0; i < count; ++i) events.push_back(RandomEvent(&rng));
  const std::string s = SerializeTranscript(events);
  auto parsed = ParseTranscript(s);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), events.size());
  EXPECT_EQ(SerializeTranscript(parsed.value()), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range(0, 20));

/// Heap and arena parses of `text` must agree: same verdict, identical
/// error message on rejection, and on acceptance the arena view serializes
/// back (canonical inputs reproduce their bytes; the round trip is checked
/// by the callers that know the input is canonical).
void ExpectParserParity(const std::string& text) {
  auto heap = json::Parse(text);
  json::Arena arena;
  auto view = json::ParseInto(text, &arena);
  ASSERT_EQ(heap.ok(), view.ok())
      << "parsers disagree on: " << text << "\nheap: "
      << (heap.ok() ? "ok" : heap.status().ToString()) << "\narena: "
      << (view.ok() ? "ok" : view.status().ToString());
  if (!heap.ok()) {
    EXPECT_EQ(heap.status().ToString(), view.status().ToString()) << text;
    return;
  }
  // Accepted: the view must serialize, and re-parsing its serialization
  // must be a fixed point (AppendView of a canonical document is itself).
  std::string serialized;
  json::AppendView(*view.value(), &serialized);
  json::Arena second_arena;
  auto reparsed = json::ParseInto(serialized, &second_arena);
  ASSERT_TRUE(reparsed.ok()) << serialized;
  std::string again;
  json::AppendView(*reparsed.value(), &again);
  EXPECT_EQ(again, serialized) << text;
}

class ArenaParity : public ::testing::TestWithParam<int> {};

TEST_P(ArenaParity, CanonicalPayloadsOfAllFourItemTypes) {
  common::Rng rng(GetParam() * 15013 + 7);
  json::Arena arena;
  for (int i = 0; i < 50; ++i) {
    const std::string s = Serialize(RandomQuestion(&rng));
    arena.Reset();
    auto view = json::ParseInto(s, &arena);
    ASSERT_TRUE(view.ok()) << s << ": " << view.status().ToString();
    std::string serialized;
    json::AppendView(*view.value(), &serialized);
    EXPECT_EQ(serialized, s);  // byte-identical to the heap writer
  }
}

TEST_P(ArenaParity, CanonicalEventsAndStats) {
  common::Rng rng(GetParam() * 27791 + 13);
  json::Arena arena;
  for (int i = 0; i < 40; ++i) {
    const std::string s = Serialize(RandomEvent(&rng));
    arena.Reset();
    auto view = json::ParseInto(s, &arena);
    ASSERT_TRUE(view.ok()) << s << ": " << view.status().ToString();
    std::string serialized;
    json::AppendView(*view.value(), &serialized);
    EXPECT_EQ(serialized, s);
  }
}

TEST_P(ArenaParity, MutatedInputsRejectIdentically) {
  common::Rng rng(GetParam() * 9973 + 29);
  // Start from valid documents and corrupt them: truncation, byte flips,
  // injected junk. Whatever the verdict, both parsers must say the same
  // thing, byte for byte (the server's error frames come from these
  // messages).
  for (int i = 0; i < 60; ++i) {
    std::string s = Serialize(RandomEvent(&rng));
    switch (rng.Index(4)) {
      case 0:  // truncate
        s.resize(rng.Uniform(s.size() + 1));
        break;
      case 1:  // flip one byte to a printable character
        if (!s.empty()) {
          s[rng.Index(s.size())] =
              static_cast<char>(' ' + rng.Uniform(95));
        }
        break;
      case 2:  // append trailing junk
        s += static_cast<char>(' ' + rng.Uniform(95));
        break;
      default:  // insert a byte mid-document
        s.insert(rng.Uniform(s.size() + 1), 1,
                 static_cast<char>(' ' + rng.Uniform(95)));
        break;
    }
    ExpectParserParity(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaParity, ::testing::Range(0, 20));

TEST(ArenaParityTest, MalformedCorpusRejectsIdentically) {
  const char* kMalformed[] = {
      "",
      "{",
      "}",
      "nul",
      "truely",
      "\"unterminated",
      "\"bad \\q escape\"",
      "{\"a\":1,}",
      "{\"a\" 1}",
      "[1,]",
      "[1 2]",
      "{\"a\":01}",
      "{\"a\":-1}",
      "{\"a\":1.5}",
      "{\"a\":99999999999999999999999}",
      "{\"a\":1} trailing",
      "  {\"a\":1}",
      "{\"a\":\"\x01\"}",  // raw control character in a string
  };
  for (const char* text : kMalformed) {
    ExpectParserParity(text);
  }
}

TEST(ArenaParityTest, EscapedStringsDecodeIdentically) {
  // The arena parser has a zero-copy fast path for escape-free strings and
  // a decode path for escaped ones; both must match the heap parser's
  // decoding exactly, pinned here through the canonical writer.
  const char* kDocuments[] = {
      "{\"k\":\"plain\"}",
      "{\"k\":\"quote \\\" backslash \\\\\"}",
      "{\"k\":\"\\b\\f\\n\\r\\t\"}",
      "{\"k\":\"\\u0001\\u001f\"}",
      "{\"k\":\"\"}",
      "{\"\\n\":\"escaped key\"}",
  };
  json::Arena arena;
  for (const char* text : kDocuments) {
    auto heap = json::Parse(text);
    ASSERT_TRUE(heap.ok()) << text;
    arena.Reset();
    auto view = json::ParseInto(text, &arena);
    ASSERT_TRUE(view.ok()) << text << ": " << view.status().ToString();
    std::string serialized;
    json::AppendView(*view.value(), &serialized);
    EXPECT_EQ(serialized, text);
  }
}

TEST(WireRejectionTest, MalformedInputIsParseError) {
  const char* kMalformed[] = {
      "",                                          // empty
      "{",                                         // truncated
      "{\"kind\":\"twig\",\"ids\":[1]}",           // missing key
      "{\"kind\":\"twig\",\"ids\":[1],\"text\":\"x\",\"extra\":1}",  // unknown
      "{\"kind\":\"twig\",\"ids\":[-1],\"text\":\"x\"}",   // negative id
      "{\"kind\":\"twig\",\"ids\":[1.5],\"text\":\"x\"}",  // float id
      "{\"kind\":twig,\"ids\":[1],\"text\":\"x\"}",        // bare word
      "{\"kind\":\"twig\",\"ids\":[1],\"text\":\"x\"} junk",  // trailing
      "{\"kind\":\"twig\",\"kind\":\"twig\",\"ids\":[1],\"text\":\"x\"}",
      "{\"kind\":\"twig\",\"ids\":[01],\"text\":\"x\"}",   // leading zero
      "{\"kind\":\"twig\",\"ids\":[99999999999999999999999],\"text\":\"x\"}",
  };
  for (const char* text : kMalformed) {
    auto parsed = ParseQuestionPayload(text);
    EXPECT_FALSE(parsed.ok()) << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), common::StatusCode::kParseError)
          << text;
    }
  }
  EXPECT_FALSE(ParseEvent("{\"event\":\"bogus\"}").ok());
  EXPECT_FALSE(ParseTranscript("{\"event\":\"tell\",\"labels\":[]}\n{").ok());
}

TEST(WireAcceptanceTest, KeyOrderAndWhitespaceAreFlexibleOnParse) {
  // Parsers accept any key order and surrounding whitespace; the canonical
  // writer then normalizes.
  auto parsed = ParseQuestionPayload(
      " { \"text\" : \"is it?\" , \"ids\" : [ 4 ] , \"kind\" : \"twig\" } ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(Serialize(parsed.value()),
            "{\"kind\":\"twig\",\"ids\":[4],\"text\":\"is it?\"}");
}

}  // namespace
}  // namespace wire
}  // namespace service
}  // namespace qlearn
