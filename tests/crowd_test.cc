// Tests for the crowdsourcing module: the HIT cost ledger, majority-vote
// noise reduction, feature selection, and the crowd join session's
// cost/accuracy behaviour under reliable and unreliable workers.
#include <gtest/gtest.h>

#include <vector>

#include "crowd/crowd_join.h"
#include "relational/relation.h"

namespace qlearn {
namespace crowd {
namespace {

using relational::Relation;
using relational::RelationSchema;
using relational::Value;
using relational::ValueType;

class CrowdFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    left_ = Relation(RelationSchema(
        "photos_a",
        {{"subject", ValueType::kInt}, {"place", ValueType::kInt}}));
    right_ = Relation(RelationSchema(
        "photos_b",
        {{"subject", ValueType::kInt}, {"place", ValueType::kInt}}));
    // subjects 1..4; places mostly shared (a weak filter), subjects strong.
    Ins(&left_, {1, 100});
    Ins(&left_, {2, 100});
    Ins(&left_, {3, 100});
    Ins(&left_, {4, 200});
    Ins(&right_, {1, 100});
    Ins(&right_, {2, 100});
    Ins(&right_, {3, 200});
    Ins(&right_, {5, 200});
    auto u = rlearn::PairUniverse::AllCompatible(left_.schema(),
                                                 right_.schema());
    ASSERT_TRUE(u.ok());
    universe_ = std::move(u).value();
    // Goal: same subject.
    goal_ = 0;
    for (size_t i = 0; i < universe_.size(); ++i) {
      const auto& p = universe_.pairs()[i];
      if (left_.schema().attributes()[p.left].name == "subject" &&
          right_.schema().attributes()[p.right].name == "subject") {
        goal_ |= (1ULL << i);
      }
    }
    ASSERT_NE(goal_, 0u);
  }

  static void Ins(Relation* r, std::vector<int64_t> vals) {
    relational::Tuple t;
    for (int64_t v : vals) t.push_back(Value(v));
    ASSERT_TRUE(r->Insert(std::move(t)).ok());
  }

  Relation left_;
  Relation right_;
  rlearn::PairUniverse universe_;
  rlearn::PairMask goal_ = 0;
};

// --- Cost model ---

TEST(CostLedgerTest, TotalsSumBothHitKinds) {
  CostLedger ledger;
  ledger.pair_hits = 10;
  ledger.feature_hits = 4;
  HitCost cost;
  cost.pair_comparison = 0.02;
  cost.feature_extraction = 0.005;
  EXPECT_DOUBLE_EQ(ledger.Total(cost), 10 * 0.02 + 4 * 0.005);
}

TEST(CostLedgerTest, EmptyLedgerCostsNothing) {
  EXPECT_DOUBLE_EQ(CostLedger{}.Total(HitCost{}), 0.0);
}

// --- Noisy oracle ---

TEST_F(CrowdFixture, NoiselessOracleMatchesTruth) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  NoisyMajorityOracle crowd(&truth, 0.0, 1, 42);
  CostLedger ledger;
  EXPECT_TRUE(crowd.Ask(left_.row(0), right_.row(0), &ledger));   // 1 vs 1
  EXPECT_FALSE(crowd.Ask(left_.row(0), right_.row(1), &ledger));  // 1 vs 2
  EXPECT_EQ(ledger.pair_hits, 2u);
}

TEST_F(CrowdFixture, ReplicationChargesPerAnswer) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  NoisyMajorityOracle crowd(&truth, 0.0, 5, 42);
  CostLedger ledger;
  crowd.Ask(left_.row(0), right_.row(0), &ledger);
  EXPECT_EQ(ledger.pair_hits, 5u);
}

TEST_F(CrowdFixture, MajorityVoteSuppressesNoise) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  // With 20% worker error, 9-way majority is wrong with prob < 1%; over 50
  // trials on a positive pair we expect overwhelmingly correct answers.
  NoisyMajorityOracle crowd(&truth, 0.2, 9, 42);
  CostLedger ledger;
  int correct = 0;
  for (int i = 0; i < 50; ++i) {
    if (crowd.Ask(left_.row(0), right_.row(0), &ledger)) ++correct;
  }
  EXPECT_GE(correct, 45);
  // And a single noisy worker must be measurably worse.
  NoisyMajorityOracle lone(&truth, 0.2, 1, 43);
  int lone_correct = 0;
  for (int i = 0; i < 50; ++i) {
    if (lone.Ask(left_.row(0), right_.row(0), &ledger)) ++lone_correct;
  }
  EXPECT_GT(correct, lone_correct);
}

// --- Feature selection ---

TEST_F(CrowdFixture, MostSelectiveFeaturePrefersSubject) {
  auto feature = MostSelectiveFeature(universe_, left_, right_);
  ASSERT_TRUE(feature.has_value());
  const auto& p = universe_.pairs()[*feature];
  // subject=subject agrees on 3 of 16 pairs; place=place agrees on 8;
  // the cross pairs (subject=place etc.) agree on none... except none do.
  // The minimum is a cross pair with zero agreements or subject=subject;
  // verify the chosen feature agrees on at most 3 pairs.
  size_t agree = 0;
  for (size_t l = 0; l < left_.size(); ++l) {
    for (size_t r = 0; r < right_.size(); ++r) {
      if (universe_.AgreeMask(left_.row(l), right_.row(r)) &
          (1ULL << *feature)) {
        ++agree;
      }
    }
  }
  EXPECT_LE(agree, 3u);
  (void)p;
}

TEST(MostSelectiveFeatureTest, EmptyUniverseHasNoFeature) {
  Relation a(RelationSchema("a", {{"x", ValueType::kInt}}));
  Relation b(RelationSchema("b", {{"y", ValueType::kString}}));
  auto u = rlearn::PairUniverse::AllCompatible(a.schema(), b.schema());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().size(), 0u);
  EXPECT_FALSE(MostSelectiveFeature(u.value(), a, b).has_value());
}

// --- Crowd join sessions ---

TEST_F(CrowdFixture, ReliableCrowdLearnsTheGoalExactly) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.0;
  options.replication = 1;
  auto result = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                    options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().accuracy_errors, 0u);
  EXPECT_EQ(result.value().dropped_answers, 0u);
  // Interaction economy: far fewer questions than the 16 candidate pairs.
  EXPECT_LT(result.value().questions, 16u);
  EXPECT_GT(result.value().total_cost, 0.0);
}

TEST_F(CrowdFixture, PilotCalibratedFilterIsRecallSafe) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.0;
  options.replication = 1;
  options.feature_filtering = true;
  options.pilot_budget = 16;  // enough to hit a positive on 4x4
  auto result = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                    options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().feature_pair.has_value());
  // The calibrated feature must be a goal component here (subject=subject
  // is the most selective pair agreeing on every true match), so filtering
  // never discards a real match and the outcome stays exact.
  EXPECT_GT(result.value().filtered_out, 0u);
  EXPECT_EQ(result.value().accuracy_errors, 0u);
}

TEST_F(CrowdFixture, BruteBaselineAsksEverySurvivingPair) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.0;
  options.replication = 1;
  auto brute = RunCrowdBruteJoinSession(universe_, left_, right_, &truth,
                                        options);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(brute.value().asked, left_.size() * right_.size());
  EXPECT_EQ(brute.value().accuracy_errors, 0u);
  EXPECT_EQ(brute.value().filtered_out, 0u);

  options.feature_filtering = true;
  options.pilot_budget = 16;
  auto filtered = RunCrowdBruteJoinSession(universe_, left_, right_, &truth,
                                           options);
  ASSERT_TRUE(filtered.ok());
  EXPECT_GT(filtered.value().filtered_out, 0u);
  EXPECT_LT(filtered.value().asked, brute.value().asked);
  EXPECT_EQ(filtered.value().accuracy_errors, 0u);
}

TEST_F(CrowdFixture, LearningBeatsBruteOnPairHits) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.0;
  options.replication = 1;
  auto brute = RunCrowdBruteJoinSession(universe_, left_, right_, &truth,
                                        options);
  auto learn = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                   options);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(learn.ok());
  // The paper's pitch: version-space inference labels almost everything for
  // free, so it spends strictly less than asking all pairs.
  EXPECT_LT(learn.value().ledger.pair_hits, brute.value().ledger.pair_hits);
  EXPECT_EQ(learn.value().accuracy_errors, 0u);
}

TEST_F(CrowdFixture, NoisyCrowdStillConvergesWithReplication) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.1;
  options.replication = 7;
  options.seed = 1;
  auto result = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                    options);
  ASSERT_TRUE(result.ok());
  // 7-way majority at 10% error: per-question error ~0.2%; a session of
  // ~a dozen questions is overwhelmingly clean.
  EXPECT_LE(result.value().accuracy_errors, 2u);
}

TEST_F(CrowdFixture, RejectsHopelessErrorRate) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.5;
  EXPECT_FALSE(
      RunCrowdJoinSession(universe_, left_, right_, &truth, options).ok());
}

TEST_F(CrowdFixture, RejectsNullOracle) {
  EXPECT_FALSE(RunCrowdJoinSession(universe_, left_, right_, nullptr, {}).ok());
}

TEST_F(CrowdFixture, LedgerChargesFeatureHitsPerRecord) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.0;
  options.replication = 1;
  options.feature_filtering = true;
  options.pilot_budget = 16;
  auto result = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                    options);
  ASSERT_TRUE(result.ok());
  if (result.value().feature_pair.has_value()) {
    EXPECT_EQ(result.value().ledger.feature_hits,
              left_.size() + right_.size());
    // The pilot HITs are accounted as pair comparisons.
    EXPECT_GE(result.value().ledger.pair_hits, options.pilot_budget);
  }
}

TEST_F(CrowdFixture, PilotWithoutPositivesSkipsTheFilter) {
  // A goal no pair satisfies: require agreement on every universe pair.
  rlearn::GoalJoinOracle truth(&universe_, universe_.FullMask());
  CrowdJoinOptions options;
  options.worker_error_rate = 0.0;
  options.replication = 1;
  options.feature_filtering = true;
  auto result = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                    options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().feature_pair.has_value());
  EXPECT_EQ(result.value().filtered_out, 0u);
  EXPECT_EQ(result.value().ledger.feature_hits, 0u);
}

// --- Replication sweep (parameterized): more replicas, fewer errors ---

class ReplicationSweep : public CrowdFixture,
                         public ::testing::WithParamInterface<int> {};

TEST_P(ReplicationSweep, AccuracyErrorsStayBounded) {
  rlearn::GoalJoinOracle truth(&universe_, goal_);
  CrowdJoinOptions options;
  options.worker_error_rate = 0.15;
  options.replication = GetParam();
  options.seed = 7;
  auto result = RunCrowdJoinSession(universe_, left_, right_, &truth,
                                    options);
  ASSERT_TRUE(result.ok());
  // Even when noise corrupts an answer, escalation/dropping keeps the
  // session sane; with 9+ replicas the outcome is almost always exact.
  if (GetParam() >= 9) {
    EXPECT_LE(result.value().accuracy_errors, 1u);
  }
  EXPECT_EQ(result.value().ledger.pair_hits >=
                result.value().questions * static_cast<size_t>(GetParam()),
            true);
}

INSTANTIATE_TEST_SUITE_P(Replicas, ReplicationSweep,
                         ::testing::Values(1, 3, 9, 15));

}  // namespace
}  // namespace crowd
}  // namespace qlearn
