// Delta-propagation layer tests (session/propagation.h and the four
// engines' per-answer Propagate flushes):
//   * PropagationIndex unit tests — delta queue, witness buckets
//     (build, consume-on-conviction, settled-candidate eviction);
//   * witness-index lifecycle on the engines — lazy build on the first
//     negative delta, invalidation on hypothesis change, eager re-bucket
//     for the mask-keyed engines;
//   * the PathEngine conflict-check regression (a negative answer tests
//     only the new word; only a hypothesis change sweeps all negatives),
//     pinning conflict counts;
//   * parity property tests: random documents / relations / graphs driven
//     by goal and adversarial oracles, asserting delta propagation
//     produces identical question sequences, frontier states, stats, and
//     hypotheses to the reference full-rescan implementation, across all
//     four engines and both single-question and batched flows.
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "glearn/interactive_path.h"
#include "graph/geo_generator.h"
#include "graph/graph.h"
#include "graph/path_query.h"
#include "learn/interactive.h"
#include "relational/generator.h"
#include "rlearn/interactive_chain.h"
#include "rlearn/interactive_join.h"
#include "session/candidate_store.h"
#include "session/propagation.h"
#include "session/session.h"
#include "twig/twig_parser.h"
#include "xml/random_tree.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace {

using session::PropagationIndex;

// ---------------------------------------------------------------------------
// PropagationIndex unit tests.

TEST(PropagationIndexTest, DeltaQueueLifecycle) {
  PropagationIndex<uint64_t, uint64_t> index;
  // Fresh index: the baseline full pass is owed.
  EXPECT_TRUE(index.NeedsFullPass());
  index.MarkFullPassDone();
  EXPECT_FALSE(index.NeedsFullPass());

  index.RecordNegative(42);
  index.RecordNegative(7);
  EXPECT_TRUE(index.HasPendingDeltas());
  EXPECT_FALSE(index.NeedsFullPass());  // negatives alone stay incremental
  const std::vector<uint64_t> deltas = index.TakeDeltas();
  EXPECT_EQ(deltas, (std::vector<uint64_t>{42, 7}));
  EXPECT_FALSE(index.HasPendingDeltas());

  index.RecordHypothesisChange();
  EXPECT_TRUE(index.NeedsFullPass());
  index.RecordNegative(3);
  index.MarkFullPassDone();  // full pass subsumes the queued negative
  EXPECT_FALSE(index.NeedsFullPass());
  EXPECT_FALSE(index.HasPendingDeltas());
}

TEST(PropagationIndexTest, WitnessBucketsBuildAndConsume) {
  PropagationIndex<uint64_t, uint64_t> index;
  EXPECT_FALSE(index.WitnessesValid());
  index.BeginWitnessRebuild();
  EXPECT_TRUE(index.WitnessesValid());
  index.AddWitness(5, 100);
  index.AddWitness(5, 101);
  index.AddWitness(9, 100);
  EXPECT_EQ(index.NumBuckets(), 2u);

  std::vector<size_t> seen;
  index.ConsumeBucket(5, [&](std::vector<size_t>& members) {
    seen = members;
  });
  EXPECT_EQ(seen, (std::vector<size_t>{100, 101}));
  // Consuming erases: a convicted witness key never fires again.
  EXPECT_EQ(index.NumBuckets(), 1u);
  EXPECT_EQ(index.BucketForTest(5), nullptr);
  seen.clear();
  index.ConsumeBucket(5, [&](std::vector<size_t>& members) {
    seen = members;
  });
  EXPECT_TRUE(seen.empty());

  index.InvalidateWitnesses();
  EXPECT_FALSE(index.WitnessesValid());
  EXPECT_EQ(index.NumBuckets(), 0u);
}

TEST(PropagationIndexTest, ForEachBucketErasesConvictedAndEvictsSettled) {
  PropagationIndex<uint64_t, uint64_t> index;
  index.BeginWitnessRebuild();
  index.AddWitness(1, 10);
  index.AddWitness(2, 20);
  index.AddWitness(2, 21);
  index.AddWitness(3, 30);

  // Convict key 2; evict member 30 (pretend it settled) from key 3.
  index.ForEachBucket([&](uint64_t key, std::vector<size_t>& members) {
    if (key == 2) return true;  // erase whole bucket
    if (key == 3) {
      PropagationIndex<uint64_t, uint64_t>::Evict(
          &members, [](size_t k) { return k != 30; });
    }
    return false;
  });
  EXPECT_EQ(index.NumBuckets(), 2u);
  EXPECT_EQ(index.BucketForTest(2), nullptr);
  ASSERT_NE(index.BucketForTest(3), nullptr);
  EXPECT_TRUE(index.BucketForTest(3)->empty());  // settled member evicted
  ASSERT_NE(index.BucketForTest(1), nullptr);
  EXPECT_EQ(*index.BucketForTest(1), (std::vector<size_t>{10}));
}

// ---------------------------------------------------------------------------
// Witness-index lifecycle on the engines.

/// People-directory document shared by the twig tests (bench shape).
xml::XmlTree PeopleDoc(common::Interner* interner, int persons) {
  std::string text = "<site><people>";
  for (int i = 0; i < persons; ++i) {
    switch (i % 4) {
      case 0: text += "<person><name/><age/><phone/></person>"; break;
      case 1: text += "<person><name/></person>"; break;
      case 2: text += "<person><name/><age/></person>"; break;
      default: text += "<person><name/><homepage/></person>"; break;
    }
  }
  text += "</people></site>";
  return xml::ParseXml(text, interner).value();
}

/// First node the goal selects (the session seed).
xml::NodeId GoalSeed(const twig::TwigQuery& goal, const xml::XmlTree& doc) {
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (twig::Selects(goal, doc, v)) return v;
  }
  return xml::kInvalidNode;
}

TEST(WitnessIndexLifecycleTest, TwigBuildsLazilyAndInvalidatesOnChange) {
  common::Interner interner;
  const xml::XmlTree doc = PeopleDoc(&interner, 8);
  auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner);
  ASSERT_TRUE(goal.ok());
  const xml::NodeId seed = GoalSeed(goal.value(), doc);
  ASSERT_NE(seed, xml::kInvalidNode);

  learn::TwigEngine engine(&doc, seed);
  session::SessionStats stats;
  engine.Propagate(&stats);  // baseline full pass
  // Lazy: the baseline does not build node buckets — only a negative
  // delta demands them.
  EXPECT_FALSE(engine.WitnessIndexValidForTest());

  auto open = [&](xml::NodeId v) {
    return v != seed && !engine.WasAsked(v) && !engine.HasForcedLabel(v);
  };
  // Answer one open goal-negative node negatively.
  xml::NodeId negative = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (open(v) && !twig::Selects(goal.value(), doc, v)) {
      negative = v;
      break;
    }
  }
  ASSERT_NE(negative, xml::kInvalidNode);
  engine.MarkAsked(negative);
  engine.Observe(negative, false, &stats);
  engine.OnNegative(negative);
  engine.Propagate(&stats);
  EXPECT_TRUE(engine.WitnessIndexValidForTest());
  EXPECT_GT(engine.WitnessBucketsForTest(), 0u);

  // A positive that generalizes the hypothesis invalidates the index; the
  // next negative delta rebuilds it.
  xml::NodeId positive = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (open(v) && twig::Selects(goal.value(), doc, v)) {
      positive = v;
      break;
    }
  }
  ASSERT_NE(positive, xml::kInvalidNode);
  engine.MarkAsked(positive);
  engine.Observe(positive, true, &stats);
  engine.OnPositive(positive);
  ASSERT_EQ(stats.conflicts, 0u);  // in-class generalization
  engine.Propagate(&stats);
  EXPECT_FALSE(engine.WitnessIndexValidForTest());

  xml::NodeId second_negative = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (open(v) && !twig::Selects(goal.value(), doc, v)) {
      second_negative = v;
      break;
    }
  }
  ASSERT_NE(second_negative, xml::kInvalidNode);
  engine.MarkAsked(second_negative);
  engine.Observe(second_negative, false, &stats);
  engine.OnNegative(second_negative);
  engine.Propagate(&stats);
  EXPECT_TRUE(engine.WitnessIndexValidForTest());
}

TEST(WitnessIndexLifecycleTest, JoinBucketsEagerlyOnBaseline) {
  relational::JoinInstanceOptions options;
  options.seed = 77;
  options.left_rows = 8;
  options.right_rows = 8;
  options.left_arity = 3;
  options.right_arity = 3;
  options.domain_size = 4;
  const relational::JoinInstance inst =
      relational::GenerateJoinInstance(options, 2);
  auto universe = rlearn::PairUniverse::AllCompatible(inst.left.schema(),
                                                      inst.right.schema());
  ASSERT_TRUE(universe.ok());

  rlearn::JoinEngine engine(&universe.value(), &inst.left, &inst.right);
  session::SessionStats stats;
  engine.Propagate(&stats);  // baseline classification pass
  // The SoA store mirrors the frontier: every baseline-settled candidate
  // has its open bit cleared, and the agreement planes cover every
  // universe pair of every still-open candidate.
  const session::CandidateStore& store = engine.StoreForTest();
  EXPECT_EQ(store.num_planes(), universe.value().size());
  EXPECT_EQ(store.capacity(), engine.candidate_pairs());
  EXPECT_GT(store.open_count(), 0u);
  size_t open = 0;
  for (size_t k = 0; k < engine.candidate_pairs(); ++k) {
    if (store.IsOpen(k)) ++open;
  }
  EXPECT_EQ(open, store.open_count());
  // The baseline pass settles the uninformative pairs (forced either way),
  // so the open set is a strict subset of the universe.
  EXPECT_LT(open, engine.candidate_pairs());
  EXPECT_EQ(open + stats.forced_positive + stats.forced_negative,
            engine.candidate_pairs());
}

// ---------------------------------------------------------------------------
// PathEngine conflict-check regression (satellite of the delta refactor):
// a negative answer must test only the new word against the hypothesis;
// a hypothesis change must sweep all accumulated negatives. Conflict
// counts are pinned.

/// Two vertices, four parallel edges: two labeled "a" (e0, e1), two
/// labeled "b" (e2, e3). Single-edge candidates give duplicate words,
/// which is exactly what the mid-batch conflict scenarios need.
struct ParallelEdgeGraph {
  ParallelEdgeGraph() {
    const graph::VertexId v0 = g.AddVertex("v0");
    const graph::VertexId v1 = g.AddVertex("v1");
    const common::SymbolId a = interner.Intern("a");
    const common::SymbolId b = interner.Intern("b");
    e0 = g.AddEdge(v0, v1, a);
    e1 = g.AddEdge(v0, v1, a);
    e2 = g.AddEdge(v0, v1, b);
    e3 = g.AddEdge(v0, v1, b);
  }

  /// Candidate index of the single-edge path over `edge` (the engine
  /// enumerates via graph::EnumeratePaths, replicated here).
  size_t CandidateOf(graph::EdgeId edge) {
    if (paths.empty()) paths = graph::EnumeratePaths(g, 1, 4000);
    for (size_t k = 0; k < paths.size(); ++k) {
      if (paths[k].edges.size() == 1 && paths[k].edges[0] == edge) return k;
    }
    ADD_FAILURE() << "no single-edge candidate over edge " << edge;
    return 0;
  }

  glearn::PathEngine::Question QuestionOf(graph::EdgeId edge) {
    const size_t k = CandidateOf(edge);
    words.push_back(graph::PathWord(g, paths[k]));
    return glearn::PathEngine::Question{k, &paths[k], &words.back()};
  }

  common::Interner interner;
  graph::Graph g;
  graph::EdgeId e0, e1, e2, e3;
  std::vector<graph::Path> paths;
  std::deque<std::vector<common::SymbolId>> words;
};

TEST(PathConflictRegressionTest, NegativeAnswerTestsOnlyTheNewWord) {
  // Mid-batch shape: the pending question's word is already covered by the
  // hypothesis when its negative answer arrives. The new-word check alone
  // must catch it — one conflict, aborted.
  ParallelEdgeGraph fixture;
  glearn::InteractivePathOptions options;
  options.max_path_edges = 1;
  glearn::PathEngine engine(&fixture.g, graph::Path{0, {fixture.e0}}, options);

  session::SessionStats stats;
  const auto q = fixture.QuestionOf(fixture.e1);  // word [a] == seed word
  engine.MarkAsked(q);
  engine.Observe(q, false, &stats);
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_TRUE(engine.Aborted());
}

TEST(PathConflictRegressionTest, HypothesisChangeSweepsAccumulatedNegatives) {
  // Batch of two [b]-word questions: the first is answered negative (no
  // conflict — the hypothesis "a" rejects [b]), the second positive. The
  // generalization must absorb [b], so the full sweep over accumulated
  // negatives now fires — one conflict, aborted.
  ParallelEdgeGraph fixture;
  glearn::InteractivePathOptions options;
  options.max_path_edges = 1;
  glearn::PathEngine engine(&fixture.g, graph::Path{0, {fixture.e0}}, options);

  session::SessionStats stats;
  engine.Propagate(&stats);  // baseline: forces both [a] paths positive
  EXPECT_EQ(stats.forced_positive, 2u);

  const auto q_neg = fixture.QuestionOf(fixture.e2);
  const auto q_pos = fixture.QuestionOf(fixture.e3);
  engine.MarkAsked(q_neg);
  engine.MarkAsked(q_pos);
  engine.Observe(q_neg, false, &stats);
  engine.OnNegative(q_neg);
  EXPECT_EQ(stats.conflicts, 0u);  // only the new word is tested: rejected
  EXPECT_FALSE(engine.Aborted());
  engine.Observe(q_pos, true, &stats);
  engine.OnPositive(q_pos);
  EXPECT_EQ(stats.conflicts, 1u);  // full sweep after the hypothesis grew
  EXPECT_TRUE(engine.Aborted());
}

// ---------------------------------------------------------------------------
// Parity property tests: delta propagation vs the reference full rescan.

/// Deterministic adversarial labeler: a hash of the item's wire ids. Not
/// expressible in any of the hypothesis classes, so it exercises the
/// conflict / abort paths too.
template <typename Engine>
bool HashLabel(const typename Engine::Item& item, uint64_t salt) {
  uint64_t h = salt * 0x9e3779b97f4a7c15ULL + 0x100000001b3ULL;
  for (uint64_t id : Engine::ItemIds(item)) {
    h = (h ^ (id + 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
  }
  return ((h >> 33) & 1) != 0;
}

/// Drives two identically-configured engines in lockstep — one on delta
/// propagation, one replaying the historical full rescan — and asserts
/// identical question sequences, stats, and per-candidate frontier states
/// after every answered batch.
template <typename Engine, typename OracleFn, typename CompareFn>
void RunLockstep(Engine delta_engine, Engine reference_engine, OracleFn oracle,
                 CompareFn compare_engines, size_t batch) {
  reference_engine.set_reference_propagation(true);
  session::LearningSession<Engine> delta(std::move(delta_engine));
  session::LearningSession<Engine> reference(std::move(reference_engine));
  for (int round = 0; round < 100000; ++round) {
    const auto questions = delta.NextQuestions(batch);
    const auto expected = reference.NextQuestions(batch);
    ASSERT_EQ(questions.size(), expected.size()) << "batch size diverged";
    for (size_t i = 0; i < questions.size(); ++i) {
      ASSERT_EQ(Engine::ItemIds(questions[i]), Engine::ItemIds(expected[i]))
          << "question " << i << " of batch " << round << " diverged";
    }
    if (questions.empty()) break;
    std::vector<bool> labels;
    labels.reserve(questions.size());
    for (const auto& question : questions) labels.push_back(oracle(question));
    delta.AnswerAll(labels);
    reference.AnswerAll(labels);

    const session::SessionStats& got = delta.stats();
    const session::SessionStats& want = reference.stats();
    ASSERT_EQ(got.questions, want.questions);
    ASSERT_EQ(got.forced_positive, want.forced_positive) << "batch " << round;
    ASSERT_EQ(got.forced_negative, want.forced_negative) << "batch " << round;
    ASSERT_EQ(got.conflicts, want.conflicts) << "batch " << round;
    compare_engines(delta.engine(), reference.engine());
    if (::testing::Test::HasFatalFailure()) return;
  }
  delta.Finish();
  reference.Finish();
  ASSERT_EQ(delta.stats().forced_positive, reference.stats().forced_positive);
  ASSERT_EQ(delta.stats().forced_negative, reference.stats().forced_negative);
  ASSERT_EQ(delta.stats().conflicts, reference.stats().conflicts);
}

TEST(PropagationParityTest, TwigGoalAndAdversarialOracles) {
  common::Interner interner;
  const xml::XmlTree people = PeopleDoc(&interner, 10);
  auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner);
  ASSERT_TRUE(goal.ok());
  const xml::NodeId people_seed = GoalSeed(goal.value(), people);
  ASSERT_NE(people_seed, xml::kInvalidNode);

  auto compare = [&](const learn::TwigEngine& a, const learn::TwigEngine& b) {
    for (xml::NodeId v = 0; v < people.NumNodes(); ++v) {
      ASSERT_EQ(a.WasAsked(v), b.WasAsked(v)) << "node " << v;
      ASSERT_EQ(a.HasForcedLabel(v), b.HasForcedLabel(v)) << "node " << v;
    }
  };
  for (size_t batch : {size_t{1}, size_t{3}}) {
    RunLockstep(
        learn::TwigEngine(&people, people_seed),
        learn::TwigEngine(&people, people_seed),
        [&](xml::NodeId v) { return twig::Selects(goal.value(), people, v); },
        compare, batch);
    RunLockstep(
        learn::TwigEngine(&people, people_seed),
        learn::TwigEngine(&people, people_seed),
        [&](xml::NodeId v) {
          return HashLabel<learn::TwigEngine>(v, 11 + batch);
        },
        compare, batch);
  }
}

TEST(PropagationParityTest, TwigRandomDocuments) {
  // Random trees under the adversarial oracle: conflicts, out-of-class
  // candidates, and forced-negative → forced-positive upgrades all occur.
  for (uint64_t seed : {4u, 9u, 23u}) {
    common::Interner interner;
    common::Rng rng(seed);
    xml::RandomTreeOptions tree_options;
    tree_options.max_depth = 3;
    tree_options.max_children = 3;
    const xml::XmlTree doc =
        xml::GenerateRandomTree(tree_options, &rng, &interner);
    if (doc.NumNodes() < 4) continue;
    const xml::NodeId seed_node = static_cast<xml::NodeId>(doc.NumNodes() / 2);
    auto compare = [&](const learn::TwigEngine& a, const learn::TwigEngine& b) {
      for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
        ASSERT_EQ(a.WasAsked(v), b.WasAsked(v)) << "node " << v;
        ASSERT_EQ(a.HasForcedLabel(v), b.HasForcedLabel(v)) << "node " << v;
      }
    };
    RunLockstep(
        learn::TwigEngine(&doc, seed_node), learn::TwigEngine(&doc, seed_node),
        [&](xml::NodeId v) { return HashLabel<learn::TwigEngine>(v, seed); },
        compare, seed % 3 + 1);
  }
}

TEST(PropagationParityTest, JoinGoalAndAdversarialOracles) {
  for (uint64_t seed : {5u, 31u, 77u}) {
    relational::JoinInstanceOptions options;
    options.seed = seed;
    options.left_rows = 9;
    options.right_rows = 9;
    options.left_arity = 3;
    options.right_arity = 3;
    options.domain_size = 4;
    const relational::JoinInstance inst =
        relational::GenerateJoinInstance(options, 2);
    auto universe = rlearn::PairUniverse::AllCompatible(inst.left.schema(),
                                                        inst.right.schema());
    ASSERT_TRUE(universe.ok());
    rlearn::PairMask goal = 0;
    for (size_t i = 0; i < universe.value().size(); ++i) {
      for (const relational::AttributePair& g : inst.goal) {
        if (universe.value().pairs()[i] == g) goal |= (1ULL << i);
      }
    }
    auto compare = [&](const rlearn::JoinEngine& a,
                       const rlearn::JoinEngine& b) {
      for (size_t i = 0; i < inst.left.size(); ++i) {
        for (size_t j = 0; j < inst.right.size(); ++j) {
          const rlearn::PairExample pair{i, j};
          ASSERT_EQ(a.WasAsked(pair), b.WasAsked(pair)) << i << "," << j;
          ASSERT_EQ(a.HasForcedLabel(pair), b.HasForcedLabel(pair))
              << i << "," << j;
        }
      }
    };
    auto make = [&] {
      return rlearn::JoinEngine(&universe.value(), &inst.left, &inst.right);
    };
    for (size_t batch : {size_t{1}, size_t{4}}) {
      RunLockstep(
          make(), make(),
          [&](const rlearn::PairExample& pair) {
            return rlearn::MaskSatisfied(
                goal, universe.value().AgreeMask(inst.left.row(pair.left_row),
                                                 inst.right.row(pair.right_row)));
          },
          compare, batch);
      RunLockstep(
          make(), make(),
          [&](const rlearn::PairExample& pair) {
            return HashLabel<rlearn::JoinEngine>(pair, seed + batch);
          },
          compare, batch);
    }
  }
}

TEST(PropagationParityTest, ChainGoalAndAdversarialOracles) {
  for (int rows : {4, 6}) {
    relational::ChainInstanceOptions options;
    options.seed = 1300 + static_cast<uint64_t>(rows);
    options.rows = rows;
    const relational::ChainInstance inst =
        relational::GenerateChainInstance(options);
    auto chain = rlearn::JoinChain::Create(inst.pointers);
    ASSERT_TRUE(chain.ok());
    const rlearn::ChainMask goal =
        rlearn::NamePairChainGoal(chain.value(), "fk", "key");
    auto compare = [&](const rlearn::ChainEngine& a,
                       const rlearn::ChainEngine& b) {
      ASSERT_EQ(a.candidate_paths(), b.candidate_paths());
      for (size_t k = 0; k < a.candidate_paths(); ++k) {
        const rlearn::ChainExample& item = a.candidate(k);
        ASSERT_EQ(a.WasAsked(item), b.WasAsked(item)) << "path " << k;
        ASSERT_EQ(a.HasForcedLabel(item), b.HasForcedLabel(item))
            << "path " << k;
      }
    };
    for (size_t batch : {size_t{1}, size_t{4}}) {
      RunLockstep(
          rlearn::ChainEngine(&chain.value()),
          rlearn::ChainEngine(&chain.value()),
          [&](const rlearn::ChainExample& example) {
            return rlearn::ChainSatisfied(chain.value(), goal, example);
          },
          compare, batch);
      RunLockstep(
          rlearn::ChainEngine(&chain.value()),
          rlearn::ChainEngine(&chain.value()),
          [&](const rlearn::ChainExample& example) {
            return HashLabel<rlearn::ChainEngine>(example,
                                                  static_cast<uint64_t>(rows));
          },
          compare, batch);
    }
  }
}

TEST(PropagationParityTest, PathGoalAndAdversarialOracles) {
  common::Interner interner;
  graph::GeoOptions geo;
  geo.grid_width = 3;
  geo.grid_height = 3;
  const graph::Graph g = graph::GenerateGeoGraph(geo, &interner);
  auto regex = automata::ParseRegex("highway+", &interner);
  ASSERT_TRUE(regex.ok());
  const graph::PathQuery goal{regex.value(), std::nullopt};
  glearn::GoalPathOracle oracle(goal, g);
  graph::Path seed;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (interner.Name(g.edge(e).label) == "highway") {
      seed.start = g.edge(e).src;
      seed.edges = {e};
      break;
    }
  }
  ASSERT_FALSE(seed.empty());

  glearn::InteractivePathOptions options;
  options.max_path_edges = 3;
  options.max_candidates = 300;
  auto compare = [&](const glearn::PathEngine& a, const glearn::PathEngine& b) {
    ASSERT_EQ(a.candidate_paths(), b.candidate_paths());
    for (size_t k = 0; k < a.candidate_paths(); ++k) {
      ASSERT_EQ(a.WasAsked(k), b.WasAsked(k)) << "candidate " << k;
      ASSERT_EQ(a.HasForcedLabel(k), b.HasForcedLabel(k)) << "candidate " << k;
    }
  };
  for (size_t batch : {size_t{1}, size_t{3}}) {
    RunLockstep(
        glearn::PathEngine(&g, seed, options),
        glearn::PathEngine(&g, seed, options),
        [&](const glearn::PathEngine::Question& question) {
          return oracle.IsPositive(*question.path);
        },
        compare, batch);
    RunLockstep(
        glearn::PathEngine(&g, seed, options),
        glearn::PathEngine(&g, seed, options),
        [&](const glearn::PathEngine::Question& question) {
          return HashLabel<glearn::PathEngine>(question, 5 + batch);
        },
        compare, batch);
  }
}

}  // namespace
}  // namespace qlearn
