// Tests for disjunction-free DTDs: the position/factor matching DP, ordered
// validation, the order/count projection onto MS, the PTIME satisfiability
// and implication procedures, and the coNP containment check with witnesses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/interner.h"
#include "schema/df_dtd.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace schema {
namespace {

class DfDtdFixture : public ::testing::Test {
 protected:
  common::SymbolId S(const std::string& name) {
    return interner_.Intern(name);
  }

  std::vector<common::SymbolId> Word(const std::vector<std::string>& names) {
    std::vector<common::SymbolId> out;
    for (const auto& n : names) out.push_back(S(n));
    return out;
  }

  xml::XmlTree Doc(const std::string& text) {
    auto t = xml::ParseXml(text, &interner_);
    EXPECT_TRUE(t.ok()) << text;
    return t.ok() ? std::move(t).value() : xml::XmlTree();
  }

  twig::TwigQuery Q(const std::string& text) {
    auto q = twig::ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text;
    return q.ok() ? std::move(q).value() : twig::TwigQuery();
  }

  /// book -> title author+ year?   (title/author/year leaves)
  DfDtd BookDtd() {
    DfDtd dtd(S("book"));
    dtd.SetRule(S("book"), {{S("title"), Multiplicity::kOne},
                            {S("author"), Multiplicity::kPlus},
                            {S("year"), Multiplicity::kOpt}});
    dtd.SetRule(S("title"), {});
    dtd.SetRule(S("author"), {});
    dtd.SetRule(S("year"), {});
    return dtd;
  }

  common::Interner interner_;
};

// --- Word matching (the DP) ---

TEST_F(DfDtdFixture, MatchesSimpleSequence) {
  const std::vector<DfFactor> model = {{S("a"), Multiplicity::kOne},
                                       {S("b"), Multiplicity::kStar},
                                       {S("c"), Multiplicity::kOpt}};
  EXPECT_TRUE(DfDtd::MatchesWord(model, Word({"a"})));
  EXPECT_TRUE(DfDtd::MatchesWord(model, Word({"a", "b", "b", "c"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"b"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"a", "c", "b"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"a", "c", "c"})));
}

TEST_F(DfDtdFixture, GreedyTrapStarThenOne) {
  // "a* a": greedy consumption of the star would eat every 'a' and fail;
  // the DP must accept any non-empty run of a's.
  const std::vector<DfFactor> model = {{S("a"), Multiplicity::kStar},
                                       {S("a"), Multiplicity::kOne}};
  EXPECT_FALSE(DfDtd::MatchesWord(model, {}));
  EXPECT_TRUE(DfDtd::MatchesWord(model, Word({"a"})));
  EXPECT_TRUE(DfDtd::MatchesWord(model, Word({"a", "a", "a"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"a", "b"})));
}

TEST_F(DfDtdFixture, RepeatedSymbolSeparatedByOther) {
  // "a b a": exactly a b a.
  const std::vector<DfFactor> model = {{S("a"), Multiplicity::kOne},
                                       {S("b"), Multiplicity::kOne},
                                       {S("a"), Multiplicity::kOne}};
  EXPECT_TRUE(DfDtd::MatchesWord(model, Word({"a", "b", "a"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"a", "b"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"a", "a", "b"})));
}

TEST_F(DfDtdFixture, EmptyModelAcceptsOnlyEmptyWord) {
  EXPECT_TRUE(DfDtd::MatchesWord({}, {}));
  EXPECT_FALSE(DfDtd::MatchesWord({}, Word({"a"})));
}

TEST_F(DfDtdFixture, ZeroMultiplicityFactorBarsSymbol) {
  const std::vector<DfFactor> model = {{S("a"), Multiplicity::kZero},
                                       {S("b"), Multiplicity::kOne}};
  EXPECT_TRUE(DfDtd::MatchesWord(model, Word({"b"})));
  EXPECT_FALSE(DfDtd::MatchesWord(model, Word({"a", "b"})));
}

// --- Ordered validation ---

TEST_F(DfDtdFixture, ValidatesOrderedDocument) {
  const DfDtd dtd = BookDtd();
  EXPECT_TRUE(dtd.Validates(Doc("<book><title/><author/><author/></book>")));
  EXPECT_TRUE(
      dtd.Validates(Doc("<book><title/><author/><year/></book>")));
  // Order matters, unlike the multiplicity schemas.
  EXPECT_FALSE(dtd.Validates(Doc("<book><author/><title/></book>")));
  EXPECT_FALSE(dtd.Validates(Doc("<book><title/></book>")));  // no author
  EXPECT_FALSE(dtd.Validates(Doc("<paper><title/><author/></paper>")));
}

// --- Projection onto MS ---

TEST_F(DfDtdFixture, ProjectionKeepsAllowedAndRequired) {
  const DfDtd dtd = BookDtd();
  const Ms ms = dtd.ToMs();
  EXPECT_EQ(ms.GetMultiplicity(S("book"), S("title")), Multiplicity::kOne);
  EXPECT_EQ(ms.GetMultiplicity(S("book"), S("author")), Multiplicity::kPlus);
  EXPECT_EQ(ms.GetMultiplicity(S("book"), S("year")), Multiplicity::kOpt);
  EXPECT_EQ(ms.GetMultiplicity(S("book"), S("isbn")), Multiplicity::kZero);
  // The unordered projection accepts order permutations.
  EXPECT_TRUE(ms.Validates(Doc("<book><author/><title/></book>")));
}

TEST_F(DfDtdFixture, ProjectionSumsRepeatedSymbols) {
  DfDtd dtd(S("r"));
  // "a? b a?": a occurs 0..2 times -> projected to '*' (the tightest of the
  // five multiplicities covering {0,1,2}); b stays exactly one.
  dtd.SetRule(S("r"), {{S("a"), Multiplicity::kOpt},
                       {S("b"), Multiplicity::kOne},
                       {S("a"), Multiplicity::kOpt}});
  const Ms ms = dtd.ToMs();
  EXPECT_EQ(ms.GetMultiplicity(S("r"), S("a")), Multiplicity::kStar);
  // "a a" -> lower bound 2: projected to '+', preserving requiredness.
  DfDtd two(S("r"));
  two.SetRule(S("r"), {{S("a"), Multiplicity::kOne},
                       {S("a"), Multiplicity::kOne}});
  EXPECT_EQ(two.ToMs().GetMultiplicity(S("r"), S("a")), Multiplicity::kPlus);
}

// --- PTIME procedures in the presence of a DF-DTD ---

TEST_F(DfDtdFixture, SatisfiabilityFollowsAllowedEdges) {
  const DfDtd dtd = BookDtd();
  EXPECT_TRUE(QuerySatisfiable(dtd, Q("/book/author")));
  EXPECT_TRUE(QuerySatisfiable(dtd, Q("/book[title]/year")));
  EXPECT_FALSE(QuerySatisfiable(dtd, Q("/book/isbn")));
  EXPECT_FALSE(QuerySatisfiable(dtd, Q("/book/title/author")));
}

TEST_F(DfDtdFixture, ImplicationFollowsCertainEdges) {
  const DfDtd dtd = BookDtd();
  // Every book has a title and an author; year is optional.
  twig::TwigQuery with_title = Q("/book[title]/author");
  // Find the filter node (the 'title' child of 'book').
  twig::QNodeId title_node = twig::kInvalidQNode;
  for (twig::QNodeId q = 1; q < with_title.NumNodes(); ++q) {
    if (with_title.label(q) == S("title")) title_node = q;
  }
  ASSERT_NE(title_node, twig::kInvalidQNode);
  EXPECT_TRUE(FilterImplied(dtd, S("book"), with_title, title_node));

  twig::TwigQuery with_year = Q("/book[year]/author");
  twig::QNodeId year_node = twig::kInvalidQNode;
  for (twig::QNodeId q = 1; q < with_year.NumNodes(); ++q) {
    if (with_year.label(q) == S("year")) year_node = q;
  }
  ASSERT_NE(year_node, twig::kInvalidQNode);
  EXPECT_FALSE(FilterImplied(dtd, S("book"), with_year, year_node));
}

// --- Containment (the coNP problem) ---

TEST_F(DfDtdFixture, ContainmentOfIdenticalSchemas) {
  const DfDtd dtd = BookDtd();
  EXPECT_TRUE(CheckDfDtdContainment(dtd, dtd).contained);
}

TEST_F(DfDtdFixture, LooseningAMultiplicityPreservesContainment) {
  const DfDtd tight = BookDtd();
  DfDtd loose = BookDtd();
  loose.SetRule(S("book"), {{S("title"), Multiplicity::kOne},
                            {S("author"), Multiplicity::kStar},
                            {S("year"), Multiplicity::kOpt}});
  EXPECT_TRUE(CheckDfDtdContainment(tight, loose).contained);
  const DfDtdContainment reverse = CheckDfDtdContainment(loose, tight);
  EXPECT_FALSE(reverse.contained);
  EXPECT_EQ(reverse.witness_label, S("book"));
  // The witness word is a book content valid under 'loose' only: no author.
  EXPECT_TRUE(DfDtd::MatchesWord(loose.Rule(S("book")),
                                 reverse.witness_word));
  EXPECT_FALSE(DfDtd::MatchesWord(tight.Rule(S("book")),
                                  reverse.witness_word));
}

TEST_F(DfDtdFixture, OrderDifferencesBreakContainment) {
  DfDtd ab(S("r"));
  ab.SetRule(S("r"), {{S("a"), Multiplicity::kOne},
                      {S("b"), Multiplicity::kOne}});
  DfDtd ba(S("r"));
  ba.SetRule(S("r"), {{S("b"), Multiplicity::kOne},
                      {S("a"), Multiplicity::kOne}});
  EXPECT_FALSE(CheckDfDtdContainment(ab, ba).contained);
  // The unordered projections, by contrast, are equivalent.
  EXPECT_TRUE(ab.ToMs().ContainedIn(ba.ToMs()));
  EXPECT_TRUE(ba.ToMs().ContainedIn(ab.ToMs()));
}

TEST_F(DfDtdFixture, StarAbsorbsSplitStars) {
  // "a* a*" and "a*" have the same language.
  DfDtd split(S("r"));
  split.SetRule(S("r"), {{S("a"), Multiplicity::kStar},
                         {S("a"), Multiplicity::kStar}});
  DfDtd single(S("r"));
  single.SetRule(S("r"), {{S("a"), Multiplicity::kStar}});
  EXPECT_TRUE(CheckDfDtdContainment(split, single).contained);
  EXPECT_TRUE(CheckDfDtdContainment(single, split).contained);
}

TEST_F(DfDtdFixture, DifferentRootsNeverContained) {
  DfDtd a(S("a"));
  a.SetRule(S("a"), {});
  DfDtd b(S("b"));
  b.SetRule(S("b"), {});
  EXPECT_FALSE(CheckDfDtdContainment(a, b).contained);
}

TEST_F(DfDtdFixture, EmptyLanguageContainedInAnything) {
  DfDtd empty(S("r"));
  // r requires an x child, but x requires an r child... no wait, make the
  // root unproductive directly: r needs a child labeled 'x' and x needs 'r'.
  empty.SetRule(S("r"), {{S("x"), Multiplicity::kOne}});
  empty.SetRule(S("x"), {{S("r"), Multiplicity::kOne}});
  DfDtd other(S("q"));
  other.SetRule(S("q"), {});
  EXPECT_TRUE(CheckDfDtdContainment(empty, other).contained);
}

TEST_F(DfDtdFixture, UnproductiveBranchIsIgnored) {
  // inner allows an optional child 'u' that is unproductive; its trees never
  // contain 'u', so containment in a schema without 'u' still holds.
  DfDtd inner(S("r"));
  inner.SetRule(S("r"), {{S("a"), Multiplicity::kOne},
                         {S("u"), Multiplicity::kOpt}});
  inner.SetRule(S("a"), {});
  inner.SetRule(S("u"), {{S("u"), Multiplicity::kOne}});  // u -> u: dead
  DfDtd outer(S("r"));
  outer.SetRule(S("r"), {{S("a"), Multiplicity::kOne}});
  outer.SetRule(S("a"), {});
  EXPECT_TRUE(CheckDfDtdContainment(inner, outer).contained);
}

// --- Validation / containment agreement (property sweep) ---

struct ModelPair {
  const char* name;
  const char* inner_model;  // space-separated factors like "a b* c?"
  const char* outer_model;
  bool contained;
};

class ContainmentSweep : public DfDtdFixture,
                         public ::testing::WithParamInterface<ModelPair> {
 protected:
  std::vector<DfFactor> ParseModel(const std::string& text) {
    std::vector<DfFactor> out;
    std::string token;
    auto flush = [&]() {
      if (token.empty()) return;
      Multiplicity m = Multiplicity::kOne;
      char last = token.back();
      if (last == '*') m = Multiplicity::kStar;
      if (last == '+') m = Multiplicity::kPlus;
      if (last == '?') m = Multiplicity::kOpt;
      if (m != Multiplicity::kOne) token.pop_back();
      out.push_back({S(token), m});
      token.clear();
    };
    for (char c : text) {
      if (c == ' ') {
        flush();
      } else {
        token += c;
      }
    }
    flush();
    return out;
  }
};

TEST_P(ContainmentSweep, MatchesExpectation) {
  const ModelPair& p = GetParam();
  DfDtd inner(S("r"));
  inner.SetRule(S("r"), ParseModel(p.inner_model));
  DfDtd outer(S("r"));
  outer.SetRule(S("r"), ParseModel(p.outer_model));
  const DfDtdContainment c = CheckDfDtdContainment(inner, outer);
  EXPECT_EQ(c.contained, p.contained) << p.inner_model << " vs "
                                      << p.outer_model;
  if (!c.contained) {
    // The witness must separate the content languages.
    EXPECT_TRUE(DfDtd::MatchesWord(inner.Rule(c.witness_label),
                                   c.witness_word));
    EXPECT_FALSE(DfDtd::MatchesWord(outer.Rule(c.witness_label),
                                    c.witness_word));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ContainmentSweep,
    ::testing::Values(
        ModelPair{"one_in_star", "a", "a*", true},
        ModelPair{"star_not_in_one", "a*", "a", false},
        ModelPair{"plus_in_star", "a+", "a*", true},
        ModelPair{"star_not_in_plus", "a*", "a+", false},
        ModelPair{"opt_in_star", "a?", "a*", true},
        ModelPair{"seq_in_looser", "a b", "a? b+", true},
        ModelPair{"plus_not_in_opt_pair", "a+", "a? a?", false},
        ModelPair{"two_opts_cover_pair", "a a", "a? a? a?", true},
        ModelPair{"interleaved", "a b a", "a+ b? a*", true},
        ModelPair{"interleaved_strict", "a+ b? a*", "a b a", false}),
    [](const ::testing::TestParamInfo<ModelPair>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace schema
}  // namespace qlearn
