// Loopback integration tests for the consistent-hash routing front tier:
// a real net::Router in front of N real net::Server backends, driven
// through net::Client (and a raw pipelining socket) over real sockets.
//
// The centerpiece replays the golden transcripts through the router at 1,
// 2, and 4 backends and asserts the served bytes are identical to the
// checked-in goldens — the router forwards responses as opaque bytes, so
// routing must be invisible at the byte level. The rebalance test grows
// the fleet mid-transcript and requires every migrated session to finish
// with zero errors and zero byte mismatches.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/router.h"
#include "net/server.h"
#include "net/shard_map.h"
#include "service/session_service.h"
#include "service/wire.h"
#include "transcript_harness.h"

namespace qlearn {
namespace net {
namespace {

using common::StatusCode;
using service::wire::TranscriptEvent;

/// One backend process stand-in: its own service and inline server.
struct Backend {
  Backend() : server(&service, InlineOptions()) {}

  static ServerOptions InlineOptions() {
    ServerOptions options;
    options.workers = 0;
    return options;
  }

  BackendAddress address() const { return {"127.0.0.1", server.port()}; }

  service::SessionService service;
  Server server;
};

class RouterFixture {
 public:
  void StartBackends(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      backends_.push_back(std::make_unique<Backend>());
      ASSERT_TRUE(backends_.back()->server.Start().ok());
    }
  }

  void StartRouter(size_t reactors = 1) {
    ShardMap map;
    for (const auto& backend : backends_) {
      map.backends.push_back(backend->address());
    }
    RouterOptions options;
    options.reactors = reactors;
    router_ = std::make_unique<Router>(std::move(map), options);
    ASSERT_TRUE(router_->Start().ok());
  }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", router_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// A session id placed on backend `bucket` out of `buckets` by the same
  /// jump hash the router uses.
  static std::string IdOnBucket(size_t bucket, size_t buckets) {
    for (int i = 0; i < 10000; ++i) {
      const std::string id = "t-" + std::to_string(i);
      if (ShardFor(id, buckets) == bucket) return id;
    }
    ADD_FAILURE() << "no id found for bucket " << bucket;
    return "t-0";
  }

  std::vector<std::unique_ptr<Backend>> backends_;
  std::unique_ptr<Router> router_;
};

class NetRouterTest : public ::testing::Test, public RouterFixture {};

/// Raw framed-TCP connection for pipelining tests: the blocking Client is
/// strict request/response, so bursts need hand-rolled socket I/O.
class RawConn {
 public:
  explicit RawConn(uint16_t port) { Init(port); }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendBurst(const std::vector<std::string>& payloads) {
    std::string wire;
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(AppendFrame(payload, kDefaultMaxFrameBytes, &wire));
    }
    size_t pos = 0;
    while (pos < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + pos, wire.size() - pos, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      pos += static_cast<size_t>(n);
    }
  }

  std::string RecvFrame() {
    unsigned char header[kFrameHeaderBytes];
    ReadExactly(reinterpret_cast<char*>(header), sizeof(header));
    const uint64_t length = DecodeFrameHeader(header);
    EXPECT_GT(length, 0u);
    EXPECT_LE(length, kDefaultMaxFrameBytes);
    std::string payload(static_cast<size_t>(length), '\0');
    ReadExactly(payload.data(), payload.size());
    return payload;
  }

 private:
  void Init(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }

  void ReadExactly(char* out, size_t n) {
    size_t pos = 0;
    while (pos < n) {
      const ssize_t got = ::recv(fd_, out + pos, n - pos, 0);
      ASSERT_GT(got, 0);
      pos += static_cast<size_t>(got);
    }
  }

  int fd_ = -1;
};

/// A scripted stand-in backend for protocol-corruption tests: answers
/// every request frame with one canned payload. With `poison_first_conn`
/// its first connection appends one extra *unsolicited* frame after the
/// response and closes — the desynced-backend behavior a real server
/// never exhibits.
class FakeBackend {
 public:
  explicit FakeBackend(std::string response, bool poison_first_conn)
      : response_(std::move(response)), poison_next_(poison_first_conn) {
    Init();
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeBackend() {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  void Init() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listen_fd_, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    ASSERT_EQ(::listen(listen_fd_, 8), 0);
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    ASSERT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                            &len),
              0);
    port_ = ntohs(bound.sin_port);
  }

  /// Polls `fd` readable in short slices so the serve thread notices
  /// shutdown even while a peer keeps its connection open.
  bool WaitReadable(int fd) {
    while (running_.load()) {
      pollfd p{fd, POLLIN, 0};
      const int ready = ::poll(&p, 1, 50);
      if (ready > 0) return true;
      if (ready < 0 && errno != EINTR) return false;
    }
    return false;
  }

  bool ReadExactly(int fd, char* out, size_t n) {
    size_t pos = 0;
    while (pos < n) {
      if (!WaitReadable(fd)) return false;
      const ssize_t got = ::recv(fd, out + pos, n - pos, 0);
      if (got <= 0) return false;
      pos += static_cast<size_t>(got);
    }
    return true;
  }

  void Serve() {
    while (running_.load()) {
      if (!WaitReadable(listen_fd_)) return;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      ServeConn(fd, poison_next_);
      ::close(fd);
      poison_next_ = false;
    }
  }

  void ServeConn(int fd, bool poison) {
    for (;;) {
      unsigned char header[kFrameHeaderBytes];
      if (!ReadExactly(fd, reinterpret_cast<char*>(header), sizeof(header))) {
        return;
      }
      const uint64_t length = DecodeFrameHeader(header);
      if (length == 0 || length > kDefaultMaxFrameBytes) return;
      std::string payload(static_cast<size_t>(length), '\0');
      if (!ReadExactly(fd, payload.data(), payload.size())) return;
      std::string wire;
      if (!AppendFrame(response_, kDefaultMaxFrameBytes, &wire)) return;
      // The response plus one frame nobody asked for, then EOF: both the
      // unsolicited frame and the close must tear the connection down
      // router-side.
      if (poison && !AppendFrame(response_, kDefaultMaxFrameBytes, &wire)) {
        return;
      }
      size_t pos = 0;
      while (pos < wire.size()) {
        const ssize_t n =
            ::send(fd, wire.data() + pos, wire.size() - pos, MSG_NOSIGNAL);
        if (n <= 0) return;
        pos += static_cast<size_t>(n);
      }
      if (poison) return;
    }
  }

  std::string response_;
  bool poison_next_ = false;  // serve-thread-only after construction
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

TEST_F(NetRouterTest, MissingOrMalformedIdAnsweredWithoutBackendRoundTrip) {
  StartBackends(2);
  StartRouter();
  Client client = Connect();

  // Missing id on an id-requiring op: the backend's exact error wording,
  // but the backends never see a frame.
  auto no_id = client.CallRaw("{\"k\":1,\"op\":\"ask\"}");
  ASSERT_TRUE(no_id.ok()) << no_id.status().ToString();
  EXPECT_EQ(no_id.value(),
            "{\"error\":{\"code\":\"ParseError\",\"message\":\"json: "
            "missing or non-string \\\"id\\\"\"}}");

  // Malformed id (non-string) and malformed JSON both answer locally too.
  auto bad_id = client.CallRaw("{\"id\":7,\"k\":1,\"op\":\"ask\"}");
  ASSERT_TRUE(bad_id.ok());
  EXPECT_EQ(bad_id.value().rfind("{\"error\":{\"code\":\"ParseError\"", 0),
            0u)
      << bad_id.value();
  auto not_json = client.CallRaw("this is not json");
  ASSERT_TRUE(not_json.ok());
  EXPECT_EQ(not_json.value().rfind("{\"error\":", 0), 0u);
  auto unknown_op = client.CallRaw("{\"op\":\"frobnicate\"}");
  ASSERT_TRUE(unknown_op.ok());
  EXPECT_EQ(unknown_op.value(),
            "{\"error\":{\"code\":\"ParseError\",\"message\":\"protocol: "
            "unknown op \\\"frobnicate\\\"\"}}");

  for (const auto& backend : backends_) {
    EXPECT_EQ(backend->server.stats().frames_received, 0u);
  }
  const RouterStats stats = router_->stats();
  EXPECT_EQ(stats.local_answers, 4u);
  EXPECT_EQ(stats.frames_forwarded, 0u);
}

TEST_F(NetRouterTest, MintedOpenIdsPlaceDeterministically) {
  StartBackends(2);
  StartRouter();
  Client client = Connect();

  // Id-less opens get router-minted ids; each lands on the backend the
  // jump hash says owns it.
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = client.Open("twig", {});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(id.value().rfind("r-", 0), 0u) << id.value();
    ids.push_back(id.value());
  }
  EXPECT_EQ(router_->stats().ids_minted, 8u);
  for (const std::string& id : ids) {
    const size_t owner = ShardFor(id, backends_.size());
    const auto open = backends_[owner]->service.ListOpen();
    EXPECT_NE(std::find(open.begin(), open.end(), id), open.end())
        << id << " not on backend " << owner;
    ASSERT_TRUE(client.Close(id).ok());
  }

  // Caller-supplied ids route by the same hash; reopening a taken id is
  // the backend's AlreadyExists, round-tripped.
  service::OpenOptions with_id;
  with_id.id = IdOnBucket(1, 2);
  ASSERT_TRUE(client.Open("join", with_id).ok());
  EXPECT_EQ(client.Open("join", with_id).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(client.Close(with_id.id).ok());
}

TEST_F(NetRouterTest, BackendDeathIsUnavailableWhileOtherShardsServe) {
  StartBackends(2);
  StartRouter();
  Client client = Connect();

  service::OpenOptions on_dead;
  on_dead.id = IdOnBucket(0, 2);
  service::OpenOptions on_live;
  on_live.id = IdOnBucket(1, 2);
  ASSERT_TRUE(client.Open("twig", on_dead).ok());
  ASSERT_TRUE(client.Open("twig", on_live).ok());
  // Both backends have served traffic, so the router holds live
  // connections to each.
  ASSERT_TRUE(client.Status(on_dead.id).ok());
  ASSERT_TRUE(client.Status(on_live.id).ok());

  backends_[0]->server.Stop();

  // The dead shard surfaces Unavailable (maybe after one in-flight error
  // drains); the live shard keeps serving the whole time.
  common::Status dead_status = common::Status::OK();
  for (int i = 0; i < 10 && dead_status.code() != StatusCode::kUnavailable;
       ++i) {
    dead_status = client.Status(on_dead.id).status();
  }
  EXPECT_EQ(dead_status.code(), StatusCode::kUnavailable)
      << dead_status.ToString();
  auto live = client.Status(on_live.id);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live.value().scenario, "twig");
  ASSERT_TRUE(client.Close(on_live.id).ok());
  EXPECT_GT(router_->stats().backend_errors, 0u);
}

TEST_F(NetRouterTest, UnsolicitedBackendFrameDropsConnectionWithoutCorruption) {
  // Two fakes: the poisoned one plus a healthy one, so the shard's
  // backend table is non-empty after the poisoned connection dies — the
  // use-after-free regression needs a live entry for the post-response
  // liveness lookup to compare the freed connection's address against.
  FakeBackend poisoned("{\"ok\":{\"x\":1}}", /*poison_first_conn=*/true);
  FakeBackend healthy("{\"ok\":{\"x\":2}}", /*poison_first_conn=*/false);
  ShardMap map;
  map.backends.push_back({"127.0.0.1", poisoned.port()});
  map.backends.push_back({"127.0.0.1", healthy.port()});
  router_ = std::make_unique<Router>(std::move(map), RouterOptions());
  ASSERT_TRUE(router_->Start().ok());
  Client client = Connect();
  const std::string on_poisoned =
      "{\"id\":\"" + IdOnBucket(0, 2) + "\",\"op\":\"status\"}";
  const std::string on_healthy =
      "{\"id\":\"" + IdOnBucket(1, 2) + "\",\"op\":\"status\"}";

  // Establish the healthy connection first so it outlives the poisoning.
  auto ok2 = client.CallRaw(on_healthy);
  ASSERT_TRUE(ok2.ok()) << ok2.status().ToString();
  EXPECT_EQ(ok2.value(), "{\"ok\":{\"x\":2}}");

  // This response arrives glued to a frame nobody asked for. The router
  // must deliver the response and fail the poisoned backend connection
  // without touching the freed BackendConn (the ASan regression).
  auto first = client.CallRaw(on_poisoned);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value(), "{\"ok\":{\"x\":1}}");

  // Later requests re-dial and are served on a fresh connection. The
  // teardown can race one request onto the dying connection (answered
  // Unavailable), so retry until the canned answer returns over dial #3.
  std::string body;
  for (int i = 0; i < 100; ++i) {
    auto result = client.CallRaw(on_poisoned);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    body = result.value();
    if (router_->stats().backend_reconnects >= 3 &&
        body == "{\"ok\":{\"x\":1}}") {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(body, "{\"ok\":{\"x\":1}}");
  EXPECT_GE(router_->stats().backend_reconnects, 3u);
  // The healthy backend kept serving throughout.
  auto after = client.CallRaw(on_healthy);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "{\"ok\":{\"x\":2}}");
  router_.reset();  // before the fakes: their serve threads join on exit
}

TEST_F(NetRouterTest, FailedBackendDialsFailFastFromTheBackoffCache) {
  // A port with no listener: bind-then-close reserves one that refuses.
  const int probe = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&bound), &len),
            0);
  const uint16_t dead_port = ntohs(bound.sin_port);
  ::close(probe);

  ShardMap map;
  map.backends.push_back({"127.0.0.1", dead_port});
  router_ = std::make_unique<Router>(std::move(map), RouterOptions());
  ASSERT_TRUE(router_->Start().ok());
  Client client = Connect();

  // Both requests answer Unavailable, but only the first one dials: the
  // second hits the failure cache instead of re-blocking the reactor.
  for (int i = 0; i < 2; ++i) {
    auto result = client.CallRaw("{\"id\":\"s\",\"op\":\"status\"}");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(
        result.value().rfind("{\"error\":{\"code\":\"Unavailable\"", 0), 0u)
        << result.value();
  }
  const RouterStats stats = router_->stats();
  EXPECT_EQ(stats.dial_backoffs, 1u);
  EXPECT_EQ(stats.backend_errors, 2u);
  EXPECT_EQ(stats.backend_reconnects, 0u);
}

TEST_F(NetRouterTest, PipelinedBurstFromOneClientPreservesFifoAcrossBackends) {
  StartBackends(2);
  StartRouter();
  Client admin = Connect();

  // Two sessions on different backends, with visibly different state.
  service::OpenOptions a;
  a.id = IdOnBucket(0, 2);
  service::OpenOptions b;
  b.id = IdOnBucket(1, 2);
  ASSERT_TRUE(admin.Open("twig", a).ok());
  ASSERT_TRUE(admin.Open("join", b).ok());

  // One pipelined burst alternating backends, with a local error in the
  // middle: responses must come back in exact request order.
  RawConn conn(router_->port());
  std::vector<std::string> burst;
  for (int round = 0; round < 8; ++round) {
    burst.push_back("{\"id\":\"" + (round % 2 == 0 ? a.id : b.id) +
                    "\",\"op\":\"status\"}");
  }
  burst.push_back("{\"op\":\"status\"}");  // missing id: answered locally
  for (int round = 0; round < 8; ++round) {
    burst.push_back("{\"id\":\"" + (round % 2 == 0 ? b.id : a.id) +
                    "\",\"op\":\"status\"}");
  }
  conn.SendBurst(burst);
  for (size_t i = 0; i < burst.size(); ++i) {
    const std::string response = conn.RecvFrame();
    if (i == 8) {
      EXPECT_EQ(response.rfind("{\"error\":", 0), 0u) << response;
      continue;
    }
    const bool want_a = i < 8 ? (i % 2 == 0) : ((i - 9) % 2 == 1);
    const std::string want_scenario = want_a ? "twig" : "join";
    auto parsed = ParseResponse(Request::Op::kStatus, response);
    ASSERT_TRUE(parsed.ok()) << response;
    ASSERT_TRUE(parsed.value().status.ok()) << response;
    EXPECT_EQ(parsed.value().session.scenario, want_scenario)
        << "response " << i << " out of order";
  }
  ASSERT_TRUE(admin.Close(a.id).ok());
  ASSERT_TRUE(admin.Close(b.id).ok());
}

TEST_F(NetRouterTest, CountersFanOutMergesOpCountsAndHistograms) {
  StartBackends(2);
  StartRouter();
  Client client = Connect();

  // Traffic on both backends.
  for (size_t bucket = 0; bucket < 2; ++bucket) {
    service::OpenOptions options;
    options.id = IdOnBucket(bucket, 2);
    ASSERT_TRUE(client.Open("twig", options).ok());
    auto batch = client.Ask(options.id, 2);
    ASSERT_TRUE(batch.ok());
    auto labels = client.OracleLabels(options.id);
    ASSERT_TRUE(labels.ok());
    ASSERT_TRUE(client.Tell(options.id, labels.value()).ok());
  }

  auto merged = client.Counters();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // The merge equals the field-wise and bucket-wise sum of what each
  // backend reports directly.
  service::ServiceCounters want;
  uint64_t want_open = 0;
  for (const auto& backend : backends_) {
    auto direct = Client::Connect("127.0.0.1", backend->server.port());
    ASSERT_TRUE(direct.ok());
    auto counters = direct.value().Counters();
    ASSERT_TRUE(counters.ok());
    const service::ServiceCounters& c = counters.value().first;
    want.opens += c.opens;
    want.asks += c.asks;
    want.tells += c.tells;
    want.questions_served += c.questions_served;
    want.labels_accepted += c.labels_accepted;
    for (size_t i = 0; i < service::LatencySnapshot::kBuckets; ++i) {
      want.ask_latency_us.buckets[i] += c.ask_latency_us.buckets[i];
      want.tell_latency_us.buckets[i] += c.tell_latency_us.buckets[i];
    }
    want_open += counters.value().second;
  }
  // Each backend saw exactly one open/ask/tell, so the merge must see two.
  EXPECT_EQ(want.opens, 2u);
  EXPECT_EQ(merged.value().first.opens, want.opens);
  EXPECT_EQ(merged.value().first.asks, want.asks);
  EXPECT_EQ(merged.value().first.tells, want.tells);
  EXPECT_EQ(merged.value().first.questions_served, want.questions_served);
  EXPECT_EQ(merged.value().first.labels_accepted, want.labels_accepted);
  EXPECT_EQ(merged.value().second, want_open);
  uint64_t merged_ask_samples = 0;
  uint64_t want_ask_samples = 0;
  for (size_t i = 0; i < service::LatencySnapshot::kBuckets; ++i) {
    EXPECT_EQ(merged.value().first.ask_latency_us.buckets[i],
              want.ask_latency_us.buckets[i])
        << "ask bucket " << i;
    EXPECT_EQ(merged.value().first.tell_latency_us.buckets[i],
              want.tell_latency_us.buckets[i])
        << "tell bucket " << i;
    merged_ask_samples += merged.value().first.ask_latency_us.buckets[i];
    want_ask_samples += want.ask_latency_us.buckets[i];
  }
  EXPECT_EQ(merged_ask_samples, 2u);  // one ask per backend, both counted
  EXPECT_EQ(merged_ask_samples, want_ask_samples);
  EXPECT_GE(router_->stats().fanouts, 1u);

  // `sessions` fans out too: the union of both backends' handles.
  auto ids = client.ListSessions();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 2u);
  for (size_t bucket = 0; bucket < 2; ++bucket) {
    ASSERT_TRUE(client.Close(IdOnBucket(bucket, 2)).ok());
  }
}

TEST_F(NetRouterTest, ExportImportRoundTripsThroughTheRouter) {
  StartBackends(2);
  StartRouter();
  Client client = Connect();

  service::OpenOptions options;
  options.id = IdOnBucket(0, 2);
  ASSERT_TRUE(client.Open("twig", options).ok());
  auto batch = client.Ask(options.id, 2);
  ASSERT_TRUE(batch.ok());
  auto labels = client.OracleLabels(options.id);
  ASSERT_TRUE(labels.ok());
  ASSERT_TRUE(client.Tell(options.id, labels.value()).ok());

  // Export parks + ships the image and deletes the session; import adopts
  // it back (same id routes to the same backend), and the session picks up
  // exactly where it left off.
  auto exported = client.ExportSession(options.id);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_EQ(exported.value().scenario, "twig");
  EXPECT_FALSE(exported.value().image.empty());
  EXPECT_EQ(client.Status(options.id).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(client
                  .ImportSession(options.id, exported.value().scenario,
                                 exported.value().image)
                  .ok());
  auto status = client.Status(options.id);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status.value().scenario, "twig");
  EXPECT_GE(status.value().stats.questions, 2u);
  ASSERT_TRUE(client.Close(options.id).ok());
}

// ---- golden replay through the router ----

// Replays one recorded transcript through `client`, returning
// human-readable mismatches (empty = byte-identical). Mirrors the server
// suite's replay; ids are router-minted here, which the comparison never
// looks at.
std::vector<std::string> ReplayOverRouter(
    Client* client, const std::vector<TranscriptEvent>& events) {
  std::vector<std::string> mismatches;
  std::string id;
  for (size_t i = 0; i < events.size(); ++i) {
    const TranscriptEvent& event = events[i];
    switch (event.kind) {
      case TranscriptEvent::Kind::kOpen: {
        service::OpenOptions options;
        options.seed = event.seed;
        options.budget.max_questions = event.max_questions;
        auto opened = client->Open(event.scenario, options);
        if (!opened.ok()) {
          mismatches.push_back("open failed: " + opened.status().ToString());
          return mismatches;
        }
        id = opened.value();
        break;
      }
      case TranscriptEvent::Kind::kAsk: {
        auto batch = client->Ask(id, event.requested);
        if (!batch.ok()) {
          mismatches.push_back("ask failed: " + batch.status().ToString());
          return mismatches;
        }
        const auto& served = batch.value();
        if (served.size() != event.questions.size()) {
          mismatches.push_back(
              "event " + std::to_string(i) + ": served " +
              std::to_string(served.size()) + " questions, golden has " +
              std::to_string(event.questions.size()));
          return mismatches;
        }
        for (size_t j = 0; j < served.size(); ++j) {
          const std::string got = service::wire::Serialize(served[j]);
          const std::string want =
              service::wire::Serialize(event.questions[j]);
          if (got != want) {
            mismatches.push_back("event " + std::to_string(i) +
                                 " question " + std::to_string(j) + ": got " +
                                 got + " want " + want);
          }
        }
        break;
      }
      case TranscriptEvent::Kind::kTell: {
        const common::Status told = client->Tell(id, event.labels);
        if (!told.ok()) {
          mismatches.push_back("tell failed: " + told.ToString());
          return mismatches;
        }
        break;
      }
      case TranscriptEvent::Kind::kClose: {
        auto closed = client->Close(id);
        if (!closed.ok()) {
          mismatches.push_back("close failed: " + closed.status().ToString());
          return mismatches;
        }
        const std::string got_hyp =
            service::wire::Serialize(closed.value().hypothesis);
        const std::string want_hyp =
            service::wire::Serialize(event.hypothesis);
        if (got_hyp != want_hyp) {
          mismatches.push_back("final hypothesis: got " + got_hyp +
                               " want " + want_hyp);
        }
        const std::string got_stats =
            service::wire::Serialize(closed.value().stats);
        const std::string want_stats = service::wire::Serialize(event.stats);
        if (got_stats != want_stats) {
          mismatches.push_back("final stats: got " + got_stats + " want " +
                               want_stats);
        }
        break;
      }
    }
  }
  return mismatches;
}

class NetRouterGoldenTest : public ::testing::TestWithParam<size_t>,
                            public RouterFixture {};

TEST_P(NetRouterGoldenTest, GoldenTranscriptsReplayByteIdenticalViaRouter) {
  StartBackends(GetParam());
  StartRouter(/*reactors=*/2);
  Client client = Connect();
  size_t replayed = 0;
  for (const auto& c : testing::ConformanceCases()) {
    SCOPED_TRACE(c.name);
    auto text = testing::ReadFileToString(testing::GoldenPath(c.name));
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto events = service::wire::ParseTranscript(text.value());
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    const std::vector<std::string> mismatches =
        ReplayOverRouter(&client, events.value());
    for (const std::string& m : mismatches) ADD_FAILURE() << m;
    ++replayed;
  }
  EXPECT_GE(replayed, 5u);
  const RouterStats stats = router_->stats();
  EXPECT_EQ(stats.bad_frames, 0u);
  EXPECT_EQ(stats.backend_errors, 0u);
  EXPECT_GT(stats.frames_forwarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(BackendCounts, NetRouterGoldenTest,
                         ::testing::Values(1u, 2u, 4u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::to_string(info.param) + "_backends";
                         });

// ---- live rebalance ----

TEST_F(NetRouterTest, RebalanceMigratesSessionsMidTranscriptWithZeroErrors) {
  StartBackends(1);
  StartRouter();
  Client client = Connect();

  // Several sessions mid-transcript on the single backend: each has asked
  // and told (quiescent between batches), with work left to do.
  constexpr size_t kSessions = 6;
  std::vector<std::string> ids;
  for (size_t i = 0; i < kSessions; ++i) {
    service::OpenOptions options;
    options.seed = 100 + i;
    auto id = client.Open(i % 2 == 0 ? "twig" : "join", options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
    auto batch = client.Ask(id.value(), 2);
    ASSERT_TRUE(batch.ok());
    auto labels = client.OracleLabels(id.value());
    ASSERT_TRUE(labels.ok());
    ASSERT_TRUE(client.Tell(id.value(), labels.value()).ok());
  }

  // Grow the fleet: add a second backend and rebalance. Only sessions
  // whose jump-hash owner changed move.
  backends_.push_back(std::make_unique<Backend>());
  ASSERT_TRUE(backends_.back()->server.Start().ok());
  const uint64_t generation_before = router_->shard_map().generation;
  std::vector<BackendAddress> grown = {backends_[0]->address(),
                                       backends_[1]->address()};
  ASSERT_TRUE(router_->Rebalance(grown).ok());
  EXPECT_EQ(router_->shard_map().generation, generation_before + 1);

  size_t expected_moves = 0;
  for (const std::string& id : ids) {
    if (ShardFor(id, 2) == 1) ++expected_moves;
  }
  ASSERT_GT(expected_moves, 0u)
      << "jump hash moved nothing; test ids need rechecking";
  EXPECT_EQ(router_->stats().handoffs, expected_moves);
  EXPECT_EQ(backends_[1]->service.ListOpen().size(), expected_moves);

  // Every session — migrated or not — finishes its transcript through the
  // same client connection with zero errors; migrated sessions kept their
  // full learner state (stats count the pre-migration questions).
  for (const std::string& id : ids) {
    while (true) {
      auto batch = client.Ask(id, 3);
      ASSERT_TRUE(batch.ok()) << id << ": " << batch.status().ToString();
      if (batch.value().empty()) break;
      auto labels = client.OracleLabels(id);
      ASSERT_TRUE(labels.ok()) << id;
      ASSERT_TRUE(client.Tell(id, labels.value()).ok()) << id;
    }
    auto closed = client.Close(id);
    ASSERT_TRUE(closed.ok()) << id << ": " << closed.status().ToString();
    EXPECT_GE(closed.value().stats.questions, 2u) << id;
  }
  for (const auto& backend : backends_) {
    EXPECT_EQ(backend->service.OpenCount(), 0u);
  }
  const RouterStats stats = router_->stats();
  EXPECT_EQ(stats.backend_errors, 0u);
  EXPECT_EQ(stats.rebalances, 1u);
}

TEST_F(NetRouterTest, RebalancePinsNonQuiescentSessionsUntilClose) {
  StartBackends(1);
  StartRouter();
  Client client = Connect();

  // A session with labels pending cannot park, so it cannot migrate.
  auto id = client.Open("twig", {});
  ASSERT_TRUE(id.ok());
  auto batch = client.Ask(id.value(), 2);
  ASSERT_TRUE(batch.ok());

  backends_.push_back(std::make_unique<Backend>());
  ASSERT_TRUE(backends_.back()->server.Start().ok());
  ASSERT_TRUE(
      router_
          ->Rebalance({backends_[0]->address(), backends_[1]->address()})
          .ok());

  // Wherever the new map places it, the session still answers — served
  // from backend 0 via the routing override if its home moved.
  auto labels = client.OracleLabels(id.value());
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_TRUE(client.Tell(id.value(), labels.value()).ok());
  ASSERT_TRUE(client.Close(id.value()).ok());
  if (ShardFor(id.value(), 2) == 1) {
    EXPECT_EQ(router_->stats().handoff_skipped, 1u);
  }
  EXPECT_EQ(backends_[0]->service.OpenCount(), 0u);
}

TEST_F(NetRouterTest, FanOutReachesSessionsPinnedOffTheMap) {
  StartBackends(2);
  StartRouter();
  Client client = Connect();

  // A non-quiescent session on backend 0 (labels pending: cannot park).
  service::OpenOptions options;
  options.id = IdOnBucket(0, 2);
  ASSERT_TRUE(client.Open("twig", options).ok());
  ASSERT_TRUE(client.Ask(options.id, 2).ok());

  // Shrink the fleet to backend 1 only. The pinned session stays on
  // backend 0 behind a routing override — a backend the new map no
  // longer lists.
  ASSERT_TRUE(router_->Rebalance({backends_[1]->address()}).ok());
  EXPECT_EQ(router_->stats().handoff_skipped, 1u);

  // Fan-out must still reach it: `sessions` lists the pinned id and
  // `counters` merges the off-map backend's counts, or the fleet
  // under-reports until the next successful rebalance.
  auto ids = client.ListSessions();
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids.value().size(), 1u);
  EXPECT_EQ(ids.value()[0], options.id);
  auto counters = client.Counters();
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters.value().first.opens, 1u);
  EXPECT_EQ(counters.value().second, 1u);

  // The session still serves through the override; close retires it, and
  // the fan-out set shrinks back to the map.
  auto labels = client.OracleLabels(options.id);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_TRUE(client.Tell(options.id, labels.value()).ok());
  ASSERT_TRUE(client.Close(options.id).ok());
  EXPECT_EQ(backends_[0]->service.OpenCount(), 0u);
  auto after = client.ListSessions();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().empty());
}

TEST_F(NetRouterTest, BackToBackRebalancesInstallCleanly) {
  StartBackends(3);
  ShardMap map;
  map.backends.push_back(backends_[0]->address());
  router_ = std::make_unique<Router>(std::move(map), RouterOptions());
  ASSERT_TRUE(router_->Start().ok());
  Client client = Connect();

  // Quiescent sessions (ask/tell cycles complete) that can all migrate.
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    service::OpenOptions options;
    options.seed = 200 + i;
    auto id = client.Open(i % 2 == 0 ? "twig" : "join", options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
    auto batch = client.Ask(id.value(), 2);
    ASSERT_TRUE(batch.ok());
    auto labels = client.OracleLabels(id.value());
    ASSERT_TRUE(labels.ok());
    ASSERT_TRUE(client.Tell(id.value(), labels.value()).ok());
  }

  // Two rebalances with no gap: the second must wait for pause acks that
  // observed *its own* pause (the stale-ack regression) and still drain
  // and install cleanly.
  ASSERT_TRUE(
      router_->Rebalance({backends_[0]->address(), backends_[1]->address()})
          .ok());
  ASSERT_TRUE(router_
                  ->Rebalance({backends_[0]->address(),
                               backends_[1]->address(),
                               backends_[2]->address()})
                  .ok());
  EXPECT_EQ(router_->shard_map().generation, 3u);

  for (const std::string& id : ids) {
    auto status = client.Status(id);
    ASSERT_TRUE(status.ok()) << id << ": " << status.status().ToString();
    ASSERT_TRUE(client.Close(id).ok()) << id;
  }
  const RouterStats stats = router_->stats();
  EXPECT_EQ(stats.backend_errors, 0u);
  EXPECT_EQ(stats.rebalances, 2u);
}

}  // namespace
}  // namespace net
}  // namespace qlearn
