// Unit tests for twig queries: construction, parsing/printing, evaluation
// semantics (boolean, unary selection, n-ary tuples), and anchoredness.
#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "twig/twig_query.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace twig {
namespace {

using common::Interner;

class TwigFixture : public ::testing::Test {
 protected:
  TwigQuery Q(const std::string& text) {
    auto q = ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    return q.ok() ? std::move(q).value() : TwigQuery();
  }

  xml::XmlTree Doc(const std::string& text) {
    auto t = xml::ParseXml(text, &interner_);
    EXPECT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    return t.ok() ? std::move(t).value() : xml::XmlTree();
  }

  /// Labels of the nodes selected by `q` on `doc`, as a multiset of strings.
  std::multiset<std::string> SelectedLabels(const TwigQuery& q,
                                            const xml::XmlTree& doc) {
    std::multiset<std::string> out;
    for (xml::NodeId n : Evaluate(q, doc)) {
      out.insert(interner_.Name(doc.label(n)));
    }
    return out;
  }

  Interner interner_;
};

TEST_F(TwigFixture, ParseSimplePath) {
  TwigQuery q = Q("/a/b/c");
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_TRUE(q.IsPath());
  EXPECT_NE(q.selection(), kInvalidQNode);
  EXPECT_EQ(q.ToString(interner_), "/a/b/c");
}

TEST_F(TwigFixture, ParseDescendantAxis) {
  TwigQuery q = Q("//a//b");
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.axis(1), Axis::kDescendant);
  EXPECT_EQ(q.ToString(interner_), "//a//b");
}

TEST_F(TwigFixture, ParseFilters) {
  TwigQuery q = Q("/site//person[profile/age]/name");
  EXPECT_EQ(q.Size(), 5u);
  EXPECT_FALSE(q.IsPath());
  EXPECT_EQ(q.ToString(interner_), "/site//person[profile/age]/name");
}

TEST_F(TwigFixture, ParseNestedAndMultipleFilters) {
  TwigQuery q = Q("/a[b[c][d]]/e[.//f]");
  EXPECT_EQ(q.Size(), 6u);
  const std::string round = q.ToString(interner_);
  TwigQuery q2 = Q(round);
  EXPECT_TRUE(q.StructurallyEquals(q2)) << round;
}

TEST_F(TwigFixture, ParseWildcard) {
  TwigQuery q = Q("/a/*/c");
  EXPECT_EQ(q.label(2), kWildcard);
  EXPECT_EQ(q.ToString(interner_), "/a/*/c");
}

TEST_F(TwigFixture, ParseErrors) {
  EXPECT_FALSE(ParseTwig("", &interner_).ok());
  EXPECT_FALSE(ParseTwig("a/b", &interner_).ok());
  EXPECT_FALSE(ParseTwig("/a[", &interner_).ok());
  EXPECT_FALSE(ParseTwig("/a[b", &interner_).ok());
  EXPECT_FALSE(ParseTwig("/", &interner_).ok());
}

TEST_F(TwigFixture, BooleanMatchChildAxis) {
  const xml::XmlTree doc = Doc("<a><b/><c/></a>");
  EXPECT_TRUE(Matches(Q("/a"), doc));
  EXPECT_TRUE(Matches(Q("/a/b"), doc));
  EXPECT_FALSE(Matches(Q("/b"), doc));
  EXPECT_FALSE(Matches(Q("/a/b/c"), doc));
}

TEST_F(TwigFixture, BooleanMatchDescendantAxis) {
  const xml::XmlTree doc = Doc("<a><b><c><d/></c></b></a>");
  EXPECT_TRUE(Matches(Q("//d"), doc));
  EXPECT_TRUE(Matches(Q("//b//d"), doc));
  EXPECT_TRUE(Matches(Q("/a//d"), doc));
  EXPECT_FALSE(Matches(Q("//b/d"), doc));  // d is a grandchild of b
  EXPECT_FALSE(Matches(Q("//e"), doc));
}

TEST_F(TwigFixture, DescendantIsProper) {
  const xml::XmlTree doc = Doc("<a><b/></a>");
  // //a//a would need two distinct nested a's.
  EXPECT_FALSE(Matches(Q("//a//a"), doc));
  const xml::XmlTree nested = Doc("<a><a><b/></a></a>");
  EXPECT_TRUE(Matches(Q("//a//a"), nested));
}

TEST_F(TwigFixture, SelectionReturnsMatchingNodes) {
  const xml::XmlTree doc =
      Doc("<site><people><person><name/></person>"
          "<person><name/><age/></person></people></site>");
  EXPECT_EQ(SelectedLabels(Q("//person"), doc),
            (std::multiset<std::string>{"person", "person"}));
  EXPECT_EQ(SelectedLabels(Q("//person[age]"), doc),
            (std::multiset<std::string>{"person"}));
  EXPECT_EQ(SelectedLabels(Q("//person[age]/name"), doc),
            (std::multiset<std::string>{"name"}));
}

TEST_F(TwigFixture, FilterConstrainsButDoesNotSelect) {
  const xml::XmlTree doc = Doc("<a><b><x/></b><b/></a>");
  // Only the first b has an x child.
  EXPECT_EQ(Evaluate(Q("/a/b[x]"), doc).size(), 1u);
  EXPECT_EQ(Evaluate(Q("/a/b"), doc).size(), 2u);
}

TEST_F(TwigFixture, UpwardContextFiltersSelection) {
  const xml::XmlTree doc =
      Doc("<a><b><n/></b><c><n/></c></a>");
  // Only the n under b qualifies.
  const auto selected = Evaluate(Q("/a/b/n"), doc);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(interner_.Name(doc.label(doc.parent(selected[0]))), "b");
}

TEST_F(TwigFixture, SiblingConstraintsApply) {
  const xml::XmlTree doc = Doc("<a><b/><c/></a>");
  const xml::XmlTree doc2 = Doc("<a><b/></a>");
  EXPECT_EQ(Evaluate(Q("/a[c]/b"), doc).size(), 1u);
  EXPECT_EQ(Evaluate(Q("/a[c]/b"), doc2).size(), 0u);
}

TEST_F(TwigFixture, WildcardMatchesAnyLabel) {
  const xml::XmlTree doc = Doc("<a><b><d/></b><c><d/></c></a>");
  EXPECT_EQ(Evaluate(Q("/a/*/d"), doc).size(), 2u);
  EXPECT_EQ(Evaluate(Q("/a/*"), doc).size(), 2u);
}

TEST_F(TwigFixture, RootDescendantSelectsEverywhere) {
  const xml::XmlTree doc = Doc("<a><a><a/></a></a>");
  EXPECT_EQ(Evaluate(Q("//a"), doc).size(), 3u);
  EXPECT_EQ(Evaluate(Q("/a"), doc).size(), 1u);
}

TEST_F(TwigFixture, EvaluatorSelectsAgainstNode) {
  const xml::XmlTree doc = Doc("<a><b/><b><c/></b></a>");
  const TwigQuery q = Q("/a/b[c]");
  TwigEvaluator eval(q, doc);
  int selected = 0;
  for (xml::NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (eval.Selects(n)) ++selected;
  }
  EXPECT_EQ(selected, 1);
}

TEST_F(TwigFixture, MarkedTuplesProjectEmbeddings) {
  const xml::XmlTree doc =
      Doc("<db><rec><k/><v/></rec><rec><k/><v/></rec></db>");
  TwigQuery q = Q("/db/rec[k][v]");
  // Query node ids: 1=db, 2=rec, 3=k, 4=v. Mark the k and v nodes.
  q.AddMarked(3);
  q.AddMarked(4);
  TwigEvaluator eval(q, doc);
  const auto tuples = eval.MarkedTuples(100);
  EXPECT_EQ(tuples.size(), 2u);  // one (k,v) pair per record
  for (const auto& tuple : tuples) {
    ASSERT_EQ(tuple.size(), 2u);
    EXPECT_EQ(interner_.Name(doc.label(tuple[0])), "k");
    EXPECT_EQ(interner_.Name(doc.label(tuple[1])), "v");
    EXPECT_EQ(doc.parent(tuple[0]), doc.parent(tuple[1]));
  }
}

TEST_F(TwigFixture, MarkedTuplesHonorLimit) {
  const xml::XmlTree doc = Doc("<db><r/><r/><r/><r/><r/></db>");
  TwigQuery q = Q("/db/r");
  q.AddMarked(q.selection());
  TwigEvaluator eval(q, doc);
  EXPECT_EQ(eval.MarkedTuples(3).size(), 3u);
  EXPECT_EQ(eval.MarkedTuples(100).size(), 5u);
}

TEST_F(TwigFixture, AnchoredDefinition) {
  EXPECT_TRUE(Q("/a/b/c").IsAnchored());
  EXPECT_TRUE(Q("/a/*/c").IsAnchored());
  EXPECT_TRUE(Q("//a/b").IsAnchored());
  EXPECT_FALSE(Q("//*/b").IsAnchored());   // wildcard entered via //
  EXPECT_FALSE(Q("/a/*//b").IsAnchored()); // wildcard exited via //
  EXPECT_TRUE(Q("/a[b]//c[d]").IsAnchored());
}

TEST_F(TwigFixture, RemoveSubtree) {
  TwigQuery q = Q("/a[b/c]/d");
  // Node ids: 1=a, 2=b, 3=c, 4=d (selection).
  const TwigQuery pruned = q.RemoveSubtree(2);
  EXPECT_EQ(pruned.Size(), 2u);
  EXPECT_EQ(pruned.ToString(interner_), "/a/d");
}

TEST_F(TwigFixture, StructuralEqualityIsUnordered) {
  const TwigQuery q1 = Q("/a[b][c]/d");
  const TwigQuery q2 = Q("/a[c][b]/d");
  EXPECT_TRUE(q1.StructurallyEquals(q2));
  const TwigQuery q3 = Q("/a[b][b]/d");
  EXPECT_FALSE(q1.StructurallyEquals(q3));
}

TEST_F(TwigFixture, DeepRecursiveDocument) {
  // Chain of 30 nested a's: //a//a//a selects a's at depth >= 3.
  std::string open;
  std::string close;
  for (int i = 0; i < 30; ++i) {
    open += "<a>";
    close += "</a>";
  }
  const xml::XmlTree doc = Doc(open + close);
  EXPECT_EQ(Evaluate(Q("//a//a//a"), doc).size(), 28u);
}

}  // namespace
}  // namespace twig
}  // namespace qlearn
