// Loopback integration tests for the framed-TCP server: an in-process
// Server in front of a real SessionService, driven through net::Client over
// real sockets. The centerpiece replays one golden transcript per scenario
// kind and asserts the question stream served over TCP is byte-identical to
// the checked-in golden — the wire format is canonical JSON, so byte
// equality is semantic equality. The replay and the concurrent-client
// hammer run under every dispatch configuration (worker pool, inline
// dispatch, multiple reactor shards), since the golden bytes must not
// depend on how the server schedules work.
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/session_service.h"
#include "service/wire.h"
#include "transcript_harness.h"

namespace qlearn {
namespace net {
namespace {

using common::StatusCode;
using service::wire::TranscriptEvent;

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.workers = 4;
    server_ = std::make_unique<Server>(&service_, options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  service::SessionService service_;
  std::unique_ptr<Server> server_;
};

/// A dispatch configuration the byte-identity suite runs under.
struct ServerConfig {
  const char* name;
  size_t workers;
  size_t reactors;
};

void PrintTo(const ServerConfig& config, std::ostream* os) {
  *os << config.name;
}

class NetServerConfigTest : public ::testing::TestWithParam<ServerConfig> {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.workers = GetParam().workers;
    options.reactors = GetParam().reactors;
    server_ = std::make_unique<Server>(&service_, options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  service::SessionService service_;
  std::unique_ptr<Server> server_;
};

// Replays one recorded transcript through `client` against the live server,
// returning human-readable mismatches (empty = byte-identical).
std::vector<std::string> ReplayOverSocket(
    Client* client, const std::vector<TranscriptEvent>& events) {
  std::vector<std::string> mismatches;
  std::string id;
  for (size_t i = 0; i < events.size(); ++i) {
    const TranscriptEvent& event = events[i];
    switch (event.kind) {
      case TranscriptEvent::Kind::kOpen: {
        service::OpenOptions options;
        options.seed = event.seed;
        options.budget.max_questions = event.max_questions;
        auto opened = client->Open(event.scenario, options);
        if (!opened.ok()) {
          mismatches.push_back("open failed: " + opened.status().ToString());
          return mismatches;
        }
        id = opened.value();
        break;
      }
      case TranscriptEvent::Kind::kAsk: {
        auto batch = client->Ask(id, event.requested);
        if (!batch.ok()) {
          mismatches.push_back("ask failed: " + batch.status().ToString());
          return mismatches;
        }
        const auto& served = batch.value();
        if (served.size() != event.questions.size()) {
          mismatches.push_back(
              "event " + std::to_string(i) + ": served " +
              std::to_string(served.size()) + " questions, golden has " +
              std::to_string(event.questions.size()));
          return mismatches;
        }
        for (size_t j = 0; j < served.size(); ++j) {
          const std::string got = service::wire::Serialize(served[j]);
          const std::string want = service::wire::Serialize(event.questions[j]);
          if (got != want) {
            mismatches.push_back("event " + std::to_string(i) + " question " +
                                 std::to_string(j) + ": got " + got +
                                 " want " + want);
          }
        }
        break;
      }
      case TranscriptEvent::Kind::kTell: {
        const common::Status told = client->Tell(id, event.labels);
        if (!told.ok()) {
          mismatches.push_back("tell failed: " + told.ToString());
          return mismatches;
        }
        break;
      }
      case TranscriptEvent::Kind::kClose: {
        auto closed = client->Close(id);
        if (!closed.ok()) {
          mismatches.push_back("close failed: " + closed.status().ToString());
          return mismatches;
        }
        const std::string got_hyp =
            service::wire::Serialize(closed.value().hypothesis);
        const std::string want_hyp =
            service::wire::Serialize(event.hypothesis);
        if (got_hyp != want_hyp) {
          mismatches.push_back("final hypothesis: got " + got_hyp + " want " +
                               want_hyp);
        }
        const std::string got_stats =
            service::wire::Serialize(closed.value().stats);
        const std::string want_stats = service::wire::Serialize(event.stats);
        if (got_stats != want_stats) {
          mismatches.push_back("final stats: got " + got_stats + " want " +
                               want_stats);
        }
        break;
      }
    }
  }
  return mismatches;
}

// One golden per scenario kind (twig, twig-ambiguity, join, path, chain) —
// the paper-experiment cases from the conformance suite.
std::vector<testing::TranscriptCase> OnePerScenarioKind() {
  std::vector<testing::TranscriptCase> picked;
  std::set<std::string> kinds;
  for (const auto& c : testing::ConformanceCases()) {
    if (kinds.insert(c.scenario).second) picked.push_back(c);
  }
  return picked;
}

TEST_P(NetServerConfigTest, GoldenTranscriptsReplayByteIdenticalOverTcp) {
  const auto cases = OnePerScenarioKind();
  ASSERT_GE(cases.size(), 5u);  // twig, twig-ambiguity, join, path, chain
  Client client = Connect();
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    auto text = testing::ReadFileToString(testing::GoldenPath(c.name));
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto events = service::wire::ParseTranscript(text.value());
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    const std::vector<std::string> mismatches =
        ReplayOverSocket(&client, events.value());
    for (const std::string& m : mismatches) ADD_FAILURE() << m;
  }
}

TEST_P(NetServerConfigTest, ConcurrentClientsReplayUnderEveryDispatchMode) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  const uint16_t port = server_->port();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, port, &failures] {
      auto client_or = Client::Connect("127.0.0.1", port);
      if (!client_or.ok()) {
        failures[t] = client_or.status().ToString();
        return;
      }
      Client client = std::move(client_or).value();
      const char* scenarios[] = {"twig", "join", "chain", "path"};
      service::OpenOptions options;
      options.seed = 11 + static_cast<uint64_t>(t);
      auto id = client.Open(scenarios[t % 4], options);
      if (!id.ok()) {
        failures[t] = id.status().ToString();
        return;
      }
      while (true) {
        auto batch = client.Ask(id.value(), 3);
        if (!batch.ok()) {
          failures[t] = batch.status().ToString();
          return;
        }
        if (batch.value().empty()) break;
        auto labels = client.OracleLabels(id.value());
        if (!labels.ok()) {
          failures[t] = labels.status().ToString();
          return;
        }
        const common::Status told = client.Tell(id.value(), labels.value());
        if (!told.ok()) {
          failures[t] = told.ToString();
          return;
        }
      }
      if (!client.Close(id.value()).ok()) failures[t] = "close failed";
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }
  EXPECT_EQ(service_.OpenCount(), 0u);
  // Per-shard stats sum to the fleet totals regardless of sharding.
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.bad_frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DispatchModes, NetServerConfigTest,
    ::testing::Values(ServerConfig{"worker_pool", 4, 1},
                      ServerConfig{"inline_dispatch", 0, 1},
                      ServerConfig{"sharded_workers", 2, 2},
                      ServerConfig{"sharded_inline", 0, 3}),
    [](const ::testing::TestParamInfo<ServerConfig>& info) {
      return std::string(info.param.name);
    });

TEST(NetServerOptionsTest, ZeroReactorsIsRejectedZeroWorkersIsInline) {
  service::SessionService service;
  ServerOptions zero_reactors;
  zero_reactors.reactors = 0;
  Server bad(&service, zero_reactors);
  EXPECT_EQ(bad.Start().code(), StatusCode::kInvalidArgument);

  // workers == 0 is a supported mode (inline dispatch), not an error.
  ServerOptions inline_mode;
  inline_mode.workers = 0;
  Server good(&service, inline_mode);
  ASSERT_TRUE(good.Start().ok());
  auto client = Client::Connect("127.0.0.1", good.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto id = client.value().Open("twig", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(client.value().Close(id.value()).ok());
  good.Stop();
}

TEST(NetServerOptionsTest, StatsAreSafeAgainstConcurrentRestartCycles) {
  // stats() may race a Stop()/Start() cycle: Start retires and rebuilds
  // the shard set, and a concurrent reader must see either the old or the
  // new set, never the vector mid-mutation. A polling thread hammers
  // stats() through several restart cycles; lifetime counters stay
  // cumulative across them.
  service::SessionService service;
  ServerOptions options;
  options.workers = 0;
  options.reactors = 2;
  Server server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)server.stats();
    }
  });
  constexpr int kCycles = 10;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client.value().Counters().ok());
    server.Stop();
    ASSERT_TRUE(server.Start().ok());
  }
  done.store(true);
  poller.join();
  EXPECT_GE(server.stats().connections_accepted,
            static_cast<uint64_t>(kCycles));
  server.Stop();
}

TEST_F(NetServerTest, OpenAskTellCloseRoundTrip) {
  Client client = Connect();
  auto id = client.Open("join", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto status = client.Status(id.value());
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status.value().scenario, "join");
  EXPECT_EQ(status.value().pending, 0u);

  auto batch = client.Ask(id.value(), 4);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_FALSE(batch.value().empty());
  EXPECT_EQ(batch.value()[0].kind, "join");

  auto labels = client.OracleLabels(id.value());
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels.value().size(), batch.value().size());
  ASSERT_TRUE(client.Tell(id.value(), labels.value()).ok());

  auto closed = client.Close(id.value());
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_EQ(closed.value().hypothesis.kind, "join");
  EXPECT_GE(closed.value().stats.questions, batch.value().size());

  // The handle is gone: further calls surface the server's NotFound.
  EXPECT_EQ(client.Status(id.value()).status().code(), StatusCode::kNotFound);
}

TEST_F(NetServerTest, ServerSideErrorsArriveAsStructuredStatuses) {
  Client client = Connect();
  EXPECT_EQ(client.Open("no-such-scenario", {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Ask("s-404", 1).status().code(), StatusCode::kNotFound);

  auto id = client.Open("twig", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Tell with no pending batch is a protocol-state error, not a hangup.
  EXPECT_EQ(client.Tell(id.value(), {true}).code(),
            StatusCode::kFailedPrecondition);
  auto batch = client.Ask(id.value(), 2);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  // Wrong label count.
  std::vector<bool> wrong(batch.value().size() + 1, true);
  EXPECT_EQ(client.Tell(id.value(), wrong).code(),
            StatusCode::kInvalidArgument);
  // The connection is still fine: answer correctly and close.
  auto labels = client.OracleLabels(id.value());
  ASSERT_TRUE(labels.ok());
  EXPECT_TRUE(client.Tell(id.value(), labels.value()).ok());
  EXPECT_TRUE(client.Close(id.value()).ok());
}

TEST_F(NetServerTest, CountersReflectTraffic) {
  Client client = Connect();
  auto id = client.Open("chain", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto batch = client.Ask(id.value(), 2);
  ASSERT_TRUE(batch.ok());
  auto counters = client.Counters();
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters.value().first.opens, 1u);
  EXPECT_EQ(counters.value().first.asks, 1u);
  EXPECT_EQ(counters.value().first.questions_served, batch.value().size());
  EXPECT_EQ(counters.value().second, 1u);  // open_sessions
  ASSERT_TRUE(client.Close(id.value()).ok());
}

TEST_F(NetServerTest, ConcurrentClientsRunFullSessions) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  const uint16_t port = server_->port();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, port, &failures] {
      auto client_or = Client::Connect("127.0.0.1", port);
      if (!client_or.ok()) {
        failures[t] = client_or.status().ToString();
        return;
      }
      Client client = std::move(client_or).value();
      const char* scenarios[] = {"twig", "join", "chain", "path"};
      const std::string scenario = scenarios[t % 4];
      service::OpenOptions options;
      options.seed = 7 + static_cast<uint64_t>(t);
      auto id = client.Open(scenario, options);
      if (!id.ok()) {
        failures[t] = id.status().ToString();
        return;
      }
      while (true) {
        auto batch = client.Ask(id.value(), 4);
        if (!batch.ok()) {
          failures[t] = batch.status().ToString();
          return;
        }
        if (batch.value().empty()) break;
        auto labels = client.OracleLabels(id.value());
        if (!labels.ok()) {
          failures[t] = labels.status().ToString();
          return;
        }
        const common::Status told = client.Tell(id.value(), labels.value());
        if (!told.ok()) {
          failures[t] = told.ToString();
          return;
        }
      }
      auto closed = client.Close(id.value());
      if (!closed.ok()) failures[t] = closed.status().ToString();
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }
  EXPECT_EQ(service_.OpenCount(), 0u);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.bad_frames, 0u);
}

TEST_F(NetServerTest, StopWhileClientsConnectedShutsDownCleanly) {
  Client client = Connect();
  auto id = client.Open("path", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  server_->Stop();
  // The connection is gone; the client reports a transport error rather
  // than hanging.
  EXPECT_FALSE(client.Ask(id.value(), 1).ok());
  // TearDown's second Stop() must be a no-op.
}

}  // namespace
}  // namespace net
}  // namespace qlearn
