// Concurrency hardening for SessionService: races Close against in-flight
// Ask/Tell/Status/OracleLabels from multiple threads. Every outcome must be
// either success or a well-defined Status (NotFound once closed,
// FailedPrecondition/InvalidArgument for protocol-state misuse) — never a
// crash, deadlock, or torn entry. The CI sanitizer job (ASan/UBSan) runs
// this test to flush out data races the assertions alone would miss.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "service/session_service.h"

namespace qlearn {
namespace service {
namespace {

using common::Status;
using common::StatusCode;

// The codes a caller may legitimately observe when racing against Close:
// the call either wins (OK), loses to Close (NotFound), or hits a
// protocol-state error because another thread moved the session first.
bool IsExpectedRaceOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInvalidArgument:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

TEST(ServiceRaceTest, CloseRacesInFlightAskTellStatus) {
  constexpr int kRounds = 20;
  constexpr int kCallers = 4;
  for (int round = 0; round < kRounds; ++round) {
    SessionService service;
    auto id_or = service.Open("join", {});
    ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
    const std::string id = id_or.value();

    std::atomic<bool> start{false};
    std::atomic<int> unexpected{0};
    std::vector<std::string> details(kCallers + 1);

    std::vector<std::thread> threads;
    for (int t = 0; t < kCallers; ++t) {
      threads.emplace_back([&, t] {
        while (!start.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 50; ++i) {
          Status outcome;
          switch ((t + i) % 4) {
            case 0: {
              auto batch = service.Ask(id, 2);
              outcome = batch.ok() ? Status::OK() : batch.status();
              break;
            }
            case 1: {
              auto labels = service.OracleLabels(id);
              if (labels.ok()) {
                outcome = service.Tell(id, labels.value());
              } else {
                outcome = labels.status();
              }
              break;
            }
            case 2: {
              auto status = service.Status(id);
              outcome = status.ok() ? Status::OK() : status.status();
              break;
            }
            case 3: {
              // Reads that scan the whole session map, concurrent with
              // the erase inside Close.
              service.ListOpen();
              service.OpenCount();
              service.Counters();
              outcome = Status::OK();
              break;
            }
          }
          if (!IsExpectedRaceOutcome(outcome)) {
            unexpected.fetch_add(1);
            details[t] = outcome.ToString();
          }
        }
      });
    }
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      auto closed = service.Close(id);
      const Status outcome = closed.ok() ? Status::OK() : closed.status();
      if (!IsExpectedRaceOutcome(outcome)) {
        unexpected.fetch_add(1);
        details[kCallers] = outcome.ToString();
      }
    });

    start.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();

    for (const auto& d : details) {
      if (!d.empty()) ADD_FAILURE() << "unexpected outcome: " << d;
    }
    ASSERT_EQ(unexpected.load(), 0);
    // Exactly one Close can have won; afterwards the handle is gone.
    EXPECT_EQ(service.OpenCount(), 0u);
    EXPECT_EQ(service.Status(id).status().code(), StatusCode::kNotFound);
  }
}

TEST(ServiceRaceTest, ConcurrentDoubleCloseHasExactlyOneWinner) {
  constexpr int kRounds = 50;
  constexpr int kClosers = 4;
  for (int round = 0; round < kRounds; ++round) {
    SessionService service;
    auto id_or = service.Open("twig", {});
    ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
    const std::string id = id_or.value();

    std::atomic<bool> start{false};
    std::atomic<int> winners{0};
    std::atomic<int> not_found{0};
    std::atomic<int> other{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClosers; ++t) {
      threads.emplace_back([&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        auto closed = service.Close(id);
        if (closed.ok()) {
          winners.fetch_add(1);
        } else if (closed.status().code() == StatusCode::kNotFound) {
          not_found.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(winners.load(), 1);
    EXPECT_EQ(not_found.load(), kClosers - 1);
    EXPECT_EQ(other.load(), 0);
  }
}

TEST(ServiceRaceTest, ParallelSessionsProgressIndependently) {
  // Threads drive disjoint sessions to completion while a churn thread
  // opens and closes unrelated ones: per-session locks must not serialize
  // or corrupt unrelated learner work.
  constexpr int kDrivers = 4;
  SessionService service;
  std::vector<std::string> failures(kDrivers + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kDrivers; ++t) {
    threads.emplace_back([&, t] {
      const char* scenarios[] = {"twig", "join", "chain", "path"};
      OpenOptions options;
      options.seed = 7 + static_cast<uint64_t>(t);
      auto id = service.Open(scenarios[t % 4], options);
      if (!id.ok()) {
        failures[t] = id.status().ToString();
        return;
      }
      while (true) {
        auto batch = service.Ask(id.value(), 4);
        if (!batch.ok()) {
          failures[t] = batch.status().ToString();
          return;
        }
        if (batch.value().empty()) break;
        auto labels = service.OracleLabels(id.value());
        if (!labels.ok()) {
          failures[t] = labels.status().ToString();
          return;
        }
        const Status told = service.Tell(id.value(), labels.value());
        if (!told.ok()) {
          failures[t] = told.ToString();
          return;
        }
      }
      auto closed = service.Close(id.value());
      if (!closed.ok()) failures[t] = closed.status().ToString();
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      auto id = service.Open("twig", {});
      if (!id.ok()) {
        failures[kDrivers] = id.status().ToString();
        return;
      }
      auto closed = service.Close(id.value());
      if (!closed.ok()) {
        failures[kDrivers] = closed.status().ToString();
        return;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < failures.size(); ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }
  EXPECT_EQ(service.OpenCount(), 0u);

  // Counter bookkeeping survives the churn: every open was closed, and
  // every successful Ask's questions were answered by a matching Tell.
  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.opens, static_cast<uint64_t>(kDrivers) + 100u);
  EXPECT_EQ(counters.closes, counters.opens);
  EXPECT_EQ(counters.questions_served, counters.labels_accepted);
}

TEST(ServiceRaceTest, ParkRacesInFlightAskTellClose) {
  // A sweeper parks the session whenever it catches it quiescent while a
  // driver replays it to completion: every driver call transparently
  // rehydrates, every outcome stays in the expected set, and the
  // hibernation counters balance (each park was undone by exactly one
  // rehydrate, none failed).
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    SessionService service;
    auto id_or = service.Open("join", {});
    ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
    const std::string id = id_or.value();

    std::atomic<bool> start{false};
    std::atomic<bool> done{false};
    std::vector<std::string> failures(2);

    std::thread parker([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!done.load(std::memory_order_acquire)) {
        const Status parked = service.Park(id);
        if (!IsExpectedRaceOutcome(parked)) {
          failures[0] = parked.ToString();
          return;
        }
      }
    });
    std::thread driver([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      while (true) {
        auto batch = service.Ask(id, 2);
        if (!batch.ok()) {
          failures[1] = batch.status().ToString();
          return;
        }
        if (batch.value().empty()) break;
        auto labels = service.OracleLabels(id);
        if (!labels.ok()) {
          failures[1] = labels.status().ToString();
          return;
        }
        const Status told = service.Tell(id, labels.value());
        if (!told.ok()) {
          failures[1] = told.ToString();
          return;
        }
      }
      auto closed = service.Close(id);
      if (!closed.ok()) failures[1] = closed.status().ToString();
    });

    start.store(true, std::memory_order_release);
    driver.join();
    done.store(true, std::memory_order_release);
    parker.join();

    EXPECT_EQ(failures[0], "") << "parker";
    EXPECT_EQ(failures[1], "") << "driver";
    const ServiceCounters counters = service.Counters();
    EXPECT_EQ(counters.hibernates, counters.rehydrates);
    EXPECT_EQ(counters.hibernate_errors, 0u);
    EXPECT_EQ(service.OpenCount(), 0u);
  }
}

TEST(ServiceRaceTest, ConcurrentFirstTouchRehydrateHasSingleWinner) {
  // Many threads touch a parked session at once: exactly one restores it
  // (the others serialize behind the entry lock and find it resident) —
  // no double-restore, no torn state, and the session still finishes
  // cleanly afterwards.
  constexpr int kRounds = 20;
  constexpr int kTouchers = 4;
  for (int round = 0; round < kRounds; ++round) {
    SessionService service;
    auto id_or = service.Open("chain", {});
    ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
    const std::string id = id_or.value();
    ASSERT_TRUE(service.Park(id).ok());
    ASSERT_EQ(service.ParkedCount(), 1u);

    std::atomic<bool> start{false};
    std::atomic<int> unexpected{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kTouchers; ++t) {
      threads.emplace_back([&, t] {
        while (!start.load(std::memory_order_acquire)) {
        }
        const Status outcome = (t % 2 == 0)
                                   ? service.Status(id).status()
                                   : service.Ask(id, 1).status();
        if (!IsExpectedRaceOutcome(outcome)) unexpected.fetch_add(1);
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(unexpected.load(), 0);
    const ServiceCounters counters = service.Counters();
    EXPECT_EQ(counters.hibernates, 1u);
    EXPECT_EQ(counters.rehydrates, 1u);
    EXPECT_EQ(counters.hibernate_errors, 0u);
    EXPECT_EQ(service.ParkedCount(), 0u);
    EXPECT_TRUE(service.Close(id).ok());
  }
}

TEST(ServiceRaceTest, ConcurrentCloseOfParkedSessionHasOneWinner) {
  constexpr int kRounds = 20;
  constexpr int kClosers = 4;
  for (int round = 0; round < kRounds; ++round) {
    SessionService service;
    auto id_or = service.Open("path", {});
    ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
    const std::string id = id_or.value();
    ASSERT_TRUE(service.Park(id).ok());

    std::atomic<bool> start{false};
    std::atomic<int> winners{0};
    std::atomic<int> not_found{0};
    std::atomic<int> other{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClosers; ++t) {
      threads.emplace_back([&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        auto closed = service.Close(id);
        if (closed.ok()) {
          winners.fetch_add(1);
        } else if (closed.status().code() == StatusCode::kNotFound) {
          not_found.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();

    // The winning Close rehydrated the parked session so Finish could run.
    EXPECT_EQ(winners.load(), 1);
    EXPECT_EQ(not_found.load(), kClosers - 1);
    EXPECT_EQ(other.load(), 0);
    const ServiceCounters counters = service.Counters();
    EXPECT_EQ(counters.rehydrates, 1u);
    EXPECT_EQ(counters.hibernate_errors, 0u);
    EXPECT_EQ(service.OpenCount(), 0u);
  }
}

}  // namespace
}  // namespace service
}  // namespace qlearn
