// Parameterized property sweeps for the twig engine: random queries against
// random documents checking (1) parser/printer round-trips, (2) selection
// vs boolean-match coherence, (3) minimization preserving semantics,
// (4) homomorphism containment soundness, and (5) evaluation agreement with
// a brute-force embedding enumerator.
#include <gtest/gtest.h>

#include <functional>

#include "common/interner.h"
#include "common/rng.h"
#include "twig/twig_containment.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/random_tree.h"

namespace qlearn {
namespace twig {
namespace {

using common::Interner;
using common::SymbolId;

/// Builds a random anchored-ish twig query over labels l0..l{k-1}.
TwigQuery RandomQuery(common::Rng* rng, Interner* interner, int alphabet) {
  TwigQuery q;
  std::vector<SymbolId> labels;
  for (int i = 0; i < alphabet; ++i) {
    std::string name = "l";
    name += std::to_string(i);
    labels.push_back(interner->Intern(name));
  }
  labels.push_back(interner->Intern("root"));

  const int path_len = 1 + static_cast<int>(rng->Uniform(4));
  QNodeId cur = 0;
  for (int i = 0; i < path_len; ++i) {
    const Axis axis =
        rng->Bernoulli(0.35) ? Axis::kDescendant : Axis::kChild;
    const SymbolId label = rng->Bernoulli(0.15) && axis == Axis::kChild
                               ? kWildcard
                               : labels[rng->Index(labels.size())];
    cur = q.AddNode(cur, axis, label);
    // Occasionally add a filter branch.
    if (rng->Bernoulli(0.4)) {
      const QNodeId f = q.AddNode(
          cur, rng->Bernoulli(0.3) ? Axis::kDescendant : Axis::kChild,
          labels[rng->Index(labels.size())]);
      if (rng->Bernoulli(0.3)) {
        q.AddNode(f, Axis::kChild, labels[rng->Index(labels.size())]);
      }
    }
  }
  q.set_selection(cur);
  return q;
}

/// Brute-force: enumerate all embeddings recursively (no DP), returning the
/// set of selected nodes.
std::vector<xml::NodeId> BruteForceEvaluate(const TwigQuery& q,
                                            const xml::XmlTree& doc) {
  std::vector<xml::NodeId> assignment(q.NumNodes(), xml::kInvalidNode);
  std::vector<bool> selected(doc.NumNodes(), false);
  std::vector<QNodeId> order;
  for (QNodeId n : q.PreOrder()) {
    if (n != 0) order.push_back(n);
  }
  std::function<void(size_t)> rec = [&](size_t idx) {
    if (idx == order.size()) {
      if (q.selection() != kInvalidQNode) {
        selected[assignment[q.selection()]] = true;
      }
      return;
    }
    const QNodeId x = order[idx];
    const QNodeId p = q.parent(x);
    std::vector<xml::NodeId> candidates;
    if (p == 0) {
      if (q.axis(x) == Axis::kChild) {
        candidates.push_back(doc.root());
      } else {
        for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
          candidates.push_back(v);
        }
      }
    } else {
      const xml::NodeId u = assignment[p];
      candidates = q.axis(x) == Axis::kChild ? doc.children(u)
                                             : doc.Descendants(u);
    }
    for (xml::NodeId v : candidates) {
      if (q.label(x) != kWildcard && q.label(x) != doc.label(v)) continue;
      assignment[x] = v;
      rec(idx + 1);
    }
    assignment[x] = xml::kInvalidNode;
  };
  rec(0);
  std::vector<xml::NodeId> out;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (selected[v]) out.push_back(v);
  }
  return out;
}

class TwigProperty : public ::testing::TestWithParam<int> {};

TEST_P(TwigProperty, EngineInvariants) {
  Interner interner;
  common::Rng rng(GetParam() * 2654435761u + 17);
  xml::RandomTreeOptions tree_options;
  tree_options.alphabet_size = 3;
  tree_options.max_depth = 4;
  tree_options.max_children = 3;

  for (int iter = 0; iter < 10; ++iter) {
    const xml::XmlTree doc =
        xml::GenerateRandomTree(tree_options, &rng, &interner);
    const TwigQuery q = RandomQuery(&rng, &interner, 3);

    // (1) Print -> parse round trip preserves structure.
    auto reparsed = ParseTwig(q.ToString(interner), &interner);
    ASSERT_TRUE(reparsed.ok()) << q.ToString(interner);
    EXPECT_TRUE(q.StructurallyEquals(reparsed.value()))
        << q.ToString(interner) << " vs "
        << reparsed.value().ToString(interner);

    // (2) Selection implies boolean match; empty selection of a matching
    // query can only happen without a selection node.
    TwigEvaluator eval(q, doc);
    const auto selected = eval.SelectedNodes();
    if (!selected.empty()) {
      EXPECT_TRUE(eval.Matches());
    }
    for (xml::NodeId v : selected) EXPECT_TRUE(eval.Selects(v));

    // (3) Evaluation agrees with brute-force embedding enumeration.
    EXPECT_EQ(selected, BruteForceEvaluate(q, doc)) << q.ToString(interner);

    // (4) Minimization preserves the selected set.
    const TwigQuery minimized = Minimize(q);
    EXPECT_LE(minimized.Size(), q.Size());
    EXPECT_EQ(Evaluate(minimized, doc), selected) << q.ToString(interner);
  }
}

TEST_P(TwigProperty, HomContainmentSoundness) {
  Interner interner;
  common::Rng rng(GetParam() * 40503 + 11);
  xml::RandomTreeOptions tree_options;
  tree_options.alphabet_size = 3;
  tree_options.max_depth = 4;

  const TwigQuery q1 = RandomQuery(&rng, &interner, 3);
  const TwigQuery q2 = RandomQuery(&rng, &interner, 3);
  if (!ContainedInByHom(q1, q2)) return;
  for (int iter = 0; iter < 10; ++iter) {
    const xml::XmlTree doc =
        xml::GenerateRandomTree(tree_options, &rng, &interner);
    const auto s1 = Evaluate(q1, doc);
    const auto s2 = Evaluate(q2, doc);
    for (xml::NodeId v : s1) {
      EXPECT_TRUE(std::find(s2.begin(), s2.end(), v) != s2.end())
          << q1.ToString(interner) << " should be contained in "
          << q2.ToString(interner);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwigProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace twig
}  // namespace qlearn
