// Robustness tests for the framed-TCP front end's parsing edge: zero-length,
// oversized, and truncated frames, malformed JSON payloads, the bounded
// per-connection buffer, and — over a real socket — that a connection stays
// usable after every class of bad frame.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/json.h"
#include "service/session_service.h"

namespace qlearn {
namespace net {
namespace {

using common::Status;
using common::StatusCode;

std::string Framed(const std::string& payload,
                   size_t max = kDefaultMaxFrameBytes) {
  std::string out;
  EXPECT_TRUE(AppendFrame(payload, max, &out));
  return out;
}

TEST(FrameTest, AppendFrameEncodesBigEndianLength) {
  std::string out;
  ASSERT_TRUE(AppendFrame("abc", kDefaultMaxFrameBytes, &out));
  ASSERT_EQ(out.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 3);
  EXPECT_EQ(out.substr(kFrameHeaderBytes), "abc");
}

TEST(FrameTest, AppendFrameRejectsEmptyAndOversizedWithoutTouchingOut) {
  std::string out = "prefix";
  EXPECT_FALSE(AppendFrame("", kDefaultMaxFrameBytes, &out));
  EXPECT_EQ(out, "prefix");
  EXPECT_FALSE(AppendFrame(std::string(9, 'x'), /*max_frame_bytes=*/8, &out));
  EXPECT_EQ(out, "prefix");
  EXPECT_TRUE(AppendFrame(std::string(8, 'x'), /*max_frame_bytes=*/8, &out));
  EXPECT_EQ(out.size(), 6 + kFrameHeaderBytes + 8);
}

TEST(FrameTest, RoundTripsOneFrame) {
  FrameReader reader;
  const std::string framed = Framed("{\"op\":\"counters\"}");
  reader.Feed(framed.data(), framed.size());
  ASSERT_TRUE(reader.HasEvent());
  FrameReader::Event event = reader.Next();
  EXPECT_EQ(event.kind, FrameReader::Event::Kind::kFrame);
  EXPECT_EQ(event.payload, "{\"op\":\"counters\"}");
  EXPECT_FALSE(reader.HasEvent());
  EXPECT_FALSE(reader.MidFrame());
  EXPECT_EQ(reader.BufferedBytes(), 0u);
}

TEST(FrameTest, ReassemblesFramesFedOneByteAtATime) {
  FrameReader reader;
  std::string stream = Framed("first") + Framed("second") + Framed("third");
  std::vector<std::string> payloads;
  for (char byte : stream) {
    reader.Feed(&byte, 1);
    while (reader.HasEvent()) {
      FrameReader::Event event = reader.Next();
      ASSERT_EQ(event.kind, FrameReader::Event::Kind::kFrame);
      payloads.push_back(event.payload);
    }
  }
  EXPECT_EQ(payloads, (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_FALSE(reader.MidFrame());
}

TEST(FrameTest, ZeroLengthFrameIsRecoverable) {
  FrameReader reader;
  const char zero_header[kFrameHeaderBytes] = {0, 0, 0, 0};
  reader.Feed(zero_header, sizeof(zero_header));
  ASSERT_TRUE(reader.HasEvent());
  FrameReader::Event bad = reader.Next();
  EXPECT_EQ(bad.kind, FrameReader::Event::Kind::kBadFrame);
  EXPECT_NE(bad.error.find("zero-length"), std::string::npos);
  // The reader resynchronizes at the next header: a good frame parses.
  const std::string good = Framed("after");
  reader.Feed(good.data(), good.size());
  ASSERT_TRUE(reader.HasEvent());
  EXPECT_EQ(reader.Next().payload, "after");
}

TEST(FrameTest, OversizedFrameIsDiscardedStreamingNotBuffered) {
  constexpr size_t kMax = 16;
  FrameReader reader(kMax);
  // Declare a 1000-byte payload against a 16-byte cap.
  const unsigned char header[kFrameHeaderBytes] = {0, 0, 0x03, 0xe8};
  reader.Feed(reinterpret_cast<const char*>(header), sizeof(header));
  ASSERT_TRUE(reader.HasEvent());
  FrameReader::Event bad = reader.Next();
  EXPECT_EQ(bad.kind, FrameReader::Event::Kind::kBadFrame);
  EXPECT_NE(bad.error.find("1000"), std::string::npos);
  // Stream the oversized body in chunks: the reader must not buffer it.
  std::string body(1000, 'x');
  for (size_t i = 0; i < body.size(); i += 100) {
    reader.Feed(body.data() + i, 100);
    EXPECT_LE(reader.BufferedBytes(), kFrameHeaderBytes + kMax);
  }
  EXPECT_FALSE(reader.MidFrame());
  // The byte after the declared body is a fresh header.
  const std::string good = Framed("ok", kMax);
  reader.Feed(good.data(), good.size());
  ASSERT_TRUE(reader.HasEvent());
  EXPECT_EQ(reader.Next().payload, "ok");
}

TEST(FrameTest, BufferedBytesNeverExceedsOneFrame) {
  constexpr size_t kMax = 64;
  FrameReader reader(kMax);
  const std::string stream = Framed(std::string(kMax, 'a'), kMax) +
                             Framed(std::string(kMax / 2, 'b'), kMax);
  for (size_t i = 0; i < stream.size(); ++i) {
    reader.Feed(stream.data() + i, 1);
    EXPECT_LE(reader.BufferedBytes(), kFrameHeaderBytes + kMax);
  }
  EXPECT_EQ(reader.EventCount(), 2u);
}

TEST(FrameTest, MidFrameDetectsTruncation) {
  FrameReader reader;
  const std::string framed = Framed("truncated payload");
  // Partial header.
  reader.Feed(framed.data(), 2);
  EXPECT_TRUE(reader.MidFrame());
  // Full header, partial payload.
  reader.Feed(framed.data() + 2, 5);
  EXPECT_TRUE(reader.MidFrame());
  EXPECT_FALSE(reader.HasEvent());
  // Rest of the payload: complete, no longer mid-frame.
  reader.Feed(framed.data() + 7, framed.size() - 7);
  EXPECT_FALSE(reader.MidFrame());
  ASSERT_TRUE(reader.HasEvent());
  EXPECT_EQ(reader.Next().payload, "truncated payload");
}

// --- Malformed JSON payloads at the protocol layer (no sockets). ---

StatusCode ErrorCodeOf(const std::string& response_frame) {
  auto parsed = ParseResponse(Request::Op::kCounters, response_frame);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString()
                           << " frame: " << response_frame;
  if (!parsed.ok()) return StatusCode::kOk;
  EXPECT_FALSE(parsed.value().status.ok()) << "frame: " << response_frame;
  return parsed.value().status.code();
}

TEST(ProtocolTest, MalformedJsonYieldsStructuredParseError) {
  service::SessionService service;
  EXPECT_EQ(ErrorCodeOf(HandleFrame(&service, "not json at all")),
            StatusCode::kParseError);
  EXPECT_EQ(ErrorCodeOf(HandleFrame(&service, "{\"op\":\"ask\"")),
            StatusCode::kParseError);
  EXPECT_EQ(ErrorCodeOf(HandleFrame(&service, "[1,2,3]")),
            StatusCode::kParseError);
  EXPECT_EQ(ErrorCodeOf(HandleFrame(&service, "{\"op\":\"warp\"}")),
            StatusCode::kParseError);
  EXPECT_EQ(ErrorCodeOf(HandleFrame(
                &service, "{\"op\":\"counters\",\"bogus\":1}")),
            StatusCode::kParseError);
  EXPECT_EQ(ErrorCodeOf(HandleFrame(
                &service, "{\"op\":\"ask\",\"id\":\"s-1\",\"k\":1}")),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Counters().errors, 1u);  // only the NotFound hit the
                                             // service; parse errors do not
}

TEST(ProtocolTest, RequestWithMoreKeysThanTheSeenMaskIsRejected) {
  // 65 keys with "op" at index 64 — past the 64-bit seen mask both strict
  // parsers use. The request must come back as a structured parse error
  // (unknown keys) on the heap and the arena dispatch paths alike, with
  // no out-of-range shift on the lookup.
  service::SessionService service;
  std::string request = "{";
  for (int i = 0; i < 64; ++i) {
    request += "\"k" + std::to_string(i) + "\":1,";
  }
  request += "\"op\":\"counters\"}";
  EXPECT_EQ(ErrorCodeOf(HandleFrame(&service, request)),
            StatusCode::kParseError);
  service::json::Arena arena;
  std::string response;
  HandleFrameInto(&service, request, &arena, &response);
  EXPECT_EQ(ErrorCodeOf(response), StatusCode::kParseError);
  EXPECT_EQ(response, HandleFrame(&service, request));
}

TEST(ProtocolTest, ErrorFrameRoundTripsStatusCode) {
  const Status in = Status::ResourceExhausted("question budget exhausted");
  auto parsed = ParseResponse(Request::Op::kAsk, SerializeError(in));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parsed.value().status.message(), "question budget exhausted");
}

// --- Over a real socket: the connection survives every bad-frame class. ---

class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendBytes(const std::string& bytes) {
    size_t pos = 0;
    while (pos < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + pos, bytes.size() - pos,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      pos += static_cast<size_t>(n);
    }
  }

  // Blocks for one complete response frame and returns its payload.
  std::string ReadResponse() {
    while (!reader_.HasEvent()) {
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while awaiting a response";
        return "";
      }
      reader_.Feed(buffer, static_cast<size_t>(n));
    }
    FrameReader::Event event = reader_.Next();
    EXPECT_EQ(event.kind, FrameReader::Event::Kind::kFrame);
    return event.payload;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

TEST(ServerRobustnessTest, ConnectionStaysUsableAfterEveryBadFrameClass) {
  service::SessionService service;
  ServerOptions options;
  options.workers = 2;
  options.max_frame_bytes = 1 << 10;
  Server server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  RawConnection conn(server.port());

  // 1. Zero-length frame: structured error, connection stays up.
  conn.SendBytes(std::string(kFrameHeaderBytes, '\0'));
  EXPECT_EQ(ErrorCodeOf(conn.ReadResponse()), StatusCode::kInvalidArgument);

  // 2. Oversized frame (declared 64 KiB against a 1 KiB cap), full body
  //    actually sent: error for the frame, then the next frame parses.
  std::string oversized;
  oversized.push_back(0);
  oversized.push_back(1);
  oversized.push_back(0);
  oversized.push_back(0);
  oversized += std::string(1 << 16, 'x');
  conn.SendBytes(oversized);
  EXPECT_EQ(ErrorCodeOf(conn.ReadResponse()), StatusCode::kInvalidArgument);

  // 3. Malformed JSON in a well-formed frame.
  conn.SendBytes(Framed("this is not json"));
  EXPECT_EQ(ErrorCodeOf(conn.ReadResponse()), StatusCode::kParseError);

  // 4. Valid request on the same connection: still served.
  conn.SendBytes(Framed("{\"op\":\"counters\"}"));
  auto parsed =
      ParseResponse(Request::Op::kCounters, conn.ReadResponse());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().status.ok())
      << parsed.value().status.ToString();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.bad_frames, 2u);       // zero-length + oversized
  EXPECT_EQ(stats.frames_received, 2u);  // malformed JSON + counters
  server.Stop();
}

TEST(ServerRobustnessTest, TruncatedFrameIsCountedOnDisconnect) {
  service::SessionService service;
  Server server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  {
    RawConnection conn(server.port());
    std::string partial = Framed("{\"op\":\"counters\"}");
    partial.resize(partial.size() - 3);  // drop the payload's tail
    conn.SendBytes(partial);
    // Destructor closes the socket mid-frame.
  }
  // The reactor notices EOF asynchronously; poll until it has.
  for (int i = 0; i < 200 && server.stats().truncated_frames == 0; ++i) {
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(server.stats().truncated_frames, 1u);
  EXPECT_EQ(server.stats().frames_received, 0u);
  server.Stop();
}

TEST(ServerRobustnessTest, PipelinedRequestsAnswerInOrder) {
  service::SessionService service;
  Server server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RawConnection conn(server.port());

  // Burst: open, bad JSON, counters — all written before reading anything.
  conn.SendBytes(Framed("{\"op\":\"open\",\"scenario\":\"twig\"}") +
                 Framed("}{") + Framed("{\"op\":\"counters\"}"));

  auto open_parsed = ParseResponse(Request::Op::kOpen, conn.ReadResponse());
  ASSERT_TRUE(open_parsed.ok()) << open_parsed.status().ToString();
  EXPECT_TRUE(open_parsed.value().status.ok());
  EXPECT_FALSE(open_parsed.value().id.empty());

  EXPECT_EQ(ErrorCodeOf(conn.ReadResponse()), StatusCode::kParseError);

  auto counters_parsed =
      ParseResponse(Request::Op::kCounters, conn.ReadResponse());
  ASSERT_TRUE(counters_parsed.ok()) << counters_parsed.status().ToString();
  EXPECT_TRUE(counters_parsed.value().status.ok());
  EXPECT_EQ(counters_parsed.value().open_sessions, 1u);
  server.Stop();
}

TEST(ServerRobustnessTest, InlineBurstPastTheQueueCapDrainsCompletely) {
  // Inline dispatch with a tiny pipelining cap: a burst far past the cap,
  // written before reading a single response, must bound the server's
  // queues (reads pause, dispatch stops at the cap) yet still answer
  // every request in order once the responses are read. Regression guard
  // for the inline-mode output-backpressure path: the shard must neither
  // queue responses without bound nor park the connection with requests
  // still waiting.
  service::SessionService service;
  ServerOptions options;
  options.workers = 0;  // inline dispatch on the shard thread
  options.max_queued_frames = 4;
  Server server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  RawConnection conn(server.port());

  constexpr int kRequests = 200;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    if (i % 2 == 0) {
      burst += Framed("{\"op\":\"counters\"}");
    } else {
      burst += Framed("{\"op\":\"status\",\"id\":\"s-" + std::to_string(i) +
                      "\"}");
    }
  }
  conn.SendBytes(burst);
  for (int i = 0; i < kRequests; ++i) {
    const std::string response = conn.ReadResponse();
    if (i % 2 == 0) {
      auto parsed = ParseResponse(Request::Op::kCounters, response);
      ASSERT_TRUE(parsed.ok()) << i << ": " << parsed.status().ToString();
      EXPECT_TRUE(parsed.value().status.ok()) << i;
    } else {
      EXPECT_EQ(ErrorCodeOf(response), StatusCode::kNotFound) << i;
    }
  }
  server.Stop();
}

TEST(BufferPoolTest, RecyclesCapacityAndEnforcesCaps) {
  BufferPool pool(/*max_buffers=*/2, /*max_buffer_bytes=*/1024);
  std::string buffer = pool.Acquire();
  EXPECT_TRUE(buffer.empty());
  buffer.assign(512, 'x');
  const size_t capacity = buffer.capacity();
  pool.Release(std::move(buffer));
  EXPECT_EQ(pool.PooledCount(), 1u);

  // The next Acquire reuses the released capacity, cleared.
  std::string reused = pool.Acquire();
  EXPECT_TRUE(reused.empty());
  EXPECT_GE(reused.capacity(), capacity);
  EXPECT_EQ(pool.PooledCount(), 0u);

  // A buffer that outgrew the per-buffer cap is dropped, not pooled.
  std::string oversized(4096, 'y');
  pool.Release(std::move(oversized));
  EXPECT_EQ(pool.PooledCount(), 0u);

  // The free list is bounded at max_buffers.
  for (int i = 0; i < 5; ++i) {
    std::string b(64, 'z');
    pool.Release(std::move(b));
  }
  EXPECT_EQ(pool.PooledCount(), 2u);

  // Capacity-less strings are not worth pooling.
  pool.Release(std::string());
  EXPECT_EQ(pool.PooledCount(), 2u);
}

TEST(BufferPoolTest, FrameReaderDrawsReassemblyBuffersFromThePool) {
  BufferPool pool(/*max_buffers=*/4, /*max_buffer_bytes=*/1024);
  FrameReader reader;
  reader.set_pool(&pool);

  // Seed the pool with one recognizable buffer.
  std::string seeded;
  seeded.reserve(256);
  pool.Release(std::move(seeded));
  ASSERT_EQ(pool.PooledCount(), 1u);

  const std::string wire = Framed("{\"op\":\"counters\"}");
  reader.Feed(wire.data(), wire.size());
  ASSERT_TRUE(reader.HasEvent());
  FrameReader::Event event = reader.Next();
  EXPECT_EQ(event.payload, "{\"op\":\"counters\"}");
  // The reassembly buffer came from the pool...
  EXPECT_EQ(pool.PooledCount(), 0u);
  // ...and the consumer hands the payload back, completing the cycle.
  pool.Release(std::move(event.payload));
  EXPECT_EQ(pool.PooledCount(), 1u);

  // Steady state: framing the same payload again reuses that one buffer.
  reader.Feed(wire.data(), wire.size());
  ASSERT_TRUE(reader.HasEvent());
  FrameReader::Event again = reader.Next();
  EXPECT_EQ(again.payload, "{\"op\":\"counters\"}");
  EXPECT_EQ(pool.PooledCount(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace qlearn
