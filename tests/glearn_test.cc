// Tests for path-query learning: the concat-pattern class (membership,
// generalization soundness, convergence), RPNI (recovers regular languages,
// consistency with samples), and the interactive path session including the
// workload strategy.
#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "common/interner.h"
#include "common/rng.h"
#include "glearn/concat_pattern.h"
#include "glearn/interactive_path.h"
#include "glearn/rpni.h"
#include "graph/geo_generator.h"

namespace qlearn {
namespace glearn {
namespace {

using common::Interner;
using common::SymbolId;

class GlearnFixture : public ::testing::Test {
 protected:
  std::vector<SymbolId> W(const std::string& letters) {
    std::vector<SymbolId> out;
    for (char c : letters) out.push_back(interner_.Intern(std::string(1, c)));
    return out;
  }

  Interner interner_;
};

TEST_F(GlearnFixture, FromWordAcceptsExactlyTheWord) {
  const ConcatPattern p = ConcatPattern::FromWord(W("abc"));
  EXPECT_TRUE(p.Accepts(W("abc")));
  EXPECT_FALSE(p.Accepts(W("ab")));
  EXPECT_FALSE(p.Accepts(W("abcc")));
  EXPECT_FALSE(p.Accepts(W("")));
}

TEST_F(GlearnFixture, AcceptsHandlesFlags) {
  // a.b?.c+
  ConcatPattern p({PathUnit{interner_.Intern("a"), false, false},
                   PathUnit{interner_.Intern("b"), true, false},
                   PathUnit{interner_.Intern("c"), false, true}});
  EXPECT_TRUE(p.Accepts(W("abc")));
  EXPECT_TRUE(p.Accepts(W("ac")));
  EXPECT_TRUE(p.Accepts(W("accc")));
  EXPECT_FALSE(p.Accepts(W("abbc")));
  EXPECT_FALSE(p.Accepts(W("a")));
}

TEST_F(GlearnFixture, GeneralizeCoversOldAndNew) {
  common::Rng rng(3);
  const char* corpus[] = {"ab", "aab", "abb", "b", "abab", "aa", ""};
  for (const char* w1 : corpus) {
    for (const char* w2 : corpus) {
      ConcatPattern p = ConcatPattern::FromWord(W(w1));
      int cost = -1;
      const ConcatPattern g = p.Generalize(W(w2), &cost);
      EXPECT_TRUE(g.Accepts(W(w1))) << w1 << " + " << w2;
      EXPECT_TRUE(g.Accepts(W(w2))) << w1 << " + " << w2;
      if (std::string(w1) == w2) {
        EXPECT_EQ(cost, 0);
      }
    }
  }
}

TEST_F(GlearnFixture, GeneralizeZeroCostWhenAccepted) {
  ConcatPattern p = ConcatPattern::FromWord(W("ab"));
  p = p.Generalize(W("aab"));  // a+ upgrade
  int cost = -1;
  p.Generalize(W("aaab"), &cost);
  EXPECT_EQ(cost, 0);
}

TEST_F(GlearnFixture, LearnConcatConvergesToRepeats) {
  auto learned = LearnConcatPattern({W("ab"), W("aab"), W("aaab")});
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned.value().ToString(interner_), "a+.b");
}

TEST_F(GlearnFixture, LearnConcatConvergesToOptionals) {
  auto learned = LearnConcatPattern({W("abc"), W("ac")});
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned.value().ToString(interner_), "a.b?.c");
}

TEST_F(GlearnFixture, ToRegexMatchesPatternSemantics) {
  auto learned = LearnConcatPattern({W("ab"), W("aab"), W("a")});
  ASSERT_TRUE(learned.ok());
  const ConcatPattern& p = learned.value();
  const automata::Dfa dfa = automata::Dfa::FromRegex(*p.ToRegex());
  common::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string s;
    const int len = static_cast<int>(rng.Uniform(5));
    for (int k = 0; k < len; ++k) s += rng.Bernoulli(0.5) ? 'a' : 'b';
    EXPECT_EQ(p.Accepts(W(s)), dfa.Accepts(W(s))) << s;
  }
}

TEST_F(GlearnFixture, LearnConcatRejectsEmptyInput) {
  EXPECT_FALSE(LearnConcatPattern({}).ok());
}

TEST_F(GlearnFixture, RpniRecoversSimpleLanguage) {
  // Target: a+ over alphabet {a, b}, with a characteristic sample (shortest
  // prefixes of the 3 minimal-DFA states, kernel extensions, and separating
  // suffixes per Oncina & García).
  auto dfa = LearnRpniDfa(
      {W("a"), W("aa")},
      {W(""), W("b"), W("ab"), W("ba"), W("bb"), W("aba"), W("baa"),
       W("bba")});
  ASSERT_TRUE(dfa.ok());
  auto target = automata::ParseRegex("a+", &interner_);
  ASSERT_TRUE(target.ok());
  EXPECT_TRUE(automata::Dfa::Equivalent(
      dfa.value(),
      automata::Dfa::FromRegex(*target.value(),
                               {interner_.Intern("b")})));
}

TEST_F(GlearnFixture, RpniConsistentWithSample) {
  common::Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::vector<SymbolId>> pos;
    std::vector<std::vector<SymbolId>> neg;
    // Random target: words with even number of a's.
    for (int i = 0; i < 25; ++i) {
      std::string s;
      const int len = static_cast<int>(rng.Uniform(6));
      int as = 0;
      for (int k = 0; k < len; ++k) {
        const char c = rng.Bernoulli(0.5) ? 'a' : 'b';
        if (c == 'a') ++as;
        s += c;
      }
      if (as % 2 == 0) {
        pos.push_back(W(s));
      } else {
        neg.push_back(W(s));
      }
    }
    auto dfa = LearnRpniDfa(pos, neg);
    ASSERT_TRUE(dfa.ok());
    for (const auto& w : pos) EXPECT_TRUE(dfa.value().Accepts(w));
    for (const auto& w : neg) EXPECT_FALSE(dfa.value().Accepts(w));
  }
}

TEST_F(GlearnFixture, RpniDetectsContradiction) {
  EXPECT_FALSE(LearnRpniDfa({W("ab")}, {W("ab")}).ok());
}

TEST_F(GlearnFixture, RpniRegexExtraction) {
  auto regex = LearnRpniRegex({W("ab"), W("aab"), W("aaab")},
                              {W(""), W("a"), W("b"), W("bb"), W("abb")});
  ASSERT_TRUE(regex.ok());
  for (const char* good : {"ab", "aab", "aaaab"}) {
    EXPECT_TRUE(
        automata::Dfa::FromRegex(*regex.value()).Accepts(W(good)))
        << good;
  }
}

class PathSessionFixture : public ::testing::Test {
 protected:
  PathSessionFixture() : g_(BuildGraph()) {}

  graph::Graph BuildGraph() {
    graph::Graph g;
    local_ = interner_.Intern("local");
    highway_ = interner_.Intern("highway");
    // A chain with mixed labels plus side roads.
    std::vector<graph::VertexId> v;
    for (int i = 0; i < 8; ++i) {
      v.push_back(g.AddVertex("c" + std::to_string(i)));
    }
    g.AddEdge(v[0], v[1], highway_, 10);
    g.AddEdge(v[1], v[2], highway_, 10);
    g.AddEdge(v[2], v[3], highway_, 10);
    g.AddEdge(v[0], v[4], local_, 3);
    g.AddEdge(v[4], v[5], local_, 3);
    g.AddEdge(v[5], v[3], local_, 3);
    g.AddEdge(v[1], v[6], local_, 4);
    g.AddEdge(v[6], v[7], highway_, 9);
    return g;
  }

  graph::PathQuery Goal(const std::string& regex) {
    auto r = automata::ParseRegex(regex, &interner_);
    EXPECT_TRUE(r.ok());
    return graph::PathQuery{r.value(), std::nullopt};
  }

  Interner interner_;
  common::SymbolId local_ = 0, highway_ = 0;
  graph::Graph g_;
};

TEST_F(PathSessionFixture, SessionLearnsHighwayPlus) {
  const graph::PathQuery goal = Goal("highway+");
  GoalPathOracle oracle(goal, g_);
  // Seed: one highway edge.
  graph::Path seed;
  seed.start = 0;
  seed.edges = {0};
  InteractivePathOptions options;
  auto result = RunInteractivePathSession(g_, seed, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
  // Learned language equals the goal language.
  EXPECT_TRUE(automata::Dfa::Equivalent(
      automata::Dfa::FromRegex(*result.value().hypothesis.ToRegex(), {local_}),
      automata::Dfa::FromRegex(*goal.regex, {local_})));
  // Interaction cost far below labeling every candidate path.
  EXPECT_LT(result.value().questions, result.value().candidate_paths / 2);
}

TEST_F(PathSessionFixture, WorkloadStrategyUsesPrior) {
  const graph::PathQuery goal = Goal("highway+");
  GoalPathOracle oracle_a(goal, g_);
  GoalPathOracle oracle_b(goal, g_);
  graph::Path seed;
  seed.start = 0;
  seed.edges = {0};

  InteractivePathOptions with;
  with.strategy = PathStrategy::kWorkload;
  auto wr = automata::ParseRegex("highway.highway*", &interner_);
  ASSERT_TRUE(wr.ok());
  with.workload.push_back(wr.value());
  auto with_result = RunInteractivePathSession(g_, seed, &oracle_a, with);
  ASSERT_TRUE(with_result.ok());

  InteractivePathOptions random;
  random.strategy = PathStrategy::kRandom;
  random.seed = 17;
  auto random_result =
      RunInteractivePathSession(g_, seed, &oracle_b, random);
  ASSERT_TRUE(random_result.ok());

  // Both converge; the workload-guided session should not ask more often
  // than random (on this instance it asks fewer or equal questions).
  EXPECT_EQ(with_result.value().conflicts, 0u);
  EXPECT_LE(with_result.value().questions, random_result.value().questions);
}

TEST_F(PathSessionFixture, SessionRejectsNegativeSeed) {
  GoalPathOracle oracle(Goal("local"), g_);
  graph::Path seed;
  seed.start = 0;
  seed.edges = {0};  // a highway edge
  EXPECT_FALSE(RunInteractivePathSession(g_, seed, &oracle, {}).ok());
}

TEST_F(PathSessionFixture, SessionTracksMaxPositiveWeight) {
  GoalPathOracle oracle(Goal("highway+"), g_);
  graph::Path seed;
  seed.start = 0;
  seed.edges = {0};
  auto result = RunInteractivePathSession(g_, seed, &oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().max_positive_weight, 10.0);
}

TEST(GeoSessionTest, LearnsOnGeneratedNetwork) {
  Interner interner;
  graph::GeoOptions gopts;
  gopts.grid_width = 4;
  gopts.grid_height = 3;
  const graph::Graph g = GenerateGeoGraph(gopts, &interner);

  auto r = automata::ParseRegex("highway+", &interner);
  ASSERT_TRUE(r.ok());
  const graph::PathQuery goal{r.value(), std::nullopt};
  GoalPathOracle oracle(goal, g);

  // Find a positive seed path (a single highway edge).
  graph::Path seed;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (interner.Name(g.edge(e).label) == "highway") {
      seed.start = g.edge(e).src;
      seed.edges = {e};
      break;
    }
  }
  if (seed.edges.empty()) GTEST_SKIP() << "no highway edge in this seed";

  InteractivePathOptions options;
  options.max_path_edges = 3;
  options.max_candidates = 800;
  auto result = RunInteractivePathSession(g, seed, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().conflicts, 0u);
  // The hypothesis agrees with the goal on every candidate path: audit.
  graph::PathQueryEvaluator goal_eval(goal, g);
  for (const graph::Path& p :
       graph::EnumeratePaths(g, options.max_path_edges,
                             options.max_candidates)) {
    EXPECT_EQ(result.value().hypothesis.Accepts(graph::PathWord(g, p)),
              goal_eval.MatchesPath(p));
  }
}

}  // namespace
}  // namespace glearn
}  // namespace qlearn
