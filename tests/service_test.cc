// Tests for the session service surface: wire-payload serving, per-session
// budget enforcement (question budget hit mid-batch, zero budgets,
// wall-clock), status-error (never assert) behavior for misbehaving clients
// (Tell after Close, mismatched label counts, Ask with answers
// outstanding), and thread-safety of N threads driving disjoint sessions.
#include "service/session_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/wire.h"
#include "session/registry.h"
#include "session/session.h"

namespace qlearn {
namespace service {
namespace {

using common::StatusCode;

/// Drives `scenario` to completion through `service` with batch size `k`
/// and returns the final stats; EXPECTs every step to succeed.
session::SessionStats DriveToCompletion(SessionService* service,
                                        const std::string& scenario, size_t k,
                                        uint64_t seed = 7) {
  OpenOptions options;
  options.seed = seed;
  auto id = service->Open(scenario, options);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (!id.ok()) return {};
  for (;;) {
    auto batch = service->Ask(id.value(), k);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok() || batch.value().empty()) break;
    auto labels = service->OracleLabels(id.value());
    EXPECT_TRUE(labels.ok()) << labels.status().ToString();
    if (!labels.ok()) break;
    EXPECT_TRUE(service->Tell(id.value(), labels.value()).ok());
  }
  auto closed = service->Close(id.value());
  EXPECT_TRUE(closed.ok()) << closed.status().ToString();
  return closed.ok() ? closed.value().stats : session::SessionStats{};
}

TEST(SessionServiceTest, ServesAllBuiltinScenariosToConvergence) {
  SessionService service;
  for (const session::ScenarioInfo& info :
       session::ScenarioRegistry::Global()->List()) {
    const session::SessionStats stats =
        DriveToCompletion(&service, info.name, 1);
    EXPECT_GT(stats.questions, 0u) << info.name;
    EXPECT_EQ(stats.conflicts, 0u) << info.name;
  }
  EXPECT_EQ(service.OpenCount(), 0u);
}

TEST(SessionServiceTest, QuestionsCarryTaggedPayloads) {
  SessionService service;
  auto id = service.Open("join");
  ASSERT_TRUE(id.ok());
  auto batch = service.Ask(id.value(), 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch.value().empty());
  for (const wire::QuestionPayload& payload : batch.value()) {
    EXPECT_EQ(payload.kind, "join");
    EXPECT_EQ(payload.ids.size(), 2u);  // (left_row, right_row)
    EXPECT_FALSE(payload.text.empty());
    // The payload survives the wire.
    auto parsed = wire::ParseQuestionPayload(wire::Serialize(payload));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value() == payload);
  }
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceTest, StatusReportsProgress) {
  SessionService service;
  auto id = service.Open("twig");
  ASSERT_TRUE(id.ok());
  auto before = service.Status(id.value());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().scenario, "twig");
  EXPECT_EQ(before.value().pending, 0u);
  EXPECT_EQ(before.value().stats.questions, 0u);
  EXPECT_FALSE(before.value().hypothesis.empty());

  auto batch = service.Ask(id.value(), 2);
  ASSERT_TRUE(batch.ok());
  auto during = service.Status(id.value());
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.value().pending, batch.value().size());
  EXPECT_EQ(during.value().stats.questions, batch.value().size());
  EXPECT_TRUE(service.Close(id.value()).ok());
}

// ---------------------------------------------------------------------------
// Budget edges: every refusal is a Status error, never an assert.

TEST(SessionServiceBudgetTest, ZeroQuestionBudgetRefusesFirstAsk) {
  SessionService service;
  OpenOptions options;
  options.budget.max_questions = 0;
  auto id = service.Open("join", options);
  ASSERT_TRUE(id.ok());
  auto batch = service.Ask(id.value(), 1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
  auto status = service.Status(id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status.value().budget_exhausted);
  // The session is still owned and closable.
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceBudgetTest, QuestionBudgetClampsMidBatch) {
  SessionService service;
  OpenOptions options;
  options.budget.max_questions = 3;
  auto id = service.Open("join", options);
  ASSERT_TRUE(id.ok());
  // Asking for 8 with 3 left serves a truncated batch of exactly 3...
  auto batch = service.Ask(id.value(), 8);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().size(), 3u);
  auto labels = service.OracleLabels(id.value());
  ASSERT_TRUE(labels.ok());
  ASSERT_TRUE(service.Tell(id.value(), labels.value()).ok());
  // ...and the next Ask is refused.
  auto refused = service.Ask(id.value(), 1);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceBudgetTest, ZeroMaxPendingIsRejectedAtOpen) {
  // A session that could never serve a question would look converged on
  // the first Ask (ok empty batch); Open must refuse the budget instead.
  SessionService service;
  OpenOptions options;
  options.budget.max_pending = 0;
  auto id = service.Open("join", options);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.OpenCount(), 0u);
}

TEST(SessionServiceBudgetTest, MaxPendingCapsTheBatch) {
  SessionService service;
  OpenOptions options;
  options.budget.max_pending = 2;
  auto id = service.Open("join", options);
  ASSERT_TRUE(id.ok());
  auto batch = service.Ask(id.value(), 100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().size(), 2u);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceBudgetTest, WallClockBudgetRefusesLateAsks) {
  SessionService service;
  OpenOptions options;
  options.budget.max_wall_seconds = 1e-9;
  auto id = service.Open("join", options);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto batch = service.Ask(id.value(), 1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceBudgetTest, UnlimitedWallClockIsTheDefault) {
  SessionService service;
  auto id = service.Open("twig");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.Ask(id.value(), 1).ok());
  EXPECT_TRUE(service.Close(id.value()).ok());
}

// ---------------------------------------------------------------------------
// Misbehaving clients get status errors.

TEST(SessionServiceErrorTest, UnknownScenarioIsNotFound) {
  SessionService service;
  auto id = service.Open("no-such-scenario");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
}

TEST(SessionServiceErrorTest, UnknownSessionIsNotFound) {
  SessionService service;
  EXPECT_EQ(service.Ask("s-bogus", 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Tell("s-bogus", {true}).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Status("s-bogus").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Close("s-bogus").status().code(), StatusCode::kNotFound);
}

TEST(SessionServiceErrorTest, TellAfterCloseIsNotFound) {
  SessionService service;
  auto id = service.Open("twig");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Ask(id.value(), 1).ok());
  ASSERT_TRUE(service.Close(id.value()).ok());
  const common::Status status = service.Tell(id.value(), {true});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // Double close too.
  EXPECT_EQ(service.Close(id.value()).status().code(), StatusCode::kNotFound);
}

TEST(SessionServiceErrorTest, TellWithoutPendingIsFailedPrecondition) {
  SessionService service;
  auto id = service.Open("twig");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service.Tell(id.value(), {true}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceErrorTest, MismatchedLabelCountIsInvalidArgument) {
  SessionService service;
  auto id = service.Open("join");
  ASSERT_TRUE(id.ok());
  auto batch = service.Ask(id.value(), 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 3u);
  EXPECT_EQ(service.Tell(id.value(), {true}).code(),
            StatusCode::kInvalidArgument);
  // The batch stays pending; answering with the right count succeeds.
  auto labels = service.OracleLabels(id.value());
  ASSERT_TRUE(labels.ok());
  EXPECT_TRUE(service.Tell(id.value(), labels.value()).ok());
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceErrorTest, AskWithAnswersOutstandingIsFailedPrecondition) {
  SessionService service;
  auto id = service.Open("join");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Ask(id.value(), 2).ok());
  EXPECT_EQ(service.Ask(id.value(), 2).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

TEST(SessionServiceErrorTest, AskZeroIsInvalidArgument) {
  SessionService service;
  auto id = service.Open("twig");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service.Ask(id.value(), 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(service.Close(id.value()).ok());
}

// ---------------------------------------------------------------------------
// Concurrency: disjoint sessions on one service behave exactly like
// single-threaded runs.

TEST(SessionServiceConcurrencyTest, DisjointSessionsMatchSingleThreadedRuns) {
  const std::vector<std::string> scenarios = {"twig", "join", "chain", "path",
                                              "twig-ambiguity"};
  // Single-threaded reference counts, one per scenario.
  SessionService reference;
  std::vector<size_t> expected;
  for (const std::string& scenario : scenarios) {
    expected.push_back(DriveToCompletion(&reference, scenario, 1).questions);
    ASSERT_GT(expected.back(), 0u) << scenario;
  }

  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 2;
  SessionService service;
  std::vector<std::vector<size_t>> got(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < kSessionsPerThread; ++round) {
          const std::string& scenario =
              scenarios[(static_cast<size_t>(t) + round) % scenarios.size()];
          OpenOptions options;
          options.seed = 7;
          auto id = service.Open(scenario, options);
          if (!id.ok()) {
            ++failures;
            return;
          }
          for (;;) {
            auto batch = service.Ask(id.value(), 1);
            if (!batch.ok()) {
              ++failures;
              return;
            }
            if (batch.value().empty()) break;
            auto labels = service.OracleLabels(id.value());
            if (!labels.ok() ||
                !service.Tell(id.value(), labels.value()).ok()) {
              ++failures;
              return;
            }
          }
          auto closed = service.Close(id.value());
          if (!closed.ok()) {
            ++failures;
            return;
          }
          got[t].push_back(closed.value().stats.questions);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.OpenCount(), 0u);
  // Each concurrent session asked exactly as many questions as the
  // single-threaded run of its scenario.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), static_cast<size_t>(kSessionsPerThread)) << t;
    for (int round = 0; round < kSessionsPerThread; ++round) {
      const size_t scenario_index =
          (static_cast<size_t>(t) + round) % scenarios.size();
      EXPECT_EQ(got[t][round], expected[scenario_index])
          << "thread " << t << " round " << round << " scenario "
          << scenarios[scenario_index];
    }
  }
}

TEST(SessionServiceConcurrencyTest, ListOpenTracksConcurrentSessions) {
  SessionService service;
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = service.Open("twig");
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  EXPECT_EQ(service.OpenCount(), 5u);
  EXPECT_EQ(service.ListOpen(), ids);  // zero-padded ids keep open order
  for (const std::string& id : ids) {
    EXPECT_TRUE(service.Close(id).ok());
  }
  EXPECT_EQ(service.OpenCount(), 0u);
}

}  // namespace
}  // namespace service
}  // namespace qlearn
