// Unit and property tests for the automata substrate: regex parsing and
// simplification, Glushkov NFAs, DFA operations, and regex extraction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "automata/regex.h"
#include "common/interner.h"
#include "common/rng.h"

namespace qlearn {
namespace automata {
namespace {

using common::Interner;
using common::SymbolId;

class RegexTest : public ::testing::Test {
 protected:
  RegexPtr Parse(const std::string& text) {
    auto r = ParseRegex(text, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : Regex::Empty();
  }

  std::vector<SymbolId> Word(const std::string& letters) {
    std::vector<SymbolId> out;
    for (char c : letters) out.push_back(interner_.Intern(std::string(1, c)));
    return out;
  }

  Interner interner_;
};

TEST_F(RegexTest, ParseSymbol) {
  RegexPtr r = Parse("a");
  EXPECT_EQ(r->op(), RegexOp::kSymbol);
  EXPECT_FALSE(r->Nullable());
}

TEST_F(RegexTest, ParseConcatAndUnion) {
  RegexPtr r = Parse("a.b|c");
  EXPECT_EQ(r->op(), RegexOp::kUnion);
  EXPECT_EQ(r->children().size(), 2u);
}

TEST_F(RegexTest, ParsePostfixOperators) {
  EXPECT_EQ(Parse("a*")->op(), RegexOp::kStar);
  EXPECT_EQ(Parse("a+")->op(), RegexOp::kPlus);
  EXPECT_EQ(Parse("a?")->op(), RegexOp::kOpt);
  EXPECT_TRUE(Parse("a*")->Nullable());
  EXPECT_FALSE(Parse("a+")->Nullable());
  EXPECT_TRUE(Parse("a?")->Nullable());
}

TEST_F(RegexTest, ParseEpsilonAndParens) {
  EXPECT_EQ(Parse("()")->op(), RegexOp::kEpsilon);
  EXPECT_EQ(Parse("(a|b).c")->op(), RegexOp::kConcat);
}

TEST_F(RegexTest, ParseCommaAsConcat) {
  RegexPtr r = Parse("a, b?, c*");
  EXPECT_EQ(r->op(), RegexOp::kConcat);
  EXPECT_EQ(r->children().size(), 3u);
}

TEST_F(RegexTest, ParseErrors) {
  EXPECT_FALSE(ParseRegex("(a", &interner_).ok());
  EXPECT_FALSE(ParseRegex("a)", &interner_).ok());
  EXPECT_FALSE(ParseRegex("*", &interner_).ok());
}

TEST_F(RegexTest, SimplificationRules) {
  // (r*)* = r*
  EXPECT_EQ(Parse("(a*)*")->op(), RegexOp::kStar);
  EXPECT_EQ(Parse("(a*)*")->children()[0]->op(), RegexOp::kSymbol);
  // (a+)? = a*
  EXPECT_EQ(Parse("(a+)?")->op(), RegexOp::kStar);
  // union dedup of identical symbols
  EXPECT_EQ(Parse("a|a")->op(), RegexOp::kSymbol);
}

TEST_F(RegexTest, ToStringRoundTrip) {
  const std::string texts[] = {"a.b.c", "a|b", "(a|b)*", "a.(b|c)+.d?",
                               "a*.b"};
  for (const std::string& text : texts) {
    RegexPtr r1 = Parse(text);
    RegexPtr r2 = Parse(r1->ToString(interner_));
    // Round-trip must preserve the language.
    EXPECT_TRUE(Dfa::Equivalent(Dfa::FromRegex(*r1), Dfa::FromRegex(*r2)))
        << text << " vs " << r1->ToString(interner_);
  }
}

TEST_F(RegexTest, AlphabetAndSize) {
  RegexPtr r = Parse("a.(b|c)*.a");
  EXPECT_EQ(r->Alphabet().size(), 3u);
  EXPECT_GE(r->Size(), 5u);
}

TEST_F(RegexTest, NfaAccepts) {
  Nfa nfa = Nfa::FromRegex(*Parse("a.b*.c"));
  EXPECT_TRUE(nfa.Accepts(Word("ac")));
  EXPECT_TRUE(nfa.Accepts(Word("abbbc")));
  EXPECT_FALSE(nfa.Accepts(Word("a")));
  EXPECT_FALSE(nfa.Accepts(Word("bc")));
  EXPECT_FALSE(nfa.Accepts(Word("")));
}

TEST_F(RegexTest, NfaEpsilonLanguage) {
  Nfa nfa = Nfa::FromRegex(*Regex::Epsilon());
  EXPECT_TRUE(nfa.Accepts({}));
  EXPECT_FALSE(nfa.Accepts(Word("a")));
}

TEST_F(RegexTest, NfaEmptyLanguage) {
  Nfa nfa = Nfa::FromRegex(*Regex::Empty());
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST_F(RegexTest, DfaMatchesNfaOnWords) {
  RegexPtr r = Parse("(a|b)*.a.b");
  Nfa nfa = Nfa::FromRegex(*r);
  Dfa dfa = Dfa::FromRegex(*r);
  common::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    std::string w;
    const int len = static_cast<int>(rng.Uniform(8));
    for (int k = 0; k < len; ++k) w += rng.Bernoulli(0.5) ? 'a' : 'b';
    EXPECT_EQ(nfa.Accepts(Word(w)), dfa.Accepts(Word(w))) << w;
  }
}

TEST_F(RegexTest, DfaEmptiness) {
  EXPECT_TRUE(Dfa::FromRegex(*Regex::Empty()).IsEmpty());
  EXPECT_FALSE(Dfa::FromRegex(*Parse("a")).IsEmpty());
  EXPECT_FALSE(Dfa::FromRegex(*Regex::Epsilon()).IsEmpty());
}

TEST_F(RegexTest, DfaShortestAccepted) {
  Dfa dfa = Dfa::FromRegex(*Parse("a.a.b|a.b"));
  auto w = dfa.ShortestAccepted();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 2u);
}

TEST_F(RegexTest, DfaEquivalence) {
  EXPECT_TRUE(Dfa::Equivalent(Dfa::FromRegex(*Parse("(a|b)*")),
                              Dfa::FromRegex(*Parse("(a*.b*)*"))));
  EXPECT_FALSE(Dfa::Equivalent(Dfa::FromRegex(*Parse("a+")),
                               Dfa::FromRegex(*Parse("a*"))));
}

TEST_F(RegexTest, DfaContainment) {
  EXPECT_TRUE(Dfa::Contains(Dfa::FromRegex(*Parse("a*")),
                            Dfa::FromRegex(*Parse("a+"))));
  EXPECT_FALSE(Dfa::Contains(Dfa::FromRegex(*Parse("a+")),
                             Dfa::FromRegex(*Parse("a*"))));
  EXPECT_TRUE(Dfa::Contains(Dfa::FromRegex(*Parse("(a|b)*")),
                            Dfa::FromRegex(*Parse("a.b.a"))));
}

TEST_F(RegexTest, DfaDifferenceWitness) {
  auto w = Dfa::DifferenceWitness(Dfa::FromRegex(*Parse("a*")),
                                  Dfa::FromRegex(*Parse("a+")));
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->empty());  // epsilon separates a* from a+
  EXPECT_FALSE(Dfa::DifferenceWitness(Dfa::FromRegex(*Parse("a+")),
                                      Dfa::FromRegex(*Parse("a*")))
                   .has_value());
}

TEST_F(RegexTest, MinimizeReducesStates) {
  // (a|b)*: minimal DFA has one state.
  Dfa m = Dfa::FromRegex(*Parse("(a|b)*")).Minimize();
  EXPECT_EQ(m.NumStates(), 1u);
  EXPECT_TRUE(m.IsAccepting(m.start()));
}

TEST_F(RegexTest, MinimizePreservesLanguage) {
  const std::string texts[] = {"a.b|a.c", "(a.b)*", "a?.b+.c*", "(a|b).(a|b)"};
  for (const std::string& text : texts) {
    Dfa d = Dfa::FromRegex(*Parse(text));
    EXPECT_TRUE(Dfa::Equivalent(d, d.Minimize())) << text;
  }
}

TEST_F(RegexTest, ToRegexPreservesLanguage) {
  const std::string texts[] = {"a",          "a.b",       "a|b",
                               "(a|b)*.c",   "a.b*.c",    "a?.b",
                               "(a.b|c.d)+", "a.(b.c)*"};
  for (const std::string& text : texts) {
    Dfa d = Dfa::FromRegex(*Parse(text));
    RegexPtr extracted = d.ToRegex();
    EXPECT_TRUE(Dfa::Equivalent(d, Dfa::FromRegex(*extracted)))
        << text << " -> " << extracted->ToString(interner_);
  }
}

// Property sweep: random regexes agree between NFA simulation and DFA, and
// survive printing, re-parsing, minimization and extraction.
class RandomRegexProperty : public ::testing::TestWithParam<int> {};

RegexPtr RandomRegex(common::Rng* rng, Interner* interner, int depth) {
  const SymbolId a = interner->Intern("a");
  const SymbolId b = interner->Intern("b");
  const SymbolId c = interner->Intern("c");
  if (depth == 0 || rng->Bernoulli(0.4)) {
    const SymbolId syms[] = {a, b, c};
    return Regex::Symbol(syms[rng->Index(3)]);
  }
  switch (rng->Uniform(5)) {
    case 0:
      return Regex::Concat({RandomRegex(rng, interner, depth - 1),
                            RandomRegex(rng, interner, depth - 1)});
    case 1:
      return Regex::Union({RandomRegex(rng, interner, depth - 1),
                           RandomRegex(rng, interner, depth - 1)});
    case 2:
      return Regex::Star(RandomRegex(rng, interner, depth - 1));
    case 3:
      return Regex::Plus(RandomRegex(rng, interner, depth - 1));
    default:
      return Regex::Opt(RandomRegex(rng, interner, depth - 1));
  }
}

TEST_P(RandomRegexProperty, PipelinePreservesLanguage) {
  Interner interner;
  common::Rng rng(GetParam());
  RegexPtr r = RandomRegex(&rng, &interner, 4);
  Dfa d = Dfa::FromRegex(*r);

  // Print -> parse round trip.
  auto reparsed = ParseRegex(r->ToString(interner), &interner);
  ASSERT_TRUE(reparsed.ok()) << r->ToString(interner);
  EXPECT_TRUE(Dfa::Equivalent(d, Dfa::FromRegex(*reparsed.value())));

  // Minimization round trip.
  EXPECT_TRUE(Dfa::Equivalent(d, d.Minimize()));

  // Extraction round trip.
  EXPECT_TRUE(Dfa::Equivalent(d, Dfa::FromRegex(*d.ToRegex())));

  // NFA and DFA agree on random words.
  Nfa nfa = Nfa::FromRegex(*r);
  for (int i = 0; i < 50; ++i) {
    std::vector<SymbolId> w;
    const int len = static_cast<int>(rng.Uniform(6));
    for (int k = 0; k < len; ++k) {
      w.push_back(interner.Intern(std::string(1, "abc"[rng.Index(3)])));
    }
    EXPECT_EQ(nfa.Accepts(w), d.Accepts(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegexProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace automata
}  // namespace qlearn
