// Unit tests for the shared candidate-frontier layer (session/frontier.h):
// the state machine, score memoization with epoch/dirty invalidation, and
// the lazy-heap greedy selection's bit-compatibility with the historical
// first-wins linear scan (tie-breaks, sentinel fallback, score decay).
#include "session/frontier.h"

#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace qlearn {
namespace session {
namespace {

using IntFrontier = Frontier<int>;

IntFrontier MakeFrontier(size_t n) {
  IntFrontier frontier;
  for (size_t k = 0; k < n; ++k) frontier.Add(static_cast<int>(k) * 10);
  return frontier;
}

TEST(FrontierStateTest, LifecycleTransitions) {
  IntFrontier f = MakeFrontier(5);
  EXPECT_EQ(f.size(), 5u);
  EXPECT_EQ(f.open_count(), 5u);
  EXPECT_EQ(f.item(2), 20);

  f.MarkAsked(0);
  EXPECT_EQ(f.state(0), CandidateState::kAsked);
  EXPECT_TRUE(f.WasAsked(0));
  EXPECT_FALSE(f.IsOpen(0));
  f.MarkLabeled(0, true);
  EXPECT_EQ(f.state(0), CandidateState::kLabeledPositive);
  EXPECT_TRUE(f.WasAsked(0));  // the asked bit survives labeling

  // Pre-seeded label: closed but never asked.
  f.MarkLabeled(1, false);
  EXPECT_EQ(f.state(1), CandidateState::kLabeledNegative);
  EXPECT_FALSE(f.WasAsked(1));

  f.MarkForced(2, false);
  EXPECT_EQ(f.state(2), CandidateState::kForcedNegative);
  EXPECT_TRUE(f.HasForcedLabel(2));
  // The one lateral transition: forced-negative can upgrade to
  // forced-positive (twig: a grown hypothesis reaches the node).
  EXPECT_TRUE(f.MarkForced(2, true));
  EXPECT_EQ(f.state(2), CandidateState::kForcedPositive);
  // ...while re-forcing an already-forced-negative stays a no-op.
  f.MarkForced(3, false);
  EXPECT_FALSE(f.MarkForced(3, false));
  EXPECT_EQ(f.state(3), CandidateState::kForcedNegative);

  EXPECT_EQ(f.open_count(), 1u);
  EXPECT_EQ(f.FirstOpen(), std::optional<size_t>(4));
}

TEST(FrontierStateTest, DiscardedQuestionCanStillBeForced) {
  // A question issued but never answered (driver discarded the batch) may
  // later be settled by propagation — the twig engine relies on this.
  IntFrontier f = MakeFrontier(2);
  f.MarkAsked(1);
  EXPECT_TRUE(f.MarkForced(1, true));
  EXPECT_EQ(f.state(1), CandidateState::kForcedPositive);
  EXPECT_TRUE(f.WasAsked(1));
  EXPECT_TRUE(f.HasForcedLabel(1));
}

TEST(FrontierStateTest, StateNames) {
  EXPECT_STREQ(CandidateStateName(CandidateState::kUnknown), "unknown");
  EXPECT_STREQ(CandidateStateName(CandidateState::kAsked), "asked");
  EXPECT_STREQ(CandidateStateName(CandidateState::kForcedPositive),
               "forced-positive");
}

TEST(FrontierMemoTest, RecomputesOnlyWhenStale) {
  IntFrontier f = MakeFrontier(3);
  int recomputes = 0;
  auto memo_fn = [&recomputes](size_t k) -> std::optional<long> {
    ++recomputes;
    return static_cast<long>(k);
  };
  EXPECT_EQ(f.MemoOf(1, memo_fn), std::optional<long>(1));
  EXPECT_EQ(f.MemoOf(1, memo_fn), std::optional<long>(1));
  EXPECT_EQ(recomputes, 1);  // cached on the second read

  f.InvalidateAll();
  EXPECT_EQ(f.MemoOf(1, memo_fn), std::optional<long>(1));
  EXPECT_EQ(recomputes, 2);  // epoch bump rescored it

  f.Invalidate(1);
  EXPECT_EQ(f.MemoOf(1, memo_fn), std::optional<long>(1));
  EXPECT_EQ(f.MemoOf(2, memo_fn), std::optional<long>(2));
  EXPECT_EQ(recomputes, 4);  // single dirty mark rescored only candidate 1

  // Settling a candidate releases its memo (never scored again); a later
  // read recomputes instead of serving the freed slot.
  f.MarkForced(2, true);
  EXPECT_EQ(f.MemoOf(2, memo_fn), std::optional<long>(2));
  EXPECT_EQ(recomputes, 5);

  // A nullopt memo ("cannot be scored") is cached like any other value.
  int failures = 0;
  auto failing = [&failures](size_t) -> std::optional<long> {
    ++failures;
    return std::nullopt;
  };
  f.InvalidateAll();
  EXPECT_FALSE(f.MemoOf(0, failing).has_value());
  EXPECT_FALSE(f.MemoOf(0, failing).has_value());
  EXPECT_EQ(failures, 1);
}

TEST(FrontierSelectTest, GreedyPicksBestScoreFirstWins) {
  IntFrontier f = MakeFrontier(5);
  const std::vector<long> scores = {3, 7, 7, 1, 6};
  auto score_of = [&scores](size_t k) -> std::optional<long> {
    return scores[k];
  };
  // 7 is the max; index 1 beats the equal-scored index 2 (first wins).
  EXPECT_EQ(f.SelectBest(0L, score_of), std::optional<size_t>(1));
  f.MarkAsked(1);
  // With 1 closed, the tie-holder at index 2 is the pick.
  EXPECT_EQ(f.SelectBest(0L, score_of), std::optional<size_t>(2));
}

TEST(FrontierSelectTest, SentinelFallsBackToFirstOpen) {
  IntFrontier f = MakeFrontier(3);
  auto zero = [](size_t) -> std::optional<long> { return 0; };
  // Nothing strictly beats the sentinel: the first open candidate wins,
  // matching the historical scans' default pick.
  EXPECT_EQ(f.SelectBest(0L, zero), std::optional<size_t>(0));
  f.MarkForced(0, false);
  EXPECT_EQ(f.SelectBest(0L, zero), std::optional<size_t>(1));

  // Unscorable candidates fall back the same way.
  auto none = [](size_t) -> std::optional<long> { return std::nullopt; };
  f.InvalidateAll();
  EXPECT_EQ(f.SelectBest(0L, none), std::optional<size_t>(1));
}

TEST(FrontierSelectTest, EmptyAndExhaustedFrontiers) {
  IntFrontier empty;
  common::Rng rng(7);
  auto one = [](size_t) -> std::optional<long> { return 1; };
  EXPECT_EQ(empty.SelectBest(0L, one), std::nullopt);
  EXPECT_EQ(empty.SelectUniform(&rng), std::nullopt);

  IntFrontier f = MakeFrontier(2);
  f.MarkForced(0, true);
  f.MarkAsked(1);
  EXPECT_EQ(f.SelectBest(0L, one), std::nullopt);
  EXPECT_EQ(f.SelectUniform(&rng), std::nullopt);
  EXPECT_EQ(f.FirstOpen(), std::nullopt);
}

TEST(FrontierSelectTest, HeapTracksScoreDecayWithinEpoch) {
  // Scores that shrink with the open set (the twig impact count) must not
  // leave a stale heap top in charge: close the support of the leader and
  // the runner-up must win the next pick without any invalidation call.
  IntFrontier f = MakeFrontier(4);
  auto impact = [&f](size_t k) -> std::optional<long> {
    // Candidate 0's score counts the open candidates among {1, 2}; the
    // others have fixed low scores.
    if (k == 0) {
      return static_cast<long>(f.IsOpen(1)) + static_cast<long>(f.IsOpen(2));
    }
    return k == 3 ? 1L : 0L;
  };
  EXPECT_EQ(f.SelectBest(0L, impact), std::optional<size_t>(0));  // score 2
  f.MarkForced(1, false);
  f.MarkForced(2, false);
  // Candidate 0 decayed to 0; candidate 3 (score 1) must now win.
  EXPECT_EQ(f.SelectBest(0L, impact), std::optional<size_t>(3));
}

TEST(FrontierSelectTest, InvalidateRescoresARaisedCandidate) {
  // Score *raises* are only legal through Invalidate(k) — verify the dirty
  // mark reschedules the candidate at its new score.
  IntFrontier f = MakeFrontier(3);
  std::vector<long> scores = {1, 2, 3};
  auto score_of = [&scores](size_t k) -> std::optional<long> {
    return scores[k];
  };
  EXPECT_EQ(f.SelectBest(0L, score_of), std::optional<size_t>(2));
  scores[0] = 10;
  f.Invalidate(0);
  EXPECT_EQ(f.SelectBest(0L, score_of), std::optional<size_t>(0));
}

TEST(FrontierSelectTest, PairScoresCompareLexicographically) {
  using Pair = std::pair<long, long>;
  Frontier<int, Pair> f;
  for (int k = 0; k < 3; ++k) f.Add(k);
  const std::vector<Pair> scores = {{1, 9}, {2, 0}, {2, -1}};
  auto score_of = [&scores](size_t k) -> std::optional<Pair> {
    return scores[k];
  };
  EXPECT_EQ(f.SelectBest(Pair{0, 0}, score_of), std::optional<size_t>(1));
}

TEST(FrontierSelectTest, UniformMatchesAscendingOpenScan) {
  // SelectUniform must draw exactly once on the open count and index the
  // open candidates in ascending order — the historical kRandom shape.
  IntFrontier f = MakeFrontier(6);
  f.MarkAsked(0);
  f.MarkForced(3, true);
  common::Rng pick_rng(42);
  common::Rng ref_rng(42);
  for (int round = 0; round < 3; ++round) {
    std::vector<size_t> open;
    for (size_t k = 0; k < f.size(); ++k) {
      if (f.IsOpen(k)) open.push_back(k);
    }
    const size_t want = open[ref_rng.Index(open.size())];
    EXPECT_EQ(f.SelectUniform(&pick_rng), std::optional<size_t>(want));
  }
}

TEST(FrontierSelectTest, StrategyObjectsDriveTheFrontier) {
  IntFrontier f = MakeFrontier(3);
  common::Rng rng(7);
  const std::vector<long> scores = {5, 9, 2};
  auto greedy = Greedy<long>(0, [&scores](size_t k) -> std::optional<long> {
    return scores[k];
  });
  EXPECT_EQ(f.Select(greedy, &rng), std::optional<size_t>(1));
  EXPECT_TRUE(f.Select(UniformRandomStrategy{}, &rng).has_value());
}

}  // namespace
}  // namespace session
}  // namespace qlearn
