// Tests for twig containment (homomorphism and canonical-model based),
// equivalence, and minimization — cross-validated on random documents.
#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "twig/twig_containment.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/random_tree.h"

namespace qlearn {
namespace twig {
namespace {

class ContainmentFixture : public ::testing::Test {
 protected:
  TwigQuery Q(const std::string& text) {
    auto q = ParseTwig(text, &interner_);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    return q.ok() ? std::move(q).value() : TwigQuery();
  }

  common::Interner interner_;
};

TEST_F(ContainmentFixture, HomSelfContainment) {
  for (const char* text : {"/a/b", "//a[b]/c", "/a/*/b", "//a//b[c][d/e]"}) {
    const TwigQuery q = Q(text);
    EXPECT_TRUE(ContainedInByHom(q, q)) << text;
  }
}

TEST_F(ContainmentFixture, FilterRemovalGeneralizes) {
  const TwigQuery specific = Q("/a[x]/b");
  const TwigQuery general = Q("/a/b");
  EXPECT_TRUE(ContainedInByHom(specific, general));
  EXPECT_FALSE(ContainedInByHom(general, specific));
}

TEST_F(ContainmentFixture, ChildRefinesDescendant) {
  EXPECT_TRUE(ContainedInByHom(Q("/a/b"), Q("/a//b")));
  EXPECT_FALSE(ContainedInByHom(Q("/a//b"), Q("/a/b")));
  EXPECT_TRUE(ContainedInByHom(Q("//a/b//c"), Q("//a//c")));
}

TEST_F(ContainmentFixture, LabelRefinesWildcard) {
  EXPECT_TRUE(ContainedInByHom(Q("/a/b"), Q("/a/*")));
  EXPECT_FALSE(ContainedInByHom(Q("/a/*"), Q("/a/b")));
}

TEST_F(ContainmentFixture, SelectionMustAlign) {
  // Same tree shape, different selected node.
  EXPECT_FALSE(ContainedInByHom(Q("/a/b"), Q("/a[b]")));
  EXPECT_FALSE(ContainedInByHom(Q("/a[b]"), Q("/a/b")));
}

TEST_F(ContainmentFixture, RootAnchoringMatters) {
  EXPECT_TRUE(ContainedInByHom(Q("/a/b"), Q("//a/b")));
  EXPECT_FALSE(ContainedInByHom(Q("//a/b"), Q("/a/b")));
  EXPECT_TRUE(ContainedInByHom(Q("/r//a"), Q("//a")));
}

TEST_F(ContainmentFixture, ExactAgreesWithHomOnWildcardFreeQueries) {
  const char* queries[] = {"/a/b",      "/a//b",      "//a[b]/c",
                           "/a[b][c]",  "//a//b",     "/a/b[c]/d",
                           "//a[b/c]"};
  for (const char* t1 : queries) {
    for (const char* t2 : queries) {
      const TwigQuery q1 = Q(t1);
      const TwigQuery q2 = Q(t2);
      EXPECT_EQ(ContainedInByHom(q1, q2),
                ContainedInExact(q1, q2, &interner_))
          << t1 << " vs " << t2;
    }
  }
}

TEST_F(ContainmentFixture, ExactHandlesWildcardSubtleties) {
  // /a//b ⊆ /a/*//b ∪ ... classical: //* examples where hom is incomplete
  // are rare; here we check exact results on wildcard queries directly.
  EXPECT_TRUE(ContainedInExact(Q("/a/b/c"), Q("/a/*/c"), &interner_));
  EXPECT_TRUE(ContainedInExact(Q("/a/*/c"), Q("/a//c"), &interner_));
  EXPECT_FALSE(ContainedInExact(Q("/a//c"), Q("/a/*/c"), &interner_));
  // a//c with at least two intermediate levels: /a/*/*//c ⊆ /a/*//c.
  EXPECT_TRUE(ContainedInExact(Q("/a/*/*//c"), Q("/a/*//c"), &interner_));
}

TEST_F(ContainmentFixture, ContainmentSoundOnRandomDocs) {
  // If q1 ⊆ q2 is claimed (by hom), then on every doc the selected sets obey
  // inclusion.
  const char* queries[] = {"//a",        "//a/b",    "//a//b", "//a[b]/b",
                           "//a[b][c]",  "/root//a", "//a/*",  "//a[.//b]/c"};
  common::Rng rng(21);
  xml::RandomTreeOptions opts;
  opts.alphabet_size = 3;  // labels l0,l1,l2; plus "root"
  // Rename: use labels a,b,c to match the queries.
  common::Interner& in = interner_;
  for (int iter = 0; iter < 30; ++iter) {
    xml::XmlTree doc;
    // Build a random doc over labels {root,a,b,c}.
    const common::SymbolId syms[] = {in.Intern("a"), in.Intern("b"),
                                     in.Intern("c")};
    doc.AddRoot(in.Intern("root"));
    std::vector<xml::NodeId> pool{doc.root()};
    const int n = 3 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < n; ++i) {
      const xml::NodeId parent = pool[rng.Index(pool.size())];
      pool.push_back(doc.AddChild(parent, syms[rng.Index(3)]));
    }
    for (const char* t1 : queries) {
      for (const char* t2 : queries) {
        const TwigQuery q1 = Q(t1);
        const TwigQuery q2 = Q(t2);
        if (!ContainedInByHom(q1, q2)) continue;
        const auto s1 = Evaluate(q1, doc);
        const auto s2 = Evaluate(q2, doc);
        for (xml::NodeId v : s1) {
          EXPECT_TRUE(std::find(s2.begin(), s2.end(), v) != s2.end())
              << t1 << " ⊆ " << t2 << " violated";
        }
      }
    }
  }
}

TEST_F(ContainmentFixture, EquivalenceVariants) {
  EXPECT_TRUE(EquivalentByHom(Q("/a[b]/c"), Q("/a[b]/c")));
  EXPECT_TRUE(EquivalentExact(Q("/a[b][b]/c"), Q("/a[b]/c"), &interner_));
  EXPECT_FALSE(EquivalentByHom(Q("/a/b"), Q("/a//b")));
}

TEST_F(ContainmentFixture, MinimizeRemovesDuplicateFilters) {
  const TwigQuery q = Minimize(Q("/a[b][b]/c"));
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_TRUE(EquivalentByHom(q, Q("/a[b]/c")));
}

TEST_F(ContainmentFixture, MinimizeRemovesImpliedFilters) {
  // [b] is implied by [b/c].
  const TwigQuery q = Minimize(Q("/a[b][b/c]/d"));
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_TRUE(EquivalentByHom(q, Q("/a[b/c]/d")));
}

TEST_F(ContainmentFixture, MinimizeRemovesDescendantImpliedByChild) {
  // [.//b] is implied by [b].
  const TwigQuery q = Minimize(Q("/a[.//b][b]/c"));
  EXPECT_TRUE(EquivalentByHom(q, Q("/a[b]/c")));
  EXPECT_EQ(q.Size(), 3u);
}

TEST_F(ContainmentFixture, MinimizeKeepsNonRedundantFilters) {
  const TwigQuery q = Minimize(Q("/a[b][c]/d"));
  EXPECT_EQ(q.Size(), 4u);
}

TEST_F(ContainmentFixture, MinimizePreservesSemanticsOnDocs) {
  common::Rng rng(5);
  const char* queries[] = {"/root[a][a/b]/c", "//a[b][.//b]/c",
                           "//a[b/c][b]/d", "/root//a[b][c][b]"};
  common::Interner& in = interner_;
  for (const char* text : queries) {
    const TwigQuery q = Q(text);
    const TwigQuery m = Minimize(q);
    EXPECT_LE(m.Size(), q.Size());
    for (int iter = 0; iter < 20; ++iter) {
      xml::XmlTree doc;
      const common::SymbolId syms[] = {in.Intern("a"), in.Intern("b"),
                                       in.Intern("c"), in.Intern("d")};
      doc.AddRoot(in.Intern("root"));
      std::vector<xml::NodeId> pool{doc.root()};
      for (int i = 0; i < 12; ++i) {
        const xml::NodeId parent = pool[rng.Index(pool.size())];
        pool.push_back(doc.AddChild(parent, syms[rng.Index(4)]));
      }
      EXPECT_EQ(Evaluate(q, doc), Evaluate(m, doc)) << text;
    }
  }
}

TEST_F(ContainmentFixture, CanonicalModelsSatisfyTheQuery) {
  for (const char* text : {"/a/b", "//a//b", "/a[b]//c", "//a[b/c]/d"}) {
    const TwigQuery q = Q(text);
    const auto models = CanonicalModels(q, 2, &interner_);
    EXPECT_FALSE(models.empty()) << text;
    for (const auto& [doc, sel] : models) {
      TwigEvaluator eval(q, doc);
      EXPECT_TRUE(eval.Selects(sel)) << text << "\n" << doc.ToXml(interner_);
    }
  }
}

}  // namespace
}  // namespace twig
}  // namespace qlearn
