#include "transcript_harness.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace qlearn {
namespace testing {

namespace {

using common::Result;
using common::Status;
using service::CloseResult;
using service::OpenOptions;
using service::SessionService;
using service::wire::QuestionPayload;
using service::wire::Serialize;
using service::wire::TranscriptEvent;

}  // namespace

const std::vector<TranscriptCase>& ConformanceCases() {
  // One case per paper experiment with an interactive-session analogue,
  // plus one per non-default selection strategy ("s_" cases) so every
  // strategy the shared frontier drives is replay-checked, not only the
  // defaults the experiment cases exercise (twig kGreedyImpact, join and
  // chain kSplitHalf, path kFrontier).
  // Batch sizes differ on purpose: 1 pins the ask/answer ping-pong flow,
  // >1 pins the batched flow (whose question sequences legitimately differ
  // from one-at-a-time — propagation runs once per batch).
  static const std::vector<TranscriptCase>* cases =
      new std::vector<TranscriptCase>{
          {"e1_twig", "twig", 7, 1},
          {"e4_twig_ambiguity", "twig-ambiguity", 7, 1},
          {"e6_join", "join", 7, 4},
          {"e7_path", "path", 7, 1},
          {"e12_chain", "chain", 7, 2},
          {"s_twig_random", "twig-random", 7, 1},
          {"s_join_random", "join-random", 7, 4},
          {"s_join_lattice", "join-lattice", 7, 1},
          {"s_chain_random", "chain-random", 7, 2},
          {"s_path_random", "path-random", 7, 1},
          {"s_path_workload", "path-workload", 7, 1},
      };
  return *cases;
}

Result<std::vector<TranscriptEvent>> RecordTranscript(SessionService* service,
                                                      const TranscriptCase& c) {
  OpenOptions options;
  options.seed = c.seed;

  std::vector<TranscriptEvent> events;
  TranscriptEvent open;
  open.kind = TranscriptEvent::Kind::kOpen;
  open.scenario = c.scenario;
  open.seed = c.seed;
  open.max_questions = options.budget.max_questions;
  events.push_back(std::move(open));

  QLEARN_ASSIGN_OR_RETURN(const std::string id,
                          service->Open(c.scenario, options));
  for (;;) {
    QLEARN_ASSIGN_OR_RETURN(const std::vector<QuestionPayload> batch,
                            service->Ask(id, c.batch));
    if (batch.empty()) break;
    TranscriptEvent ask;
    ask.kind = TranscriptEvent::Kind::kAsk;
    ask.requested = c.batch;
    ask.questions = batch;
    events.push_back(std::move(ask));

    QLEARN_ASSIGN_OR_RETURN(const std::vector<bool> labels,
                            service->OracleLabels(id));
    TranscriptEvent tell;
    tell.kind = TranscriptEvent::Kind::kTell;
    tell.labels = labels;
    events.push_back(std::move(tell));
    QLEARN_RETURN_IF_ERROR(service->Tell(id, labels));
  }
  QLEARN_ASSIGN_OR_RETURN(const CloseResult closed, service->Close(id));
  TranscriptEvent close;
  close.kind = TranscriptEvent::Kind::kClose;
  close.hypothesis = closed.hypothesis;
  close.stats = closed.stats;
  events.push_back(std::move(close));
  return events;
}

Result<std::vector<std::string>> ReplayTranscript(
    SessionService* service, const std::vector<TranscriptEvent>& events) {
  if (events.empty() || events[0].kind != TranscriptEvent::Kind::kOpen) {
    return Status::InvalidArgument("transcript must start with an open event");
  }
  OpenOptions options;
  options.seed = events[0].seed;
  options.budget.max_questions = events[0].max_questions;
  QLEARN_ASSIGN_OR_RETURN(const std::string id,
                          service->Open(events[0].scenario, options));

  std::vector<std::string> mismatches;
  bool closed = false;
  for (size_t i = 1; i < events.size() && mismatches.empty(); ++i) {
    const TranscriptEvent& event = events[i];
    const std::string where = "event #" + std::to_string(i);
    switch (event.kind) {
      case TranscriptEvent::Kind::kOpen:
        (void)service->Close(id);
        return Status::InvalidArgument("transcript has a second open event");
      case TranscriptEvent::Kind::kAsk: {
        auto served = service->Ask(id, event.requested);
        if (!served.ok()) {
          mismatches.push_back(where + ": Ask failed: " +
                               served.status().ToString());
          break;
        }
        if (served.value().size() != event.questions.size()) {
          mismatches.push_back(
              where + ": served " + std::to_string(served.value().size()) +
              " question(s), transcript has " +
              std::to_string(event.questions.size()));
          break;
        }
        for (size_t j = 0; j < served.value().size(); ++j) {
          const std::string got = Serialize(served.value()[j]);
          const std::string want = Serialize(event.questions[j]);
          if (got != want) {
            mismatches.push_back(where + " question " + std::to_string(j) +
                                 ": got " + got + ", want " + want);
          }
        }
        break;
      }
      case TranscriptEvent::Kind::kTell: {
        const Status status = service->Tell(id, event.labels);
        if (!status.ok()) {
          mismatches.push_back(where + ": Tell failed: " + status.ToString());
        }
        break;
      }
      case TranscriptEvent::Kind::kClose: {
        auto result = service->Close(id);
        if (!result.ok()) {
          mismatches.push_back(where + ": Close failed: " +
                               result.status().ToString());
          break;
        }
        closed = true;
        const std::string got_hypothesis =
            Serialize(result.value().hypothesis);
        const std::string want_hypothesis = Serialize(event.hypothesis);
        if (got_hypothesis != want_hypothesis) {
          mismatches.push_back(where + " hypothesis: got " + got_hypothesis +
                               ", want " + want_hypothesis);
        }
        const std::string got_stats = Serialize(result.value().stats);
        const std::string want_stats = Serialize(event.stats);
        if (got_stats != want_stats) {
          mismatches.push_back(where + " stats: got " + got_stats +
                               ", want " + want_stats);
        }
        break;
      }
    }
  }
  if (!closed) (void)service->Close(id);  // release the handle on bail-out
  return mismatches;
}

std::string GoldenPath(const std::string& name) {
  return std::string(QLEARN_GOLDEN_DIR) + "/" + name + ".jsonl";
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << content;
  out.close();
  if (!out) return Status::Internal("failed writing " + path);
  return Status::OK();
}

}  // namespace testing
}  // namespace qlearn
