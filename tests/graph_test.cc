// Tests for the graph substrate: multigraph structure, path utilities,
// regular path query evaluation (with weight bounds and witnesses), path
// enumeration, and the geo generator.
#include <gtest/gtest.h>

#include <set>

#include "automata/dfa.h"
#include "common/interner.h"
#include "graph/geo_generator.h"
#include "graph/graph.h"
#include "graph/path_query.h"

namespace qlearn {
namespace graph {
namespace {

using common::Interner;

class GraphFixture : public ::testing::Test {
 protected:
  GraphFixture() {
    a_ = g_.AddVertex("A");
    b_ = g_.AddVertex("B");
    c_ = g_.AddVertex("C");
    d_ = g_.AddVertex("D");
    local_ = interner_.Intern("local");
    highway_ = interner_.Intern("highway");
    g_.AddEdge(a_, b_, local_, 3);
    g_.AddEdge(b_, c_, highway_, 10);
    g_.AddEdge(c_, d_, highway_, 10);
    g_.AddEdge(a_, d_, local_, 50);
  }

  PathQuery Query(const std::string& regex,
                  std::optional<double> bound = std::nullopt) {
    auto r = automata::ParseRegex(regex, &interner_);
    EXPECT_TRUE(r.ok()) << regex;
    return PathQuery{r.value(), bound};
  }

  Graph g_;
  VertexId a_, b_, c_, d_;
  common::SymbolId local_, highway_;
  Interner interner_;
};

TEST_F(GraphFixture, StructureBasics) {
  EXPECT_EQ(g_.NumVertices(), 4u);
  EXPECT_EQ(g_.NumEdges(), 4u);
  EXPECT_EQ(g_.VertexName(a_), "A");
  EXPECT_EQ(g_.OutEdges(a_).size(), 2u);
  EXPECT_EQ(g_.EdgeAlphabet().size(), 2u);
}

TEST_F(GraphFixture, BidirectionalAddsTwoEdges) {
  Graph g;
  const VertexId x = g.AddVertex("x");
  const VertexId y = g.AddVertex("y");
  g.AddBidirectional(x, y, local_, 2);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutEdges(x).size(), 1u);
  EXPECT_EQ(g.OutEdges(y).size(), 1u);
}

TEST_F(GraphFixture, PathUtilities) {
  Path p;
  p.start = a_;
  p.edges = {0, 1};  // A -local-> B -highway-> C
  EXPECT_EQ(PathWord(g_, p),
            (std::vector<common::SymbolId>{local_, highway_}));
  EXPECT_DOUBLE_EQ(PathWeight(g_, p), 13);
  EXPECT_EQ(PathEnd(g_, p), c_);
  EXPECT_EQ(PathToString(g_, p, interner_), "A -local-> B -highway-> C");
}

TEST_F(GraphFixture, EvalSimpleConcat) {
  PathQueryEvaluator eval(Query("local.highway"), g_);
  EXPECT_TRUE(eval.Matches(a_, c_));
  EXPECT_FALSE(eval.Matches(a_, d_));
  EXPECT_FALSE(eval.Matches(b_, c_));  // starts with highway
  EXPECT_EQ(eval.EvalFrom(a_), std::vector<VertexId>{c_});
}

TEST_F(GraphFixture, EvalStarAndPlus) {
  PathQueryEvaluator star(Query("local.highway*"), g_);
  EXPECT_TRUE(star.Matches(a_, b_));  // zero highways
  EXPECT_TRUE(star.Matches(a_, c_));
  EXPECT_TRUE(star.Matches(a_, d_));  // via B, C or the direct local edge? no:
  // direct A->D is 'local' alone, accepted by local.highway* with 0 highways.
  PathQueryEvaluator plus(Query("local.highway+"), g_);
  EXPECT_FALSE(plus.Matches(a_, b_));
  EXPECT_TRUE(plus.Matches(a_, d_));  // A-B-C-D
}

TEST_F(GraphFixture, EvalEpsilonSelectsSelf) {
  PathQueryEvaluator eval(Query("highway*"), g_);
  EXPECT_TRUE(eval.Matches(a_, a_));  // empty path
}

TEST_F(GraphFixture, WeightBoundFiltersPaths) {
  // A to D: local alone = 50; local.highway+ = 23.
  PathQueryEvaluator cheap(Query("local.highway+", 25.0), g_);
  EXPECT_TRUE(cheap.Matches(a_, d_));
  PathQueryEvaluator strict(Query("local.highway+", 20.0), g_);
  EXPECT_FALSE(strict.Matches(a_, d_));
  PathQueryEvaluator direct(Query("local", 49.0), g_);
  EXPECT_FALSE(direct.Matches(a_, d_));
  EXPECT_TRUE(direct.Matches(a_, b_));
}

TEST_F(GraphFixture, EvalAllPairs) {
  PathQueryEvaluator eval(Query("highway"), g_);
  const auto pairs = eval.EvalAllPairs();
  EXPECT_EQ(pairs.size(), 2u);  // B->C and C->D
}

TEST_F(GraphFixture, WitnessReturnsMinWeightPath) {
  PathQueryEvaluator eval(Query("local.highway*"), g_);
  auto witness = eval.Witness(a_, d_);
  ASSERT_TRUE(witness.has_value());
  // Min-weight matching path is A-B-C-D (23) not A-D (50).
  EXPECT_EQ(witness->edges.size(), 3u);
  EXPECT_DOUBLE_EQ(PathWeight(g_, *witness), 23);
  EXPECT_TRUE(eval.MatchesPath(*witness));
  EXPECT_FALSE(eval.Witness(b_, a_).has_value());
}

TEST_F(GraphFixture, MatchesPathChecksWordAndWeight) {
  Path p;
  p.start = a_;
  p.edges = {0, 1};
  EXPECT_TRUE(PathQueryEvaluator(Query("local.highway"), g_).MatchesPath(p));
  EXPECT_FALSE(PathQueryEvaluator(Query("highway.local"), g_).MatchesPath(p));
  EXPECT_FALSE(
      PathQueryEvaluator(Query("local.highway", 10.0), g_).MatchesPath(p));
}

TEST_F(GraphFixture, EnumeratePathsIsSimpleAndBounded) {
  const auto paths = EnumeratePaths(g_, 3, 1000);
  EXPECT_FALSE(paths.empty());
  for (const Path& p : paths) {
    EXPECT_LE(p.edges.size(), 3u);
    EXPECT_GE(p.edges.size(), 1u);
    // No repeated vertices.
    std::set<VertexId> seen{p.start};
    VertexId cur = p.start;
    for (EdgeId e : p.edges) {
      EXPECT_EQ(g_.edge(e).src, cur);
      cur = g_.edge(e).dst;
      EXPECT_TRUE(seen.insert(cur).second);
    }
  }
  EXPECT_EQ(EnumeratePaths(g_, 3, 5).size(), 5u);
}

TEST(GeoGeneratorTest, BuildsConnectedGridWithLabels) {
  Interner interner;
  GeoOptions opts;
  const Graph g = GenerateGeoGraph(opts, &interner);
  EXPECT_EQ(g.NumVertices(),
            static_cast<size_t>(opts.grid_width * opts.grid_height));
  EXPECT_GT(g.NumEdges(), 0u);
  // Labels drawn from the road vocabulary.
  for (common::SymbolId label : g.EdgeAlphabet()) {
    const std::string& name = interner.Name(label);
    EXPECT_TRUE(name == "local" || name == "highway" || name == "ferry");
  }
  // Grid connectivity: every vertex reachable from vertex 0 via any labels.
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> stack{0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (EdgeId e : g.OutEdges(v)) {
      const VertexId w = g.edge(e).dst;
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  EXPECT_EQ(count, g.NumVertices());
}

TEST(GeoGeneratorTest, DeterministicBySeed) {
  Interner i1, i2;
  GeoOptions opts;
  const Graph a = GenerateGeoGraph(opts, &i1);
  const Graph b = GenerateGeoGraph(opts, &i2);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

}  // namespace
}  // namespace graph
}  // namespace qlearn
