// E7 — the paper's geographical use case (§3): interactive learning of path
// queries on road networks, with the workload-priority heuristic ("previous
// users wanted highway-only paths, so ask about such paths first"). We scale
// the network and compare strategies; a second table compares the
// positive-only concat-class learner against RPNI (positives + negatives).
#include <cstdio>

#include "automata/dfa.h"
#include "benchlib/experiment_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "glearn/interactive_path.h"
#include "glearn/rpni.h"
#include "graph/geo_generator.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

const char* StrategyName(glearn::PathStrategy s) {
  switch (s) {
    case glearn::PathStrategy::kRandom:
      return "random";
    case glearn::PathStrategy::kFrontier:
      return "frontier";
    case glearn::PathStrategy::kWorkload:
      return "workload";
  }
  return "?";
}

}  // namespace

int main() {
  common::Interner interner;
  std::printf("E7: interactive path-query learning on road networks\n"
              "(goal: highway+; workload prior: highway.highway*)\n\n");

  common::TablePrinter table({"grid", "candidate paths", "strategy",
                              "questions", "forced + / -", "goal recovered"});
  for (const auto& [w, h] : std::vector<std::pair<int, int>>{
           {4, 3}, {6, 5}, {8, 6}}) {
    graph::GeoOptions geo;
    geo.seed = static_cast<uint64_t>(w * 100 + h);
    geo.grid_width = w;
    geo.grid_height = h;
    const graph::Graph g = graph::GenerateGeoGraph(geo, &interner);

    auto goal_regex = automata::ParseRegex("highway+", &interner);
    if (!goal_regex.ok()) continue;
    const graph::PathQuery goal{goal_regex.value(), std::nullopt};

    graph::Path seed;
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      if (interner.Name(g.edge(e).label) == "highway") {
        seed.start = g.edge(e).src;
        seed.edges = {e};
        break;
      }
    }
    if (seed.edges.empty()) continue;

    for (glearn::PathStrategy strategy :
         {glearn::PathStrategy::kRandom, glearn::PathStrategy::kFrontier,
          glearn::PathStrategy::kWorkload}) {
      glearn::GoalPathOracle oracle(goal, g);
      glearn::InteractivePathOptions session;
      session.strategy = strategy;
      session.max_path_edges = 3;
      session.max_candidates = 1500;
      if (strategy == glearn::PathStrategy::kWorkload) {
        auto prior = automata::ParseRegex("highway.highway*", &interner);
        if (prior.ok()) session.workload.push_back(prior.value());
      }
      auto result = glearn::RunInteractivePathSession(g, seed, &oracle,
                                                      session);
      if (!result.ok()) continue;
      const bool recovered =
          result.value().conflicts == 0 &&
          automata::Dfa::Equivalent(
              automata::Dfa::FromRegex(*result.value().hypothesis.ToRegex(),
                                       g.EdgeAlphabet()),
              automata::Dfa::FromRegex(*goal.regex, g.EdgeAlphabet()));
      table.AddRow({std::to_string(w) + "x" + std::to_string(h),
                    std::to_string(result.value().candidate_paths),
                    StrategyName(strategy),
                    std::to_string(result.value().questions),
                    std::to_string(result.value().forced_positive) + " / " +
                        std::to_string(result.value().forced_negative),
                    recovered ? "yes" : "no"});
    }
  }
  std::printf("%s", table.ToString().c_str());

  // Learner comparison: concat-class (positive-only) vs RPNI (pos+neg) on
  // recovering path languages from words.
  std::printf("\nlearner comparison on word samples:\n\n");
  common::TablePrinter learners(
      {"target", "concat learner", "rpni (pos+neg)"});
  struct Case {
    const char* target;
    std::vector<const char*> pos;
    std::vector<const char*> neg;
  };
  const Case cases[] = {
      {"h+", {"h", "hh", "hhh"}, {"", "l", "hl", "lh", "ll", "hhl", "lhh"}},
      {"l.h*", {"l", "lh", "lhh"}, {"", "h", "ll", "hl", "lhl"}},
      {"h.l.h", {"hlh"}, {"", "h", "hl", "lh", "hh", "hll", "hlhh"}},
  };
  for (const Case& c : cases) {
    auto to_words = [&](const std::vector<const char*>& texts) {
      std::vector<std::vector<common::SymbolId>> words;
      for (const char* t : texts) {
        std::vector<common::SymbolId> w;
        for (const char* p = t; *p; ++p) {
          w.push_back(interner.Intern(std::string(1, *p)));
        }
        words.push_back(std::move(w));
      }
      return words;
    };
    auto target_regex = automata::ParseRegex(
        std::string(c.target), &interner);
    if (!target_regex.ok()) continue;
    const std::vector<common::SymbolId> alphabet{
        interner.Intern("h"), interner.Intern("l")};
    const automata::Dfa target =
        automata::Dfa::FromRegex(*target_regex.value(), alphabet);

    auto concat = glearn::LearnConcatPattern(to_words(c.pos));
    const bool concat_ok =
        concat.ok() &&
        automata::Dfa::Equivalent(
            automata::Dfa::FromRegex(*concat.value().ToRegex(), alphabet),
            target);
    auto rpni = glearn::LearnRpniDfa(to_words(c.pos), to_words(c.neg));
    const bool rpni_ok =
        rpni.ok() &&
        automata::Dfa::Equivalent(rpni.value().WithAlphabet(alphabet),
                                  target);
    learners.AddRow({c.target, concat_ok ? "recovered" : "not recovered",
                     rpni_ok ? "recovered" : "not recovered"});
  }
  std::printf("%s", learners.ToString().c_str());
  std::printf("\nshape check: workload prior does not increase questions and "
              "all strategies stay far below candidate counts.\n");
  return 0;
}
