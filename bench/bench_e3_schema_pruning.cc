// E3 — the experiment the paper proposes in §2: "measure the size of the
// learned query before and after adding the schema to the learning process
// and observe with what percentage the size decreases when the schema is
// involved". Documents are sampled from a person-registry schema whose
// required content (name, emailaddress, ...) the plain learner picks up as
// overspecialized filters; the schema-aware pass removes those implied by
// the schema (PTIME filter-implication via the dependency graph).
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "learn/schema_aware.h"
#include "schema/sampling.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

/// The registry schema: persons with required identity fields and optional
/// contact fields.
schema::Ms RegistrySchema(common::Interner* interner) {
  auto s = [&](const char* name) { return interner->Intern(name); };
  schema::Ms ms(s("site"));
  ms.SetMultiplicity(s("site"), s("people"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("people"), s("person"), schema::Multiplicity::kPlus);
  ms.SetMultiplicity(s("person"), s("name"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("person"), s("emailaddress"),
                     schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("person"), s("phone"), schema::Multiplicity::kOpt);
  ms.SetMultiplicity(s("person"), s("address"), schema::Multiplicity::kOpt);
  ms.SetMultiplicity(s("address"), s("city"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("address"), s("country"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("name"), s("first"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("name"), s("last"), schema::Multiplicity::kOne);
  return ms;
}

}  // namespace

int main() {
  common::Interner interner;
  const schema::Ms ms = RegistrySchema(&interner);
  const schema::Dms dms = ms.ToDms();

  common::Rng rng(99);
  std::vector<xml::XmlTree> docs;
  for (int i = 0; i < 8; ++i) {
    schema::SampleOptions sample;
    sample.soft_depth = 6;
    auto doc = schema::SampleDocument(dms, &rng, sample);
    if (doc.ok()) docs.push_back(std::move(doc).value());
  }

  const char* goals[] = {
      "//person[phone]/name",
      "/site/people/person[address]/emailaddress",
      "//person/name/first",
      "//address/city",
  };
  common::TablePrinter table({"goal query", "learned size", "pruned size",
                              "decrease %", "still agrees on valid docs"});
  std::vector<double> decreases;
  for (const char* text : goals) {
    auto goal = twig::ParseTwig(text, &interner);
    if (!goal.ok()) continue;
    // Collect up to 3 examples across documents.
    std::vector<learn::TreeExample> examples;
    for (const auto& doc : docs) {
      for (const auto& e : benchlib::GoalMatches(goal.value(), doc)) {
        examples.push_back(e);
        break;  // one per document
      }
      if (examples.size() == 3) break;
    }
    if (examples.size() < 2) continue;
    auto result = learn::LearnTwigWithSchema(examples, ms);
    if (!result.ok()) continue;
    const double before = static_cast<double>(result.value().size_before);
    const double after = static_cast<double>(result.value().size_after);
    const double decrease = before > 0 ? 100.0 * (before - after) / before : 0;
    decreases.push_back(decrease);

    bool agrees = true;
    for (const auto& doc : docs) {
      if (twig::Evaluate(result.value().before, doc) !=
          twig::Evaluate(result.value().after, doc)) {
        agrees = false;
      }
    }
    table.AddRow({text, std::to_string(result.value().size_before),
                  std::to_string(result.value().size_after),
                  common::FormatDouble(decrease, 1),
                  agrees ? "yes" : "NO"});
  }
  std::printf("E3: schema-aware pruning of learned twig queries\n"
              "(schema: person registry; %zu sampled valid documents)\n\n%s",
              docs.size(), table.ToString().c_str());
  std::printf("\nmean size decrease: %s%% (paper expects a strictly "
              "positive decrease on schema-heavy data)\n",
              common::FormatDouble(benchlib::Mean(decreases), 1).c_str());
  return 0;
}
