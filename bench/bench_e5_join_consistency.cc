// E5 — paper claims (§3): consistency of labeled examples is tractable for
// natural/equi-joins (most-specific-hypothesis argument) but intractable
// for semijoins. We time the PTIME equi-join checker and the exponential
// exact semijoin solver (plus its greedy polynomial approximation) while
// scaling the number of examples and the attribute-pair universe.
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "relational/generator.h"
#include "rlearn/equijoin_learner.h"
#include "rlearn/semijoin_learner.h"

using namespace qlearn;  // NOLINT: experiment driver

int main() {
  std::printf("E5: join-consistency checking — PTIME equi-join vs "
              "NP-complete semijoin\n\n");

  // (a) Equi-join: time vs #examples (expected: flat/linear, microseconds).
  common::TablePrinter equi({"#examples", "universe pairs", "time ms",
                             "consistent"});
  for (int k : {10, 100, 1000, 10000}) {
    relational::JoinInstanceOptions options;
    options.seed = 21;
    options.left_rows = 200;
    options.right_rows = 200;
    options.left_arity = 6;
    options.right_arity = 6;
    options.domain_size = 6;
    const relational::JoinInstance inst =
        relational::GenerateJoinInstance(options, 2);
    auto universe = rlearn::PairUniverse::AllCompatible(inst.left.schema(),
                                                        inst.right.schema());
    if (!universe.ok()) continue;
    rlearn::PairMask goal = 0;
    for (size_t i = 0; i < universe.value().size(); ++i) {
      for (const auto& g : inst.goal) {
        if (universe.value().pairs()[i] == g) goal |= (1ULL << i);
      }
    }
    // Label k random pairs with the hidden goal.
    common::Rng rng(5);
    std::vector<rlearn::PairExample> positives;
    std::vector<rlearn::PairExample> negatives;
    for (int i = 0; i < k; ++i) {
      const rlearn::PairExample e{rng.Index(inst.left.size()),
                                  rng.Index(inst.right.size())};
      const rlearn::PairMask agree = universe.value().AgreeMask(
          inst.left.row(e.left_row), inst.right.row(e.right_row));
      if (rlearn::MaskSatisfied(goal, agree)) {
        positives.push_back(e);
      } else {
        negatives.push_back(e);
      }
    }
    benchlib::WallTimer timer;
    const auto result = rlearn::CheckEquiJoinConsistency(
        universe.value(), inst.left, inst.right, positives, negatives);
    equi.AddRow({std::to_string(k), std::to_string(universe.value().size()),
                 common::FormatDouble(timer.ElapsedMs(), 3),
                 result.consistent ? "yes" : "no"});
  }
  std::printf("(a) equi-join consistency (PTIME)\n%s\n",
              equi.ToString().c_str());

  // (b) Semijoin: exact search nodes vs #positives on adversarial labels.
  common::TablePrinter semi({"#positives", "#negatives", "exact nodes",
                             "exact ms", "exact verdict", "greedy verdict",
                             "greedy ms"});
  for (int k : {2, 4, 6, 8, 10, 12}) {
    relational::JoinInstanceOptions options;
    options.seed = 31;
    options.left_rows = 40;
    options.right_rows = 24;
    options.left_arity = 6;
    options.right_arity = 6;
    options.domain_size = 2;  // tiny domain: many ambiguous witnesses
    options.planted_match_fraction = 0;
    const relational::JoinInstance inst =
        relational::GenerateJoinInstance(options, 2);
    auto universe = rlearn::PairUniverse::AllCompatible(inst.left.schema(),
                                                        inst.right.schema());
    if (!universe.ok()) continue;

    std::vector<rlearn::RowExample> positives;
    std::vector<rlearn::RowExample> negatives;
    for (int i = 0; i < k; ++i) positives.push_back(rlearn::RowExample{
        static_cast<size_t>(i)});
    for (int i = 0; i < k / 2; ++i) {
      negatives.push_back(
          rlearn::RowExample{static_cast<size_t>(39 - i)});
    }

    benchlib::WallTimer exact_timer;
    const auto exact = rlearn::CheckSemijoinConsistency(
        universe.value(), inst.left, inst.right, positives, negatives);
    const double exact_ms = exact_timer.ElapsedMs();

    benchlib::WallTimer greedy_timer;
    const auto greedy = rlearn::GreedySemijoinConsistency(
        universe.value(), inst.left, inst.right, positives, negatives);
    const double greedy_ms = greedy_timer.ElapsedMs();

    semi.AddRow({std::to_string(k), std::to_string(k / 2),
                 std::to_string(exact.nodes_explored),
                 common::FormatDouble(exact_ms, 3),
                 exact.consistent ? "consistent" : "inconsistent",
                 greedy.consistent ? "consistent" : "gave up",
                 common::FormatDouble(greedy_ms, 3)});
  }
  std::printf("(b) semijoin consistency (exact branch-and-bound vs greedy)\n"
              "%s\n",
              semi.ToString().c_str());
  std::printf("shape check: equi-join time stays flat as examples grow; the "
              "exact semijoin search tree grows with #positives while greedy "
              "stays polynomial (and may miss consistent hypotheses).\n");
  return 0;
}
