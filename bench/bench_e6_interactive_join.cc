// E6 — paper claims (§3): the interactive framework minimizes the number of
// user interactions; tuples whose label is implied by previous answers are
// *uninformative* and never asked. We scale the instance (candidate tuple
// pairs) and compare question counts across strategies against the "label
// everything" baseline.
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "relational/generator.h"
#include "rlearn/interactive_join.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

const char* StrategyName(rlearn::JoinStrategy s) {
  switch (s) {
    case rlearn::JoinStrategy::kRandom:
      return "random";
    case rlearn::JoinStrategy::kSplitHalf:
      return "split-half";
    case rlearn::JoinStrategy::kLattice:
      return "lattice";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("E6: interactive join learning — questions vs instance size\n"
              "(goal: 2 hidden attribute pairs; universe 16 pairs)\n\n");
  common::TablePrinter table({"rows/side", "candidate pairs", "strategy",
                              "questions", "forced + / -", "verified"});
  for (int rows : {20, 50, 100, 200, 320}) {
    relational::JoinInstanceOptions options;
    options.seed = 70 + rows;
    options.left_rows = rows;
    options.right_rows = rows;
    options.left_arity = 4;
    options.right_arity = 4;
    options.domain_size = 6;
    const relational::JoinInstance inst =
        relational::GenerateJoinInstance(options, 2);
    auto universe = rlearn::PairUniverse::AllCompatible(inst.left.schema(),
                                                        inst.right.schema());
    if (!universe.ok()) continue;
    rlearn::PairMask goal = 0;
    for (size_t i = 0; i < universe.value().size(); ++i) {
      for (const auto& g : inst.goal) {
        if (universe.value().pairs()[i] == g) goal |= (1ULL << i);
      }
    }

    for (rlearn::JoinStrategy strategy :
         {rlearn::JoinStrategy::kRandom, rlearn::JoinStrategy::kSplitHalf,
          rlearn::JoinStrategy::kLattice}) {
      rlearn::GoalJoinOracle oracle(&universe.value(), goal);
      rlearn::InteractiveJoinOptions session;
      session.strategy = strategy;
      session.seed = 123;
      auto result = rlearn::RunInteractiveJoinSession(
          universe.value(), inst.left, inst.right, &oracle, session);
      if (!result.ok()) continue;
      // Verify instance-equivalence of the learned predicate.
      bool verified = result.value().conflicts == 0;
      for (size_t i = 0; i < inst.left.size() && verified; ++i) {
        for (size_t j = 0; j < inst.right.size() && verified; ++j) {
          const rlearn::PairMask agree = universe.value().AgreeMask(
              inst.left.row(i), inst.right.row(j));
          verified = rlearn::MaskSatisfied(result.value().learned, agree) ==
                     rlearn::MaskSatisfied(goal, agree);
        }
      }
      table.AddRow(
          {std::to_string(rows), std::to_string(result.value().candidate_pairs),
           StrategyName(strategy), std::to_string(result.value().questions),
           std::to_string(result.value().forced_positive) + " / " +
               std::to_string(result.value().forced_negative),
           verified ? "yes" : "NO"});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nshape check: questions stay orders of magnitude below the "
              "candidate-pair count (the 'label everything' baseline), and "
              "informed strategies beat random.\n");
  return 0;
}
