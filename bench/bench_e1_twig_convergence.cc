// E1 — paper claim (§2): "the algorithms are able to learn a query
// equivalent to the goal query from a small number of examples (generally
// two)". For each goal twig over XMark-style documents we feed positive
// examples one at a time until the learned query is equivalent to the goal,
// and report the number of examples needed.
#include <cstdio>
#include <vector>

#include "benchlib/experiment_util.h"
#include "common/table_printer.h"
#include "common/strings.h"
#include "schema/inference.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"

using namespace qlearn;  // NOLINT: experiment driver

int main() {
  common::Interner interner;

  std::vector<xml::XmlTree> docs;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    xml::XMarkOptions options;
    options.seed = 1000 + seed;
    options.num_people = 15;
    options.num_open_auctions = 8;
    options.num_closed_auctions = 6;
    docs.push_back(xml::GenerateXMark(options, &interner));
  }
  std::vector<const xml::XmlTree*> ptrs;
  size_t total_nodes = 0;
  for (const auto& d : docs) {
    ptrs.push_back(&d);
    total_nodes += d.NumNodes();
  }
  std::printf("E1: twig-learner convergence on %zu XMark-style documents "
              "(%zu nodes total)\n\n",
              docs.size(), total_nodes);

  // The schema-aware variant prunes data-implied filters with a schema
  // inferred from the corpus — the paper's own overspecialization fix.
  auto ms = schema::InferMs(ptrs);

  common::TablePrinter table({"goal query", "goal size",
                              "arbitrary order", "informative user",
                              "informative + schema"});
  std::vector<double> arbitrary;
  std::vector<double> informative;
  std::vector<double> with_schema;
  size_t goals = 0;
  auto cell = [](int n) { return n < 0 ? std::string("-")
                                       : std::to_string(n); };
  for (const std::string& text : benchlib::XMarkGoalQueries()) {
    auto goal = twig::ParseTwig(text, &interner);
    if (!goal.ok()) continue;
    ++goals;
    const int arb = benchlib::ExamplesUntilConvergence(
        goal.value(), ptrs, &interner, 16,
        benchlib::ConvergenceCriterion::kAnswers,
        benchlib::ExampleOrder::kRoundRobin);
    const int inf = benchlib::ExamplesUntilConvergence(
        goal.value(), ptrs, &interner, 16,
        benchlib::ConvergenceCriterion::kAnswers,
        benchlib::ExampleOrder::kCounterexample);
    const int infs =
        ms.ok() ? benchlib::ExamplesUntilConvergenceWithSchema(
                      goal.value(), ptrs, ms.value(), &interner, 16,
                      benchlib::ExampleOrder::kCounterexample)
                : -1;
    if (arb >= 0) arbitrary.push_back(arb);
    if (inf >= 0) informative.push_back(inf);
    if (infs >= 0) with_schema.push_back(infs);
    table.AddRow({text, std::to_string(goal.value().Size()), cell(arb),
                  cell(inf), cell(infs)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nmean examples to convergence: arbitrary order %s (%zu/%zu "
              "goals), informative user %s (%zu/%zu), informative + schema "
              "%s (%zu/%zu)   [paper: \"generally two\"]\n",
              common::FormatDouble(benchlib::Mean(arbitrary), 2).c_str(),
              arbitrary.size(), goals,
              common::FormatDouble(benchlib::Mean(informative), 2).c_str(),
              informative.size(), goals,
              common::FormatDouble(benchlib::Mean(with_schema), 2).c_str(),
              with_schema.size(), goals);
  std::printf("(the informative-user model — each new annotation is a node "
              "the current query misses — is the setting behind the paper's "
              "claim; arbitrary-order feeding wastes examples on lookalike "
              "matches)\n");
  return 0;
}
