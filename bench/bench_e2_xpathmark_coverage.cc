// E2 — paper claim (§2): "The algorithms from [36] are able to learn 15% of
// the queries from XPathMark". Our XPathMark-style set mirrors the
// benchmark's composition (DESIGN.md §1); for every query we report whether
// it lies in the twig fragment and, if so, whether the learner actually
// recovers it from examples. Coverage = learnable / total.
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "benchlib/xpathmark.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"

using namespace qlearn;  // NOLINT: experiment driver

int main() {
  common::Interner interner;
  std::vector<xml::XmlTree> docs;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    xml::XMarkOptions options;
    options.seed = 7000 + seed;
    options.num_closed_auctions = 10;
    docs.push_back(xml::GenerateXMark(options, &interner));
  }
  std::vector<const xml::XmlTree*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  common::TablePrinter table({"id", "in twig fragment", "learned", "notes"});
  int learnable = 0;
  const auto& queries = benchlib::XPathMarkQueries();
  for (const auto& q : queries) {
    if (!q.in_twig_fragment) {
      table.AddRow({q.id, "no", "-", q.exclusion_reason});
      continue;
    }
    auto goal = twig::ParseTwig(q.xpath, &interner);
    if (!goal.ok()) {
      table.AddRow({q.id, "yes", "parse error", ""});
      continue;
    }
    const int n =
        benchlib::ExamplesUntilConvergence(goal.value(), ptrs, &interner);
    if (n > 0) {
      ++learnable;
      table.AddRow({q.id, "yes", "yes (" + std::to_string(n) + " examples)",
                    q.description});
    } else {
      table.AddRow({q.id, "yes", "no", q.description});
    }
  }
  std::printf("E2: XPathMark-style coverage of the twig learner\n\n%s",
              table.ToString().c_str());
  const double coverage =
      100.0 * learnable / static_cast<double>(queries.size());
  std::printf("\nlearned %d/%zu queries = %s%% (paper: 15%%)\n", learnable,
              queries.size(), common::FormatDouble(coverage, 1).c_str());
  return 0;
}
