// Micro-benchmarks (google-benchmark) for the core operators every
// experiment rests on: twig evaluation, join execution, DME membership,
// schema validation, path-query evaluation, the interactive session-driver
// overhead (unified driver vs legacy one-shot wrapper), the session-service
// serving overhead, and wire-format throughput.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>

#include "common/alloc_probe.h"
#include "common/interner.h"
#include "common/rng.h"
#include "net/protocol.h"
#include "service/json.h"
#include "glearn/interactive_path.h"
#include "graph/geo_generator.h"
#include "graph/path_query.h"
#include "learn/interactive.h"
#include "relational/generator.h"
#include "relational/operators.h"
#include "rlearn/interactive_chain.h"
#include "rlearn/interactive_join.h"
#include "schema/dme.h"
#include "schema/dms.h"
#include "service/session_service.h"
#include "service/wire.h"
#include "session/session.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"
#include "xml/xml_parser.h"

namespace {

using namespace qlearn;  // NOLINT: benchmark driver

void BM_TwigEvaluate(benchmark::State& state) {
  common::Interner interner;
  xml::XMarkOptions options;
  options.num_people = static_cast<int>(state.range(0));
  const xml::XmlTree doc = xml::GenerateXMark(options, &interner);
  auto query = twig::ParseTwig("//person[address/city]/name", &interner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(twig::Evaluate(query.value(), doc));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.NumNodes()));
}
BENCHMARK(BM_TwigEvaluate)->Arg(25)->Arg(100)->Arg(400);

void BM_EquiJoin(benchmark::State& state) {
  relational::JoinInstanceOptions options;
  options.left_rows = static_cast<int>(state.range(0));
  options.right_rows = static_cast<int>(state.range(0));
  const relational::JoinInstance inst =
      relational::GenerateJoinInstance(options, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relational::EquiJoin(inst.left, inst.right, inst.goal));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EquiJoin)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DmeMembership(benchmark::State& state) {
  common::Interner interner;
  auto dme = schema::ParseDme(
      "name, emailaddress, phone?, (homepage|creditcard)?, interest*",
      &interner);
  schema::Bag bag{{interner.Intern("name"), 1},
                  {interner.Intern("emailaddress"), 1},
                  {interner.Intern("interest"), 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dme.value().Accepts(bag));
  }
}
BENCHMARK(BM_DmeMembership);

void BM_PathQueryEval(benchmark::State& state) {
  common::Interner interner;
  graph::GeoOptions options;
  options.grid_width = static_cast<int>(state.range(0));
  options.grid_height = static_cast<int>(state.range(0));
  const graph::Graph g = graph::GenerateGeoGraph(options, &interner);
  auto regex = automata::ParseRegex("highway+.local?", &interner);
  const graph::PathQuery query{regex.value(), std::nullopt};
  for (auto _ : state) {
    graph::PathQueryEvaluator eval(query, g);
    benchmark::DoNotOptimize(eval.EvalFrom(0));
  }
}
BENCHMARK(BM_PathQueryEval)->Arg(5)->Arg(10)->Arg(20);

// Session-driver overhead: one full interactive join session per iteration,
// through the legacy one-shot wrapper vs driving the unified
// LearningSession directly. The two run the identical question sequence, so
// any gap between them is pure driver overhead — the API redesign's cost on
// the hot loop (it should be in the noise).
struct JoinSessionSetup {
  explicit JoinSessionSetup(int rows) {
    relational::JoinInstanceOptions options;
    options.seed = 70 + rows;
    options.left_rows = rows;
    options.right_rows = rows;
    options.left_arity = 4;
    options.right_arity = 4;
    options.domain_size = 6;
    instance = relational::GenerateJoinInstance(options, 2);
    universe = rlearn::PairUniverse::AllCompatible(instance.left.schema(),
                                                   instance.right.schema())
                   .value();
    for (size_t i = 0; i < universe.size(); ++i) {
      for (const auto& g : instance.goal) {
        if (universe.pairs()[i] == g) goal |= (1ULL << i);
      }
    }
  }

  relational::JoinInstance instance;
  rlearn::PairUniverse universe;
  rlearn::PairMask goal = 0;
};

void BM_JoinSessionLegacyWrapper(benchmark::State& state) {
  const JoinSessionSetup setup(static_cast<int>(state.range(0)));
  size_t questions = 0;
  for (auto _ : state) {
    rlearn::GoalJoinOracle oracle(&setup.universe, setup.goal);
    rlearn::InteractiveJoinOptions options;
    options.seed = 123;
    auto result = rlearn::RunInteractiveJoinSession(
        setup.universe, setup.instance.left, setup.instance.right, &oracle,
        options);
    questions = result.value().questions;
    benchmark::DoNotOptimize(result.value().learned);
  }
  state.counters["questions"] = static_cast<double>(questions);
}
BENCHMARK(BM_JoinSessionLegacyWrapper)->Arg(20)->Arg(50)->Arg(100);

void BM_JoinSessionUnifiedDriver(benchmark::State& state) {
  const JoinSessionSetup setup(static_cast<int>(state.range(0)));
  size_t questions = 0;
  for (auto _ : state) {
    rlearn::GoalJoinOracle oracle(&setup.universe, setup.goal);
    rlearn::InteractiveJoinOptions options;
    options.seed = 123;
    session::SessionOptions session_options;
    session_options.seed = options.seed;
    session::LearningSession<rlearn::JoinEngine> session(
        rlearn::JoinEngine(&setup.universe, &setup.instance.left,
                           &setup.instance.right, options),
        session_options);
    const rlearn::PairMask learned =
        session.Run([&](const rlearn::PairExample& pair) {
          return oracle.IsPositive(setup.instance.left.row(pair.left_row),
                                   setup.instance.right.row(pair.right_row));
        });
    questions = session.stats().questions;
    benchmark::DoNotOptimize(learned);
  }
  state.counters["questions"] = static_cast<double>(questions);
}
BENCHMARK(BM_JoinSessionUnifiedDriver)->Arg(20)->Arg(50)->Arg(100);

// Chain-engine counterpart of the join-session pair above: one full
// interactive chain session (3 FK-style relations, E12 shape) per
// iteration, legacy wrapper vs driving the unified LearningSession
// directly. Identical question sequences; the gap is driver overhead.
struct ChainSessionSetup {
  explicit ChainSessionSetup(int rows) {
    relational::ChainInstanceOptions options;
    options.seed = 1300 + static_cast<uint64_t>(rows);
    options.rows = rows;
    instance = relational::GenerateChainInstance(options);
    chain = rlearn::JoinChain::Create(instance.pointers).value();
    goal = rlearn::NamePairChainGoal(*chain, "fk", "key");
  }

  relational::ChainInstance instance;
  std::optional<rlearn::JoinChain> chain;
  rlearn::ChainMask goal;
};

void BM_ChainSessionLegacyWrapper(benchmark::State& state) {
  const ChainSessionSetup setup(static_cast<int>(state.range(0)));
  size_t questions = 0;
  for (auto _ : state) {
    rlearn::GoalChainOracle oracle(setup.goal);
    rlearn::InteractiveChainOptions options;
    options.seed = 123;
    auto result =
        rlearn::RunInteractiveChainSession(*setup.chain, &oracle, options);
    questions = result.value().questions;
    benchmark::DoNotOptimize(result.value().learned);
  }
  state.counters["questions"] = static_cast<double>(questions);
}
BENCHMARK(BM_ChainSessionLegacyWrapper)->Arg(4)->Arg(8)->Arg(12);

void BM_ChainSessionUnifiedDriver(benchmark::State& state) {
  const ChainSessionSetup setup(static_cast<int>(state.range(0)));
  size_t questions = 0;
  for (auto _ : state) {
    rlearn::InteractiveChainOptions options;
    options.seed = 123;
    session::SessionOptions session_options;
    session_options.seed = options.seed;
    session::LearningSession<rlearn::ChainEngine> session(
        rlearn::ChainEngine(&*setup.chain, options), session_options);
    const rlearn::ChainMask learned =
        session.Run([&](const rlearn::ChainExample& example) {
          return rlearn::ChainSatisfied(*setup.chain, setup.goal, example);
        });
    questions = session.stats().questions;
    benchmark::DoNotOptimize(learned);
  }
  state.counters["questions"] = static_cast<double>(questions);
}
BENCHMARK(BM_ChainSessionUnifiedDriver)->Arg(4)->Arg(8)->Arg(12);

// Selection hot path: steady-state cost of one SelectQuestion call under
// the default greedy strategy of each engine, over growing candidate
// counts. The engine is warmed up with a few real oracle exchanges (so the
// hypothesis and the settled set are realistic), then SelectQuestion is
// timed with no state change in between — exactly the per-question
// selection cost a serving layer pays between answers. Before the shared
// frontier, every call rescanned and rescored all open candidates; the
// recorded before/after numbers live in BENCH_selection.json.
template <typename Engine, typename OracleFn>
void WarmupSelection(Engine* engine, common::Rng* rng, OracleFn oracle,
                     int exchanges) {
  session::SessionStats stats;
  engine->Propagate(&stats);
  for (int i = 0; i < exchanges; ++i) {
    auto question = engine->SelectQuestion(rng);
    if (!question.has_value()) break;
    engine->MarkAsked(*question);
    const bool label = oracle(*question);
    engine->Observe(*question, label, &stats);
    if (label) {
      engine->OnPositive(*question);
    } else {
      engine->OnNegative(*question);
    }
    engine->Propagate(&stats);
  }
}

void BM_SelectQuestion_Twig(benchmark::State& state) {
  common::Interner interner;
  // People directory with range(0) persons (~3 nodes each) — small enough
  // that the pre-frontier O(candidates^2 * eval) greedy scan terminates.
  std::string text = "<site><people>";
  for (int i = 0; i < state.range(0); ++i) {
    switch (i % 4) {
      case 0: text += "<person><name/><age/><phone/></person>"; break;
      case 1: text += "<person><name/></person>"; break;
      case 2: text += "<person><name/><age/></person>"; break;
      default: text += "<person><name/><homepage/></person>"; break;
    }
  }
  text += "</people></site>";
  const xml::XmlTree doc = xml::ParseXml(text, &interner).value();
  auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner);
  xml::NodeId seed = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (twig::Selects(goal.value(), doc, v)) {
      seed = v;
      break;
    }
  }
  learn::TwigEngine engine(&doc, seed);  // default kGreedyImpact
  common::Rng rng(123);
  WarmupSelection(&engine, &rng,
                  [&](xml::NodeId v) {
                    return twig::Selects(goal.value(), doc, v);
                  },
                  3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.SelectQuestion(&rng));
  }
  state.counters["candidates"] = static_cast<double>(doc.NumNodes());
}
BENCHMARK(BM_SelectQuestion_Twig)->Arg(8)->Arg(32)->Arg(128);

void BM_SelectQuestion_Join(benchmark::State& state) {
  const JoinSessionSetup setup(static_cast<int>(state.range(0)));
  rlearn::JoinEngine engine(&setup.universe, &setup.instance.left,
                            &setup.instance.right);  // default kSplitHalf
  rlearn::GoalJoinOracle oracle(&setup.universe, setup.goal);
  common::Rng rng(123);
  WarmupSelection(&engine, &rng,
                  [&](const rlearn::PairExample& pair) {
                    return oracle.IsPositive(
                        setup.instance.left.row(pair.left_row),
                        setup.instance.right.row(pair.right_row));
                  },
                  3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.SelectQuestion(&rng));
  }
  state.counters["candidates"] = static_cast<double>(engine.candidate_pairs());
}
BENCHMARK(BM_SelectQuestion_Join)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_SelectQuestion_Chain(benchmark::State& state) {
  const ChainSessionSetup setup(static_cast<int>(state.range(0)));
  rlearn::ChainEngine engine(&*setup.chain, {});  // default kSplitHalf
  common::Rng rng(123);
  WarmupSelection(&engine, &rng,
                  [&](const rlearn::ChainExample& example) {
                    return rlearn::ChainSatisfied(*setup.chain, setup.goal,
                                                  example);
                  },
                  3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.SelectQuestion(&rng));
  }
  state.counters["candidates"] = static_cast<double>(engine.candidate_paths());
}
BENCHMARK(BM_SelectQuestion_Chain)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SelectQuestion_Path(benchmark::State& state) {
  common::Interner interner;
  graph::GeoOptions geo;
  geo.grid_width = static_cast<int>(state.range(0));
  geo.grid_height = static_cast<int>(state.range(0));
  graph::Graph g = graph::GenerateGeoGraph(geo, &interner);
  auto regex = automata::ParseRegex("highway+", &interner);
  const graph::PathQuery goal{regex.value(), std::nullopt};
  glearn::GoalPathOracle oracle(goal, g);
  graph::Path seed;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (interner.Name(g.edge(e).label) == "highway") {
      seed.start = g.edge(e).src;
      seed.edges = {e};
      break;
    }
  }
  glearn::InteractivePathOptions options;  // default kFrontier
  options.max_path_edges = 3;
  options.max_candidates = 100000;
  glearn::PathEngine engine(&g, seed, options);
  common::Rng rng(123);
  WarmupSelection(&engine, &rng,
                  [&](const glearn::PathEngine::Question& question) {
                    return oracle.IsPositive(*question.path);
                  },
                  3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.SelectQuestion(&rng));
  }
  state.counters["candidates"] = static_cast<double>(engine.candidate_paths());
}
BENCHMARK(BM_SelectQuestion_Path)->Arg(3)->Arg(4)->Arg(6);

// Propagation hot path: steady-state cost of one Propagate flush — the
// per-answer inner loop a serving layer pays between oracle replies. Args
// are (size, ref, pos): `ref`=1 replays the historical full-universe
// rescan via set_reference_propagation (the "before" numbers in
// BENCH_propagate.json), `pos`=0 times a negative-answer delta (the
// witness payload of an already-labeled negative is re-queued each
// iteration, so the flush does the steady-state scan without mutating the
// session), `pos`=1 times the hypothesis-change full pass
// (ForceFullRepropagation; the per-candidate memo refill a real positive
// additionally triggers is accounted under BM_SelectQuestion's epoch
// rescoring). The engine is warmed up with real oracle exchanges first.
template <typename Engine, typename OracleFn>
std::optional<typename Engine::Item> WarmupPropagation(Engine* engine,
                                                       common::Rng* rng,
                                                       OracleFn oracle,
                                                       int exchanges) {
  session::SessionStats stats;
  std::optional<typename Engine::Item> last_negative;
  engine->Propagate(&stats);
  for (int i = 0; i < exchanges; ++i) {
    auto question = engine->SelectQuestion(rng);
    if (!question.has_value()) break;
    engine->MarkAsked(*question);
    const bool label = oracle(*question);
    engine->Observe(*question, label, &stats);
    if (label) {
      engine->OnPositive(*question);
    } else {
      engine->OnNegative(*question);
      last_negative = *question;
    }
    engine->Propagate(&stats);
  }
  return last_negative;
}

template <typename Engine>
void RunPropagateLoop(benchmark::State& state, Engine* engine,
                      const std::optional<typename Engine::Item>& negative) {
  const bool positive_variant = state.range(2) == 1;
  if (!positive_variant && !negative.has_value()) {
    state.SkipWithError("warmup produced no negative answer");
    return;
  }
  session::SessionStats stats;
  for (auto _ : state) {
    if (positive_variant) {
      engine->ForceFullRepropagation();
    } else {
      engine->OnNegative(*negative);
    }
    engine->Propagate(&stats);
    benchmark::DoNotOptimize(stats.forced_negative);
  }
}

void BM_Propagate_Twig(benchmark::State& state) {
  common::Interner interner;
  std::string text = "<site><people>";
  for (int i = 0; i < state.range(0); ++i) {
    switch (i % 4) {
      case 0: text += "<person><name/><age/><phone/></person>"; break;
      case 1: text += "<person><name/></person>"; break;
      case 2: text += "<person><name/><age/></person>"; break;
      default: text += "<person><name/><homepage/></person>"; break;
    }
  }
  text += "</people></site>";
  const xml::XmlTree doc = xml::ParseXml(text, &interner).value();
  auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner);
  xml::NodeId seed = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (twig::Selects(goal.value(), doc, v)) {
      seed = v;
      break;
    }
  }
  learn::TwigEngine engine(&doc, seed);
  engine.set_reference_propagation(state.range(1) == 1);
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](xml::NodeId v) { return twig::Selects(goal.value(), doc, v); }, 6);
  RunPropagateLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(doc.NumNodes());
}
BENCHMARK(BM_Propagate_Twig)
    ->ArgsProduct({{8, 32, 128}, {0, 1}, {0, 1}})
    ->ArgNames({"n", "ref", "pos"});

void BM_Propagate_Join(benchmark::State& state) {
  const JoinSessionSetup setup(static_cast<int>(state.range(0)));
  rlearn::JoinEngine engine(&setup.universe, &setup.instance.left,
                            &setup.instance.right);
  engine.set_reference_propagation(state.range(1) == 1);
  rlearn::GoalJoinOracle oracle(&setup.universe, setup.goal);
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](const rlearn::PairExample& pair) {
        return oracle.IsPositive(setup.instance.left.row(pair.left_row),
                                 setup.instance.right.row(pair.right_row));
      },
      6);
  RunPropagateLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(engine.candidate_pairs());
}
BENCHMARK(BM_Propagate_Join)
    ->ArgsProduct({{20, 50, 100, 200}, {0, 1}, {0, 1}})
    ->ArgNames({"n", "ref", "pos"});

void BM_Propagate_Chain(benchmark::State& state) {
  const ChainSessionSetup setup(static_cast<int>(state.range(0)));
  rlearn::ChainEngine engine(&*setup.chain, {});
  engine.set_reference_propagation(state.range(1) == 1);
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](const rlearn::ChainExample& example) {
        return rlearn::ChainSatisfied(*setup.chain, setup.goal, example);
      },
      6);
  RunPropagateLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(engine.candidate_paths());
}
BENCHMARK(BM_Propagate_Chain)
    ->ArgsProduct({{4, 8, 16, 24}, {0, 1}, {0, 1}})
    ->ArgNames({"n", "ref", "pos"});

void BM_Propagate_Path(benchmark::State& state) {
  common::Interner interner;
  graph::GeoOptions geo;
  geo.grid_width = static_cast<int>(state.range(0));
  geo.grid_height = static_cast<int>(state.range(0));
  graph::Graph g = graph::GenerateGeoGraph(geo, &interner);
  auto regex = automata::ParseRegex("highway+", &interner);
  const graph::PathQuery goal{regex.value(), std::nullopt};
  glearn::GoalPathOracle oracle(goal, g);
  graph::Path seed;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (interner.Name(g.edge(e).label) == "highway") {
      seed.start = g.edge(e).src;
      seed.edges = {e};
      break;
    }
  }
  glearn::InteractivePathOptions options;
  options.max_path_edges = 3;
  options.max_candidates = 100000;
  glearn::PathEngine engine(&g, seed, options);
  engine.set_reference_propagation(state.range(1) == 1);
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](const glearn::PathEngine::Question& question) {
        return oracle.IsPositive(*question.path);
      },
      6);
  RunPropagateLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(engine.candidate_paths());
}
BENCHMARK(BM_Propagate_Path)
    ->ArgsProduct({{3, 4, 6}, {0, 1}, {0, 1}})
    ->ArgNames({"n", "ref", "pos"});

// Classification hot paths that stay non-flat after the delta layer: the
// optimized full classification pass (baseline / hypothesis change) and the
// witness-index (re)build a cold negative delta pays. Args are
// (size, rebucket): `rebucket`=0 times one full pass
// (ForceFullRepropagation + Propagate — re-bucket + classify-per-bucket
// before the SoA store, plane sweeps after), `rebucket`=1 invalidates the
// witness index and times one negative delta flush (index rebuild +
// conviction before; with the SoA store join/chain need no index at all, so
// the same flush is a single sweep). Before/after numbers live in
// BENCH_classify.json.
template <typename Engine>
void RunClassifyLoop(benchmark::State& state, Engine* engine,
                     const std::optional<typename Engine::Item>& negative) {
  const bool rebucket_variant = state.range(1) == 1;
  if (rebucket_variant && !negative.has_value()) {
    state.SkipWithError("warmup produced no negative answer");
    return;
  }
  session::SessionStats stats;
  for (auto _ : state) {
    if (rebucket_variant) {
      engine->InvalidateWitnessIndexForBench();
      engine->OnNegative(*negative);
    } else {
      engine->ForceFullRepropagation();
    }
    engine->Propagate(&stats);
    benchmark::DoNotOptimize(stats.forced_negative);
  }
}

void BM_Classify_Join(benchmark::State& state) {
  const JoinSessionSetup setup(static_cast<int>(state.range(0)));
  rlearn::JoinEngine engine(&setup.universe, &setup.instance.left,
                            &setup.instance.right);
  rlearn::GoalJoinOracle oracle(&setup.universe, setup.goal);
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](const rlearn::PairExample& pair) {
        return oracle.IsPositive(setup.instance.left.row(pair.left_row),
                                 setup.instance.right.row(pair.right_row));
      },
      6);
  RunClassifyLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(engine.candidate_pairs());
}
BENCHMARK(BM_Classify_Join)
    ->ArgsProduct({{20, 50, 100, 200}, {0, 1}})
    ->ArgNames({"n", "rebucket"});

void BM_Classify_Chain(benchmark::State& state) {
  const ChainSessionSetup setup(static_cast<int>(state.range(0)));
  rlearn::ChainEngine engine(&*setup.chain, {});
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](const rlearn::ChainExample& example) {
        return rlearn::ChainSatisfied(*setup.chain, setup.goal, example);
      },
      6);
  RunClassifyLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(engine.candidate_paths());
}
BENCHMARK(BM_Classify_Chain)
    ->ArgsProduct({{4, 8, 16, 24}, {0, 1}})
    ->ArgNames({"n", "rebucket"});

void BM_Classify_Twig(benchmark::State& state) {
  common::Interner interner;
  std::string text = "<site><people>";
  for (int i = 0; i < state.range(0); ++i) {
    switch (i % 4) {
      case 0: text += "<person><name/><age/><phone/></person>"; break;
      case 1: text += "<person><name/></person>"; break;
      case 2: text += "<person><name/><age/></person>"; break;
      default: text += "<person><name/><homepage/></person>"; break;
    }
  }
  text += "</people></site>";
  const xml::XmlTree doc = xml::ParseXml(text, &interner).value();
  auto goal = twig::ParseTwig("/site/people/person[age]/name", &interner);
  xml::NodeId seed = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < doc.NumNodes(); ++v) {
    if (twig::Selects(goal.value(), doc, v)) {
      seed = v;
      break;
    }
  }
  learn::TwigEngine engine(&doc, seed);
  common::Rng rng(123);
  const auto negative = WarmupPropagation(
      &engine, &rng,
      [&](xml::NodeId v) { return twig::Selects(goal.value(), doc, v); }, 6);
  RunClassifyLoop(state, &engine, negative);
  state.counters["candidates"] = static_cast<double>(doc.NumNodes());
}
BENCHMARK(BM_Classify_Twig)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->ArgNames({"n", "rebucket"});

// Service-surface overhead: one full built-in scenario session per
// iteration driven through SessionService (string handles, budget checks,
// wire payload construction) in batches of `range(0)`. Compare against the
// Unified-driver benchmarks above to see what the serving layer adds per
// question; larger batches amortize the per-Ask cost.
void BM_ServiceSessionChain(benchmark::State& state) {
  service::SessionService svc;
  size_t questions = 0;
  for (auto _ : state) {
    auto id = svc.Open("chain");
    auto batch = svc.Ask(id.value(), static_cast<size_t>(state.range(0)));
    while (batch.ok() && !batch.value().empty()) {
      (void)svc.Tell(id.value(), svc.OracleLabels(id.value()).value());
      batch = svc.Ask(id.value(), static_cast<size_t>(state.range(0)));
    }
    auto closed = svc.Close(id.value());
    questions = closed.value().stats.questions;
    benchmark::DoNotOptimize(closed.value().hypothesis.text);
  }
  state.counters["questions"] = static_cast<double>(questions);
}
BENCHMARK(BM_ServiceSessionChain)->Arg(1)->Arg(8);

// Wire-format throughput: serialize + parse one ask event carrying a batch
// of `range(0)` chain questions (the heaviest payload kind).
void BM_WireAskEventRoundTrip(benchmark::State& state) {
  service::wire::TranscriptEvent event;
  event.kind = service::wire::TranscriptEvent::Kind::kAsk;
  event.requested = static_cast<uint64_t>(state.range(0));
  for (int i = 0; i < state.range(0); ++i) {
    service::wire::QuestionPayload payload;
    payload.kind = "chain";
    payload.ids = {static_cast<uint64_t>(i), static_cast<uint64_t>(i) + 1,
                   static_cast<uint64_t>(i) + 2};
    payload.text = "is this tuple path in the chain join? customers#" +
                   std::to_string(i) + " (1, 10) orders#" + std::to_string(i) +
                   " (1, 7) products#" + std::to_string(i) + " (7, 100)";
    event.questions.push_back(std::move(payload));
  }
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string serialized = service::wire::Serialize(event);
    auto parsed = service::wire::ParseEvent(serialized);
    benchmark::DoNotOptimize(parsed.ok());
    bytes = serialized.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_WireAskEventRoundTrip)->Arg(1)->Arg(8)->Arg(64);

// --- Protocol frame-handling hot path: heap vs arena -----------------------
//
// One iteration is one steady-state ask(k=1)/tell round trip against a live
// "join" session, i.e. two request frames through the dispatcher. The Heap
// variants run the reference HandleFrame (fresh std::string tree per parse,
// fresh response string); the Arena variants run HandleFrameInto with a
// reused json::Arena and a recycled response buffer — the exact hot path the
// server's inline dispatch mode executes. `allocs_per_frame` counts global
// operator-new calls (alloc_probe_hooks.cc is linked into this binary) and
// is the headline number BENCH_protocol.json tracks: the arena path must
// hold it at a small fixed constant.

/// Opens a fresh "join" session and returns its id.
std::string BenchOpenSession(service::SessionService* svc) {
  const std::string response =
      net::HandleFrame(svc, "{\"op\":\"open\",\"scenario\":\"join\",\"seed\":7}");
  const std::string marker = "\"id\":\"";
  const size_t begin = response.find(marker) + marker.size();
  return response.substr(begin, response.find('"', begin) - begin);
}

/// Shared driver: runs ask/tell rounds through either path, reopening the
/// session whenever the learner converges (rare; both variants pay it).
void RunHandleFrameRounds(benchmark::State& state, bool arena_path) {
  service::SessionService svc;
  service::json::Arena arena;
  std::string out;
  std::string id = BenchOpenSession(&svc);
  std::string ask = "{\"op\":\"ask\",\"id\":\"" + id + "\",\"k\":1}";
  std::string tell = "{\"op\":\"tell\",\"id\":\"" + id + "\",\"labels\":[true]}";
  const uint64_t allocs_before = common::AllocProbeNewCount();
  for (auto _ : state) {
    if (arena_path) {
      arena.Reset();
      out.clear();
      net::HandleFrameInto(&svc, ask, &arena, &out);
    } else {
      out = net::HandleFrame(&svc, ask);
    }
    if (out.find("\"text\"") == std::string::npos) {
      // Converged (empty batch) or error: retire this session, start fresh.
      net::HandleFrame(&svc, "{\"op\":\"close\",\"id\":\"" + id + "\"}");
      id = BenchOpenSession(&svc);
      ask = "{\"op\":\"ask\",\"id\":\"" + id + "\",\"k\":1}";
      tell = "{\"op\":\"tell\",\"id\":\"" + id + "\",\"labels\":[true]}";
      continue;
    }
    if (arena_path) {
      arena.Reset();
      out.clear();
      net::HandleFrameInto(&svc, tell, &arena, &out);
    } else {
      out = net::HandleFrame(&svc, tell);
    }
    benchmark::DoNotOptimize(out.data());
  }
  const uint64_t frames = 2 * static_cast<uint64_t>(state.iterations());
  state.SetItemsProcessed(static_cast<int64_t>(frames));
  state.counters["allocs_per_frame"] =
      static_cast<double>(common::AllocProbeNewCount() - allocs_before) /
      static_cast<double>(frames == 0 ? 1 : frames);
}

void BM_HandleFrame_AskTellHeap(benchmark::State& state) {
  RunHandleFrameRounds(state, /*arena_path=*/false);
}
BENCHMARK(BM_HandleFrame_AskTellHeap);

void BM_HandleFrame_AskTellArena(benchmark::State& state) {
  RunHandleFrameRounds(state, /*arena_path=*/true);
}
BENCHMARK(BM_HandleFrame_AskTellArena);

/// Counters is the pure protocol-layer op (no learner work at all), so it
/// isolates parse + serialize cost: the arena path should be allocation-free
/// at steady state.
void RunCountersRounds(benchmark::State& state, bool arena_path) {
  service::SessionService svc;
  service::json::Arena arena;
  std::string out;
  const std::string counters = "{\"op\":\"counters\"}";
  // Warm one round so lazy capacity growth happens outside the loop.
  net::HandleFrameInto(&svc, counters, &arena, &out);
  const uint64_t allocs_before = common::AllocProbeNewCount();
  for (auto _ : state) {
    if (arena_path) {
      arena.Reset();
      out.clear();
      net::HandleFrameInto(&svc, counters, &arena, &out);
    } else {
      out = net::HandleFrame(&svc, counters);
    }
    benchmark::DoNotOptimize(out.data());
  }
  const uint64_t frames = static_cast<uint64_t>(state.iterations());
  state.SetItemsProcessed(static_cast<int64_t>(frames));
  state.counters["allocs_per_frame"] =
      static_cast<double>(common::AllocProbeNewCount() - allocs_before) /
      static_cast<double>(frames == 0 ? 1 : frames);
}

void BM_HandleFrame_CountersHeap(benchmark::State& state) {
  RunCountersRounds(state, /*arena_path=*/false);
}
BENCHMARK(BM_HandleFrame_CountersHeap);

void BM_HandleFrame_CountersArena(benchmark::State& state) {
  RunCountersRounds(state, /*arena_path=*/true);
}
BENCHMARK(BM_HandleFrame_CountersArena);

}  // namespace

BENCHMARK_MAIN();
