// Micro-benchmarks (google-benchmark) for the core operators every
// experiment rests on: twig evaluation, join execution, DME membership,
// schema validation, and path-query evaluation.
#include <benchmark/benchmark.h>

#include "common/interner.h"
#include "common/rng.h"
#include "graph/geo_generator.h"
#include "graph/path_query.h"
#include "relational/generator.h"
#include "relational/operators.h"
#include "schema/dme.h"
#include "schema/dms.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"

namespace {

using namespace qlearn;  // NOLINT: benchmark driver

void BM_TwigEvaluate(benchmark::State& state) {
  common::Interner interner;
  xml::XMarkOptions options;
  options.num_people = static_cast<int>(state.range(0));
  const xml::XmlTree doc = xml::GenerateXMark(options, &interner);
  auto query = twig::ParseTwig("//person[address/city]/name", &interner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(twig::Evaluate(query.value(), doc));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.NumNodes()));
}
BENCHMARK(BM_TwigEvaluate)->Arg(25)->Arg(100)->Arg(400);

void BM_EquiJoin(benchmark::State& state) {
  relational::JoinInstanceOptions options;
  options.left_rows = static_cast<int>(state.range(0));
  options.right_rows = static_cast<int>(state.range(0));
  const relational::JoinInstance inst =
      relational::GenerateJoinInstance(options, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relational::EquiJoin(inst.left, inst.right, inst.goal));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EquiJoin)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DmeMembership(benchmark::State& state) {
  common::Interner interner;
  auto dme = schema::ParseDme(
      "name, emailaddress, phone?, (homepage|creditcard)?, interest*",
      &interner);
  schema::Bag bag{{interner.Intern("name"), 1},
                  {interner.Intern("emailaddress"), 1},
                  {interner.Intern("interest"), 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dme.value().Accepts(bag));
  }
}
BENCHMARK(BM_DmeMembership);

void BM_PathQueryEval(benchmark::State& state) {
  common::Interner interner;
  graph::GeoOptions options;
  options.grid_width = static_cast<int>(state.range(0));
  options.grid_height = static_cast<int>(state.range(0));
  const graph::Graph g = graph::GenerateGeoGraph(options, &interner);
  auto regex = automata::ParseRegex("highway+.local?", &interner);
  const graph::PathQuery query{regex.value(), std::nullopt};
  for (auto _ : state) {
    graph::PathQueryEvaluator eval(query, g);
    benchmark::DoNotOptimize(eval.EvalFrom(0));
  }
}
BENCHMARK(BM_PathQueryEval)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
