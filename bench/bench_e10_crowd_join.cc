// E10 — the paper's crowdsourcing application (§3, after Marcus et al.):
// interactions are paid HITs, so minimizing questions minimizes dollars.
// Three sweeps:
//  (a) total spend vs instance size for three modes: the label-everything
//      brute baseline (Marcus et al.'s join task), the pilot-calibrated
//      feature filter on top of it, and the paper's version-space learning
//      session — which infers almost all labels for free;
//  (b) worker error rate vs replication: money buys accuracy (averaged over
//      seeds);
//  (c) the price ratio at which feature filtering pays off over brute.
#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "crowd/crowd_join.h"
#include "relational/generator.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

struct Instance {
  relational::JoinInstance inst;
  rlearn::PairUniverse universe;
  rlearn::PairMask goal = 0;
};

Instance MakeInstance(int rows, uint64_t seed) {
  relational::JoinInstanceOptions options;
  options.seed = seed;
  options.left_rows = rows;
  options.right_rows = rows;
  options.left_arity = 3;
  options.right_arity = 3;
  options.domain_size = 5;
  Instance out{relational::GenerateJoinInstance(options, 1), {}, 0};
  auto universe = rlearn::PairUniverse::AllCompatible(
      out.inst.left.schema(), out.inst.right.schema());
  out.universe = std::move(universe).value();
  for (size_t i = 0; i < out.universe.size(); ++i) {
    for (const auto& g : out.inst.goal) {
      if (out.universe.pairs()[i] == g) out.goal |= (1ULL << i);
    }
  }
  return out;
}

std::string Money(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "$%.3f", value);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "E10: crowdsourced join — HIT spend and accuracy\n"
      "(prices: pair comparison $0.010, feature read $0.001; noiseless "
      "except sweep (b))\n\n");

  crowd::HitCost prices;
  prices.pair_comparison = 0.01;
  prices.feature_extraction = 0.001;

  std::printf("(a) spend by mode and instance size\n");
  common::TablePrinter ta({"rows/side", "mode", "pair HITs", "feature HITs",
                           "total cost", "errors"});
  for (int rows : {10, 20, 40, 80}) {
    Instance ins = MakeInstance(rows, 900 + static_cast<uint64_t>(rows));
    rlearn::GoalJoinOracle truth(&ins.universe, ins.goal);
    crowd::CrowdJoinOptions base;
    base.worker_error_rate = 0;
    base.replication = 1;
    base.cost = prices;

    auto brute = crowd::RunCrowdBruteJoinSession(ins.universe, ins.inst.left,
                                                 ins.inst.right, &truth, base);
    crowd::CrowdJoinOptions filtered = base;
    filtered.feature_filtering = true;
    auto fbrute = crowd::RunCrowdBruteJoinSession(
        ins.universe, ins.inst.left, ins.inst.right, &truth, filtered);
    auto learn = crowd::RunCrowdJoinSession(ins.universe, ins.inst.left,
                                            ins.inst.right, &truth, base);
    if (!brute.ok() || !fbrute.ok() || !learn.ok()) continue;
    ta.AddRow({std::to_string(rows), "brute (ask all)",
               std::to_string(brute.value().ledger.pair_hits), "0",
               Money(brute.value().total_cost),
               std::to_string(brute.value().accuracy_errors)});
    ta.AddRow({std::to_string(rows), "feature+brute",
               std::to_string(fbrute.value().ledger.pair_hits),
               std::to_string(fbrute.value().ledger.feature_hits),
               Money(fbrute.value().total_cost),
               std::to_string(fbrute.value().accuracy_errors)});
    ta.AddRow({std::to_string(rows), "learning (ours)",
               std::to_string(learn.value().ledger.pair_hits), "0",
               Money(learn.value().total_cost),
               std::to_string(learn.value().accuracy_errors)});
  }
  std::printf("%s\n", ta.ToString().c_str());

  std::printf("(b) replication vs accuracy at 15%% worker error "
              "(40x40 learning sessions, mean of 10 seeds)\n");
  common::TablePrinter tb({"replication", "mean questions", "mean cost",
                           "mean errors", "mean dropped"});
  for (int replication : {1, 3, 5, 9}) {
    double questions = 0;
    double cost = 0;
    double errors = 0;
    double dropped = 0;
    const int kSeeds = 10;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Instance ins = MakeInstance(40, 901);
      rlearn::GoalJoinOracle truth(&ins.universe, ins.goal);
      crowd::CrowdJoinOptions options;
      options.worker_error_rate = 0.15;
      options.replication = replication;
      options.cost = prices;
      options.seed = 7000 + static_cast<uint64_t>(seed);
      auto r = crowd::RunCrowdJoinSession(ins.universe, ins.inst.left,
                                          ins.inst.right, &truth, options);
      if (!r.ok()) continue;
      questions += static_cast<double>(r.value().questions);
      cost += r.value().total_cost;
      errors += static_cast<double>(r.value().accuracy_errors);
      dropped += static_cast<double>(r.value().dropped_answers);
    }
    char qb[32], cb[32], eb[32], db[32];
    std::snprintf(qb, sizeof(qb), "%.1f", questions / kSeeds);
    std::snprintf(cb, sizeof(cb), "$%.3f", cost / kSeeds);
    std::snprintf(eb, sizeof(eb), "%.1f", errors / kSeeds);
    std::snprintf(db, sizeof(db), "%.1f", dropped / kSeeds);
    tb.AddRow({std::to_string(replication), qb, cb, eb, db});
  }
  std::printf("%s\n", tb.ToString().c_str());

  std::printf("(c) price-ratio sweep (40x40): when does the feature filter "
              "beat brute?\n");
  common::TablePrinter tc({"comparison : feature", "brute cost",
                           "feature+brute cost", "winner"});
  for (double ratio : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    Instance ins = MakeInstance(40, 902);
    rlearn::GoalJoinOracle truth(&ins.universe, ins.goal);
    crowd::CrowdJoinOptions options;
    options.worker_error_rate = 0;
    options.replication = 1;
    options.cost.pair_comparison = 0.01;
    options.cost.feature_extraction = 0.01 / ratio;
    auto brute = crowd::RunCrowdBruteJoinSession(
        ins.universe, ins.inst.left, ins.inst.right, &truth, options);
    options.feature_filtering = true;
    auto fbrute = crowd::RunCrowdBruteJoinSession(
        ins.universe, ins.inst.left, ins.inst.right, &truth, options);
    if (!brute.ok() || !fbrute.ok()) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f : 1", ratio);
    tc.AddRow({label, Money(brute.value().total_cost),
               Money(fbrute.value().total_cost),
               fbrute.value().total_cost < brute.value().total_cost
                   ? "feature"
                   : "brute"});
  }
  std::printf("%s\n", tc.ToString().c_str());

  std::printf(
      "shape check: (a) learning ≪ feature+brute < brute, errors ~0 "
      "throughout; (b) errors fall as replication rises, cost grows "
      "linearly; (c) the filter wins at realistic price ratios on n² "
      "workloads.\n");
  return 0;
}
