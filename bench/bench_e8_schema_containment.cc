// E8 — paper claims (§2): a polynomial algorithm for containment of
// disjunctive multiplicity schemas (the thesis' technical contribution),
// and PTIME query satisfiability / filter implication for disjunction-free
// schemas via dependency-graph embeddings. We time DMS containment while
// scaling the alphabet, cross-check it against brute-force bag enumeration
// on small alphabets, and time the dependency-graph decision procedures.
#include <cstdio>
#include <functional>

#include "benchlib/experiment_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "schema/depgraph.h"
#include "schema/df_dtd.h"
#include "schema/dms.h"
#include "schema/sampling.h"
#include "twig/twig_parser.h"

using namespace qlearn;  // NOLINT: experiment driver

int main() {
  std::printf("E8: schema decision procedures\n\n");

  // (a) DMS containment runtime vs alphabet size (PTIME for bounded clause
  // arity). Pairs: a schema against a loosened copy (contained) and against
  // an unrelated schema (usually not).
  common::TablePrinter scaling({"labels", "checks", "contained", "time ms"});
  for (int labels : {8, 16, 32, 64, 128}) {
    common::Rng rng(static_cast<uint64_t>(labels));
    common::Interner interner;
    schema::RandomDmsOptions options;
    options.num_labels = labels;
    int contained = 0;
    int checks = 0;
    benchlib::WallTimer timer;
    for (int rep = 0; rep < 10; ++rep) {
      const schema::Dms a = schema::RandomCanonicalDms(options, &rng,
                                                       &interner);
      const schema::Dms b = schema::RandomCanonicalDms(options, &rng,
                                                       &interner);
      checks += 3;
      if (a.ContainedIn(a)) ++contained;  // reflexivity
      if (a.ContainedIn(b)) ++contained;
      if (b.ContainedIn(a)) ++contained;
    }
    scaling.AddRow({std::to_string(labels), std::to_string(checks),
                    std::to_string(contained),
                    common::FormatDouble(timer.ElapsedMs(), 2)});
  }
  std::printf("(a) DMS containment scaling\n%s\n", scaling.ToString().c_str());

  // (b) Cross-check against brute-force bag enumeration (counts <= 3) on
  // 4-symbol expressions.
  {
    common::Interner interner;
    common::Rng rng(4242);
    std::vector<common::SymbolId> alphabet;
    for (const char* name : {"a", "b", "c", "d"}) {
      alphabet.push_back(interner.Intern(name));
    }
    int agree = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      schema::RandomDmsOptions options;
      options.num_labels = 5;
      const schema::Dms s1 =
          schema::RandomCanonicalDms(options, &rng, &interner);
      const schema::Dms s2 =
          schema::RandomCanonicalDms(options, &rng, &interner);
      const schema::Dme* e1 = s1.Rule(interner.Intern("t0"));
      const schema::Dme* e2 = s2.Rule(interner.Intern("t0"));
      if (e1 == nullptr || e2 == nullptr) continue;

      bool brute = true;
      schema::Bag bag;
      std::function<void(size_t)> sweep = [&](size_t idx) {
        if (!brute) return;
        if (idx == e1->Symbols().size()) {
          if (e1->Accepts(bag) && !e2->Accepts(bag)) brute = false;
          return;
        }
        const auto syms = e1->Symbols();
        for (int c = 0; c <= 3; ++c) {
          if (c == 0) {
            bag.erase(syms[idx]);
          } else {
            bag[syms[idx]] = c;
          }
          sweep(idx + 1);
        }
        bag.erase(syms[idx]);
      };
      sweep(0);
      if (e1->ContainedIn(*e2) == brute) ++agree;
    }
    std::printf("(b) DME containment vs brute-force enumeration: %d/%d "
                "agree\n\n",
                agree, trials);
  }

  // (c) Dependency-graph procedures: satisfiability and filter implication.
  {
    common::Interner interner;
    auto s = [&](const char* name) { return interner.Intern(name); };
    common::TablePrinter dep({"chain depth", "sat checks", "implied checks",
                              "time ms"});
    for (int depth : {8, 32, 128, 512}) {
      schema::Ms ms(s("l0"));
      for (int i = 0; i + 1 < depth; ++i) {
        const std::string a = "l" + std::to_string(i);
        const std::string b = "l" + std::to_string(i + 1);
        ms.SetMultiplicity(interner.Intern(a), interner.Intern(b),
                           i % 3 == 0 ? schema::Multiplicity::kOne
                                      : schema::Multiplicity::kOpt);
      }
      auto query = twig::ParseTwig("/l0//l" + std::to_string(depth / 2),
                                   &interner);
      if (!query.ok()) continue;
      benchlib::WallTimer timer;
      int sat = 0;
      int implied = 0;
      for (int rep = 0; rep < 5; ++rep) {
        if (schema::QuerySatisfiable(ms, query.value())) ++sat;
        auto filter = twig::ParseTwig("/l0[l1]", &interner);
        if (filter.ok() &&
            schema::FilterImplied(ms, s("l0"), filter.value(), 2)) {
          ++implied;
        }
      }
      dep.AddRow({std::to_string(depth), std::to_string(sat),
                  std::to_string(implied),
                  common::FormatDouble(timer.ElapsedMs(), 2)});
    }
    std::printf("(c) dependency-graph satisfiability/implication scaling\n%s",
                dep.ToString().c_str());
  }

  // (d) Disjunction-free DTD containment (coNP-complete per the paper) vs
  // the PTIME unordered projection: the factor-count scaling of the
  // automata-based exact check against MS containment on the projections.
  {
    common::Interner interner;
    auto s = [&](const std::string& name) { return interner.Intern(name); };
    common::TablePrinter dfd({"factors/label", "labels", "checks",
                              "DF-DTD ms", "MS projection ms"});
    for (int factors : {4, 8, 16, 32}) {
      // Chain-of-labels schema; each content model interleaves required and
      // starred copies of two symbols ("a b* a b* ..."), the shape that
      // makes ordered inclusion genuinely order-sensitive.
      auto make = [&](bool loose) {
        schema::DfDtd dtd(s("l0"));
        const int kLabels = 6;
        for (int i = 0; i < kLabels; ++i) {
          std::vector<schema::DfFactor> model;
          const common::SymbolId next = s("l" + std::to_string(i + 1));
          const common::SymbolId alt = s("m" + std::to_string(i));
          for (int f = 0; f < factors / 2; ++f) {
            model.push_back({next, loose ? schema::Multiplicity::kStar
                                         : schema::Multiplicity::kOpt});
            model.push_back({alt, schema::Multiplicity::kStar});
          }
          if (i < kLabels - 1) {
            dtd.SetRule(s("l" + std::to_string(i)), model);
          } else {
            dtd.SetRule(s("l" + std::to_string(i)), {});
          }
          dtd.SetRule(alt, {});
        }
        return dtd;
      };
      const schema::DfDtd tight = make(false);
      const schema::DfDtd loose = make(true);
      benchlib::WallTimer df_timer;
      int contained = 0;
      if (schema::CheckDfDtdContainment(tight, loose).contained) ++contained;
      if (schema::CheckDfDtdContainment(loose, tight).contained) ++contained;
      const double df_ms = df_timer.ElapsedMs();
      benchlib::WallTimer ms_timer;
      if (tight.ToMs().ContainedIn(loose.ToMs())) ++contained;
      if (loose.ToMs().ContainedIn(tight.ToMs())) ++contained;
      const double ms_ms = ms_timer.ElapsedMs();
      dfd.AddRow({std::to_string(factors), "6",
                  std::to_string(contained) + "/4 contained",
                  common::FormatDouble(df_ms, 2),
                  common::FormatDouble(ms_ms, 2)});
    }
    std::printf("\n(d) DF-DTD containment (coNP, automata) vs MS projection "
                "(PTIME)\n%s",
                dfd.ToString().c_str());
  }

  std::printf("\nshape check: containment time grows polynomially with the "
              "alphabet; the brute-force cross-check agrees on every pair; "
              "the ordered DF-DTD check is orders of magnitude costlier than "
              "the unordered projection as factor counts grow.\n");
  return 0;
}
