// E12 — chains of joins (§3: "extend our approach to other operators and
// also to chains of joins between many relations"). Two measurements:
//  (a) consistency stays PTIME as the chain grows: runtime of the edge-wise
//      most-specific check vs chain length and sample size;
//  (b) the interactive protocol still pays: questions vs candidate paths for
//      chains of length 2..4, random vs split-half strategies.
#include <cstdio>
#include <string>

#include "benchlib/experiment_util.h"
#include "common/table_printer.h"
#include "relational/generator.h"
#include "rlearn/chain_learner.h"
#include "rlearn/interactive_chain.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

/// Builds a chain of `k` relations r_i(key, fk, noise) where fk joins the
/// next relation's key; the FK goal is r_i.fk = r_{i+1}.key on every edge.
relational::ChainInstance MakeChain(int k, int rows, uint64_t seed) {
  relational::ChainInstanceOptions options;
  options.seed = seed;
  options.num_relations = k;
  options.rows = rows;
  return relational::GenerateChainInstance(options);
}

rlearn::ChainMask FkGoal(const rlearn::JoinChain& chain) {
  return rlearn::NamePairChainGoal(chain, "fk", "key");
}

}  // namespace

int main() {
  std::printf("E12: chains of joins — PTIME consistency and interactive "
              "learning\n\n");

  std::printf("(a) consistency runtime vs chain length (500 labeled paths)\n");
  common::TablePrinter ta(
      {"chain length", "edges", "examples", "ms", "consistent"});
  for (int k : {2, 3, 4, 5, 6}) {
    relational::ChainInstance ci =
        MakeChain(k, 40, 1200 + static_cast<uint64_t>(k));
    auto chain_or = rlearn::JoinChain::Create(ci.pointers);
    if (!chain_or.ok()) continue;
    const rlearn::JoinChain& chain = chain_or.value();
    const rlearn::ChainMask goal = FkGoal(chain);

    // Positives come from the materialized goal join (random sampling would
    // almost never hit a k-hop FK path); negatives are random paths.
    common::Rng rng(99);
    std::vector<rlearn::ChainExample> pos =
        rlearn::EvaluateChain(chain, goal, 50);
    std::vector<rlearn::ChainExample> neg;
    while (pos.size() + neg.size() < 500) {
      rlearn::ChainExample e;
      for (int i = 0; i < k; ++i) {
        e.rows.push_back(rng.Uniform(chain.relation(static_cast<size_t>(i))
                                         .size()));
      }
      if (!rlearn::ChainSatisfied(chain, goal, e)) neg.push_back(std::move(e));
    }
    benchlib::WallTimer timer;
    const rlearn::ChainConsistency c =
        rlearn::CheckChainConsistency(chain, pos, neg);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", timer.ElapsedMs());
    ta.AddRow({std::to_string(k), std::to_string(chain.num_edges()),
               std::to_string(pos.size()) + "+/" + std::to_string(neg.size()) +
                   "-",
               buf, c.consistent ? "yes" : "no"});
  }
  std::printf("%s\n", ta.ToString().c_str());

  std::printf("(b) interactive chain sessions (8 rows per relation)\n");
  common::TablePrinter tb({"chain length", "candidates", "strategy",
                           "questions", "forced + / -", "verified"});
  for (int k : {2, 3, 4}) {
    relational::ChainInstance ci =
        MakeChain(k, 8, 1300 + static_cast<uint64_t>(k));
    auto chain_or = rlearn::JoinChain::Create(ci.pointers);
    if (!chain_or.ok()) continue;
    const rlearn::JoinChain& chain = chain_or.value();
    const rlearn::ChainMask goal = FkGoal(chain);

    for (rlearn::ChainStrategy strategy :
         {rlearn::ChainStrategy::kRandom, rlearn::ChainStrategy::kSplitHalf}) {
      // Random is seed-sensitive; average both strategies over 5 seeds.
      const int kSeeds = 5;
      double questions = 0;
      double forced_pos = 0;
      double forced_neg = 0;
      size_t candidates = 0;
      bool verified = true;
      for (int seed = 0; seed < kSeeds; ++seed) {
        rlearn::GoalChainOracle oracle(goal);
        rlearn::InteractiveChainOptions options;
        options.strategy = strategy;
        options.max_candidates = 100000;
        options.seed = 40 + static_cast<uint64_t>(seed);
        auto r = rlearn::RunInteractiveChainSession(chain, &oracle, options);
        if (!r.ok()) continue;
        questions += static_cast<double>(r.value().questions);
        forced_pos += static_cast<double>(r.value().forced_positive);
        forced_neg += static_cast<double>(r.value().forced_negative);
        candidates = r.value().candidate_paths;
        if (r.value().conflicts != 0) verified = false;
        for (const rlearn::ChainExample& e :
             rlearn::EvaluateChain(chain, r.value().learned)) {
          if (!rlearn::ChainSatisfied(chain, goal, e)) verified = false;
        }
        for (const rlearn::ChainExample& e :
             rlearn::EvaluateChain(chain, goal)) {
          if (!rlearn::ChainSatisfied(chain, r.value().learned, e)) {
            verified = false;
          }
        }
      }
      char qb[32], fb[48];
      std::snprintf(qb, sizeof(qb), "%.1f", questions / kSeeds);
      std::snprintf(fb, sizeof(fb), "%.0f / %.0f", forced_pos / kSeeds,
                    forced_neg / kSeeds);
      tb.AddRow({std::to_string(k), std::to_string(candidates),
                 strategy == rlearn::ChainStrategy::kRandom ? "random"
                                                            : "split-half",
                 qb, fb, verified ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", tb.ToString().c_str());

  std::printf(
      "shape check: (a) consistency scales linearly in chain length and "
      "examples; (b) questions stay far below the candidate-path count and "
      "split-half beats random.\n");
  return 0;
}
