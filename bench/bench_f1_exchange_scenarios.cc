// F1 — the paper's Figure 1: the four cross-model data-exchange scenarios,
// each run end-to-end with a *learned* source query:
//   1. publish   relational -> XML    (interactive equi-join learning)
//   2. shred     XML -> relational    (twig learning from annotations)
//   3. shred     XML -> graph (RDF)   (twig learning from annotations)
//   4. publish   graph -> XML         (interactive path-query learning)
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "common/table_printer.h"
#include "exchange/mapping.h"
#include "graph/geo_generator.h"
#include "relational/generator.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

/// Learned twigs on XMark data are intentionally overspecialized (the E3
/// story); elide their middles so the table stays readable.
std::string Elide(std::string text) {
  constexpr size_t kMax = 72;
  if (text.size() <= kMax) return text;
  return text.substr(0, kMax / 2 - 2) + " ... " +
         text.substr(text.size() - (kMax / 2 - 3));
}

}  // namespace

int main() {
  common::Interner interner;
  common::TablePrinter table({"scenario", "learned query", "interactions",
                              "target instance", "status"});

  // Scenario 1: relational -> XML.
  {
    relational::Database db = relational::TinyCompanyDatabase();
    const relational::Relation& emp = *db.Find("employees");
    const relational::Relation& dept = *db.Find("departments");
    auto universe =
        rlearn::PairUniverse::AllCompatible(emp.schema(), dept.schema());
    rlearn::PairMask goal = 0;
    for (size_t i = 0; i < universe.value().size(); ++i) {
      const auto& p = universe.value().pairs()[i];
      if (emp.schema().attributes()[p.left].name == "dept_id" &&
          dept.schema().attributes()[p.right].name == "dept_id") {
        goal |= (1ULL << i);
      }
    }
    rlearn::GoalJoinOracle oracle(&universe.value(), goal);
    exchange::PublishOptions publish;
    publish.root_label = "staff";
    auto result = exchange::RunScenario1Publishing(
        universe.value(), emp, dept, &oracle, {}, publish, &interner);
    if (result.ok()) {
      table.AddRow({"1 rel->xml publish",
                    universe.value().MaskToString(result.value().session.learned,
                                                  emp.schema(), dept.schema()),
                    std::to_string(result.value().session.questions) + " of " +
                        std::to_string(result.value().session.candidate_pairs),
                    std::to_string(result.value().published.NumNodes()) +
                        " XML nodes",
                    result.value().session.conflicts == 0 ? "ok" : "CONFLICT"});
    } else {
      table.AddRow({"1 rel->xml publish", "-", "-", "-",
                    result.status().ToString()});
    }
  }

  // Scenarios 2 and 3 share an XMark-style document and annotations for the
  // goal //person[address]/name.
  {
    xml::XMarkOptions options;
    options.seed = 77;
    options.num_people = 25;
    const xml::XmlTree doc = xml::GenerateXMark(options, &interner);
    auto goal = twig::ParseTwig("/site/people/person[address]/name",
                                &interner);
    std::vector<xml::NodeId> annotated;
    for (xml::NodeId n : twig::Evaluate(goal.value(), doc)) {
      annotated.push_back(n);
      if (annotated.size() == 3) break;
    }

    exchange::ShredOptions shred;
    shred.relation_name = "names";
    auto s2 = exchange::RunScenario2Shredding(doc, annotated, shred,
                                              interner);
    if (s2.ok()) {
      table.AddRow({"2 xml->rel shred",
                    Elide(s2.value().learned.ToString(interner)),
                    std::to_string(annotated.size()) + " annotations",
                    std::to_string(s2.value().shredded.size()) + " tuples",
                    "ok"});
    } else {
      table.AddRow({"2 xml->rel shred", "-", "-", "-",
                    s2.status().ToString()});
    }

    auto s3 = exchange::RunScenario3Shredding(doc, annotated, interner);
    if (s3.ok()) {
      table.AddRow(
          {"3 xml->graph shred", Elide(s3.value().learned.ToString(interner)),
           std::to_string(annotated.size()) + " annotations",
           std::to_string(s3.value().shredded.graph.NumVertices()) +
               " vertices / " +
               std::to_string(s3.value().shredded.graph.NumEdges()) +
               " edges",
           "ok"});
    } else {
      table.AddRow({"3 xml->graph shred", "-", "-", "-",
                    s3.status().ToString()});
    }
  }

  // Scenario 4: graph -> XML.
  {
    graph::GeoOptions geo;
    geo.grid_width = 5;
    geo.grid_height = 4;
    const graph::Graph g = graph::GenerateGeoGraph(geo, &interner);
    auto regex = automata::ParseRegex("highway+", &interner);
    const graph::PathQuery goal{regex.value(), std::nullopt};
    glearn::GoalPathOracle oracle(goal, g);
    graph::Path seed;
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      if (interner.Name(g.edge(e).label) == "highway") {
        seed.start = g.edge(e).src;
        seed.edges = {e};
        break;
      }
    }
    glearn::InteractivePathOptions session;
    session.max_path_edges = 3;
    session.max_candidates = 1200;
    auto result = exchange::RunScenario4Publishing(g, seed, &oracle, session,
                                                   {}, &interner);
    if (result.ok()) {
      table.AddRow(
          {"4 graph->xml publish",
           result.value().session.hypothesis.ToString(interner),
           std::to_string(result.value().session.questions) + " of " +
               std::to_string(result.value().session.candidate_paths),
           std::to_string(result.value().published.NumNodes()) + " XML nodes",
           result.value().session.conflicts == 0 ? "ok" : "CONFLICT"});
    } else {
      table.AddRow({"4 graph->xml publish", "-", "-", "-",
                    result.status().ToString()});
    }
  }

  std::printf("F1: the four cross-model exchange scenarios (paper Figure 1)\n"
              "\n%s",
              table.ToString().c_str());
  std::printf("\nall four pipelines: learn the source query from examples, "
              "evaluate it, construct the target instance.\n");
  return 0;
}
