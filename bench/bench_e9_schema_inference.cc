// E9 — paper claims (§2): disjunctive multiplicity schemas are identifiable
// in the limit from positive examples, and the DMS formalism can express the
// XMark DTD (order-oblivious content models). We measure how many sampled
// documents the inference needs before recovering a random canonical goal
// schema, and check an inferred XMark-style DMS against fresh documents.
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "schema/inference.h"
#include "schema/sampling.h"
#include "xml/xmark.h"

using namespace qlearn;  // NOLINT: experiment driver

int main() {
  std::printf("E9: schema inference from positive examples\n\n");

  // (a) Documents until the inferred DMS is equivalent to the goal.
  common::TablePrinter conv({"labels", "trials", "mean docs to identify",
                             "max docs", "failures"});
  for (int labels : {4, 6, 8, 10}) {
    common::Rng rng(static_cast<uint64_t>(900 + labels));
    std::vector<double> needed;
    int failures = 0;
    for (int trial = 0; trial < 10; ++trial) {
      common::Interner interner;
      schema::RandomDmsOptions options;
      options.num_labels = labels;
      const schema::Dms goal =
          schema::RandomCanonicalDms(options, &rng, &interner);
      std::vector<xml::XmlTree> docs;
      int converged_at = -1;
      for (int n = 1; n <= 120; ++n) {
        auto doc = schema::SampleDocument(goal, &rng);
        if (!doc.ok()) break;
        docs.push_back(std::move(doc).value());
        std::vector<const xml::XmlTree*> ptrs;
        for (const auto& d : docs) ptrs.push_back(&d);
        auto inferred = schema::InferDms(ptrs);
        if (inferred.ok() && inferred.value().EquivalentTo(goal)) {
          converged_at = n;
          break;
        }
      }
      if (converged_at > 0) {
        needed.push_back(converged_at);
      } else {
        ++failures;
      }
    }
    double max_docs = 0;
    for (double d : needed) max_docs = std::max(max_docs, d);
    conv.AddRow({std::to_string(labels), "10",
                 common::FormatDouble(benchlib::Mean(needed), 1),
                 common::FormatDouble(max_docs, 0),
                 std::to_string(failures)});
  }
  std::printf("(a) identification in the limit of random canonical DMS\n%s\n",
              conv.ToString().c_str());

  // (b) XMark: infer a DMS from generated documents; it must validate fresh
  // documents (DMS expresses the XMark DTD modulo order) and discover the
  // text|parlist exclusivity of description elements.
  {
    common::Interner interner;
    std::vector<xml::XmlTree> corpus;
    for (uint64_t seed = 0; seed < 12; ++seed) {
      xml::XMarkOptions options;
      options.seed = 3000 + seed;
      corpus.push_back(xml::GenerateXMark(options, &interner));
    }
    std::vector<const xml::XmlTree*> ptrs;
    for (const auto& d : corpus) ptrs.push_back(&d);
    auto inferred = schema::InferDms(ptrs);
    if (!inferred.ok()) {
      std::printf("(b) XMark inference failed: %s\n",
                  inferred.status().ToString().c_str());
      return 1;
    }
    int valid = 0;
    const int fresh = 10;
    for (uint64_t seed = 0; seed < fresh; ++seed) {
      xml::XMarkOptions options;
      options.seed = 9000 + seed;
      const xml::XmlTree doc = xml::GenerateXMark(options, &interner);
      if (inferred.value().Validates(doc)) ++valid;
    }
    const schema::Dme* description =
        inferred.value().Rule(interner.Intern("description"));
    std::printf("(b) XMark-style schema inference\n");
    std::printf("    inferred rules: %zu labels\n",
                inferred.value().Labels().size());
    std::printf("    fresh documents validated: %d/%d\n", valid, fresh);
    if (description != nullptr) {
      std::printf("    description -> %s (expected: the exclusive choice "
                  "text | parlist)\n",
                  description->ToString(interner).c_str());
    }
  }
  std::printf("\nshape check: identification converges with bounded samples "
              "and never fails; the XMark content models (including the "
              "choice in description) are recovered.\n");
  return 0;
}
