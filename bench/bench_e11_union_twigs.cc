// E11 — the paper's proposed richer language (§2): unions of twig queries,
// "for which testing consistency is trivial but learnability remains an open
// question". Two measurements:
//  (a) consistency really is cheap: runtime of the PTIME union-consistency
//      check vs the exponential single-twig check on the same repeated-label
//      instances that blow the single-twig antichain up (E4's family);
//  (b) ablation on disjunctive goals: a single approximate twig must err,
//      the union learner reaches zero training error with few disjuncts.
#include <cstdio>
#include <string>

#include "benchlib/experiment_util.h"
#include "common/interner.h"
#include "common/table_printer.h"
#include "learn/approximate.h"
#include "learn/consistency.h"
#include "learn/union_learner.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

/// Chain document a^n with a marker child at one position — the alignment-
/// ambiguous family used by E4.
xml::XmlTree ChainDoc(int length, int marker_at, common::Interner* interner) {
  std::string text;
  for (int i = 0; i < length; ++i) text += "<a>";
  text += "<m/>";
  for (int i = 0; i < length; ++i) text += "</a>";
  (void)marker_at;
  auto t = xml::ParseXml(text, interner);
  return std::move(t).value();
}

xml::NodeId NthA(const xml::XmlTree& doc, const common::Interner& interner,
                 int n) {
  int seen = 0;
  for (xml::NodeId v : doc.PreOrder()) {
    if (interner.Name(doc.label(v)) == "a" && seen++ == n) return v;
  }
  return doc.root();
}

}  // namespace

int main() {
  common::Interner interner;
  std::printf(
      "E11: unions of twig queries — trivial consistency + learnability "
      "ablation\n\n");

  std::printf("(a) consistency runtime: single twig (exponential antichain) "
              "vs union (PTIME)\n");
  common::TablePrinter ta({"examples", "single: candidates", "single ms",
                           "single verdict", "union ms", "union verdict"});
  for (int n : {2, 3, 4, 5, 6}) {
    // n positives on nested a-chains of different depths plus one negative:
    // the classic alignment-ambiguity family.
    std::vector<xml::XmlTree> docs;
    for (int i = 0; i < n; ++i) docs.push_back(ChainDoc(4 + i, 0, &interner));
    xml::XmlTree neg_doc = ChainDoc(3, 0, &interner);
    std::vector<learn::TreeExample> pos;
    for (int i = 0; i < n; ++i) {
      pos.push_back({&docs[i], NthA(docs[i], interner, (4 + i) / 2)});
    }
    std::vector<learn::TreeExample> neg = {{&neg_doc, NthA(neg_doc, interner, 2)}};

    benchlib::WallTimer t1;
    learn::ConsistencyOptions copts;
    copts.max_candidates = 100000;
    copts.canonical_fast_path = false;  // measure the raw enumeration
    auto single = learn::CheckTwigConsistency(pos, neg, copts);
    const double single_ms = t1.ElapsedMs();

    benchlib::WallTimer t2;
    auto united = learn::CheckUnionConsistency(pos, neg);
    const double union_ms = t2.ElapsedMs();

    char sbuf[32];
    std::snprintf(sbuf, sizeof(sbuf), "%.2f", single_ms);
    char ubuf[32];
    std::snprintf(ubuf, sizeof(ubuf), "%.3f", union_ms);
    ta.AddRow({std::to_string(n), std::to_string(single.candidates_explored),
               sbuf,
               single.verdict == learn::Consistency::kConsistent
                   ? "consistent"
                   : (single.verdict == learn::Consistency::kInconsistent
                          ? "inconsistent"
                          : "unknown"),
               ubuf, united.consistent ? "consistent" : "inconsistent"});
  }
  std::printf("%s\n", ta.ToString().c_str());

  std::printf("(b) disjunctive goals: single approximate twig vs union "
              "learner\n");
  common::TablePrinter tb({"contexts k", "positives", "single twig errors",
                           "union errors", "disjuncts", "union size"});
  for (int k : {2, 3, 4, 5}) {
    // Document with k positive contexts c1..ck plus k decoy contexts; the
    // goal is "x under any of c1..ck" — inherently disjunctive.
    std::string text = "<r>";
    for (int i = 0; i < k; ++i) {
      text += "<c" + std::to_string(i) + "><x/></c" + std::to_string(i) + ">";
    }
    for (int i = 0; i < k; ++i) {
      text += "<d" + std::to_string(i) + "><x/></d" + std::to_string(i) + ">";
    }
    text += "</r>";
    auto doc_or = xml::ParseXml(text, &interner);
    const xml::XmlTree doc = std::move(doc_or).value();

    std::vector<learn::TreeExample> pos;
    std::vector<learn::TreeExample> neg;
    int xs = 0;
    for (xml::NodeId v : doc.PreOrder()) {
      if (interner.Name(doc.label(v)) == "x") {
        if (xs < k) {
          pos.push_back({&doc, v});
        } else {
          neg.push_back({&doc, v});
        }
        ++xs;
      }
    }

    learn::ApproximateOptions aopts;
    auto single = learn::LearnTwigApproximate(pos, neg, aopts);
    const size_t single_errors =
        single.ok() ? single.value().false_positives +
                          single.value().false_negatives
                    : pos.size();

    learn::UnionLearnerOptions uopts;
    uopts.max_disjuncts = static_cast<size_t>(k);
    auto united = learn::LearnTwigUnion(pos, neg, uopts);
    size_t union_errors = 0;
    size_t disjuncts = 0;
    size_t usize = 0;
    if (united.ok()) {
      disjuncts = united.value().query.NumDisjuncts();
      usize = united.value().query.TotalSize();
      for (const auto& p : pos) {
        if (!united.value().query.Selects(*p.doc, p.node)) ++union_errors;
      }
      for (const auto& ng : neg) {
        if (united.value().query.Selects(*ng.doc, ng.node)) ++union_errors;
      }
    }
    tb.AddRow({std::to_string(k), std::to_string(pos.size()),
               std::to_string(single_errors), std::to_string(union_errors),
               std::to_string(disjuncts), std::to_string(usize)});
  }
  std::printf("%s\n", tb.ToString().c_str());

  std::printf(
      "shape check: (a) union consistency answers in microseconds while the "
      "single-twig check enumerates exponentially many candidates; (b) the "
      "union learner reaches zero error where any single twig must err.\n");
  return 0;
}
