// E4 — paper claims (§2): consistency of twig queries with positive AND
// negative examples is NP-complete in general, but becomes tractable when
// the example sets have bounded size. Two regimes of the same checker:
//   (a) growing number of examples over ambiguity-heavy documents (chains of
//       one repeated label) -> the explored candidate space explodes;
//   (b) a fixed number of examples with growing document size -> time grows
//       polynomially.
#include <cstdio>

#include "benchlib/experiment_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "learn/consistency.h"
#include "xml/xml_tree.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

/// A chain a/a/.../a of the given length with one marked node; repeated
/// labels maximize alignment ambiguity (the NP-hardness fuel).
xml::XmlTree Chain(common::Interner* interner, int length) {
  xml::XmlTree doc;
  xml::NodeId cur = doc.AddRoot(interner->Intern("a"));
  for (int i = 1; i < length; ++i) {
    cur = doc.AddChild(cur, interner->Intern("a"));
  }
  return doc;
}

xml::NodeId NodeAtDepth(const xml::XmlTree& doc, uint32_t depth) {
  for (xml::NodeId n : doc.PreOrder()) {
    if (doc.depth(n) == depth) return n;
  }
  return doc.root();
}

}  // namespace

int main() {
  common::Interner interner;

  std::printf("E4(a): unbounded examples — candidates explored vs #positive "
              "examples\n(chains of a repeated label; exploration capped at "
              "20000 candidates;\nthe PTIME canonical fast path is disabled "
              "here to expose the raw enumeration)\n\n");
  common::TablePrinter grow({"#positives", "#negatives", "candidates",
                             "time ms", "verdict"});
  std::vector<xml::XmlTree> chains;
  for (int i = 0; i < 8; ++i) {
    chains.push_back(Chain(&interner, 6 + i));
  }
  for (int k = 1; k <= 6; ++k) {
    std::vector<learn::TreeExample> positives;
    std::vector<learn::TreeExample> negatives;
    for (int i = 0; i < k; ++i) {
      positives.push_back(
          learn::TreeExample{&chains[i], NodeAtDepth(chains[i], 4)});
    }
    negatives.push_back(
        learn::TreeExample{&chains[6], NodeAtDepth(chains[6], 1)});
    learn::ConsistencyOptions options;
    options.max_candidates = 20000;
    options.canonical_fast_path = false;
    benchlib::WallTimer timer;
    const auto report =
        learn::CheckTwigConsistency(positives, negatives, options);
    const char* verdict =
        report.verdict == learn::Consistency::kConsistent
            ? "consistent"
            : (report.verdict == learn::Consistency::kInconsistent
                   ? "inconsistent"
                   : "unknown(cap)");
    grow.AddRow({std::to_string(k), "1",
                 std::to_string(report.candidates_explored),
                 common::FormatDouble(timer.ElapsedMs(), 2), verdict});
  }
  std::printf("%s", grow.ToString().c_str());

  std::printf("\nE4(b): bounded examples (2 positives, 1 negative) — time vs "
              "document size\n(the PTIME canonical-generalization "
              "certificate decides these)\n\n");
  common::TablePrinter bounded({"chain length", "doc nodes", "time ms",
                                "verdict"});
  for (int len : {8, 16, 32, 64, 128}) {
    xml::XmlTree d1 = Chain(&interner, len);
    xml::XmlTree d2 = Chain(&interner, len + 1);
    xml::XmlTree d3 = Chain(&interner, len);
    std::vector<learn::TreeExample> positives{
        learn::TreeExample{&d1, NodeAtDepth(d1, static_cast<uint32_t>(len / 2))},
        learn::TreeExample{&d2,
                           NodeAtDepth(d2, static_cast<uint32_t>(len / 2))}};
    std::vector<learn::TreeExample> negatives{
        learn::TreeExample{&d3, NodeAtDepth(d3, 0)}};
    learn::ConsistencyOptions options;
    options.max_candidates = 20000;
    benchlib::WallTimer timer;
    const auto report =
        learn::CheckTwigConsistency(positives, negatives, options);
    bounded.AddRow({std::to_string(len),
                    std::to_string(static_cast<size_t>(len) * 2 + 1),
                    common::FormatDouble(timer.ElapsedMs(), 2),
                    report.verdict == learn::Consistency::kConsistent
                        ? "consistent"
                        : "other"});
  }
  std::printf("%s", bounded.ToString().c_str());
  std::printf("\nshape check: (a) grows superlinearly in #examples while (b) "
              "stays polynomial in document size — NP-complete in general, "
              "tractable for bounded example sets.\n");
  return 0;
}
