// E13 — the question the paper's schema-aware optimization leaves open
// (§2): "when we add a filter to the learned query, we know that the filter
// is not implied by the schema, but we do not know whether the query with
// the filter is equivalent in the presence of schema with the same query
// without the filter". Our bounded coNP checker settles it per instance:
//  (a) audit of E3's pruning: every filter dropped by PTIME implication is
//      certified equivalence-preserving under the schema; every kept
//      (non-implied) filter is certified non-redundant;
//  (b) cost scaling: the exponential schema-containment check vs the PTIME
//      implication test it approximates — why the paper prunes with
//      implication instead of containment.
#include <cstdio>
#include <string>

#include "benchlib/experiment_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "schema/depgraph.h"
#include "schema/schema_containment.h"
#include "twig/twig_parser.h"

using namespace qlearn;  // NOLINT: experiment driver

namespace {

const char* VerdictName(schema::SchemaContainment v) {
  switch (v) {
    case schema::SchemaContainment::kContained:
      return "equivalent";
    case schema::SchemaContainment::kNotContained:
      return "NOT equivalent";
    case schema::SchemaContainment::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace

int main() {
  common::Interner interner;
  auto s = [&](const std::string& name) { return interner.Intern(name); };

  std::printf("E13: equivalence in the presence of the schema — the "
              "pruning audit\n\n");

  // The person-registry schema of E3: required identity fields, optional
  // contact fields.
  schema::Ms ms(s("people"));
  ms.SetMultiplicity(s("people"), s("person"), schema::Multiplicity::kPlus);
  ms.SetMultiplicity(s("person"), s("name"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("person"), s("id"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("person"), s("address"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("person"), s("phone"), schema::Multiplicity::kOpt);
  ms.SetMultiplicity(s("person"), s("email"), schema::Multiplicity::kOpt);
  ms.SetMultiplicity(s("address"), s("city"), schema::Multiplicity::kOne);
  ms.SetMultiplicity(s("address"), s("street"), schema::Multiplicity::kOpt);
  ms.AddLeafLabel(s("name"));
  ms.AddLeafLabel(s("id"));
  ms.AddLeafLabel(s("phone"));
  ms.AddLeafLabel(s("email"));
  ms.AddLeafLabel(s("city"));
  ms.AddLeafLabel(s("street"));

  std::printf("(a) per-filter audit: PTIME implication vs certified "
              "equivalence under schema\n");
  common::TablePrinter ta({"query with filter", "filter", "implied (PTIME)",
                           "pruned ≡_S kept?", "agree"});
  struct Case {
    const char* with_filter;
    const char* without;
    const char* filter_label;
  };
  for (const Case& c : {
           Case{"/people/person[name]/phone", "/people/person/phone",
                "name"},
           Case{"/people/person[id]/phone", "/people/person/phone", "id"},
           Case{"/people/person[address/city]/phone",
                "/people/person/phone", "address/city"},
           Case{"/people/person[email]/phone", "/people/person/phone",
                "email"},
           Case{"/people/person[address/street]/phone",
                "/people/person/phone", "address/street"},
       }) {
    auto with = twig::ParseTwig(c.with_filter, &interner);
    auto without = twig::ParseTwig(c.without, &interner);
    if (!with.ok() || !without.ok()) continue;
    // Locate the filter branch root: the non-selection child of 'person'.
    twig::QNodeId filter_root = twig::kInvalidQNode;
    for (twig::QNodeId q = 1; q < with.value().NumNodes(); ++q) {
      if (with.value().parent(q) != 0 &&
          with.value().label(with.value().parent(q)) == s("person") &&
          with.value().label(q) != s("phone")) {
        filter_root = q;
        break;
      }
    }
    if (filter_root == twig::kInvalidQNode) continue;
    const bool implied =
        schema::FilterImplied(ms, s("person"), with.value(), filter_root);
    const schema::SchemaContainment equiv =
        schema::CheckEquivalenceUnderSchema(with.value(), without.value(),
                                            ms);
    const bool agree =
        implied == (equiv == schema::SchemaContainment::kContained);
    ta.AddRow({c.with_filter, c.filter_label, implied ? "yes" : "no",
               VerdictName(equiv), agree ? "yes" : "NO"});
  }
  std::printf("%s\n", ta.ToString().c_str());

  std::printf("(b) cost: PTIME implication vs exponential containment\n"
              "(layered schemas, width 3 x depth L: //t has 3^L typings; "
              "the contained pair forces exhausting them)\n");
  common::TablePrinter tb({"layers", "typings", "implication ms",
                           "containment ms", "verdict"});
  for (int layers : {2, 3, 4, 5, 6}) {
    const int kWidth = 3;
    schema::Ms dag(s("r"));
    // r -> level-0 labels; level-i -> every level-(i+1) label; last -> t.
    for (int w = 0; w < kWidth; ++w) {
      dag.SetMultiplicity(s("r"), s("n0_" + std::to_string(w)),
                          schema::Multiplicity::kOpt);
    }
    for (int l = 0; l + 1 < layers; ++l) {
      for (int a = 0; a < kWidth; ++a) {
        for (int b = 0; b < kWidth; ++b) {
          dag.SetMultiplicity(
              s("n" + std::to_string(l) + "_" + std::to_string(a)),
              s("n" + std::to_string(l + 1) + "_" + std::to_string(b)),
              schema::Multiplicity::kOpt);
        }
      }
    }
    for (int w = 0; w < kWidth; ++w) {
      dag.SetMultiplicity(
          s("n" + std::to_string(layers - 1) + "_" + std::to_string(w)),
          s("t"), schema::Multiplicity::kOpt);
    }
    dag.AddLeafLabel(s("t"));

    auto q1 = twig::ParseTwig("//t", &interner);
    auto q2 = twig::ParseTwig("/r//t", &interner);
    if (!q1.ok() || !q2.ok()) continue;

    benchlib::WallTimer imp_timer;
    const int kReps = 100;
    for (int rep = 0; rep < kReps; ++rep) {
      auto filter = twig::ParseTwig("/r[n0_0]", &interner);
      if (filter.ok()) {
        schema::FilterImplied(dag, s("r"), filter.value(), 2);
      }
    }
    const double imp_ms = imp_timer.ElapsedMs() / kReps;

    benchlib::WallTimer cont_timer;
    schema::SchemaContainmentOptions copts;
    copts.max_instantiations = 2000000;
    copts.max_paths_per_edge = 100000;
    const schema::SchemaContainmentReport report =
        schema::CheckContainmentUnderSchema(q1.value(), q2.value(), dag,
                                            copts);
    const double cont_ms = cont_timer.ElapsedMs();
    tb.AddRow({std::to_string(layers), std::to_string(report.instantiations),
               common::FormatDouble(imp_ms, 4),
               common::FormatDouble(cont_ms, 3),
               VerdictName(report.verdict == schema::SchemaContainment::
                                   kContained
                               ? schema::SchemaContainment::kContained
                               : report.verdict)});
  }
  std::printf("%s\n", tb.ToString().c_str());

  std::printf(
      "shape check: (a) the PTIME implication test agrees with certified "
      "schema-equivalence on every filter — pruning is safe; (b) "
      "implication stays flat while containment's typing space grows with "
      "schema depth (the paper's PTIME vs coNP separation).\n");
  return 0;
}
