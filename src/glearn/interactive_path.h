// Interactive path-query learning on a graph — the paper's geographical
// scenario: the learner proposes *paths* for the user to label, propagates
// uninformative paths, and can prioritize paths matching a historical query
// workload (the "all previous users wanted highway-only paths" heuristic).
#ifndef QLEARN_GLEARN_INTERACTIVE_PATH_H_
#define QLEARN_GLEARN_INTERACTIVE_PATH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "glearn/concat_pattern.h"
#include "graph/path_query.h"

namespace qlearn {
namespace glearn {

/// Labels candidate paths; backed by a hidden goal query in benchmarks.
class PathOracle {
 public:
  virtual ~PathOracle() = default;
  virtual bool IsPositive(const graph::Graph& g, const graph::Path& path) = 0;
};

/// Oracle defined by a hidden goal path query.
class GoalPathOracle : public PathOracle {
 public:
  GoalPathOracle(const graph::PathQuery& goal, const graph::Graph& g)
      : evaluator_(goal, g) {}
  bool IsPositive(const graph::Graph& g, const graph::Path& path) override {
    (void)g;
    return evaluator_.MatchesPath(path);
  }

 private:
  graph::PathQueryEvaluator evaluator_;
};

/// Question-selection strategies (compared in E7).
enum class PathStrategy {
  kRandom,    ///< uniform over informative paths
  kFrontier,  ///< smallest generalization cost first (conservative growth)
  kWorkload,  ///< paths matching the historical workload first
};

struct InteractivePathOptions {
  PathStrategy strategy = PathStrategy::kFrontier;
  uint64_t seed = 13;
  /// Candidate pool: paths of at most this many edges...
  size_t max_path_edges = 4;
  /// ...capped at this many paths.
  size_t max_candidates = 4000;
  size_t max_questions = 1000000;
  /// Historical workload for kWorkload (regexes of past learned queries).
  std::vector<automata::RegexPtr> workload;
};

struct InteractivePathResult {
  ConcatPattern hypothesis;
  /// Max weight among positive paths (a most-specific weight bound).
  double max_positive_weight = 0;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_paths = 0;
  /// Non-zero when the hypothesis ends up accepting a labeled-negative word
  /// (goal outside the concat class).
  size_t conflicts = 0;
};

/// Runs the interactive protocol starting from one positive seed path.
common::Result<InteractivePathResult> RunInteractivePathSession(
    const graph::Graph& g, const graph::Path& seed, PathOracle* oracle,
    const InteractivePathOptions& options = {});

}  // namespace glearn
}  // namespace qlearn

#endif  // QLEARN_GLEARN_INTERACTIVE_PATH_H_
