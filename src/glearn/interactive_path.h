// Interactive path-query learning on a graph — the paper's geographical
// scenario: the learner proposes *paths* for the user to label, propagates
// uninformative paths, and can prioritize paths matching a historical query
// workload (the "all previous users wanted highway-only paths" heuristic).
//
// PathEngine implements the unified session Engine concept
// (session/session.h); RunInteractivePathSession is the legacy one-shot
// wrapper over session::LearningSession<PathEngine>.
#ifndef QLEARN_GLEARN_INTERACTIVE_PATH_H_
#define QLEARN_GLEARN_INTERACTIVE_PATH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "glearn/concat_pattern.h"
#include "graph/path_query.h"
#include "session/frontier.h"
#include "session/propagation.h"
#include "session/session.h"
#include "session/snapshot.h"

namespace qlearn {
namespace glearn {

/// Labels candidate paths; backed by a hidden goal query in benchmarks.
/// Implementations that need the graph (e.g. to resolve edge labels) bind
/// it at construction time, like GoalPathOracle does.
class PathOracle {
 public:
  virtual ~PathOracle() = default;
  virtual bool IsPositive(const graph::Path& path) = 0;
};

/// Oracle defined by a hidden goal path query.
class GoalPathOracle : public PathOracle {
 public:
  GoalPathOracle(const graph::PathQuery& goal, const graph::Graph& g)
      : evaluator_(goal, g) {}
  bool IsPositive(const graph::Path& path) override {
    return evaluator_.MatchesPath(path);
  }

 private:
  graph::PathQueryEvaluator evaluator_;
};

/// Question-selection strategies (compared in E7).
enum class PathStrategy {
  kRandom,    ///< uniform over informative paths
  kFrontier,  ///< smallest generalization cost first (conservative growth)
  kWorkload,  ///< paths matching the historical workload first
};

/// Knob ownership contract (same split on all four engines' options
/// structs): `strategy`, the candidate-pool knobs, and `workload` are
/// consumed by the engine itself; `seed` and `max_questions` are consumed
/// only by the RunInteractivePathSession wrapper, which forwards them into
/// session::SessionOptions — an engine driven directly through
/// LearningSession ignores them.
struct InteractivePathOptions {
  PathStrategy strategy = PathStrategy::kFrontier;
  uint64_t seed = session::SessionDefaults::kLegacyPathSeed;
  /// Candidate pool: paths of at most this many edges...
  size_t max_path_edges = 4;
  /// ...capped at this many paths.
  size_t max_candidates = 4000;
  size_t max_questions = session::SessionDefaults::kMaxQuestions;
  /// Historical workload for kWorkload (regexes of past learned queries).
  std::vector<automata::RegexPtr> workload;
};

struct InteractivePathResult {
  ConcatPattern hypothesis;
  /// Max weight among positive paths (a most-specific weight bound).
  double max_positive_weight = 0;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_paths = 0;
  /// Non-zero when the hypothesis ends up accepting a labeled-negative word
  /// (goal outside the concat class).
  size_t conflicts = 0;
};

/// Session engine for path-query learning. Questions reference candidate
/// paths owned by the engine (the pointers stay valid for the engine's
/// lifetime, including after it is moved into a LearningSession). The
/// caller must seed the engine with one known-positive path.
class PathEngine {
 public:
  /// One question: a candidate path and its label word.
  struct Question {
    size_t index;  ///< candidate index (stable engine-internal id)
    const graph::Path* path;
    const std::vector<common::SymbolId>* word;
  };

  using Item = Question;
  using HypothesisT = ConcatPattern;

  /// Wire-payload hooks: the tag and the stable model-specific coordinates
  /// of a question item — the candidate index, which is stable for the
  /// engine's lifetime (see service/wire.h).
  static constexpr const char* kPayloadKind = "path";
  static std::vector<uint64_t> ItemIds(const Item& item) {
    return {static_cast<uint64_t>(item.index)};
  }

  /// `g` must outlive the engine; `seed` is a path the user already marked
  /// positive (the engine does not re-ask it).
  PathEngine(const graph::Graph* g, const graph::Path& seed,
             const InteractivePathOptions& options = {});

  /// Movable but not copyable: frontier Questions point into the engine's
  /// own candidate storage (moves transfer the buffer, copies would alias
  /// the source's and dangle once it dies).
  PathEngine(const PathEngine&) = delete;
  PathEngine& operator=(const PathEngine&) = delete;
  PathEngine(PathEngine&&) = default;
  PathEngine& operator=(PathEngine&&) = default;

  std::optional<Item> SelectQuestion(common::Rng* rng);
  void MarkAsked(const Item& item);
  void Observe(const Item& item, bool positive, session::SessionStats* stats);
  /// Per-answer propagation deltas (engine concept, session/session.h): a
  /// negative answer queues its candidate index; a positive answer marks
  /// the hypothesis changed iff generalizing actually grew the pattern.
  void OnPositive(const Item& item);
  void OnNegative(const Item& item);
  /// Flushes queued deltas. Steady state: only the *new* negative word is
  /// tested against each open candidate's memoized generalized pattern —
  /// O(open) accept tests instead of O(open × negatives) generalize+accept
  /// sweeps. A hypothesis change (and the baseline call) re-tests the open
  /// set once, memoizing the generalizations the frontier already caches
  /// for scoring.
  void Propagate(session::SessionStats* stats);
  /// True once the hypothesis accepted a labeled-negative word (goal
  /// outside the concat class).
  bool Aborted() const { return aborted_; }
  HypothesisT Current() const { return hypothesis_; }
  HypothesisT Finish(session::SessionStats* /*stats*/) { return hypothesis_; }

  size_t candidate_paths() const { return frontier_.size(); }
  /// Max weight among positive paths (a most-specific weight bound).
  double max_positive_weight() const { return max_positive_weight_; }

  // Introspection for conformance tests and UIs.
  bool WasAsked(size_t index) const { return frontier_.WasAsked(index); }
  bool HasForcedLabel(size_t index) const {
    return frontier_.HasForcedLabel(index);
  }

  /// Test/bench hook: every flush replays the historical full-universe
  /// rescan (fresh Generalize per candidate per flush) instead of the
  /// delta pass (identical behavior, different cost).
  void set_reference_propagation(bool on) { reference_propagation_ = on; }
  /// Test/bench hook: makes the next flush run the full re-test pass.
  void ForceFullRepropagation() { prop_.RecordHypothesisChange(); }

  /// Hibernation: appends a versioned engine image (strategy, hypothesis
  /// pattern, weight bound, accumulated negative words, frontier states) to
  /// `writer`. Call only between answered turns (queued deltas flushed).
  /// Follows the join/chain "QLJE"/"QLCE" pattern; the candidate pool is
  /// rebuilt deterministically by the constructor, not serialized.
  void SerializeSnapshot(session::SnapshotWriter* writer) const;
  /// Restores an image produced by SerializeSnapshot into an engine built
  /// over the same graph/options. Mismatched geometry or strategy is
  /// rejected with InvalidArgument.
  common::Status RestoreSnapshot(session::SnapshotReader* reader);

 private:
  struct Candidate {
    graph::Path path;
    std::vector<common::SymbolId> word;
    bool workload_hit = false;
  };

  /// Greedy scores are (workload-hit, -generalization-cost) pairs compared
  /// lexicographically; kFrontier pins the hit component to 0.
  using PathScore = std::pair<long, long>;
  /// Memoized per-candidate intermediate: the hypothesis generalized with
  /// the candidate's word, plus the edit cost. Scoring reads the cost; the
  /// forced-negative predicate (would absorbing this word swallow a known
  /// negative?) reads the pattern — so negative-answer deltas never re-run
  /// Generalize. Valid until the hypothesis changes.
  struct GenMemo {
    ConcatPattern extended;
    int cost = 0;
  };
  using FrontierT = session::Frontier<Question, PathScore, GenMemo>;
  /// Delta queue only (deltas are candidate indices of new negatives); the
  /// witness-bucket half is unused — the per-candidate accept test against
  /// one word is already O(1) per candidate.
  using PropagationT = session::PropagationIndex<size_t, size_t>;

  /// Memoized generalization of candidate `k`'s word into the current
  /// hypothesis (recomputed only after a hypothesis change).
  const std::optional<GenMemo>& GenMemoOf(size_t k);
  /// Memoized generalization cost of absorbing candidate `k`'s word into
  /// the current hypothesis (stale only when the hypothesis changes).
  long CostOf(size_t k);

  /// The historical full-universe rescan, verbatim (reference mode).
  void ReferencePropagate(session::SessionStats* stats);
  /// Baseline / hypothesis-change pass over the open set, via the memos.
  void FullPropagate(session::SessionStats* stats);
  /// Steady-state flush: tests only the queued new negatives against each
  /// open candidate's memoized generalized pattern.
  void ApplyNegativeDeltas(session::SessionStats* stats);
#ifndef NDEBUG
  void AssertPropagationFixpoint();
#endif

  const graph::Graph* g_;
  PathStrategy strategy_;
  std::vector<Candidate> candidates_;  // model data; states live in frontier_
  FrontierT frontier_;
  ConcatPattern hypothesis_;
  double max_positive_weight_ = 0;
  std::vector<std::vector<common::SymbolId>> negative_words_;
  PropagationT prop_;
  /// Did the last positive Observe actually grow the hypothesis?
  bool hypothesis_advanced_ = false;
  bool reference_propagation_ = false;
  bool aborted_ = false;
};

/// Runs the interactive protocol starting from one positive seed path. Thin
/// wrapper over session::LearningSession<PathEngine>; question counts are
/// identical to driving the engine one question at a time.
common::Result<InteractivePathResult> RunInteractivePathSession(
    const graph::Graph& g, const graph::Path& seed, PathOracle* oracle,
    const InteractivePathOptions& options = {});

}  // namespace glearn
}  // namespace qlearn

#endif  // QLEARN_GLEARN_INTERACTIVE_PATH_H_
