// The "concatenation" path-query class learnable from positive examples:
// expressions  x1.x2...xk  with each unit xi one of  a, a?, a+, a*  over edge
// labels. Generalization upgrades units (optional / repeat) or inserts
// optional units, so the language only grows — the most-specific-hypothesis
// discipline of the paper's learning framework, applied to graph queries.
#ifndef QLEARN_GLEARN_CONCAT_PATTERN_H_
#define QLEARN_GLEARN_CONCAT_PATTERN_H_

#include <string>
#include <vector>

#include "automata/regex.h"
#include "common/interner.h"
#include "common/status.h"

namespace qlearn {
namespace glearn {

/// One unit of a concat pattern: symbol with optionality/repetition flags.
struct PathUnit {
  common::SymbolId symbol;
  bool optional = false;  ///< zero occurrences allowed
  bool repeat = false;    ///< more than one occurrence allowed

  bool operator==(const PathUnit& o) const {
    return symbol == o.symbol && optional == o.optional && repeat == o.repeat;
  }
};

/// A disjunction-free path expression.
class ConcatPattern {
 public:
  ConcatPattern() = default;
  explicit ConcatPattern(std::vector<PathUnit> units)
      : units_(std::move(units)) {}

  /// The most specific pattern of a single word.
  static ConcatPattern FromWord(const std::vector<common::SymbolId>& word);

  const std::vector<PathUnit>& units() const { return units_; }
  size_t size() const { return units_.size(); }

  /// Word membership (quadratic DP; patterns and words are short).
  bool Accepts(const std::vector<common::SymbolId>& word) const;

  /// Minimal-upgrade generalization covering `word` as well: the language
  /// of the result contains L(this) ∪ {word}. Also reports the edit cost
  /// (0 iff the word was already accepted).
  ConcatPattern Generalize(const std::vector<common::SymbolId>& word,
                           int* cost_out = nullptr) const;

  /// Equivalent regex (for automata-level comparisons and evaluation).
  automata::RegexPtr ToRegex() const;

  /// E.g. "local.highway+.local?".
  std::string ToString(const common::Interner& interner) const;

  bool operator==(const ConcatPattern& o) const { return units_ == o.units_; }

 private:
  std::vector<PathUnit> units_;
};

/// Folds Generalize over the positive words (order-sensitive but sound: the
/// result accepts every input word).
common::Result<ConcatPattern> LearnConcatPattern(
    const std::vector<std::vector<common::SymbolId>>& positive_words);

}  // namespace glearn
}  // namespace qlearn

#endif  // QLEARN_GLEARN_CONCAT_PATTERN_H_
