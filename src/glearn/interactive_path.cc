#include "glearn/interactive_path.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "automata/nfa.h"

namespace qlearn {
namespace glearn {

using common::Result;
using common::Status;
using common::SymbolId;
using graph::Path;

namespace {

/// Historical sentinel of the cost-minimizing scans (best_cost = 1 << 30
/// with strict <): negated, any real generalization cost beats it.
constexpr long kCostSentinel = -(1L << 30);

}  // namespace

PathEngine::PathEngine(const graph::Graph* g, const Path& seed,
                       const InteractivePathOptions& options)
    : g_(g),
      strategy_(options.strategy),
      hypothesis_(ConcatPattern::FromWord(graph::PathWord(*g, seed))),
      max_positive_weight_(graph::PathWeight(*g, seed)) {
  for (Path& p : graph::EnumeratePaths(*g, options.max_path_edges,
                                       options.max_candidates)) {
    Candidate c;
    c.word = graph::PathWord(*g, p);
    c.path = std::move(p);
    candidates_.push_back(std::move(c));
  }

  // Pre-mark workload matches.
  if (!options.workload.empty()) {
    std::vector<automata::Nfa> nfas;
    nfas.reserve(options.workload.size());
    for (const auto& regex : options.workload) {
      nfas.push_back(automata::Nfa::FromRegex(*regex));
    }
    for (Candidate& c : candidates_) {
      for (const automata::Nfa& nfa : nfas) {
        if (nfa.Accepts(c.word)) {
          c.workload_hit = true;
          break;
        }
      }
    }
  }

  // Questions point into candidates_; element pointers stay valid for the
  // engine's lifetime, including after it is moved into a LearningSession
  // (vector moves keep the heap buffer).
  frontier_.Reserve(candidates_.size());
  for (size_t k = 0; k < candidates_.size(); ++k) {
    frontier_.Add(Question{k, &candidates_[k].path, &candidates_[k].word});
  }
}

std::optional<PathEngine::Question> PathEngine::SelectQuestion(
    common::Rng* rng) {
  std::optional<size_t> pick;
  switch (strategy_) {
    case PathStrategy::kRandom:
      pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
      break;
    case PathStrategy::kFrontier:
      // Smallest generalization cost first; costs depend only on the
      // hypothesis, so they stay memoized across negative answers.
      pick = frontier_.Select(
          session::Greedy<PathScore>(
              PathScore{0, kCostSentinel},
              [this](size_t k) -> std::optional<PathScore> {
                return PathScore{0, -CostOf(k)};
              }),
          rng);
      break;
    case PathStrategy::kWorkload:
      // Workload matches dominate; cost breaks ties.
      pick = frontier_.Select(
          session::Greedy<PathScore>(
              PathScore{0, kCostSentinel},
              [this](size_t k) -> std::optional<PathScore> {
                return PathScore{candidates_[k].workload_hit ? 1 : 0,
                                 -CostOf(k)};
              }),
          rng);
      break;
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

long PathEngine::CostOf(size_t k) {
  const std::optional<PathScore>& memo =
      frontier_.MemoOf(k, [this](size_t j) -> PathScore {
        int cost = 0;
        hypothesis_.Generalize(candidates_[j].word, &cost);
        return PathScore{0, cost};
      });
  return memo->second;
}

void PathEngine::MarkAsked(const Question& item) {
  frontier_.MarkAsked(item.index);
}

void PathEngine::Observe(const Question& item, bool positive,
                         session::SessionStats* stats) {
  const Candidate& c = candidates_[item.index];
  frontier_.MarkLabeled(item.index, positive);
  if (positive) {
    hypothesis_ = hypothesis_.Generalize(c.word);
    max_positive_weight_ =
        std::max(max_positive_weight_, graph::PathWeight(*g_, c.path));
    // Every memoized generalization cost was computed against the old
    // hypothesis. Negatives leave it untouched — nothing to invalidate.
    frontier_.InvalidateAll();
  } else {
    negative_words_.push_back(c.word);
  }
  // Conflict detection: the hypothesis must reject all known negatives.
  for (const auto& neg : negative_words_) {
    if (hypothesis_.Accepts(neg)) {
      ++stats->conflicts;
      aborted_ = true;
      break;
    }
  }
}

void PathEngine::Propagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    const Candidate& c = candidates_[k];
    if (hypothesis_.Accepts(c.word)) {
      // Every consistent generalization still accepts it.
      frontier_.MarkForced(k, /*positive=*/true);
      ++stats->forced_positive;
      continue;
    }
    // Forced negative: absorbing this word would swallow a known negative.
    const ConcatPattern extended = hypothesis_.Generalize(c.word);
    for (const auto& neg : negative_words_) {
      if (extended.Accepts(neg)) {
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;
      }
    }
  }
}

Result<InteractivePathResult> RunInteractivePathSession(
    const graph::Graph& g, const Path& seed, PathOracle* oracle,
    const InteractivePathOptions& options) {
  if (!oracle->IsPositive(seed)) {
    return Status::InvalidArgument("seed path must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<PathEngine> session(PathEngine(&g, seed, options),
                                               session_options);

  InteractivePathResult result;
  result.hypothesis = session.Run([&](const PathEngine::Question& question) {
    return oracle->IsPositive(*question.path);
  });
  result.max_positive_weight = session.engine().max_positive_weight();
  result.candidate_paths = session.engine().candidate_paths();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace glearn
}  // namespace qlearn
