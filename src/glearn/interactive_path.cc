#include "glearn/interactive_path.h"

#include <algorithm>

#include "automata/nfa.h"

namespace qlearn {
namespace glearn {

using common::Result;
using common::Status;
using common::SymbolId;
using graph::Path;

Result<InteractivePathResult> RunInteractivePathSession(
    const graph::Graph& g, const Path& seed, PathOracle* oracle,
    const InteractivePathOptions& options) {
  if (!oracle->IsPositive(g, seed)) {
    return Status::InvalidArgument("seed path must be a positive example");
  }
  common::Rng rng(options.seed);
  InteractivePathResult result;

  struct Candidate {
    Path path;
    std::vector<SymbolId> word;
    bool settled = false;
    bool workload_hit = false;
  };
  std::vector<Candidate> candidates;
  for (Path& p : graph::EnumeratePaths(g, options.max_path_edges,
                                       options.max_candidates)) {
    Candidate c;
    c.word = graph::PathWord(g, p);
    c.path = std::move(p);
    candidates.push_back(std::move(c));
  }
  result.candidate_paths = candidates.size();

  // Pre-mark workload matches.
  if (!options.workload.empty()) {
    std::vector<automata::Nfa> nfas;
    nfas.reserve(options.workload.size());
    for (const auto& regex : options.workload) {
      nfas.push_back(automata::Nfa::FromRegex(*regex));
    }
    for (Candidate& c : candidates) {
      for (const automata::Nfa& nfa : nfas) {
        if (nfa.Accepts(c.word)) {
          c.workload_hit = true;
          break;
        }
      }
    }
  }

  ConcatPattern hypothesis = ConcatPattern::FromWord(graph::PathWord(g, seed));
  result.max_positive_weight = graph::PathWeight(g, seed);
  std::vector<std::vector<SymbolId>> negative_words;

  auto settle_uninformative = [&]() {
    for (Candidate& c : candidates) {
      if (c.settled) continue;
      if (hypothesis.Accepts(c.word)) {
        // Every consistent generalization still accepts it.
        c.settled = true;
        ++result.forced_positive;
        continue;
      }
      // Forced negative: absorbing this word would swallow a known
      // negative.
      const ConcatPattern extended = hypothesis.Generalize(c.word);
      for (const auto& neg : negative_words) {
        if (extended.Accepts(neg)) {
          c.settled = true;
          ++result.forced_negative;
          break;
        }
      }
    }
  };

  settle_uninformative();
  while (result.questions < options.max_questions) {
    std::vector<size_t> open;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (!candidates[k].settled) open.push_back(k);
    }
    if (open.empty()) break;

    size_t pick = open[0];
    switch (options.strategy) {
      case PathStrategy::kRandom:
        pick = open[rng.Index(open.size())];
        break;
      case PathStrategy::kFrontier: {
        int best_cost = 1 << 30;
        for (size_t k : open) {
          int cost = 0;
          hypothesis.Generalize(candidates[k].word, &cost);
          if (cost < best_cost) {
            best_cost = cost;
            pick = k;
          }
        }
        break;
      }
      case PathStrategy::kWorkload: {
        int best_cost = 1 << 30;
        bool best_hit = false;
        for (size_t k : open) {
          int cost = 0;
          hypothesis.Generalize(candidates[k].word, &cost);
          const bool hit = candidates[k].workload_hit;
          // Workload matches dominate; cost breaks ties.
          if ((hit && !best_hit) || (hit == best_hit && cost < best_cost)) {
            best_hit = hit;
            best_cost = cost;
            pick = k;
          }
        }
        break;
      }
    }

    Candidate& c = candidates[pick];
    ++result.questions;
    c.settled = true;
    if (oracle->IsPositive(g, c.path)) {
      hypothesis = hypothesis.Generalize(c.word);
      result.max_positive_weight =
          std::max(result.max_positive_weight, graph::PathWeight(g, c.path));
    } else {
      negative_words.push_back(c.word);
    }
    // Conflict detection: the hypothesis must reject all known negatives.
    for (const auto& neg : negative_words) {
      if (hypothesis.Accepts(neg)) {
        ++result.conflicts;
        break;
      }
    }
    if (result.conflicts > 0) break;
    settle_uninformative();
  }

  result.hypothesis = std::move(hypothesis);
  return result;
}

}  // namespace glearn
}  // namespace qlearn
