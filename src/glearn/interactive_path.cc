#include "glearn/interactive_path.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>
#include <vector>

#include "automata/nfa.h"

namespace qlearn {
namespace glearn {

using common::Result;
using common::Status;
using common::SymbolId;
using graph::Path;

namespace {

/// Historical sentinel of the cost-minimizing scans (best_cost = 1 << 30
/// with strict <): negated, any real generalization cost beats it.
constexpr long kCostSentinel = -(1L << 30);

/// "QLPE" little-endian: the path-engine snapshot blob tag.
constexpr uint32_t kPathEngineMagic = 0x45504C51u;
constexpr uint32_t kPathEngineVersion = 1;

/// PathUnit flag byte: bit 0 = optional, bit 1 = repeat.
constexpr uint8_t kUnitOptionalBit = 1;
constexpr uint8_t kUnitRepeatBit = 2;

void WritePattern(const ConcatPattern& pattern,
                  session::SnapshotWriter* writer) {
  writer->WriteU64(pattern.units().size());
  for (const PathUnit& unit : pattern.units()) {
    writer->WriteU32(unit.symbol);
    uint8_t flags = 0;
    if (unit.optional) flags |= kUnitOptionalBit;
    if (unit.repeat) flags |= kUnitRepeatBit;
    writer->WriteU8(flags);
  }
}

common::Status ReadPattern(session::SnapshotReader* reader,
                           ConcatPattern* pattern) {
  uint64_t count = 0;
  common::Status s = reader->ReadU64(&count);
  if (!s.ok()) return s;
  std::vector<PathUnit> units;
  units.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1024)));
  for (uint64_t i = 0; i < count; ++i) {
    PathUnit unit;
    uint8_t flags = 0;
    s = reader->ReadU32(&unit.symbol);
    if (s.ok()) s = reader->ReadU8(&flags);
    if (!s.ok()) return s;
    if (flags > (kUnitOptionalBit | kUnitRepeatBit)) {
      return common::Status::InvalidArgument(
          "path-engine snapshot has invalid unit flags " +
          std::to_string(flags));
    }
    unit.optional = (flags & kUnitOptionalBit) != 0;
    unit.repeat = (flags & kUnitRepeatBit) != 0;
    units.push_back(unit);
  }
  *pattern = ConcatPattern(std::move(units));
  return common::Status::OK();
}

}  // namespace

PathEngine::PathEngine(const graph::Graph* g, const Path& seed,
                       const InteractivePathOptions& options)
    : g_(g),
      strategy_(options.strategy),
      hypothesis_(ConcatPattern::FromWord(graph::PathWord(*g, seed))),
      max_positive_weight_(graph::PathWeight(*g, seed)) {
  for (Path& p : graph::EnumeratePaths(*g, options.max_path_edges,
                                       options.max_candidates)) {
    Candidate c;
    c.word = graph::PathWord(*g, p);
    c.path = std::move(p);
    candidates_.push_back(std::move(c));
  }

  // Pre-mark workload matches.
  if (!options.workload.empty()) {
    std::vector<automata::Nfa> nfas;
    nfas.reserve(options.workload.size());
    for (const auto& regex : options.workload) {
      nfas.push_back(automata::Nfa::FromRegex(*regex));
    }
    for (Candidate& c : candidates_) {
      for (const automata::Nfa& nfa : nfas) {
        if (nfa.Accepts(c.word)) {
          c.workload_hit = true;
          break;
        }
      }
    }
  }

  // Questions point into candidates_; element pointers stay valid for the
  // engine's lifetime, including after it is moved into a LearningSession
  // (vector moves keep the heap buffer).
  frontier_.Reserve(candidates_.size());
  for (size_t k = 0; k < candidates_.size(); ++k) {
    frontier_.Add(Question{k, &candidates_[k].path, &candidates_[k].word});
  }
}

std::optional<PathEngine::Question> PathEngine::SelectQuestion(
    common::Rng* rng) {
  std::optional<size_t> pick;
  switch (strategy_) {
    case PathStrategy::kRandom:
      pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
      break;
    case PathStrategy::kFrontier:
      // Smallest generalization cost first; costs depend only on the
      // hypothesis, so they stay memoized across negative answers.
      pick = frontier_.Select(
          session::Greedy<PathScore>(
              PathScore{0, kCostSentinel},
              [this](size_t k) -> std::optional<PathScore> {
                return PathScore{0, -CostOf(k)};
              }),
          rng);
      break;
    case PathStrategy::kWorkload:
      // Workload matches dominate; cost breaks ties.
      pick = frontier_.Select(
          session::Greedy<PathScore>(
              PathScore{0, kCostSentinel},
              [this](size_t k) -> std::optional<PathScore> {
                return PathScore{candidates_[k].workload_hit ? 1 : 0,
                                 -CostOf(k)};
              }),
          rng);
      break;
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

const std::optional<PathEngine::GenMemo>& PathEngine::GenMemoOf(size_t k) {
  return frontier_.MemoOf(k, [this](size_t j) -> GenMemo {
    GenMemo memo;
    memo.extended = hypothesis_.Generalize(candidates_[j].word, &memo.cost);
    return memo;
  });
}

long PathEngine::CostOf(size_t k) {
  return static_cast<long>(GenMemoOf(k)->cost);
}

void PathEngine::MarkAsked(const Question& item) {
  frontier_.MarkAsked(item.index);
}

void PathEngine::Observe(const Question& item, bool positive,
                         session::SessionStats* stats) {
  const Candidate& c = candidates_[item.index];
  frontier_.MarkLabeled(item.index, positive);
  hypothesis_advanced_ = false;
  if (positive) {
    ConcatPattern grown = hypothesis_.Generalize(c.word);
    hypothesis_advanced_ = !(grown == hypothesis_);
    hypothesis_ = std::move(grown);
    max_positive_weight_ =
        std::max(max_positive_weight_, graph::PathWeight(*g_, c.path));
    // Every memoized generalization was computed against the old
    // hypothesis — but an identity generalization (mid-batch word already
    // covered) leaves the memos exact, so only a real change invalidates.
    // Negatives never touch the hypothesis: nothing to invalidate.
    if (hypothesis_advanced_) frontier_.InvalidateAll();
    // Conflict detection: only a hypothesis change can newly swallow an
    // accumulated negative, and then every negative must be re-checked.
    if (hypothesis_advanced_) {
      for (const auto& neg : negative_words_) {
        if (hypothesis_.Accepts(neg)) {
          ++stats->conflicts;
          aborted_ = true;
          break;
        }
      }
    }
  } else {
    negative_words_.push_back(c.word);
    // The hypothesis is untouched, so earlier negatives are still
    // rejected; only the new word needs testing. (It can be accepted
    // mid-batch, when an earlier positive in the same batch grew the
    // hypothesis over this still-pending word.)
    if (hypothesis_.Accepts(c.word)) {
      ++stats->conflicts;
      aborted_ = true;
    }
  }
}

void PathEngine::OnPositive(const Question& /*item*/) {
  // An identity generalization (word already covered, possible mid-batch)
  // leaves every classification unchanged.
  if (hypothesis_advanced_) prop_.RecordHypothesisChange();
}

void PathEngine::OnNegative(const Question& item) {
  prop_.RecordNegative(item.index);
}

void PathEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);
    prop_.MarkFullPassDone();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
}

void PathEngine::ReferencePropagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    const Candidate& c = candidates_[k];
    if (hypothesis_.Accepts(c.word)) {
      // Every consistent generalization still accepts it.
      frontier_.MarkForced(k, /*positive=*/true);
      ++stats->forced_positive;
      continue;
    }
    // Forced negative: absorbing this word would swallow a known negative.
    const ConcatPattern extended = hypothesis_.Generalize(c.word);
    for (const auto& neg : negative_words_) {
      if (extended.Accepts(neg)) {
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;
      }
    }
  }
}

void PathEngine::FullPropagate(session::SessionStats* stats) {
  // Hypothesis-change pass: forced labels never revert, so only the open
  // set is re-tested, and the generalized pattern of each survivor is
  // memoized — the same slot scoring reads — so negative-answer deltas
  // and greedy selection never re-run Generalize until the next change.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    if (hypothesis_.Accepts(candidates_[k].word)) {
      frontier_.MarkForced(k, /*positive=*/true);
      ++stats->forced_positive;
      continue;
    }
    const std::optional<GenMemo>& memo = GenMemoOf(k);
    for (const auto& neg : negative_words_) {
      if (memo->extended.Accepts(neg)) {
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;  // memo slot was just released by MarkForced
      }
    }
  }
}

void PathEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<size_t> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  // The hypothesis is unchanged: no new forced positives, and each open
  // candidate's memoized generalization is still valid — only the new
  // negative words need accept tests against it.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    const std::optional<GenMemo>& memo = GenMemoOf(k);
    for (size_t neg : deltas) {
      if (memo->extended.Accepts(candidates_[neg].word)) {
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;  // memo slot was just released by MarkForced
      }
    }
  }
}

#ifndef NDEBUG
void PathEngine::AssertPropagationFixpoint() {
  // The historical full-rescan predicates must find nothing left to force.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    const Candidate& c = candidates_[k];
    assert(!hypothesis_.Accepts(c.word) &&
           "delta flush missed a forced positive");
    const ConcatPattern extended = hypothesis_.Generalize(c.word);
    for (const auto& neg : negative_words_) {
      assert(!extended.Accepts(neg) && "delta flush missed a forced negative");
    }
  }
}
#endif

void PathEngine::SerializeSnapshot(session::SnapshotWriter* writer) const {
  writer->WriteU32(kPathEngineMagic);
  writer->WriteU32(kPathEngineVersion);
  writer->WriteU8(static_cast<uint8_t>(strategy_));
  writer->WriteU8(aborted_ ? 1 : 0);
  WritePattern(hypothesis_, writer);
  writer->WriteU64(std::bit_cast<uint64_t>(max_positive_weight_));
  writer->WriteU64(negative_words_.size());
  for (const std::vector<common::SymbolId>& word : negative_words_) {
    writer->WriteU64(word.size());
    for (common::SymbolId symbol : word) writer->WriteU32(symbol);
  }
  frontier_.SerializeState(writer);
}

common::Status PathEngine::RestoreSnapshot(session::SnapshotReader* reader) {
  uint32_t magic = 0, version = 0;
  uint8_t strategy = 0, aborted = 0;
  Status s = reader->ReadU32(&magic);
  if (s.ok()) s = reader->ReadU32(&version);
  if (s.ok()) s = reader->ReadU8(&strategy);
  if (s.ok()) s = reader->ReadU8(&aborted);
  if (!s.ok()) return s;
  if (magic != kPathEngineMagic) {
    return Status::InvalidArgument("not a path-engine snapshot");
  }
  if (version != kPathEngineVersion) {
    return Status::InvalidArgument("unsupported path-engine snapshot version " +
                                   std::to_string(version));
  }
  if (strategy != static_cast<uint8_t>(strategy_)) {
    return Status::InvalidArgument(
        "path-engine snapshot was taken under a different strategy");
  }
  ConcatPattern hypothesis;
  s = ReadPattern(reader, &hypothesis);
  if (!s.ok()) return s;
  uint64_t weight_bits = 0, num_negatives = 0;
  s = reader->ReadU64(&weight_bits);
  if (s.ok()) s = reader->ReadU64(&num_negatives);
  if (!s.ok()) return s;
  std::vector<std::vector<common::SymbolId>> negatives;
  negatives.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_negatives, candidates_.size())));
  for (uint64_t i = 0; i < num_negatives; ++i) {
    uint64_t length = 0;
    s = reader->ReadU64(&length);
    if (!s.ok()) return s;
    std::vector<common::SymbolId> word;
    word.reserve(static_cast<size_t>(std::min<uint64_t>(length, 1024)));
    for (uint64_t j = 0; j < length; ++j) {
      common::SymbolId symbol = 0;
      s = reader->ReadU32(&symbol);
      if (!s.ok()) return s;
      word.push_back(symbol);
    }
    negatives.push_back(std::move(word));
  }
  s = frontier_.RestoreState(reader);
  if (!s.ok()) return s;

  hypothesis_ = std::move(hypothesis);
  max_positive_weight_ = std::bit_cast<double>(weight_bits);
  negative_words_ = std::move(negatives);
  aborted_ = aborted != 0;
  hypothesis_advanced_ = false;
  // Snapshots are taken between answered turns: every queued delta was
  // flushed, so the restored engine starts in steady state. The frontier
  // restore already invalidated the GenMemos (they were computed against
  // whatever hypothesis was live before the restore).
  prop_.MarkFullPassDone();
  return Status::OK();
}

Result<InteractivePathResult> RunInteractivePathSession(
    const graph::Graph& g, const Path& seed, PathOracle* oracle,
    const InteractivePathOptions& options) {
  if (!oracle->IsPositive(seed)) {
    return Status::InvalidArgument("seed path must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<PathEngine> session(PathEngine(&g, seed, options),
                                               session_options);

  InteractivePathResult result;
  result.hypothesis = session.Run([&](const PathEngine::Question& question) {
    return oracle->IsPositive(*question.path);
  });
  result.max_positive_weight = session.engine().max_positive_weight();
  result.candidate_paths = session.engine().candidate_paths();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace glearn
}  // namespace qlearn
