#include "glearn/interactive_path.h"

#include <algorithm>
#include <utility>

#include "automata/nfa.h"

namespace qlearn {
namespace glearn {

using common::Result;
using common::Status;
using common::SymbolId;
using graph::Path;

PathEngine::PathEngine(const graph::Graph* g, const Path& seed,
                       const InteractivePathOptions& options)
    : g_(g),
      strategy_(options.strategy),
      hypothesis_(ConcatPattern::FromWord(graph::PathWord(*g, seed))),
      max_positive_weight_(graph::PathWeight(*g, seed)) {
  for (Path& p : graph::EnumeratePaths(*g, options.max_path_edges,
                                       options.max_candidates)) {
    Candidate c;
    c.word = graph::PathWord(*g, p);
    c.path = std::move(p);
    candidates_.push_back(std::move(c));
  }

  // Pre-mark workload matches.
  if (!options.workload.empty()) {
    std::vector<automata::Nfa> nfas;
    nfas.reserve(options.workload.size());
    for (const auto& regex : options.workload) {
      nfas.push_back(automata::Nfa::FromRegex(*regex));
    }
    for (Candidate& c : candidates_) {
      for (const automata::Nfa& nfa : nfas) {
        if (nfa.Accepts(c.word)) {
          c.workload_hit = true;
          break;
        }
      }
    }
  }
}

std::optional<PathEngine::Question> PathEngine::SelectQuestion(
    common::Rng* rng) {
  std::vector<size_t> open;
  for (size_t k = 0; k < candidates_.size(); ++k) {
    if (!candidates_[k].settled) open.push_back(k);
  }
  if (open.empty()) return std::nullopt;

  size_t pick = open[0];
  switch (strategy_) {
    case PathStrategy::kRandom:
      pick = open[rng->Index(open.size())];
      break;
    case PathStrategy::kFrontier: {
      int best_cost = 1 << 30;
      for (size_t k : open) {
        int cost = 0;
        hypothesis_.Generalize(candidates_[k].word, &cost);
        if (cost < best_cost) {
          best_cost = cost;
          pick = k;
        }
      }
      break;
    }
    case PathStrategy::kWorkload: {
      int best_cost = 1 << 30;
      bool best_hit = false;
      for (size_t k : open) {
        int cost = 0;
        hypothesis_.Generalize(candidates_[k].word, &cost);
        const bool hit = candidates_[k].workload_hit;
        // Workload matches dominate; cost breaks ties.
        if ((hit && !best_hit) || (hit == best_hit && cost < best_cost)) {
          best_hit = hit;
          best_cost = cost;
          pick = k;
        }
      }
      break;
    }
  }
  return Question{pick, &candidates_[pick].path, &candidates_[pick].word};
}

void PathEngine::MarkAsked(const Question& item) {
  Candidate& c = candidates_[item.index];
  c.settled = true;
  c.asked = true;
}

void PathEngine::Observe(const Question& item, bool positive,
                         session::SessionStats* stats) {
  const Candidate& c = candidates_[item.index];
  if (positive) {
    hypothesis_ = hypothesis_.Generalize(c.word);
    max_positive_weight_ =
        std::max(max_positive_weight_, graph::PathWeight(*g_, c.path));
  } else {
    negative_words_.push_back(c.word);
  }
  // Conflict detection: the hypothesis must reject all known negatives.
  for (const auto& neg : negative_words_) {
    if (hypothesis_.Accepts(neg)) {
      ++stats->conflicts;
      aborted_ = true;
      break;
    }
  }
}

void PathEngine::Propagate(session::SessionStats* stats) {
  for (Candidate& c : candidates_) {
    if (c.settled) continue;
    if (hypothesis_.Accepts(c.word)) {
      // Every consistent generalization still accepts it.
      c.settled = true;
      ++stats->forced_positive;
      continue;
    }
    // Forced negative: absorbing this word would swallow a known negative.
    const ConcatPattern extended = hypothesis_.Generalize(c.word);
    for (const auto& neg : negative_words_) {
      if (extended.Accepts(neg)) {
        c.settled = true;
        ++stats->forced_negative;
        break;
      }
    }
  }
}

Result<InteractivePathResult> RunInteractivePathSession(
    const graph::Graph& g, const Path& seed, PathOracle* oracle,
    const InteractivePathOptions& options) {
  if (!oracle->IsPositive(seed)) {
    return Status::InvalidArgument("seed path must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<PathEngine> session(PathEngine(&g, seed, options),
                                               session_options);

  InteractivePathResult result;
  result.hypothesis = session.Run([&](const PathEngine::Question& question) {
    return oracle->IsPositive(*question.path);
  });
  result.max_positive_weight = session.engine().max_positive_weight();
  result.candidate_paths = session.engine().candidate_paths();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace glearn
}  // namespace qlearn
