#include "glearn/concat_pattern.h"

#include <algorithm>
#include <limits>

namespace qlearn {
namespace glearn {

using common::SymbolId;

ConcatPattern ConcatPattern::FromWord(const std::vector<SymbolId>& word) {
  std::vector<PathUnit> units;
  units.reserve(word.size());
  for (SymbolId s : word) units.push_back(PathUnit{s, false, false});
  return ConcatPattern(std::move(units));
}

bool ConcatPattern::Accepts(const std::vector<SymbolId>& word) const {
  const size_t n = units_.size();
  const size_t m = word.size();
  // reach[i][j]: first i units can consume first j symbols.
  std::vector<std::vector<char>> reach(n + 1,
                                       std::vector<char>(m + 1, 0));
  reach[0][0] = 1;
  for (size_t i = 0; i < n; ++i) {
    const PathUnit& u = units_[i];
    for (size_t j = 0; j <= m; ++j) {
      if (!reach[i][j]) continue;
      if (u.optional) reach[i + 1][j] = 1;  // consume zero
      // Consume k >= 1 occurrences of u.symbol.
      size_t k = j;
      while (k < m && word[k] == u.symbol) {
        ++k;
        reach[i + 1][k] = 1;
        if (!u.repeat) break;
      }
    }
  }
  return reach[n][m] != 0;
}

ConcatPattern ConcatPattern::Generalize(const std::vector<SymbolId>& word,
                                        int* cost_out) const {
  const size_t n = units_.size();
  const size_t m = word.size();
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  // Upgrade costs: making a unit optional or repeating costs 1 each;
  // inserting a fresh optional unit costs 3 (2 for the unit + 1 bias so
  // reusing existing units is preferred).
  constexpr int kOptionalCost = 1;
  constexpr int kRepeatCost = 1;
  constexpr int kInsertCost = 3;

  struct Cell {
    int cost = kInf;
    // Backtrack: 0 = none, 1 = match-one, 2 = match-many, 3 = skip-unit,
    // 4 = insert (consumes a maximal run via repeat when >1 symbol).
    int move = 0;
    size_t pi = 0;
    size_t pj = 0;
  };
  std::vector<std::vector<Cell>> dp(n + 1, std::vector<Cell>(m + 1));
  dp[0][0].cost = 0;

  for (size_t i = 0; i <= n; ++i) {
    for (size_t j = 0; j <= m; ++j) {
      const int cur = dp[i][j].cost;
      if (cur >= kInf) continue;
      auto relax = [&](size_t ni, size_t nj, int cost, int move) {
        if (cost < dp[ni][nj].cost) {
          dp[ni][nj] = Cell{cost, move, i, j};
        }
      };
      if (i < n) {
        const PathUnit& u = units_[i];
        // Skip the unit (it becomes optional).
        relax(i + 1, j, cur + (u.optional ? 0 : kOptionalCost), 3);
        // Match one or more symbols.
        if (j < m && word[j] == u.symbol) {
          relax(i + 1, j + 1, cur, 1);
          size_t k = j + 1;
          while (k < m && word[k] == u.symbol) ++k;
          if (k > j + 1) {
            relax(i + 1, k, cur + (u.repeat ? 0 : kRepeatCost), 2);
          }
        }
      }
      // Insert a fresh optional unit consuming a maximal same-symbol run.
      if (j < m) {
        size_t k = j + 1;
        while (k < m && word[k] == word[j]) ++k;
        relax(i, j + 1, cur + kInsertCost, 4);
        if (k > j + 1) relax(i, k, cur + kInsertCost, 4);
      }
    }
  }

  // Backtrack from (n, m) building the upgraded unit list.
  std::vector<PathUnit> units;
  size_t i = n;
  size_t j = m;
  while (i != 0 || j != 0) {
    const Cell& cell = dp[i][j];
    const size_t pi = cell.pi;
    const size_t pj = cell.pj;
    switch (cell.move) {
      case 1: {  // match-one: unit kept as-is
        units.push_back(units_[pi]);
        break;
      }
      case 2: {  // match-many: unit gains repeat
        PathUnit u = units_[pi];
        u.repeat = true;
        units.push_back(u);
        break;
      }
      case 3: {  // skip: unit gains optional
        PathUnit u = units_[pi];
        u.optional = true;
        units.push_back(u);
        break;
      }
      case 4: {  // insert fresh optional unit (repeat for runs)
        PathUnit u{word[pj], true, j - pj > 1};
        units.push_back(u);
        break;
      }
      default:
        // Unreachable: dp[0][0] has move 0 and the loop stops there.
        i = 0;
        j = 0;
        continue;
    }
    i = pi;
    j = pj;
  }
  std::reverse(units.begin(), units.end());
  if (cost_out != nullptr) *cost_out = dp[n][m].cost;
  return ConcatPattern(std::move(units));
}

automata::RegexPtr ConcatPattern::ToRegex() const {
  std::vector<automata::RegexPtr> parts;
  parts.reserve(units_.size());
  for (const PathUnit& u : units_) {
    automata::RegexPtr r = automata::Regex::Symbol(u.symbol);
    if (u.optional && u.repeat) {
      r = automata::Regex::Star(std::move(r));
    } else if (u.optional) {
      r = automata::Regex::Opt(std::move(r));
    } else if (u.repeat) {
      r = automata::Regex::Plus(std::move(r));
    }
    parts.push_back(std::move(r));
  }
  return automata::Regex::Concat(std::move(parts));
}

std::string ConcatPattern::ToString(const common::Interner& interner) const {
  if (units_.empty()) return "()";
  std::string out;
  for (size_t i = 0; i < units_.size(); ++i) {
    if (i > 0) out += ".";
    out += interner.Name(units_[i].symbol);
    if (units_[i].optional && units_[i].repeat) {
      out += "*";
    } else if (units_[i].optional) {
      out += "?";
    } else if (units_[i].repeat) {
      out += "+";
    }
  }
  return out;
}

common::Result<ConcatPattern> LearnConcatPattern(
    const std::vector<std::vector<SymbolId>>& positive_words) {
  if (positive_words.empty()) {
    return common::Status::InvalidArgument(
        "concat-pattern learning needs at least one word");
  }
  ConcatPattern pattern = ConcatPattern::FromWord(positive_words[0]);
  for (size_t i = 1; i < positive_words.size(); ++i) {
    pattern = pattern.Generalize(positive_words[i]);
  }
  return pattern;
}

}  // namespace glearn
}  // namespace qlearn
