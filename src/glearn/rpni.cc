#include "glearn/rpni.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace qlearn {
namespace glearn {

using common::Result;
using common::Status;
using common::SymbolId;

namespace {

/// Prefix-tree acceptor with +/-/unknown state labels, plus the union-find
/// overlay used during merging.
struct Pta {
  std::vector<std::map<SymbolId, int>> next;
  std::vector<int> label;  // +1 accept, -1 reject, 0 unknown
  std::vector<int> repr;   // union-find parent

  int Find(int s) {
    while (repr[s] != s) {
      repr[s] = repr[repr[s]];
      s = repr[s];
    }
    return s;
  }

  /// Folds state b into state a, merging subtrees to restore determinism.
  /// Returns false on a +/- label conflict.
  bool Fold(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (label[a] != 0 && label[b] != 0 && label[a] != label[b]) return false;
    if (label[a] == 0) label[a] = label[b];
    repr[b] = a;
    // Merge b's transitions into a's, folding collisions recursively.
    const std::map<SymbolId, int> b_next = next[b];
    for (const auto& [sym, target] : b_next) {
      auto it = next[a].find(sym);
      if (it == next[a].end()) {
        next[a][sym] = target;
      } else {
        if (!Fold(it->second, target)) return false;
      }
    }
    return true;
  }
};

Pta BuildPta(const std::vector<std::vector<SymbolId>>& positives,
             const std::vector<std::vector<SymbolId>>& negatives,
             bool* conflict) {
  Pta pta;
  pta.next.emplace_back();
  pta.label.push_back(0);
  *conflict = false;
  auto insert = [&](const std::vector<SymbolId>& word, int word_label) {
    int state = 0;
    for (SymbolId s : word) {
      auto it = pta.next[state].find(s);
      if (it == pta.next[state].end()) {
        const int fresh = static_cast<int>(pta.next.size());
        pta.next[state][s] = fresh;
        pta.next.emplace_back();
        pta.label.push_back(0);
        state = fresh;
      } else {
        state = it->second;
      }
    }
    if (pta.label[state] != 0 && pta.label[state] != word_label) {
      *conflict = true;
    }
    pta.label[state] = word_label;
  };
  for (const auto& w : positives) insert(w, 1);
  for (const auto& w : negatives) insert(w, -1);
  pta.repr.resize(pta.next.size());
  for (size_t i = 0; i < pta.repr.size(); ++i) {
    pta.repr[i] = static_cast<int>(i);
  }
  return pta;
}

}  // namespace

Result<automata::Dfa> LearnRpniDfa(
    const std::vector<std::vector<SymbolId>>& positives,
    const std::vector<std::vector<SymbolId>>& negatives) {
  bool conflict = false;
  Pta pta = BuildPta(positives, negatives, &conflict);
  if (conflict) {
    return Status::InvalidArgument(
        "a word is labeled both positive and negative");
  }

  // Alphabet of the sample.
  std::set<SymbolId> sigma;
  for (const auto& w : positives) sigma.insert(w.begin(), w.end());
  for (const auto& w : negatives) sigma.insert(w.begin(), w.end());
  const std::vector<SymbolId> alphabet(sigma.begin(), sigma.end());

  // RPNI main loop: maintain RED set; BLUE = frontier successors.
  std::vector<int> red{0};
  for (;;) {
    // Compute blue states in canonical (BFS over red, sorted symbols) order.
    std::vector<int> blue;
    std::set<int> red_set;
    for (int r : red) red_set.insert(pta.Find(r));
    std::set<int> seen;
    for (int r : red) {
      const int rr = pta.Find(r);
      for (const auto& [sym, target] : pta.next[rr]) {
        (void)sym;
        const int t = pta.Find(target);
        if (!red_set.count(t) && seen.insert(t).second) blue.push_back(t);
      }
    }
    if (blue.empty()) break;
    const int b = blue[0];

    bool merged = false;
    for (int r : red) {
      // Attempt the merge on a scratch copy.
      Pta scratch = pta;
      if (scratch.Fold(pta.Find(r), b)) {
        pta = std::move(scratch);
        merged = true;
        break;
      }
    }
    if (!merged) red.push_back(b);
  }

  // Build the quotient DFA (complete, with sink) over the alphabet.
  std::map<int, automata::StateId> ids;
  std::vector<int> order;
  std::vector<int> stack{pta.Find(0)};
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    if (ids.count(s)) continue;
    ids[s] = static_cast<automata::StateId>(order.size());
    order.push_back(s);
    for (const auto& [sym, target] : pta.next[s]) {
      (void)sym;
      stack.push_back(pta.Find(target));
    }
  }
  const automata::StateId sink = static_cast<automata::StateId>(order.size());
  std::vector<std::vector<automata::StateId>> transitions(
      order.size() + 1,
      std::vector<automata::StateId>(alphabet.size(), sink));
  std::vector<bool> accepting(order.size() + 1, false);
  for (size_t i = 0; i < order.size(); ++i) {
    accepting[i] = pta.label[order[i]] == 1;
    for (size_t a = 0; a < alphabet.size(); ++a) {
      auto it = pta.next[order[i]].find(alphabet[a]);
      if (it != pta.next[order[i]].end()) {
        transitions[i][a] = ids[pta.Find(it->second)];
      }
    }
  }
  automata::Dfa dfa(alphabet, ids[pta.Find(0)], std::move(transitions),
                    std::move(accepting));
  return dfa.Minimize();
}

Result<automata::RegexPtr> LearnRpniRegex(
    const std::vector<std::vector<SymbolId>>& positives,
    const std::vector<std::vector<SymbolId>>& negatives) {
  auto dfa = LearnRpniDfa(positives, negatives);
  if (!dfa.ok()) return dfa.status();
  return dfa.value().ToRegex();
}

}  // namespace glearn
}  // namespace qlearn
