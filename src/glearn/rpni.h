// RPNI (Regular Positive and Negative Inference): the classical state-merging
// algorithm learning a DFA consistent with labeled words. Serves as the
// richer comparator to the concat-pattern class in experiment E7, and
// demonstrates the "learning from positive and negative examples" regime the
// paper discusses for graph queries.
#ifndef QLEARN_GLEARN_RPNI_H_
#define QLEARN_GLEARN_RPNI_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/regex.h"
#include "common/interner.h"
#include "common/status.h"

namespace qlearn {
namespace glearn {

/// Learns a DFA accepting every positive word and rejecting every negative
/// one (fails only if a word is labeled both ways). The result is converted
/// to a minimal DFA over the words' joint alphabet.
common::Result<automata::Dfa> LearnRpniDfa(
    const std::vector<std::vector<common::SymbolId>>& positives,
    const std::vector<std::vector<common::SymbolId>>& negatives);

/// LearnRpniDfa followed by state-elimination regex extraction.
common::Result<automata::RegexPtr> LearnRpniRegex(
    const std::vector<std::vector<common::SymbolId>>& positives,
    const std::vector<std::vector<common::SymbolId>>& negatives);

}  // namespace glearn
}  // namespace qlearn

#endif  // QLEARN_GLEARN_RPNI_H_
