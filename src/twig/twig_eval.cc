#include "twig/twig_eval.h"

#include <algorithm>
#include <functional>
#include <set>

namespace qlearn {
namespace twig {

using xml::NodeId;

TwigEvaluator::TwigEvaluator(const TwigQuery& query, const xml::XmlTree& doc)
    : query_(query), doc_(doc) {
  ComputeDown();
  ComputeUp();
}

bool TwigEvaluator::LabelMatches(QNodeId q, NodeId v) const {
  return query_.label(q) == kWildcard || query_.label(q) == doc_.label(v);
}

bool TwigEvaluator::ChildRequirement(QNodeId c, NodeId u) const {
  if (query_.axis(c) == Axis::kChild) {
    for (NodeId w : doc_.children(u)) {
      if (down_[c][w]) return true;
    }
    return false;
  }
  // Descendant: some node strictly below u.
  return down_below_[c][u] != 0;
}

void TwigEvaluator::ComputeDown() {
  const size_t m = query_.NumNodes();
  const size_t n = doc_.NumNodes();
  down_.assign(m, std::vector<char>(n, 0));
  down_below_.assign(m, std::vector<char>(n, 0));

  // Document nodes children-before-parent; query nodes children-before-parent
  // (child ids are always larger than parent ids).
  std::vector<NodeId> doc_order = doc_.PreOrder();
  std::reverse(doc_order.begin(), doc_order.end());

  for (QNodeId q = static_cast<QNodeId>(m); q-- > 1;) {
    for (NodeId v : doc_order) {
      // down_below first: depends on children of v for the same q.
      char below = 0;
      for (NodeId w : doc_.children(v)) {
        if (down_[q][w] || down_below_[q][w]) {
          below = 1;
          break;
        }
      }
      down_below_[q][v] = below;
      if (!LabelMatches(q, v)) continue;
      bool ok = true;
      for (QNodeId c : query_.children(q)) {
        if (!ChildRequirement(c, v)) {
          ok = false;
          break;
        }
      }
      down_[q][v] = ok ? 1 : 0;
    }
  }

  // Overall match: all root children satisfied w.r.t. the virtual parent of
  // the document root.
  matches_ = true;
  for (QNodeId c : query_.children(0)) {
    const bool sat = query_.axis(c) == Axis::kChild
                         ? down_[c][doc_.root()] != 0
                         : (down_[c][doc_.root()] != 0 ||
                            down_below_[c][doc_.root()] != 0);
    if (!sat) {
      matches_ = false;
      break;
    }
  }
}

void TwigEvaluator::ComputeUp() {
  const size_t m = query_.NumNodes();
  const size_t n = doc_.NumNodes();
  up_.assign(m, std::vector<char>(n, 0));
  if (!matches_) return;  // no full embedding anywhere

  const std::vector<NodeId> doc_pre = doc_.PreOrder();

  for (QNodeId q : query_.PreOrder()) {
    if (q == 0) continue;
    const QNodeId p = query_.parent(q);
    if (p == 0) {
      // Context = the other root children must embed somewhere valid.
      bool siblings_ok = true;
      for (QNodeId c : query_.children(0)) {
        if (c == q) continue;
        const bool sat = query_.axis(c) == Axis::kChild
                             ? down_[c][doc_.root()] != 0
                             : (down_[c][doc_.root()] != 0 ||
                                down_below_[c][doc_.root()] != 0);
        if (!sat) {
          siblings_ok = false;
          break;
        }
      }
      if (!siblings_ok) continue;
      if (query_.axis(q) == Axis::kChild) {
        up_[q][doc_.root()] = 1;
      } else {
        for (NodeId v = 0; v < n; ++v) up_[q][v] = 1;
      }
      continue;
    }

    // good[u]: parent p can map to u with its full context and all siblings
    // of q satisfied under u.
    std::vector<char> good(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      if (!up_[p][u] || !LabelMatches(p, u)) continue;
      bool ok = true;
      for (QNodeId c : query_.children(p)) {
        if (c == q) continue;
        if (!ChildRequirement(c, u)) {
          ok = false;
          break;
        }
      }
      good[u] = ok ? 1 : 0;
    }

    if (query_.axis(q) == Axis::kChild) {
      for (NodeId v = 0; v < n; ++v) {
        const NodeId u = doc_.parent(v);
        if (u != xml::kInvalidNode && good[u]) up_[q][v] = 1;
      }
    } else {
      // anc_good[v]: some proper ancestor u of v has good[u].
      std::vector<char> anc_good(n, 0);
      for (NodeId v : doc_pre) {
        const NodeId u = doc_.parent(v);
        if (u == xml::kInvalidNode) continue;
        anc_good[v] = static_cast<char>(good[u] || anc_good[u]);
      }
      for (NodeId v = 0; v < n; ++v) up_[q][v] = anc_good[v];
    }
  }
}

bool TwigEvaluator::Matches() const { return matches_; }

std::vector<NodeId> TwigEvaluator::SelectedNodes() const {
  std::vector<NodeId> out;
  const QNodeId s = query_.selection();
  if (s == kInvalidQNode || !matches_) return out;
  for (NodeId v = 0; v < doc_.NumNodes(); ++v) {
    if (down_[s][v] && up_[s][v]) out.push_back(v);
  }
  return out;
}

bool TwigEvaluator::Selects(NodeId node) const {
  const QNodeId s = query_.selection();
  if (s == kInvalidQNode || !matches_) return false;
  return down_[s][node] && up_[s][node];
}

std::vector<std::vector<NodeId>> TwigEvaluator::MarkedTuples(
    size_t limit) const {
  std::vector<std::vector<NodeId>> out;
  if (!matches_ || query_.marked().empty()) return out;

  // Pre-order list of real query nodes; parents precede children.
  std::vector<QNodeId> qnodes;
  for (QNodeId q : query_.PreOrder()) {
    if (q != 0) qnodes.push_back(q);
  }
  std::vector<NodeId> assignment(query_.NumNodes(), xml::kInvalidNode);
  std::set<std::vector<NodeId>> projections;

  std::function<bool(size_t)> assign = [&](size_t idx) {
    if (projections.size() >= limit) return true;  // stop
    if (idx == qnodes.size()) {
      std::vector<NodeId> tuple;
      tuple.reserve(query_.marked().size());
      for (QNodeId mq : query_.marked()) tuple.push_back(assignment[mq]);
      projections.insert(std::move(tuple));
      return projections.size() >= limit;
    }
    const QNodeId q = qnodes[idx];
    const QNodeId p = query_.parent(q);
    std::vector<NodeId> candidates;
    if (p == 0) {
      if (query_.axis(q) == Axis::kChild) {
        candidates.push_back(doc_.root());
      } else {
        for (NodeId v = 0; v < doc_.NumNodes(); ++v) candidates.push_back(v);
      }
    } else {
      const NodeId u = assignment[p];
      if (query_.axis(q) == Axis::kChild) {
        candidates = doc_.children(u);
      } else {
        candidates = doc_.Descendants(u);
      }
    }
    for (NodeId v : candidates) {
      if (!down_[q][v]) continue;
      assignment[q] = v;
      if (assign(idx + 1)) return true;
    }
    assignment[q] = xml::kInvalidNode;
    return false;
  };
  assign(0);
  return std::vector<std::vector<NodeId>>(projections.begin(),
                                          projections.end());
}

bool Matches(const TwigQuery& query, const xml::XmlTree& doc) {
  return TwigEvaluator(query, doc).Matches();
}

std::vector<NodeId> Evaluate(const TwigQuery& query, const xml::XmlTree& doc) {
  return TwigEvaluator(query, doc).SelectedNodes();
}

bool Selects(const TwigQuery& query, const xml::XmlTree& doc,
             xml::NodeId node) {
  return TwigEvaluator(query, doc).Selects(node);
}

}  // namespace twig
}  // namespace qlearn
