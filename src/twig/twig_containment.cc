#include "twig/twig_containment.h"

#include <algorithm>
#include <functional>

#include "twig/twig_eval.h"

namespace qlearn {
namespace twig {

namespace {

/// DP for homomorphism existence from `from` into `to` with
/// h(selection(from)) = selection(to) when both selections are set.
class HomChecker {
 public:
  HomChecker(const TwigQuery& from, const TwigQuery& to)
      : from_(from), to_(to) {}

  bool Run() {
    const size_t m = from_.NumNodes();
    const size_t n = to_.NumNodes();
    table_.assign(m, std::vector<char>(n, 0));

    // Proper-descendant closure of `to` (over real nodes).
    desc_.assign(n, std::vector<char>(n, 0));
    for (QNodeId a = 1; a < n; ++a) {
      QNodeId cur = to_.parent(a);
      while (cur != kInvalidQNode) {
        desc_[cur][a] = 1;
        if (cur == 0) break;
        cur = to_.parent(cur);
      }
    }

    // Children-before-parents (ids increase downward).
    for (QNodeId x = static_cast<QNodeId>(m); x-- > 1;) {
      for (QNodeId a = 1; a < n; ++a) {
        table_[x][a] = CanMap(x, a) ? 1 : 0;
      }
    }

    // Root constraints: children of from-root must be placed under to-root.
    for (QNodeId c : from_.children(0)) {
      if (!RootChildPlaceable(c)) return false;
    }
    return true;
  }

 private:
  bool LabelOk(QNodeId x, QNodeId a) const {
    return from_.label(x) == kWildcard || from_.label(x) == to_.label(a);
  }

  bool SelectionOk(QNodeId x, QNodeId a) const {
    if (from_.selection() == kInvalidQNode ||
        to_.selection() == kInvalidQNode) {
      return true;
    }
    // The selection must map to the selection; nothing else may claim it is
    // not required (only the forward constraint matters for containment).
    return (x == from_.selection()) == (a == to_.selection()) ||
           (x != from_.selection());
  }

  bool CanMap(QNodeId x, QNodeId a) {
    if (!LabelOk(x, a)) return false;
    if (x == from_.selection() && a != to_.selection() &&
        to_.selection() != kInvalidQNode) {
      return false;
    }
    for (QNodeId c : from_.children(x)) {
      bool placed = false;
      if (from_.axis(c) == Axis::kChild) {
        for (QNodeId b : to_.children(a)) {
          if (to_.axis(b) == Axis::kChild && table_[c][b]) {
            placed = true;
            break;
          }
        }
      } else {
        for (QNodeId b = 1; b < to_.NumNodes(); ++b) {
          if (desc_[a][b] && table_[c][b]) {
            placed = true;
            break;
          }
        }
      }
      if (!placed) return false;
    }
    return true;
  }

  bool RootChildPlaceable(QNodeId c) const {
    if (from_.axis(c) == Axis::kChild) {
      for (QNodeId b : to_.children(0)) {
        if (to_.axis(b) == Axis::kChild && table_[c][b]) return true;
      }
      return false;
    }
    for (QNodeId b = 1; b < to_.NumNodes(); ++b) {
      if (table_[c][b]) return true;
    }
    return false;
  }

  const TwigQuery& from_;
  const TwigQuery& to_;
  std::vector<std::vector<char>> table_;
  std::vector<std::vector<char>> desc_;
};

}  // namespace

bool ContainedInByHom(const TwigQuery& q1, const TwigQuery& q2) {
  return HomChecker(q2, q1).Run();
}

bool EquivalentByHom(const TwigQuery& q1, const TwigQuery& q2) {
  return ContainedInByHom(q1, q2) && ContainedInByHom(q2, q1);
}

std::vector<std::pair<xml::XmlTree, xml::NodeId>> CanonicalModels(
    const TwigQuery& q, int max_chain, common::Interner* interner) {
  std::vector<std::pair<xml::XmlTree, xml::NodeId>> models;
  const common::SymbolId fresh = interner->Intern("#fresh");

  // Collect descendant edges (including root children with '//').
  std::vector<QNodeId> desc_edges;
  for (QNodeId x = 1; x < q.NumNodes(); ++x) {
    if (q.axis(x) == Axis::kDescendant) desc_edges.push_back(x);
  }

  std::vector<int> chain(desc_edges.size(), 1);
  auto chain_of = [&](QNodeId x) {
    for (size_t i = 0; i < desc_edges.size(); ++i) {
      if (desc_edges[i] == x) return chain[i];
    }
    return 0;  // child edge: no inserted nodes
  };

  std::function<void()> emit = [&]() {
    xml::XmlTree doc;
    std::vector<xml::NodeId> image(q.NumNodes(), xml::kInvalidNode);
    for (QNodeId x : q.PreOrder()) {
      if (x == 0) continue;
      const QNodeId p = q.parent(x);
      const common::SymbolId lbl =
          q.label(x) == kWildcard ? fresh : q.label(x);
      if (p == 0) {
        // The document root: descendant edges from the virtual root insert
        // fresh ancestors above the query node's image.
        if (doc.empty()) {
          const int extra = q.axis(x) == Axis::kDescendant ? chain_of(x) - 1
                                                           : 0;
          xml::NodeId cur;
          if (extra > 0) {
            cur = doc.AddRoot(fresh);
            for (int i = 1; i < extra; ++i) cur = doc.AddChild(cur, fresh);
            image[x] = doc.AddChild(cur, lbl);
          } else {
            image[x] = doc.AddRoot(lbl);
          }
        } else {
          // A second root child cannot be materialized in a tree when both
          // require the root position; hang descendant-axis ones below the
          // existing root.
          if (q.axis(x) == Axis::kDescendant) {
            image[x] = doc.AddChild(doc.root(), lbl);
          } else {
            // Two child-axis root children must share the document root;
            // such queries are satisfiable only if labels agree. Merge by
            // reusing the root when compatible, else skip this model.
            image[x] = doc.root();
            if (q.label(x) != kWildcard && doc.label(doc.root()) != lbl) {
              return;  // inconsistent model; containment ignores it
            }
          }
        }
      } else {
        xml::NodeId cur = image[p];
        const int extra =
            q.axis(x) == Axis::kDescendant ? chain_of(x) - 1 : 0;
        for (int i = 0; i < extra; ++i) cur = doc.AddChild(cur, fresh);
        image[x] = doc.AddChild(cur, lbl);
      }
    }
    const xml::NodeId sel_image = q.selection() != kInvalidQNode
                                      ? image[q.selection()]
                                      : doc.root();
    models.emplace_back(std::move(doc), sel_image);
  };

  std::function<void(size_t)> sweep = [&](size_t i) {
    if (i == desc_edges.size()) {
      emit();
      return;
    }
    for (int len = 1; len <= max_chain; ++len) {
      chain[i] = len;
      sweep(i + 1);
    }
  };
  sweep(0);
  return models;
}

namespace {

bool HasWildcard(const TwigQuery& q) {
  for (QNodeId x = 1; x < q.NumNodes(); ++x) {
    if (q.label(x) == kWildcard) return true;
  }
  return false;
}

// Number of canonical models of `q` with chains up to `max_chain`, saturated
// at `cap`.
size_t CountModels(const TwigQuery& q, int max_chain, size_t cap) {
  size_t count = 1;
  for (QNodeId x = 1; x < q.NumNodes(); ++x) {
    if (q.axis(x) == Axis::kDescendant) {
      if (count > cap / static_cast<size_t>(max_chain)) return cap + 1;
      count *= static_cast<size_t>(max_chain);
    }
  }
  return count;
}

}  // namespace

bool ContainedInExact(const TwigQuery& q1, const TwigQuery& q2,
                      common::Interner* interner) {
  // Fast path: a homomorphism q2 -> q1 is always sufficient, and by the
  // canonical-model argument (Miklau & Suciu) it is also necessary whenever
  // q2 is wildcard-free — which covers every goal query in the benchmarks.
  if (ContainedInByHom(q1, q2)) return true;
  if (!HasWildcard(q2)) return false;

  const int max_chain = static_cast<int>(q2.Size()) + 1;
  // Guard against the exponential blowup in q1's descendant-edge count: the
  // learners can produce queries with dozens of descendant filters. Above
  // the budget we shorten the chains; "false" answers stay exact (we found a
  // countermodel), "true" answers become one-sided — acceptable for the
  // wildcard-containing corner this branch serves.
  constexpr size_t kModelBudget = 1 << 20;
  int chain = max_chain;
  while (chain > 1 && CountModels(q1, chain, kModelBudget) > kModelBudget) {
    --chain;
  }
  for (const auto& [doc, sel] : CanonicalModels(q1, chain, interner)) {
    TwigEvaluator eval(q2, doc);
    if (q2.selection() == kInvalidQNode) {
      if (!eval.Matches()) return false;
    } else if (!eval.Selects(sel)) {
      return false;
    }
  }
  return true;
}

bool EquivalentExact(const TwigQuery& q1, const TwigQuery& q2,
                     common::Interner* interner) {
  return ContainedInExact(q1, q2, interner) &&
         ContainedInExact(q2, q1, interner);
}

namespace {

// Order-insensitive structural hash of the subtree at `x` (label, axis,
// multiset of child hashes). Collisions only cost a missed dedup.
uint64_t SubtreeHash(const TwigQuery& q, QNodeId x,
                     std::vector<uint64_t>* cache) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^
               (static_cast<uint64_t>(q.label(x)) << 2) ^
               static_cast<uint64_t>(q.axis(x));
  uint64_t kid_mix = 0;
  for (QNodeId c : q.children(x)) {
    kid_mix += SubtreeHash(q, c, cache) * 0x100000001b3ULL +
               0x517cc1b727220a95ULL;
  }
  h ^= kid_mix + (kid_mix << 7);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  (*cache)[x] = h;
  return h;
}

// Exact order-insensitive equality of the subtrees at `x` and `y`, using the
// precomputed hashes to pair children deterministically.
bool SubtreeIdentical(const TwigQuery& q, QNodeId x, QNodeId y,
                      const std::vector<uint64_t>& hashes) {
  if (q.label(x) != q.label(y) || q.axis(x) != q.axis(y)) return false;
  if (q.children(x).size() != q.children(y).size()) return false;
  std::vector<QNodeId> xs(q.children(x)), ys(q.children(y));
  auto by_hash = [&](QNodeId a, QNodeId b) { return hashes[a] < hashes[b]; };
  std::sort(xs.begin(), xs.end(), by_hash);
  std::sort(ys.begin(), ys.end(), by_hash);
  for (size_t i = 0; i < xs.size(); ++i) {
    if (!SubtreeIdentical(q, xs[i], ys[i], hashes)) return false;
  }
  return true;
}

// Removes duplicate sibling subtrees (structurally identical, not containing
// the selection or a marked node): a homomorphism mapping the removed copy
// onto the kept one always exists, so this is equivalence-preserving and much
// cheaper than the hom-certified loop below.
TwigQuery DedupSiblings(const TwigQuery& q) {
  TwigQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<uint64_t> hashes(current.NumNodes(), 0);
    if (current.NumNodes() > 1) {
      for (QNodeId c : current.children(0)) SubtreeHash(current, c, &hashes);
    }
    std::vector<bool> keep(current.NumNodes(), false);
    auto protect = [&](QNodeId n) {
      for (QNodeId cur = n; cur != kInvalidQNode; cur = current.parent(cur)) {
        keep[cur] = true;
        if (cur == 0) break;
      }
    };
    if (current.selection() != kInvalidQNode) protect(current.selection());
    for (QNodeId m : current.marked()) protect(m);

    for (QNodeId p = 0; p < current.NumNodes() && !changed; ++p) {
      // By value: RemoveSubtree below reassigns `current` and frees the old
      // tree while the loop conditions still read the child list.
      const std::vector<QNodeId> kids = current.children(p);
      for (size_t i = 0; i < kids.size() && !changed; ++i) {
        if (keep[kids[i]]) continue;
        for (size_t j = 0; j < i; ++j) {
          if (hashes[kids[i]] == hashes[kids[j]] &&
              SubtreeIdentical(current, kids[i], kids[j], hashes)) {
            current = current.RemoveSubtree(kids[i]);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return current;
}

}  // namespace

TwigQuery Minimize(const TwigQuery& q) {
  TwigQuery current = DedupSiblings(q);
  bool changed = true;
  while (changed) {
    changed = false;
    // Protected nodes: ancestors of the selection and of marked nodes.
    std::vector<bool> keep(current.NumNodes(), false);
    auto protect = [&](QNodeId n) {
      for (QNodeId cur = n; cur != kInvalidQNode; cur = current.parent(cur)) {
        keep[cur] = true;
        if (cur == 0) break;
      }
    };
    if (current.selection() != kInvalidQNode) protect(current.selection());
    for (QNodeId m : current.marked()) protect(m);

    // Try removing larger subtrees first.
    std::vector<QNodeId> candidates;
    for (QNodeId x = 1; x < current.NumNodes(); ++x) {
      if (!keep[x]) candidates.push_back(x);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](QNodeId a, QNodeId b) {
                return current.depth(a) < current.depth(b);
              });
    for (QNodeId x : candidates) {
      // Skip nodes whose ancestor was already a candidate removed this pass.
      TwigQuery pruned = current.RemoveSubtree(x);
      // Removal generalizes; equivalence needs pruned ⊆ current, certified
      // by a homomorphism current -> pruned.
      if (ContainedInByHom(pruned, current)) {
        current = std::move(pruned);
        changed = true;
        break;  // restart: node ids shifted
      }
    }
  }
  return current;
}

}  // namespace twig
}  // namespace qlearn
