// Containment, equivalence and minimization of twig queries.
//
// Two procedures are provided, mirroring the classical theory:
//  * homomorphism-based containment — PTIME, sound for the full fragment
//    XP{/,//,[],*} and complete for the wildcard-free fragment;
//  * canonical-model containment — exact for the full fragment but
//    exponential in the number of descendant edges (intended for the small
//    queries manipulated by the learners and benchmarks).
#ifndef QLEARN_TWIG_TWIG_CONTAINMENT_H_
#define QLEARN_TWIG_TWIG_CONTAINMENT_H_

#include <utility>
#include <vector>

#include "common/interner.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace twig {

/// True iff a selection- and root-preserving homomorphism q2 -> q1 exists
/// (child edges to child edges, descendant edges to downward paths, labels
/// preserved up to q2-wildcards). Implies L(q1) ⊆ L(q2).
bool ContainedInByHom(const TwigQuery& q1, const TwigQuery& q2);

/// True iff homomorphisms exist in both directions (implies equivalence).
bool EquivalentByHom(const TwigQuery& q1, const TwigQuery& q2);

/// Canonical models of `q`: documents obtained by instantiating wildcards
/// with a fresh label and descendant edges with fresh-label chains of length
/// 1..max_chain. Returns (document, image-of-selection) pairs.
std::vector<std::pair<xml::XmlTree, xml::NodeId>> CanonicalModels(
    const TwigQuery& q, int max_chain, common::Interner* interner);

/// Exact containment test L(q1) ⊆ L(q2) via canonical models of q1 with
/// chains up to |q2|+1. Exponential in the descendant-edge count of q1.
bool ContainedInExact(const TwigQuery& q1, const TwigQuery& q2,
                      common::Interner* interner);

/// Exact equivalence via ContainedInExact both ways.
bool EquivalentExact(const TwigQuery& q1, const TwigQuery& q2,
                     common::Interner* interner);

/// Removes redundant branches: repeatedly deletes any subtree (not containing
/// the selection or a marked node) whose removal keeps the query equivalent,
/// certified by homomorphism. The result selects exactly the same nodes.
TwigQuery Minimize(const TwigQuery& q);

}  // namespace twig
}  // namespace qlearn

#endif  // QLEARN_TWIG_TWIG_CONTAINMENT_H_
