// Parser for the XPath-like twig syntax produced by TwigQuery::ToString:
//
//   query  := ('/'|'//') step ( ('/'|'//') step )*
//   step   := (label | '*') filter*
//   filter := '[' rel ']'
//   rel    := ('.//')? step ( ('/'|'//') step )*
//
// The selection node is the final step of the main path.
#ifndef QLEARN_TWIG_TWIG_PARSER_H_
#define QLEARN_TWIG_TWIG_PARSER_H_

#include <string_view>

#include "common/interner.h"
#include "common/status.h"
#include "twig/twig_query.h"

namespace qlearn {
namespace twig {

/// Parses `text` into a twig query, interning labels into `interner`.
common::Result<TwigQuery> ParseTwig(std::string_view text,
                                    common::Interner* interner);

}  // namespace twig
}  // namespace qlearn

#endif  // QLEARN_TWIG_TWIG_PARSER_H_
