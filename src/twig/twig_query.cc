#include "twig/twig_query.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace qlearn {
namespace twig {

TwigQuery::TwigQuery() {
  labels_.push_back(kWildcard);  // virtual root; label is never consulted
  axes_.push_back(Axis::kChild);
  parents_.push_back(kInvalidQNode);
  depths_.push_back(0);
  children_.emplace_back();
}

QNodeId TwigQuery::AddNode(QNodeId parent, Axis axis,
                           common::SymbolId label) {
  assert(parent < labels_.size());
  const QNodeId id = static_cast<QNodeId>(labels_.size());
  labels_.push_back(label);
  axes_.push_back(axis);
  parents_.push_back(parent);
  depths_.push_back(depths_[parent] + 1);
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

bool TwigQuery::IsPath() const {
  for (const auto& kids : children_) {
    if (kids.size() > 1) return false;
  }
  return true;
}

bool TwigQuery::IsAnchored() const {
  for (QNodeId q = 1; q < labels_.size(); ++q) {
    if (labels_[q] != kWildcard) continue;
    if (axes_[q] == Axis::kDescendant) return false;
    for (QNodeId c : children_[q]) {
      if (axes_[c] == Axis::kDescendant) return false;
    }
  }
  return true;
}

std::vector<QNodeId> TwigQuery::PreOrder() const {
  std::vector<QNodeId> order;
  order.reserve(NumNodes());
  std::vector<QNodeId> stack{0};
  while (!stack.empty()) {
    const QNodeId q = stack.back();
    stack.pop_back();
    order.push_back(q);
    const auto& kids = children_[q];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

TwigQuery TwigQuery::RemoveSubtree(QNodeId victim) const {
  assert(victim != 0);
  TwigQuery out;
  std::vector<QNodeId> remap(NumNodes(), kInvalidQNode);
  remap[0] = 0;
  // Rebuild in pre-order, skipping the victim subtree.
  for (QNodeId q : PreOrder()) {
    if (q == 0) continue;
    if (q == victim || remap[parents_[q]] == kInvalidQNode) continue;
    remap[q] = out.AddNode(remap[parents_[q]], axes_[q], labels_[q]);
  }
  if (selection_ != kInvalidQNode) {
    assert(remap[selection_] != kInvalidQNode &&
           "selection inside removed subtree");
    out.set_selection(remap[selection_]);
  }
  for (QNodeId m : marked_) {
    assert(remap[m] != kInvalidQNode && "marked node inside removed subtree");
    out.AddMarked(remap[m]);
  }
  return out;
}

bool TwigQuery::SubtreeEquals(const TwigQuery& other, QNodeId a,
                              QNodeId b) const {
  if (labels_[a] != other.labels_[b]) return false;
  if (a != 0 && axes_[a] != other.axes_[b]) return false;
  if ((a == selection_) != (b == other.selection_)) return false;
  const auto& ka = children_[a];
  const auto& kb = other.children_[b];
  if (ka.size() != kb.size()) return false;
  // Children are unordered: greedy bipartite matching via backtracking.
  std::vector<bool> used(kb.size(), false);
  std::function<bool(size_t)> match = [&](size_t i) {
    if (i == ka.size()) return true;
    for (size_t j = 0; j < kb.size(); ++j) {
      if (used[j]) continue;
      if (SubtreeEquals(other, ka[i], kb[j])) {
        used[j] = true;
        if (match(i + 1)) return true;
        used[j] = false;
      }
    }
    return false;
  };
  return match(0);
}

bool TwigQuery::StructurallyEquals(const TwigQuery& other) const {
  if (NumNodes() != other.NumNodes()) return false;
  return SubtreeEquals(other, 0, 0);
}

std::string TwigQuery::ToString(const common::Interner& interner) const {
  // The main path runs from the virtual root to the selection node (or the
  // deepest-first node if no selection). Side branches print as filters.
  std::vector<QNodeId> main_path;
  QNodeId tail = selection_;
  if (tail == kInvalidQNode) {
    // Boolean query: follow first children.
    tail = 0;
    while (!children_[tail].empty()) tail = children_[tail][0];
  }
  for (QNodeId q = tail; q != kInvalidQNode && q != 0; q = parents_[q]) {
    main_path.push_back(q);
  }
  std::reverse(main_path.begin(), main_path.end());

  auto label_str = [&](QNodeId q) {
    return labels_[q] == kWildcard ? std::string("*")
                                   : interner.Name(labels_[q]);
  };

  // Renders the subtree at `q` as a relative filter path.
  std::function<std::string(QNodeId, bool)> render_filter =
      [&](QNodeId q, bool leading_axis) {
        std::string out;
        if (leading_axis && axes_[q] == Axis::kDescendant) out += ".//";
        if (!leading_axis) {
          out += axes_[q] == Axis::kDescendant ? "//" : "/";
        }
        out += label_str(q);
        const auto& kids = children_[q];
        if (kids.size() == 1) {
          out += render_filter(kids[0], false);
        } else if (kids.size() > 1) {
          for (QNodeId c : kids) {
            out += "[" + render_filter(c, true) + "]";
          }
        }
        return out;
      };

  std::string out;
  for (size_t i = 0; i < main_path.size(); ++i) {
    const QNodeId q = main_path[i];
    out += axes_[q] == Axis::kDescendant ? "//" : "/";
    out += label_str(q);
    const QNodeId next =
        i + 1 < main_path.size() ? main_path[i + 1] : kInvalidQNode;
    for (QNodeId c : children_[q]) {
      if (c == next) continue;
      out += "[" + render_filter(c, true) + "]";
    }
  }
  if (out.empty()) out = "/";
  return out;
}

}  // namespace twig
}  // namespace qlearn
