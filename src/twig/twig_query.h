// Twig queries: the tree-shaped XPath fragment XP{/,//,[],*} with a selection
// node, following DESIGN.md §2.2 and Staworko & Wieczorek's class. A query is
// a rooted tree whose node 0 is a *virtual root* matched to the (virtual)
// parent of the document root; every other node carries a label or wildcard
// and the axis (child '/' or descendant '//') of its incoming edge.
#ifndef QLEARN_TWIG_TWIG_QUERY_H_
#define QLEARN_TWIG_TWIG_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace qlearn {
namespace twig {

/// Index of a query node; 0 is always the virtual root.
using QNodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr QNodeId kInvalidQNode = static_cast<QNodeId>(-1);

/// Wildcard label '*': matches any document label.
inline constexpr common::SymbolId kWildcard = common::kNoSymbol;

/// Edge axis from a node's parent.
enum class Axis : uint8_t {
  kChild,       ///< '/': parent-child in the document.
  kDescendant,  ///< '//': proper ancestor-descendant (one or more steps).
};

/// A twig query. Immutable-after-build value type; copying is cheap enough
/// for the learners, which manipulate many candidate queries.
class TwigQuery {
 public:
  /// Creates a query containing only the virtual root.
  TwigQuery();

  /// Adds a node under `parent` (0 for the virtual root) reached via `axis`,
  /// labeled `label` (kWildcard for '*'). Returns its id.
  QNodeId AddNode(QNodeId parent, Axis axis, common::SymbolId label);

  /// Number of real (non-virtual) nodes: the paper's "query size".
  size_t Size() const { return labels_.size() - 1; }

  /// Total nodes including the virtual root.
  size_t NumNodes() const { return labels_.size(); }

  common::SymbolId label(QNodeId q) const { return labels_[q]; }
  Axis axis(QNodeId q) const { return axes_[q]; }
  QNodeId parent(QNodeId q) const { return parents_[q]; }
  const std::vector<QNodeId>& children(QNodeId q) const {
    return children_[q];
  }

  /// The selection (output) node. kInvalidQNode for boolean queries.
  QNodeId selection() const { return selection_; }
  void set_selection(QNodeId q) { selection_ = q; }

  /// Additional marked output nodes for n-ary extraction (shredding);
  /// by convention includes the selection node first when set.
  const std::vector<QNodeId>& marked() const { return marked_; }
  void AddMarked(QNodeId q) { marked_.push_back(q); }

  /// True iff the query tree is a single path (each node <= 1 child).
  bool IsPath() const;

  /// Anchored per DESIGN.md §2.2: every wildcard node has only child-typed
  /// incident edges (its own incoming edge and all its children's edges).
  bool IsAnchored() const;

  /// Nodes in pre-order (virtual root first).
  std::vector<QNodeId> PreOrder() const;

  /// Depth of `q` (virtual root = 0).
  uint32_t depth(QNodeId q) const { return depths_[q]; }

  /// Rebuilds the query without the subtree rooted at `q` (q != 0). The
  /// selection and marked nodes must not be inside the removed subtree.
  TwigQuery RemoveSubtree(QNodeId q) const;

  /// Deep structural equality (same shape, labels, axes, selection), up to
  /// child order.
  bool StructurallyEquals(const TwigQuery& other) const;

  /// XPath-like rendering, e.g. "/site//person[profile/age]/name"; the
  /// selection node terminates the main path.
  std::string ToString(const common::Interner& interner) const;

 private:
  bool SubtreeEquals(const TwigQuery& other, QNodeId a, QNodeId b) const;

  std::vector<common::SymbolId> labels_;
  std::vector<Axis> axes_;
  std::vector<QNodeId> parents_;
  std::vector<uint32_t> depths_;
  std::vector<std::vector<QNodeId>> children_;
  QNodeId selection_ = kInvalidQNode;
  std::vector<QNodeId> marked_;
};

}  // namespace twig
}  // namespace qlearn

#endif  // QLEARN_TWIG_TWIG_QUERY_H_
