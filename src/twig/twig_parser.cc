#include "twig/twig_parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"

namespace qlearn {
namespace twig {

using common::Result;
using common::Status;

namespace {

class Parser {
 public:
  Parser(std::string_view text, common::Interner* interner)
      : text_(text), interner_(interner) {}

  Result<TwigQuery> Parse() {
    if (text_.empty()) return Status::ParseError("empty twig query");
    QNodeId cur = 0;
    while (pos_ < text_.size()) {
      Axis axis;
      if (Consume("//")) {
        axis = Axis::kDescendant;
      } else if (Consume("/")) {
        axis = Axis::kChild;
      } else {
        return Error("expected '/' or '//'");
      }
      auto step = ParseStep(cur, axis);
      if (!step.ok()) return step.status();
      cur = step.value();
    }
    if (cur == 0) return Status::ParseError("twig query has no steps");
    query_.set_selection(cur);
    return std::move(query_);
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_) +
                              " in twig '" + std::string(text_) + "'");
  }

  bool Consume(std::string_view token) {
    if (common::StartsWith(text_.substr(pos_), token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '@' || c == '#' || c == '.';
  }

  /// Parses "label filter*" and returns the created node.
  Result<QNodeId> ParseStep(QNodeId parent, Axis axis) {
    common::SymbolId label;
    if (Consume("*")) {
      label = kWildcard;
    } else {
      const size_t start = pos_;
      // '.' only allowed as part of './/' which is handled by callers.
      while (pos_ < text_.size() && IsLabelChar(text_[pos_]) &&
             text_[pos_] != '.') {
        ++pos_;
      }
      if (pos_ == start) return Error("expected label or '*'");
      label = interner_->Intern(text_.substr(start, pos_ - start));
    }
    const QNodeId node = query_.AddNode(parent, axis, label);
    while (pos_ < text_.size() && text_[pos_] == '[') {
      ++pos_;
      QLEARN_RETURN_IF_ERROR(ParseFilterPath(node));
      if (!Consume("]")) return Error("expected ']'");
    }
    return node;
  }

  /// Parses the relative path inside a filter, attaching it under `anchor`.
  Status ParseFilterPath(QNodeId anchor) {
    Axis axis = Axis::kChild;
    if (Consume(".//") || Consume("//")) axis = Axis::kDescendant;
    auto first = ParseStep(anchor, axis);
    if (!first.ok()) return first.status();
    QNodeId cur = first.value();
    while (pos_ < text_.size() && text_[pos_] != ']') {
      Axis next_axis;
      if (Consume("//")) {
        next_axis = Axis::kDescendant;
      } else if (Consume("/")) {
        next_axis = Axis::kChild;
      } else {
        return Error("expected '/', '//' or ']' in filter");
      }
      auto step = ParseStep(cur, next_axis);
      if (!step.ok()) return step.status();
      cur = step.value();
    }
    return Status::OK();
  }

  std::string_view text_;
  common::Interner* interner_;
  TwigQuery query_;
  size_t pos_ = 0;
};

}  // namespace

Result<TwigQuery> ParseTwig(std::string_view text,
                            common::Interner* interner) {
  return Parser(text, interner).Parse();
}

}  // namespace twig
}  // namespace qlearn
