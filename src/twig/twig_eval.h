// Embedding-based evaluation of twig queries over XML trees: boolean
// matching, unary node selection, and bounded n-ary embedding enumeration
// (used by the XML shredding pipelines).
#ifndef QLEARN_TWIG_TWIG_EVAL_H_
#define QLEARN_TWIG_TWIG_EVAL_H_

#include <cstdint>
#include <vector>

#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace twig {

/// Evaluates twig queries against one document, caching per-document tables.
/// The evaluator is cheap to construct; build one per (query, document) pair.
class TwigEvaluator {
 public:
  /// Binds `query` and `doc`; neither is owned and both must outlive this.
  TwigEvaluator(const TwigQuery& query, const xml::XmlTree& doc);

  /// True iff some embedding of the whole query into the document exists.
  bool Matches() const;

  /// All document nodes selected by the query (sorted by node id).
  /// Empty when the query has no selection node or does not match.
  std::vector<xml::NodeId> SelectedNodes() const;

  /// True iff the query selects `node`.
  bool Selects(xml::NodeId node) const;

  /// Enumerates embeddings projected onto the query's marked nodes, up to
  /// `limit` distinct projections. Tuples follow the order of
  /// query.marked(). Used for n-ary extraction.
  std::vector<std::vector<xml::NodeId>> MarkedTuples(size_t limit) const;

 private:
  bool LabelMatches(QNodeId q, xml::NodeId v) const;
  /// D[q][v]: subtree of q embeds with q -> v.
  void ComputeDown();
  /// U[q][v]: the context of q embeds with q -> v (requires ComputeDown).
  void ComputeUp();
  /// Child requirement of c w.r.t. parent image u, using D.
  bool ChildRequirement(QNodeId c, xml::NodeId u) const;

  const TwigQuery& query_;
  const xml::XmlTree& doc_;
  std::vector<std::vector<char>> down_;        // [q][v]
  std::vector<std::vector<char>> down_below_;  // [q][v]: D holds strictly below v
  std::vector<std::vector<char>> up_;          // [q][v]
  bool matches_ = false;
};

/// Convenience wrappers.
bool Matches(const TwigQuery& query, const xml::XmlTree& doc);
std::vector<xml::NodeId> Evaluate(const TwigQuery& query,
                                  const xml::XmlTree& doc);
bool Selects(const TwigQuery& query, const xml::XmlTree& doc,
             xml::NodeId node);

}  // namespace twig
}  // namespace qlearn

#endif  // QLEARN_TWIG_TWIG_EVAL_H_
