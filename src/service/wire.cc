#include "service/wire.h"

#include <cstdio>
#include <utility>

namespace qlearn {
namespace service {
namespace wire {

namespace {

using common::Result;
using common::Status;

// ---------------------------------------------------------------------------
// Canonical JSON writing. Key order is fixed by the Serialize functions and
// nothing emits whitespace, so byte equality is semantic equality.

void AppendEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out->push_back('"');
}

void AppendIds(const std::vector<uint64_t>& ids, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(ids[i]);
  }
  out->push_back(']');
}

void AppendQuestion(const QuestionPayload& payload, std::string* out) {
  *out += "{\"kind\":";
  AppendEscaped(payload.kind, out);
  *out += ",\"ids\":";
  AppendIds(payload.ids, out);
  *out += ",\"text\":";
  AppendEscaped(payload.text, out);
  out->push_back('}');
}

void AppendHypothesis(const HypothesisPayload& payload, std::string* out) {
  *out += "{\"kind\":";
  AppendEscaped(payload.kind, out);
  *out += ",\"text\":";
  AppendEscaped(payload.text, out);
  out->push_back('}');
}

void AppendStats(const session::SessionStats& stats, std::string* out) {
  *out += "{\"questions\":" + std::to_string(stats.questions);
  *out += ",\"forced_positive\":" + std::to_string(stats.forced_positive);
  *out += ",\"forced_negative\":" + std::to_string(stats.forced_negative);
  *out += ",\"conflicts\":" + std::to_string(stats.conflicts);
  out->push_back('}');
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent over the emitted subset (objects, arrays,
// strings, unsigned decimal integers, booleans). Any key order is accepted;
// unknown keys, duplicate keys, and other JSON (null, floats, negatives)
// are rejected so everything that parses can be re-serialized canonically.

struct JsonValue {
  enum class Type { kBool, kUInt, kString, kArray, kObject };
  Type type = Type::kBool;
  bool bool_value = false;
  uint64_t uint_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    QLEARN_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("wire: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c >= '0' && c <= '9') return ParseUInt();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      QLEARN_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      for (const auto& [existing, unused] : value.object) {
        if (existing == key.string_value) {
          return Error("duplicate key \"" + key.string_value + "\"");
        }
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      QLEARN_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace_back(std::move(key.string_value),
                                std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    for (;;) {
      QLEARN_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          value.string_value.push_back('"');
          break;
        case '\\':
          value.string_value.push_back('\\');
          break;
        case '/':
          value.string_value.push_back('/');
          break;
        case 'b':
          value.string_value.push_back('\b');
          break;
        case 'f':
          value.string_value.push_back('\f');
          break;
        case 'n':
          value.string_value.push_back('\n');
          break;
        case 'r':
          value.string_value.push_back('\r');
          break;
        case 't':
          value.string_value.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // This writer only \u-escapes control characters; non-ASCII
          // passes through as raw UTF-8 bytes.
          if (code >= 0x80) return Error("\\u escape above 0x7f unsupported");
          value.string_value.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.bool_value = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.bool_value = false;
      pos_ += 5;
      return value;
    }
    return Error("expected 'true' or 'false'");
  }

  Result<JsonValue> ParseUInt() {
    JsonValue value;
    value.type = JsonValue::Type::kUInt;
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const unsigned digit = static_cast<unsigned>(text_[pos_] - '0');
      if (value.uint_value > (UINT64_MAX - digit) / 10) {
        return Error("integer overflow");
      }
      value.uint_value = value.uint_value * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return Error("expected digits");
    if (text_[start] == '0' && pos_ - start > 1) {
      return Error("leading zero in integer");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JsonValue -> payload struct conversion, strict about shapes and keys.

Status ShapeError(const std::string& message) {
  return Status::ParseError("wire: " + message);
}

/// Looks up `key` in an object and checks it off in `seen` (one bit per
/// member, for the final unknown-key sweep).
const JsonValue* Find(const JsonValue& object, const std::string& key,
                      std::vector<bool>* seen) {
  for (size_t i = 0; i < object.object.size(); ++i) {
    if (object.object[i].first == key) {
      (*seen)[i] = true;
      return &object.object[i].second;
    }
  }
  return nullptr;
}

Status CheckAllKeysKnown(const JsonValue& object,
                         const std::vector<bool>& seen,
                         const std::string& what) {
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return ShapeError("unknown key \"" + object.object[i].first +
                        "\" in " + what);
    }
  }
  return Status::OK();
}

Result<std::string> ToString(const JsonValue* value, const std::string& what) {
  if (value == nullptr || value->type != JsonValue::Type::kString) {
    return ShapeError("missing or non-string \"" + what + "\"");
  }
  return value->string_value;
}

Result<uint64_t> ToUInt(const JsonValue* value, const std::string& what) {
  if (value == nullptr || value->type != JsonValue::Type::kUInt) {
    return ShapeError("missing or non-integer \"" + what + "\"");
  }
  return value->uint_value;
}

Result<QuestionPayload> QuestionFromJson(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return ShapeError("question payload must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  QuestionPayload payload;
  QLEARN_ASSIGN_OR_RETURN(payload.kind,
                          ToString(Find(value, "kind", &seen), "kind"));
  const JsonValue* ids = Find(value, "ids", &seen);
  if (ids == nullptr || ids->type != JsonValue::Type::kArray) {
    return ShapeError("missing or non-array \"ids\"");
  }
  for (const JsonValue& id : ids->array) {
    if (id.type != JsonValue::Type::kUInt) {
      return ShapeError("non-integer entry in \"ids\"");
    }
    payload.ids.push_back(id.uint_value);
  }
  QLEARN_ASSIGN_OR_RETURN(payload.text,
                          ToString(Find(value, "text", &seen), "text"));
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(value, seen, "question payload"));
  return payload;
}

Result<HypothesisPayload> HypothesisFromJson(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return ShapeError("hypothesis payload must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  HypothesisPayload payload;
  QLEARN_ASSIGN_OR_RETURN(payload.kind,
                          ToString(Find(value, "kind", &seen), "kind"));
  QLEARN_ASSIGN_OR_RETURN(payload.text,
                          ToString(Find(value, "text", &seen), "text"));
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(value, seen, "hypothesis payload"));
  return payload;
}

Result<session::SessionStats> StatsFromJson(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return ShapeError("stats must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  session::SessionStats stats;
  QLEARN_ASSIGN_OR_RETURN(
      stats.questions, ToUInt(Find(value, "questions", &seen), "questions"));
  QLEARN_ASSIGN_OR_RETURN(
      stats.forced_positive,
      ToUInt(Find(value, "forced_positive", &seen), "forced_positive"));
  QLEARN_ASSIGN_OR_RETURN(
      stats.forced_negative,
      ToUInt(Find(value, "forced_negative", &seen), "forced_negative"));
  QLEARN_ASSIGN_OR_RETURN(
      stats.conflicts, ToUInt(Find(value, "conflicts", &seen), "conflicts"));
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(value, seen, "stats"));
  return stats;
}

Result<TranscriptEvent> EventFromJson(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return ShapeError("transcript event must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  TranscriptEvent event;
  QLEARN_ASSIGN_OR_RETURN(const std::string tag,
                          ToString(Find(value, "event", &seen), "event"));
  if (tag == "open") {
    event.kind = TranscriptEvent::Kind::kOpen;
    QLEARN_ASSIGN_OR_RETURN(
        event.scenario, ToString(Find(value, "scenario", &seen), "scenario"));
    QLEARN_ASSIGN_OR_RETURN(event.seed,
                            ToUInt(Find(value, "seed", &seen), "seed"));
    QLEARN_ASSIGN_OR_RETURN(
        event.max_questions,
        ToUInt(Find(value, "max_questions", &seen), "max_questions"));
  } else if (tag == "ask") {
    event.kind = TranscriptEvent::Kind::kAsk;
    QLEARN_ASSIGN_OR_RETURN(
        event.requested, ToUInt(Find(value, "requested", &seen), "requested"));
    const JsonValue* questions = Find(value, "questions", &seen);
    if (questions == nullptr || questions->type != JsonValue::Type::kArray) {
      return ShapeError("missing or non-array \"questions\"");
    }
    for (const JsonValue& question : questions->array) {
      QLEARN_ASSIGN_OR_RETURN(QuestionPayload payload,
                              QuestionFromJson(question));
      event.questions.push_back(std::move(payload));
    }
  } else if (tag == "tell") {
    event.kind = TranscriptEvent::Kind::kTell;
    const JsonValue* labels = Find(value, "labels", &seen);
    if (labels == nullptr || labels->type != JsonValue::Type::kArray) {
      return ShapeError("missing or non-array \"labels\"");
    }
    for (const JsonValue& label : labels->array) {
      if (label.type != JsonValue::Type::kBool) {
        return ShapeError("non-boolean entry in \"labels\"");
      }
      event.labels.push_back(label.bool_value);
    }
  } else if (tag == "close") {
    event.kind = TranscriptEvent::Kind::kClose;
    const JsonValue* hypothesis = Find(value, "hypothesis", &seen);
    if (hypothesis == nullptr) return ShapeError("missing \"hypothesis\"");
    QLEARN_ASSIGN_OR_RETURN(event.hypothesis, HypothesisFromJson(*hypothesis));
    const JsonValue* stats = Find(value, "stats", &seen);
    if (stats == nullptr) return ShapeError("missing \"stats\"");
    QLEARN_ASSIGN_OR_RETURN(event.stats, StatsFromJson(*stats));
  } else {
    return ShapeError("unknown event tag \"" + tag + "\"");
  }
  QLEARN_RETURN_IF_ERROR(
      CheckAllKeysKnown(value, seen, "\"" + tag + "\" event"));
  return event;
}

}  // namespace

bool TranscriptEvent::operator==(const TranscriptEvent& other) const {
  // Canonical serialization is injective on the fields each kind carries,
  // so byte equality is the equality we mean everywhere else too.
  return Serialize(*this) == Serialize(other);
}

std::string Serialize(const QuestionPayload& payload) {
  std::string out;
  AppendQuestion(payload, &out);
  return out;
}

std::string Serialize(const HypothesisPayload& payload) {
  std::string out;
  AppendHypothesis(payload, &out);
  return out;
}

std::string Serialize(const session::SessionStats& stats) {
  std::string out;
  AppendStats(stats, &out);
  return out;
}

std::string Serialize(const TranscriptEvent& event) {
  std::string out;
  switch (event.kind) {
    case TranscriptEvent::Kind::kOpen:
      out += "{\"event\":\"open\",\"scenario\":";
      AppendEscaped(event.scenario, &out);
      out += ",\"seed\":" + std::to_string(event.seed);
      out += ",\"max_questions\":" + std::to_string(event.max_questions);
      out.push_back('}');
      break;
    case TranscriptEvent::Kind::kAsk:
      out += "{\"event\":\"ask\",\"requested\":" +
             std::to_string(event.requested) + ",\"questions\":[";
      for (size_t i = 0; i < event.questions.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendQuestion(event.questions[i], &out);
      }
      out += "]}";
      break;
    case TranscriptEvent::Kind::kTell:
      out += "{\"event\":\"tell\",\"labels\":[";
      for (size_t i = 0; i < event.labels.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += event.labels[i] ? "true" : "false";
      }
      out += "]}";
      break;
    case TranscriptEvent::Kind::kClose:
      out += "{\"event\":\"close\",\"hypothesis\":";
      AppendHypothesis(event.hypothesis, &out);
      out += ",\"stats\":";
      AppendStats(event.stats, &out);
      out.push_back('}');
      break;
  }
  return out;
}

std::string SerializeTranscript(const std::vector<TranscriptEvent>& events) {
  std::string out;
  for (const TranscriptEvent& event : events) {
    out += Serialize(event);
    out.push_back('\n');
  }
  return out;
}

common::Result<QuestionPayload> ParseQuestionPayload(const std::string& text) {
  JsonParser parser(text);
  QLEARN_ASSIGN_OR_RETURN(JsonValue value, parser.ParseDocument());
  return QuestionFromJson(value);
}

common::Result<HypothesisPayload> ParseHypothesisPayload(
    const std::string& text) {
  JsonParser parser(text);
  QLEARN_ASSIGN_OR_RETURN(JsonValue value, parser.ParseDocument());
  return HypothesisFromJson(value);
}

common::Result<session::SessionStats> ParseStats(const std::string& text) {
  JsonParser parser(text);
  QLEARN_ASSIGN_OR_RETURN(JsonValue value, parser.ParseDocument());
  return StatsFromJson(value);
}

common::Result<TranscriptEvent> ParseEvent(const std::string& text) {
  JsonParser parser(text);
  QLEARN_ASSIGN_OR_RETURN(JsonValue value, parser.ParseDocument());
  return EventFromJson(value);
}

common::Result<std::vector<TranscriptEvent>> ParseTranscript(
    const std::string& text) {
  std::vector<TranscriptEvent> events;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? end : end - start);
    if (!line.empty()) {
      QLEARN_ASSIGN_OR_RETURN(TranscriptEvent event, ParseEvent(line));
      events.push_back(std::move(event));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return events;
}

}  // namespace wire
}  // namespace service
}  // namespace qlearn
