#include "service/wire.h"

#include <utility>

#include "service/json.h"

namespace qlearn {
namespace service {
namespace wire {

namespace {

using common::Result;
using common::Status;
using json::AppendEscaped;
using json::AppendUInts;
using json::CheckAllKeysKnown;
using json::Find;
using json::ToString;
using json::ToUInt;
using json::Value;

// ---------------------------------------------------------------------------
// Canonical JSON writing. Key order is fixed by the Serialize functions and
// nothing emits whitespace, so byte equality is semantic equality. The
// escaping/number primitives live in service/json.h, shared with the TCP
// protocol layer (net/protocol.h).

void AppendQuestion(const QuestionPayload& payload, std::string* out) {
  *out += "{\"kind\":";
  AppendEscaped(payload.kind, out);
  *out += ",\"ids\":";
  AppendUInts(payload.ids, out);
  *out += ",\"text\":";
  AppendEscaped(payload.text, out);
  out->push_back('}');
}

void AppendHypothesis(const HypothesisPayload& payload, std::string* out) {
  *out += "{\"kind\":";
  AppendEscaped(payload.kind, out);
  *out += ",\"text\":";
  AppendEscaped(payload.text, out);
  out->push_back('}');
}

void AppendStats(const session::SessionStats& stats, std::string* out) {
  *out += "{\"questions\":";
  json::AppendUInt(stats.questions, out);
  *out += ",\"forced_positive\":";
  json::AppendUInt(stats.forced_positive, out);
  *out += ",\"forced_negative\":";
  json::AppendUInt(stats.forced_negative, out);
  *out += ",\"conflicts\":";
  json::AppendUInt(stats.conflicts, out);
  out->push_back('}');
}

// ---------------------------------------------------------------------------
// json::Value -> payload struct conversion, strict about shapes and keys.

Status ShapeError(const std::string& message) {
  return Status::ParseError("wire: " + message);
}

}  // namespace

Result<QuestionPayload> QuestionFromJson(const Value& value) {
  if (value.type != Value::Type::kObject) {
    return ShapeError("question payload must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  QuestionPayload payload;
  QLEARN_ASSIGN_OR_RETURN(payload.kind,
                          ToString(Find(value, "kind", &seen), "kind"));
  const Value* ids = Find(value, "ids", &seen);
  if (ids == nullptr || ids->type != Value::Type::kArray) {
    return ShapeError("missing or non-array \"ids\"");
  }
  for (const Value& id : ids->array) {
    if (id.type != Value::Type::kUInt) {
      return ShapeError("non-integer entry in \"ids\"");
    }
    payload.ids.push_back(id.uint_value);
  }
  QLEARN_ASSIGN_OR_RETURN(payload.text,
                          ToString(Find(value, "text", &seen), "text"));
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(value, seen, "question payload"));
  return payload;
}

Result<HypothesisPayload> HypothesisFromJson(const Value& value) {
  if (value.type != Value::Type::kObject) {
    return ShapeError("hypothesis payload must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  HypothesisPayload payload;
  QLEARN_ASSIGN_OR_RETURN(payload.kind,
                          ToString(Find(value, "kind", &seen), "kind"));
  QLEARN_ASSIGN_OR_RETURN(payload.text,
                          ToString(Find(value, "text", &seen), "text"));
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(value, seen, "hypothesis payload"));
  return payload;
}

Result<session::SessionStats> StatsFromJson(const Value& value) {
  if (value.type != Value::Type::kObject) {
    return ShapeError("stats must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  session::SessionStats stats;
  QLEARN_ASSIGN_OR_RETURN(
      stats.questions, ToUInt(Find(value, "questions", &seen), "questions"));
  QLEARN_ASSIGN_OR_RETURN(
      stats.forced_positive,
      ToUInt(Find(value, "forced_positive", &seen), "forced_positive"));
  QLEARN_ASSIGN_OR_RETURN(
      stats.forced_negative,
      ToUInt(Find(value, "forced_negative", &seen), "forced_negative"));
  QLEARN_ASSIGN_OR_RETURN(
      stats.conflicts, ToUInt(Find(value, "conflicts", &seen), "conflicts"));
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(value, seen, "stats"));
  return stats;
}

namespace {

Result<TranscriptEvent> EventFromJson(const Value& value) {
  if (value.type != Value::Type::kObject) {
    return ShapeError("transcript event must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  TranscriptEvent event;
  QLEARN_ASSIGN_OR_RETURN(const std::string tag,
                          ToString(Find(value, "event", &seen), "event"));
  if (tag == "open") {
    event.kind = TranscriptEvent::Kind::kOpen;
    QLEARN_ASSIGN_OR_RETURN(
        event.scenario, ToString(Find(value, "scenario", &seen), "scenario"));
    QLEARN_ASSIGN_OR_RETURN(event.seed,
                            ToUInt(Find(value, "seed", &seen), "seed"));
    QLEARN_ASSIGN_OR_RETURN(
        event.max_questions,
        ToUInt(Find(value, "max_questions", &seen), "max_questions"));
  } else if (tag == "ask") {
    event.kind = TranscriptEvent::Kind::kAsk;
    QLEARN_ASSIGN_OR_RETURN(
        event.requested, ToUInt(Find(value, "requested", &seen), "requested"));
    const Value* questions = Find(value, "questions", &seen);
    if (questions == nullptr || questions->type != Value::Type::kArray) {
      return ShapeError("missing or non-array \"questions\"");
    }
    for (const Value& question : questions->array) {
      QLEARN_ASSIGN_OR_RETURN(QuestionPayload payload,
                              QuestionFromJson(question));
      event.questions.push_back(std::move(payload));
    }
  } else if (tag == "tell") {
    event.kind = TranscriptEvent::Kind::kTell;
    const Value* labels = Find(value, "labels", &seen);
    if (labels == nullptr || labels->type != Value::Type::kArray) {
      return ShapeError("missing or non-array \"labels\"");
    }
    for (const Value& label : labels->array) {
      if (label.type != Value::Type::kBool) {
        return ShapeError("non-boolean entry in \"labels\"");
      }
      event.labels.push_back(label.bool_value);
    }
  } else if (tag == "close") {
    event.kind = TranscriptEvent::Kind::kClose;
    const Value* hypothesis = Find(value, "hypothesis", &seen);
    if (hypothesis == nullptr) return ShapeError("missing \"hypothesis\"");
    QLEARN_ASSIGN_OR_RETURN(event.hypothesis, HypothesisFromJson(*hypothesis));
    const Value* stats = Find(value, "stats", &seen);
    if (stats == nullptr) return ShapeError("missing \"stats\"");
    QLEARN_ASSIGN_OR_RETURN(event.stats, StatsFromJson(*stats));
  } else {
    return ShapeError("unknown event tag \"" + tag + "\"");
  }
  QLEARN_RETURN_IF_ERROR(
      CheckAllKeysKnown(value, seen, "\"" + tag + "\" event"));
  return event;
}

}  // namespace

bool TranscriptEvent::operator==(const TranscriptEvent& other) const {
  // Canonical serialization is injective on the fields each kind carries,
  // so byte equality is the equality we mean everywhere else too.
  return Serialize(*this) == Serialize(other);
}

std::string Serialize(const QuestionPayload& payload) {
  std::string out;
  AppendQuestion(payload, &out);
  return out;
}

std::string Serialize(const HypothesisPayload& payload) {
  std::string out;
  AppendHypothesis(payload, &out);
  return out;
}

std::string Serialize(const session::SessionStats& stats) {
  std::string out;
  AppendStats(stats, &out);
  return out;
}

void SerializeTo(const QuestionPayload& payload, std::string* out) {
  AppendQuestion(payload, out);
}

void SerializeTo(const HypothesisPayload& payload, std::string* out) {
  AppendHypothesis(payload, out);
}

void SerializeTo(const session::SessionStats& stats, std::string* out) {
  AppendStats(stats, out);
}

std::string Serialize(const TranscriptEvent& event) {
  std::string out;
  switch (event.kind) {
    case TranscriptEvent::Kind::kOpen:
      out += "{\"event\":\"open\",\"scenario\":";
      AppendEscaped(event.scenario, &out);
      out += ",\"seed\":" + std::to_string(event.seed);
      out += ",\"max_questions\":" + std::to_string(event.max_questions);
      out.push_back('}');
      break;
    case TranscriptEvent::Kind::kAsk:
      out += "{\"event\":\"ask\",\"requested\":" +
             std::to_string(event.requested) + ",\"questions\":[";
      for (size_t i = 0; i < event.questions.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendQuestion(event.questions[i], &out);
      }
      out += "]}";
      break;
    case TranscriptEvent::Kind::kTell:
      out += "{\"event\":\"tell\",\"labels\":[";
      for (size_t i = 0; i < event.labels.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += event.labels[i] ? "true" : "false";
      }
      out += "]}";
      break;
    case TranscriptEvent::Kind::kClose:
      out += "{\"event\":\"close\",\"hypothesis\":";
      AppendHypothesis(event.hypothesis, &out);
      out += ",\"stats\":";
      AppendStats(event.stats, &out);
      out.push_back('}');
      break;
  }
  return out;
}

std::string SerializeTranscript(const std::vector<TranscriptEvent>& events) {
  std::string out;
  for (const TranscriptEvent& event : events) {
    out += Serialize(event);
    out.push_back('\n');
  }
  return out;
}

common::Result<QuestionPayload> ParseQuestionPayload(const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(Value value, json::Parse(text));
  return QuestionFromJson(value);
}

common::Result<HypothesisPayload> ParseHypothesisPayload(
    const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(Value value, json::Parse(text));
  return HypothesisFromJson(value);
}

common::Result<session::SessionStats> ParseStats(const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(Value value, json::Parse(text));
  return StatsFromJson(value);
}

common::Result<TranscriptEvent> ParseEvent(const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(Value value, json::Parse(text));
  return EventFromJson(value);
}

common::Result<std::vector<TranscriptEvent>> ParseTranscript(
    const std::string& text) {
  std::vector<TranscriptEvent> events;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? end : end - start);
    if (!line.empty()) {
      QLEARN_ASSIGN_OR_RETURN(TranscriptEvent event, ParseEvent(line));
      events.push_back(std::move(event));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return events;
}

}  // namespace wire
}  // namespace service
}  // namespace qlearn
