// Pluggable storage for hibernated-session images (service layer).
//
// SessionService parks quiescent sessions by serializing them into a
// checksummed image (see session_service.h) and handing the bytes to a
// SnapshotStore keyed by session handle. Two implementations ship:
//
//  * InMemorySnapshotStore — a mutexed map; the default, and what tests
//    use to inject corrupt/missing images.
//  * FileSnapshotStore — one file per session under a spool directory,
//    written to a temp name and atomically renamed into place so a crash
//    mid-write never leaves a torn image where Get can see it.
//
// Stores only move bytes; integrity is the service's job (every image
// carries a trailing FNV-1a checksum the rehydrate path verifies before
// parsing). Implementations must be thread-safe: the service calls them
// under per-session locks, and distinct sessions park concurrently.
#ifndef QLEARN_SERVICE_SNAPSHOT_STORE_H_
#define QLEARN_SERVICE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qlearn {
namespace service {

/// FNV-1a 64-bit over `bytes` — the checksum SessionService appends to
/// hibernation images. Exposed so tests can forge images whose checksum is
/// valid but whose payload is malformed (checksum-vs-parse error paths).
uint64_t Fnv1a64(std::string_view bytes);

/// Keyed blob storage for hibernation images. Keys are session handles
/// ("s-<20 digits>"); values are opaque bytes.
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Stores `image` under `key`, replacing any previous image atomically
  /// (a concurrent Get sees the old image or the new one, never a mix).
  virtual common::Status Put(const std::string& key,
                             std::string_view image) = 0;
  /// Fetches the image stored under `key`; NotFound when absent.
  virtual common::Result<std::string> Get(const std::string& key) = 0;
  /// Drops the image under `key`. Deleting an absent key is OK (the
  /// rehydrate path deletes after restore and must be idempotent).
  virtual common::Status Delete(const std::string& key) = 0;
  /// Number of images currently stored (diagnostics / tests).
  virtual size_t Count() const = 0;
};

/// Default store: images live in a mutexed map in this process.
class InMemorySnapshotStore : public SnapshotStore {
 public:
  common::Status Put(const std::string& key, std::string_view image) override;
  common::Result<std::string> Get(const std::string& key) override;
  common::Status Delete(const std::string& key) override;
  size_t Count() const override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> images_;
};

/// File-backed store: one `<dir>/<key>.snap` per image, written via a
/// `.tmp` sibling and rename(2) so readers never observe a partial write.
/// The directory must already exist; keys must be plain path components
/// (no separators) — session handles are.
class FileSnapshotStore : public SnapshotStore {
 public:
  explicit FileSnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  common::Status Put(const std::string& key, std::string_view image) override;
  common::Result<std::string> Get(const std::string& key) override;
  common::Status Delete(const std::string& key) override;
  size_t Count() const override;

  const std::string& dir() const { return dir_; }
  /// Final on-disk path for `key` (tests corrupt images in place).
  std::string PathFor(const std::string& key) const;

 private:
  std::string dir_;
};

}  // namespace service
}  // namespace qlearn

#endif  // QLEARN_SERVICE_SNAPSHOT_STORE_H_
