#include "service/json.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace qlearn {
namespace service {
namespace json {

namespace {

using common::Result;
using common::Status;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseDocument() {
    QLEARN_ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("json: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c >= '0' && c <= '9') return ParseUInt();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value value;
    value.type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      QLEARN_ASSIGN_OR_RETURN(Value key, ParseString());
      for (const auto& [existing, unused] : value.object) {
        if (existing == key.string_value) {
          return Error("duplicate key \"" + key.string_value + "\"");
        }
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      QLEARN_ASSIGN_OR_RETURN(Value member, ParseValue());
      value.object.emplace_back(std::move(key.string_value),
                                std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value value;
    value.type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    for (;;) {
      QLEARN_ASSIGN_OR_RETURN(Value element, ParseValue());
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    Value value;
    value.type = Value::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          value.string_value.push_back('"');
          break;
        case '\\':
          value.string_value.push_back('\\');
          break;
        case '/':
          value.string_value.push_back('/');
          break;
        case 'b':
          value.string_value.push_back('\b');
          break;
        case 'f':
          value.string_value.push_back('\f');
          break;
        case 'n':
          value.string_value.push_back('\n');
          break;
        case 'r':
          value.string_value.push_back('\r');
          break;
        case 't':
          value.string_value.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // The canonical writers only \u-escape control characters;
          // non-ASCII passes through as raw UTF-8 bytes.
          if (code >= 0x80) return Error("\\u escape above 0x7f unsupported");
          value.string_value.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseBool() {
    Value value;
    value.type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.bool_value = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.bool_value = false;
      pos_ += 5;
      return value;
    }
    return Error("expected 'true' or 'false'");
  }

  Result<Value> ParseUInt() {
    Value value;
    value.type = Value::Type::kUInt;
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const unsigned digit = static_cast<unsigned>(text_[pos_] - '0');
      if (value.uint_value > (UINT64_MAX - digit) / 10) {
        return Error("integer overflow");
      }
      value.uint_value = value.uint_value * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return Error("expected digits");
    if (text_[start] == '0' && pos_ - start > 1) {
      return Error("leading zero in integer");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Arena-mode parser. Mirrors Parser exactly — same grammar, same error
// messages, same offsets — but builds View nodes in the caller's arena and
// leaves string bytes in place (string_views into `text_`) unless an escape
// forces a decoded copy into the arena. tests/wire_property_test.cc drives
// the two parsers in lockstep over random and malformed inputs to keep the
// mirror honest.
class ArenaParser {
 public:
  ArenaParser(std::string_view text, Arena* arena)
      : text_(text), arena_(arena) {}

  Result<const View*> ParseDocument() {
    View* root = NewView();
    QLEARN_RETURN_IF_ERROR(ParseValue(root));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return static_cast<const View*>(root);
  }

 private:
  /// Chain link used while an array's or object's size is still unknown;
  /// the finished chain is compacted into a contiguous arena span.
  struct Link {
    std::string_view key;  // objects only
    View value;
    Link* next = nullptr;
  };

  View* NewView() {
    return new (arena_->Allocate(sizeof(View), alignof(View))) View();
  }

  Link* NewLink() {
    return new (arena_->Allocate(sizeof(Link), alignof(Link))) Link();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("json: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(View* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c >= '0' && c <= '9') return ParseUInt(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseObject(View* out) {
    ++pos_;  // '{'
    out->type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    Link* head = nullptr;
    Link* tail = nullptr;
    uint32_t count = 0;
    for (;;) {
      SkipWhitespace();
      View key;
      QLEARN_RETURN_IF_ERROR(ParseString(&key));
      for (const Link* link = head; link != nullptr; link = link->next) {
        if (link->key == key.string_value) {
          return Error("duplicate key \"" + std::string(key.string_value) +
                       "\"");
        }
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Link* link = NewLink();
      link->key = key.string_value;
      QLEARN_RETURN_IF_ERROR(ParseValue(&link->value));
      if (tail == nullptr) {
        head = tail = link;
      } else {
        tail->next = link;
        tail = link;
      }
      ++count;
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
    auto* members = static_cast<View::Member*>(
        arena_->Allocate(count * sizeof(View::Member), alignof(View::Member)));
    uint32_t i = 0;
    for (const Link* link = head; link != nullptr; link = link->next, ++i) {
      members[i].key = link->key;
      members[i].value = link->value;
    }
    out->members = members;
    out->member_count = count;
    return Status::OK();
  }

  Status ParseArray(View* out) {
    ++pos_;  // '['
    out->type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    Link* head = nullptr;
    Link* tail = nullptr;
    uint32_t count = 0;
    for (;;) {
      Link* link = NewLink();
      QLEARN_RETURN_IF_ERROR(ParseValue(&link->value));
      if (tail == nullptr) {
        head = tail = link;
      } else {
        tail->next = link;
        tail = link;
      }
      ++count;
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
    auto* elements = static_cast<View*>(
        arena_->Allocate(count * sizeof(View), alignof(View)));
    uint32_t i = 0;
    for (const Link* link = head; link != nullptr; link = link->next, ++i) {
      elements[i] = link->value;
    }
    out->elements = elements;
    out->element_count = count;
    return Status::OK();
  }

  Status ParseString(View* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->type = Value::Type::kString;
    // Fast path: no escapes before the closing quote means the leaf can be
    // a view straight into the input bytes, no copy.
    const size_t start = pos_;
    size_t scan = start;
    while (scan < text_.size() && text_[scan] != '"' &&
           text_[scan] != '\\') {
      ++scan;
    }
    if (scan < text_.size() && text_[scan] == '"') {
      out->string_value = text_.substr(start, scan - start);
      pos_ = scan + 1;
      return Status::OK();
    }
    // Slow path: find the real end (escape-aware) to bound the decoded
    // length, then decode into the arena with the heap parser's exact loop.
    size_t end = scan;
    while (end < text_.size() && text_[end] != '"') {
      end += text_[end] == '\\' ? 2 : 1;
    }
    const size_t bound = std::min(end, text_.size()) - start;
    char* decoded =
        static_cast<char*>(arena_->Allocate(bound, alignof(char)));
    size_t length = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        out->string_value = std::string_view(decoded, length);
        return Status::OK();
      }
      if (c != '\\') {
        decoded[length++] = c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          decoded[length++] = '"';
          break;
        case '\\':
          decoded[length++] = '\\';
          break;
        case '/':
          decoded[length++] = '/';
          break;
        case 'b':
          decoded[length++] = '\b';
          break;
        case 'f':
          decoded[length++] = '\f';
          break;
        case 'n':
          decoded[length++] = '\n';
          break;
        case 'r':
          decoded[length++] = '\r';
          break;
        case 't':
          decoded[length++] = '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // The canonical writers only \u-escape control characters;
          // non-ASCII passes through as raw UTF-8 bytes.
          if (code >= 0x80) return Error("\\u escape above 0x7f unsupported");
          decoded[length++] = static_cast<char>(code);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseBool(View* out) {
    out->type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    return Error("expected 'true' or 'false'");
  }

  Status ParseUInt(View* out) {
    out->type = Value::Type::kUInt;
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const unsigned digit = static_cast<unsigned>(text_[pos_] - '0');
      if (out->uint_value > (UINT64_MAX - digit) / 10) {
        return Error("integer overflow");
      }
      out->uint_value = out->uint_value * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return Error("expected digits");
    if (text_[start] == '0' && pos_ - start > 1) {
      return Error("leading zero in integer");
    }
    return Status::OK();
  }

  std::string_view text_;
  Arena* arena_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Value> Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

Arena::Arena(size_t slab_bytes) : slab_bytes_(slab_bytes) {}

Arena::~Arena() {
  for (const Slab& slab : slabs_) delete[] slab.data;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  for (;;) {
    if (active_ < slabs_.size()) {
      const Slab& slab = slabs_[active_];
      const size_t aligned = (used_ + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= slab.size) {
        used_ = aligned + bytes;
        return slab.data + aligned;
      }
      // Move on; any tail left in this slab is reclaimed at the next Reset.
      if (active_ + 1 < slabs_.size()) {
        ++active_;
        used_ = 0;
        continue;
      }
    }
    // Oversized requests get a dedicated slab so one huge payload cannot
    // force every subsequent slab to be huge.
    const size_t size = std::max(slab_bytes_, bytes + align);
    slabs_.push_back(Slab{new char[size], size});
    active_ = slabs_.size() - 1;
    used_ = 0;
  }
}

void Arena::Reset() {
  active_ = 0;
  used_ = 0;
}

size_t Arena::CapacityBytes() const {
  size_t total = 0;
  for (const Slab& slab : slabs_) total += slab.size;
  return total;
}

common::Result<const View*> ParseInto(std::string_view text, Arena* arena) {
  return ArenaParser(text, arena).ParseDocument();
}

void AppendUInt(uint64_t value, std::string* out) {
  char buffer[20];  // UINT64_MAX is 20 digits
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out->append(buffer, static_cast<size_t>(end - buffer));
}

void AppendView(const View& value, std::string* out) {
  switch (value.type) {
    case Value::Type::kBool:
      *out += value.bool_value ? "true" : "false";
      break;
    case Value::Type::kUInt:
      AppendUInt(value.uint_value, out);
      break;
    case Value::Type::kString:
      AppendEscaped(value.string_value, out);
      break;
    case Value::Type::kArray:
      out->push_back('[');
      for (uint32_t i = 0; i < value.element_count; ++i) {
        if (i > 0) out->push_back(',');
        AppendView(value.elements[i], out);
      }
      out->push_back(']');
      break;
    case Value::Type::kObject:
      out->push_back('{');
      for (uint32_t i = 0; i < value.member_count; ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(value.members[i].key, out);
        out->push_back(':');
        AppendView(value.members[i].value, out);
      }
      out->push_back('}');
      break;
  }
}

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out->push_back('"');
}

void AppendUInts(const std::vector<uint64_t>& ids, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendUInt(ids[i], out);
  }
  out->push_back(']');
}

const Value* Find(const Value& object, const std::string& key,
                  std::vector<bool>* seen) {
  for (size_t i = 0; i < object.object.size(); ++i) {
    if (object.object[i].first == key) {
      (*seen)[i] = true;
      return &object.object[i].second;
    }
  }
  return nullptr;
}

common::Status CheckAllKeysKnown(const Value& object,
                                 const std::vector<bool>& seen,
                                 const std::string& what) {
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return common::Status::ParseError("json: unknown key \"" +
                                        object.object[i].first + "\" in " +
                                        what);
    }
  }
  return common::Status::OK();
}

common::Result<std::string> ToString(const Value* value,
                                     const std::string& what) {
  if (value == nullptr || value->type != Value::Type::kString) {
    return common::Status::ParseError("json: missing or non-string \"" +
                                      what + "\"");
  }
  return value->string_value;
}

common::Result<uint64_t> ToUInt(const Value* value, const std::string& what) {
  if (value == nullptr || value->type != Value::Type::kUInt) {
    return common::Status::ParseError("json: missing or non-integer \"" +
                                      what + "\"");
  }
  return value->uint_value;
}

common::Result<bool> ToBool(const Value* value, const std::string& what) {
  if (value == nullptr || value->type != Value::Type::kBool) {
    return common::Status::ParseError("json: missing or non-boolean \"" +
                                      what + "\"");
  }
  return value->bool_value;
}

const View* Find(const View& object, std::string_view key, uint64_t* seen) {
  for (uint32_t i = 0; i < object.member_count; ++i) {
    if (object.members[i].key == key) {
      // Members past the 64-bit mask cannot be marked seen; a shift by
      // >= 64 is UB, and CheckAllKeysKnown rejects such oversized objects
      // regardless, so just skip the bookkeeping.
      if (i < 64) *seen |= uint64_t{1} << i;
      return &object.members[i].value;
    }
  }
  return nullptr;
}

common::Status CheckAllKeysKnown(const View& object, uint64_t seen,
                                 std::string_view what) {
  // The bitmask covers 64 members; every canonical message shape is far
  // smaller, so anything past that is unknown-key territory by definition.
  for (uint32_t i = 0; i < object.member_count; ++i) {
    if (i >= 64 || !(seen & (uint64_t{1} << i))) {
      return common::Status::ParseError(
          "json: unknown key \"" + std::string(object.members[i].key) +
          "\" in " + std::string(what));
    }
  }
  return common::Status::OK();
}

common::Result<std::string_view> ToStringView(const View* value,
                                              std::string_view what) {
  if (value == nullptr || value->type != Value::Type::kString) {
    return common::Status::ParseError("json: missing or non-string \"" +
                                      std::string(what) + "\"");
  }
  return value->string_value;
}

common::Result<uint64_t> ToUInt(const View* value, std::string_view what) {
  if (value == nullptr || value->type != Value::Type::kUInt) {
    return common::Status::ParseError("json: missing or non-integer \"" +
                                      std::string(what) + "\"");
  }
  return value->uint_value;
}

common::Result<bool> ToBool(const View* value, std::string_view what) {
  if (value == nullptr || value->type != Value::Type::kBool) {
    return common::Status::ParseError("json: missing or non-boolean \"" +
                                      std::string(what) + "\"");
  }
  return value->bool_value;
}

}  // namespace json
}  // namespace service
}  // namespace qlearn
