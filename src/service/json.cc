#include "service/json.h"

#include <cstdio>

namespace qlearn {
namespace service {
namespace json {

namespace {

using common::Result;
using common::Status;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseDocument() {
    QLEARN_ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("json: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c >= '0' && c <= '9') return ParseUInt();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value value;
    value.type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      QLEARN_ASSIGN_OR_RETURN(Value key, ParseString());
      for (const auto& [existing, unused] : value.object) {
        if (existing == key.string_value) {
          return Error("duplicate key \"" + key.string_value + "\"");
        }
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      QLEARN_ASSIGN_OR_RETURN(Value member, ParseValue());
      value.object.emplace_back(std::move(key.string_value),
                                std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value value;
    value.type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    for (;;) {
      QLEARN_ASSIGN_OR_RETURN(Value element, ParseValue());
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    Value value;
    value.type = Value::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          value.string_value.push_back('"');
          break;
        case '\\':
          value.string_value.push_back('\\');
          break;
        case '/':
          value.string_value.push_back('/');
          break;
        case 'b':
          value.string_value.push_back('\b');
          break;
        case 'f':
          value.string_value.push_back('\f');
          break;
        case 'n':
          value.string_value.push_back('\n');
          break;
        case 'r':
          value.string_value.push_back('\r');
          break;
        case 't':
          value.string_value.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // The canonical writers only \u-escape control characters;
          // non-ASCII passes through as raw UTF-8 bytes.
          if (code >= 0x80) return Error("\\u escape above 0x7f unsupported");
          value.string_value.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseBool() {
    Value value;
    value.type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.bool_value = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.bool_value = false;
      pos_ += 5;
      return value;
    }
    return Error("expected 'true' or 'false'");
  }

  Result<Value> ParseUInt() {
    Value value;
    value.type = Value::Type::kUInt;
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const unsigned digit = static_cast<unsigned>(text_[pos_] - '0');
      if (value.uint_value > (UINT64_MAX - digit) / 10) {
        return Error("integer overflow");
      }
      value.uint_value = value.uint_value * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return Error("expected digits");
    if (text_[start] == '0' && pos_ - start > 1) {
      return Error("leading zero in integer");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Value> Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

void AppendEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out->push_back('"');
}

void AppendUInts(const std::vector<uint64_t>& ids, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(ids[i]);
  }
  out->push_back(']');
}

const Value* Find(const Value& object, const std::string& key,
                  std::vector<bool>* seen) {
  for (size_t i = 0; i < object.object.size(); ++i) {
    if (object.object[i].first == key) {
      (*seen)[i] = true;
      return &object.object[i].second;
    }
  }
  return nullptr;
}

common::Status CheckAllKeysKnown(const Value& object,
                                 const std::vector<bool>& seen,
                                 const std::string& what) {
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return common::Status::ParseError("json: unknown key \"" +
                                        object.object[i].first + "\" in " +
                                        what);
    }
  }
  return common::Status::OK();
}

common::Result<std::string> ToString(const Value* value,
                                     const std::string& what) {
  if (value == nullptr || value->type != Value::Type::kString) {
    return common::Status::ParseError("json: missing or non-string \"" +
                                      what + "\"");
  }
  return value->string_value;
}

common::Result<uint64_t> ToUInt(const Value* value, const std::string& what) {
  if (value == nullptr || value->type != Value::Type::kUInt) {
    return common::Status::ParseError("json: missing or non-integer \"" +
                                      what + "\"");
  }
  return value->uint_value;
}

common::Result<bool> ToBool(const Value* value, const std::string& what) {
  if (value == nullptr || value->type != Value::Type::kBool) {
    return common::Status::ParseError("json: missing or non-boolean \"" +
                                      what + "\"");
  }
  return value->bool_value;
}

}  // namespace json
}  // namespace service
}  // namespace qlearn
