// SessionService: many concurrent interactive learning sessions behind
// string handles, with per-session budgets enforced by the service.
//
// This is the serving layer over the ScenarioRegistry front door: callers
// (an RPC handler, a crowd dispatcher, a demo CLI) speak scenario names,
// session ids, and wire payloads — never engine types. One service call
// maps to one protocol step:
//
//   SessionService service;
//   auto id = service.Open("join", {});
//   while (true) {
//     auto batch = service.Ask(id.value(), /*k=*/8);     // wire payloads
//     if (!batch.ok() || batch.value().empty()) break;
//     service.Tell(id.value(), LabelsFromUser(batch.value()));
//   }
//   auto closed = service.Close(id.value());             // final hypothesis
//
// Budgets (SessionBudget) are enforced here rather than by each caller:
// the question budget clamps a batch mid-Ask and then refuses further
// questions with ResourceExhausted; the wall-clock budget refuses questions
// once the session has been open too long; max_pending caps how many
// questions can be in flight at once. All failures are common::Status
// errors — a misbehaving client (Tell after Close, mismatched label count,
// Ask with answers outstanding) gets an error, never an assert.
//
// Thread-safety: all methods are safe to call from multiple threads.
// Distinct sessions never serialize on each other's learner work (each
// session has its own lock); calls on the same session are serialized.
// Entries are held by shared_ptr, so a handle resolved by one thread stays
// valid while another thread Closes and erases it — the loser observes
// `closed` under the entry lock and gets NotFound, never a dangling entry.
// tests/service_race_test.cc races Close against in-flight Ask/Tell/Status
// under the sanitizer CI job to keep this claim honest.
//
// Hibernation: a quiescent session (no pending batch) can be *parked* —
// serialized through a SnapshotStore as a checksummed image and evicted
// from memory — either explicitly (Park) or by the idle sweep
// (ParkIdleSessions, driven by ServiceOptions::hibernate_after_seconds).
// The handle stays valid: the next Ask/Tell/OracleLabels/Status/Close
// transparently rehydrates the session from its image, with budgets,
// wall-clock accounting, RNG lanes, and counters surviving the round trip
// (time spent parked still counts against the wall-clock budget). A
// missing or corrupt image surfaces as DataLoss, a stale-version or
// foreign image as InvalidArgument — never an assert or a dropped handle;
// Close always releases the handle even when rehydration fails.
// tests/hibernation_test.cc proves transcript-identical replay through a
// park/rehydrate cycle at every question boundary.
#ifndef QLEARN_SERVICE_SESSION_SERVICE_H_
#define QLEARN_SERVICE_SESSION_SERVICE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "service/snapshot_store.h"
#include "service/wire.h"
#include "session/registry.h"
#include "session/session.h"

namespace qlearn {
namespace service {

/// Per-session resource limits, enforced by the service.
struct SessionBudget {
  /// Hard cap on questions served over the session's lifetime.
  uint64_t max_questions = session::SessionDefaults::kMaxQuestions;
  /// Cap on questions in flight in one batch; Ask(k) clamps k to this.
  /// Must be > 0 (Open rejects a budget that could never serve a question).
  size_t max_pending = 64;
  /// Wall-clock allowance since Open, in seconds; 0 means unlimited. Asking
  /// past the allowance fails with ResourceExhausted (answers to already
  /// served questions are still accepted).
  double max_wall_seconds = 0;
};

/// Knobs for Open: the scenario-independent session options plus budgets.
struct OpenOptions {
  uint64_t seed = session::SessionDefaults::kSeed;
  SessionBudget budget;
  /// Caller-supplied session handle; empty (the default) mints one. A
  /// routing front tier mints ids itself so consistent-hash placement is
  /// decided before the backend is picked. Must be a plain path component
  /// ([A-Za-z0-9._-], at most 64 bytes); a taken handle is AlreadyExists.
  std::string id;
};

/// Service-wide construction knobs (all optional).
struct ServiceOptions {
  /// Scenario registry; nullptr means the global registry with the
  /// built-in scenarios registered.
  session::ScenarioRegistry* registry = nullptr;
  /// ParkIdleSessions() hibernates sessions idle (no call touched them) at
  /// least this long. 0 disables the idle sweep; explicit Park() always
  /// works.
  double hibernate_after_seconds = 0;
  /// Where hibernation images live; nullptr means a fresh
  /// InMemorySnapshotStore owned by the service.
  std::shared_ptr<SnapshotStore> snapshot_store;
  /// Time source for wall-clock budgets and idle accounting. Injectable so
  /// tests pin budget arithmetic with a fake clock; nullptr means
  /// std::chrono::steady_clock.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Snapshot of one session, as reported by Status().
struct SessionStatus {
  std::string id;
  std::string scenario;
  session::SessionStats stats;
  size_t pending = 0;            ///< questions served but not yet answered
  bool budget_exhausted = false; ///< a budget refused further questions
  std::string hypothesis;        ///< current rendering
};

/// Point-in-time copy of one LatencyHistogram: bucket i counts samples
/// whose microsecond duration has bit width i, i.e. [2^(i-1), 2^i); bucket
/// 0 is sub-microsecond. 28 buckets top out above two minutes.
struct LatencySnapshot {
  static constexpr size_t kBuckets = 28;
  std::array<uint64_t, kBuckets> buckets{};

  uint64_t Count() const;
  /// Upper edge (µs) of the bucket holding quantile q of the recorded
  /// samples — a factor-of-two estimate, which is all a log2 histogram
  /// promises. Returns 0 when empty.
  uint64_t QuantileUpperBoundMicros(double q) const;
};

/// Lock-free fixed-bucket (log2) latency histogram. Record is two relaxed
/// atomic ops, cheap enough for every request; snapshots are torn-by-one
/// like the counters.
class LatencyHistogram {
 public:
  void Record(uint64_t micros) {
    const size_t b = std::min<size_t>(std::bit_width(micros),
                                      LatencySnapshot::kBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
  }
  LatencySnapshot Snapshot() const {
    LatencySnapshot snapshot;
    for (size_t i = 0; i < LatencySnapshot::kBuckets; ++i) {
      snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

 private:
  std::array<std::atomic<uint64_t>, LatencySnapshot::kBuckets> buckets_{};
};

/// Monotonic service-wide operation counters — what a front end or load
/// generator reads to compute served throughput without instrumenting the
/// transport. Snapshot semantics: fields are read individually (relaxed),
/// so a snapshot taken while calls are in flight can be torn by one call;
/// each field on its own is exact.
struct ServiceCounters {
  uint64_t opens = 0;
  uint64_t asks = 0;
  uint64_t tells = 0;
  uint64_t oracles = 0;
  uint64_t statuses = 0;
  uint64_t closes = 0;
  uint64_t errors = 0;            ///< calls that returned a non-OK Status
  uint64_t questions_served = 0;  ///< questions across all Ask batches
  uint64_t labels_accepted = 0;   ///< labels across all Tell batches
  uint64_t hibernates = 0;        ///< sessions parked to the snapshot store
  uint64_t rehydrates = 0;        ///< sessions restored from their image
  uint64_t hibernate_errors = 0;  ///< failed park or rehydrate attempts
  uint64_t exports = 0;           ///< sessions shipped out via ExportSession
  uint64_t imports = 0;           ///< sessions adopted via ImportSession

  /// Server-side per-op latency histograms (µs, log2 buckets), measured
  /// around the whole service call — so latency is observable over the
  /// `counters` op without a client-side harness.
  LatencySnapshot open_latency_us;
  LatencySnapshot ask_latency_us;
  LatencySnapshot tell_latency_us;
  LatencySnapshot oracle_latency_us;
  LatencySnapshot status_latency_us;
  LatencySnapshot close_latency_us;
};

/// What Close() returns: the final hypothesis and final counters (the
/// learner may audit labels and minimize during Finish, so these can differ
/// from the last Status() snapshot).
struct CloseResult {
  wire::HypothesisPayload hypothesis;
  session::SessionStats stats;
};

/// What ExportSession() returns: the scenario name plus the checksummed
/// hibernation image (the same QLSV bytes Park writes) — everything a new
/// owner needs to adopt the session via ImportSession.
struct ExportedSession {
  std::string scenario;
  std::string image;
};

class SessionService {
 public:
  /// Serves scenarios from `registry`; defaults to the global registry with
  /// the built-in scenarios registered.
  explicit SessionService(session::ScenarioRegistry* registry = nullptr);
  /// Full construction surface: registry, hibernation policy, snapshot
  /// store, and clock (see ServiceOptions).
  explicit SessionService(const ServiceOptions& options);

  /// Instantiates a session of the named scenario; returns its handle.
  common::Result<std::string> Open(const std::string& scenario,
                                   const OpenOptions& options = {});

  /// Serves up to `k` questions (clamped to the pending and question
  /// budgets). An empty batch means the session converged: every item is
  /// labeled or uninformative. Fails with FailedPrecondition while a batch
  /// is unanswered and with ResourceExhausted once a budget is hit.
  /// (string_view ids throughout: the TCP hot path resolves handles
  /// straight out of the frame buffer without materializing a string.)
  common::Result<std::vector<wire::QuestionPayload>> Ask(std::string_view id,
                                                         size_t k);

  /// Labels the pending batch, in order. The label count must match the
  /// pending count exactly (InvalidArgument otherwise).
  common::Status Tell(std::string_view id, const std::vector<bool>& labels);
  /// Span form for callers that already hold the labels contiguously (the
  /// arena request path) — avoids materializing a vector<bool> per call.
  common::Status Tell(std::string_view id, const bool* labels, size_t count);

  /// Labels the built-in goal oracle would give the pending batch — for
  /// demos, smoke tests, and load generation against built-in scenarios.
  common::Result<std::vector<bool>> OracleLabels(std::string_view id);

  /// Snapshot of the session's counters, pending batch, and hypothesis.
  common::Result<SessionStatus> Status(std::string_view id) const;

  /// Finishes the session, returns the final hypothesis and counters, and
  /// releases the handle (subsequent calls on it return NotFound). A parked
  /// session is rehydrated first so Finish can run; if its image is
  /// unrecoverable the handle is still released and the rehydration error
  /// returned.
  common::Result<CloseResult> Close(std::string_view id);

  /// Hibernates one session now: serializes it into a checksummed image in
  /// the snapshot store and evicts the in-memory learner state. Requires
  /// quiescence — a pending batch fails with FailedPrecondition. Parking a
  /// parked session is a no-op; the handle stays listed and rehydrates on
  /// the next call.
  common::Status Park(std::string_view id);

  /// Ships one session out of this service for snapshot handoff: parks it
  /// (if resident) through the PR 8 path, returns the checksummed QLSV
  /// image, and releases the handle — after a successful export the
  /// session no longer exists here. Requires quiescence like Park; a
  /// pending batch fails with FailedPrecondition and leaves the session
  /// untouched (the rebalancer routes it via an override until it drains).
  common::Result<ExportedSession> ExportSession(std::string_view id);

  /// Adopts a session exported by another service instance: validates the
  /// image's checksum/header against `scenario`, installs the handle in
  /// the parked state, and stores the image — the first call on the handle
  /// rehydrates it exactly like a locally-parked session (budgets, wall
  /// clock, and RNG lanes survive). A taken handle is AlreadyExists; a
  /// corrupt image is DataLoss/InvalidArgument and nothing is installed.
  common::Status ImportSession(std::string_view id,
                               const std::string& scenario,
                               std::string_view image);

  /// Idle sweep: parks every session whose last call is at least
  /// hibernate_after_seconds ago (no-op when that knob is 0). Skips
  /// sessions with pending questions and sessions whose lock is contended
  /// (an in-flight call means the session is not idle). Returns how many
  /// sessions were parked.
  size_t ParkIdleSessions();

  /// Handles of the currently open sessions, in open order (parked
  /// sessions included — their handles are still live).
  std::vector<std::string> ListOpen() const;
  size_t OpenCount() const;
  /// Sessions resident in memory (open minus parked).
  size_t ResidentCount() const;
  /// Sessions currently hibernated to the snapshot store.
  size_t ParkedCount() const;

  /// Snapshot of the service-wide operation counters.
  ServiceCounters Counters() const;

 private:
  struct Entry {
    std::mutex mutex;  // serializes calls on this session
    std::unique_ptr<session::ScenarioSession> session;
    std::string scenario;
    SessionBudget budget;
    std::chrono::steady_clock::time_point opened_at;
    /// When the last call touched this session (idle-sweep input); guarded
    /// by `mutex` like the rest of the mutable state.
    std::chrono::steady_clock::time_point last_touch;
    /// When the session was parked (wall-budget arithmetic on rehydrate).
    std::chrono::steady_clock::time_point parked_at;
    size_t pending = 0;
    bool budget_exhausted = false;
    bool closed = false;
    /// True while the session lives in the snapshot store instead of
    /// memory (`session` is null then). Mutated under `mutex`; atomic so
    /// ResidentCount/ParkedCount can tally without taking every session
    /// lock.
    std::atomic<bool> parked{false};
  };

  std::shared_ptr<Entry> Find(std::string_view id) const;

  /// Shared body of the two Tell overloads; `make_labels()` materializes
  /// (or passes through) the vector AnswerAll consumes, called only once
  /// every precondition holds.
  template <typename MakeLabels>
  common::Status TellImpl(std::string_view id, size_t count,
                          MakeLabels&& make_labels);

  /// Counts a failed call and passes the status through (so error returns
  /// read `return Fail(Status::...)`).
  common::Status Fail(common::Status status) const;

  double ElapsedSeconds(std::chrono::steady_clock::time_point since) const;

  /// Serializes + evicts one quiescent session. Caller holds entry->mutex.
  common::Status ParkLocked(const std::string& id, Entry* entry);
  /// Restores a parked session from its image. Caller holds entry->mutex.
  /// On failure the entry stays parked (a later call may retry) and
  /// hibernate_errors is incremented. Const because the read path (Status)
  /// rehydrates too; only the entry and mutable counters change.
  common::Status RehydrateLocked(const std::string& id, Entry* entry) const;

  session::ScenarioRegistry* registry_;
  double hibernate_after_seconds_ = 0;
  std::shared_ptr<SnapshotStore> snapshot_store_;
  std::function<std::chrono::steady_clock::time_point()> clock_;
  mutable std::mutex mutex_;  // guards sessions_ and next_id_
  // Transparent comparator: the hot path resolves string_view handles
  // without building a temporary std::string key.
  std::map<std::string, std::shared_ptr<Entry>, std::less<>> sessions_;
  uint64_t next_id_ = 1;

  // Relaxed atomics: the counters are independent monotonic tallies, not
  // a consistent tuple (see ServiceCounters).
  mutable std::atomic<uint64_t> opens_{0};
  mutable std::atomic<uint64_t> asks_{0};
  mutable std::atomic<uint64_t> tells_{0};
  mutable std::atomic<uint64_t> oracles_{0};
  mutable std::atomic<uint64_t> statuses_{0};
  mutable std::atomic<uint64_t> closes_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> questions_served_{0};
  mutable std::atomic<uint64_t> labels_accepted_{0};
  mutable std::atomic<uint64_t> hibernates_{0};
  mutable std::atomic<uint64_t> rehydrates_{0};
  mutable std::atomic<uint64_t> hibernate_errors_{0};
  mutable std::atomic<uint64_t> exports_{0};
  mutable std::atomic<uint64_t> imports_{0};

  // Per-op latency histograms (µs since op entry, including rehydration
  // and learner work). Mutable like the counters: Status() is const but
  // still observed.
  mutable LatencyHistogram open_latency_;
  mutable LatencyHistogram ask_latency_;
  mutable LatencyHistogram tell_latency_;
  mutable LatencyHistogram oracle_latency_;
  mutable LatencyHistogram status_latency_;
  mutable LatencyHistogram close_latency_;
};

}  // namespace service
}  // namespace qlearn

#endif  // QLEARN_SERVICE_SESSION_SERVICE_H_
