#include "service/snapshot_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

namespace qlearn {
namespace service {

using common::Result;
using common::Status;

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

Status InMemorySnapshotStore::Put(const std::string& key,
                                  std::string_view image) {
  std::lock_guard<std::mutex> lock(mutex_);
  images_[key] = std::string(image);
  return Status::OK();
}

Result<std::string> InMemorySnapshotStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = images_.find(key);
  if (it == images_.end()) {
    return Status::NotFound("no snapshot image stored for session " + key);
  }
  return it->second;
}

Status InMemorySnapshotStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  images_.erase(key);
  return Status::OK();
}

size_t InMemorySnapshotStore::Count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return images_.size();
}

std::string FileSnapshotStore::PathFor(const std::string& key) const {
  return dir_ + "/" + key + ".snap";
}

Status FileSnapshotStore::Put(const std::string& key,
                              std::string_view image) {
  const std::string tmp = dir_ + "/" + key + ".tmp";
  const std::string final_path = PathFor(key);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing: " +
                            std::strerror(errno));
  }
  size_t written = image.empty()
                       ? 0
                       : std::fwrite(image.data(), 1, image.size(), f);
  int flush_err = std::fflush(f);
  if (std::fclose(f) != 0 || flush_err != 0 || written != image.size()) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + final_path +
                            ": " + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> FileSnapshotStore::Get(const std::string& key) {
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no snapshot image stored for session " + key +
                            " (" + path + ")");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on " + path);
  }
  return out;
}

Status FileSnapshotStore::Delete(const std::string& key) {
  std::remove(PathFor(key).c_str());
  return Status::OK();
}

size_t FileSnapshotStore::Count() const {
  std::error_code ec;
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".snap") ++count;
  }
  return ec ? 0 : count;
}

}  // namespace service
}  // namespace qlearn
