// Canonical-JSON building blocks shared by the wire format (service/wire.h)
// and the TCP request/response protocol (net/protocol.h).
//
// The subset is deliberately small: objects, arrays, strings with escapes,
// unsigned decimal integers, and booleans — exactly what the canonical
// writers emit. Anything else (null, floats, negatives, duplicate keys)
// is a ParseError, so every value that parses can be re-serialized
// canonically and byte equality stays semantic equality.
#ifndef QLEARN_SERVICE_JSON_H_
#define QLEARN_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qlearn {
namespace service {
namespace json {

/// A parsed JSON value of the canonical subset. Object members keep their
/// source order so strict shape checks can name the offending key.
struct Value {
  enum class Type { kBool, kUInt, kString, kArray, kObject };
  Type type = Type::kBool;
  bool bool_value = false;
  uint64_t uint_value = 0;
  std::string string_value;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
};

/// Parses one JSON document (the whole string; trailing bytes are an
/// error). Rejects everything outside the canonical subset.
common::Result<Value> Parse(const std::string& text);

/// Appends `text` as a quoted JSON string, escaping the canonical way
/// (control characters as \uXXXX, UTF-8 bytes pass through verbatim).
void AppendEscaped(const std::string& text, std::string* out);

/// Appends `ids` as a JSON array of unsigned decimal integers.
void AppendUInts(const std::vector<uint64_t>& ids, std::string* out);

// Strict shape helpers for converting a parsed object into a struct: Find
// checks looked-up keys off in `seen` (one bit per member) so
// CheckAllKeysKnown can reject unknown keys afterwards.
const Value* Find(const Value& object, const std::string& key,
                  std::vector<bool>* seen);
common::Status CheckAllKeysKnown(const Value& object,
                                 const std::vector<bool>& seen,
                                 const std::string& what);
common::Result<std::string> ToString(const Value* value,
                                     const std::string& what);
common::Result<uint64_t> ToUInt(const Value* value, const std::string& what);
common::Result<bool> ToBool(const Value* value, const std::string& what);

}  // namespace json
}  // namespace service
}  // namespace qlearn

#endif  // QLEARN_SERVICE_JSON_H_
