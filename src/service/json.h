// Canonical-JSON building blocks shared by the wire format (service/wire.h)
// and the TCP request/response protocol (net/protocol.h).
//
// The subset is deliberately small: objects, arrays, strings with escapes,
// unsigned decimal integers, and booleans — exactly what the canonical
// writers emit. Anything else (null, floats, negatives, duplicate keys)
// is a ParseError, so every value that parses can be re-serialized
// canonically and byte equality stays semantic equality.
//
// Two parse modes share one grammar:
//   Parse(text)            -> Value   heap tree (strings/vectors per node)
//   ParseInto(text, arena) -> View*   arena-backed tree whose string leaves
//                                     are string_views into `text` (or into
//                                     the arena when unescaping was needed)
// The View mode is the request hot path of the TCP front end: with a
// recycled Arena a steady-state parse performs zero heap allocations. Both
// modes accept and reject exactly the same inputs with identical error
// messages (tests/wire_property_test.cc drives them in lockstep), and
// AppendView(ParseInto(s)) == s for every canonical s, the same round-trip
// guarantee the heap mode has.
#ifndef QLEARN_SERVICE_JSON_H_
#define QLEARN_SERVICE_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qlearn {
namespace service {
namespace json {

/// A parsed JSON value of the canonical subset. Object members keep their
/// source order so strict shape checks can name the offending key.
struct Value {
  enum class Type { kBool, kUInt, kString, kArray, kObject };
  Type type = Type::kBool;
  bool bool_value = false;
  uint64_t uint_value = 0;
  std::string string_value;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
};

/// Parses one JSON document (the whole string; trailing bytes are an
/// error). Rejects everything outside the canonical subset.
common::Result<Value> Parse(const std::string& text);

/// Slab allocator backing one request-scoped parse tree. Reset() recycles
/// every slab without freeing, so a long-lived Arena reaches a steady state
/// where parsing allocates nothing. Not thread-safe; one Arena per thread
/// (the server gives each worker its own).
class Arena {
 public:
  explicit Arena(size_t slab_bytes = 16 * 1024);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two), valid until
  /// Reset() or destruction.
  void* Allocate(size_t bytes, size_t align);

  /// Rewinds to empty, keeping every slab for reuse.
  void Reset();

  /// Total slab capacity owned (footprint bound; tests assert it plateaus).
  size_t CapacityBytes() const;

 private:
  struct Slab {
    char* data = nullptr;
    size_t size = 0;
  };
  std::vector<Slab> slabs_;
  size_t active_ = 0;  ///< slab currently being bump-allocated from
  size_t used_ = 0;    ///< bytes used in slabs_[active_]
  size_t slab_bytes_;
};

/// An arena-backed parsed value: same subset as Value, but string leaves
/// are views (into the parsed text, or into the arena when an escape made
/// a copy unavoidable) and children live in arena-allocated spans. Views
/// are valid while BOTH the arena and the parsed text outlive them.
struct View {
  struct Member;  // key/value pair of an object

  Value::Type type = Value::Type::kBool;
  bool bool_value = false;
  uint64_t uint_value = 0;
  std::string_view string_value;
  const View* elements = nullptr;  ///< kArray children
  uint32_t element_count = 0;
  const Member* members = nullptr;  ///< kObject members, source order
  uint32_t member_count = 0;
};

struct View::Member {
  std::string_view key;
  View value;
};

/// Arena-mode Parse: one document, whole string, same strictness and the
/// same error messages as Parse. The returned View tree lives in `arena`.
common::Result<const View*> ParseInto(std::string_view text, Arena* arena);

/// Appends the canonical serialization of a parsed View. For any string s
/// accepted by ParseInto, AppendView(ParseInto(s)) reproduces s exactly.
void AppendView(const View& value, std::string* out);

/// Appends `text` as a quoted JSON string, escaping the canonical way
/// (control characters as \uXXXX, UTF-8 bytes pass through verbatim).
void AppendEscaped(std::string_view text, std::string* out);

/// Appends `ids` as a JSON array of unsigned decimal integers.
void AppendUInts(const std::vector<uint64_t>& ids, std::string* out);

/// Appends `value` as unsigned decimal without allocating a temporary
/// (std::to_string of a 20-digit value would; the hot-path writers use
/// this instead).
void AppendUInt(uint64_t value, std::string* out);

// Strict shape helpers for converting a parsed object into a struct: Find
// checks looked-up keys off in `seen` (one bit per member) so
// CheckAllKeysKnown can reject unknown keys afterwards.
const Value* Find(const Value& object, const std::string& key,
                  std::vector<bool>* seen);
common::Status CheckAllKeysKnown(const Value& object,
                                 const std::vector<bool>& seen,
                                 const std::string& what);
common::Result<std::string> ToString(const Value* value,
                                     const std::string& what);
common::Result<uint64_t> ToUInt(const Value* value, const std::string& what);
common::Result<bool> ToBool(const Value* value, const std::string& what);

// View-mode shape helpers, allocation-free on the happy path. The `seen`
// bitmask replaces the vector<bool> (objects past 64 members are rejected
// by CheckAllKeysKnown — far beyond any canonical message shape).
const View* Find(const View& object, std::string_view key, uint64_t* seen);
common::Status CheckAllKeysKnown(const View& object, uint64_t seen,
                                 std::string_view what);
common::Result<std::string_view> ToStringView(const View* value,
                                              std::string_view what);
common::Result<uint64_t> ToUInt(const View* value, std::string_view what);
common::Result<bool> ToBool(const View* value, std::string_view what);

}  // namespace json
}  // namespace service
}  // namespace qlearn

#endif  // QLEARN_SERVICE_JSON_H_
