// Wire format of the session service: JSON-serialized questions, answers,
// hypotheses, and stats, shared by all four paper scenarios.
//
// Real deployments ask oracles over a wire — crowd workers, UI users —
// so the serving layer needs a model-agnostic exchange format. One tagged
// QuestionPayload covers every scenario: `kind` discriminates the item
// type, `ids` carries the model-specific coordinates (the document node for
// twigs, the (left,right) row pair for joins, the row path for chains, the
// candidate index for graph paths — see each engine's ItemIds hook), and
// `text` is the human-facing rendering a front end displays verbatim.
//
// The same format doubles as the persistent *transcript* format: a session
// is a sequence of open / ask / tell / close events, serialized one JSON
// object per line (JSONL, diff-friendly). The golden-transcript conformance
// harness (tests/transcript_harness.h) records and replays these to pin the
// paper-faithful question sequences across refactors.
//
// The emitted JSON is canonical — fixed key order, no whitespace — so byte
// equality of serializations is semantic equality, and
// Serialize(Parse(s)) == s for every string s this module emitted.
#ifndef QLEARN_SERVICE_WIRE_H_
#define QLEARN_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/json.h"
#include "session/session.h"

namespace qlearn {
namespace service {
namespace wire {

/// One membership question, tagged by scenario item type.
struct QuestionPayload {
  std::string kind;           ///< "twig" | "join" | "chain" | "path"
  std::vector<uint64_t> ids;  ///< model-specific coordinates (engine ItemIds)
  std::string text;           ///< human-facing rendering

  bool operator==(const QuestionPayload& other) const {
    return kind == other.kind && ids == other.ids && text == other.text;
  }
  bool operator!=(const QuestionPayload& other) const {
    return !(*this == other);
  }
};

/// The learned (current or final) hypothesis, rendered for the wire.
struct HypothesisPayload {
  std::string kind;  ///< item-type tag, same domain as QuestionPayload::kind
  std::string text;  ///< human-facing rendering of the query

  bool operator==(const HypothesisPayload& other) const {
    return kind == other.kind && text == other.text;
  }
};

/// One recorded exchange of a session transcript.
struct TranscriptEvent {
  enum class Kind { kOpen, kAsk, kTell, kClose };

  Kind kind = Kind::kOpen;

  // kOpen: which scenario was instantiated and under what knobs.
  std::string scenario;
  uint64_t seed = 0;
  uint64_t max_questions = 0;

  // kAsk: the batch size the client requested and the questions served.
  uint64_t requested = 0;
  std::vector<QuestionPayload> questions;

  // kTell: the labels, in batch order.
  std::vector<bool> labels;

  // kClose: the final hypothesis and interaction counters.
  HypothesisPayload hypothesis;
  session::SessionStats stats;

  bool operator==(const TranscriptEvent& other) const;
};

// Canonical serialization (single line, fixed key order, no whitespace).
std::string Serialize(const QuestionPayload& payload);
std::string Serialize(const HypothesisPayload& payload);
std::string Serialize(const session::SessionStats& stats);
std::string Serialize(const TranscriptEvent& event);

// Append forms of the same serializations, for writers that assemble a
// larger frame into one (pooled) buffer — the TCP response hot path. The
// bytes appended are exactly what Serialize returns.
void SerializeTo(const QuestionPayload& payload, std::string* out);
void SerializeTo(const HypothesisPayload& payload, std::string* out);
void SerializeTo(const session::SessionStats& stats, std::string* out);
/// One event per line, trailing newline after each (JSONL).
std::string SerializeTranscript(const std::vector<TranscriptEvent>& events);

// Parsers accept exactly the JSON subset this module emits (objects,
// arrays, strings with escapes, unsigned decimal integers, booleans) in any
// key order, and return ParseError on anything else.
common::Result<QuestionPayload> ParseQuestionPayload(const std::string& text);
common::Result<HypothesisPayload> ParseHypothesisPayload(
    const std::string& text);
common::Result<session::SessionStats> ParseStats(const std::string& text);
common::Result<TranscriptEvent> ParseEvent(const std::string& text);
/// Parses a JSONL transcript; blank lines are ignored.
common::Result<std::vector<TranscriptEvent>> ParseTranscript(
    const std::string& text);

// Conversions from parsed json::Values, for protocols that embed wire
// payloads inside larger messages (net/protocol.h). Shape-strict like the
// string parsers above.
common::Result<QuestionPayload> QuestionFromJson(const json::Value& value);
common::Result<HypothesisPayload> HypothesisFromJson(const json::Value& value);
common::Result<session::SessionStats> StatsFromJson(const json::Value& value);

}  // namespace wire
}  // namespace service
}  // namespace qlearn

#endif  // QLEARN_SERVICE_WIRE_H_
