#include "service/session_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace qlearn {
namespace service {

namespace {

using common::Result;

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

SessionService::SessionService(session::ScenarioRegistry* registry)
    : registry_(registry) {
  if (registry_ == nullptr) {
    session::RegisterBuiltinScenarios();
    registry_ = session::ScenarioRegistry::Global();
  }
}

common::Status SessionService::Fail(common::Status status) const {
  errors_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

Result<std::string> SessionService::Open(const std::string& scenario,
                                         const OpenOptions& options) {
  opens_.fetch_add(1, std::memory_order_relaxed);
  if (options.budget.max_pending == 0) {
    // A session that may never serve a question would look converged on
    // the first Ask; refuse the budget up front instead.
    return Fail(
        common::Status::InvalidArgument("budget.max_pending must be > 0"));
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  // The underlying session enforces the same cap, so even a caller that
  // bypasses this service's accounting cannot overrun the budget.
  session_options.max_questions =
      static_cast<size_t>(std::min<uint64_t>(options.budget.max_questions,
                                             SIZE_MAX));
  auto created_or = registry_->Create(scenario, session_options);
  if (!created_or.ok()) return Fail(created_or.status());
  std::unique_ptr<session::ScenarioSession> created =
      std::move(created_or).value();

  auto entry = std::make_shared<Entry>();
  entry->session = std::move(created);
  entry->scenario = scenario;
  entry->budget = options.budget;
  entry->opened_at = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  // Zero-padded to the full uint64 width so the lexicographic map order
  // (and thus ListOpen) is open order for every possible counter value.
  char id[32];
  std::snprintf(id, sizeof(id), "s-%020llu",
                static_cast<unsigned long long>(next_id_++));
  sessions_.emplace(id, std::move(entry));
  return std::string(id);
}

std::shared_ptr<SessionService::Entry> SessionService::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<std::vector<wire::QuestionPayload>> SessionService::Ask(
    const std::string& id, size_t k) {
  asks_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " + id));
  }
  if (entry->pending > 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + id + " has " + std::to_string(entry->pending) +
        " unanswered question(s); Tell first"));
  }
  if (k == 0) {
    return Fail(common::Status::InvalidArgument("Ask needs k > 0"));
  }
  const SessionBudget& budget = entry->budget;
  if (budget.max_wall_seconds > 0 &&
      ElapsedSeconds(entry->opened_at) > budget.max_wall_seconds) {
    entry->budget_exhausted = true;
    return Fail(common::Status::ResourceExhausted(
        "session " + id + " exceeded its wall-clock budget of " +
        std::to_string(budget.max_wall_seconds) + "s"));
  }
  const uint64_t asked = entry->session->stats().questions;
  if (asked >= budget.max_questions) {
    entry->budget_exhausted = true;
    return Fail(common::Status::ResourceExhausted(
        "session " + id + " exhausted its question budget of " +
        std::to_string(budget.max_questions)));
  }
  // Clamp the batch to both budgets; a batch truncated mid-Ask by the
  // question budget is still served (the refusal comes on the next Ask).
  k = std::min<uint64_t>(k, budget.max_questions - asked);
  k = std::min(k, budget.max_pending);

  const std::vector<std::string> texts = entry->session->NextQuestions(k);
  const std::vector<std::vector<uint64_t>> ids = entry->session->PendingIds();
  const std::string kind = entry->session->PayloadKind();
  std::vector<wire::QuestionPayload> payloads;
  payloads.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    wire::QuestionPayload payload;
    payload.kind = kind;
    if (i < ids.size()) payload.ids = ids[i];
    payload.text = texts[i];
    payloads.push_back(std::move(payload));
  }
  entry->pending = payloads.size();
  questions_served_.fetch_add(payloads.size(), std::memory_order_relaxed);
  return payloads;
}

common::Status SessionService::Tell(const std::string& id,
                                    const std::vector<bool>& labels) {
  tells_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " + id));
  }
  if (entry->pending == 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + id + " has no pending questions to answer"));
  }
  if (labels.size() != entry->pending) {
    return Fail(common::Status::InvalidArgument(
        "session " + id + " expects " + std::to_string(entry->pending) +
        " label(s), got " + std::to_string(labels.size())));
  }
  entry->session->AnswerAll(labels);
  entry->pending = 0;
  labels_accepted_.fetch_add(labels.size(), std::memory_order_relaxed);
  return common::Status::OK();
}

Result<std::vector<bool>> SessionService::OracleLabels(const std::string& id) {
  oracles_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " + id));
  }
  if (entry->pending == 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + id + " has no pending questions to label"));
  }
  return entry->session->OracleLabels();
}

Result<SessionStatus> SessionService::Status(const std::string& id) const {
  statuses_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " + id));
  }
  SessionStatus status;
  status.id = id;
  status.scenario = entry->scenario;
  status.stats = entry->session->stats();
  status.pending = entry->pending;
  status.budget_exhausted = entry->budget_exhausted;
  status.hypothesis = entry->session->Hypothesis();
  return status;
}

Result<CloseResult> SessionService::Close(const std::string& id) {
  closes_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  CloseResult result;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->closed) {
      return Fail(common::Status::NotFound("session already closed: " + id));
    }
    entry->session->Finish();
    entry->pending = 0;
    entry->closed = true;
    result.hypothesis.kind = entry->session->PayloadKind();
    result.hypothesis.text = entry->session->Hypothesis();
    result.stats = entry->session->stats();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(id);
  return result;
}

std::vector<std::string> SessionService::ListOpen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, unused] : sessions_) ids.push_back(id);
  return ids;
}

size_t SessionService::OpenCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

ServiceCounters SessionService::Counters() const {
  ServiceCounters counters;
  counters.opens = opens_.load(std::memory_order_relaxed);
  counters.asks = asks_.load(std::memory_order_relaxed);
  counters.tells = tells_.load(std::memory_order_relaxed);
  counters.oracles = oracles_.load(std::memory_order_relaxed);
  counters.statuses = statuses_.load(std::memory_order_relaxed);
  counters.closes = closes_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.questions_served =
      questions_served_.load(std::memory_order_relaxed);
  counters.labels_accepted = labels_accepted_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace service
}  // namespace qlearn
