#include "service/session_service.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <utility>

#include "session/snapshot.h"

namespace qlearn {
namespace service {

namespace {

using common::Result;
using common::Status;

// Hibernation image: "QLSV" wrapper (service-level header around the
// session's own "QLSS" image), followed by an FNV-1a-64 trailer over every
// preceding byte. Layout (little-endian):
//   u32 magic, u32 version, scenario name (u64 length + bytes),
//   u64 budget.max_questions, u64 budget.max_pending,
//   u64 bit_cast(budget.max_wall_seconds),
//   u64 bit_cast(wall seconds consumed at park),
//   session image (u64 length + bytes), u64 checksum.
constexpr uint32_t kHibernationMagic = 0x56534C51u;  // "QLSV"
constexpr uint32_t kHibernationVersion = 1;
constexpr size_t kChecksumBytes = 8;

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t ReadTrailerU64(std::string_view image, size_t at) {
  uint64_t out = 0;
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(image[at + i]))
           << (8 * i);
  }
  return out;
}

/// A caller-supplied handle becomes a snapshot-store key (and, in the
/// file-backed store, a file name), so it must be a plain path component.
Status ValidateHandle(std::string_view id) {
  if (id.empty() || id.size() > 64) {
    return Status::InvalidArgument(
        "session id must be 1..64 bytes, got " + std::to_string(id.size()));
  }
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "session id may only contain [A-Za-z0-9._-]");
    }
  }
  return Status::OK();
}

/// Records wall time from construction to scope exit into a histogram.
/// Deliberately on the raw steady clock (not the injectable service clock):
/// the histograms report observed latency, not simulated time.
class LatencyTimer {
 public:
  explicit LatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~LatencyTimer() {
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

uint64_t LatencySnapshot::Count() const {
  uint64_t total = 0;
  for (const uint64_t bucket : buckets) total += bucket;
  return total;
}

uint64_t LatencySnapshot::QuantileUpperBoundMicros(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative > rank) {
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return (uint64_t{1} << (kBuckets - 1)) - 1;
}

SessionService::SessionService(session::ScenarioRegistry* registry)
    : SessionService(ServiceOptions{registry, 0, nullptr, nullptr}) {}

SessionService::SessionService(const ServiceOptions& options)
    : registry_(options.registry),
      hibernate_after_seconds_(options.hibernate_after_seconds),
      snapshot_store_(options.snapshot_store),
      clock_(options.clock) {
  if (registry_ == nullptr) {
    session::RegisterBuiltinScenarios();
    registry_ = session::ScenarioRegistry::Global();
  }
  if (snapshot_store_ == nullptr) {
    snapshot_store_ = std::make_shared<InMemorySnapshotStore>();
  }
  if (!clock_) {
    clock_ = [] { return std::chrono::steady_clock::now(); };
  }
}

common::Status SessionService::Fail(common::Status status) const {
  errors_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

double SessionService::ElapsedSeconds(
    std::chrono::steady_clock::time_point since) const {
  return std::chrono::duration<double>(clock_() - since).count();
}

Result<std::string> SessionService::Open(const std::string& scenario,
                                         const OpenOptions& options) {
  const LatencyTimer timer(&open_latency_);
  opens_.fetch_add(1, std::memory_order_relaxed);
  if (options.budget.max_pending == 0) {
    // A session that may never serve a question would look converged on
    // the first Ask; refuse the budget up front instead.
    return Fail(
        common::Status::InvalidArgument("budget.max_pending must be > 0"));
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  // The underlying session enforces the same cap, so even a caller that
  // bypasses this service's accounting cannot overrun the budget.
  session_options.max_questions =
      static_cast<size_t>(std::min<uint64_t>(options.budget.max_questions,
                                             SIZE_MAX));
  auto created_or = registry_->Create(scenario, session_options);
  if (!created_or.ok()) return Fail(created_or.status());
  std::unique_ptr<session::ScenarioSession> created =
      std::move(created_or).value();

  auto entry = std::make_shared<Entry>();
  entry->session = std::move(created);
  entry->scenario = scenario;
  entry->budget = options.budget;
  entry->opened_at = clock_();
  entry->last_touch = entry->opened_at;

  std::lock_guard<std::mutex> lock(mutex_);
  if (!options.id.empty()) {
    const common::Status valid = ValidateHandle(options.id);
    if (!valid.ok()) return Fail(valid);
    if (sessions_.count(options.id) != 0) {
      return Fail(common::Status::AlreadyExists("session id already open: " +
                                                options.id));
    }
    sessions_.emplace(options.id, std::move(entry));
    return options.id;
  }
  // Zero-padded to the full uint64 width so the lexicographic map order
  // (and thus ListOpen) is open order for every possible counter value.
  char id[32];
  std::snprintf(id, sizeof(id), "s-%020llu",
                static_cast<unsigned long long>(next_id_++));
  sessions_.emplace(id, std::move(entry));
  return std::string(id);
}

std::shared_ptr<SessionService::Entry> SessionService::Find(
    std::string_view id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);  // transparent lookup, no key temporary
  return it == sessions_.end() ? nullptr : it->second;
}

common::Status SessionService::ParkLocked(const std::string& id,
                                          Entry* entry) {
  std::string session_image;
  QLEARN_RETURN_IF_ERROR(entry->session->SerializeSnapshot(&session_image));
  const auto now = clock_();
  session::SnapshotWriter writer;
  writer.WriteU32(kHibernationMagic);
  writer.WriteU32(kHibernationVersion);
  writer.WriteBytes(entry->scenario);
  writer.WriteU64(entry->budget.max_questions);
  writer.WriteU64(static_cast<uint64_t>(entry->budget.max_pending));
  writer.WriteU64(std::bit_cast<uint64_t>(entry->budget.max_wall_seconds));
  writer.WriteU64(std::bit_cast<uint64_t>(
      std::chrono::duration<double>(now - entry->opened_at).count()));
  writer.WriteBytes(session_image);
  std::string image = writer.TakeBytes();
  const uint64_t checksum = Fnv1a64(image);
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    image.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  QLEARN_RETURN_IF_ERROR(snapshot_store_->Put(id, image));
  entry->session.reset();
  entry->parked_at = now;
  entry->parked.store(true, std::memory_order_relaxed);
  hibernates_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

common::Status SessionService::RehydrateLocked(const std::string& id,
                                               Entry* entry) const {
  // common:: is spelled out below: inside a member function a bare
  // `Status` names the Status() method, not the error type.
  common::Status status = [&]() -> common::Status {
    auto image_or = snapshot_store_->Get(id);
    if (!image_or.ok()) {
      if (image_or.status().code() == common::StatusCode::kNotFound) {
        // The handle promises a session; a vanished image is lost data,
        // not a bad argument.
        return common::Status::DataLoss("snapshot image for parked session " + id +
                                " is missing: " + image_or.status().message());
      }
      return image_or.status();
    }
    const std::string image = std::move(image_or).value();
    if (image.size() < kChecksumBytes) {
      return common::Status::DataLoss(
          "snapshot image for session " + id + " is " +
          std::to_string(image.size()) +
          " byte(s), too small to carry its 8-byte checksum trailer");
    }
    const size_t body_size = image.size() - kChecksumBytes;
    const uint64_t stored = ReadTrailerU64(image, body_size);
    const uint64_t computed =
        Fnv1a64(std::string_view(image).substr(0, body_size));
    if (stored != computed) {
      return common::Status::DataLoss("snapshot image for session " + id +
                              " fails its checksum over bytes [0, " +
                              std::to_string(body_size) + "): stored " +
                              HexU64(stored) + ", computed " +
                              HexU64(computed));
    }

    session::SnapshotReader reader(
        std::string_view(image).substr(0, body_size));
    uint32_t magic = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU32(&magic));
    if (magic != kHibernationMagic) {
      return common::Status::InvalidArgument("session " + id +
                                     ": not a hibernation image (magic " +
                                     HexU64(magic) + " at byte 0)");
    }
    uint32_t version = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU32(&version));
    if (version != kHibernationVersion) {
      return common::Status::InvalidArgument(
          "session " + id + ": unsupported hibernation image version " +
          std::to_string(version) + " at byte 4 (this build reads version " +
          std::to_string(kHibernationVersion) + ")");
    }
    std::string scenario;
    QLEARN_RETURN_IF_ERROR(reader.ReadBytes(&scenario));
    if (scenario != entry->scenario) {
      return common::Status::InvalidArgument("hibernation image for session " + id +
                                     " was taken for scenario \"" + scenario +
                                     "\", but the handle is scenario \"" +
                                     entry->scenario + "\"");
    }
    uint64_t max_questions = 0;
    uint64_t max_pending = 0;
    uint64_t max_wall_bits = 0;
    uint64_t wall_consumed_bits = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&max_questions));
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&max_pending));
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&max_wall_bits));
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&wall_consumed_bits));
    std::string payload;
    QLEARN_RETURN_IF_ERROR(reader.ReadBytes(&payload));
    if (!reader.AtEnd()) {
      return common::Status::InvalidArgument(
          "hibernation image for session " + id + " has " +
          std::to_string(reader.remaining()) +
          " trailing byte(s) before its checksum");
    }

    auto created_or = registry_->Create(scenario, session::SessionOptions{});
    if (!created_or.ok()) return created_or.status();
    std::unique_ptr<session::ScenarioSession> restored =
        std::move(created_or).value();
    QLEARN_RETURN_IF_ERROR(restored->RestoreSnapshot(payload));

    // Commit. Time spent parked counts against the wall-clock allowance:
    // reconstruct opened_at so elapsed = consumed-at-park + parked
    // interval, no matter how long the image sat in the store.
    entry->session = std::move(restored);
    entry->budget.max_questions = max_questions;
    entry->budget.max_pending = static_cast<size_t>(max_pending);
    entry->budget.max_wall_seconds = std::bit_cast<double>(max_wall_bits);
    const auto now = clock_();
    const double total =
        std::bit_cast<double>(wall_consumed_bits) +
        std::chrono::duration<double>(now - entry->parked_at).count();
    entry->opened_at =
        now - std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(total));
    entry->parked.store(false, std::memory_order_relaxed);
    rehydrates_.fetch_add(1, std::memory_order_relaxed);
    snapshot_store_->Delete(id);
    return common::Status::OK();
  }();
  if (!status.ok()) {
    hibernate_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

common::Status SessionService::Park(std::string_view id_view) {
  const std::string id(id_view);  // parking is cold; materialize once
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " + id));
  }
  if (entry->parked.load(std::memory_order_relaxed)) {
    return common::Status::OK();  // already hibernated
  }
  if (entry->pending > 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + id + " has " + std::to_string(entry->pending) +
        " unanswered question(s); only quiescent sessions park"));
  }
  common::Status status = ParkLocked(id, entry.get());
  if (!status.ok()) {
    hibernate_errors_.fetch_add(1, std::memory_order_relaxed);
    return Fail(std::move(status));
  }
  return common::Status::OK();
}

common::Result<ExportedSession> SessionService::ExportSession(
    std::string_view id_view) {
  const std::string id(id_view);  // handoff is cold; materialize once
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  ExportedSession out;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->closed) {
      return Fail(common::Status::NotFound("session already closed: " + id));
    }
    if (!entry->parked.load(std::memory_order_relaxed)) {
      if (entry->pending > 0) {
        return Fail(common::Status::FailedPrecondition(
            "session " + id + " has " + std::to_string(entry->pending) +
            " unanswered question(s); only quiescent sessions export"));
      }
      common::Status parked = ParkLocked(id, entry.get());
      if (!parked.ok()) {
        hibernate_errors_.fetch_add(1, std::memory_order_relaxed);
        return Fail(std::move(parked));
      }
    }
    auto image_or = snapshot_store_->Get(id);
    if (!image_or.ok()) {
      // The entry stays parked: the handle still exists here, and the next
      // call on it will surface the same missing-image DataLoss.
      return Fail(common::Status::DataLoss(
          "snapshot image for exported session " + id +
          " is missing: " + image_or.status().message()));
    }
    out.scenario = entry->scenario;
    out.image = std::move(image_or).value();
    entry->closed = true;
    entry->parked.store(false, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(id);
  }
  snapshot_store_->Delete(id);
  exports_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

common::Status SessionService::ImportSession(std::string_view id_view,
                                             const std::string& scenario,
                                             std::string_view image) {
  const std::string id(id_view);
  {
    const common::Status valid = ValidateHandle(id);
    if (!valid.ok()) return Fail(valid);
  }
  // Verify the image before installing anything: checksum trailer first
  // (like rehydrate), then the header fields the import call can check
  // without deserializing the learner.
  if (image.size() < kChecksumBytes) {
    return Fail(common::Status::DataLoss(
        "import image for session " + id + " is " +
        std::to_string(image.size()) +
        " byte(s), too small to carry its 8-byte checksum trailer"));
  }
  const size_t body_size = image.size() - kChecksumBytes;
  const uint64_t stored = ReadTrailerU64(image, body_size);
  const uint64_t computed = Fnv1a64(image.substr(0, body_size));
  if (stored != computed) {
    return Fail(common::Status::DataLoss(
        "import image for session " + id + " fails its checksum over bytes "
        "[0, " + std::to_string(body_size) + "): stored " + HexU64(stored) +
        ", computed " + HexU64(computed)));
  }
  session::SnapshotReader reader(image.substr(0, body_size));
  uint32_t magic = 0;
  QLEARN_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kHibernationMagic) {
    return Fail(common::Status::InvalidArgument(
        "import for session " + id + ": not a hibernation image (magic " +
        HexU64(magic) + " at byte 0)"));
  }
  uint32_t version = 0;
  QLEARN_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kHibernationVersion) {
    return Fail(common::Status::InvalidArgument(
        "import for session " + id + ": unsupported hibernation image "
        "version " + std::to_string(version) + " (this build reads version " +
        std::to_string(kHibernationVersion) + ")"));
  }
  std::string image_scenario;
  QLEARN_RETURN_IF_ERROR(reader.ReadBytes(&image_scenario));
  if (image_scenario != scenario) {
    return Fail(common::Status::InvalidArgument(
        "import image for session " + id + " was taken for scenario \"" +
        image_scenario + "\", but the import names scenario \"" + scenario +
        "\""));
  }

  auto entry = std::make_shared<Entry>();
  entry->scenario = scenario;
  const auto now = clock_();
  entry->opened_at = now;  // rehydrate reconstructs it from the image
  entry->last_touch = now;
  entry->parked_at = now;  // time parked elsewhere was folded in at export
  entry->parked.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.count(id) != 0) {
      return Fail(
          common::Status::AlreadyExists("session id already open: " + id));
    }
    sessions_.emplace(id, entry);
  }
  const common::Status put = snapshot_store_->Put(id, image);
  if (!put.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(id);
    return Fail(put);
  }
  imports_.fetch_add(1, std::memory_order_relaxed);
  return common::Status::OK();
}

size_t SessionService::ParkIdleSessions() {
  if (hibernate_after_seconds_ <= 0) return 0;
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.assign(sessions_.begin(), sessions_.end());
  }
  size_t parked = 0;
  const auto now = clock_();
  for (auto& [id, entry] : entries) {
    // try_lock: an in-flight call on the session means it is not idle —
    // skip it rather than stall the sweep behind learner work.
    std::unique_lock<std::mutex> lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock()) continue;
    if (entry->closed || entry->parked.load(std::memory_order_relaxed) ||
        entry->pending > 0) {
      continue;
    }
    const double idle =
        std::chrono::duration<double>(now - entry->last_touch).count();
    if (idle < hibernate_after_seconds_) continue;
    if (ParkLocked(id, entry.get()).ok()) {
      ++parked;
    } else {
      hibernate_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return parked;
}

Result<std::vector<wire::QuestionPayload>> SessionService::Ask(
    std::string_view id, size_t k) {
  const LatencyTimer timer(&ask_latency_);
  asks_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(
        common::Status::NotFound("unknown session: " + std::string(id)));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " +
                                         std::string(id)));
  }
  if (entry->parked.load(std::memory_order_relaxed)) {
    common::Status restored = RehydrateLocked(std::string(id), entry.get());
    if (!restored.ok()) return Fail(std::move(restored));
  }
  entry->last_touch = clock_();
  if (entry->pending > 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + std::string(id) + " has " +
        std::to_string(entry->pending) + " unanswered question(s); Tell first"));
  }
  if (k == 0) {
    return Fail(common::Status::InvalidArgument("Ask needs k > 0"));
  }
  const SessionBudget& budget = entry->budget;
  if (budget.max_wall_seconds > 0 &&
      ElapsedSeconds(entry->opened_at) > budget.max_wall_seconds) {
    entry->budget_exhausted = true;
    return Fail(common::Status::ResourceExhausted(
        "session " + std::string(id) + " exceeded its wall-clock budget of " +
        std::to_string(budget.max_wall_seconds) + "s"));
  }
  const uint64_t asked = entry->session->stats().questions;
  if (asked >= budget.max_questions) {
    entry->budget_exhausted = true;
    return Fail(common::Status::ResourceExhausted(
        "session " + std::string(id) + " exhausted its question budget of " +
        std::to_string(budget.max_questions)));
  }
  // Clamp the batch to both budgets; a batch truncated mid-Ask by the
  // question budget is still served (the refusal comes on the next Ask).
  k = std::min<uint64_t>(k, budget.max_questions - asked);
  k = std::min(k, budget.max_pending);

  const std::vector<std::string> texts = entry->session->NextQuestions(k);
  const std::vector<std::vector<uint64_t>> ids = entry->session->PendingIds();
  const std::string kind = entry->session->PayloadKind();
  std::vector<wire::QuestionPayload> payloads;
  payloads.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    wire::QuestionPayload payload;
    payload.kind = kind;
    if (i < ids.size()) payload.ids = ids[i];
    payload.text = texts[i];
    payloads.push_back(std::move(payload));
  }
  entry->pending = payloads.size();
  questions_served_.fetch_add(payloads.size(), std::memory_order_relaxed);
  return payloads;
}

template <typename MakeLabels>
common::Status SessionService::TellImpl(std::string_view id, size_t count,
                                        MakeLabels&& make_labels) {
  const LatencyTimer timer(&tell_latency_);
  tells_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(
        common::Status::NotFound("unknown session: " + std::string(id)));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " +
                                         std::string(id)));
  }
  if (entry->parked.load(std::memory_order_relaxed)) {
    common::Status restored = RehydrateLocked(std::string(id), entry.get());
    if (!restored.ok()) return Fail(std::move(restored));
  }
  entry->last_touch = clock_();
  if (entry->pending == 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + std::string(id) + " has no pending questions to answer"));
  }
  if (count != entry->pending) {
    return Fail(common::Status::InvalidArgument(
        "session " + std::string(id) + " expects " +
        std::to_string(entry->pending) + " label(s), got " +
        std::to_string(count)));
  }
  entry->session->AnswerAll(make_labels());
  entry->pending = 0;
  labels_accepted_.fetch_add(count, std::memory_order_relaxed);
  return common::Status::OK();
}

common::Status SessionService::Tell(std::string_view id,
                                    const std::vector<bool>& labels) {
  return TellImpl(id, labels.size(),
                  [&]() -> const std::vector<bool>& { return labels; });
}

common::Status SessionService::Tell(std::string_view id, const bool* labels,
                                    size_t count) {
  // AnswerAll takes vector<bool>, so the span path still materializes one —
  // a single small allocation, the fixed per-tell cost the debug-build
  // allocation budget in tests/protocol_alloc_test.cc accounts for.
  return TellImpl(id, count, [&] {
    std::vector<bool> copied(count);
    for (size_t i = 0; i < count; ++i) copied[i] = labels[i];
    return copied;
  });
}

Result<std::vector<bool>> SessionService::OracleLabels(std::string_view id) {
  const LatencyTimer timer(&oracle_latency_);
  oracles_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(
        common::Status::NotFound("unknown session: " + std::string(id)));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " +
                                         std::string(id)));
  }
  if (entry->parked.load(std::memory_order_relaxed)) {
    common::Status restored = RehydrateLocked(std::string(id), entry.get());
    if (!restored.ok()) return Fail(std::move(restored));
  }
  entry->last_touch = clock_();
  if (entry->pending == 0) {
    return Fail(common::Status::FailedPrecondition(
        "session " + std::string(id) + " has no pending questions to label"));
  }
  return entry->session->OracleLabels();
}

Result<SessionStatus> SessionService::Status(std::string_view id) const {
  const LatencyTimer timer(&status_latency_);
  statuses_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(
        common::Status::NotFound("unknown session: " + std::string(id)));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->closed) {
    return Fail(common::Status::NotFound("session already closed: " +
                                         std::string(id)));
  }
  if (entry->parked.load(std::memory_order_relaxed)) {
    common::Status restored = RehydrateLocked(std::string(id), entry.get());
    if (!restored.ok()) return Fail(std::move(restored));
  }
  entry->last_touch = clock_();
  SessionStatus status;
  status.id = std::string(id);
  status.scenario = entry->scenario;
  status.stats = entry->session->stats();
  status.pending = entry->pending;
  status.budget_exhausted = entry->budget_exhausted;
  status.hypothesis = entry->session->Hypothesis();
  return status;
}

Result<CloseResult> SessionService::Close(std::string_view id_view) {
  const LatencyTimer timer(&close_latency_);
  const std::string id(id_view);  // closes are once per session; keep simple
  closes_.fetch_add(1, std::memory_order_relaxed);
  auto entry = Find(id);
  if (entry == nullptr) {
    return Fail(common::Status::NotFound("unknown session: " + id));
  }
  CloseResult result;
  common::Status rehydrate_error;  // OK unless a parked image was bad
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->closed) {
      return Fail(common::Status::NotFound("session already closed: " + id));
    }
    if (entry->parked.load(std::memory_order_relaxed)) {
      rehydrate_error = RehydrateLocked(id, entry.get());
    }
    entry->pending = 0;
    entry->closed = true;
    if (rehydrate_error.ok()) {
      entry->session->Finish();
      result.hypothesis.kind = entry->session->PayloadKind();
      result.hypothesis.text = entry->session->Hypothesis();
      result.stats = entry->session->stats();
    } else {
      // Unrecoverable image: the handle is still released (the caller is
      // done with the session) and the dead image dropped — the error
      // travels back so the loss is visible.
      entry->parked.store(false, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(id);
  }
  if (!rehydrate_error.ok()) {
    snapshot_store_->Delete(id);
    return Fail(std::move(rehydrate_error));
  }
  return result;
}

std::vector<std::string> SessionService::ListOpen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, unused] : sessions_) ids.push_back(id);
  return ids;
}

size_t SessionService::OpenCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

size_t SessionService::ResidentCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t resident = 0;
  for (const auto& [id, entry] : sessions_) {
    if (!entry->parked.load(std::memory_order_relaxed)) ++resident;
  }
  return resident;
}

size_t SessionService::ParkedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t parked = 0;
  for (const auto& [id, entry] : sessions_) {
    if (entry->parked.load(std::memory_order_relaxed)) ++parked;
  }
  return parked;
}

ServiceCounters SessionService::Counters() const {
  ServiceCounters counters;
  counters.opens = opens_.load(std::memory_order_relaxed);
  counters.asks = asks_.load(std::memory_order_relaxed);
  counters.tells = tells_.load(std::memory_order_relaxed);
  counters.oracles = oracles_.load(std::memory_order_relaxed);
  counters.statuses = statuses_.load(std::memory_order_relaxed);
  counters.closes = closes_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.questions_served =
      questions_served_.load(std::memory_order_relaxed);
  counters.labels_accepted = labels_accepted_.load(std::memory_order_relaxed);
  counters.hibernates = hibernates_.load(std::memory_order_relaxed);
  counters.rehydrates = rehydrates_.load(std::memory_order_relaxed);
  counters.hibernate_errors =
      hibernate_errors_.load(std::memory_order_relaxed);
  counters.exports = exports_.load(std::memory_order_relaxed);
  counters.imports = imports_.load(std::memory_order_relaxed);
  counters.open_latency_us = open_latency_.Snapshot();
  counters.ask_latency_us = ask_latency_.Snapshot();
  counters.tell_latency_us = tell_latency_.Snapshot();
  counters.oracle_latency_us = oracle_latency_.Snapshot();
  counters.status_latency_us = status_latency_.Snapshot();
  counters.close_latency_us = close_latency_.Snapshot();
  return counters;
}

}  // namespace service
}  // namespace qlearn
