#include "exchange/rel_to_xml.h"

#include <cctype>
#include <map>

namespace qlearn {
namespace exchange {

using common::Result;
using common::Status;

Result<xml::XmlTree> PublishRelationAsXml(
    const relational::Relation& relation, const PublishOptions& options,
    common::Interner* interner) {
  std::optional<size_t> group_col;
  if (options.group_by.has_value()) {
    group_col = relation.schema().AttributeIndex(*options.group_by);
    if (!group_col.has_value()) {
      return Status::NotFound("group_by attribute '" + *options.group_by +
                              "' not in schema " +
                              relation.schema().ToString());
    }
  }

  xml::XmlTree doc;
  const xml::NodeId root = doc.AddRoot(interner->Intern(options.root_label));

  // Value labels must survive serialization and re-parsing: whitespace and
  // markup characters are replaced by '_'.
  auto sanitize = [](std::string text) {
    for (char& c : text) {
      if (std::isspace(static_cast<unsigned char>(c)) || c == '<' ||
          c == '>' || c == '/' || c == '=' || c == '"' || c == '&') {
        c = '_';
      }
    }
    return text;
  };

  auto emit_record = [&](xml::NodeId parent, const relational::Tuple& row) {
    const xml::NodeId record =
        doc.AddChild(parent, interner->Intern(options.record_label));
    for (size_t c = 0; c < relation.schema().arity(); ++c) {
      const xml::NodeId attr = doc.AddChild(
          record, interner->Intern(relation.schema().attributes()[c].name));
      doc.AddChild(attr, interner->Intern(sanitize(row[c].ToString())));
    }
  };

  if (!group_col.has_value()) {
    for (const relational::Tuple& row : relation.rows()) {
      emit_record(root, row);
    }
    return doc;
  }

  // Group rows by the rendered group value (stable, sorted by value).
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < relation.size(); ++i) {
    groups[relation.row(i)[*group_col].ToString()].push_back(i);
  }
  for (const auto& [key, row_ids] : groups) {
    const xml::NodeId group =
        doc.AddChild(root, interner->Intern(options.group_label));
    doc.AddChild(group, interner->Intern(sanitize(key)));
    for (size_t i : row_ids) emit_record(group, relation.row(i));
  }
  return doc;
}

}  // namespace exchange
}  // namespace qlearn
