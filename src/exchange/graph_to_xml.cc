#include "exchange/graph_to_xml.h"

namespace qlearn {
namespace exchange {

using common::Result;

Result<xml::XmlTree> PublishGraphAsXml(const graph::Graph& g,
                                       const graph::PathQuery& query,
                                       const GraphPublishOptions& options,
                                       common::Interner* interner) {
  graph::PathQueryEvaluator eval(query, g);
  xml::XmlTree doc;
  const xml::NodeId root = doc.AddRoot(interner->Intern(options.root_label));

  size_t exported = 0;
  for (const auto& [src, dst] : eval.EvalAllPairs()) {
    if (exported >= options.max_pairs) break;
    const auto witness = eval.Witness(src, dst);
    if (!witness.has_value()) continue;
    ++exported;
    const xml::NodeId path =
        doc.AddChild(root, interner->Intern(options.path_label));
    const xml::NodeId from = doc.AddChild(path, interner->Intern("from"));
    doc.AddChild(from, interner->Intern(g.VertexName(src)));
    const xml::NodeId to = doc.AddChild(path, interner->Intern("to"));
    doc.AddChild(to, interner->Intern(g.VertexName(dst)));
    for (graph::EdgeId e : witness->edges) {
      const xml::NodeId step = doc.AddChild(path, interner->Intern("step"));
      doc.AddChild(step, g.edge(e).label);
      doc.AddChild(step, interner->Intern(g.VertexName(g.edge(e).dst)));
    }
  }
  return doc;
}

}  // namespace exchange
}  // namespace qlearn
