#include "exchange/xml_to_graph.h"

#include <string>

#include "twig/twig_eval.h"

namespace qlearn {
namespace exchange {

using common::Result;
using common::Status;

Result<XmlToGraphResult> ShredXmlToGraph(const xml::XmlTree& doc,
                                         const twig::TwigQuery& query,
                                         const common::Interner& interner) {
  if (query.selection() == twig::kInvalidQNode) {
    return Status::InvalidArgument("shredding needs a selection node");
  }
  XmlToGraphResult result;
  // Interner is shared conceptually but Graph only stores SymbolIds coming
  // from it, so a const reference suffices for naming vertices.
  std::vector<graph::VertexId> vertex_of(doc.NumNodes(),
                                         graph::kInvalidVertex);
  std::vector<bool> expanded(doc.NumNodes(), false);

  auto vertex_for = [&](xml::NodeId n) {
    if (vertex_of[n] == graph::kInvalidVertex) {
      std::string name = interner.Name(doc.label(n));
      name += "#";
      name += std::to_string(n);
      vertex_of[n] = result.graph.AddVertex(std::move(name));
    }
    return vertex_of[n];
  };

  auto materialize = [&](xml::NodeId subtree_root) {
    // Vertex per node; overlapping selected subtrees share vertices and
    // each node's outgoing edges are emitted exactly once.
    std::vector<xml::NodeId> stack{subtree_root};
    while (!stack.empty()) {
      const xml::NodeId n = stack.back();
      stack.pop_back();
      vertex_for(n);
      if (expanded[n]) continue;
      expanded[n] = true;
      for (xml::NodeId c : doc.children(n)) {
        result.graph.AddEdge(vertex_of[n], vertex_for(c), doc.label(c), 1.0);
        stack.push_back(c);
      }
    }
  };

  for (xml::NodeId selected : twig::Evaluate(query, doc)) {
    materialize(selected);
    result.selected_roots.push_back(vertex_of[selected]);
  }
  return result;
}

}  // namespace exchange
}  // namespace qlearn
