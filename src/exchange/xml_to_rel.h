// Scenario 2 of Figure 1: SHREDDING XML into a relational database. A
// (learned) twig query with marked nodes extracts one tuple per embedding;
// the *value* of an extracted node is the label of its first child when it
// has one (matching the publishing encoding), else its own label.
#ifndef QLEARN_EXCHANGE_XML_TO_REL_H_
#define QLEARN_EXCHANGE_XML_TO_REL_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "relational/relation.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace exchange {

struct ShredOptions {
  std::string relation_name = "shredded";
  /// Attribute names, one per marked query node; defaults to the marked
  /// nodes' labels when empty.
  std::vector<std::string> attribute_names;
  /// Cap on extracted tuples.
  size_t max_tuples = 100000;
};

/// The extraction value of document node `n` (see header comment).
std::string NodeValue(const xml::XmlTree& doc, xml::NodeId n,
                      const common::Interner& interner);

/// Extracts one string tuple per embedding of `query` (projected onto its
/// marked nodes) and materializes them as a relation. Fails when the query
/// has no marked nodes.
common::Result<relational::Relation> ShredXmlToRelation(
    const xml::XmlTree& doc, const twig::TwigQuery& query,
    const ShredOptions& options, const common::Interner& interner);

}  // namespace exchange
}  // namespace qlearn

#endif  // QLEARN_EXCHANGE_XML_TO_REL_H_
