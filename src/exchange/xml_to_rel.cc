#include "exchange/xml_to_rel.h"

#include "twig/twig_eval.h"

namespace qlearn {
namespace exchange {

using common::Result;
using common::Status;

std::string NodeValue(const xml::XmlTree& doc, xml::NodeId n,
                      const common::Interner& interner) {
  if (!doc.children(n).empty()) {
    return interner.Name(doc.label(doc.children(n)[0]));
  }
  return interner.Name(doc.label(n));
}

Result<relational::Relation> ShredXmlToRelation(
    const xml::XmlTree& doc, const twig::TwigQuery& query,
    const ShredOptions& options, const common::Interner& interner) {
  if (query.marked().empty()) {
    return Status::InvalidArgument(
        "shredding needs a query with marked extraction nodes");
  }
  std::vector<relational::Attribute> attrs;
  for (size_t i = 0; i < query.marked().size(); ++i) {
    std::string name;
    if (i < options.attribute_names.size()) {
      name = options.attribute_names[i];
    } else {
      const auto label = query.label(query.marked()[i]);
      name = label == twig::kWildcard ? ("col" + std::to_string(i))
                                      : interner.Name(label);
    }
    attrs.push_back(
        relational::Attribute{name, relational::ValueType::kString});
  }
  relational::Relation out(
      relational::RelationSchema(options.relation_name, std::move(attrs)));

  twig::TwigEvaluator eval(query, doc);
  for (const auto& tuple : eval.MarkedTuples(options.max_tuples)) {
    relational::Tuple row;
    row.reserve(tuple.size());
    for (xml::NodeId n : tuple) {
      row.emplace_back(NodeValue(doc, n, interner));
    }
    out.InsertUnchecked(std::move(row));
  }
  return out;
}

}  // namespace exchange
}  // namespace qlearn
