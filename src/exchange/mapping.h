// Cross-model mapping facade: one entry point per Figure-1 scenario, each
// wiring a *learned* source query (Section 2/3 learners) to the matching
// constructor (this module). These drive experiment F1 and the examples.
#ifndef QLEARN_EXCHANGE_MAPPING_H_
#define QLEARN_EXCHANGE_MAPPING_H_

#include <vector>

#include "exchange/graph_to_xml.h"
#include "exchange/rel_to_xml.h"
#include "exchange/xml_to_graph.h"
#include "exchange/xml_to_rel.h"
#include "glearn/interactive_path.h"
#include "learn/twig_learner.h"
#include "rlearn/interactive_join.h"

namespace qlearn {
namespace exchange {

/// Scenario 1 — relational -> XML: learn an equi-join interactively, run it,
/// publish the result.
struct Scenario1Result {
  rlearn::InteractiveJoinResult session;
  relational::Relation extracted;
  xml::XmlTree published;
};
common::Result<Scenario1Result> RunScenario1Publishing(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, rlearn::JoinOracle* oracle,
    const rlearn::InteractiveJoinOptions& session_options,
    const PublishOptions& publish_options, common::Interner* interner);

/// Scenario 2 — XML -> relational: learn a twig from annotated nodes, mark
/// its selection, shred the document.
struct Scenario2Result {
  twig::TwigQuery learned;
  relational::Relation shredded;
};
common::Result<Scenario2Result> RunScenario2Shredding(
    const xml::XmlTree& doc, const std::vector<xml::NodeId>& positive_nodes,
    const ShredOptions& shred_options, const common::Interner& interner);

/// Scenario 3 — XML -> graph: learn a twig, shred the selected subtrees into
/// an RDF-style graph.
struct Scenario3Result {
  twig::TwigQuery learned;
  XmlToGraphResult shredded;
};
common::Result<Scenario3Result> RunScenario3Shredding(
    const xml::XmlTree& doc, const std::vector<xml::NodeId>& positive_nodes,
    const common::Interner& interner);

/// Scenario 4 — graph -> XML: learn a path query interactively, publish the
/// matching paths.
struct Scenario4Result {
  glearn::InteractivePathResult session;
  xml::XmlTree published;
};
common::Result<Scenario4Result> RunScenario4Publishing(
    const graph::Graph& g, const graph::Path& seed,
    glearn::PathOracle* oracle,
    const glearn::InteractivePathOptions& session_options,
    const GraphPublishOptions& publish_options, common::Interner* interner);

}  // namespace exchange
}  // namespace qlearn

#endif  // QLEARN_EXCHANGE_MAPPING_H_
