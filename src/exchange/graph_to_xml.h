// Scenario 4 of Figure 1: PUBLISHING graph data as XML. The pairs selected
// by a (learned) path query are exported with one <path> element each,
// carrying <from>/<to> city elements and one element per traversed edge.
#ifndef QLEARN_EXCHANGE_GRAPH_TO_XML_H_
#define QLEARN_EXCHANGE_GRAPH_TO_XML_H_

#include <string>

#include "common/interner.h"
#include "common/status.h"
#include "graph/path_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace exchange {

struct GraphPublishOptions {
  std::string root_label = "paths";
  std::string path_label = "path";
  /// Cap on exported pairs.
  size_t max_pairs = 10000;
};

/// Evaluates `query` on `graph` and publishes each matching pair with its
/// minimum-weight witness path:
///   <paths> <path> <from><city/></from> <to><city/></to>
///           (<step><label/><dst_city/></step>)* </path>* </paths>
common::Result<xml::XmlTree> PublishGraphAsXml(
    const graph::Graph& g, const graph::PathQuery& query,
    const GraphPublishOptions& options, common::Interner* interner);

}  // namespace exchange
}  // namespace qlearn

#endif  // QLEARN_EXCHANGE_GRAPH_TO_XML_H_
