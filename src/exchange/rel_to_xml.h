// Scenario 1 of the paper's Figure 1: PUBLISHING relational data as XML.
// The extracted relation (typically the result of a learned join) is nested
// under <root>/<record>/<attribute>/<value> elements; values are encoded as
// leaf labels so the label-only XML model round-trips them.
#ifndef QLEARN_EXCHANGE_REL_TO_XML_H_
#define QLEARN_EXCHANGE_REL_TO_XML_H_

#include <optional>
#include <string>

#include "common/interner.h"
#include "common/status.h"
#include "relational/relation.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace exchange {

struct PublishOptions {
  std::string root_label = "export";
  std::string record_label = "record";
  /// When set, records are grouped under <group_label> elements by the
  /// value of this attribute (two-level nesting).
  std::optional<std::string> group_by;
  std::string group_label = "group";
};

/// Publishes `relation` as an XML tree:
///   <root> (<group> <key/>)? (<record> (<attr><value/></attr>)* </record>)* ...
common::Result<xml::XmlTree> PublishRelationAsXml(
    const relational::Relation& relation, const PublishOptions& options,
    common::Interner* interner);

}  // namespace exchange
}  // namespace qlearn

#endif  // QLEARN_EXCHANGE_REL_TO_XML_H_
