#include "exchange/mapping.h"

#include "relational/operators.h"

namespace qlearn {
namespace exchange {

using common::Result;
using common::Status;

Result<Scenario1Result> RunScenario1Publishing(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, rlearn::JoinOracle* oracle,
    const rlearn::InteractiveJoinOptions& session_options,
    const PublishOptions& publish_options, common::Interner* interner) {
  Scenario1Result result;
  QLEARN_ASSIGN_OR_RETURN(
      result.session,
      rlearn::RunInteractiveJoinSession(universe, left, right, oracle,
                                        session_options));
  if (result.session.learned == 0) {
    return Status::Internal("join session ended without a hypothesis");
  }
  QLEARN_ASSIGN_OR_RETURN(
      result.extracted,
      relational::EquiJoin(left, right,
                           universe.Decode(result.session.learned)));
  QLEARN_ASSIGN_OR_RETURN(
      result.published,
      PublishRelationAsXml(result.extracted, publish_options, interner));
  return result;
}

Result<Scenario2Result> RunScenario2Shredding(
    const xml::XmlTree& doc, const std::vector<xml::NodeId>& positive_nodes,
    const ShredOptions& shred_options, const common::Interner& interner) {
  std::vector<learn::TreeExample> examples;
  examples.reserve(positive_nodes.size());
  for (xml::NodeId n : positive_nodes) {
    examples.push_back(learn::TreeExample{&doc, n});
  }
  Scenario2Result result;
  QLEARN_ASSIGN_OR_RETURN(result.learned, learn::LearnTwig(examples));
  result.learned.AddMarked(result.learned.selection());
  QLEARN_ASSIGN_OR_RETURN(
      result.shredded,
      ShredXmlToRelation(doc, result.learned, shred_options, interner));
  return result;
}

Result<Scenario3Result> RunScenario3Shredding(
    const xml::XmlTree& doc, const std::vector<xml::NodeId>& positive_nodes,
    const common::Interner& interner) {
  std::vector<learn::TreeExample> examples;
  examples.reserve(positive_nodes.size());
  for (xml::NodeId n : positive_nodes) {
    examples.push_back(learn::TreeExample{&doc, n});
  }
  Scenario3Result result;
  QLEARN_ASSIGN_OR_RETURN(result.learned, learn::LearnTwig(examples));
  QLEARN_ASSIGN_OR_RETURN(result.shredded,
                          ShredXmlToGraph(doc, result.learned, interner));
  return result;
}

Result<Scenario4Result> RunScenario4Publishing(
    const graph::Graph& g, const graph::Path& seed,
    glearn::PathOracle* oracle,
    const glearn::InteractivePathOptions& session_options,
    const GraphPublishOptions& publish_options, common::Interner* interner) {
  Scenario4Result result;
  QLEARN_ASSIGN_OR_RETURN(
      result.session,
      glearn::RunInteractivePathSession(g, seed, oracle, session_options));
  const graph::PathQuery learned{result.session.hypothesis.ToRegex(),
                                 std::nullopt};
  QLEARN_ASSIGN_OR_RETURN(
      result.published,
      PublishGraphAsXml(g, learned, publish_options, interner));
  return result;
}

}  // namespace exchange
}  // namespace qlearn
