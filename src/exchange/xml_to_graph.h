// Scenario 3 of Figure 1: SHREDDING XML into a graph (RDF-style). Each node
// selected by a (learned) twig query contributes its subtree: one vertex per
// XML node, and a directed edge labeled with the child's element label from
// parent vertex to child vertex — the usual element-hierarchy triples.
#ifndef QLEARN_EXCHANGE_XML_TO_GRAPH_H_
#define QLEARN_EXCHANGE_XML_TO_GRAPH_H_

#include "common/interner.h"
#include "common/status.h"
#include "graph/graph.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace exchange {

struct XmlToGraphResult {
  graph::Graph graph;
  /// Vertices corresponding to the twig-selected roots of each subtree.
  std::vector<graph::VertexId> selected_roots;
};

/// Shreds the subtrees selected by `query` into a graph. Fails when the
/// query has no selection node.
common::Result<XmlToGraphResult> ShredXmlToGraph(
    const xml::XmlTree& doc, const twig::TwigQuery& query,
    const common::Interner& interner);

}  // namespace exchange
}  // namespace qlearn

#endif  // QLEARN_EXCHANGE_XML_TO_GRAPH_H_
