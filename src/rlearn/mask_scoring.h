// Shared popcount-based mask scorers for the relational question-selection
// strategies. Three sites historically hand-rolled the same split-half
// arithmetic (JoinEngine, ChainEngine, crowd_join); this header is the one
// definition.
//
// All scores are functions of (total, kept) where total = |θ*| is the
// surviving hypothesis-pair count and kept = |θ* ∧ agree| is how many of
// those pairs a candidate's agreement keeps alive.
#ifndef QLEARN_RLEARN_MASK_SCORING_H_
#define QLEARN_RLEARN_MASK_SCORING_H_

#include <cstdlib>

namespace qlearn {
namespace rlearn {

/// Split-half score: maximal (= total/2) when a positive answer would halve
/// θ*, falling off linearly towards the extremes. Range [total/2 - max(kept,
/// total - kept), total/2]; always ≤ total/2. Within one hypothesis epoch
/// this is the historical -|kept - total/2| shifted by the constant total/2,
/// so greedy argmax ordering (including ties) is unchanged.
inline long SplitHalfScore(int total, int kept) {
  return static_cast<long>(total / 2) - std::abs(kept - total / 2);
}

/// Lattice-probe score: a candidate that would drop exactly one pair of θ*
/// (kept == total - 1) tests that pair's necessity and outranks every
/// split-half fallback — the probe score `total` strictly dominates the
/// fallback maximum total/2 for every total ≥ 1 (θ* is non-empty whenever a
/// consistent session is still asking).
inline long LatticeProbeScore(int total, int kept) {
  return kept == total - 1 ? static_cast<long>(total)
                           : SplitHalfScore(total, kept);
}

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_MASK_SCORING_H_
