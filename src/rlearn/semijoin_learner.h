// Learning semijoin predicates R ⋉_θ S from labeled *left rows*: a positive
// row must have some θ-matching partner in S, a negative row must have none.
// Consistency is NP-complete (the paper's Section-3 intractability claim);
// the exact solver searches over per-positive witness choices with
// monotonicity pruning and memoization, and a greedy polynomial
// approximation is provided for comparison (experiment E5).
#ifndef QLEARN_RLEARN_SEMIJOIN_LEARNER_H_
#define QLEARN_RLEARN_SEMIJOIN_LEARNER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "rlearn/join_hypothesis.h"

namespace qlearn {
namespace rlearn {

/// One labeled left-row example.
struct RowExample {
  size_t left_row;
};

struct SemijoinConsistency {
  bool consistent = false;
  /// A witness hypothesis when consistent.
  PairMask witness = 0;
  /// Search nodes explored (exponential in the worst case).
  size_t nodes_explored = 0;
};

/// Exact (exponential worst-case) consistency check.
SemijoinConsistency CheckSemijoinConsistency(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right,
    const std::vector<RowExample>& positives,
    const std::vector<RowExample>& negatives);

/// Greedy polynomial heuristic: picks per-positive witnesses maximizing the
/// surviving intersection. Sound (a returned witness is verified consistent)
/// but incomplete — may miss a consistent hypothesis.
SemijoinConsistency GreedySemijoinConsistency(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right,
    const std::vector<RowExample>& positives,
    const std::vector<RowExample>& negatives);

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_SEMIJOIN_LEARNER_H_
