// The interactive protocol for chains of joins (Section 3's extension of
// the single-join scenario, experiment E12): the learner proposes tuple
// paths, the user labels them, and after every answer the labels of all
// *uninformative* paths (those on which every hypothesis in the current
// chain version space agrees) are inferred so they are never asked.
//
// ChainEngine implements the unified session Engine concept
// (session/session.h) over a capped row-major enumeration of the chain's
// tuple paths; RunInteractiveChainSession is the legacy one-shot wrapper
// over session::LearningSession<ChainEngine>.
#ifndef QLEARN_RLEARN_INTERACTIVE_CHAIN_H_
#define QLEARN_RLEARN_INTERACTIVE_CHAIN_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rlearn/chain_learner.h"
#include "session/frontier.h"
#include "session/propagation.h"
#include "session/session.h"

namespace qlearn {
namespace rlearn {

/// Labels candidate paths; backed by a hidden goal in benchmarks.
class ChainOracle {
 public:
  virtual ~ChainOracle() = default;
  virtual bool IsPositive(const JoinChain& chain,
                          const ChainExample& example) = 0;
};

/// Oracle defined by a hidden goal chain mask.
class GoalChainOracle : public ChainOracle {
 public:
  explicit GoalChainOracle(ChainMask goal) : goal_(std::move(goal)) {}
  bool IsPositive(const JoinChain& chain, const ChainExample& example) override {
    return ChainSatisfied(chain, goal_, example);
  }

 private:
  ChainMask goal_;
};

/// Question-selection strategies for the interactive chain session.
enum class ChainStrategy {
  kRandom,      ///< uniform over informative paths
  kSplitHalf,   ///< maximize candidate-pair eliminations per answer
};

/// Knob ownership contract (same split on all four engines' options
/// structs): `strategy` and `max_candidates` are consumed by the engine
/// itself; `seed` and `max_questions` are consumed only by the
/// RunInteractiveChainSession wrapper, which forwards them into
/// session::SessionOptions — an engine driven directly through
/// LearningSession ignores them.
struct InteractiveChainOptions {
  ChainStrategy strategy = ChainStrategy::kSplitHalf;
  uint64_t seed = session::SessionDefaults::kLegacyChainSeed;
  /// Cap on enumerated candidate paths (the full product can explode).
  size_t max_candidates = 20000;
  size_t max_questions = session::SessionDefaults::kMaxQuestions;
};

struct InteractiveChainResult {
  /// One non-empty mask per chain edge: the most specific hypothesis
  /// consistent with all answers (on conflict, the last consistent one).
  ChainMask learned;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_paths = 0;
  /// Non-zero when the oracle contradicted the version space (goal outside
  /// the chain-hypothesis class).
  size_t conflicts = 0;
};

/// Session engine over (a capped row-major enumeration of) all tuple paths
/// of the chain. Questions are ChainExamples; the version space settles
/// uninformative paths after every answer. `chain` must outlive the engine.
class ChainEngine {
 public:
  using Item = ChainExample;
  using HypothesisT = ChainMask;

  /// Wire-payload hooks: the tag and the stable model-specific coordinates
  /// of a question item (see service/wire.h).
  static constexpr const char* kPayloadKind = "chain";
  static std::vector<uint64_t> ItemIds(const Item& item) {
    return std::vector<uint64_t>(item.rows.begin(), item.rows.end());
  }

  explicit ChainEngine(const JoinChain* chain,
                       const InteractiveChainOptions& options = {});

  std::optional<Item> SelectQuestion(common::Rng* rng);
  void MarkAsked(const Item& item);
  void Observe(const Item& item, bool positive, session::SessionStats* stats);
  /// Per-answer propagation deltas (engine concept, session/session.h): a
  /// negative answer queues its per-edge agreement masks; a positive
  /// answer marks the hypothesis changed iff it shrank some edge's θ*.
  void OnPositive(const Item& item);
  void OnNegative(const Item& item);
  /// Flushes queued deltas. Classification of a path is a pure function of
  /// its per-edge effective masks A_e = θ*_e ∧ agree_e, so candidates live
  /// in witness buckets keyed by the A vector: a new negative convicts
  /// exactly the buckets it covers edge-wise — O(distinct mask vectors)
  /// per answer — and a θ* change re-buckets the open set once.
  void Propagate(session::SessionStats* stats);
  /// True once an answer contradicted the version space (target outside the
  /// chain-of-joins hypothesis class).
  bool Aborted() const { return aborted_; }
  /// Most specific hypothesis after the last consistent answer — never the
  /// post-conflict vector, which can violate the "one non-empty mask per
  /// edge" ChainMask invariant.
  HypothesisT Current() const { return last_consistent_; }
  HypothesisT Finish(session::SessionStats* stats);

  size_t candidate_paths() const { return frontier_.size(); }
  const ChainExample& candidate(size_t k) const { return frontier_.item(k); }
  const JoinChain& chain() const { return *chain_; }

  // Introspection for conformance tests and UIs. Paths without a candidate
  // slot (malformed or beyond the candidate cap) were never considered and
  // report false.
  bool WasAsked(const Item& item) const;
  bool HasForcedLabel(const Item& item) const;

  /// Test/bench hook: every flush replays the historical full-universe
  /// rescan instead of the delta pass (identical behavior, different cost).
  void set_reference_propagation(bool on) { reference_propagation_ = on; }
  /// Test/bench hook: makes the next flush run the full re-bucketing pass.
  void ForceFullRepropagation() { prop_.RecordHypothesisChange(); }
  // Test introspection of the witness-bucket index.
  bool WitnessIndexValidForTest() const { return prop_.WitnessesValid(); }
  size_t WitnessBucketsForTest() const { return prop_.NumBuckets(); }

 private:
  /// Split scores are (primary, tie) pairs compared lexicographically; see
  /// SelectQuestion for the two-phase hunting/splitting semantics.
  using SplitScore = std::pair<long, long>;
  using FrontierT = session::Frontier<ChainExample, SplitScore>;
  /// Witness buckets keyed by the per-edge effective-mask vector; deltas
  /// are the new negatives' per-edge agreement vectors.
  using PropagationT =
      session::PropagationIndex<ChainMask, std::vector<PairMask>,
                                session::MaskVectorHash>;

  std::optional<size_t> IndexOf(const Item& item) const;

  /// Cached agreement mask of candidate `k` on `edge` (row-major in
  /// candidate order, filled at construction; also feeds split scoring).
  PairMask AgreeFor(size_t k, size_t edge) const {
    return agree_[k * chain_->num_edges() + edge];
  }

  /// The historical per-candidate Classify rescan, verbatim.
  void ReferencePropagate(session::SessionStats* stats);
  /// Re-buckets the open set by the per-edge effective-mask vectors.
  void RebuildBuckets();
  /// Baseline / θ*-change pass: re-bucket open candidates by their
  /// effective-mask vectors, classify once per bucket.
  void FullPropagate(session::SessionStats* stats);
  /// Steady-state flush: convicts the buckets covered edge-wise by each
  /// queued negative.
  void ApplyNegativeDeltas(session::SessionStats* stats);
  void ForceBucket(std::vector<size_t>& members, bool positive,
                   session::SessionStats* stats);
#ifndef NDEBUG
  void AssertPropagationFixpoint() const;
#endif

  const JoinChain* chain_;
  ChainStrategy strategy_;
  FrontierT frontier_;  // row-major candidate paths, capped
  /// Per-candidate per-edge agreement masks, candidate-major.
  std::vector<PairMask> agree_;
  ChainVersionSpace vs_;
  ChainMask last_consistent_;
  PropagationT prop_;
  /// Did the last positive Observe actually shrink some edge's θ*?
  bool theta_advanced_ = false;
  bool reference_propagation_ = false;
  bool aborted_ = false;
};

/// Runs the protocol over (a capped enumeration of) all tuple paths of the
/// chain. Stops when every path is labeled or uninformative. Thin wrapper
/// over session::LearningSession<ChainEngine>; question counts are
/// identical to driving the engine one question at a time.
common::Result<InteractiveChainResult> RunInteractiveChainSession(
    const JoinChain& chain, ChainOracle* oracle,
    const InteractiveChainOptions& options = {});

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_INTERACTIVE_CHAIN_H_
