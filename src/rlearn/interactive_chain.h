// The interactive protocol for chains of joins (Section 3's extension of
// the single-join scenario, experiment E12): the learner proposes tuple
// paths, the user labels them, and after every answer the labels of all
// *uninformative* paths (those on which every hypothesis in the current
// chain version space agrees) are inferred so they are never asked.
//
// ChainEngine implements the unified session Engine concept
// (session/session.h) over a capped row-major enumeration of the chain's
// tuple paths; RunInteractiveChainSession is the legacy one-shot wrapper
// over session::LearningSession<ChainEngine>.
#ifndef QLEARN_RLEARN_INTERACTIVE_CHAIN_H_
#define QLEARN_RLEARN_INTERACTIVE_CHAIN_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rlearn/chain_learner.h"
#include "session/candidate_store.h"
#include "session/frontier.h"
#include "session/propagation.h"
#include "session/session.h"
#include "session/snapshot.h"

namespace qlearn {
namespace rlearn {

/// Labels candidate paths; backed by a hidden goal in benchmarks.
class ChainOracle {
 public:
  virtual ~ChainOracle() = default;
  virtual bool IsPositive(const JoinChain& chain,
                          const ChainExample& example) = 0;
};

/// Oracle defined by a hidden goal chain mask.
class GoalChainOracle : public ChainOracle {
 public:
  explicit GoalChainOracle(ChainMask goal) : goal_(std::move(goal)) {}
  bool IsPositive(const JoinChain& chain, const ChainExample& example) override {
    return ChainSatisfied(chain, goal_, example);
  }

 private:
  ChainMask goal_;
};

/// Question-selection strategies for the interactive chain session.
enum class ChainStrategy {
  kRandom,      ///< uniform over informative paths
  kSplitHalf,   ///< maximize candidate-pair eliminations per answer
};

/// Knob ownership contract (same split on all four engines' options
/// structs): `strategy` and `max_candidates` are consumed by the engine
/// itself; `seed` and `max_questions` are consumed only by the
/// RunInteractiveChainSession wrapper, which forwards them into
/// session::SessionOptions — an engine driven directly through
/// LearningSession ignores them.
struct InteractiveChainOptions {
  ChainStrategy strategy = ChainStrategy::kSplitHalf;
  uint64_t seed = session::SessionDefaults::kLegacyChainSeed;
  /// Cap on enumerated candidate paths (the full product can explode).
  size_t max_candidates = 20000;
  size_t max_questions = session::SessionDefaults::kMaxQuestions;
};

struct InteractiveChainResult {
  /// One non-empty mask per chain edge: the most specific hypothesis
  /// consistent with all answers (on conflict, the last consistent one).
  ChainMask learned;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_paths = 0;
  /// Non-zero when the oracle contradicted the version space (goal outside
  /// the chain-hypothesis class).
  size_t conflicts = 0;
};

/// Session engine over (a capped row-major enumeration of) all tuple paths
/// of the chain. Questions are ChainExamples; the version space settles
/// uninformative paths after every answer. `chain` must outlive the engine.
class ChainEngine {
 public:
  using Item = ChainExample;
  using HypothesisT = ChainMask;

  /// Wire-payload hooks: the tag and the stable model-specific coordinates
  /// of a question item (see service/wire.h).
  static constexpr const char* kPayloadKind = "chain";
  static std::vector<uint64_t> ItemIds(const Item& item) {
    return std::vector<uint64_t>(item.rows.begin(), item.rows.end());
  }

  explicit ChainEngine(const JoinChain* chain,
                       const InteractiveChainOptions& options = {});

  std::optional<Item> SelectQuestion(common::Rng* rng);
  void MarkAsked(const Item& item);
  void Observe(const Item& item, bool positive, session::SessionStats* stats);
  /// Per-answer propagation deltas (engine concept, session/session.h): a
  /// negative answer queues its per-edge agreement masks; a positive
  /// answer marks the hypothesis changed iff it shrank some edge's θ*.
  void OnPositive(const Item& item);
  void OnNegative(const Item& item);
  /// Flushes queued deltas. Classification of a path is a pure function of
  /// its per-edge effective masks A_e = θ*_e ∧ agree_e, and the agreement
  /// bits live bit-transposed in the candidate store (64 planes per edge,
  /// plane e*64+b = "path agrees on bit b of edge e"), so each flush is a
  /// handful of word-at-a-time plane sweeps over the open set — no
  /// per-candidate loop and no witness hash index at all.
  void Propagate(session::SessionStats* stats);
  /// True once an answer contradicted the version space (target outside the
  /// chain-of-joins hypothesis class).
  bool Aborted() const { return aborted_; }
  /// Most specific hypothesis after the last consistent answer — never the
  /// post-conflict vector, which can violate the "one non-empty mask per
  /// edge" ChainMask invariant.
  HypothesisT Current() const { return last_consistent_; }
  HypothesisT Finish(session::SessionStats* stats);

  size_t candidate_paths() const { return frontier_.size(); }
  const ChainExample& candidate(size_t k) const { return frontier_.item(k); }
  const JoinChain& chain() const { return *chain_; }

  // Introspection for conformance tests and UIs. Paths without a candidate
  // slot (malformed or beyond the candidate cap) were never considered and
  // report false.
  bool WasAsked(const Item& item) const;
  bool HasForcedLabel(const Item& item) const;

  /// Test/bench hook: every flush replays the historical full-universe
  /// rescan instead of the delta pass (identical behavior, different cost).
  void set_reference_propagation(bool on) { reference_propagation_ = on; }
  /// Test/bench hook: makes the next flush run the full classification pass.
  void ForceFullRepropagation() { prop_.RecordHypothesisChange(); }
  /// Bench-parity hook: the SoA engine keeps no witness index (conviction
  /// is a plane sweep), so the historical "drop the index before the next
  /// negative" costs nothing to set up. Kept so BM_Classify measures the
  /// same externally-triggered operation before and after the refactor.
  void InvalidateWitnessIndexForBench() {}
  /// Test introspection of the structure-of-arrays candidate store.
  const session::CandidateStore& StoreForTest() const { return store_; }

  /// Hibernation: appends a versioned engine image (strategy, version
  /// space, frontier states, candidate-store planes) to `writer`. Call only
  /// between answered turns (queued deltas flushed).
  void SerializeSnapshot(session::SnapshotWriter* writer) const;
  /// Restores an image produced by SerializeSnapshot into an engine built
  /// over the same chain/options. Mismatched geometry or strategy is
  /// rejected with InvalidArgument.
  common::Status RestoreSnapshot(session::SnapshotReader* reader);

 private:
  /// Split scores are (primary, tie) pairs compared lexicographically; see
  /// SelectQuestion for the two-phase hunting/splitting semantics.
  using SplitScore = std::pair<long, long>;
  using FrontierT = session::Frontier<ChainExample, SplitScore>;
  /// Delta queue only (the witness-bucket half of PropagationIndex is
  /// superseded by plane sweeps): queued payloads are the new negatives'
  /// per-edge agreement vectors.
  using PropagationT =
      session::PropagationIndex<ChainMask, std::vector<PairMask>,
                                session::MaskVectorHash>;

  std::optional<size_t> IndexOf(const Item& item) const;

  /// The historical per-candidate Classify rescan, verbatim.
  void ReferencePropagate(session::SessionStats* stats);
  /// Baseline / θ*-change pass: positive sweep (open ∧ AND of every edge's
  /// θ* planes) plus per-edge A_e == 0 sweeps plus one conviction sweep per
  /// accumulated negative.
  void FullPropagate(session::SessionStats* stats);
  /// Steady-state flush: one conviction sweep per queued negative vector.
  void ApplyNegativeDeltas(session::SessionStats* stats);
  /// Convicts the open paths the negative's agreement vector covers
  /// edge-wise: open ∧ ∧_e ¬OR(planes of θ*_e ∧ ¬neg_e).
  void ConvictCovered(const std::vector<PairMask>& neg,
                      session::SessionStats* stats);
  /// Forces every candidate whose bit is set in `bits` (a sweep result over
  /// the dense axis; all bits are open by construction).
  void ForceSweep(const std::vector<uint64_t>& bits, bool positive,
                  session::SessionStats* stats);
  /// Recomputes the per-edge per-candidate |θ*_e ∧ agree_e| counts
  /// (bit-sliced popcount over each edge's θ* planes) if θ* changed or the
  /// store compacted.
  void EnsureKeptCounts();
#ifndef NDEBUG
  void AssertPropagationFixpoint() const;
#endif

  const JoinChain* chain_;
  ChainStrategy strategy_;
  FrontierT frontier_;  // row-major candidate paths, capped
  /// SoA agreement planes + open/active mirrors + dense compaction; plane
  /// e*64+b holds "path agrees on bit b of edge e's universe".
  session::CandidateStore store_;
  ChainVersionSpace vs_;
  ChainMask last_consistent_;
  PropagationT prop_;
  /// Sweep scratch (dense words) reused across flushes.
  std::vector<uint64_t> scratch_;
  /// kept_counts_[e][DenseOf(k)] = |θ*_e ∧ agree_e(k)|, the split-scoring
  /// input; refreshed lazily per θ* change / compaction.
  std::vector<std::vector<uint8_t>> kept_counts_;
  /// totals_[e] = |θ*_e| under the same validity regime.
  std::vector<int> totals_;
  bool counts_valid_ = false;
  /// Did the last positive Observe actually shrink some edge's θ*?
  bool theta_advanced_ = false;
  bool reference_propagation_ = false;
  bool aborted_ = false;
};

/// Runs the protocol over (a capped enumeration of) all tuple paths of the
/// chain. Stops when every path is labeled or uninformative. Thin wrapper
/// over session::LearningSession<ChainEngine>; question counts are
/// identical to driving the engine one question at a time.
common::Result<InteractiveChainResult> RunInteractiveChainSession(
    const JoinChain& chain, ChainOracle* oracle,
    const InteractiveChainOptions& options = {});

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_INTERACTIVE_CHAIN_H_
