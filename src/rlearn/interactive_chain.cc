#include "rlearn/interactive_chain.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

namespace {

/// Enumerates up to `cap` candidate paths (row-index products, row-major).
std::vector<ChainExample> EnumerateCandidates(const JoinChain& chain,
                                              size_t cap) {
  std::vector<ChainExample> out;
  std::vector<size_t> sizes(chain.length());
  for (size_t i = 0; i < chain.length(); ++i) {
    sizes[i] = chain.relation(i).size();
    if (sizes[i] == 0) return out;
  }
  std::vector<size_t> idx(chain.length(), 0);
  while (out.size() < cap) {
    out.push_back(ChainExample{idx});
    size_t pos = chain.length();
    while (pos-- > 0) {
      if (++idx[pos] < sizes[pos]) break;
      idx[pos] = 0;
      if (pos == 0) return out;
    }
  }
  return out;
}

}  // namespace

ChainEngine::ChainEngine(const JoinChain* chain,
                         const InteractiveChainOptions& options)
    : chain_(chain),
      strategy_(options.strategy),
      vs_(chain),
      last_consistent_(vs_.most_specific()) {
  std::vector<ChainExample> candidates =
      EnumerateCandidates(*chain, options.max_candidates);
  frontier_.Reserve(candidates.size());
  agree_.reserve(candidates.size() * chain->num_edges());
  for (ChainExample& candidate : candidates) {
    for (size_t e = 0; e < chain->num_edges(); ++e) {
      agree_.push_back(chain->AgreeOn(e, candidate.rows));
    }
    frontier_.Add(std::move(candidate));
  }
}

std::optional<size_t> ChainEngine::IndexOf(const ChainExample& item) const {
  // Candidates are the row-major prefix of the full row product, so the
  // index is the mixed-radix value of the row vector. Malformed paths
  // (wrong arity, row out of range) and paths beyond the max_candidates
  // prefix have no candidate slot.
  if (item.rows.size() != chain_->length()) return std::nullopt;
  size_t index = 0;
  for (size_t i = 0; i < chain_->length(); ++i) {
    if (item.rows[i] >= chain_->relation(i).size()) return std::nullopt;
    index = index * chain_->relation(i).size() + item.rows[i];
  }
  if (index >= frontier_.size()) return std::nullopt;
  return index;
}

std::optional<ChainExample> ChainEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  if (strategy_ == ChainStrategy::kRandom) {
    pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
  } else {
    // kSplitHalf in two phases. Until the first positive arrives, ask the
    // most plausible match (the candidate keeping the most θ* pairs alive
    // on every edge): a positive intersects every edge's θ* at once and
    // carries far more information than any negative. Once θ* reflects a
    // positive, switch to even-split probing of the surviving pairs.
    //
    // Scores depend only on θ* and the hunting phase, both of which change
    // exactly on positive answers — so they stay memoized across the
    // (overwhelmingly more common) negative answers and propagations.
    const bool hunting = vs_.num_positives() == 0;
    pick = frontier_.Select(
        session::Greedy<SplitScore>(
            SplitScore{std::numeric_limits<long>::min(),
                       std::numeric_limits<long>::min()},
            [this, hunting](size_t k) -> std::optional<SplitScore> {
              return frontier_.MemoOf(k, [this, hunting](size_t j) {
                long total_kept = 0;
                long split = 0;
                for (size_t e = 0; e < chain_->num_edges(); ++e) {
                  const PairMask ms = vs_.most_specific()[e];
                  const PairMask agree = ms & AgreeFor(j, e);
                  const int total = std::popcount(ms);
                  const int kept = std::popcount(agree);
                  total_kept += kept;
                  split += total / 2 - std::abs(kept - total / 2);
                }
                return hunting ? SplitScore{total_kept, split}
                               : SplitScore{split, total_kept};
              });
            }),
        rng);
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

void ChainEngine::MarkAsked(const ChainExample& item) {
  const std::optional<size_t> k = IndexOf(item);
  assert(k.has_value() && "asked path outside the enumerated candidates");
  if (!k.has_value()) return;
  frontier_.MarkAsked(*k);
}

void ChainEngine::Observe(const ChainExample& item, bool positive,
                          session::SessionStats* stats) {
  const std::optional<size_t> k = IndexOf(item);
  if (k.has_value()) frontier_.MarkLabeled(*k, positive);
  theta_advanced_ = false;
  if (positive) {
    const ChainMask before = vs_.most_specific();
    vs_.AddPositive(item);
    theta_advanced_ = vs_.most_specific() != before;
    // θ* (and possibly the hunting phase) changed: memoized split scores
    // are stale. Negatives leave θ* untouched — nothing to invalidate.
    frontier_.InvalidateAll();
  } else {
    vs_.AddNegative(item);
  }
  if (vs_.Consistent()) {
    last_consistent_ = vs_.most_specific();
  } else {
    ++stats->conflicts;
    aborted_ = true;  // target outside the hypothesis space
  }
}

void ChainEngine::OnPositive(const ChainExample& /*item*/) {
  // A positive that covered every edge's θ* already (possible mid-batch)
  // leaves every classification unchanged.
  if (theta_advanced_) prop_.RecordHypothesisChange();
}

void ChainEngine::OnNegative(const ChainExample& item) {
  // Queue the negative's per-edge agreement vector (exactly what the
  // version space recorded for it). In-frontier items reuse the
  // per-candidate cache; paths without a candidate slot recompute.
  const std::optional<size_t> k = IndexOf(item);
  std::vector<PairMask> agree(chain_->num_edges());
  for (size_t e = 0; e < chain_->num_edges(); ++e) {
    agree[e] =
        k.has_value() ? AgreeFor(*k, e) : chain_->AgreeOn(e, item.rows);
  }
  prop_.RecordNegative(std::move(agree));
}

void ChainEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
    prop_.InvalidateWitnesses();  // never re-bucketed in reference mode
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);  // re-buckets eagerly: witnesses stay valid
    prop_.MarkFullPassDone();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
}

void ChainEngine::ReferencePropagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    switch (vs_.Classify(frontier_.item(k))) {
      case ChainVersionSpace::PathStatus::kForcedPositive:
        frontier_.MarkForced(k, /*positive=*/true);
        ++stats->forced_positive;
        break;
      case ChainVersionSpace::PathStatus::kForcedNegative:
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;
      case ChainVersionSpace::PathStatus::kInformative:
        break;
    }
  }
}

void ChainEngine::ForceBucket(std::vector<size_t>& members, bool positive,
                              session::SessionStats* stats) {
  for (size_t k : members) {
    if (!frontier_.IsOpen(k)) continue;  // settled since the bucket was built
    frontier_.MarkForced(k, positive);
    if (positive) {
      ++stats->forced_positive;
    } else {
      ++stats->forced_negative;
    }
  }
}

void ChainEngine::RebuildBuckets() {
  prop_.BeginWitnessRebuild();
  const ChainMask& theta = vs_.most_specific();
  const size_t edges = chain_->num_edges();
  ChainMask key(edges);
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    for (size_t e = 0; e < edges; ++e) {
      key[e] = theta[e] & AgreeFor(k, e);
    }
    prop_.AddWitness(key, k);
  }
}

void ChainEngine::FullPropagate(session::SessionStats* stats) {
  // Classification of a path depends only on its per-edge effective masks
  // A_e = θ*_e ∧ agree_e (see ChainVersionSpace::Classify): bucket the
  // open set by the A vector once, then classify each distinct vector.
  RebuildBuckets();
  const ChainMask& theta = vs_.most_specific();
  const size_t edges = chain_->num_edges();
  prop_.ForEachBucket(
      [&](const ChainMask& a, std::vector<size_t>& members) {
        // A == θ* edge-wise ⇔ θ* selects the path.
        if (a == theta) {
          ForceBucket(members, /*positive=*/true, stats);
          return true;
        }
        bool forced_negative = false;
        for (size_t e = 0; e < edges && !forced_negative; ++e) {
          forced_negative = a[e] == 0;
        }
        if (!forced_negative) {
          for (const std::vector<PairMask>& neg : vs_.negative_agreements()) {
            bool covered = true;
            for (size_t e = 0; e < edges; ++e) {
              if (!MaskSatisfied(a[e], neg[e])) {
                covered = false;
                break;
              }
            }
            if (covered) {
              forced_negative = true;
              break;
            }
          }
        }
        if (forced_negative) {
          ForceBucket(members, /*positive=*/false, stats);
          return true;
        }
        return false;  // informative bucket: keep for future deltas
      });
}

void ChainEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<std::vector<PairMask>> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  const size_t edges = chain_->num_edges();
  // θ* is untouched, so no new forced positives exist and the surviving
  // buckets' keys are still the candidates' effective-mask vectors. After
  // a reference flush the buckets are stale — rebuild from the open set.
  if (!prop_.WitnessesValid()) RebuildBuckets();
  // No per-visit eviction: a path lives in exactly one bucket and forcing
  // erases whole buckets, so the only stale members are the few asked /
  // labeled paths — ForceBucket skips them.
  for (const std::vector<PairMask>& neg : deltas) {
    prop_.ForEachBucket(
        [&](const ChainMask& a, std::vector<size_t>& members) {
          for (size_t e = 0; e < edges; ++e) {
            if (!MaskSatisfied(a[e], neg[e])) return false;
          }
          ForceBucket(members, /*positive=*/false, stats);
          return true;
        });
  }
}

#ifndef NDEBUG
void ChainEngine::AssertPropagationFixpoint() const {
  // The historical per-candidate classification must find nothing left to
  // force after a flush.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    assert(vs_.Classify(frontier_.item(k)) ==
               ChainVersionSpace::PathStatus::kInformative &&
           "delta flush missed a forced path");
  }
}
#endif

ChainMask ChainEngine::Finish(session::SessionStats* /*stats*/) {
  // No end-of-session audit beyond the per-answer consistency checks.
  return Current();
}

bool ChainEngine::WasAsked(const ChainExample& item) const {
  const std::optional<size_t> k = IndexOf(item);
  return k.has_value() && frontier_.WasAsked(*k);
}

bool ChainEngine::HasForcedLabel(const ChainExample& item) const {
  // Paths without a candidate slot were never classified, so they carry no
  // label.
  const std::optional<size_t> k = IndexOf(item);
  return k.has_value() && frontier_.HasForcedLabel(*k);
}

Result<InteractiveChainResult> RunInteractiveChainSession(
    const JoinChain& chain, ChainOracle* oracle,
    const InteractiveChainOptions& options) {
  if (oracle == nullptr) {
    return Status::InvalidArgument("oracle must not be null");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<ChainEngine> session(ChainEngine(&chain, options),
                                                session_options);

  InteractiveChainResult result;
  result.learned = session.Run([&](const ChainExample& example) {
    return oracle->IsPositive(chain, example);
  });
  result.candidate_paths = session.engine().candidate_paths();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
#ifndef NDEBUG
  // ChainMask invariant: one non-empty mask per edge, even after a
  // conflict (the engine then reports the last consistent θ*).
  assert(result.learned.size() == chain.num_edges());
  for (const PairMask mask : result.learned) assert(mask != 0);
#endif
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
