#include "rlearn/interactive_chain.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "rlearn/mask_scoring.h"

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

namespace {

/// "QLCE" little-endian: the chain-engine snapshot blob tag.
constexpr uint32_t kChainEngineMagic = 0x45434C51u;
constexpr uint32_t kChainEngineVersion = 1;

/// Enumerates up to `cap` candidate paths (row-index products, row-major).
std::vector<ChainExample> EnumerateCandidates(const JoinChain& chain,
                                              size_t cap) {
  std::vector<ChainExample> out;
  std::vector<size_t> sizes(chain.length());
  for (size_t i = 0; i < chain.length(); ++i) {
    sizes[i] = chain.relation(i).size();
    if (sizes[i] == 0) return out;
  }
  std::vector<size_t> idx(chain.length(), 0);
  while (out.size() < cap) {
    out.push_back(ChainExample{idx});
    size_t pos = chain.length();
    while (pos-- > 0) {
      if (++idx[pos] < sizes[pos]) break;
      idx[pos] = 0;
      if (pos == 0) return out;
    }
  }
  return out;
}

}  // namespace

ChainEngine::ChainEngine(const JoinChain* chain,
                         const InteractiveChainOptions& options)
    : chain_(chain),
      strategy_(options.strategy),
      vs_(chain),
      last_consistent_(vs_.most_specific()) {
  std::vector<ChainExample> candidates =
      EnumerateCandidates(*chain, options.max_candidates);
  frontier_.Reserve(candidates.size());
  // Per-edge agreement masks go bit-transposed into the store: 64 planes
  // per edge, plane e*64+b = the paths agreeing on bit b of edge e.
  store_.Reset(64 * chain->num_edges(), candidates.size());
  for (ChainExample& candidate : candidates) {
    std::vector<PairMask> agree(chain->num_edges());
    for (size_t e = 0; e < chain->num_edges(); ++e) {
      agree[e] = chain->AgreeOn(e, candidate.rows);
    }
    const size_t k = frontier_.Add(std::move(candidate));
    for (size_t e = 0; e < chain->num_edges(); ++e) {
      for (PairMask m = agree[e]; m != 0; m &= m - 1) {
        store_.SetPlaneBit(e * 64 + static_cast<size_t>(std::countr_zero(m)),
                           k);
      }
    }
  }
}

std::optional<size_t> ChainEngine::IndexOf(const ChainExample& item) const {
  // Candidates are the row-major prefix of the full row product, so the
  // index is the mixed-radix value of the row vector. Malformed paths
  // (wrong arity, row out of range) and paths beyond the max_candidates
  // prefix have no candidate slot.
  if (item.rows.size() != chain_->length()) return std::nullopt;
  size_t index = 0;
  for (size_t i = 0; i < chain_->length(); ++i) {
    if (item.rows[i] >= chain_->relation(i).size()) return std::nullopt;
    index = index * chain_->relation(i).size() + item.rows[i];
  }
  if (index >= frontier_.size()) return std::nullopt;
  return index;
}

void ChainEngine::EnsureKeptCounts() {
  if (counts_valid_) return;
  const ChainMask& theta = vs_.most_specific();
  const size_t edges = chain_->num_edges();
  kept_counts_.resize(edges);
  totals_.resize(edges);
  for (size_t e = 0; e < edges; ++e) {
    store_.PlanePopcounts(e * 64, theta[e], &kept_counts_[e]);
    totals_[e] = std::popcount(theta[e]);
  }
  counts_valid_ = true;
}

std::optional<ChainExample> ChainEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  if (strategy_ == ChainStrategy::kRandom) {
    pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
  } else {
    // kSplitHalf in two phases. Until the first positive arrives, ask the
    // most plausible match (the candidate keeping the most θ* pairs alive
    // on every edge): a positive intersects every edge's θ* at once and
    // carries far more information than any negative. Once θ* reflects a
    // positive, switch to even-split probing of the surviving pairs.
    //
    // The per-edge kept-counts depend only on θ*, which changes exactly on
    // positive answers — one bit-sliced popcount sweep per edge per change;
    // the greedy scorer is then a row of array reads.
    EnsureKeptCounts();
    const bool hunting = vs_.num_positives() == 0;
    const size_t edges = chain_->num_edges();
    pick = frontier_.Select(
        session::Greedy<SplitScore>(
            SplitScore{std::numeric_limits<long>::min(),
                       std::numeric_limits<long>::min()},
            [this, hunting, edges](size_t k) -> std::optional<SplitScore> {
              const size_t d = store_.DenseOf(k);
              long total_kept = 0;
              long split = 0;
              for (size_t e = 0; e < edges; ++e) {
                const int kept = kept_counts_[e][d];
                total_kept += kept;
                split += SplitHalfScore(totals_[e], kept);
              }
              return hunting ? SplitScore{total_kept, split}
                             : SplitScore{split, total_kept};
            }),
        rng);
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

void ChainEngine::MarkAsked(const ChainExample& item) {
  const std::optional<size_t> k = IndexOf(item);
  assert(k.has_value() && "asked path outside the enumerated candidates");
  if (!k.has_value()) return;
  frontier_.MarkAsked(*k);
  store_.OnAsked(*k);
}

void ChainEngine::Observe(const ChainExample& item, bool positive,
                          session::SessionStats* stats) {
  const std::optional<size_t> k = IndexOf(item);
  if (k.has_value()) {
    frontier_.MarkLabeled(*k, positive);
    store_.OnSettled(*k);
  }
  theta_advanced_ = false;
  if (positive) {
    const ChainMask before = vs_.most_specific();
    vs_.AddPositive(item);
    theta_advanced_ = vs_.most_specific() != before;
    // θ* (and possibly the hunting phase) changed: memoized split scores
    // are stale. Negatives leave θ* untouched — nothing to invalidate.
    frontier_.InvalidateAll();
    if (theta_advanced_) counts_valid_ = false;
  } else {
    vs_.AddNegative(item);
  }
  if (vs_.Consistent()) {
    last_consistent_ = vs_.most_specific();
  } else {
    ++stats->conflicts;
    aborted_ = true;  // target outside the hypothesis space
  }
}

void ChainEngine::OnPositive(const ChainExample& /*item*/) {
  // A positive that covered every edge's θ* already (possible mid-batch)
  // leaves every classification unchanged.
  if (theta_advanced_) prop_.RecordHypothesisChange();
}

void ChainEngine::OnNegative(const ChainExample& /*item*/) {
  // Observe ran first, so the version space's newest negative agreement
  // vector is this path's (valid for slotless paths too — the version
  // space recomputes agreements itself).
  prop_.RecordNegative(vs_.negative_agreements().back());
}

void ChainEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);
    prop_.MarkFullPassDone();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
  // Shrink the dense sweep axis once enough candidates settled. Survivor
  // order is id-ascending before and after, so replay is unaffected; the
  // kept-counts are dense-indexed and refresh lazily.
  if (store_.MaybeCompact()) counts_valid_ = false;
}

void ChainEngine::ReferencePropagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    switch (vs_.Classify(frontier_.item(k))) {
      case ChainVersionSpace::PathStatus::kForcedPositive:
        frontier_.MarkForced(k, /*positive=*/true);
        store_.OnSettled(k);
        ++stats->forced_positive;
        break;
      case ChainVersionSpace::PathStatus::kForcedNegative:
        frontier_.MarkForced(k, /*positive=*/false);
        store_.OnSettled(k);
        ++stats->forced_negative;
        break;
      case ChainVersionSpace::PathStatus::kInformative:
        break;
    }
  }
}

void ChainEngine::ForceSweep(const std::vector<uint64_t>& bits, bool positive,
                             session::SessionStats* stats) {
  session::ForEachSetBit(bits.data(), bits.size(), [&](size_t d) {
    const size_t k = store_.IdOf(d);
    frontier_.MarkForced(k, positive);
    store_.OnSettled(k);
    if (positive) {
      ++stats->forced_positive;
    } else {
      ++stats->forced_negative;
    }
  });
}

void ChainEngine::ConvictCovered(const std::vector<PairMask>& neg,
                                 session::SessionStats* stats) {
  // The negative covers a path iff on every edge A_e ∧ ¬neg_e == 0, i.e.
  // the path agrees on none of the surviving pairs θ*_e ∧ ¬neg_e. An edge
  // with no surviving pair imposes no constraint (its A_e is covered for
  // every path).
  const ChainMask& theta = vs_.most_specific();
  store_.CopyOpen(&scratch_);
  for (size_t e = 0; e < chain_->num_edges(); ++e) {
    const PairMask surviving = theta[e] & ~neg[e];
    if (surviving != 0) {
      store_.AndNotOrPlanes(e * 64, surviving, scratch_.data());
    }
  }
  ForceSweep(scratch_, /*positive=*/false, stats);
}

void ChainEngine::FullPropagate(session::SessionStats* stats) {
  // Classification of a path depends only on its per-edge effective masks
  // A_e = θ*_e ∧ agree_e (see ChainVersionSpace::Classify), so the whole
  // pass is word-parallel: one AND sweep over every edge's θ* planes for
  // the forced positives (A == θ* edge-wise), a per-edge A_e == 0 sweep,
  // and one conviction sweep per accumulated negative.
  const ChainMask& theta = vs_.most_specific();
  const size_t edges = chain_->num_edges();
  store_.CopyOpen(&scratch_);
  for (size_t e = 0; e < edges; ++e) {
    assert(theta[e] != 0 && "propagating an inconsistent version space");
    store_.AndPlanes(e * 64, theta[e], scratch_.data());
  }
  ForceSweep(scratch_, /*positive=*/true, stats);
  for (size_t e = 0; e < edges; ++e) {
    store_.CopyOpen(&scratch_);
    store_.AndNotOrPlanes(e * 64, theta[e], scratch_.data());
    ForceSweep(scratch_, /*positive=*/false, stats);
  }
  for (const std::vector<PairMask>& neg : vs_.negative_agreements()) {
    ConvictCovered(neg, stats);
  }
}

void ChainEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<std::vector<PairMask>> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  // θ* is untouched, so no new forced positives exist: each queued
  // negative is one conviction sweep over the still-open paths.
  for (const std::vector<PairMask>& neg : deltas) {
    ConvictCovered(neg, stats);
  }
}

#ifndef NDEBUG
void ChainEngine::AssertPropagationFixpoint() const {
  // The historical per-candidate classification must find nothing left to
  // force after a flush.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    assert(vs_.Classify(frontier_.item(k)) ==
               ChainVersionSpace::PathStatus::kInformative &&
           "delta flush missed a forced path");
    assert(store_.IsOpen(k) && "store open bit out of sync with frontier");
  }
}
#endif

ChainMask ChainEngine::Finish(session::SessionStats* /*stats*/) {
  // No end-of-session audit beyond the per-answer consistency checks.
  return Current();
}

void ChainEngine::SerializeSnapshot(session::SnapshotWriter* writer) const {
  writer->WriteU32(kChainEngineMagic);
  writer->WriteU32(kChainEngineVersion);
  writer->WriteU8(static_cast<uint8_t>(strategy_));
  writer->WriteU8(aborted_ ? 1 : 0);
  const size_t edges = chain_->num_edges();
  writer->WriteU64(edges);
  for (PairMask m : vs_.most_specific()) writer->WriteU64(m);
  for (PairMask m : last_consistent_) writer->WriteU64(m);
  writer->WriteU64(vs_.num_positives());
  writer->WriteU64(vs_.negative_agreements().size());
  for (const std::vector<PairMask>& neg : vs_.negative_agreements()) {
    for (PairMask m : neg) writer->WriteU64(m);
  }
  frontier_.SerializeState(writer);
  store_.SerializeSnapshot(writer);
}

common::Status ChainEngine::RestoreSnapshot(session::SnapshotReader* reader) {
  uint64_t edges = 0, num_positives = 0, num_negatives = 0;
  uint32_t magic = 0, version = 0;
  uint8_t strategy = 0, aborted = 0;
  Status s = reader->ReadU32(&magic);
  if (s.ok()) s = reader->ReadU32(&version);
  if (s.ok()) s = reader->ReadU8(&strategy);
  if (s.ok()) s = reader->ReadU8(&aborted);
  if (s.ok()) s = reader->ReadU64(&edges);
  if (!s.ok()) return s;
  if (magic != kChainEngineMagic) {
    return Status::InvalidArgument("not a chain-engine snapshot");
  }
  if (version != kChainEngineVersion) {
    return Status::InvalidArgument(
        "unsupported chain-engine snapshot version " +
        std::to_string(version));
  }
  if (strategy != static_cast<uint8_t>(strategy_)) {
    return Status::InvalidArgument(
        "chain-engine snapshot was taken under a different strategy");
  }
  if (edges != chain_->num_edges()) {
    return Status::InvalidArgument(
        "chain-engine snapshot has " + std::to_string(edges) +
        " edges, chain has " + std::to_string(chain_->num_edges()));
  }
  ChainMask theta(edges), last(edges);
  for (uint64_t e = 0; e < edges && s.ok(); ++e) s = reader->ReadU64(&theta[e]);
  for (uint64_t e = 0; e < edges && s.ok(); ++e) s = reader->ReadU64(&last[e]);
  if (s.ok()) s = reader->ReadU64(&num_positives);
  if (s.ok()) s = reader->ReadU64(&num_negatives);
  if (!s.ok()) return s;
  std::vector<std::vector<PairMask>> negatives(num_negatives);
  for (uint64_t i = 0; i < num_negatives; ++i) {
    negatives[i].resize(edges);
    for (uint64_t e = 0; e < edges; ++e) {
      s = reader->ReadU64(&negatives[i][e]);
      if (!s.ok()) return s;
    }
  }
  s = frontier_.RestoreState(reader);
  if (!s.ok()) return s;
  s = store_.RestoreSnapshot(reader);
  if (!s.ok()) return s;

  vs_.RestoreState(std::move(theta), std::move(negatives),
                   static_cast<size_t>(num_positives));
  last_consistent_ = std::move(last);
  aborted_ = aborted != 0;
  theta_advanced_ = false;
  counts_valid_ = false;
  // Snapshots are taken between answered turns: every queued delta was
  // flushed, so the restored engine starts in steady state.
  prop_.MarkFullPassDone();
  return Status::OK();
}

bool ChainEngine::WasAsked(const ChainExample& item) const {
  const std::optional<size_t> k = IndexOf(item);
  return k.has_value() && frontier_.WasAsked(*k);
}

bool ChainEngine::HasForcedLabel(const ChainExample& item) const {
  // Paths without a candidate slot were never classified, so they carry no
  // label.
  const std::optional<size_t> k = IndexOf(item);
  return k.has_value() && frontier_.HasForcedLabel(*k);
}

Result<InteractiveChainResult> RunInteractiveChainSession(
    const JoinChain& chain, ChainOracle* oracle,
    const InteractiveChainOptions& options) {
  if (oracle == nullptr) {
    return Status::InvalidArgument("oracle must not be null");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<ChainEngine> session(ChainEngine(&chain, options),
                                                session_options);

  InteractiveChainResult result;
  result.learned = session.Run([&](const ChainExample& example) {
    return oracle->IsPositive(chain, example);
  });
  result.candidate_paths = session.engine().candidate_paths();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
#ifndef NDEBUG
  // ChainMask invariant: one non-empty mask per edge, even after a
  // conflict (the engine then reports the last consistent θ*).
  assert(result.learned.size() == chain.num_edges());
  for (const PairMask mask : result.learned) assert(mask != 0);
#endif
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
