#include "rlearn/interactive_join.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <vector>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

JoinEngine::JoinEngine(const PairUniverse* universe,
                       const relational::Relation* left,
                       const relational::Relation* right,
                       const InteractiveJoinOptions& options)
    : universe_(universe),
      left_(left),
      right_(right),
      strategy_(options.strategy),
      vs_(universe, left, right) {
  // Materialize all candidate pairs with their agreement masks.
  frontier_.Reserve(left->size() * right->size());
  agree_.reserve(left->size() * right->size());
  for (size_t i = 0; i < left->size(); ++i) {
    for (size_t j = 0; j < right->size(); ++j) {
      frontier_.Add(PairExample{i, j});
      agree_.push_back(universe->AgreeMask(left->row(i), right->row(j)));
    }
  }
}

size_t JoinEngine::IndexOf(const PairExample& item) const {
  return item.left_row * right_->size() + item.right_row;
}

std::optional<PairExample> JoinEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  switch (strategy_) {
    case JoinStrategy::kRandom:
      pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
      break;
    case JoinStrategy::kSplitHalf: {
      // Prefer the pair whose positive answer halves θ*. Scores depend only
      // on θ*, so they stay memoized until a positive answer shrinks it.
      const int target = std::popcount(vs_.most_specific()) / 2;
      pick = frontier_.Select(
          session::Greedy<long>(
              std::numeric_limits<long>::min(),
              [this, target](size_t k) -> std::optional<long> {
                return frontier_.MemoOf(k, [this, target](size_t j) {
                  const int kept =
                      std::popcount(vs_.most_specific() & agree_[j]);
                  return -static_cast<long>(std::abs(kept - target));
                });
              }),
          rng);
      break;
    }
    case JoinStrategy::kLattice: {
      // Probe a pair that drops exactly one bit of θ* if positive; fall
      // back to split-half behaviour otherwise.
      const int full = std::popcount(vs_.most_specific());
      pick = frontier_.Select(
          session::Greedy<long>(
              std::numeric_limits<long>::min(),
              [this, full](size_t k) -> std::optional<long> {
                return frontier_.MemoOf(k, [this, full](size_t j) {
                  const int kept =
                      std::popcount(vs_.most_specific() & agree_[j]);
                  return kept == full - 1
                             ? 1L
                             : -static_cast<long>(std::abs(kept - full / 2));
                });
              }),
          rng);
      break;
    }
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

void JoinEngine::MarkAsked(const PairExample& item) {
  frontier_.MarkAsked(IndexOf(item));
}

void JoinEngine::Observe(const PairExample& item, bool positive,
                         session::SessionStats* stats) {
  frontier_.MarkLabeled(IndexOf(item), positive);
  theta_advanced_ = false;
  if (positive) {
    const PairMask before = vs_.most_specific();
    vs_.AddPositive(item);
    theta_advanced_ = vs_.most_specific() != before;
    // θ* shrank: every memoized split/lattice score is stale. Negative
    // answers leave θ* (and thus the scores) untouched.
    frontier_.InvalidateAll();
  } else {
    vs_.AddNegative(item);
  }
  if (!vs_.Consistent()) {
    ++stats->conflicts;
    aborted_ = true;  // target outside the hypothesis space
  }
}

void JoinEngine::OnPositive(const PairExample& /*item*/) {
  // A positive whose agreement already covered θ* (possible mid-batch)
  // leaves every classification unchanged.
  if (theta_advanced_) prop_.RecordHypothesisChange();
}

void JoinEngine::OnNegative(const PairExample& item) {
  prop_.RecordNegative(agree_[IndexOf(item)]);
}

void JoinEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
    prop_.InvalidateWitnesses();  // never re-bucketed in reference mode
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);  // re-buckets eagerly: witnesses stay valid
    prop_.MarkFullPassDone();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
}

void JoinEngine::ReferencePropagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    switch (vs_.Classify(frontier_.item(k))) {
      case EquiJoinVersionSpace::PairStatus::kForcedPositive:
        frontier_.MarkForced(k, /*positive=*/true);
        ++stats->forced_positive;
        break;
      case EquiJoinVersionSpace::PairStatus::kForcedNegative:
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;
      case EquiJoinVersionSpace::PairStatus::kInformative:
        break;
    }
  }
}

void JoinEngine::ForceBucket(std::vector<size_t>& members, bool positive,
                             session::SessionStats* stats) {
  for (size_t k : members) {
    if (!frontier_.IsOpen(k)) continue;  // settled since the bucket was built
    frontier_.MarkForced(k, positive);
    if (positive) {
      ++stats->forced_positive;
    } else {
      ++stats->forced_negative;
    }
  }
}

void JoinEngine::RebuildBuckets() {
  prop_.BeginWitnessRebuild();
  const PairMask theta = vs_.most_specific();
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    prop_.AddWitness(theta & agree_[k], k);
  }
}

void JoinEngine::FullPropagate(session::SessionStats* stats) {
  // Classification of a pair depends only on A = θ* ∧ agree (see
  // EquiJoinVersionSpace::Classify): bucket the open set by A once, then
  // classify each distinct mask — O(open + buckets × negatives) instead of
  // O(open × negatives).
  RebuildBuckets();
  const PairMask theta = vs_.most_specific();
  prop_.ForEachBucket([&](PairMask a, std::vector<size_t>& members) {
    // A == θ* ⇔ MaskSatisfied(θ*, agree): even the most specific
    // hypothesis selects the pair.
    if (a == theta) {
      ForceBucket(members, /*positive=*/true, stats);
      return true;
    }
    bool forced_negative = a == 0;
    if (!forced_negative) {
      for (PairMask neg : vs_.negative_masks()) {
        if (MaskSatisfied(a, neg)) {
          forced_negative = true;
          break;
        }
      }
    }
    if (forced_negative) {
      ForceBucket(members, /*positive=*/false, stats);
      return true;
    }
    return false;  // informative bucket: keep for future deltas
  });
}

void JoinEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<PairMask> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  // θ* is untouched, so no new forced positives exist and the surviving
  // buckets' keys are still the candidates' effective masks: the new
  // negative convicts exactly the buckets it covers. After a reference
  // flush the buckets are stale — rebuild from the open set (every
  // survivor of a flush is informative, so no re-classification needed).
  if (!prop_.WitnessesValid()) RebuildBuckets();
  // No per-visit eviction: a pair lives in exactly one bucket and forcing
  // erases whole buckets, so the only stale members are the few asked /
  // labeled pairs — ForceBucket skips them.
  for (PairMask neg : deltas) {
    prop_.ForEachBucket([&](PairMask a, std::vector<size_t>& members) {
      if (!MaskSatisfied(a, neg)) return false;
      ForceBucket(members, /*positive=*/false, stats);
      return true;
    });
  }
}

#ifndef NDEBUG
void JoinEngine::AssertPropagationFixpoint() const {
  // The historical per-candidate classification must find nothing left to
  // force after a flush.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    assert(vs_.Classify(frontier_.item(k)) ==
               EquiJoinVersionSpace::PairStatus::kInformative &&
           "delta flush missed a forced pair");
  }
}
#endif

PairMask JoinEngine::Current() const {
  return vs_.Consistent() ? vs_.most_specific() : 0;
}

PairMask JoinEngine::Finish(session::SessionStats* /*stats*/) {
  // No end-of-session audit beyond the per-answer consistency checks.
  return Current();
}

const relational::Tuple& JoinEngine::LeftRow(const PairExample& item) const {
  return left_->row(item.left_row);
}

const relational::Tuple& JoinEngine::RightRow(const PairExample& item) const {
  return right_->row(item.right_row);
}

bool JoinEngine::WasAsked(const PairExample& item) const {
  return frontier_.WasAsked(IndexOf(item));
}

bool JoinEngine::HasForcedLabel(const PairExample& item) const {
  return frontier_.HasForcedLabel(IndexOf(item));
}

Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options) {
  if (universe.size() == 0) {
    return Status::InvalidArgument("empty candidate pair universe");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<JoinEngine> session(
      JoinEngine(&universe, &left, &right, options), session_options);

  InteractiveJoinResult result;
  result.learned = session.Run([&](const PairExample& pair) {
    return oracle->IsPositive(left.row(pair.left_row),
                              right.row(pair.right_row));
  });
  result.candidate_pairs = session.engine().candidate_pairs();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
