#include "rlearn/interactive_join.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

JoinEngine::JoinEngine(const PairUniverse* universe,
                       const relational::Relation* left,
                       const relational::Relation* right,
                       const InteractiveJoinOptions& options)
    : universe_(universe),
      left_(left),
      right_(right),
      strategy_(options.strategy),
      vs_(universe, left, right) {
  // Materialize all candidate pairs with their agreement masks.
  candidates_.reserve(left->size() * right->size());
  for (size_t i = 0; i < left->size(); ++i) {
    for (size_t j = 0; j < right->size(); ++j) {
      candidates_.push_back(
          Candidate{universe->AgreeMask(left->row(i), right->row(j)),
                    /*settled=*/false, /*asked=*/false});
    }
  }
}

size_t JoinEngine::IndexOf(const PairExample& item) const {
  return item.left_row * right_->size() + item.right_row;
}

std::optional<PairExample> JoinEngine::SelectQuestion(common::Rng* rng) {
  std::vector<size_t> open;
  for (size_t k = 0; k < candidates_.size(); ++k) {
    if (!candidates_[k].settled) open.push_back(k);
  }
  if (open.empty()) return std::nullopt;

  size_t pick = open[0];
  switch (strategy_) {
    case JoinStrategy::kRandom:
      pick = open[rng->Index(open.size())];
      break;
    case JoinStrategy::kSplitHalf: {
      // Prefer the pair whose positive answer halves θ*.
      const int target = std::popcount(vs_.most_specific()) / 2;
      int best_score = 1 << 30;
      for (size_t k : open) {
        const int kept =
            std::popcount(vs_.most_specific() & candidates_[k].agree);
        const int score = std::abs(kept - target);
        if (score < best_score) {
          best_score = score;
          pick = k;
        }
      }
      break;
    }
    case JoinStrategy::kLattice: {
      // Probe a pair that drops exactly one bit of θ* if positive; fall
      // back to split-half behaviour otherwise.
      const int full = std::popcount(vs_.most_specific());
      int best_score = 1 << 30;
      for (size_t k : open) {
        const int kept =
            std::popcount(vs_.most_specific() & candidates_[k].agree);
        const int score = kept == full - 1 ? -1 : std::abs(kept - full / 2);
        if (score < best_score) {
          best_score = score;
          pick = k;
        }
      }
      break;
    }
  }
  return PairExample{pick / right_->size(), pick % right_->size()};
}

void JoinEngine::MarkAsked(const PairExample& item) {
  Candidate& c = candidates_[IndexOf(item)];
  c.settled = true;
  c.asked = true;
}

void JoinEngine::Observe(const PairExample& item, bool positive,
                         session::SessionStats* stats) {
  if (positive) {
    vs_.AddPositive(item);
  } else {
    vs_.AddNegative(item);
  }
  if (!vs_.Consistent()) {
    ++stats->conflicts;
    aborted_ = true;  // target outside the hypothesis space
  }
}

void JoinEngine::Propagate(session::SessionStats* stats) {
  for (size_t k = 0; k < candidates_.size(); ++k) {
    Candidate& c = candidates_[k];
    if (c.settled) continue;
    switch (vs_.Classify(
        PairExample{k / right_->size(), k % right_->size()})) {
      case EquiJoinVersionSpace::PairStatus::kForcedPositive:
        c.settled = true;
        ++stats->forced_positive;
        break;
      case EquiJoinVersionSpace::PairStatus::kForcedNegative:
        c.settled = true;
        ++stats->forced_negative;
        break;
      case EquiJoinVersionSpace::PairStatus::kInformative:
        break;
    }
  }
}

PairMask JoinEngine::Current() const {
  return vs_.Consistent() ? vs_.most_specific() : 0;
}

PairMask JoinEngine::Finish(session::SessionStats* /*stats*/) {
  // No end-of-session audit beyond the per-answer consistency checks.
  return Current();
}

const relational::Tuple& JoinEngine::LeftRow(const PairExample& item) const {
  return left_->row(item.left_row);
}

const relational::Tuple& JoinEngine::RightRow(const PairExample& item) const {
  return right_->row(item.right_row);
}

bool JoinEngine::WasAsked(const PairExample& item) const {
  return candidates_[IndexOf(item)].asked;
}

bool JoinEngine::HasForcedLabel(const PairExample& item) const {
  const Candidate& c = candidates_[IndexOf(item)];
  return c.settled && !c.asked;
}

Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options) {
  if (universe.size() == 0) {
    return Status::InvalidArgument("empty candidate pair universe");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<JoinEngine> session(
      JoinEngine(&universe, &left, &right, options), session_options);

  InteractiveJoinResult result;
  result.learned = session.Run([&](const PairExample& pair) {
    return oracle->IsPositive(left.row(pair.left_row),
                              right.row(pair.right_row));
  });
  result.candidate_pairs = session.engine().candidate_pairs();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
