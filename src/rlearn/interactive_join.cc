#include "rlearn/interactive_join.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <vector>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options) {
  if (universe.size() == 0) {
    return Status::InvalidArgument("empty candidate pair universe");
  }
  common::Rng rng(options.seed);
  InteractiveJoinResult result;

  // Materialize all candidate pairs with their agreement masks.
  struct Candidate {
    PairExample pair;
    PairMask agree;
    bool settled = false;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(left.size() * right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      candidates.push_back(Candidate{
          PairExample{i, j},
          universe.AgreeMask(left.row(i), right.row(j)), false});
    }
  }
  result.candidate_pairs = candidates.size();

  EquiJoinVersionSpace vs(&universe, &left, &right);

  auto settle_uninformative = [&]() {
    for (Candidate& c : candidates) {
      if (c.settled) continue;
      switch (vs.Classify(c.pair)) {
        case EquiJoinVersionSpace::PairStatus::kForcedPositive:
          c.settled = true;
          ++result.forced_positive;
          break;
        case EquiJoinVersionSpace::PairStatus::kForcedNegative:
          c.settled = true;
          ++result.forced_negative;
          break;
        case EquiJoinVersionSpace::PairStatus::kInformative:
          break;
      }
    }
  };

  settle_uninformative();
  while (result.questions < options.max_questions) {
    // Collect informative candidates.
    std::vector<size_t> open;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (!candidates[k].settled) open.push_back(k);
    }
    if (open.empty()) break;

    size_t pick = open[0];
    switch (options.strategy) {
      case JoinStrategy::kRandom:
        pick = open[rng.Index(open.size())];
        break;
      case JoinStrategy::kSplitHalf: {
        // Prefer the pair whose positive answer halves θ*.
        const int target = std::popcount(vs.most_specific()) / 2;
        int best_score = 1 << 30;
        for (size_t k : open) {
          const int kept =
              std::popcount(vs.most_specific() & candidates[k].agree);
          const int score = std::abs(kept - target);
          if (score < best_score) {
            best_score = score;
            pick = k;
          }
        }
        break;
      }
      case JoinStrategy::kLattice: {
        // Probe a pair that drops exactly one bit of θ* if positive; fall
        // back to split-half behaviour otherwise.
        const int full = std::popcount(vs.most_specific());
        int best_score = 1 << 30;
        for (size_t k : open) {
          const int kept =
              std::popcount(vs.most_specific() & candidates[k].agree);
          const int score = kept == full - 1 ? -1 : std::abs(kept - full / 2);
          if (score < best_score) {
            best_score = score;
            pick = k;
          }
        }
        break;
      }
    }

    Candidate& c = candidates[pick];
    ++result.questions;
    c.settled = true;
    if (oracle->IsPositive(left.row(c.pair.left_row),
                           right.row(c.pair.right_row))) {
      vs.AddPositive(c.pair);
    } else {
      vs.AddNegative(c.pair);
    }
    if (!vs.Consistent()) {
      ++result.conflicts;
      break;  // target outside the hypothesis space
    }
    settle_uninformative();
  }

  result.learned = vs.Consistent() ? vs.most_specific() : 0;
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
