#include "rlearn/interactive_join.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <vector>

#include "rlearn/mask_scoring.h"

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

namespace {

/// "QLJE" little-endian: the join-engine snapshot blob tag.
constexpr uint32_t kJoinEngineMagic = 0x454A4C51u;
constexpr uint32_t kJoinEngineVersion = 1;

}  // namespace

JoinEngine::JoinEngine(const PairUniverse* universe,
                       const relational::Relation* left,
                       const relational::Relation* right,
                       const InteractiveJoinOptions& options)
    : universe_(universe),
      left_(left),
      right_(right),
      strategy_(options.strategy),
      vs_(universe, left, right) {
  // Materialize all candidate pairs; agreement masks go bit-transposed
  // into the store (plane b = the candidates agreeing on universe pair b).
  const size_t n = left->size() * right->size();
  frontier_.Reserve(n);
  store_.Reset(universe->size(), n);
  for (size_t i = 0; i < left->size(); ++i) {
    for (size_t j = 0; j < right->size(); ++j) {
      const size_t k = frontier_.Add(PairExample{i, j});
      const PairMask agree = universe->AgreeMask(left->row(i), right->row(j));
      for (PairMask m = agree; m != 0; m &= m - 1) {
        store_.SetPlaneBit(static_cast<size_t>(std::countr_zero(m)), k);
      }
    }
  }
}

size_t JoinEngine::IndexOf(const PairExample& item) const {
  return item.left_row * right_->size() + item.right_row;
}

void JoinEngine::EnsureKeptCounts() {
  if (counts_valid_) return;
  store_.PlanePopcounts(0, vs_.most_specific(), &kept_counts_);
  counts_valid_ = true;
}

std::optional<PairExample> JoinEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  switch (strategy_) {
    case JoinStrategy::kRandom:
      pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
      break;
    case JoinStrategy::kSplitHalf: {
      // Prefer the pair whose positive answer halves θ*. The per-candidate
      // kept-counts are one bit-sliced popcount sweep per θ* change; the
      // greedy scorer is then an array read.
      EnsureKeptCounts();
      const int total = std::popcount(vs_.most_specific());
      pick = frontier_.Select(
          session::Greedy<long>(
              std::numeric_limits<long>::min(),
              [this, total](size_t k) -> std::optional<long> {
                return SplitHalfScore(total,
                                      kept_counts_[store_.DenseOf(k)]);
              }),
          rng);
      break;
    }
    case JoinStrategy::kLattice: {
      // Probe a pair that drops exactly one bit of θ* if positive; fall
      // back to split-half behaviour otherwise.
      EnsureKeptCounts();
      const int full = std::popcount(vs_.most_specific());
      pick = frontier_.Select(
          session::Greedy<long>(
              std::numeric_limits<long>::min(),
              [this, full](size_t k) -> std::optional<long> {
                return LatticeProbeScore(full,
                                         kept_counts_[store_.DenseOf(k)]);
              }),
          rng);
      break;
    }
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

void JoinEngine::MarkAsked(const PairExample& item) {
  const size_t k = IndexOf(item);
  frontier_.MarkAsked(k);
  store_.OnAsked(k);
}

void JoinEngine::Observe(const PairExample& item, bool positive,
                         session::SessionStats* stats) {
  const size_t k = IndexOf(item);
  frontier_.MarkLabeled(k, positive);
  store_.OnSettled(k);
  theta_advanced_ = false;
  if (positive) {
    const PairMask before = vs_.most_specific();
    vs_.AddPositive(item);
    theta_advanced_ = vs_.most_specific() != before;
    // θ* shrank: every memoized split/lattice score and the kept-counts
    // are stale. Negative answers leave θ* (and thus both) untouched.
    frontier_.InvalidateAll();
    if (theta_advanced_) counts_valid_ = false;
  } else {
    vs_.AddNegative(item);
  }
  if (!vs_.Consistent()) {
    ++stats->conflicts;
    aborted_ = true;  // target outside the hypothesis space
  }
}

void JoinEngine::OnPositive(const PairExample& /*item*/) {
  // A positive whose agreement already covered θ* (possible mid-batch)
  // leaves every classification unchanged.
  if (theta_advanced_) prop_.RecordHypothesisChange();
}

void JoinEngine::OnNegative(const PairExample& /*item*/) {
  // Observe ran first, so the version space's newest negative mask is this
  // item's agreement (no per-candidate gather from the planes needed).
  prop_.RecordNegative(vs_.negative_masks().back());
}

void JoinEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);
    prop_.MarkFullPassDone();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
  // Shrink the dense sweep axis once enough candidates settled. Survivor
  // order is id-ascending before and after, so replay is unaffected; the
  // kept-counts are dense-indexed and refresh lazily.
  if (store_.MaybeCompact()) counts_valid_ = false;
}

void JoinEngine::ReferencePropagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    switch (vs_.Classify(frontier_.item(k))) {
      case EquiJoinVersionSpace::PairStatus::kForcedPositive:
        frontier_.MarkForced(k, /*positive=*/true);
        store_.OnSettled(k);
        ++stats->forced_positive;
        break;
      case EquiJoinVersionSpace::PairStatus::kForcedNegative:
        frontier_.MarkForced(k, /*positive=*/false);
        store_.OnSettled(k);
        ++stats->forced_negative;
        break;
      case EquiJoinVersionSpace::PairStatus::kInformative:
        break;
    }
  }
}

void JoinEngine::ForceSweep(const std::vector<uint64_t>& bits, bool positive,
                            session::SessionStats* stats) {
  session::ForEachSetBit(bits.data(), bits.size(), [&](size_t d) {
    const size_t k = store_.IdOf(d);
    frontier_.MarkForced(k, positive);
    store_.OnSettled(k);
    if (positive) {
      ++stats->forced_positive;
    } else {
      ++stats->forced_negative;
    }
  });
}

void JoinEngine::ConvictCovered(PairMask neg, session::SessionStats* stats) {
  // A negative m covers A = θ* ∧ agree iff A ∧ ¬m == 0, i.e. the candidate
  // agrees on none of the surviving pairs θ* ∧ ¬m. With no surviving pair
  // the negative covers every open candidate (neg = 0 degenerates to the
  // A == 0 conviction: agreement misses all of θ*).
  const PairMask surviving = vs_.most_specific() & ~neg;
  store_.CopyOpen(&scratch_);
  if (surviving != 0) store_.AndNotOrPlanes(0, surviving, scratch_.data());
  ForceSweep(scratch_, /*positive=*/false, stats);
}

void JoinEngine::FullPropagate(session::SessionStats* stats) {
  // Classification of a pair depends only on A = θ* ∧ agree (see
  // EquiJoinVersionSpace::Classify), so the whole pass is word-parallel:
  // one AND sweep for the forced positives (A == θ*), then one conviction
  // sweep per negative (plus the A == 0 sweep, the neg = 0 special case).
  const PairMask theta = vs_.most_specific();
  assert(theta != 0 && "propagating an inconsistent version space");
  store_.CopyOpen(&scratch_);
  store_.AndPlanes(0, theta, scratch_.data());
  ForceSweep(scratch_, /*positive=*/true, stats);
  ConvictCovered(0, stats);
  for (PairMask neg : vs_.negative_masks()) {
    ConvictCovered(neg, stats);
  }
}

void JoinEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<PairMask> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  // θ* is untouched, so no new forced positives exist: each queued
  // negative is one conviction sweep over the still-open candidates.
  for (PairMask neg : deltas) {
    ConvictCovered(neg, stats);
  }
}

#ifndef NDEBUG
void JoinEngine::AssertPropagationFixpoint() const {
  // The historical per-candidate classification must find nothing left to
  // force after a flush.
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    assert(vs_.Classify(frontier_.item(k)) ==
               EquiJoinVersionSpace::PairStatus::kInformative &&
           "delta flush missed a forced pair");
    assert(store_.IsOpen(k) && "store open bit out of sync with frontier");
  }
}
#endif

PairMask JoinEngine::Current() const {
  return vs_.Consistent() ? vs_.most_specific() : 0;
}

PairMask JoinEngine::Finish(session::SessionStats* /*stats*/) {
  // No end-of-session audit beyond the per-answer consistency checks.
  return Current();
}

void JoinEngine::SerializeSnapshot(session::SnapshotWriter* writer) const {
  writer->WriteU32(kJoinEngineMagic);
  writer->WriteU32(kJoinEngineVersion);
  writer->WriteU8(static_cast<uint8_t>(strategy_));
  writer->WriteU8(aborted_ ? 1 : 0);
  writer->WriteU64(vs_.most_specific());
  writer->WriteU64(vs_.num_positives());
  writer->WriteU64(vs_.negative_masks().size());
  for (PairMask m : vs_.negative_masks()) writer->WriteU64(m);
  frontier_.SerializeState(writer);
  store_.SerializeSnapshot(writer);
}

common::Status JoinEngine::RestoreSnapshot(session::SnapshotReader* reader) {
  uint32_t magic = 0, version = 0;
  uint8_t strategy = 0, aborted = 0;
  uint64_t theta = 0, num_positives = 0, num_negatives = 0;
  Status s = reader->ReadU32(&magic);
  if (s.ok()) s = reader->ReadU32(&version);
  if (s.ok()) s = reader->ReadU8(&strategy);
  if (s.ok()) s = reader->ReadU8(&aborted);
  if (s.ok()) s = reader->ReadU64(&theta);
  if (s.ok()) s = reader->ReadU64(&num_positives);
  if (s.ok()) s = reader->ReadU64(&num_negatives);
  if (!s.ok()) return s;
  if (magic != kJoinEngineMagic) {
    return Status::InvalidArgument("not a join-engine snapshot");
  }
  if (version != kJoinEngineVersion) {
    return Status::InvalidArgument("unsupported join-engine snapshot version " +
                                   std::to_string(version));
  }
  if (strategy != static_cast<uint8_t>(strategy_)) {
    return Status::InvalidArgument(
        "join-engine snapshot was taken under a different strategy");
  }
  std::vector<PairMask> negatives(num_negatives);
  for (uint64_t i = 0; i < num_negatives; ++i) {
    s = reader->ReadU64(&negatives[i]);
    if (!s.ok()) return s;
  }
  s = frontier_.RestoreState(reader);
  if (!s.ok()) return s;
  s = store_.RestoreSnapshot(reader);
  if (!s.ok()) return s;

  vs_.RestoreState(theta, std::move(negatives),
                   static_cast<size_t>(num_positives));
  aborted_ = aborted != 0;
  theta_advanced_ = false;
  counts_valid_ = false;
  // Snapshots are taken between answered turns: every queued delta was
  // flushed, so the restored engine starts in steady state.
  prop_.MarkFullPassDone();
  return Status::OK();
}

const relational::Tuple& JoinEngine::LeftRow(const PairExample& item) const {
  return left_->row(item.left_row);
}

const relational::Tuple& JoinEngine::RightRow(const PairExample& item) const {
  return right_->row(item.right_row);
}

bool JoinEngine::WasAsked(const PairExample& item) const {
  return frontier_.WasAsked(IndexOf(item));
}

bool JoinEngine::HasForcedLabel(const PairExample& item) const {
  return frontier_.HasForcedLabel(IndexOf(item));
}

Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options) {
  if (universe.size() == 0) {
    return Status::InvalidArgument("empty candidate pair universe");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<JoinEngine> session(
      JoinEngine(&universe, &left, &right, options), session_options);

  InteractiveJoinResult result;
  result.learned = session.Run([&](const PairExample& pair) {
    return oracle->IsPositive(left.row(pair.left_row),
                              right.row(pair.right_row));
  });
  result.candidate_pairs = session.engine().candidate_pairs();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
