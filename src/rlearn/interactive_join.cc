#include "rlearn/interactive_join.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

JoinEngine::JoinEngine(const PairUniverse* universe,
                       const relational::Relation* left,
                       const relational::Relation* right,
                       const InteractiveJoinOptions& options)
    : universe_(universe),
      left_(left),
      right_(right),
      strategy_(options.strategy),
      vs_(universe, left, right) {
  // Materialize all candidate pairs with their agreement masks.
  frontier_.Reserve(left->size() * right->size());
  agree_.reserve(left->size() * right->size());
  for (size_t i = 0; i < left->size(); ++i) {
    for (size_t j = 0; j < right->size(); ++j) {
      frontier_.Add(PairExample{i, j});
      agree_.push_back(universe->AgreeMask(left->row(i), right->row(j)));
    }
  }
}

size_t JoinEngine::IndexOf(const PairExample& item) const {
  return item.left_row * right_->size() + item.right_row;
}

std::optional<PairExample> JoinEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  switch (strategy_) {
    case JoinStrategy::kRandom:
      pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
      break;
    case JoinStrategy::kSplitHalf: {
      // Prefer the pair whose positive answer halves θ*. Scores depend only
      // on θ*, so they stay memoized until a positive answer shrinks it.
      const int target = std::popcount(vs_.most_specific()) / 2;
      pick = frontier_.Select(
          session::Greedy<long>(
              std::numeric_limits<long>::min(),
              [this, target](size_t k) -> std::optional<long> {
                return frontier_.MemoOf(k, [this, target](size_t j) {
                  const int kept =
                      std::popcount(vs_.most_specific() & agree_[j]);
                  return -static_cast<long>(std::abs(kept - target));
                });
              }),
          rng);
      break;
    }
    case JoinStrategy::kLattice: {
      // Probe a pair that drops exactly one bit of θ* if positive; fall
      // back to split-half behaviour otherwise.
      const int full = std::popcount(vs_.most_specific());
      pick = frontier_.Select(
          session::Greedy<long>(
              std::numeric_limits<long>::min(),
              [this, full](size_t k) -> std::optional<long> {
                return frontier_.MemoOf(k, [this, full](size_t j) {
                  const int kept =
                      std::popcount(vs_.most_specific() & agree_[j]);
                  return kept == full - 1
                             ? 1L
                             : -static_cast<long>(std::abs(kept - full / 2));
                });
              }),
          rng);
      break;
    }
  }
  if (!pick.has_value()) return std::nullopt;
  return frontier_.item(*pick);
}

void JoinEngine::MarkAsked(const PairExample& item) {
  frontier_.MarkAsked(IndexOf(item));
}

void JoinEngine::Observe(const PairExample& item, bool positive,
                         session::SessionStats* stats) {
  frontier_.MarkLabeled(IndexOf(item), positive);
  if (positive) {
    vs_.AddPositive(item);
    // θ* shrank: every memoized split/lattice score is stale. Negative
    // answers leave θ* (and thus the scores) untouched.
    frontier_.InvalidateAll();
  } else {
    vs_.AddNegative(item);
  }
  if (!vs_.Consistent()) {
    ++stats->conflicts;
    aborted_ = true;  // target outside the hypothesis space
  }
}

void JoinEngine::Propagate(session::SessionStats* stats) {
  for (size_t k = 0; k < frontier_.size(); ++k) {
    if (!frontier_.IsOpen(k)) continue;
    switch (vs_.Classify(frontier_.item(k))) {
      case EquiJoinVersionSpace::PairStatus::kForcedPositive:
        frontier_.MarkForced(k, /*positive=*/true);
        ++stats->forced_positive;
        break;
      case EquiJoinVersionSpace::PairStatus::kForcedNegative:
        frontier_.MarkForced(k, /*positive=*/false);
        ++stats->forced_negative;
        break;
      case EquiJoinVersionSpace::PairStatus::kInformative:
        break;
    }
  }
}

PairMask JoinEngine::Current() const {
  return vs_.Consistent() ? vs_.most_specific() : 0;
}

PairMask JoinEngine::Finish(session::SessionStats* /*stats*/) {
  // No end-of-session audit beyond the per-answer consistency checks.
  return Current();
}

const relational::Tuple& JoinEngine::LeftRow(const PairExample& item) const {
  return left_->row(item.left_row);
}

const relational::Tuple& JoinEngine::RightRow(const PairExample& item) const {
  return right_->row(item.right_row);
}

bool JoinEngine::WasAsked(const PairExample& item) const {
  return frontier_.WasAsked(IndexOf(item));
}

bool JoinEngine::HasForcedLabel(const PairExample& item) const {
  return frontier_.HasForcedLabel(IndexOf(item));
}

Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options) {
  if (universe.size() == 0) {
    return Status::InvalidArgument("empty candidate pair universe");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<JoinEngine> session(
      JoinEngine(&universe, &left, &right, options), session_options);

  InteractiveJoinResult result;
  result.learned = session.Run([&](const PairExample& pair) {
    return oracle->IsPositive(left.row(pair.left_row),
                              right.row(pair.right_row));
  });
  result.candidate_pairs = session.engine().candidate_pairs();
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
