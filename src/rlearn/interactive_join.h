// The paper's interactive join-learning protocol (Section 3): the learner
// proposes tuple pairs, the user labels them, and after every answer the
// learner infers the labels of all *uninformative* pairs (those on which
// every hypothesis in the current version space agrees) so they are never
// asked. The session ends when every pair is labeled or uninformative; the
// goal is to minimize questions (experiment E6).
//
// JoinEngine implements the unified session Engine concept
// (session/session.h); RunInteractiveJoinSession is the legacy one-shot
// wrapper over session::LearningSession<JoinEngine>.
#ifndef QLEARN_RLEARN_INTERACTIVE_JOIN_H_
#define QLEARN_RLEARN_INTERACTIVE_JOIN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rlearn/equijoin_learner.h"
#include "session/frontier.h"
#include "session/propagation.h"
#include "session/session.h"

namespace qlearn {
namespace rlearn {

/// Labels tuple pairs; backed by a hidden goal in tests/benchmarks, by a
/// human in an application.
class JoinOracle {
 public:
  virtual ~JoinOracle() = default;
  virtual bool IsPositive(const relational::Tuple& left,
                          const relational::Tuple& right) = 0;
};

/// Oracle defined by a hidden goal predicate over a pair universe.
class GoalJoinOracle : public JoinOracle {
 public:
  GoalJoinOracle(const PairUniverse* universe, PairMask goal)
      : universe_(universe), goal_(goal) {}
  bool IsPositive(const relational::Tuple& left,
                  const relational::Tuple& right) override {
    return MaskSatisfied(goal_, universe_->AgreeMask(left, right));
  }

 private:
  const PairUniverse* universe_;
  PairMask goal_;
};

/// Question-selection strategies (compared in E6).
enum class JoinStrategy {
  kRandom,     ///< uniform over informative pairs
  kSplitHalf,  ///< aim to halve the hypothesis lattice each question
  kLattice,    ///< probe pairs that test one candidate pair's necessity
};

/// Knob ownership contract (same split on all four engines' options
/// structs): `strategy` is consumed by the engine itself; `seed` and
/// `max_questions` are consumed only by the RunInteractiveJoinSession
/// wrapper, which forwards them into session::SessionOptions — an engine
/// driven directly through LearningSession ignores them.
struct InteractiveJoinOptions {
  JoinStrategy strategy = JoinStrategy::kSplitHalf;
  uint64_t seed = session::SessionDefaults::kLegacyJoinSeed;
  size_t max_questions = session::SessionDefaults::kMaxQuestions;
};

struct InteractiveJoinResult {
  /// Most specific hypothesis consistent with all answers.
  PairMask learned = 0;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_pairs = 0;
  /// Non-zero when the oracle contradicted the hypothesis space (goal not
  /// an equi-join over the universe).
  size_t conflicts = 0;
};

/// Session engine over all |left| x |right| tuple pairs. Questions are
/// PairExamples; the version space settles uninformative pairs after every
/// answer. `universe`, `left`, and `right` must outlive the engine, and the
/// universe must be non-empty.
class JoinEngine {
 public:
  using Item = PairExample;
  using HypothesisT = PairMask;

  /// Wire-payload hooks: the tag and the stable model-specific coordinates
  /// of a question item (see service/wire.h).
  static constexpr const char* kPayloadKind = "join";
  static std::vector<uint64_t> ItemIds(const Item& item) {
    return {static_cast<uint64_t>(item.left_row),
            static_cast<uint64_t>(item.right_row)};
  }

  JoinEngine(const PairUniverse* universe, const relational::Relation* left,
             const relational::Relation* right,
             const InteractiveJoinOptions& options = {});

  std::optional<Item> SelectQuestion(common::Rng* rng);
  void MarkAsked(const Item& item);
  void Observe(const Item& item, bool positive, session::SessionStats* stats);
  /// Per-answer propagation deltas (engine concept, session/session.h): a
  /// negative answer queues its agreement mask; a positive answer marks
  /// the hypothesis changed iff it actually shrank θ*.
  void OnPositive(const Item& item);
  void OnNegative(const Item& item);
  /// Flushes queued deltas. Classification of a pair is a pure function of
  /// its effective mask A = θ* ∧ agree, so candidates live in witness
  /// buckets keyed by A: a new negative convicts exactly the buckets its
  /// mask covers — O(distinct masks) per answer, not O(open × negatives) —
  /// and a θ* change re-buckets the open set once and classifies per
  /// bucket.
  void Propagate(session::SessionStats* stats);
  /// True once an answer contradicted the version space (target outside the
  /// equi-join hypothesis class).
  bool Aborted() const { return aborted_; }
  HypothesisT Current() const;
  HypothesisT Finish(session::SessionStats* stats);

  size_t candidate_pairs() const { return frontier_.size(); }
  const relational::Tuple& LeftRow(const Item& item) const;
  const relational::Tuple& RightRow(const Item& item) const;

  // Introspection for conformance tests and UIs.
  bool WasAsked(const Item& item) const;
  bool HasForcedLabel(const Item& item) const;

  /// Test/bench hook: every flush replays the historical full-universe
  /// rescan instead of the delta pass (identical behavior, different cost).
  void set_reference_propagation(bool on) { reference_propagation_ = on; }
  /// Test/bench hook: makes the next flush run the full re-bucketing pass.
  void ForceFullRepropagation() { prop_.RecordHypothesisChange(); }
  // Test introspection of the witness-bucket index.
  bool WitnessIndexValidForTest() const { return prop_.WitnessesValid(); }
  size_t WitnessBucketsForTest() const { return prop_.NumBuckets(); }

 private:
  using FrontierT = session::Frontier<PairExample, long>;
  /// Witness buckets keyed by effective mask A = θ* ∧ agree; deltas are
  /// the new negatives' agreement masks.
  using PropagationT = session::PropagationIndex<PairMask, PairMask>;

  size_t IndexOf(const Item& item) const;

  /// The historical per-candidate Classify rescan, verbatim.
  void ReferencePropagate(session::SessionStats* stats);
  /// Re-buckets the open set by effective mask A = θ* ∧ agree.
  void RebuildBuckets();
  /// Baseline / θ*-change pass: re-bucket open candidates by effective
  /// mask, classify once per bucket.
  void FullPropagate(session::SessionStats* stats);
  /// Steady-state flush: convicts the buckets covered by each queued
  /// negative mask.
  void ApplyNegativeDeltas(session::SessionStats* stats);
  /// Forces every still-open member of a bucket; returns via stats.
  void ForceBucket(std::vector<size_t>& members, bool positive,
                   session::SessionStats* stats);
#ifndef NDEBUG
  void AssertPropagationFixpoint() const;
#endif

  const PairUniverse* universe_;
  const relational::Relation* left_;
  const relational::Relation* right_;
  JoinStrategy strategy_;
  FrontierT frontier_;           // row-major over (left, right)
  std::vector<PairMask> agree_;  // agreement mask per candidate index
  EquiJoinVersionSpace vs_;
  PropagationT prop_;
  /// Did the last positive Observe actually shrink θ*?
  bool theta_advanced_ = false;
  bool reference_propagation_ = false;
  bool aborted_ = false;
};

/// Runs the protocol over all |left| x |right| tuple pairs. Thin wrapper
/// over session::LearningSession<JoinEngine>; question counts are identical
/// to driving the engine one question at a time.
common::Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options = {});

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_INTERACTIVE_JOIN_H_
