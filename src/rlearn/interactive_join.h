// The paper's interactive join-learning protocol (Section 3): the learner
// proposes tuple pairs, the user labels them, and after every answer the
// learner infers the labels of all *uninformative* pairs (those on which
// every hypothesis in the current version space agrees) so they are never
// asked. The session ends when every pair is labeled or uninformative; the
// goal is to minimize questions (experiment E6).
//
// JoinEngine implements the unified session Engine concept
// (session/session.h); RunInteractiveJoinSession is the legacy one-shot
// wrapper over session::LearningSession<JoinEngine>.
#ifndef QLEARN_RLEARN_INTERACTIVE_JOIN_H_
#define QLEARN_RLEARN_INTERACTIVE_JOIN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rlearn/equijoin_learner.h"
#include "session/candidate_store.h"
#include "session/frontier.h"
#include "session/propagation.h"
#include "session/session.h"
#include "session/snapshot.h"

namespace qlearn {
namespace rlearn {

/// Labels tuple pairs; backed by a hidden goal in tests/benchmarks, by a
/// human in an application.
class JoinOracle {
 public:
  virtual ~JoinOracle() = default;
  virtual bool IsPositive(const relational::Tuple& left,
                          const relational::Tuple& right) = 0;
};

/// Oracle defined by a hidden goal predicate over a pair universe.
class GoalJoinOracle : public JoinOracle {
 public:
  GoalJoinOracle(const PairUniverse* universe, PairMask goal)
      : universe_(universe), goal_(goal) {}
  bool IsPositive(const relational::Tuple& left,
                  const relational::Tuple& right) override {
    return MaskSatisfied(goal_, universe_->AgreeMask(left, right));
  }

 private:
  const PairUniverse* universe_;
  PairMask goal_;
};

/// Question-selection strategies (compared in E6).
enum class JoinStrategy {
  kRandom,     ///< uniform over informative pairs
  kSplitHalf,  ///< aim to halve the hypothesis lattice each question
  kLattice,    ///< probe pairs that test one candidate pair's necessity
};

/// Knob ownership contract (same split on all four engines' options
/// structs): `strategy` is consumed by the engine itself; `seed` and
/// `max_questions` are consumed only by the RunInteractiveJoinSession
/// wrapper, which forwards them into session::SessionOptions — an engine
/// driven directly through LearningSession ignores them.
struct InteractiveJoinOptions {
  JoinStrategy strategy = JoinStrategy::kSplitHalf;
  uint64_t seed = session::SessionDefaults::kLegacyJoinSeed;
  size_t max_questions = session::SessionDefaults::kMaxQuestions;
};

struct InteractiveJoinResult {
  /// Most specific hypothesis consistent with all answers.
  PairMask learned = 0;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_pairs = 0;
  /// Non-zero when the oracle contradicted the hypothesis space (goal not
  /// an equi-join over the universe).
  size_t conflicts = 0;
};

/// Session engine over all |left| x |right| tuple pairs. Questions are
/// PairExamples; the version space settles uninformative pairs after every
/// answer. `universe`, `left`, and `right` must outlive the engine, and the
/// universe must be non-empty.
class JoinEngine {
 public:
  using Item = PairExample;
  using HypothesisT = PairMask;

  /// Wire-payload hooks: the tag and the stable model-specific coordinates
  /// of a question item (see service/wire.h).
  static constexpr const char* kPayloadKind = "join";
  static std::vector<uint64_t> ItemIds(const Item& item) {
    return {static_cast<uint64_t>(item.left_row),
            static_cast<uint64_t>(item.right_row)};
  }

  JoinEngine(const PairUniverse* universe, const relational::Relation* left,
             const relational::Relation* right,
             const InteractiveJoinOptions& options = {});

  std::optional<Item> SelectQuestion(common::Rng* rng);
  void MarkAsked(const Item& item);
  void Observe(const Item& item, bool positive, session::SessionStats* stats);
  /// Per-answer propagation deltas (engine concept, session/session.h): a
  /// negative answer queues its agreement mask; a positive answer marks
  /// the hypothesis changed iff it actually shrank θ*.
  void OnPositive(const Item& item);
  void OnNegative(const Item& item);
  /// Flushes queued deltas. Classification of a pair is a pure function of
  /// its effective mask A = θ* ∧ agree, and the agreement bits live
  /// bit-transposed in the candidate store (one plane per universe pair),
  /// so each flush is a handful of word-at-a-time plane sweeps over the
  /// open set: a new negative m convicts open ∧ ¬OR(planes of θ* ∧ ¬m), a
  /// θ* change additionally forces open ∧ AND(planes of θ*) positive — no
  /// per-candidate loop and no witness hash index at all.
  void Propagate(session::SessionStats* stats);
  /// True once an answer contradicted the version space (target outside the
  /// equi-join hypothesis class).
  bool Aborted() const { return aborted_; }
  HypothesisT Current() const;
  HypothesisT Finish(session::SessionStats* stats);

  size_t candidate_pairs() const { return frontier_.size(); }
  const relational::Tuple& LeftRow(const Item& item) const;
  const relational::Tuple& RightRow(const Item& item) const;

  // Introspection for conformance tests and UIs.
  bool WasAsked(const Item& item) const;
  bool HasForcedLabel(const Item& item) const;

  /// Test/bench hook: every flush replays the historical full-universe
  /// rescan instead of the delta pass (identical behavior, different cost).
  void set_reference_propagation(bool on) { reference_propagation_ = on; }
  /// Test/bench hook: makes the next flush run the full classification pass.
  void ForceFullRepropagation() { prop_.RecordHypothesisChange(); }
  /// Bench-parity hook: the SoA engine keeps no witness index (conviction
  /// is a plane sweep), so the historical "drop the index before the next
  /// negative" costs nothing to set up. Kept so BM_Classify measures the
  /// same externally-triggered operation before and after the refactor.
  void InvalidateWitnessIndexForBench() {}
  /// Test introspection of the structure-of-arrays candidate store.
  const session::CandidateStore& StoreForTest() const { return store_; }

  /// Hibernation: appends a versioned engine image (strategy, version
  /// space, frontier states, candidate-store planes) to `writer`. Call only
  /// between answered turns (queued deltas flushed).
  void SerializeSnapshot(session::SnapshotWriter* writer) const;
  /// Restores an image produced by SerializeSnapshot into an engine built
  /// over the same relations/universe/options. Mismatched geometry or
  /// strategy is rejected with InvalidArgument.
  common::Status RestoreSnapshot(session::SnapshotReader* reader);

 private:
  using FrontierT = session::Frontier<PairExample, long>;
  /// Delta queue only (the witness-bucket half of PropagationIndex is
  /// superseded by plane sweeps): queued payloads are the new negatives'
  /// agreement masks.
  using PropagationT = session::PropagationIndex<PairMask, PairMask>;

  size_t IndexOf(const Item& item) const;

  /// The historical per-candidate Classify rescan, verbatim.
  void ReferencePropagate(session::SessionStats* stats);
  /// Baseline / θ*-change pass: positive sweep (open ∧ AND θ* planes) plus
  /// one conviction sweep per accumulated negative.
  void FullPropagate(session::SessionStats* stats);
  /// Steady-state flush: one conviction sweep per queued negative mask.
  void ApplyNegativeDeltas(session::SessionStats* stats);
  /// Convicts the open candidates whose effective mask the negative `neg`
  /// covers: open ∧ ¬OR(planes of θ* ∧ ¬neg). neg = 0 convicts the A == 0
  /// set.
  void ConvictCovered(PairMask neg, session::SessionStats* stats);
  /// Forces every candidate whose bit is set in `bits` (a sweep result over
  /// the dense axis; all bits are open by construction).
  void ForceSweep(const std::vector<uint64_t>& bits, bool positive,
                  session::SessionStats* stats);
  /// Recomputes the per-candidate |θ* ∧ agree| counts (bit-sliced popcount
  /// over the θ* planes) if θ* changed or the store compacted.
  void EnsureKeptCounts();
#ifndef NDEBUG
  void AssertPropagationFixpoint() const;
#endif

  const PairUniverse* universe_;
  const relational::Relation* left_;
  const relational::Relation* right_;
  JoinStrategy strategy_;
  FrontierT frontier_;  // row-major over (left, right)
  /// SoA agreement planes + open/active mirrors + dense compaction; plane b
  /// holds "candidate agrees on universe pair b".
  session::CandidateStore store_;
  EquiJoinVersionSpace vs_;
  PropagationT prop_;
  /// Sweep scratch (dense words) reused across flushes.
  std::vector<uint64_t> scratch_;
  /// kept_counts_[DenseOf(k)] = |θ* ∧ agree_k|, the split/lattice scoring
  /// input; refreshed lazily per θ* change / compaction.
  std::vector<uint8_t> kept_counts_;
  bool counts_valid_ = false;
  /// Did the last positive Observe actually shrink θ*?
  bool theta_advanced_ = false;
  bool reference_propagation_ = false;
  bool aborted_ = false;
};

/// Runs the protocol over all |left| x |right| tuple pairs. Thin wrapper
/// over session::LearningSession<JoinEngine>; question counts are identical
/// to driving the engine one question at a time.
common::Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options = {});

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_INTERACTIVE_JOIN_H_
