// The paper's interactive join-learning protocol (Section 3): the learner
// proposes tuple pairs, the user labels them, and after every answer the
// learner infers the labels of all *uninformative* pairs (those on which
// every hypothesis in the current version space agrees) so they are never
// asked. The session ends when every pair is labeled or uninformative; the
// goal is to minimize questions (experiment E6).
#ifndef QLEARN_RLEARN_INTERACTIVE_JOIN_H_
#define QLEARN_RLEARN_INTERACTIVE_JOIN_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "rlearn/equijoin_learner.h"

namespace qlearn {
namespace rlearn {

/// Labels tuple pairs; backed by a hidden goal in tests/benchmarks, by a
/// human in an application.
class JoinOracle {
 public:
  virtual ~JoinOracle() = default;
  virtual bool IsPositive(const relational::Tuple& left,
                          const relational::Tuple& right) = 0;
};

/// Oracle defined by a hidden goal predicate over a pair universe.
class GoalJoinOracle : public JoinOracle {
 public:
  GoalJoinOracle(const PairUniverse* universe, PairMask goal)
      : universe_(universe), goal_(goal) {}
  bool IsPositive(const relational::Tuple& left,
                  const relational::Tuple& right) override {
    return MaskSatisfied(goal_, universe_->AgreeMask(left, right));
  }

 private:
  const PairUniverse* universe_;
  PairMask goal_;
};

/// Question-selection strategies (compared in E6).
enum class JoinStrategy {
  kRandom,     ///< uniform over informative pairs
  kSplitHalf,  ///< aim to halve the hypothesis lattice each question
  kLattice,    ///< probe pairs that test one candidate pair's necessity
};

struct InteractiveJoinOptions {
  JoinStrategy strategy = JoinStrategy::kSplitHalf;
  uint64_t seed = 11;
  size_t max_questions = 1000000;
};

struct InteractiveJoinResult {
  /// Most specific hypothesis consistent with all answers.
  PairMask learned = 0;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  size_t candidate_pairs = 0;
  /// Non-zero when the oracle contradicted the hypothesis space (goal not
  /// an equi-join over the universe).
  size_t conflicts = 0;
};

/// Runs the protocol over all |left| x |right| tuple pairs.
common::Result<InteractiveJoinResult> RunInteractiveJoinSession(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, JoinOracle* oracle,
    const InteractiveJoinOptions& options = {});

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_INTERACTIVE_JOIN_H_
