#include "rlearn/semijoin_learner.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <set>

namespace qlearn {
namespace rlearn {

namespace {

/// Shared preprocessing: per-positive witness masks and the maximal
/// forbidden masks derived from negatives.
struct Instance {
  std::vector<std::vector<PairMask>> witness_sets;  // one per positive
  std::vector<PairMask> forbidden;                  // maximal masks
  bool trivially_inconsistent = false;
};

Instance Preprocess(const PairUniverse& universe,
                    const relational::Relation& left,
                    const relational::Relation& right,
                    const std::vector<RowExample>& positives,
                    const std::vector<RowExample>& negatives) {
  Instance inst;
  for (const RowExample& p : positives) {
    std::set<PairMask> masks;
    for (size_t s = 0; s < right.size(); ++s) {
      const PairMask m = universe.AgreeMask(left.row(p.left_row), right.row(s));
      if (m != 0) masks.insert(m);
    }
    if (masks.empty()) {
      // This positive can never have a witness: inconsistent outright.
      inst.trivially_inconsistent = true;
      return inst;
    }
    // Keep only maximal witness masks: any hypothesis fitting a smaller
    // witness also fits a maximal superset witness.
    std::vector<PairMask> maximal;
    for (PairMask m : masks) {
      bool dominated = false;
      for (PairMask other : masks) {
        if (other != m && (m & ~other) == 0) {
          dominated = true;
          break;
        }
      }
      if (!dominated) maximal.push_back(m);
    }
    inst.witness_sets.push_back(std::move(maximal));
  }
  // Order positives most-constrained first (fewest witnesses).
  std::sort(inst.witness_sets.begin(), inst.witness_sets.end(),
            [](const std::vector<PairMask>& a, const std::vector<PairMask>& b) {
              return a.size() < b.size();
            });

  std::set<PairMask> bad;
  for (const RowExample& n : negatives) {
    for (size_t s = 0; s < right.size(); ++s) {
      const PairMask m = universe.AgreeMask(left.row(n.left_row), right.row(s));
      if (m != 0) bad.insert(m);
    }
  }
  for (PairMask b : bad) {
    bool dominated = false;
    for (PairMask other : bad) {
      if (other != b && (b & ~other) == 0) {
        dominated = true;
        break;
      }
    }
    if (!dominated) inst.forbidden.push_back(b);
  }
  return inst;
}

/// True iff some non-empty hypothesis θ ⊆ candidate avoids all forbidden
/// masks; the maximal choice θ = candidate decides it.
bool Feasible(PairMask candidate, const std::vector<PairMask>& forbidden) {
  if (candidate == 0) return false;
  for (PairMask b : forbidden) {
    if ((candidate & ~b) == 0) return false;
  }
  return true;
}

}  // namespace

SemijoinConsistency CheckSemijoinConsistency(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right,
    const std::vector<RowExample>& positives,
    const std::vector<RowExample>& negatives) {
  SemijoinConsistency result;
  const Instance inst =
      Preprocess(universe, left, right, positives, negatives);
  if (inst.trivially_inconsistent || universe.size() == 0) return result;

  // DFS over per-positive witness choices; the running intersection only
  // shrinks, so infeasibility prunes the whole subtree. Memoize visited
  // (depth, intersection) states.
  std::set<std::pair<size_t, PairMask>> visited;
  std::function<bool(size_t, PairMask)> dfs = [&](size_t depth,
                                                  PairMask inter) -> bool {
    ++result.nodes_explored;
    if (!Feasible(inter, inst.forbidden)) return false;
    if (depth == inst.witness_sets.size()) {
      result.consistent = true;
      result.witness = inter;
      return true;
    }
    if (!visited.insert({depth, inter}).second) return false;
    for (PairMask w : inst.witness_sets[depth]) {
      if (dfs(depth + 1, inter & w)) return true;
    }
    return false;
  };
  dfs(0, universe.FullMask());
  return result;
}

SemijoinConsistency GreedySemijoinConsistency(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right,
    const std::vector<RowExample>& positives,
    const std::vector<RowExample>& negatives) {
  SemijoinConsistency result;
  const Instance inst =
      Preprocess(universe, left, right, positives, negatives);
  if (inst.trivially_inconsistent || universe.size() == 0) return result;

  PairMask inter = universe.FullMask();
  for (const std::vector<PairMask>& witnesses : inst.witness_sets) {
    ++result.nodes_explored;
    PairMask best = 0;
    int best_bits = -1;
    for (PairMask w : witnesses) {
      const int bits = std::popcount(inter & w);
      // Prefer feasible intersections, then larger ones.
      const bool feasible = Feasible(inter & w, inst.forbidden);
      const bool best_feasible = Feasible(best & inter, inst.forbidden);
      if (best_bits < 0 || (feasible && !best_feasible) ||
          (feasible == best_feasible && bits > best_bits)) {
        best = w;
        best_bits = bits;
      }
    }
    inter &= best;
    if (inter == 0) return result;
  }
  if (Feasible(inter, inst.forbidden)) {
    result.consistent = true;
    result.witness = inter;
  }
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
