#include "rlearn/equijoin_learner.h"

namespace qlearn {
namespace rlearn {

EquiJoinVersionSpace::EquiJoinVersionSpace(const PairUniverse* universe,
                                           const relational::Relation* left,
                                           const relational::Relation* right)
    : universe_(universe),
      left_(left),
      right_(right),
      most_specific_(universe->FullMask()) {}

PairMask EquiJoinVersionSpace::Agree(const PairExample& e) const {
  return universe_->AgreeMask(left_->row(e.left_row),
                              right_->row(e.right_row));
}

void EquiJoinVersionSpace::AddPositive(const PairExample& example) {
  most_specific_ &= Agree(example);
  ++num_positives_;
}

void EquiJoinVersionSpace::AddNegative(const PairExample& example) {
  negative_masks_.push_back(Agree(example));
}

bool EquiJoinVersionSpace::Consistent() const {
  if (most_specific_ == 0) return false;  // no non-empty hypothesis remains
  for (PairMask neg : negative_masks_) {
    if (MaskSatisfied(most_specific_, neg)) return false;
  }
  return true;
}

EquiJoinVersionSpace::PairStatus EquiJoinVersionSpace::Classify(
    const PairExample& example) const {
  const PairMask agree = Agree(example);
  // Forced positive: even the most specific hypothesis selects the pair
  // (hence so does every subset of θ* in the version space).
  if (MaskSatisfied(most_specific_, agree)) {
    return PairStatus::kForcedPositive;
  }
  // Some consistent hypothesis selects the pair iff a non-empty
  // θ ⊆ θ* ∩ agree excludes all negatives; the maximal such candidate is
  // A = θ* ∩ agree, and subsets only make exclusion harder.
  const PairMask a = most_specific_ & agree;
  if (a == 0) return PairStatus::kForcedNegative;
  for (PairMask neg : negative_masks_) {
    if (MaskSatisfied(a, neg)) return PairStatus::kForcedNegative;
  }
  return PairStatus::kInformative;
}

EquiJoinConsistency CheckEquiJoinConsistency(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right,
    const std::vector<PairExample>& positives,
    const std::vector<PairExample>& negatives) {
  EquiJoinVersionSpace vs(&universe, &left, &right);
  for (const PairExample& p : positives) vs.AddPositive(p);
  for (const PairExample& n : negatives) vs.AddNegative(n);
  EquiJoinConsistency out;
  out.consistent = vs.Consistent();
  out.most_specific = out.consistent ? vs.most_specific() : 0;
  return out;
}

}  // namespace rlearn
}  // namespace qlearn
