#include "rlearn/join_hypothesis.h"

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;
using relational::AttributePair;

Result<PairUniverse> PairUniverse::Create(std::vector<AttributePair> pairs) {
  if (pairs.size() > 64) {
    return Status::ResourceExhausted(
        "pair universe exceeds 64 candidate pairs (" +
        std::to_string(pairs.size()) + ")");
  }
  PairUniverse u;
  u.pairs_ = std::move(pairs);
  return u;
}

Result<PairUniverse> PairUniverse::AllCompatible(
    const relational::RelationSchema& left,
    const relational::RelationSchema& right) {
  return Create(relational::CompatiblePairs(left, right));
}

Result<PairUniverse> PairUniverse::SharedName(
    const relational::RelationSchema& left,
    const relational::RelationSchema& right) {
  return Create(relational::SharedAttributePairs(left, right));
}

PairMask PairUniverse::AgreeMask(const relational::Tuple& r,
                                 const relational::Tuple& s) const {
  PairMask mask = 0;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (r[pairs_[i].left].EqualsSql(s[pairs_[i].right])) {
      mask |= (1ULL << i);
    }
  }
  return mask;
}

std::vector<AttributePair> PairUniverse::Decode(PairMask mask) const {
  std::vector<AttributePair> out;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (mask & (1ULL << i)) out.push_back(pairs_[i]);
  }
  return out;
}

std::string PairUniverse::MaskToString(
    PairMask mask, const relational::RelationSchema& left,
    const relational::RelationSchema& right) const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (!(mask & (1ULL << i))) continue;
    if (!first) out += ", ";
    first = false;
    out += left.name() + "." + left.attributes()[pairs_[i].left].name + "=" +
           right.name() + "." + right.attributes()[pairs_[i].right].name;
  }
  out += "}";
  return out;
}

}  // namespace rlearn
}  // namespace qlearn
