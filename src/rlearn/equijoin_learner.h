// Learning equi-join (and natural-join) predicates from labeled tuple
// pairs. Consistency here is PTIME — the paper's Section-3 tractability
// claim — via the most-specific-hypothesis argument: with
// θ* = ⋂_{positives} Eq(r,s), a consistent hypothesis exists iff θ* is
// non-empty and no negative example satisfies θ*.
#ifndef QLEARN_RLEARN_EQUIJOIN_LEARNER_H_
#define QLEARN_RLEARN_EQUIJOIN_LEARNER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "rlearn/join_hypothesis.h"

namespace qlearn {
namespace rlearn {

/// One labeled example: the (left-row, right-row) index pair.
struct PairExample {
  size_t left_row;
  size_t right_row;
};

/// Outcome of the PTIME consistency check.
struct EquiJoinConsistency {
  bool consistent = false;
  /// Most specific consistent hypothesis when consistent.
  PairMask most_specific = 0;
};

/// Version space of equi-join hypotheses: the interval between the most
/// specific hypothesis θ* and its subsets that still exclude all negatives.
class EquiJoinVersionSpace {
 public:
  EquiJoinVersionSpace(const PairUniverse* universe,
                       const relational::Relation* left,
                       const relational::Relation* right);

  /// Incorporates a labeled example.
  void AddPositive(const PairExample& example);
  void AddNegative(const PairExample& example);

  /// θ*: intersection of the positives' agree-masks (full mask initially).
  PairMask most_specific() const { return most_specific_; }

  /// PTIME consistency of everything added so far.
  bool Consistent() const;

  /// Classification of an unlabeled pair by the whole version space:
  /// forced-positive (every consistent hypothesis selects it),
  /// forced-negative (none does), or informative.
  enum class PairStatus { kForcedPositive, kForcedNegative, kInformative };
  PairStatus Classify(const PairExample& example) const;

  const PairUniverse& universe() const { return *universe_; }
  size_t num_positives() const { return num_positives_; }
  size_t num_negatives() const { return negative_masks_.size(); }
  /// Agreement masks of the negatives, in arrival order (the delta
  /// propagation layer classifies witness buckets against them directly).
  const std::vector<PairMask>& negative_masks() const {
    return negative_masks_;
  }

  /// Hibernation restore: overwrites the accumulated state with a
  /// snapshot's. The caller (JoinEngine::RestoreSnapshot) owns validation.
  void RestoreState(PairMask most_specific, std::vector<PairMask> negatives,
                    size_t num_positives) {
    most_specific_ = most_specific;
    negative_masks_ = std::move(negatives);
    num_positives_ = num_positives;
  }

 private:
  PairMask Agree(const PairExample& e) const;

  const PairUniverse* universe_;
  const relational::Relation* left_;
  const relational::Relation* right_;
  PairMask most_specific_;
  std::vector<PairMask> negative_masks_;
  size_t num_positives_ = 0;
};

/// One-shot PTIME consistency check for a labeled sample.
EquiJoinConsistency CheckEquiJoinConsistency(
    const PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, const std::vector<PairExample>& positives,
    const std::vector<PairExample>& negatives);

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_EQUIJOIN_LEARNER_H_
