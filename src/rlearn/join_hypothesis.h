// Hypothesis space of the join learners: non-empty sets of attribute pairs
// over a fixed universe (at most 64 pairs), represented as bitmasks. A pair
// of tuples satisfies a hypothesis iff it agrees on every selected pair —
// hence hypotheses are ordered by "more pairs = more specific".
#ifndef QLEARN_RLEARN_JOIN_HYPOTHESIS_H_
#define QLEARN_RLEARN_JOIN_HYPOTHESIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace qlearn {
namespace rlearn {

/// A set of universe indexes encoded as a bitmask.
using PairMask = uint64_t;

/// The fixed universe of candidate attribute pairs for one (R, S) instance.
class PairUniverse {
 public:
  /// Builds from explicit pairs; fails when more than 64.
  static common::Result<PairUniverse> Create(
      std::vector<relational::AttributePair> pairs);

  /// All type-compatible pairs of the two schemas.
  static common::Result<PairUniverse> AllCompatible(
      const relational::RelationSchema& left,
      const relational::RelationSchema& right);

  /// Pairs of same-name same-type attributes (natural-join universe).
  static common::Result<PairUniverse> SharedName(
      const relational::RelationSchema& left,
      const relational::RelationSchema& right);

  size_t size() const { return pairs_.size(); }
  const std::vector<relational::AttributePair>& pairs() const {
    return pairs_;
  }

  /// Mask with every universe pair set.
  PairMask FullMask() const {
    return pairs_.empty() ? 0 : (~0ULL >> (64 - pairs_.size()));
  }

  /// Mask of pairs on which `r`, `s` agree (SQL equality).
  PairMask AgreeMask(const relational::Tuple& r,
                     const relational::Tuple& s) const;

  /// Decodes a mask into attribute pairs.
  std::vector<relational::AttributePair> Decode(PairMask mask) const;

  /// Renders a mask as "{R.a0=S.b1, ...}" using the schemas.
  std::string MaskToString(PairMask mask,
                           const relational::RelationSchema& left,
                           const relational::RelationSchema& right) const;

 private:
  std::vector<relational::AttributePair> pairs_;
};

/// True iff `hypothesis` (mask) is satisfied by agreement mask `agree`.
inline bool MaskSatisfied(PairMask hypothesis, PairMask agree) {
  return (hypothesis & ~agree) == 0;
}

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_JOIN_HYPOTHESIS_H_
