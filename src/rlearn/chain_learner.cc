#include "rlearn/chain_learner.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

Result<JoinChain> JoinChain::Create(
    std::vector<const relational::Relation*> relations) {
  if (relations.size() < 2) {
    return Status::InvalidArgument("a join chain needs at least 2 relations");
  }
  JoinChain chain;
  chain.relations_ = std::move(relations);
  for (size_t i = 0; i + 1 < chain.relations_.size(); ++i) {
    QLEARN_ASSIGN_OR_RETURN(
        PairUniverse u,
        PairUniverse::AllCompatible(chain.relations_[i]->schema(),
                                    chain.relations_[i + 1]->schema()));
    if (u.size() == 0) {
      return Status::InvalidArgument(
          "no compatible attribute pairs between chain relations " +
          std::to_string(i) + " and " + std::to_string(i + 1));
    }
    chain.universes_.push_back(std::move(u));
  }
  return chain;
}

PairMask JoinChain::AgreeOn(size_t edge,
                            const std::vector<size_t>& rows) const {
  return universes_[edge].AgreeMask(relations_[edge]->row(rows[edge]),
                                    relations_[edge + 1]->row(rows[edge + 1]));
}

bool ChainSatisfied(const JoinChain& chain, const ChainMask& hypothesis,
                    const ChainExample& example) {
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    if (!MaskSatisfied(hypothesis[e], chain.AgreeOn(e, example.rows))) {
      return false;
    }
  }
  return true;
}

ChainVersionSpace::ChainVersionSpace(const JoinChain* chain) : chain_(chain) {
  most_specific_.reserve(chain->num_edges());
  for (size_t e = 0; e < chain->num_edges(); ++e) {
    most_specific_.push_back(chain->universe(e).FullMask());
  }
}

std::vector<PairMask> ChainVersionSpace::Agreements(
    const ChainExample& e) const {
  std::vector<PairMask> agree(chain_->num_edges());
  for (size_t edge = 0; edge < chain_->num_edges(); ++edge) {
    agree[edge] = chain_->AgreeOn(edge, e.rows);
  }
  return agree;
}

void ChainVersionSpace::AddPositive(const ChainExample& example) {
  const std::vector<PairMask> agree = Agreements(example);
  for (size_t e = 0; e < most_specific_.size(); ++e) {
    most_specific_[e] &= agree[e];
  }
  ++num_positives_;
}

void ChainVersionSpace::AddNegative(const ChainExample& example) {
  negative_agreements_.push_back(Agreements(example));
}

bool ChainVersionSpace::Consistent() const {
  for (PairMask m : most_specific_) {
    if (m == 0) return false;  // some edge has no non-empty hypothesis left
  }
  for (const std::vector<PairMask>& neg : negative_agreements_) {
    bool selected = true;
    for (size_t e = 0; e < most_specific_.size(); ++e) {
      if (!MaskSatisfied(most_specific_[e], neg[e])) {
        selected = false;
        break;
      }
    }
    if (selected) return false;  // θ* itself selects a negative
  }
  return true;
}

ChainVersionSpace::PathStatus ChainVersionSpace::Classify(
    const ChainExample& example) const {
  const std::vector<PairMask> agree = Agreements(example);
  // Forced positive: the most specific hypothesis vector selects the path,
  // hence so does every edge-wise subset in the version space.
  bool theta_star_selects = true;
  for (size_t e = 0; e < most_specific_.size(); ++e) {
    if (!MaskSatisfied(most_specific_[e], agree[e])) {
      theta_star_selects = false;
      break;
    }
  }
  if (theta_star_selects) return PathStatus::kForcedPositive;

  // Some consistent hypothesis selects the path iff the edge-wise maximal
  // candidate A_e = θ*_e ∩ agree_e is non-empty everywhere and excludes
  // every negative (shrinking any edge only makes exclusion harder).
  std::vector<PairMask> a(most_specific_.size());
  for (size_t e = 0; e < most_specific_.size(); ++e) {
    a[e] = most_specific_[e] & agree[e];
    if (a[e] == 0) return PathStatus::kForcedNegative;
  }
  for (const std::vector<PairMask>& neg : negative_agreements_) {
    bool selected = true;
    for (size_t e = 0; e < a.size(); ++e) {
      if (!MaskSatisfied(a[e], neg[e])) {
        selected = false;
        break;
      }
    }
    if (selected) return PathStatus::kForcedNegative;
  }
  return PathStatus::kInformative;
}

ChainConsistency CheckChainConsistency(
    const JoinChain& chain, const std::vector<ChainExample>& positives,
    const std::vector<ChainExample>& negatives) {
  ChainVersionSpace vs(&chain);
  for (const ChainExample& p : positives) vs.AddPositive(p);
  for (const ChainExample& n : negatives) vs.AddNegative(n);
  ChainConsistency out;
  out.consistent = vs.Consistent();
  if (out.consistent) out.most_specific = vs.most_specific();
  return out;
}

std::vector<ChainExample> EvaluateChain(const JoinChain& chain,
                                        const ChainMask& hypothesis,
                                        size_t limit) {
  // Left-to-right nested expansion with per-edge mask tests. Instances in
  // the experiments are small enough that index structures would not change
  // the asymptotics observed (the masks are arbitrary pair sets, so a hash
  // index would need one build per satisfied-pair subset).
  std::vector<ChainExample> frontier;
  for (size_t r = 0; r < chain.relation(0).size(); ++r) {
    frontier.push_back(ChainExample{{r}});
  }
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    std::vector<ChainExample> next;
    const size_t right_size = chain.relation(e + 1).size();
    for (const ChainExample& partial : frontier) {
      for (size_t r = 0; r < right_size; ++r) {
        ChainExample extended = partial;
        extended.rows.push_back(r);
        if (MaskSatisfied(hypothesis[e], chain.AgreeOn(e, extended.rows))) {
          next.push_back(std::move(extended));
          if (limit != 0 && e + 1 == chain.num_edges() &&
              next.size() >= limit) {
            return next;
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

namespace {

/// Enumerates up to `cap` candidate paths (row-index products, row-major).
std::vector<ChainExample> EnumerateCandidates(const JoinChain& chain,
                                              size_t cap) {
  std::vector<ChainExample> out;
  std::vector<size_t> sizes(chain.length());
  for (size_t i = 0; i < chain.length(); ++i) {
    sizes[i] = chain.relation(i).size();
    if (sizes[i] == 0) return out;
  }
  std::vector<size_t> idx(chain.length(), 0);
  while (out.size() < cap) {
    out.push_back(ChainExample{idx});
    size_t pos = chain.length();
    while (pos-- > 0) {
      if (++idx[pos] < sizes[pos]) break;
      idx[pos] = 0;
      if (pos == 0) return out;
    }
  }
  return out;
}

}  // namespace

Result<InteractiveChainResult> RunInteractiveChainSession(
    const JoinChain& chain, ChainOracle* oracle,
    const InteractiveChainOptions& options) {
  if (oracle == nullptr) {
    return Status::InvalidArgument("oracle must not be null");
  }
  std::vector<ChainExample> candidates =
      EnumerateCandidates(chain, options.max_candidates);
  ChainVersionSpace vs(&chain);
  common::Rng rng(options.seed);
  InteractiveChainResult result;
  result.candidate_paths = candidates.size();

  std::vector<bool> settled(candidates.size(), false);
  while (result.questions < options.max_questions) {
    // Propagate uninformative paths under the current version space.
    std::vector<size_t> informative;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (settled[i]) continue;
      switch (vs.Classify(candidates[i])) {
        case ChainVersionSpace::PathStatus::kForcedPositive:
          settled[i] = true;
          ++result.forced_positive;
          break;
        case ChainVersionSpace::PathStatus::kForcedNegative:
          settled[i] = true;
          ++result.forced_negative;
          break;
        case ChainVersionSpace::PathStatus::kInformative:
          informative.push_back(i);
          break;
      }
    }
    if (informative.empty()) break;

    size_t chosen = informative[0];
    if (options.strategy == ChainStrategy::kRandom) {
      chosen = informative[rng.Uniform(informative.size())];
    } else {
      // kSplitHalf in two phases. Until the first positive arrives, ask the
      // most plausible match (the candidate keeping the most θ* pairs alive
      // on every edge): a positive intersects every edge's θ* at once and
      // carries far more information than any negative. Once θ* reflects a
      // positive, switch to even-split probing of the surviving pairs.
      const bool hunting = vs.num_positives() == 0;
      long best_primary = -1;
      long best_tie = -1;
      for (size_t i : informative) {
        long total_kept = 0;
        long split = 0;
        for (size_t e = 0; e < chain.num_edges(); ++e) {
          const PairMask ms = vs.most_specific()[e];
          const PairMask agree = ms & chain.AgreeOn(e, candidates[i].rows);
          const int total = std::popcount(ms);
          const int kept = std::popcount(agree);
          total_kept += kept;
          split += total / 2 - std::abs(kept - total / 2);
        }
        const long primary = hunting ? total_kept : split;
        const long tie = hunting ? split : total_kept;
        if (primary > best_primary ||
            (primary == best_primary && tie > best_tie)) {
          best_primary = primary;
          best_tie = tie;
          chosen = i;
        }
      }
    }

    const bool answer = oracle->IsPositive(chain, candidates[chosen]);
    ++result.questions;
    settled[chosen] = true;
    if (answer) {
      vs.AddPositive(candidates[chosen]);
    } else {
      vs.AddNegative(candidates[chosen]);
    }
    if (!vs.Consistent()) {
      ++result.conflicts;
      break;
    }
  }

  result.learned = vs.most_specific();
  return result;
}

}  // namespace rlearn
}  // namespace qlearn
